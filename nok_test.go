package nok

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"nok/internal/samples"
)

func newStore(t *testing.T) *Store {
	t.Helper()
	st, err := Create(filepath.Join(t.TempDir(), "db"), strings.NewReader(samples.Bibliography), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func TestQuickstartFlow(t *testing.T) {
	st := newStore(t)
	rs, err := st.Query(samples.PaperQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("paper query: %d results", len(rs))
	}
	if rs[0].ID != "0.1" || rs[0].Tag != "book" {
		t.Errorf("first result: %+v", rs[0])
	}
	// Values come back attached for value-bearing nodes.
	rs, err = st.Query(`/bib/book/title`)
	if err != nil {
		t.Fatal(err)
	}
	if !rs[0].HasValue || rs[0].Value != "TCP/IP Illustrated" {
		t.Errorf("title result: %+v", rs[0])
	}
}

func TestOpenRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	st, err := Create(dir, strings.NewReader(samples.Bibliography), &Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	n := st.NodeCount()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.NodeCount() != n {
		t.Errorf("NodeCount after reopen: %d vs %d", st2.NodeCount(), n)
	}
}

func TestQueryWithOptionsStats(t *testing.T) {
	st := newStore(t)
	rs, stats, err := st.QueryWithOptions(samples.PaperQuery, &QueryOptions{Strategy: StrategyValueIndex})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || stats == nil || stats.Partitions != 2 {
		t.Errorf("results=%d stats=%+v", len(rs), stats)
	}
}

func TestValueLookup(t *testing.T) {
	st := newStore(t)
	v, ok, err := st.Value("0.1.2")
	if err != nil || !ok || v != "TCP/IP Illustrated" {
		t.Errorf("Value = %q, %v, %v", v, ok, err)
	}
	if _, ok, _ := st.Value("0.1"); ok {
		t.Error("book has no own value")
	}
	if _, _, err := st.Value("not-an-id"); err == nil {
		t.Error("bad ID should error")
	}
}

func TestInsertDelete(t *testing.T) {
	st := newStore(t)
	if err := st.Insert("0", strings.NewReader(`<book><title>New</title></book>`)); err != nil {
		t.Fatal(err)
	}
	rs, err := st.Query(`//book[title="New"]`)
	if err != nil || len(rs) != 1 {
		t.Fatalf("after insert: %v, %v", rs, err)
	}
	if err := st.Delete(rs[0].ID); err != nil {
		t.Fatal(err)
	}
	rs, err = st.Query(`//book[title="New"]`)
	if err != nil || len(rs) != 0 {
		t.Fatalf("after delete: %v, %v", rs, err)
	}
}

func TestStats(t *testing.T) {
	st := newStore(t)
	stats := st.Stats()
	if stats.Nodes != 40 || stats.Pages == 0 || stats.MaxDepth != 4 || stats.TreeBytes == 0 {
		t.Errorf("stats: %+v", stats)
	}
	if st.TagCount("book") != 4 {
		t.Errorf("TagCount(book) = %d", st.TagCount("book"))
	}
}

func TestStreamAPI(t *testing.T) {
	var got []Result
	err := Stream(strings.NewReader(samples.Bibliography), `/bib/book/title`, func(r Result) bool {
		got = append(got, r)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || got[0].Value != "TCP/IP Illustrated" {
		t.Fatalf("stream results: %+v", got)
	}
	all, err := StreamAll(strings.NewReader(samples.Bibliography), `//last`)
	if err != nil || len(all) != 6 {
		t.Fatalf("StreamAll: %v, %v", all, err)
	}
}

func TestParseAndExplain(t *testing.T) {
	if err := ParseQuery(`//book[price<100]`); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
	if err := ParseQuery(`not a query`); err == nil {
		t.Error("invalid query accepted")
	}
	out, err := Explain(samples.PaperQuery)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"partitions: 2", "local", "global", "NoK#0"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain output missing %q:\n%s", want, out)
		}
	}
}

func TestErrorSurface(t *testing.T) {
	st := newStore(t)
	if _, err := st.Query(`[[[`); err == nil {
		t.Error("malformed query accepted")
	}
	if err := st.Insert("9.9.9", strings.NewReader("<x/>")); err == nil {
		t.Error("insert under missing parent accepted")
	}
	if _, err := Open(filepath.Join(t.TempDir(), "missing"), nil); err == nil {
		t.Error("Open of missing dir accepted")
	}
}

func TestConcurrentQueriesAndUpdates(t *testing.T) {
	st := newStore(t)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := st.Query(samples.PaperQuery); err != nil {
					t.Error(err)
					return
				}
				if _, err := st.Query(`/bib/book/title`); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for i := 0; i < 5; i++ {
		frag := fmt.Sprintf(`<book><title>C%d</title></book>`, i)
		if err := st.Insert("0", strings.NewReader(frag)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	rs, err := st.Query(`/bib/book`)
	if err != nil || len(rs) != 9 {
		t.Fatalf("books after concurrent inserts: %d, %v", len(rs), err)
	}
}
