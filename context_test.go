package nok

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// bigStore builds a store large enough that a forced-scan query runs for
// many cancellation checkpoints.
func bigStore(t *testing.T, books int) *Store {
	t.Helper()
	var b strings.Builder
	b.WriteString("<lib>")
	for i := 0; i < books; i++ {
		fmt.Fprintf(&b, "<book><title>t%d</title><price>%d</price></book>", i, i%200)
	}
	b.WriteString("</lib>")
	st, err := Create(filepath.Join(t.TempDir(), "db"), strings.NewReader(b.String()), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func TestQueryContextPreCancelled(t *testing.T) {
	st := newStore(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := st.QueryContext(ctx, `//book`)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled query: err = %v, want context.Canceled", err)
	}
}

func TestQueryContextDeadlineMidMatch(t *testing.T) {
	st := bigStore(t, 10000)
	opts := &QueryOptions{Strategy: StrategyScan}

	// Baseline: the uncancelled query takes measurable time.
	t0 := time.Now()
	if _, _, err := st.QueryWithOptions(`//book[price<100]`, opts); err != nil {
		t.Fatal(err)
	}
	baseline := time.Since(t0)

	ctx, cancel := context.WithTimeout(context.Background(), baseline/20)
	defer cancel()
	t0 = time.Now()
	_, _, err := st.QueryWithOptionsContext(ctx, `//book[price<100]`, opts)
	elapsed := time.Since(t0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline query: err = %v, want context.DeadlineExceeded", err)
	}
	if baseline > 10*time.Millisecond && elapsed > baseline {
		t.Errorf("deadline noticed after %v, full query takes %v", elapsed, baseline)
	}
}

// cancelAfterPolls reports context.Canceled from its Nth Err() call on.
// Timer-driven cancellation depends on the scheduler running a second
// goroutine mid-query (flaky on single-CPU machines); counting checkpoint
// polls instead deterministically lands the cancellation mid-match.
type cancelAfterPolls struct {
	context.Context
	n     int
	calls int
}

func (c *cancelAfterPolls) Err() error {
	c.calls++
	if c.calls >= c.n {
		return context.Canceled
	}
	return c.Context.Err()
}

func TestQueryContextCancelMidMatch(t *testing.T) {
	st := bigStore(t, 10000)
	opts := &QueryOptions{Strategy: StrategyScan}

	// Count how many checkpoint polls a full evaluation makes, then cancel
	// halfway through a second run.
	probe := &cancelAfterPolls{Context: context.Background(), n: int(^uint(0) >> 1)}
	if _, _, err := st.QueryWithOptionsContext(probe, `//book[price<100]`, opts); err != nil {
		t.Fatal(err)
	}
	if probe.calls < 4 {
		t.Fatalf("evaluation polled the context only %d times; cannot cancel mid-match", probe.calls)
	}

	ctx := &cancelAfterPolls{Context: context.Background(), n: probe.calls / 2}
	_, _, err := st.QueryWithOptionsContext(ctx, `//book[price<100]`, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled query: err = %v, want context.Canceled", err)
	}
}

func TestQueryContextNilAndBackground(t *testing.T) {
	st := newStore(t)
	// Background context must not change results.
	rs, err := st.QueryContext(context.Background(), `/bib/book/title`)
	if err != nil || len(rs) != 4 {
		t.Fatalf("background ctx query: %d results, err %v", len(rs), err)
	}
}

func TestGenerationBumpsOnMutation(t *testing.T) {
	st := newStore(t)
	if g := st.Generation(); g != 0 {
		t.Fatalf("fresh store generation = %d", g)
	}
	if err := st.Insert("0", strings.NewReader(`<book><title>x</title></book>`)); err != nil {
		t.Fatal(err)
	}
	if g := st.Generation(); g != 1 {
		t.Fatalf("post-insert generation = %d, want 1", g)
	}
	if err := st.Delete("0.5"); err != nil {
		t.Fatal(err)
	}
	if g := st.Generation(); g != 2 {
		t.Fatalf("post-delete generation = %d, want 2", g)
	}
	// A failed parse does not reach the store and must not bump.
	if err := st.Insert("not-an-id", strings.NewReader(`<x/>`)); err == nil {
		t.Fatal("bad parent id accepted")
	}
	if g := st.Generation(); g != 2 {
		t.Fatalf("generation after rejected insert = %d, want 2", g)
	}
}

// TestConcurrentQueryUpdateRace exercises parallel readers (Query, Stats,
// NodeCount, TagCount, Value) against a writer alternating Insert and
// Delete on the same store. Run under -race via `make check`; it guards the
// RWMutex discipline in nok.go.
func TestConcurrentQueryUpdateRace(t *testing.T) {
	st := newStore(t)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch r % 4 {
				case 0:
					if _, err := st.Query(`//book/title`); err != nil {
						t.Errorf("query: %v", err)
						return
					}
				case 1:
					ctx, cancel := context.WithTimeout(context.Background(), time.Second)
					_, err := st.QueryContext(ctx, `//book[price<100]`)
					cancel()
					if err != nil && !errors.Is(err, context.DeadlineExceeded) {
						t.Errorf("ctx query: %v", err)
						return
					}
				case 2:
					_ = st.NodeCount()
					_ = st.Stats()
					_ = st.Generation()
				case 3:
					_ = st.TagCount("book")
					if _, _, err := st.Value("0.1.2"); err != nil {
						t.Errorf("value: %v", err)
						return
					}
				}
			}
		}(r)
	}

	// Writer: insert a fifth book, delete it again, 50 rounds.
	for i := 0; i < 50; i++ {
		frag := fmt.Sprintf(`<book year="2004"><title>g%d</title><price>%d</price></book>`, i, i)
		if err := st.Insert("0", strings.NewReader(frag)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if err := st.Delete("0.5"); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()

	rs, err := st.Query(`/bib/book`)
	if err != nil || len(rs) != 4 {
		t.Fatalf("final state: %d books, err %v", len(rs), err)
	}
}
