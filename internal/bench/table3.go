package bench

import (
	"errors"
	"fmt"
	"io"
	"math"

	"nok/internal/di"
	"nok/internal/domnav"
	"nok/internal/pattern"
	"nok/internal/twigstack"
	"nok/internal/workload"
)

// Systems in Table 3's row order. "X-Hive" is realized by the in-memory
// navigational evaluator (see DESIGN.md §3 for the substitution).
var Systems = []string{"DI", "Nav(X-Hive*)", "TwigStack", "NoK"}

// Cell is one measurement of Table 3.
type Cell struct {
	// Seconds is the median wall time.
	Seconds float64
	// Results is the answer cardinality (used for cross-engine checks).
	Results int
	// NA: the category does not apply to the dataset.
	NA bool
	// NI: the system does not implement the query's features.
	NI bool
}

// String renders the cell like the paper ("NA", "NI", or seconds).
func (c Cell) String() string {
	switch {
	case c.NA:
		return "NA"
	case c.NI:
		return "NI"
	case c.Seconds >= 100:
		return fmt.Sprintf("%.0f", c.Seconds)
	case c.Seconds >= 1:
		return fmt.Sprintf("%.2f", c.Seconds)
	default:
		return fmt.Sprintf("%.4f", c.Seconds)
	}
}

// Table3Row is one (dataset, system) row with a cell per category Q1..Q12.
type Table3Row struct {
	Dataset string
	System  string
	Cells   [12]Cell
}

// Table3 measures every system on every applicable query of every dataset.
// Cross-engine result cardinalities are verified: a mismatch is an error,
// making the benchmark double as an end-to-end differential test.
func Table3(cfg Config) ([]Table3Row, error) {
	cfg = cfg.WithDefaults()
	var rows []Table3Row
	for _, name := range cfg.Datasets {
		env, err := Prepare(cfg, name)
		if err != nil {
			return nil, err
		}
		dsRows, err := table3Dataset(cfg, env)
		env.Close()
		if err != nil {
			return nil, err
		}
		rows = append(rows, dsRows...)
	}
	return rows, nil
}

func table3Dataset(cfg Config, env *Env) ([]Table3Row, error) {
	queries, err := workload.ForDataset(env.Spec.Name)
	if err != nil {
		return nil, err
	}
	rows := make([]Table3Row, len(Systems))
	for i, sys := range Systems {
		rows[i] = Table3Row{Dataset: env.Spec.Name, System: sys}
	}
	for qi, q := range queries {
		if q.NA() {
			for i := range rows {
				rows[i].Cells[qi] = Cell{NA: true}
			}
			continue
		}
		cells, err := measureQuery(cfg, env, q.Expr)
		if err != nil {
			return nil, fmt.Errorf("%s %s (%s): %w", env.Spec.Name, q.Category.ID, q.Expr, err)
		}
		// Cross-check cardinalities across systems that ran.
		want := -1
		for si, c := range cells {
			if c.NA || c.NI {
				continue
			}
			if want == -1 {
				want = c.Results
			} else if c.Results != want {
				return nil, fmt.Errorf("%s %s: %s returned %d results, others %d",
					env.Spec.Name, q.Category.ID, Systems[si], c.Results, want)
			}
		}
		for i := range rows {
			rows[i].Cells[qi] = cells[i]
		}
	}
	return rows, nil
}

// measureQuery times one query on all four systems.
func measureQuery(cfg Config, env *Env, expr string) ([4]Cell, error) {
	var out [4]Cell

	// DI.
	dur, n, err := timeMedian(cfg.Runs, func() (int, error) {
		rs, err := env.DI.Query(expr)
		if err != nil {
			return 0, err
		}
		return len(rs), nil
	})
	switch {
	case errors.Is(err, di.ErrNotImplemented):
		out[0] = Cell{NI: true}
	case err != nil:
		return out, fmt.Errorf("DI: %w", err)
	default:
		out[0] = Cell{Seconds: dur.Seconds(), Results: n}
	}

	// Navigational baseline.
	tr, err := pattern.Parse(expr)
	if err != nil {
		return out, err
	}
	dur, n, err = timeMedian(cfg.Runs, func() (int, error) {
		return len(domnav.Evaluate(env.Dom, tr)), nil
	})
	if err != nil {
		return out, fmt.Errorf("Nav: %w", err)
	}
	out[1] = Cell{Seconds: dur.Seconds(), Results: n}

	// TwigStack.
	dur, n, err = timeMedian(cfg.Runs, func() (int, error) {
		rs, err := env.Twig.Query(expr)
		if err != nil {
			return 0, err
		}
		return len(rs), nil
	})
	switch {
	case errors.Is(err, twigstack.ErrNotImplemented):
		out[2] = Cell{NI: true}
	case err != nil:
		return out, fmt.Errorf("TwigStack: %w", err)
	default:
		out[2] = Cell{Seconds: dur.Seconds(), Results: n}
	}

	// NoK.
	dur, n, err = timeMedian(cfg.Runs, func() (int, error) {
		ms, _, err := env.NoK.Query(expr, nil)
		if err != nil {
			return 0, err
		}
		return len(ms), nil
	})
	if err != nil {
		return out, fmt.Errorf("NoK: %w", err)
	}
	out[3] = Cell{Seconds: dur.Seconds(), Results: n}
	return out, nil
}

// WriteTable3 renders the rows grouped by dataset, like the paper.
func WriteTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintf(w, "%-10s %-13s", "file", "system")
	for i := 1; i <= 12; i++ {
		fmt.Fprintf(w, " %8s", fmt.Sprintf("Q%d", i))
	}
	fmt.Fprintln(w)
	last := ""
	for _, r := range rows {
		ds := r.Dataset
		if ds == last {
			ds = ""
		} else {
			last = r.Dataset
		}
		fmt.Fprintf(w, "%-10s %-13s", ds, r.System)
		for _, c := range r.Cells {
			fmt.Fprintf(w, " %8s", c.String())
		}
		fmt.Fprintln(w)
	}
}

// SpeedupSummary condenses Table 3 into the headline comparison: for each
// dataset and competitor, the geometric-mean ratio of competitor time to
// NoK time over the cells both ran, plus a win count.
type SpeedupSummary struct {
	Dataset    string
	Competitor string
	GeoMean    float64
	Wins       int // cells where NoK was faster
	Cells      int
}

// Summarize computes speedup summaries from Table 3 rows.
func Summarize(rows []Table3Row) []SpeedupSummary {
	byDS := map[string]map[string]Table3Row{}
	for _, r := range rows {
		if byDS[r.Dataset] == nil {
			byDS[r.Dataset] = map[string]Table3Row{}
		}
		byDS[r.Dataset][r.System] = r
	}
	var out []SpeedupSummary
	for _, r := range rows {
		if r.System != "NoK" {
			continue
		}
		nok := r
		for _, comp := range Systems[:3] {
			cr, ok := byDS[r.Dataset][comp]
			if !ok {
				continue
			}
			s := SpeedupSummary{Dataset: r.Dataset, Competitor: comp}
			logSum := 0.0
			for i := range nok.Cells {
				a, b := cr.Cells[i], nok.Cells[i]
				if a.NA || a.NI || b.NA || b.NI || a.Seconds == 0 || b.Seconds == 0 {
					continue
				}
				ratio := a.Seconds / b.Seconds
				logSum += math.Log(ratio)
				s.Cells++
				if ratio > 1 {
					s.Wins++
				}
			}
			if s.Cells > 0 {
				s.GeoMean = math.Exp(logSum / float64(s.Cells))
			}
			out = append(out, s)
		}
	}
	return out
}

// WriteSummary renders speedup summaries.
func WriteSummary(w io.Writer, sums []SpeedupSummary) {
	fmt.Fprintf(w, "%-10s %-13s %12s %6s\n", "file", "vs", "geomean(×)", "wins")
	for _, s := range sums {
		fmt.Fprintf(w, "%-10s %-13s %12.2f %3d/%-3d\n",
			s.Dataset, s.Competitor, s.GeoMean, s.Wins, s.Cells)
	}
}
