package bench

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nok/internal/core"
	"nok/internal/dewey"
)

// ---- MVCC read latency under a concurrent writer -----------------------------

// MVCCRow reports one query's median latency idle vs under a concurrent
// full-speed writer. With snapshot reads the two should be near-identical:
// a reader pins the current epoch and never touches the write lock, so the
// only contention left is physical (CPU, buffer pool, allocator).
type MVCCRow struct {
	Query   string
	Samples int     // timed queries per side per round
	IdleUs  float64 // median per-query microseconds, no writer
	BusyUs  float64 // median per-query microseconds, concurrent writer
	Ratio   float64 // BusyUs / IdleUs
}

// MVCCResult is the full contention experiment: per-query rows plus the
// suite aggregate the acceptance budget applies to, and the number of
// mutations the writer committed while being raced (zero would mean the
// readers starved the writer and the experiment proved nothing).
type MVCCResult struct {
	Rows          []MVCCRow
	Rounds        int
	WriterCommits int64
	AggIdleUs     float64 // Σ per-query medians, idle
	AggBusyUs     float64 // Σ per-query medians, writer running
	Ratio         float64
}

// MVCCBudgetRatio is the acceptance budget: the read p50 under a
// concurrent writer may be at most this multiple of the idle p50.
const MVCCBudgetRatio = 1.2

// mvccQueries mixes the read shapes that must stay fast under writes: a
// value-index point lookup, a rooted walk, and a selective scan.
var mvccQueries = []string{
	`//book[title="gold"]`,
	`/lib/special/book`,
	`//book[price<3]`,
}

// MVCCContention measures read latency with and without a concurrent
// writer. Each round times every query idle, then starts a writer that
// commits insert/delete pairs as fast as the commit path allows and times
// the same queries again; the estimator is the minimum median across
// rounds per side, comparing quiet windows against quiet windows.
func MVCCContention(cfg Config) (*MVCCResult, error) {
	cfg = cfg.WithDefaults()
	const (
		rounds  = 3
		samples = 200
	)

	tmp, err := os.MkdirTemp("", "nok-mvcc")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)
	db, err := core.LoadXML(tmp+"/db", strings.NewReader(telemetryDoc(2000*cfg.Scale)),
		&core.Options{PageSize: cfg.PageSize})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	firstBook, err := dewey.Parse("0.1")
	if err != nil {
		return nil, err
	}

	res := &MVCCResult{Rounds: rounds}

	p50 := func(expr string) (float64, error) {
		lat := make([]time.Duration, samples)
		for i := range lat {
			t0 := time.Now()
			if _, _, err := db.Query(expr, nil); err != nil {
				return 0, err
			}
			lat[i] = time.Since(t0)
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return lat[samples/2].Seconds() * 1e6, nil
	}

	// Warm the pool and the plan cache on every query first.
	for _, q := range mvccQueries {
		if _, err := p50(q); err != nil {
			return nil, err
		}
	}

	minIdle := make([]float64, len(mvccQueries))
	minBusy := make([]float64, len(mvccQueries))
	for r := 0; r < rounds; r++ {
		for qi, q := range mvccQueries {
			us, err := p50(q)
			if err != nil {
				return nil, err
			}
			if r == 0 || us < minIdle[qi] {
				minIdle[qi] = us
			}
		}

		stop := make(chan struct{})
		var (
			wg   sync.WaitGroup
			werr atomic.Value
		)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var err error
				if i%2 == 1 {
					// Deleting the then-first book keeps the store size
					// stable against the inserts.
					err = db.DeleteSubtree(firstBook)
				} else {
					err = db.InsertFragment(dewey.Root(), strings.NewReader(
						fmt.Sprintf("<book><title>w%d</title><price>%d</price></book>", i, i%97)))
				}
				if err != nil {
					werr.Store(err)
					return
				}
				atomic.AddInt64(&res.WriterCommits, 1)
			}
		}()
		for qi, q := range mvccQueries {
			us, err := p50(q)
			if err != nil {
				close(stop)
				wg.Wait()
				return nil, err
			}
			if r == 0 || us < minBusy[qi] {
				minBusy[qi] = us
			}
		}
		close(stop)
		wg.Wait()
		if err, ok := werr.Load().(error); ok {
			return nil, fmt.Errorf("concurrent writer: %w", err)
		}
	}

	for qi, q := range mvccQueries {
		row := MVCCRow{Query: q, Samples: samples, IdleUs: minIdle[qi], BusyUs: minBusy[qi]}
		if row.IdleUs > 0 {
			row.Ratio = row.BusyUs / row.IdleUs
		}
		res.Rows = append(res.Rows, row)
		res.AggIdleUs += row.IdleUs
		res.AggBusyUs += row.BusyUs
	}
	if res.AggIdleUs > 0 {
		res.Ratio = res.AggBusyUs / res.AggIdleUs
	}
	if res.WriterCommits == 0 {
		return nil, fmt.Errorf("writer committed nothing while being raced; contention result is vacuous")
	}
	return res, nil
}

// WriteMVCC renders the contention experiment; the aggregate line — one
// pass over the suite — is the one the ≤1.2× budget applies to.
func WriteMVCC(w io.Writer, res *MVCCResult) {
	fmt.Fprintf(w, "%-28s %8s %12s %12s %7s\n", "query", "samples", "idle(µs/q)", "busy(µs/q)", "ratio")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%-28s %8d %12.2f %12.2f %6.2fx\n", r.Query, r.Samples, r.IdleUs, r.BusyUs, r.Ratio)
	}
	verdict := "PASS"
	if res.Ratio > MVCCBudgetRatio {
		verdict = "FAIL"
	}
	fmt.Fprintf(w, "%-28s %8s %12.2f %12.2f %6.2fx  (budget %.1fx, %d writer commits, min of %d rounds) %s\n",
		"suite (one pass)", "", res.AggIdleUs, res.AggBusyUs, res.Ratio, MVCCBudgetRatio, res.WriterCommits, res.Rounds, verdict)
}
