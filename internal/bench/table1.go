package bench

import (
	"fmt"
	"io"
)

// Table1Row reproduces one row of the paper's Table 1: dataset statistics
// plus the sizes of the string representation and the three B+ trees.
type Table1Row struct {
	Dataset  string
	Bytes    int64
	Nodes    int
	AvgDepth float64
	MaxDepth int
	Tags     int

	TreeBytes   int64 // |tree|: the string representation
	TagIdxBytes int64 // |B+t|
	ValIdxBytes int64 // |B+v|
	DewIdxBytes int64 // |B+i|
}

// Table1 computes the statistics row for every configured dataset.
func Table1(cfg Config) ([]Table1Row, error) {
	cfg = cfg.WithDefaults()
	var rows []Table1Row
	for _, name := range cfg.Datasets {
		env, err := Prepare(cfg, name)
		if err != nil {
			return nil, err
		}
		tree, tag, val, dew := env.NoK.IndexSizes()
		rows = append(rows, Table1Row{
			Dataset:  name,
			Bytes:    env.Stats.Bytes,
			Nodes:    env.Stats.Nodes,
			AvgDepth: env.Stats.AvgDepth,
			MaxDepth: env.Stats.MaxDepth,
			Tags:     env.Stats.Tags,

			TreeBytes:   tree,
			TagIdxBytes: tag,
			ValIdxBytes: val,
			DewIdxBytes: dew,
		})
		env.Close()
	}
	return rows, nil
}

func mb(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

// WriteTable1 renders the rows in the paper's column order.
func WriteTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "%-10s %10s %10s %10s %9s %5s %10s %10s %10s %10s\n",
		"data set", "size", "#nodes", "avg depth", "max depth", "tags",
		"|tree|", "|B+t|", "|B+v|", "|B+i|")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %10s %10d %10.1f %9d %5d %10s %10s %10s %10s\n",
			r.Dataset, mb(r.Bytes), r.Nodes, r.AvgDepth, r.MaxDepth, r.Tags,
			mb(r.TreeBytes), mb(r.TagIdxBytes), mb(r.ValIdxBytes), mb(r.DewIdxBytes))
	}
}
