package bench

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"time"

	"nok/internal/core"
	"nok/internal/dewey"
	"nok/internal/pager"
	"nok/internal/pattern"
	"nok/internal/stream"
	"nok/internal/stree"
	"nok/internal/symtab"
	"nok/internal/workload"
)

// ---- storage ratios (§4.2) ---------------------------------------------------

// RatioRow quantifies the §4.2 claims: "the string representation of the
// tree structure is only about 1/20 to 1/100 of the size of the XML
// document" and the in-RAM page-header table is tiny.
type RatioRow struct {
	Dataset     string
	DocBytes    int64
	TreeBytes   int64
	Ratio       float64 // DocBytes / TreeBytes
	HeaderBytes int     // in-RAM page header table
	// HeaderPerTB extrapolates header memory to one terabyte of XML, the
	// paper's "21MB to 70MB per 1TB" argument.
	HeaderPerTB float64
	// ValueBytes is the out-of-line value data; TreeBytes/(TreeBytes+ValueBytes)
	// shows what structure/value separation buys the scan path.
	ValueBytes int64
}

// Ratios computes the ratio row per dataset.
func Ratios(cfg Config) ([]RatioRow, error) {
	cfg = cfg.WithDefaults()
	var rows []RatioRow
	for _, name := range cfg.Datasets {
		env, err := Prepare(cfg, name)
		if err != nil {
			return nil, err
		}
		tree := int64(env.NoK.Tree.TokenBytes())
		hdr := env.NoK.Tree.HeaderBytes()
		r := RatioRow{
			Dataset:     name,
			DocBytes:    env.Stats.Bytes,
			TreeBytes:   tree,
			HeaderBytes: hdr,
			ValueBytes:  env.NoK.Values.Size(),
		}
		if tree > 0 {
			r.Ratio = float64(env.Stats.Bytes) / float64(tree)
		}
		if env.Stats.Bytes > 0 {
			r.HeaderPerTB = float64(hdr) / float64(env.Stats.Bytes) * (1 << 40)
		}
		rows = append(rows, r)
		env.Close()
	}
	return rows, nil
}

// WriteRatios renders the ratio table.
func WriteRatios(w io.Writer, rows []RatioRow) {
	fmt.Fprintf(w, "%-10s %12s %12s %9s %12s %14s %12s\n",
		"data set", "doc", "|tree|", "doc/tree", "headers", "headers/1TB", "values")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %12s %12s %8.1fx %12s %11.0f MB %12s\n",
			r.Dataset, mb(r.DocBytes), mb(r.TreeBytes), r.Ratio,
			mb(int64(r.HeaderBytes)), r.HeaderPerTB/(1<<20), mb(r.ValueBytes))
	}
}

// ---- Proposition 1: single-pass I/O -------------------------------------------

// IORow verifies Proposition 1: during NoK evaluation, physical reads of
// the string-tree file never exceed its page count (each page read ≤ once,
// given a buffer pool that does not thrash).
type IORow struct {
	Dataset    string
	Query      string
	Pages      int
	Reads      int64
	Hits       int64
	SinglePass bool
}

// IO runs the scan-strategy Q12 query of each dataset with a cold,
// sufficiently large pool and reports page I/O.
func IO(cfg Config) ([]IORow, error) {
	cfg = cfg.WithDefaults()
	var rows []IORow
	for _, name := range cfg.Datasets {
		env, err := Prepare(cfg, name)
		if err != nil {
			return nil, err
		}
		queries, err := workload.ForDataset(name)
		if err != nil {
			env.Close()
			return nil, err
		}
		expr := queries[11].Expr // Q12: low selectivity, bushy — touches everything
		pf := env.NoK.Tree.Pager()
		pf.ResetStats()
		if _, _, err := env.NoK.Query(expr, &core.QueryOptions{Strategy: core.StrategyScan}); err != nil {
			env.Close()
			return nil, err
		}
		st := pf.Stats()
		rows = append(rows, IORow{
			Dataset:    name,
			Query:      expr,
			Pages:      env.NoK.Tree.NumPages(),
			Reads:      st.PhysicalReads,
			Hits:       st.CacheHits,
			SinglePass: st.PhysicalReads <= int64(env.NoK.Tree.NumPages()),
		})
		env.Close()
	}
	return rows, nil
}

// WriteIO renders the Proposition 1 check.
func WriteIO(w io.Writer, rows []IORow) {
	fmt.Fprintf(w, "%-10s %8s %10s %10s %12s  %s\n",
		"data set", "pages", "phys.reads", "pool hits", "single-pass", "query")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %8d %10d %10d %12v  %s\n",
			r.Dataset, r.Pages, r.Reads, r.Hits, r.SinglePass, r.Query)
	}
}

// ---- §6.2 heuristic: starting-point strategies --------------------------------

// HeuristicRow compares the three starting-point strategies on one query,
// plus what the auto heuristic picked.
type HeuristicRow struct {
	Dataset  string
	Query    string
	Scan     float64
	Tag      float64
	Value    float64 // -1 when the query has no usable equality constraint
	Path     float64 // §8 path-index extension
	AutoPick string
	AutoSecs float64
}

// Heuristic measures the Q1 (hpy) query of each dataset under forced
// strategies — the experiment behind "sometimes value index is more
// effective than tag-name index (e.g., in Treebank) and sometimes the
// tag-name index is more effective (e.g., in catalog)".
func Heuristic(cfg Config) ([]HeuristicRow, error) {
	cfg = cfg.WithDefaults()
	var rows []HeuristicRow
	for _, name := range cfg.Datasets {
		env, err := Prepare(cfg, name)
		if err != nil {
			return nil, err
		}
		queries, err := workload.ForDataset(name)
		if err != nil {
			env.Close()
			return nil, err
		}
		// Two rows per dataset: the hpy query (value index territory) and
		// the hpn query (path index territory).
		for _, qi := range []int{0, 1} {
			expr := queries[qi].Expr
			row := HeuristicRow{Dataset: name, Query: expr, Value: -1}
			measure := func(s core.Strategy) (float64, error) {
				dur, _, err := timeMedian(cfg.Runs, func() (int, error) {
					ms, _, err := env.NoK.Query(expr, &core.QueryOptions{Strategy: s})
					return len(ms), err
				})
				return dur.Seconds(), err
			}
			if row.Scan, err = measure(core.StrategyScan); err != nil {
				env.Close()
				return nil, err
			}
			if row.Tag, err = measure(core.StrategyTagIndex); err != nil {
				env.Close()
				return nil, err
			}
			if qi == 0 {
				if row.Value, err = measure(core.StrategyValueIndex); err != nil {
					env.Close()
					return nil, err
				}
			}
			if row.Path, err = measure(core.StrategyPathIndex); err != nil {
				env.Close()
				return nil, err
			}
			t0 := time.Now()
			_, stats, err := env.NoK.Query(expr, nil)
			if err != nil {
				env.Close()
				return nil, err
			}
			row.AutoSecs = time.Since(t0).Seconds()
			for _, s := range stats.StrategyUsed {
				if s != core.StrategyAuto {
					row.AutoPick = s.String()
				}
			}
			rows = append(rows, row)
		}
		env.Close()
	}
	return rows, nil
}

// WriteHeuristic renders the strategy comparison.
func WriteHeuristic(w io.Writer, rows []HeuristicRow) {
	fmt.Fprintf(w, "%-10s %10s %10s %10s %10s %18s  %s\n",
		"data set", "scan(s)", "tag(s)", "value(s)", "path(s)", "auto", "query")
	for _, r := range rows {
		value := "     -"
		if r.Value >= 0 {
			value = fmt.Sprintf("%10.4f", r.Value)
		}
		fmt.Fprintf(w, "%-10s %10.4f %10.4f %10s %10.4f %6.4f/%-11s  %s\n",
			r.Dataset, r.Scan, r.Tag, value, r.Path, r.AutoSecs, r.AutoPick, r.Query)
	}
}

// ---- §4.2 update locality ------------------------------------------------------

// UpdateRow measures subtree insertion into the string tree: pages written
// must stay local (constant-ish), not proportional to the store size.
type UpdateRow struct {
	Dataset       string
	Inserts       int
	PagesBefore   int
	PagesAfter    int
	AvgPageWrites float64
	AvgMillis     float64
}

// Update clones each dataset's store (by reloading into a temp dir) and
// performs leaf subtree insertions at spread-out positions.
func Update(cfg Config, inserts int) ([]UpdateRow, error) {
	cfg = cfg.WithDefaults()
	if inserts <= 0 {
		inserts = 20
	}
	var rows []UpdateRow
	for _, name := range cfg.Datasets {
		env, err := Prepare(cfg, name)
		if err != nil {
			return nil, err
		}
		tmp, err := os.MkdirTemp("", "nok-update")
		if err != nil {
			env.Close()
			return nil, err
		}
		db, err := core.LoadXMLFile(tmp+"/db", env.XMLPath, &core.Options{PageSize: cfg.PageSize})
		env.Close()
		if err != nil {
			os.RemoveAll(tmp)
			return nil, err
		}

		// Build the inserted subtree's token string once: <updtag/>. The
		// committed symbol table is immutable under MVCC, so intern into a
		// private clone — the standalone tree below treats syms as opaque.
		updSym, err := db.Tags.Clone().Intern("updtag")
		if err != nil {
			db.Close()
			os.RemoveAll(tmp)
			return nil, err
		}
		var enc stree.SubtreeEncoder
		if err := enc.Open(updSym); err == nil {
			err = enc.Close()
		}
		if err != nil {
			db.Close()
			os.RemoveAll(tmp)
			return nil, err
		}
		tokens, err := enc.Bytes()
		if err != nil {
			db.Close()
			os.RemoveAll(tmp)
			return nil, err
		}

		// §4.2 measures the raw string tree's update locality: pages
		// written per in-place insert. The store's own tree is a
		// copy-on-write snapshot that rejects direct mutation, so copy the
		// document into a standalone plain pager file and insert there.
		tree, pf, err := plainTreeCopy(db, tmp+"/plain.pg", cfg.PageSize)
		db.Close()
		if err != nil {
			os.RemoveAll(tmp)
			return nil, err
		}

		row := UpdateRow{Dataset: name, Inserts: inserts, PagesBefore: tree.NumPages()}
		stride := int(tree.NodeCount()) / inserts
		if stride == 0 {
			stride = 1
		}
		var totalWrites int64
		var elapsed time.Duration
		for k := 0; k < inserts; k++ {
			// Updates shift positions, so each target is re-derived from a
			// fresh scan (the scan is not part of the timed insert).
			var target stree.Pos
			idx := 0
			found := false
			err := tree.Scan(func(pos stree.Pos, _ symtab.Sym, _ int, _ dewey.ID) bool {
				if idx == (k*stride)%int(tree.NodeCount()) {
					target = pos
					found = true
					return false
				}
				idx++
				return true
			})
			if err != nil || !found {
				break
			}
			pf.ResetStats()
			t0 := time.Now()
			if err := tree.InsertChild(target, tokens); err != nil {
				pf.Close()
				os.RemoveAll(tmp)
				return nil, err
			}
			elapsed += time.Since(t0)
			totalWrites += pf.Stats().PhysicalWrites
		}
		row.PagesAfter = tree.NumPages()
		row.AvgPageWrites = float64(totalWrites) / float64(inserts)
		row.AvgMillis = elapsed.Seconds() * 1000 / float64(inserts)
		pf.Close()
		os.RemoveAll(tmp)
		rows = append(rows, row)
	}
	return rows, nil
}

// plainTreeCopy rebuilds db's document into a standalone, non-versioned
// string tree at path, returning the store and its pager file (the caller
// closes the file). Open/close tokens are reconstructed from the
// document-order scan: a node's depth is len(id)-1, so everything at or
// below the incoming node's depth closes before it opens.
func plainTreeCopy(db *core.DB, path string, pageSize int) (*stree.Store, *pager.File, error) {
	pf, err := pager.Create(path, &pager.Options{PageSize: pageSize})
	if err != nil {
		return nil, nil, err
	}
	bld, err := stree.NewBuilder(pf, nil)
	if err != nil {
		pf.Close()
		return nil, nil, err
	}
	open := 0
	var berr error
	err = db.Tree.Scan(func(_ stree.Pos, sym symtab.Sym, _ int, id dewey.ID) bool {
		for open >= len(id) {
			if berr = bld.Close(); berr != nil {
				return false
			}
			open--
		}
		if _, berr = bld.Open(sym); berr != nil {
			return false
		}
		open++
		return true
	})
	if err == nil {
		err = berr
	}
	for err == nil && open > 0 {
		err = bld.Close()
		open--
	}
	var tree *stree.Store
	if err == nil {
		tree, err = bld.Finish()
	}
	if err != nil {
		pf.Close()
		return nil, nil, err
	}
	return tree, pf, nil
}

// WriteUpdate renders the update experiment.
func WriteUpdate(w io.Writer, rows []UpdateRow) {
	fmt.Fprintf(w, "%-10s %8s %12s %12s %14s %10s\n",
		"data set", "inserts", "pages before", "pages after", "avg pg writes", "avg ms")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %8d %12d %12d %14.1f %10.3f\n",
			r.Dataset, r.Inserts, r.PagesBefore, r.PagesAfter, r.AvgPageWrites, r.AvgMillis)
	}
}

// ---- streaming -----------------------------------------------------------------

// StreamRow compares streaming evaluation with stored evaluation.
type StreamRow struct {
	Dataset   string
	Query     string
	Results   int
	Seconds   float64
	StoredSec float64
	MaxBuffer int
	Supported bool
}

// Streaming evaluates Q1 of each dataset directly over the XML file.
func Streaming(cfg Config) ([]StreamRow, error) {
	cfg = cfg.WithDefaults()
	var rows []StreamRow
	for _, name := range cfg.Datasets {
		env, err := Prepare(cfg, name)
		if err != nil {
			return nil, err
		}
		queries, err := workload.ForDataset(name)
		if err != nil {
			env.Close()
			return nil, err
		}
		expr := queries[0].Expr
		tr, err := pattern.Parse(expr)
		if err != nil {
			env.Close()
			return nil, err
		}
		row := StreamRow{Dataset: name, Query: expr}
		if err := stream.Supported(tr); err != nil {
			rows = append(rows, row)
			env.Close()
			continue
		}
		row.Supported = true
		var stats *stream.Stats
		dur, n, err := timeMedian(cfg.Runs, func() (int, error) {
			f, err := os.Open(env.XMLPath)
			if err != nil {
				return 0, err
			}
			defer f.Close()
			rs, st, err := stream.Match(f, tr)
			stats = st
			return len(rs), err
		})
		if err != nil {
			env.Close()
			return nil, err
		}
		row.Seconds = dur.Seconds()
		row.Results = n
		row.MaxBuffer = stats.MaxBufferedNodes
		durStored, _, err := timeMedian(cfg.Runs, func() (int, error) {
			ms, _, err := env.NoK.Query(expr, nil)
			return len(ms), err
		})
		if err != nil {
			env.Close()
			return nil, err
		}
		row.StoredSec = durStored.Seconds()
		rows = append(rows, row)
		env.Close()
	}
	return rows, nil
}

// WriteStreaming renders the streaming experiment.
func WriteStreaming(w io.Writer, rows []StreamRow) {
	fmt.Fprintf(w, "%-10s %8s %10s %12s %10s  %s\n",
		"data set", "results", "stream(s)", "stored(s)", "max buf", "query")
	for _, r := range rows {
		if !r.Supported {
			fmt.Fprintf(w, "%-10s %8s %10s %12s %10s  %s\n", r.Dataset, "-", "unsupported", "-", "-", r.Query)
			continue
		}
		fmt.Fprintf(w, "%-10s %8d %10.4f %12.4f %10d  %s\n",
			r.Dataset, r.Results, r.Seconds, r.StoredSec, r.MaxBuffer, r.Query)
	}
}

// ---- page-skip ablation ----------------------------------------------------------

// SkipRow quantifies the (st,lo,hi) header skipping of Algorithm 2.
type SkipRow struct {
	Dataset        string
	Query          string
	WithSkip       float64
	WithoutSkip    float64
	Examined       uint64 // pages examined with skipping on
	Skipped        uint64 // pages the headers excluded
	ExaminedNoSkip uint64 // pages examined with skipping off
}

// skipQueries force a full iteration over children with large subtrees:
// the returning node is a (rare) direct child, so FOLLOWING-SIBLING must
// hop over every sibling subtree — the access pattern the (st,lo,hi)
// vectors accelerate. The effect concentrates on deep documents
// (treebank), matching the paper's related-work remark that schemes
// without level information pay extra I/O there.
var skipQueries = map[string]string{
	"synthetic-deep": "//rec/marker",
	"author":         "//author/rareelem",
	"address":        "//address/rareelem",
	"catalog":        "//item/rareelem",
	"treebank":       "//S/rareelem",
	"dblp":           "//article/rareelem",
}

// HeaderSkip runs a deep-subtree-skipping query with and without the
// optimization. Page skipping only matters when subtrees span pages, so
// the experiment loads a dedicated store with small (512-byte) pages —
// scaled-down pages on scaled-down documents, exactly like the paper's
// illustrative 20-byte pages on its example tree.
func HeaderSkip(cfg Config) ([]SkipRow, error) {
	cfg = cfg.WithDefaults()
	var rows []SkipRow
	names := append([]string{"synthetic-deep"}, cfg.Datasets...)
	for _, name := range names {
		tmp, err := os.MkdirTemp("", "nok-skip")
		if err != nil {
			return nil, err
		}
		var xmlPath string
		if name == "synthetic-deep" {
			// Records whose subtrees span many pages — the regime the
			// paper's 1000-node pages on billion-node documents live in,
			// scaled down to 37-node pages on a ~100k-node document.
			xmlPath = tmp + "/deep.xml"
			if err := writeDeepSkipDoc(xmlPath, 50, 2000); err != nil {
				os.RemoveAll(tmp)
				return nil, err
			}
		} else {
			env0, err := Prepare(cfg, name)
			if err != nil {
				os.RemoveAll(tmp)
				return nil, err
			}
			xmlPath = env0.XMLPath
			env0.Close()
		}
		smallDB, err := core.LoadXMLFile(tmp+"/db", xmlPath, &core.Options{PageSize: 128, PoolPages: 1 << 16})
		if err != nil {
			os.RemoveAll(tmp)
			return nil, err
		}
		env := &Env{NoK: smallDB}
		cleanup := func() {
			smallDB.Close()
			os.RemoveAll(tmp)
		}
		expr, ok := skipQueries[name]
		if !ok {
			cleanup()
			continue
		}
		row := SkipRow{Dataset: name, Query: expr}
		tree := env.NoK.Tree

		tree.ResetNavStats()
		dur, _, err := timeMedian(cfg.Runs, func() (int, error) {
			tree.ResetNavStats()
			ms, _, err := env.NoK.Query(expr, &core.QueryOptions{Strategy: core.StrategyScan})
			return len(ms), err
		})
		if err != nil {
			cleanup()
			return nil, err
		}
		row.WithSkip = dur.Seconds()
		row.Examined = tree.NavStats().PagesExamined
		row.Skipped = tree.NavStats().PagesSkipped

		dur, _, err = timeMedian(cfg.Runs, func() (int, error) {
			tree.ResetNavStats()
			ms, _, err := env.NoK.Query(expr, &core.QueryOptions{Strategy: core.StrategyScan, DisablePageSkip: true})
			return len(ms), err
		})
		if err != nil {
			cleanup()
			return nil, err
		}
		row.WithoutSkip = dur.Seconds()
		row.ExaminedNoSkip = tree.NavStats().PagesExamined
		rows = append(rows, row)
		cleanup()
	}
	return rows, nil
}

// WriteHeaderSkip renders the ablation.
func WriteHeaderSkip(w io.Writer, rows []SkipRow) {
	fmt.Fprintf(w, "%-10s %10s %12s %10s %10s %14s  %s\n",
		"data set", "skip(s)", "no-skip(s)", "examined", "skipped", "examined(no)", "query")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %10.4f %12.4f %10d %10d %14d  %s\n",
			r.Dataset, r.WithSkip, r.WithoutSkip, r.Examined, r.Skipped, r.ExaminedNoSkip, r.Query)
	}
}

// writeDeepSkipDoc generates records whose first child is a large deep
// subtree followed by a small marker element — iterating a record's
// children must hop over the big subtree, which is where (st,lo,hi)
// skipping pays.
func writeDeepSkipDoc(path string, records, subtreeNodes int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 128<<10)
	w.WriteString("<root>")
	for r := 0; r < records; r++ {
		w.WriteString("<rec><big>")
		// A comb: chains of depth 8 packed side by side.
		for n := 0; n < subtreeNodes; n += 8 {
			w.WriteString("<n1><n2><n3><n4><n5><n6><n7><n8>x</n8></n7></n6></n5></n4></n3></n2></n1>")
		}
		w.WriteString("</big><marker>m</marker></rec>")
	}
	w.WriteString("</root>")
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
