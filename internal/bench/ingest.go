package bench

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"nok/internal/core"
	"nok/internal/dewey"
	"nok/internal/ingest"
	"nok/internal/obs"
)

// ---- Group-commit ingest throughput ------------------------------------------

// IngestResult compares streamed group-commit ingest against per-document
// Insert calls at equal durability (both sides run the same COW commit
// path: every commit flushes and renames the manifest). It also audits the
// incremental-synopsis claim: across the whole streamed load, concurrent
// planned queries must never fall back to the §6.2 heuristic, and the
// final synopsis must belong to the final epoch.
type IngestResult struct {
	Docs       int     // documents streamed through the pipeline
	GroupSecs  float64 // wall time for the streamed load
	GroupRate  float64 // documents/second, group commit
	Batches    uint64  // group commits executed
	Epochs     uint64  // MVCC epochs published by the streamed load
	SingleDocs int     // documents in the per-Insert sample
	SingleSecs float64 // wall time for the per-Insert sample
	SingleRate float64 // documents/second, one commit per document
	Speedup    float64 // GroupRate / SingleRate

	SynopsisFresh bool  // final synopsis epoch == final store epoch
	Fallbacks     int64 // planner fallbacks observed during the stream
	Queries       int   // planned queries raced against the stream
}

// IngestSpeedupMin is the acceptance budget: the group-commit pipeline
// must move documents at least this many times faster than per-document
// Insert commits.
const IngestSpeedupMin = 5.0

// ingestFallbacks resolves the planner's fallback counter (registering is
// idempotent: same name+help returns the shared counter the evaluator
// increments).
var ingestFallbacks = obs.Default.Counter("nok_plan_fallbacks_total",
	"auto-strategy queries evaluated by the heuristic because no fresh synopsis existed")

func ingestDoc(i int) string {
	return fmt.Sprintf("<book><title>g%d</title><author><last>A%d</last></author><price>%d</price></book>",
		i, i%37, i%97)
}

// ingestTarget adapts *core.DB to the pipeline (the bench package works on
// the core layer, like the MVCC experiment).
type ingestTarget struct{ db *core.DB }

func (t ingestTarget) InsertBatch(parentID string, frags [][]byte) error {
	id, err := dewey.Parse(parentID)
	if err != nil {
		return err
	}
	readers := make([]io.Reader, len(frags))
	for i, f := range frags {
		readers[i] = bytes.NewReader(f)
	}
	return t.db.InsertFragmentBatch(id, readers)
}

func (t ingestTarget) Epoch() uint64 { return t.db.Epoch() }

// Ingest runs the experiment: a per-Insert baseline sample, then the full
// streamed load with planned queries racing the pipeline.
func Ingest(cfg Config) (*IngestResult, error) {
	cfg = cfg.WithDefaults()
	docs := 10000 * cfg.Scale
	// The per-Insert baseline pays one full commit (fsync + index rebuild
	// over the whole tree) per document, so it is sampled, not run for all
	// docs — and the sample runs on the smaller store, which biases the
	// baseline FASTER and the measured speedup low.
	sample := 250
	if docs < sample {
		sample = docs
	}
	res := &IngestResult{Docs: docs, SingleDocs: sample}

	tmp, err := os.MkdirTemp("", "nok-ingest")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)

	// Baseline: one commit per document.
	single, err := core.LoadXML(tmp+"/single", strings.NewReader("<lib></lib>"), &core.Options{PageSize: cfg.PageSize})
	if err != nil {
		return nil, err
	}
	defer single.Close()
	t0 := time.Now()
	for i := 0; i < sample; i++ {
		if err := single.InsertFragment(dewey.Root(), strings.NewReader(ingestDoc(i))); err != nil {
			return nil, fmt.Errorf("per-insert baseline: %w", err)
		}
	}
	res.SingleSecs = time.Since(t0).Seconds()
	res.SingleRate = float64(sample) / res.SingleSecs

	// Streamed load: the same documents through the group-commit pipeline,
	// with planned queries racing it to observe any synopsis staleness.
	st, err := core.LoadXML(tmp+"/group", strings.NewReader("<lib></lib>"), &core.Options{PageSize: cfg.PageSize})
	if err != nil {
		return nil, err
	}
	defer st.Close()
	epoch0 := st.Epoch()
	fb0 := ingestFallbacks.Value()

	var feed strings.Builder
	for i := 0; i < docs; i++ {
		feed.WriteString(ingestDoc(i))
	}

	p := ingest.NewPipeline(ingestTarget{st}, ingest.Options{})
	stop := make(chan struct{})
	qdone := make(chan error, 1)
	go func() {
		n := 0
		var qerr error
		for {
			select {
			case <-stop:
				res.Queries = n
				qdone <- qerr
				return
			default:
			}
			// Auto strategy consults the planner; a stale synopsis would
			// bump the fallback counter.
			if _, _, err := st.Query(`//book[price<10]`, nil); err != nil && qerr == nil {
				qerr = err
			}
			n++
			time.Sleep(2 * time.Millisecond)
		}
	}()

	t0 = time.Now()
	sp := ingest.NewSplitter(strings.NewReader(feed.String()))
	for {
		doc, err := sp.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			close(stop)
			<-qdone
			return nil, err
		}
		for {
			err := p.Submit(doc)
			if err == nil {
				break
			}
			var bp *ingest.BackpressureError
			if !errors.As(err, &bp) {
				close(stop)
				<-qdone
				return nil, err
			}
			time.Sleep(bp.RetryAfter)
		}
	}
	if err := p.Close(); err != nil {
		close(stop)
		<-qdone
		return nil, err
	}
	res.GroupSecs = time.Since(t0).Seconds()
	close(stop)
	if err := <-qdone; err != nil {
		return nil, fmt.Errorf("racing query: %w", err)
	}

	stats := p.Stats()
	if stats.Docs != uint64(docs) || stats.Rejected != 0 {
		return nil, fmt.Errorf("pipeline committed %d/%d docs (%d rejected)", stats.Docs, docs, stats.Rejected)
	}
	res.GroupRate = float64(docs) / res.GroupSecs
	res.Batches = stats.Batches
	res.Epochs = st.Epoch() - epoch0
	res.Speedup = res.GroupRate / res.SingleRate
	res.Fallbacks = ingestFallbacks.Value() - fb0
	res.SynopsisFresh = st.SynopsisFresh()
	return res, nil
}

// WriteIngest renders the experiment with its two gates: the ≥5× speedup
// and the zero-fallback synopsis freshness audit.
func WriteIngest(w io.Writer, res *IngestResult) {
	fmt.Fprintf(w, "%-34s %10s %12s %10s\n", "mode", "docs", "wall(s)", "docs/s")
	fmt.Fprintf(w, "%-34s %10d %12.3f %10.0f\n", "per-document Insert (1 epoch/doc)", res.SingleDocs, res.SingleSecs, res.SingleRate)
	fmt.Fprintf(w, "%-34s %10d %12.3f %10.0f\n",
		fmt.Sprintf("group commit (%d epochs)", res.Epochs), res.Docs, res.GroupSecs, res.GroupRate)
	verdict := "PASS"
	if res.Speedup < IngestSpeedupMin {
		verdict = "FAIL"
	}
	fmt.Fprintf(w, "speedup: %.1fx  (budget >=%.0fx, %d batches) %s\n",
		res.Speedup, IngestSpeedupMin, res.Batches, verdict)
	fresh := "PASS"
	if !res.SynopsisFresh || res.Fallbacks != 0 {
		fresh = "FAIL"
	}
	fmt.Fprintf(w, "synopsis: fresh=%v, %d planner fallback(s) across %d raced queries (budget: fresh, 0 fallbacks) %s\n",
		res.SynopsisFresh, res.Fallbacks, res.Queries, fresh)
}
