package bench

import (
	"bytes"
	"strings"
	"testing"
)

func smallCfg(t *testing.T) Config {
	t.Helper()
	return Config{
		WorkDir:  t.TempDir(),
		Scale:    1,
		Runs:     1,
		Datasets: []string{"author"},
	}
}

func TestPrepareAndReuse(t *testing.T) {
	cfg := smallCfg(t)
	env, err := Prepare(cfg, "author")
	if err != nil {
		t.Fatal(err)
	}
	if env.NoK.NodeCount() == 0 || env.DI.Count() == 0 || env.Twig.Count() == 0 || env.Dom.NumNodes() == 0 {
		t.Fatal("engines not loaded")
	}
	if env.NoK.NodeCount() != uint64(env.DI.Count()) || env.DI.Count() != env.Twig.Count() ||
		env.Twig.Count() != env.Dom.NumNodes() {
		t.Errorf("node counts disagree: nok=%d di=%d twig=%d dom=%d",
			env.NoK.NodeCount(), env.DI.Count(), env.Twig.Count(), env.Dom.NumNodes())
	}
	env.Close()

	// Second Prepare must reuse the cached stores.
	env2, err := Prepare(cfg, "author")
	if err != nil {
		t.Fatalf("reuse: %v", err)
	}
	defer env2.Close()
	if env2.NoK.NodeCount() == 0 {
		t.Error("cached store empty")
	}
}

func TestTable1(t *testing.T) {
	rows, err := Table1(smallCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Dataset != "author" {
		t.Fatalf("rows: %+v", rows)
	}
	r := rows[0]
	if r.Nodes == 0 || r.TreeBytes == 0 || r.TagIdxBytes == 0 || r.ValIdxBytes == 0 || r.DewIdxBytes == 0 {
		t.Errorf("zero columns: %+v", r)
	}
	// |tree| must be far smaller than the document (§4.2).
	if r.TreeBytes*5 > r.Bytes {
		t.Errorf("|tree| = %d vs doc %d: not succinct", r.TreeBytes, r.Bytes)
	}
	var buf bytes.Buffer
	WriteTable1(&buf, rows)
	if !strings.Contains(buf.String(), "author") {
		t.Error("rendering broken")
	}
}

func TestTable3SingleDataset(t *testing.T) {
	rows, err := Table3(smallCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 systems", len(rows))
	}
	// NA pattern: Q4, Q6, Q8 for author.
	for _, r := range rows {
		for _, qi := range []int{3, 5, 7} {
			if !r.Cells[qi].NA {
				t.Errorf("%s Q%d should be NA", r.System, qi+1)
			}
		}
	}
	// DI must be NI wherever inequality comparisons appear (none in the
	// author workload: all comparisons are equality) — so DI has no NI.
	var buf bytes.Buffer
	WriteTable3(&buf, rows)
	out := buf.String()
	if !strings.Contains(out, "NoK") || !strings.Contains(out, "NA") {
		t.Errorf("rendering:\n%s", out)
	}
	sums := Summarize(rows)
	if len(sums) != 3 {
		t.Errorf("summaries = %d", len(sums))
	}
	WriteSummary(&buf, sums)
}

func TestRatios(t *testing.T) {
	rows, err := Ratios(smallCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Ratio < 5 {
		t.Errorf("doc/tree ratio = %.1f, expected succinct storage", r.Ratio)
	}
	// §4.2: headers for 1TB of XML must fit in main memory (tens of MB;
	// we allow up to a few hundred MB for small-page test configs).
	if r.HeaderPerTB > 1<<30 {
		t.Errorf("headers per TB = %.0f MB", r.HeaderPerTB/(1<<20))
	}
	var buf bytes.Buffer
	WriteRatios(&buf, rows)
}

func TestIOSinglePass(t *testing.T) {
	rows, err := IO(smallCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.SinglePass {
			t.Errorf("%s: %d reads > %d pages — Proposition 1 violated", r.Dataset, r.Reads, r.Pages)
		}
	}
	var buf bytes.Buffer
	WriteIO(&buf, rows)
}

func TestHeuristic(t *testing.T) {
	rows, err := Heuristic(smallCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.AutoPick != "value-index" {
		t.Errorf("auto picked %s for a value query, want value-index", r.AutoPick)
	}
	var buf bytes.Buffer
	WriteHeuristic(&buf, rows)
}

func TestPlanner(t *testing.T) {
	cfg := smallCfg(t)
	cfg.PageSize = 256
	rows, err := Planner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Two traps + two workload queries for the one configured dataset.
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if !r.Agree {
			t.Errorf("%s %s: planner and heuristic disagree on results", r.Dataset, r.Query)
		}
	}
	// On the trap documents the planner must cut pages scanned at least 2×.
	for _, r := range rows[:2] {
		if r.PagesPlanner*2 > r.PagesHeuristic {
			t.Errorf("%s: planner scanned %d pages vs heuristic %d — want >=2x reduction",
				r.Dataset, r.PagesPlanner, r.PagesHeuristic)
		}
	}
	var buf bytes.Buffer
	WritePlanner(&buf, rows)
	if !bytes.Contains(buf.Bytes(), []byte("trap-value")) {
		t.Errorf("rendering missing trap row:\n%s", buf.String())
	}
}

func TestUpdate(t *testing.T) {
	rows, err := Update(smallCfg(t), 5)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Inserts != 5 {
		t.Errorf("inserts = %d", r.Inserts)
	}
	// Locality: a single small insert touches a handful of pages, not the
	// whole store.
	if r.AvgPageWrites > 20 {
		t.Errorf("avg page writes per insert = %.1f — update not local", r.AvgPageWrites)
	}
	var buf bytes.Buffer
	WriteUpdate(&buf, rows)
}

func TestStreaming(t *testing.T) {
	rows, err := Streaming(smallCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if !r.Supported {
		t.Fatal("author Q1 should stream")
	}
	if r.Results == 0 {
		t.Error("no results")
	}
	var buf bytes.Buffer
	WriteStreaming(&buf, rows)
}

func TestHeaderSkipAblation(t *testing.T) {
	rows, err := HeaderSkip(smallCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	// rows[0] is the synthetic deep document, where skipping must pay off
	// massively; the flat datasets may show zero skips (see EXPERIMENTS.md).
	r := rows[0]
	if r.Dataset != "synthetic-deep" {
		t.Fatalf("first row = %s", r.Dataset)
	}
	if r.Skipped == 0 || r.Examined*4 > r.ExaminedNoSkip {
		t.Errorf("deep document should skip most pages: %+v", r)
	}
	var buf bytes.Buffer
	WriteHeaderSkip(&buf, rows)
}
