// Package bench is the experiment harness: it regenerates every table and
// quantified claim of the paper's evaluation (§6) on the synthetic
// datasets — Table 1 (dataset and index statistics), Table 3 (running
// times of DI, the navigational baseline, TwigStack and NoK over the
// twelve query categories), the §4.2 storage-ratio and header-memory
// claims, Proposition 1's single-pass I/O bound, the §6.2 index-choice
// heuristic, the update locality claim, and the streaming adaptation.
//
// See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
// paper-vs-measured results.
package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"nok/internal/core"
	"nok/internal/datagen"
	"nok/internal/di"
	"nok/internal/domnav"
	"nok/internal/twigstack"
)

// Config parameterizes the harness.
type Config struct {
	// WorkDir caches generated documents and loaded stores across runs.
	WorkDir string
	// Scale multiplies dataset sizes (1 ≈ tens of thousands of nodes).
	Scale int
	// Seed drives the deterministic generators.
	Seed int64
	// Runs is the number of timed repetitions per cell; the reported time
	// is the median (the paper averages 3 runs).
	Runs int
	// Datasets filters which datasets run (empty = all).
	Datasets []string
	// PageSize for the NoK store; 0 = default.
	PageSize int
}

// WithDefaults fills zero fields.
func (c Config) WithDefaults() Config {
	if c.WorkDir == "" {
		c.WorkDir = "bench-work"
	}
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 20040301 // ICDE 2004
	}
	if c.Runs == 0 {
		c.Runs = 3
	}
	if len(c.Datasets) == 0 {
		for _, s := range datagen.Specs() {
			c.Datasets = append(c.Datasets, s.Name)
		}
	}
	return c
}

// Env bundles one dataset with all four loaded engines.
type Env struct {
	Spec    datagen.Spec
	XMLPath string
	Stats   datagen.Stats

	NoK  *core.DB
	DI   *di.Engine
	Twig *twigstack.Engine
	// Dom is the in-memory navigational evaluator standing in for
	// X-Hive/DB (see DESIGN.md §3).
	Dom *domnav.Doc
}

// Close releases the engines.
func (e *Env) Close() {
	if e.NoK != nil {
		e.NoK.Close()
	}
	if e.DI != nil {
		e.DI.Close()
	}
	if e.Twig != nil {
		e.Twig.Close()
	}
}

// Prepare generates (or reuses) the dataset and loads every engine.
func Prepare(cfg Config, name string) (*Env, error) {
	cfg = cfg.WithDefaults()
	spec, ok := datagen.SpecByName(name)
	if !ok {
		return nil, fmt.Errorf("bench: unknown dataset %q", name)
	}
	dir := filepath.Join(cfg.WorkDir, fmt.Sprintf("%s-s%d", name, cfg.Scale))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	env := &Env{Spec: spec, XMLPath: filepath.Join(dir, "data.xml")}

	if _, err := os.Stat(env.XMLPath); err != nil {
		if err := datagen.GenerateFile(spec, env.XMLPath, cfg.Scale, cfg.Seed); err != nil {
			return nil, fmt.Errorf("bench: generating %s: %w", name, err)
		}
	}
	st, err := datagen.ComputeStats(env.XMLPath)
	if err != nil {
		return nil, err
	}
	env.Stats = st

	fail := func(err error) (*Env, error) {
		env.Close()
		return nil, err
	}

	// NoK store. A cached store from an older on-disk format (or a store a
	// crashed run left unreadable) fails Open; rebuild it instead of
	// failing the benchmark.
	nokDir := filepath.Join(dir, "nok")
	loadNoK := func() error {
		var err error
		env.NoK, err = core.LoadXMLFile(nokDir, env.XMLPath, &core.Options{PageSize: cfg.PageSize})
		if err != nil {
			os.RemoveAll(nokDir)
			return fmt.Errorf("bench: loading NoK store: %w", err)
		}
		return nil
	}
	if _, err := os.Stat(nokDir); err != nil {
		if err := loadNoK(); err != nil {
			return fail(err)
		}
	} else if env.NoK, err = core.Open(nokDir, &core.Options{PageSize: cfg.PageSize}); err != nil {
		if err := os.RemoveAll(nokDir); err != nil {
			return fail(err)
		}
		if err := loadNoK(); err != nil {
			return fail(err)
		}
	}

	// DI store (same stale-cache rebuild policy).
	diDir := filepath.Join(dir, "di")
	loadDI := func() error {
		f, err := os.Open(env.XMLPath)
		if err != nil {
			return err
		}
		env.DI, err = di.Load(diDir, f)
		f.Close()
		if err != nil {
			os.RemoveAll(diDir)
			return fmt.Errorf("bench: loading DI store: %w", err)
		}
		return nil
	}
	if _, err := os.Stat(diDir); err != nil {
		if err := loadDI(); err != nil {
			return fail(err)
		}
	} else if env.DI, err = di.Open(diDir); err != nil {
		if err := os.RemoveAll(diDir); err != nil {
			return fail(err)
		}
		if err := loadDI(); err != nil {
			return fail(err)
		}
	}

	// TwigStack store (same stale-cache rebuild policy).
	twDir := filepath.Join(dir, "twig")
	loadTwig := func() error {
		f, err := os.Open(env.XMLPath)
		if err != nil {
			return err
		}
		env.Twig, err = twigstack.Load(twDir, f)
		f.Close()
		if err != nil {
			os.RemoveAll(twDir)
			return fmt.Errorf("bench: loading TwigStack store: %w", err)
		}
		return nil
	}
	if _, err := os.Stat(twDir); err != nil {
		if err := loadTwig(); err != nil {
			return fail(err)
		}
	} else if env.Twig, err = twigstack.Open(twDir); err != nil {
		if err := os.RemoveAll(twDir); err != nil {
			return fail(err)
		}
		if err := loadTwig(); err != nil {
			return fail(err)
		}
	}

	// Navigational baseline (in memory, like a warmed native store).
	f, err := os.Open(env.XMLPath)
	if err != nil {
		return fail(err)
	}
	env.Dom, err = domnav.Parse(f)
	f.Close()
	if err != nil {
		return fail(err)
	}
	return env, nil
}

// timeMedian runs fn cfg.Runs times and returns the median duration and
// the last run's result count.
func timeMedian(runs int, fn func() (int, error)) (time.Duration, int, error) {
	if runs < 1 {
		runs = 1
	}
	durs := make([]time.Duration, 0, runs)
	var count int
	for i := 0; i < runs; i++ {
		t0 := time.Now()
		n, err := fn()
		if err != nil {
			return 0, 0, err
		}
		durs = append(durs, time.Since(t0))
		count = n
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	return durs[len(durs)/2], count, nil
}
