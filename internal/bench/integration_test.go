package bench

import (
	"os"
	"testing"

	"nok/internal/domnav"
	"nok/internal/pattern"
	"nok/internal/stream"
	"nok/internal/workload"
)

// TestAllEnginesAgreeExactly goes beyond the harness's cardinality checks:
// for every workload query of every dataset, the exact result sets of all
// engines are compared — NoK and the streaming evaluator by Dewey ID,
// DI and TwigStack by preorder ordinal — with the DOM oracle as ground
// truth.
func TestAllEnginesAgreeExactly(t *testing.T) {
	if testing.Short() {
		t.Skip("loads five datasets")
	}
	cfg := Config{WorkDir: t.TempDir(), Scale: 1, Runs: 1}
	for _, name := range cfg.WithDefaults().Datasets {
		name := name
		t.Run(name, func(t *testing.T) {
			env, err := Prepare(cfg, name)
			if err != nil {
				t.Fatal(err)
			}
			defer env.Close()
			queries, err := workload.ForDataset(name)
			if err != nil {
				t.Fatal(err)
			}
			for _, q := range queries {
				if q.NA() {
					continue
				}
				tr, err := pattern.Parse(q.Expr)
				if err != nil {
					t.Fatalf("%s: %v", q.Category.ID, err)
				}
				oracle := domnav.Evaluate(env.Dom, tr)
				wantIDs := make([]string, len(oracle))
				wantOrds := make([]int, len(oracle))
				for i, n := range oracle {
					wantIDs[i] = n.ID.String()
					wantOrds[i] = n.Order
				}

				// NoK: Dewey identity.
				ms, _, err := env.NoK.Query(q.Expr, nil)
				if err != nil {
					t.Fatalf("%s NoK: %v", q.Category.ID, err)
				}
				if len(ms) != len(oracle) {
					t.Fatalf("%s NoK: %d results, oracle %d", q.Category.ID, len(ms), len(oracle))
				}
				for i, m := range ms {
					if m.ID.String() != wantIDs[i] {
						t.Fatalf("%s NoK result %d = %s, oracle %s", q.Category.ID, i, m.ID, wantIDs[i])
					}
				}

				// DI: ordinal identity.
				dis, err := env.DI.Query(q.Expr)
				if err == nil {
					if len(dis) != len(oracle) {
						t.Fatalf("%s DI: %d results, oracle %d", q.Category.ID, len(dis), len(oracle))
					}
					for i, r := range dis {
						if r.Ordinal != wantOrds[i] {
							t.Fatalf("%s DI result %d = ord %d, oracle %d", q.Category.ID, i, r.Ordinal, wantOrds[i])
						}
					}
				}

				// TwigStack: ordinal identity.
				tws, err := env.Twig.Query(q.Expr)
				if err == nil {
					if len(tws) != len(oracle) {
						t.Fatalf("%s TwigStack: %d results, oracle %d", q.Category.ID, len(tws), len(oracle))
					}
					for i, r := range tws {
						if r.Ordinal != wantOrds[i] {
							t.Fatalf("%s TwigStack result %d = ord %d, oracle %d", q.Category.ID, i, r.Ordinal, wantOrds[i])
						}
					}
				}

				// Streaming evaluator: Dewey identity, when supported.
				if stream.Supported(tr) == nil {
					f, err := os.Open(env.XMLPath)
					if err != nil {
						t.Fatal(err)
					}
					srs, _, err := stream.Match(f, tr)
					f.Close()
					if err != nil {
						t.Fatalf("%s stream: %v", q.Category.ID, err)
					}
					if len(srs) != len(oracle) {
						t.Fatalf("%s stream: %d results, oracle %d", q.Category.ID, len(srs), len(oracle))
					}
					for i, r := range srs {
						if r.ID.String() != wantIDs[i] {
							t.Fatalf("%s stream result %d = %s, oracle %s", q.Category.ID, i, r.ID, wantIDs[i])
						}
					}
				}
			}
		})
	}
}

// TestDescendantSubstitutedQueriesAgree runs the paper's "//-substituted"
// query variants through NoK and the oracle.
func TestDescendantSubstitutedQueriesAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads a dataset")
	}
	cfg := Config{WorkDir: t.TempDir(), Scale: 1, Runs: 1}
	env, err := Prepare(cfg, "dblp")
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	queries, err := workload.ForDataset("dblp")
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range workload.SubstituteDescendant(queries, 20040301) {
		if q.NA() {
			continue
		}
		tr, err := pattern.Parse(q.Expr)
		if err != nil {
			t.Fatalf("%s: %v", q.Expr, err)
		}
		oracle := domnav.Evaluate(env.Dom, tr)
		ms, _, err := env.NoK.Query(q.Expr, nil)
		if err != nil {
			t.Fatalf("%s: %v", q.Expr, err)
		}
		if len(ms) != len(oracle) {
			t.Fatalf("%s: NoK %d results, oracle %d", q.Expr, len(ms), len(oracle))
		}
		for i := range ms {
			if ms[i].ID.String() != oracle[i].ID.String() {
				t.Fatalf("%s: result %d differs", q.Expr, i)
			}
		}
	}
}
