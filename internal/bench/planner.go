package bench

import (
	"fmt"
	"io"
	"os"
	"strings"

	"nok/internal/core"
	"nok/internal/workload"
)

// ---- cost-based planner vs §6.2 heuristic ------------------------------------

// PlannerRow compares one query under the cost-based planner against the
// same query pinned to the §6.2 heuristic (DisablePlanner): pages scanned,
// median time, and which strategies each side picked.
type PlannerRow struct {
	Dataset        string
	Query          string
	Results        int
	PagesPlanner   uint64
	PagesHeuristic uint64
	// Reduction is heuristic pages / planner pages (>1 = planner wins).
	Reduction     float64
	SecsPlanner   float64
	SecsHeuristic float64
	PlannerPick   string
	HeuristicPick string
	// Agree reports that both sides returned the same result count (the
	// result-identity property the oracle tests prove exhaustively).
	Agree bool
}

// plannerTraps are synthetic documents where the heuristic's fixed
// preference order (value index before everything) picks badly — the
// regressions the planner exists to fix. Both mirror the acceptance tests
// in internal/core/plan_test.go at benchmark scale.
var plannerTraps = []struct {
	name  string
	build func() string
	query string
}{
	{
		// Every item shares one literal; the driving tag is rare. The
		// heuristic drives from the value index (thousands of verifications),
		// the planner from the rare tag.
		name: "trap-value",
		build: func() string {
			var sb strings.Builder
			sb.WriteString("<root>")
			for i := 0; i < 4000; i++ {
				sb.WriteString("<item><common>dup</common></item>")
			}
			sb.WriteString("<rare><common>dup</common></rare><rare><common>dup</common></rare></root>")
			return sb.String()
		},
		query: `//rare[common="dup"]`,
	},
	{
		// The anchored path is selective but its literal is everywhere: the
		// planner's path summary beats the heuristic's value-index reflex.
		name: "trap-path",
		build: func() string {
			var sb strings.Builder
			sb.WriteString("<lib><shelf>")
			for i := 0; i < 4000; i++ {
				sb.WriteString("<book><title>T</title></book>")
			}
			sb.WriteString("</shelf><special><book><title>T</title></book><book><title>T</title></book></special></lib>")
			return sb.String()
		},
		query: `/lib/special/book[title="T"]`,
	},
}

// Planner measures pages scanned with the planner on vs off: the two
// synthetic trap documents first, then the hpy/hpn queries of each
// configured dataset (where the heuristic usually already picks well — those
// rows guard against planner-introduced regressions).
func Planner(cfg Config) ([]PlannerRow, error) {
	cfg = cfg.WithDefaults()
	var rows []PlannerRow

	for _, trap := range plannerTraps {
		tmp, err := os.MkdirTemp("", "nok-planner")
		if err != nil {
			return nil, err
		}
		xmlPath := tmp + "/trap.xml"
		if err := os.WriteFile(xmlPath, []byte(trap.build()), 0o644); err != nil {
			os.RemoveAll(tmp)
			return nil, err
		}
		db, err := core.LoadXMLFile(tmp+"/db", xmlPath, &core.Options{PageSize: cfg.PageSize})
		if err != nil {
			os.RemoveAll(tmp)
			return nil, err
		}
		row, err := plannerRow(cfg, db, trap.name, trap.query)
		db.Close()
		os.RemoveAll(tmp)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}

	for _, name := range cfg.Datasets {
		env, err := Prepare(cfg, name)
		if err != nil {
			return nil, err
		}
		queries, err := workload.ForDataset(name)
		if err != nil {
			env.Close()
			return nil, err
		}
		for _, qi := range []int{0, 1} {
			row, err := plannerRow(cfg, env.NoK, name, queries[qi].Expr)
			if err != nil {
				env.Close()
				return nil, err
			}
			rows = append(rows, row)
		}
		env.Close()
	}
	return rows, nil
}

// plannerRow measures one query both ways on an open store.
func plannerRow(cfg Config, db *core.DB, name, expr string) (PlannerRow, error) {
	row := PlannerRow{Dataset: name, Query: expr}

	measure := func(opts *core.QueryOptions) (float64, uint64, string, int, error) {
		var pages uint64
		var pick string
		var results int
		dur, _, err := timeMedian(cfg.Runs, func() (int, error) {
			ms, stats, err := db.Query(expr, opts)
			if err != nil {
				return 0, err
			}
			pages = stats.PagesScanned
			pick = strategyPick(stats)
			results = len(ms)
			return results, nil
		})
		return dur.Seconds(), pages, pick, results, err
	}

	var err error
	var nPlan, nHeur int
	if row.SecsPlanner, row.PagesPlanner, row.PlannerPick, nPlan, err = measure(nil); err != nil {
		return row, err
	}
	if row.SecsHeuristic, row.PagesHeuristic, row.HeuristicPick, nHeur, err = measure(&core.QueryOptions{DisablePlanner: true}); err != nil {
		return row, err
	}
	row.Results = nPlan
	row.Agree = nPlan == nHeur
	if row.PagesPlanner > 0 {
		row.Reduction = float64(row.PagesHeuristic) / float64(row.PagesPlanner)
	}
	return row, nil
}

// strategyPick renders the effective per-partition strategies compactly.
func strategyPick(stats *core.QueryStats) string {
	parts := make([]string, len(stats.StrategyUsed))
	for i, s := range stats.StrategyUsed {
		parts[i] = s.String()
	}
	return strings.Join(parts, ",")
}

// WritePlanner renders the planner-vs-heuristic comparison.
func WritePlanner(w io.Writer, rows []PlannerRow) {
	fmt.Fprintf(w, "%-12s %8s %10s %10s %7s %10s %10s %6s  %-24s %-24s %s\n",
		"data set", "results", "pages(pl)", "pages(h)", "reduce", "pl(s)", "heur(s)", "agree", "planner pick", "heuristic pick", "query")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %8d %10d %10d %6.1fx %10.4f %10.4f %6v  %-24s %-24s %s\n",
			r.Dataset, r.Results, r.PagesPlanner, r.PagesHeuristic, r.Reduction,
			r.SecsPlanner, r.SecsHeuristic, r.Agree, r.PlannerPick, r.HeuristicPick, r.Query)
	}
}
