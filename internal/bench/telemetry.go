package bench

import (
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"nok/internal/core"
	"nok/internal/telemetry"
)

// ---- telemetry capture overhead ----------------------------------------------

// TelemetryRow reports the cost of telemetry capture for one query of the
// workload suite: per-query time with the pipeline enabled vs disabled
// (min-of-batches estimate), and the relative overhead.
type TelemetryRow struct {
	Query       string
	Iters       int     // queries per timed batch (calibrated per query)
	UsOn        float64 // per-query microseconds, telemetry enabled
	UsOff       float64 // per-query microseconds, telemetry disabled
	OverheadPct float64 // (on-off)/off * 100
}

// TelemetryResult is the full overhead experiment: per-query rows plus the
// suite aggregate — the time to run every workload query once — which is
// the number the acceptance budget is checked against. Capture cost is a
// fixed few hundred nanoseconds per query, so its relative cost on a mixed
// warm-cache workload is what the budget promises; the cheapest rows
// (point lookups a few microseconds long) deliberately overstate it and
// are reported for visibility.
type TelemetryResult struct {
	Rows           []TelemetryRow
	Rounds         int
	AggUsOn        float64 // Σ per-query µs: one pass over the suite, enabled
	AggUsOff       float64 // same pass, disabled
	AggOverheadPct float64
}

// TelemetryBudgetPct is the acceptance budget: telemetry capture may cost
// at most this fraction of a mixed warm-cache workload's query time.
const TelemetryBudgetPct = 3.0

// telemetryDoc builds the measurement document: enough books that index
// lookups and selective scans do real work, small enough that every page
// stays in the buffer pool — the warm-cache regime where fixed per-query
// overhead is most visible.
func telemetryDoc(items int) string {
	var sb strings.Builder
	sb.WriteString("<lib>")
	for i := 0; i < items; i++ {
		fmt.Fprintf(&sb, "<book><title>t%d</title><price>%d</price></book>", i, i%97)
	}
	sb.WriteString("<special><book><title>gold</title></book></special></lib>")
	return sb.String()
}

// telemetryQueries is the warm-cache workload suite, mixing the query
// shapes a live server sees: value-index point lookups, rooted path walks,
// a tag lookup, and a selective value scan returning ~2% of the books.
// Capture cost is fixed per query, so the cheapest queries carry the
// strongest per-row signal while the scan anchors the suite at a
// representative weight.
var telemetryQueries = []string{
	`//book[title="gold"]`,
	`/lib/special/book`,
	`//special`,
	`/lib/book[price="50"]`,
	`//book[price<3]`,
}

// Telemetry measures the end-to-end cost of the telemetry pipeline: the
// same warm-cache workload timed with capture enabled and disabled.
//
// Timing noise on a shared machine (scheduler preemption, GC, frequency
// drift) is additive and intermittent, and a single event dwarfs the
// sub-microsecond capture cost being measured. So instead of a few large
// batches, each side runs many short batches (calibrated to ~1-2ms)
// interleaved on/off with alternating order, and the estimator is the
// minimum batch time per side: a short batch has a real chance of landing
// in a quiet scheduling window, and the two minima then compare clean runs
// against clean runs.
func Telemetry(cfg Config) (*TelemetryResult, error) {
	cfg = cfg.WithDefaults()
	const (
		rounds      = 120                     // interleaved on/off batch pairs per query
		targetBatch = 1500 * time.Microsecond // calibrated batch length
	)

	tmp, err := os.MkdirTemp("", "nok-telemetry")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)
	xmlPath := tmp + "/doc.xml"
	if err := os.WriteFile(xmlPath, []byte(telemetryDoc(2000*cfg.Scale)), 0o644); err != nil {
		return nil, err
	}
	db, err := core.LoadXMLFile(tmp+"/db", xmlPath, &core.Options{PageSize: cfg.PageSize})
	if err != nil {
		return nil, err
	}
	defer db.Close()

	// The pipeline must end this function in whatever state it started.
	wasEnabled := telemetry.Default.Enabled()
	defer telemetry.Default.SetEnabled(wasEnabled)

	batch := func(expr string, iters int) (time.Duration, error) {
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			if _, _, err := db.Query(expr, nil); err != nil {
				return 0, err
			}
		}
		return time.Since(t0), nil
	}

	// Warm up (pages into the pool, plan cache populated, both code paths
	// exercised) and calibrate each query's batch size to ~targetBatch.
	iters := make([]int, len(telemetryQueries))
	for qi, q := range telemetryQueries {
		telemetry.Default.SetEnabled(true)
		if _, err := batch(q, 50); err != nil {
			return nil, err
		}
		telemetry.Default.SetEnabled(false)
		d, err := batch(q, 50)
		if err != nil {
			return nil, err
		}
		perQuery := d / 50
		if perQuery <= 0 {
			perQuery = time.Microsecond
		}
		iters[qi] = int(targetBatch / perQuery)
		if iters[qi] < 4 {
			iters[qi] = 4
		}
		if iters[qi] > 400 {
			iters[qi] = 400
		}
	}

	res := &TelemetryResult{Rounds: rounds}
	minOn := make([]time.Duration, len(telemetryQueries))
	minOff := make([]time.Duration, len(telemetryQueries))
	for qi := range telemetryQueries {
		for r := 0; r < rounds; r++ {
			// Alternate which side runs first so one-sided drift (GC debt,
			// frequency scaling) can't bias the comparison.
			order := []bool{true, false}
			if r%2 == 1 {
				order[0], order[1] = false, true
			}
			var dOn, dOff time.Duration
			for _, on := range order {
				telemetry.Default.SetEnabled(on)
				d, err := batch(telemetryQueries[qi], iters[qi])
				if err != nil {
					return nil, err
				}
				if on {
					dOn = d
				} else {
					dOff = d
				}
			}
			if r == 0 || dOn < minOn[qi] {
				minOn[qi] = dOn
			}
			if r == 0 || dOff < minOff[qi] {
				minOff[qi] = dOff
			}
		}
	}

	for qi, q := range telemetryQueries {
		row := TelemetryRow{
			Query: q,
			Iters: iters[qi],
			UsOn:  minOn[qi].Seconds() * 1e6 / float64(iters[qi]),
			UsOff: minOff[qi].Seconds() * 1e6 / float64(iters[qi]),
		}
		if row.UsOff > 0 {
			row.OverheadPct = (row.UsOn - row.UsOff) / row.UsOff * 100
		}
		res.Rows = append(res.Rows, row)
		res.AggUsOn += row.UsOn
		res.AggUsOff += row.UsOff
	}
	if res.AggUsOff > 0 {
		res.AggOverheadPct = (res.AggUsOn - res.AggUsOff) / res.AggUsOff * 100
	}
	return res, nil
}

// WriteTelemetry renders the overhead experiment; the aggregate line — one
// pass over the whole suite — is the one the ≤3% budget applies to.
func WriteTelemetry(w io.Writer, res *TelemetryResult) {
	fmt.Fprintf(w, "%-28s %6s %12s %12s %9s\n", "query", "batch", "on(µs/q)", "off(µs/q)", "overhead")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%-28s %6d %12.2f %12.2f %8.2f%%\n", r.Query, r.Iters, r.UsOn, r.UsOff, r.OverheadPct)
	}
	verdict := "PASS"
	if res.AggOverheadPct > TelemetryBudgetPct {
		verdict = "FAIL"
	}
	fmt.Fprintf(w, "%-28s %6s %12.2f %12.2f %8.2f%%  (budget %.0f%%, min of %d rounds) %s\n",
		"suite (one pass)", "", res.AggUsOn, res.AggUsOff, res.AggOverheadPct, TelemetryBudgetPct, res.Rounds, verdict)
}
