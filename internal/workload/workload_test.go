package workload

import (
	"bytes"
	"testing"

	"nok/internal/datagen"
	"nok/internal/domnav"
	"nok/internal/pattern"
)

func TestCategoriesMatchTable2(t *testing.T) {
	cats := Categories()
	if len(cats) != 12 {
		t.Fatalf("categories = %d, want 12", len(cats))
	}
	wantCodes := []string{"hpy", "hpn", "hby", "hbn", "mpy", "mpn",
		"mby", "mbn", "lpy", "lpn", "lby", "lbn"}
	for i, c := range cats {
		if c.Code != wantCodes[i] {
			t.Errorf("Q%d code = %s, want %s", i+1, c.Code, wantCodes[i])
		}
		if c.ID != "Q"+itoa(i+1) {
			t.Errorf("ID = %s", c.ID)
		}
		wantValue := c.Code[2] == 'y'
		if c.Value != wantValue {
			t.Errorf("%s Value = %v", c.ID, c.Value)
		}
	}
}

func itoa(i int) string {
	if i >= 10 {
		return string(rune('0'+i/10)) + string(rune('0'+i%10))
	}
	return string(rune('0' + i))
}

func TestNAPatternMatchesTable3(t *testing.T) {
	naCells := map[string][]string{
		"author":   {"Q4", "Q6", "Q8"},
		"address":  {"Q4", "Q6", "Q8"},
		"catalog":  {"Q4", "Q6", "Q8"},
		"treebank": {"Q5", "Q7", "Q9", "Q11"},
		"dblp":     {},
	}
	for ds, want := range naCells {
		qs, err := ForDataset(ds)
		if err != nil {
			t.Fatal(err)
		}
		var got []string
		for _, q := range qs {
			if q.NA() {
				got = append(got, q.Category.ID)
			}
		}
		if len(got) != len(want) {
			t.Errorf("%s: NA cells %v, want %v", ds, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s: NA cells %v, want %v", ds, got, want)
			}
		}
	}
}

func TestAllQueriesParse(t *testing.T) {
	for _, ds := range []string{"author", "address", "catalog", "treebank", "dblp"} {
		qs, err := ForDataset(ds)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range qs {
			if q.NA() {
				continue
			}
			if _, err := pattern.Parse(q.Expr); err != nil {
				t.Errorf("%s %s: %v", ds, q.Category.ID, err)
			}
		}
	}
}

func TestUnknownDataset(t *testing.T) {
	if _, err := ForDataset("nope"); err == nil {
		t.Error("expected error")
	}
}

// TestSelectivityCalibration verifies the planted needles give each
// category its intended result-size band on generated data (the property
// Table 3's analysis depends on).
func TestSelectivityCalibration(t *testing.T) {
	bands := map[string][2]int{
		"high":     {1, 9},
		"moderate": {10, 100},
		"low":      {101, 1 << 30},
	}
	for _, spec := range datagen.Specs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := spec.Generate(&buf, 1, 7); err != nil {
				t.Fatal(err)
			}
			doc, err := domnav.Parse(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			qs, err := ForDataset(spec.Name)
			if err != nil {
				t.Fatal(err)
			}
			for _, q := range qs {
				if q.NA() {
					continue
				}
				tr, err := pattern.Parse(q.Expr)
				if err != nil {
					t.Fatalf("%s: %v", q.Category.ID, err)
				}
				n := len(domnav.Evaluate(doc, tr))
				band := bands[q.Category.Selectivity]
				if n < band[0] || n > band[1] {
					t.Errorf("%s %s (%s): %d results, want in [%d, %d] — %s",
						spec.Name, q.Category.ID, q.Category.Code, n, band[0], band[1], q.Expr)
				}
			}
		})
	}
}

func TestSubstituteDescendant(t *testing.T) {
	qs, err := ForDataset("dblp")
	if err != nil {
		t.Fatal(err)
	}
	subs := SubstituteDescendant(qs, 7)
	if len(subs) != len(qs) {
		t.Fatal("length changed")
	}
	changed := 0
	for i := range qs {
		if qs[i].NA() {
			if !subs[i].NA() {
				t.Error("NA cell changed")
			}
			continue
		}
		if _, err := pattern.Parse(subs[i].Expr); err != nil {
			t.Errorf("substituted %q does not parse: %v", subs[i].Expr, err)
		}
		if subs[i].Expr != qs[i].Expr {
			changed++
			// Exactly one extra slash.
			if len(subs[i].Expr) != len(qs[i].Expr)+1 {
				t.Errorf("%q -> %q: more than one substitution", qs[i].Expr, subs[i].Expr)
			}
		}
	}
	if changed == 0 {
		t.Error("no queries were substituted")
	}
	// Deterministic in the seed.
	again := SubstituteDescendant(qs, 7)
	for i := range subs {
		if subs[i].Expr != again[i].Expr {
			t.Fatal("not deterministic")
		}
	}
}
