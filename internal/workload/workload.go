// Package workload defines the query workload of the evaluation: the
// twelve categories of Table 2 (selectivity × topology × value-constraint)
// instantiated for each of the five datasets, including the NA cells of
// Table 3 (categories inapplicable to a dataset).
//
// Category naming follows the paper: a three-character string where
// position 1 is selectivity (h/m/l), position 2 topology (p = single path,
// b = bushy), position 3 value constraints (y/n). Q1..Q12 enumerate the
// combinations in Table 2's order.
package workload

import (
	"fmt"
	"math/rand"

	"nok/internal/datagen"
)

// Category is one of the twelve query categories.
type Category struct {
	// ID is Q1..Q12.
	ID string
	// Code is the three-letter category (e.g. "hpy").
	Code string
	// Selectivity, Topology, Value spell the code out.
	Selectivity string // "high", "moderate", "low"
	Topology    string // "path", "bushy"
	Value       bool   // has value constraints
	// Example is Table 2's schematic query.
	Example string
}

// Categories lists Table 2 verbatim.
func Categories() []Category {
	return []Category{
		{"Q1", "hpy", "high", "path", true, `/a/b[c="hi"]`},
		{"Q2", "hpn", "high", "path", false, `/a/b/c/d`},
		{"Q3", "hby", "high", "bushy", true, `/a/b[c="hi"][d="hi"]/e`},
		{"Q4", "hbn", "high", "bushy", false, `/a/b[c][d][e][f]`},
		{"Q5", "mpy", "moderate", "path", true, `/a/b[z="mod"]/d/e`},
		{"Q6", "mpn", "moderate", "path", false, `/a/b/e`},
		{"Q7", "mby", "moderate", "bushy", true, `/a/b[c="mod"][d="mod"]`},
		{"Q8", "mbn", "moderate", "bushy", false, `/a/b[c][d][e]`},
		{"Q9", "lpy", "low", "path", true, `/a/b[c="low"]/d`},
		{"Q10", "lpn", "low", "path", false, `/a/b/c`},
		{"Q11", "lby", "low", "bushy", true, `/a/b[c="low"][d="low"]`},
		{"Q12", "lbn", "low", "bushy", false, `/a/b[c][d]`},
	}
}

// Query is one concrete query of the workload.
type Query struct {
	Category Category
	// Expr is the path expression; empty when the category is NA for the
	// dataset (Table 3's NA cells).
	Expr string
}

// NA reports whether the cell is not applicable.
func (q Query) NA() bool { return q.Expr == "" }

// ForDataset instantiates the twelve categories for a dataset, mirroring
// Table 3's NA pattern: the data-centric sets (author, address, catalog)
// have no high/moderate-selectivity queries without value constraints
// (Q4, Q6, Q8 NA), and Treebank's randomly generated values make every
// value query high-selectivity (Q5, Q7, Q9, Q11 NA).
func ForDataset(name string) ([]Query, error) {
	var exprs map[string]string
	switch name {
	case "author":
		exprs = authorQueries()
	case "address":
		exprs = addressQueries()
	case "catalog":
		exprs = catalogQueries()
	case "treebank":
		exprs = treebankQueries()
	case "dblp":
		exprs = dblpQueries()
	default:
		return nil, fmt.Errorf("workload: unknown dataset %q", name)
	}
	var out []Query
	for _, cat := range Categories() {
		out = append(out, Query{Category: cat, Expr: exprs[cat.ID]})
	}
	return out, nil
}

// The needle literals planted by the generators.
var (
	hi  = datagen.NeedleHigh
	mod = datagen.NeedleMod
	low = datagen.NeedleLow
)

func authorQueries() map[string]string {
	return map[string]string{
		"Q1": fmt.Sprintf(`/authors/author[address/city=%q]`, hi),
		"Q2": `/authors/author/rareelem/flag`,
		"Q3": fmt.Sprintf(`/authors/author[address/city=%q][born]/name`, hi),
		// Q4 (hbn) NA: no tag combination is high-selectivity and bushy.
		"Q5": fmt.Sprintf(`/authors/author[address/city=%q]/name/last`, mod),
		// Q6 (mpn) NA.
		"Q7": fmt.Sprintf(`/authors/author[address/city=%q][born]`, mod),
		// Q8 (mbn) NA.
		"Q9":  fmt.Sprintf(`/authors/author[address/city=%q]/name`, low),
		"Q10": `//author/name/first`,
		"Q11": fmt.Sprintf(`/authors/author[address/city=%q][name/last]`, low),
		"Q12": `/authors/author[name][address]`,
	}
}

func addressQueries() map[string]string {
	return map[string]string{
		"Q1":  fmt.Sprintf(`/addresses/address[city=%q]`, hi),
		"Q2":  `/addresses/address/rareelem/flag`,
		"Q3":  fmt.Sprintf(`/addresses/address[city=%q][country]/phone`, hi),
		"Q5":  fmt.Sprintf(`/addresses/address[city=%q]/postcode`, mod),
		"Q7":  fmt.Sprintf(`/addresses/address[city=%q][province]`, mod),
		"Q9":  fmt.Sprintf(`/addresses/address[city=%q]/street`, low),
		"Q10": `/addresses/address/city`,
		"Q11": fmt.Sprintf(`/addresses/address[city=%q][phone]`, low),
		"Q12": `/addresses/address[street][country]`,
	}
}

func catalogQueries() map[string]string {
	return map[string]string{
		"Q1":  fmt.Sprintf(`/catalog/category/item[publisher=%q]`, hi),
		"Q2":  `/catalog/category/item/rareelem/flag`,
		"Q3":  fmt.Sprintf(`/catalog/category/item[publisher=%q][isbn]/title`, hi),
		"Q5":  fmt.Sprintf(`//item[publisher=%q]/authors_info/author`, mod),
		"Q7":  fmt.Sprintf(`//item[publisher=%q][isbn]`, mod),
		"Q9":  fmt.Sprintf(`//item[publisher=%q]/title`, low),
		"Q10": `/catalog/category/item/authors_info/author/name/first`,
		"Q11": fmt.Sprintf(`//item[publisher=%q][title]`, low),
		"Q12": `//item[title][isbn]`,
	}
}

func treebankQueries() map[string]string {
	return map[string]string{
		"Q1": fmt.Sprintf(`//NP[NN=%q]`, hi),
		"Q2": `//rareelem/flag`,
		"Q3": fmt.Sprintf(`//NP[NN=%q][DT]`, hi),
		"Q4": `//rareelem[flag][extra]`,
		// Q5/Q7/Q9/Q11 NA: Treebank values are random, so every value
		// query is high-selectivity.
		"Q6":  `//modelem/flag`,
		"Q8":  `//modelem[flag][extra]`,
		"Q10": `//NP/NN`,
		"Q12": `//NP[DT][NN]`,
	}
}

func dblpQueries() map[string]string {
	return map[string]string{
		"Q1":  fmt.Sprintf(`/dblp/article[author=%q]`, hi),
		"Q2":  `/dblp/article/rareelem/flag`,
		"Q3":  fmt.Sprintf(`/dblp/article[author=%q][year]/title`, hi),
		"Q4":  `//article[rareelem][title][year][author]`,
		"Q5":  fmt.Sprintf(`//article[author=%q]/title`, mod),
		"Q6":  `//modelem/flag`,
		"Q7":  fmt.Sprintf(`//article[author=%q][year]`, mod),
		"Q8":  `//article[modelem][title][year]`,
		"Q9":  fmt.Sprintf(`//article[author=%q]/title`, low),
		"Q10": `/dblp/article/title`,
		"Q11": fmt.Sprintf(`//article[author=%q][year]`, low),
		"Q12": `//article[title][year]`,
	}
}

// SubstituteDescendant implements the paper's "we also tested // axis by
// randomly substituting it for a / axis": each query gets one randomly
// chosen '/' step rewritten to '//', deterministically in seed. Queries
// without a substitutable step are returned unchanged.
func SubstituteDescendant(qs []Query, seed int64) []Query {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Query, len(qs))
	for i, q := range qs {
		out[i] = q
		if q.NA() {
			continue
		}
		// Collect the byte offsets of single-'/' step separators outside
		// predicates (substituting inside predicates is also legal but the
		// paper's phrasing targets the main path).
		var slashes []int
		depth := 0
		for j := 0; j < len(q.Expr); j++ {
			switch q.Expr[j] {
			case '[':
				depth++
			case ']':
				depth--
			case '/':
				if depth == 0 && (j+1 >= len(q.Expr) || q.Expr[j+1] != '/') &&
					(j == 0 || q.Expr[j-1] != '/') {
					slashes = append(slashes, j)
				}
			}
		}
		if len(slashes) == 0 {
			continue
		}
		at := slashes[rng.Intn(len(slashes))]
		out[i].Expr = q.Expr[:at] + "/" + q.Expr[at:]
	}
	return out
}
