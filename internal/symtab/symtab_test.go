package symtab

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestInternIsIdempotent(t *testing.T) {
	tab := New()
	a1, err := tab.Intern("book")
	if err != nil {
		t.Fatal(err)
	}
	a2, err := tab.Intern("book")
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Errorf("Intern(book) twice: %d != %d", a1, a2)
	}
	if tab.Len() != 1 {
		t.Errorf("Len = %d, want 1", tab.Len())
	}
}

func TestSymbolsAreDenseFromOne(t *testing.T) {
	tab := New()
	names := []string{"bib", "book", "@year", "author", "title"}
	for i, name := range names {
		s, err := tab.Intern(name)
		if err != nil {
			t.Fatal(err)
		}
		if s != Sym(i+1) {
			t.Errorf("Intern(%q) = %d, want %d", name, s, i+1)
		}
	}
}

func TestZeroSymIsInvalid(t *testing.T) {
	tab := New()
	if _, ok := tab.Name(0); ok {
		t.Error("Name(0) should not resolve")
	}
	if _, ok := tab.Name(1); ok {
		t.Error("Name(1) on empty table should not resolve")
	}
}

func TestLookupDoesNotIntern(t *testing.T) {
	tab := New()
	if _, ok := tab.Lookup("missing"); ok {
		t.Error("Lookup should miss on empty table")
	}
	if tab.Len() != 0 {
		t.Error("Lookup must not intern")
	}
}

func TestRoundTripNameSym(t *testing.T) {
	tab := New()
	f := func(name string) bool {
		s, err := tab.Intern(name)
		if err != nil {
			return false
		}
		got, ok := tab.Name(s)
		return ok && got == name
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	tab := New()
	names := []string{"bib", "book", "@year", "title", "author", "last", "first",
		"publisher", "price", "日本語"}
	for _, n := range names {
		if _, err := tab.Intern(n); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if _, err := tab.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tab.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), tab.Len())
	}
	for _, n := range names {
		s1, _ := tab.Lookup(n)
		s2, ok := got.Lookup(n)
		if !ok || s1 != s2 {
			t.Errorf("after round trip, Lookup(%q) = %d,%v, want %d", n, s2, ok, s1)
		}
	}
}

func TestSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tags.sym")
	tab := New()
	for i := 0; i < 300; i++ {
		if _, err := tab.Intern(fmt.Sprintf("tag%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tab.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 300 {
		t.Fatalf("Len = %d, want 300", got.Len())
	}
	s, ok := got.Lookup("tag123")
	if !ok {
		t.Fatal("tag123 missing after load")
	}
	if name, _ := got.Name(s); name != "tag123" {
		t.Errorf("Name(%d) = %q", s, name)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a table"))); err == nil {
		t.Error("expected error reading garbage")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("expected error reading empty input")
	}
}

func TestNamesSorted(t *testing.T) {
	tab := New()
	for _, n := range []string{"zebra", "apple", "mango"} {
		if _, err := tab.Intern(n); err != nil {
			t.Fatal(err)
		}
	}
	names := tab.Names()
	want := []string{"apple", "mango", "zebra"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
}

func TestAlphabetCapacity(t *testing.T) {
	if testing.Short() {
		t.Skip("fills the whole alphabet")
	}
	tab := New()
	for i := 0; i < int(MaxSym); i++ {
		if _, err := tab.Intern(fmt.Sprintf("t%d", i)); err != nil {
			t.Fatalf("Intern %d: %v", i, err)
		}
	}
	if _, err := tab.Intern("one-too-many"); err != ErrFull {
		t.Errorf("expected ErrFull, got %v", err)
	}
}

func TestSaveToUnwritablePath(t *testing.T) {
	tab := New()
	if _, err := tab.Intern("x"); err != nil {
		t.Fatal(err)
	}
	if err := tab.Save(filepath.Join(t.TempDir(), "no", "such", "dir", "t.sym")); err == nil {
		t.Error("Save into missing directory should fail")
	}
}

func TestSaveOverwritesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.sym")
	tab := New()
	if _, err := tab.Intern("one"); err != nil {
		t.Fatal(err)
	}
	if err := tab.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Intern("two"); err != nil {
		t.Fatal(err)
	}
	if err := tab.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Errorf("Len after resave = %d", got.Len())
	}
	// No temp file left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory has %d entries after Save", len(entries))
	}
}
