// Package symtab maps XML tag names to the fixed-width symbols of the
// storage alphabet Σ.
//
// The paper's string representation stores one 2-byte character from Σ per
// element. This package owns that mapping: tag (and attribute) names are
// interned to dense uint16 symbols, and the table is persisted alongside the
// string representation so symbols can be decoded back to names.
//
// Symbol 0 is reserved (never assigned), and the high byte 0xFF is reserved
// for the close-parenthesis marker of the string representation, so at most
// 0xFEFF-1 distinct names can be interned — far beyond any real document
// (Treebank, the richest dataset in the paper, has 250 tags).
package symtab

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"nok/internal/vfs"
)

// Sym is a 2-byte character of the storage alphabet Σ.
type Sym uint16

// MaxSym is the largest assignable symbol. Values above it would collide
// with the close-parenthesis byte marker (0xFF) in the string
// representation's encoding.
const MaxSym Sym = 0xFEFF

// ErrFull is returned by Intern when the alphabet is exhausted.
var ErrFull = errors.New("symtab: symbol alphabet exhausted")

// AttrPrefix distinguishes attribute names from element names in the table;
// the attribute year is interned as "@year", matching the paper's treatment
// of attributes as child nodes (e.g. @year → z in Example 1).
const AttrPrefix = "@"

// Table is an interning table between names and symbols. The zero value is
// not ready for use; call New.
type Table struct {
	byName map[string]Sym
	bySym  []string // index sym-1 holds the name for sym
}

// New returns an empty table.
func New() *Table {
	return &Table{byName: make(map[string]Sym)}
}

// Intern returns the symbol for name, assigning the next free symbol if the
// name has not been seen. It fails with ErrFull when the alphabet is
// exhausted.
func (t *Table) Intern(name string) (Sym, error) {
	if s, ok := t.byName[name]; ok {
		return s, nil
	}
	next := Sym(len(t.bySym) + 1)
	if next > MaxSym {
		return 0, ErrFull
	}
	t.byName[name] = next
	t.bySym = append(t.bySym, name)
	return next, nil
}

// Clone returns an independent copy of the table. Committed tables are
// immutable and shared between store snapshots; a mutation clones the
// current table and interns new names into the clone, so readers of the
// old epoch never observe a map write.
func (t *Table) Clone() *Table {
	c := &Table{
		byName: make(map[string]Sym, len(t.byName)),
		bySym:  append([]string(nil), t.bySym...),
	}
	for name, sym := range t.byName {
		c.byName[name] = sym
	}
	return c
}

// Lookup returns the symbol for name without interning.
func (t *Table) Lookup(name string) (Sym, bool) {
	s, ok := t.byName[name]
	return s, ok
}

// Name returns the name for s.
func (t *Table) Name(s Sym) (string, bool) {
	if s == 0 || int(s) > len(t.bySym) {
		return "", false
	}
	return t.bySym[s-1], true
}

// Len returns the number of interned names.
func (t *Table) Len() int { return len(t.bySym) }

// Names returns all interned names sorted lexicographically. The slice is
// freshly allocated.
func (t *Table) Names() []string {
	out := make([]string, len(t.bySym))
	copy(out, t.bySym)
	sort.Strings(out)
	return out
}

// On-disk format magics. "NKS2" adds a CRC32C of the entry payload to the
// header, so a torn or bit-flipped table is detected at load instead of
// silently decoding garbage names; "NKS1" (no checksum) is still readable.
var (
	magic   = [4]byte{'N', 'K', 'S', '2'}
	magicV1 = [4]byte{'N', 'K', 'S', '1'}
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrChecksum is returned by Read/Load when the table's stored CRC32C does
// not match its payload.
var ErrChecksum = errors.New("symtab: table checksum mismatch")

// WriteTo serializes the table. The format is:
//
//	magic "NKS2" | uint32 count | uint32 crc32c(entries) |
//	count × (uint16 nameLen | name bytes)
//
// Names are written in symbol order so symbols are implicit.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var body bytes.Buffer
	var buf [2]byte
	for _, name := range t.bySym {
		if len(name) > 0xFFFF {
			return 0, fmt.Errorf("symtab: name too long (%d bytes)", len(name))
		}
		binary.BigEndian.PutUint16(buf[:], uint16(len(name)))
		body.Write(buf[:])
		body.WriteString(name)
	}
	var hdr [12]byte
	copy(hdr[:4], magic[:])
	binary.BigEndian.PutUint32(hdr[4:8], uint32(len(t.bySym)))
	binary.BigEndian.PutUint32(hdr[8:12], crc32.Checksum(body.Bytes(), crcTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	n, err := w.Write(body.Bytes())
	return 12 + int64(n), err
}

// Read deserializes a table previously written with WriteTo. Both the
// checksummed "NKS2" format and the legacy "NKS1" format are accepted;
// for "NKS2" the payload checksum is verified (ErrChecksum on mismatch).
func Read(r io.Reader) (*Table, error) {
	br := bufio.NewReader(r)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("symtab: reading header: %w", err)
	}
	var checked io.Reader = br
	switch [4]byte(hdr[:4]) {
	case magic:
		var crcBuf [4]byte
		if _, err := io.ReadFull(br, crcBuf[:]); err != nil {
			return nil, fmt.Errorf("symtab: reading header: %w", err)
		}
		body, err := io.ReadAll(br)
		if err != nil {
			return nil, fmt.Errorf("symtab: reading table: %w", err)
		}
		if crc32.Checksum(body, crcTable) != binary.BigEndian.Uint32(crcBuf[:]) {
			return nil, ErrChecksum
		}
		checked = bytes.NewReader(body)
	case magicV1:
		// Legacy uncheckedsummed table: decode as-is.
	default:
		return nil, fmt.Errorf("symtab: bad magic %q", hdr[:4])
	}
	count := binary.BigEndian.Uint32(hdr[4:8])
	if count > uint32(MaxSym) {
		return nil, fmt.Errorf("symtab: impossible symbol count %d", count)
	}
	t := New()
	nameBuf := make([]byte, 0, 64)
	for i := uint32(0); i < count; i++ {
		var lenBuf [2]byte
		if _, err := io.ReadFull(checked, lenBuf[:]); err != nil {
			return nil, fmt.Errorf("symtab: reading name %d: %w", i, err)
		}
		nameLen := int(binary.BigEndian.Uint16(lenBuf[:]))
		if cap(nameBuf) < nameLen {
			nameBuf = make([]byte, nameLen)
		}
		nameBuf = nameBuf[:nameLen]
		if _, err := io.ReadFull(checked, nameBuf); err != nil {
			return nil, fmt.Errorf("symtab: reading name %d: %w", i, err)
		}
		name := string(nameBuf)
		if _, dup := t.byName[name]; dup {
			return nil, fmt.Errorf("symtab: duplicate name %q in table", name)
		}
		if _, err := t.Intern(name); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Save writes the table to path atomically (write temp + fsync + rename +
// directory fsync).
func (t *Table) Save(path string) error { return t.SaveFS(vfs.OS, path) }

// SaveFS is Save on an explicit file system.
func (t *Table) SaveFS(fsys vfs.FS, path string) error {
	var buf bytes.Buffer
	if _, err := t.WriteTo(&buf); err != nil {
		return err
	}
	return vfs.WriteFileAtomic(fsys, path, buf.Bytes(), 0o644)
}

// Load reads a table from path.
func Load(path string) (*Table, error) { return LoadFS(vfs.OS, path) }

// LoadFS is Load on an explicit file system.
func LoadFS(fsys vfs.FS, path string) (*Table, error) {
	data, err := vfs.ReadFile(fsys, path)
	if err != nil {
		return nil, err
	}
	return Read(bytes.NewReader(data))
}
