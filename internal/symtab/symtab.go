// Package symtab maps XML tag names to the fixed-width symbols of the
// storage alphabet Σ.
//
// The paper's string representation stores one 2-byte character from Σ per
// element. This package owns that mapping: tag (and attribute) names are
// interned to dense uint16 symbols, and the table is persisted alongside the
// string representation so symbols can be decoded back to names.
//
// Symbol 0 is reserved (never assigned), and the high byte 0xFF is reserved
// for the close-parenthesis marker of the string representation, so at most
// 0xFEFF-1 distinct names can be interned — far beyond any real document
// (Treebank, the richest dataset in the paper, has 250 tags).
package symtab

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
)

// Sym is a 2-byte character of the storage alphabet Σ.
type Sym uint16

// MaxSym is the largest assignable symbol. Values above it would collide
// with the close-parenthesis byte marker (0xFF) in the string
// representation's encoding.
const MaxSym Sym = 0xFEFF

// ErrFull is returned by Intern when the alphabet is exhausted.
var ErrFull = errors.New("symtab: symbol alphabet exhausted")

// AttrPrefix distinguishes attribute names from element names in the table;
// the attribute year is interned as "@year", matching the paper's treatment
// of attributes as child nodes (e.g. @year → z in Example 1).
const AttrPrefix = "@"

// Table is an interning table between names and symbols. The zero value is
// not ready for use; call New.
type Table struct {
	byName map[string]Sym
	bySym  []string // index sym-1 holds the name for sym
}

// New returns an empty table.
func New() *Table {
	return &Table{byName: make(map[string]Sym)}
}

// Intern returns the symbol for name, assigning the next free symbol if the
// name has not been seen. It fails with ErrFull when the alphabet is
// exhausted.
func (t *Table) Intern(name string) (Sym, error) {
	if s, ok := t.byName[name]; ok {
		return s, nil
	}
	next := Sym(len(t.bySym) + 1)
	if next > MaxSym {
		return 0, ErrFull
	}
	t.byName[name] = next
	t.bySym = append(t.bySym, name)
	return next, nil
}

// Lookup returns the symbol for name without interning.
func (t *Table) Lookup(name string) (Sym, bool) {
	s, ok := t.byName[name]
	return s, ok
}

// Name returns the name for s.
func (t *Table) Name(s Sym) (string, bool) {
	if s == 0 || int(s) > len(t.bySym) {
		return "", false
	}
	return t.bySym[s-1], true
}

// Len returns the number of interned names.
func (t *Table) Len() int { return len(t.bySym) }

// Names returns all interned names sorted lexicographically. The slice is
// freshly allocated.
func (t *Table) Names() []string {
	out := make([]string, len(t.bySym))
	copy(out, t.bySym)
	sort.Strings(out)
	return out
}

// magic identifies the on-disk symbol table format.
var magic = [4]byte{'N', 'K', 'S', '1'}

// WriteTo serializes the table. The format is:
//
//	magic "NKS1" | uint32 count | count × (uint16 nameLen | name bytes)
//
// Names are written in symbol order so symbols are implicit.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	if _, err := bw.Write(magic[:]); err != nil {
		return n, err
	}
	n += 4
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], uint32(len(t.bySym)))
	if _, err := bw.Write(buf[:4]); err != nil {
		return n, err
	}
	n += 4
	for _, name := range t.bySym {
		if len(name) > 0xFFFF {
			return n, fmt.Errorf("symtab: name too long (%d bytes)", len(name))
		}
		binary.BigEndian.PutUint16(buf[:2], uint16(len(name)))
		if _, err := bw.Write(buf[:2]); err != nil {
			return n, err
		}
		n += 2
		if _, err := bw.WriteString(name); err != nil {
			return n, err
		}
		n += int64(len(name))
	}
	return n, bw.Flush()
}

// Read deserializes a table previously written with WriteTo.
func Read(r io.Reader) (*Table, error) {
	br := bufio.NewReader(r)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("symtab: reading header: %w", err)
	}
	if [4]byte(hdr[:4]) != magic {
		return nil, fmt.Errorf("symtab: bad magic %q", hdr[:4])
	}
	count := binary.BigEndian.Uint32(hdr[4:8])
	if count > uint32(MaxSym) {
		return nil, fmt.Errorf("symtab: impossible symbol count %d", count)
	}
	t := New()
	nameBuf := make([]byte, 0, 64)
	for i := uint32(0); i < count; i++ {
		var lenBuf [2]byte
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			return nil, fmt.Errorf("symtab: reading name %d: %w", i, err)
		}
		nameLen := int(binary.BigEndian.Uint16(lenBuf[:]))
		if cap(nameBuf) < nameLen {
			nameBuf = make([]byte, nameLen)
		}
		nameBuf = nameBuf[:nameLen]
		if _, err := io.ReadFull(br, nameBuf); err != nil {
			return nil, fmt.Errorf("symtab: reading name %d: %w", i, err)
		}
		name := string(nameBuf)
		if _, dup := t.byName[name]; dup {
			return nil, fmt.Errorf("symtab: duplicate name %q in table", name)
		}
		if _, err := t.Intern(name); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Save writes the table to path atomically (write temp + rename).
func (t *Table) Save(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := t.WriteTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Load reads a table from path.
func Load(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
