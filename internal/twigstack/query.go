package twigstack

import (
	"sort"

	"nok/internal/pattern"
)

// qnode is one node of the query twig with its input stream and stack.
type qnode struct {
	pat      *pattern.Node
	parent   *qnode
	children []*qnode
	// axis is the edge from parent (Child or Descendant); meaningless on
	// the root.
	axis   pattern.Axis
	stream *qstream
	stack  []stackEntry
}

type stackEntry struct {
	el Element
	// parentTop is the size of the parent's stack when this entry was
	// pushed: entries [0, parentTop) of the parent stack are potential
	// ancestors.
	parentTop int
}

func (q *qnode) isLeaf() bool { return len(q.children) == 0 }
func (q *qnode) isRoot() bool { return q.parent == nil }

// pathEdge records that parent element p (by start) reaches child element
// c (by start) along one query edge — the raw material of the merge phase.
type pathEdge struct{ p, c uint64 }

// Query evaluates a path expression.
func (e *Engine) Query(expr string) ([]Result, error) {
	t, err := pattern.Parse(expr)
	if err != nil {
		return nil, err
	}
	return e.QueryPattern(t)
}

// QueryPattern runs the holistic twig join for a parsed pattern tree.
func (e *Engine) QueryPattern(t *pattern.Tree) ([]Result, error) {
	var hasArcs bool
	t.Walk(func(n *pattern.Node, _ int) {
		if len(n.PrecededBy) > 0 {
			hasArcs = true
		}
		for _, edge := range n.Children {
			if edge.Axis == pattern.Following {
				hasArcs = true // following is outside TwigStack's model too
			}
		}
	})
	if hasArcs {
		return nil, ErrNotImplemented
	}

	// Build the query twig. The virtual root contributes only a level
	// constraint: '/step' from the virtual root pins level 1.
	if len(t.Root.Children) != 1 {
		return nil, ErrNotImplemented // multiple top-level branches
	}
	topEdge := t.Root.Children[0]
	exactLevel := 0
	if topEdge.Axis == pattern.Child {
		exactLevel = 1
	}
	var build func(p *pattern.Node, parent *qnode, axis pattern.Axis, lvl int) (*qnode, error)
	var all []*qnode
	build = func(p *pattern.Node, parent *qnode, axis pattern.Axis, lvl int) (*qnode, error) {
		s, err := e.openStream(p, lvl)
		if err != nil {
			return nil, err
		}
		q := &qnode{pat: p, parent: parent, axis: axis, stream: s}
		all = append(all, q)
		for _, edge := range p.Children {
			c, err := build(edge.To, q, edge.Axis, 0)
			if err != nil {
				return nil, err
			}
			q.children = append(q.children, c)
		}
		return q, nil
	}
	root, err := build(topEdge.To, nil, topEdge.Axis, exactLevel)
	if err != nil {
		for _, q := range all {
			if q.stream != nil {
				q.stream.close()
			}
		}
		return nil, err
	}
	defer func() {
		for _, q := range all {
			q.stream.close()
		}
	}()

	edges := make(map[*qnode]map[pathEdge]bool)
	leafEls := make(map[*qnode]map[uint64]Element)
	rootEls := make(map[uint64]Element)
	for _, q := range all {
		edges[q] = make(map[pathEdge]bool)
		leafEls[q] = make(map[uint64]Element)
	}

	// Main TwigStack loop.
	for !endOf(root) {
		q := getNext(root)
		if q.stream.eof {
			break // defensive: no further solutions possible
		}
		h := q.stream.head
		if !q.isRoot() {
			cleanStack(q.parent, h.Interval.Start)
		}
		if q.isRoot() || len(q.parent.stack) > 0 {
			cleanStack(q, h.Interval.Start)
			parentTop := 0
			if !q.isRoot() {
				parentTop = len(q.parent.stack)
			}
			q.stack = append(q.stack, stackEntry{el: h, parentTop: parentTop})
			if q.isLeaf() {
				e.emitPaths(q, edges, leafEls, rootEls)
				q.stack = q.stack[:len(q.stack)-1]
			}
		}
		if err := q.stream.advance(); err != nil {
			return nil, err
		}
	}

	return e.merge(t, root, all, edges, leafEls, rootEls), nil
}

// endOf reports whether every leaf stream in the twig is exhausted.
func endOf(q *qnode) bool {
	if q.isLeaf() {
		return q.stream.eof
	}
	for _, c := range q.children {
		if !endOf(c) {
			return false
		}
	}
	return true
}

// getNext is the core of TwigStack [Bruno et al., Algorithm 2]: it returns
// a query node whose stream head participates in the next potential
// solution, advancing internal streams past elements that cannot contain
// the pending descendants.
//
// One deviation from the published pseudocode: subtrees whose leaf streams
// are all exhausted are ignored when choosing nmin/nmax. The pseudocode
// would otherwise keep returning the exhausted leaf forever while other
// branches still owe path solutions for elements already on the stacks
// (e.g. a book on the stack whose price path has not been emitted after
// the last-name stream ended). Skipping dead subtrees keeps draining the
// live branches; the merge phase discards the extra unmatched paths.
func getNext(q *qnode) *qnode {
	if q.isLeaf() {
		return q
	}
	var live []*qnode
	for _, qi := range q.children {
		if !endOf(qi) {
			live = append(live, qi)
		}
	}
	if len(live) == 0 {
		return q
	}
	for _, qi := range live {
		if ni := getNext(qi); ni != qi {
			return ni
		}
	}
	nmin, nmax := live[0], live[0]
	for _, qi := range live[1:] {
		if qi.stream.head.Interval.Start < nmin.stream.head.Interval.Start {
			nmin = qi
		}
		if qi.stream.head.Interval.Start > nmax.stream.head.Interval.Start {
			nmax = qi
		}
	}
	for !q.stream.eof && q.stream.head.Interval.End < nmax.stream.head.Interval.Start {
		if err := q.stream.advance(); err != nil {
			q.stream.eof = true
			q.stream.head = infinity
			break
		}
	}
	if q.stream.head.Interval.Start < nmin.stream.head.Interval.Start {
		return q
	}
	return nmin
}

// cleanStack pops entries whose subtree ended before position.
func cleanStack(q *qnode, position uint64) {
	for len(q.stack) > 0 && q.stack[len(q.stack)-1].el.Interval.End < position {
		q.stack = q.stack[:len(q.stack)-1]
	}
}

// emitPaths expands the path solutions ending at the just-pushed leaf
// entry of q, recording query-edge element pairs for the merge phase.
// Parent-child query edges are verified by level difference here (the
// post-filtering treatment of '/' edges).
func (e *Engine) emitPaths(q *qnode, edges map[*qnode]map[pathEdge]bool, leafEls map[*qnode]map[uint64]Element, rootEls map[uint64]Element) {
	// chain holds the element chosen at each twig level, leaf-first.
	var rec func(n *qnode, entryIdx int, childEl *Element, childNode *qnode) bool
	rec = func(n *qnode, entryIdx int, childEl *Element, childNode *qnode) bool {
		entry := n.stack[entryIdx]
		if childEl != nil {
			if childNode.axis == pattern.Child && childEl.Level != entry.el.Level+1 {
				return false
			}
		}
		if n.isRoot() {
			if childEl != nil {
				edges[childNode][pathEdge{entry.el.Interval.Start, childEl.Interval.Start}] = true
			}
			rootEls[entry.el.Interval.Start] = entry.el
			return true
		}
		ok := false
		for i := 0; i < entry.parentTop; i++ {
			if rec(n.parent, i, &entry.el, n) {
				ok = true
			}
		}
		if ok && childEl != nil {
			edges[childNode][pathEdge{entry.el.Interval.Start, childEl.Interval.Start}] = true
		}
		return ok
	}
	leafIdx := len(q.stack) - 1
	if rec(q, leafIdx, nil, nil) {
		e.stats.PathSolutions++
		leafEls[q][q.stack[leafIdx].el.Interval.Start] = q.stack[leafIdx].el
	}
}

// merge combines path solutions into twig solutions and returns the
// returning node's matches: an element is supported when every child edge
// of its query node links it to a supported child element; the final
// answer is the supported, root-reachable elements of the returning node.
func (e *Engine) merge(t *pattern.Tree, root *qnode, all []*qnode, edges map[*qnode]map[pathEdge]bool, leafEls map[*qnode]map[uint64]Element, rootEls map[uint64]Element) []Result {
	// supported: bottom-up. An element supports its query node when every
	// child edge links it to a supported child element.
	supported := make(map[*qnode]map[uint64]bool)
	var up func(q *qnode)
	up = func(q *qnode) {
		for _, c := range q.children {
			up(c)
		}
		sup := make(map[uint64]bool)
		if q.isLeaf() {
			for s := range leafEls[q] {
				sup[s] = true
			}
			supported[q] = sup
			return
		}
		// Parent candidates: parents appearing in every child's edge set
		// with a supported child.
		counts := make(map[uint64]int)
		for _, c := range q.children {
			seen := make(map[uint64]bool)
			for pe := range edges[c] {
				if supported[c][pe.c] && !seen[pe.p] {
					seen[pe.p] = true
					counts[pe.p]++
				}
			}
		}
		for s, n := range counts {
			if n == len(q.children) {
				sup[s] = true
			}
		}
		supported[q] = sup
	}
	up(root)

	// reachable: top-down from supported root elements.
	reachable := make(map[*qnode]map[uint64]bool)
	var down func(q *qnode)
	down = func(q *qnode) {
		for _, c := range q.children {
			r := make(map[uint64]bool)
			for pe := range edges[c] {
				if reachable[q][pe.p] && supported[c][pe.c] {
					r[pe.c] = true
				}
			}
			reachable[c] = r
			down(c)
		}
	}
	reachable[root] = make(map[uint64]bool)
	for s := range rootEls {
		if supported[root][s] {
			reachable[root][s] = true
		}
	}
	down(root)

	// The returning query node.
	var retQ *qnode
	for _, q := range all {
		if q.pat == t.Return {
			retQ = q
		}
	}
	if retQ == nil {
		return nil
	}
	meta := e.elementMeta(retQ, edges, leafEls, rootEls)
	var out []Result
	for s := range reachable[retQ] {
		el, ok := meta[s]
		if !ok {
			continue
		}
		out = append(out, Result{Ordinal: el.Ordinal, Interval: el.Interval, Level: el.Level})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Interval.Start < out[j].Interval.Start })
	return out
}

// elementMeta recovers element metadata for a query node's matches.
func (e *Engine) elementMeta(q *qnode, edges map[*qnode]map[pathEdge]bool, leafEls map[*qnode]map[uint64]Element, rootEls map[uint64]Element) map[uint64]Element {
	if q.isLeaf() {
		return leafEls[q]
	}
	if q.isRoot() {
		return rootEls
	}
	// Internal non-root node: metadata must come from somewhere recorded;
	// re-read its stream and pick the elements whose starts appear.
	starts := make(map[uint64]bool)
	for _, c := range q.children {
		for pe := range edges[c] {
			starts[pe.p] = true
		}
	}
	out := make(map[uint64]Element)
	s, err := e.openStream(q.pat, 0)
	if err != nil {
		return out
	}
	defer s.close()
	for !s.eof {
		if starts[s.head.Interval.Start] {
			out[s.head.Interval.Start] = s.head
		}
		if err := s.advance(); err != nil {
			break
		}
	}
	return out
}
