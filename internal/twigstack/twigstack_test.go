package twigstack

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nok/internal/domnav"
	"nok/internal/pattern"
	"nok/internal/samples"
)

func loadEngine(t *testing.T, xml string) *Engine {
	t.Helper()
	e, err := Load(filepath.Join(t.TempDir(), "ts"), strings.NewReader(xml))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func queryOrds(t *testing.T, e *Engine, expr string) []int {
	t.Helper()
	rs, err := e.Query(expr)
	if err != nil {
		t.Fatalf("Query(%q): %v", expr, err)
	}
	out := make([]int, len(rs))
	for i, r := range rs {
		out[i] = r.Ordinal
	}
	return out
}

func oracleOrds(t *testing.T, doc *domnav.Doc, expr string) []int {
	t.Helper()
	tr, err := pattern.Parse(expr)
	if err != nil {
		t.Fatal(err)
	}
	var out []int
	for _, n := range domnav.Evaluate(doc, tr) {
		out = append(out, n.Order)
	}
	return out
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBibliographyAgainstOracle(t *testing.T) {
	e := loadEngine(t, samples.Bibliography)
	doc := domnav.MustParse(samples.Bibliography)
	queries := []string{
		samples.PaperQuery,
		`/bib`,
		`/bib/book`,
		`/bib/book/title`,
		`//last`,
		`//book[price>100]`,
		`//book[price<100]`,
		`//book[author/last="Stevens"]`,
		`//book[@year="2000"]/title`,
		`//book[editor]`,
		`//book[author][editor]`,
		`/bib/*/title`,
		`//author//last`,
		`//book[title="Data on the Web"]//last`,
		`/bib/book[price>=129.95]/@year`,
		`//missing`,
		`/wrong/book`,
	}
	for _, q := range queries {
		got := queryOrds(t, e, q)
		want := oracleOrds(t, doc, q)
		if !sameInts(got, want) {
			t.Errorf("%s:\n got  %v\n want %v", q, got, want)
		}
	}
}

func TestNotImplementedSiblings(t *testing.T) {
	e := loadEngine(t, samples.Bibliography)
	_, err := e.Query(`//book/author/following-sibling::author`)
	if !errors.Is(err, ErrNotImplemented) {
		t.Errorf("err = %v, want ErrNotImplemented", err)
	}
}

func TestLeafStreamsFullyScanned(t *testing.T) {
	// The paper: "TwigStack has to scan all streams associated with leaf
	// nodes in the pattern tree" — even when the twig root is rare.
	var sb strings.Builder
	sb.WriteString("<r>")
	sb.WriteString(`<rare><x>v</x></rare>`)
	for i := 0; i < 1000; i++ {
		sb.WriteString("<common><x>v</x></common>")
	}
	sb.WriteString("</r>")
	e := loadEngine(t, sb.String())
	e.ResetStats()
	if _, err := e.Query(`//rare/x`); err != nil {
		t.Fatal(err)
	}
	// The x stream has 1001 entries; all must have been read.
	if e.Stats().ElementsScanned < 1001 {
		t.Errorf("ElementsScanned = %d, want >= 1001 (full leaf stream)",
			e.Stats().ElementsScanned)
	}
}

func TestPersistence(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ts")
	e, err := Load(dir, strings.NewReader(samples.Bibliography))
	if err != nil {
		t.Fatal(err)
	}
	want := queryOrds(t, e, `/bib/book/title`)
	e.Close()

	e2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	got := queryOrds(t, e2, `/bib/book/title`)
	if !sameInts(got, want) || len(got) != 4 {
		t.Errorf("after reopen: %v, want %v", got, want)
	}
}

func TestRandomDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(1717))
	tags := []string{"a", "b", "c", "d"}
	vals := []string{"x", "y", "42"}
	var gen func(sb *strings.Builder, budget, depth int) int
	gen = func(sb *strings.Builder, budget, depth int) int {
		tag := tags[rng.Intn(len(tags))]
		sb.WriteString("<" + tag + ">")
		used := 1
		kids := rng.Intn(4)
		if depth > 5 {
			kids = 0
		}
		if kids == 0 {
			sb.WriteString(vals[rng.Intn(len(vals))])
		}
		for i := 0; i < kids && used < budget; i++ {
			used += gen(sb, (budget-used)/(kids-i)+1, depth+1)
		}
		sb.WriteString("</" + tag + ">")
		return used
	}
	for trial := 0; trial < 4; trial++ {
		var sb strings.Builder
		sb.WriteString("<root>")
		n := 0
		for n < 250 {
			n += gen(&sb, 250-n, 1)
		}
		sb.WriteString("</root>")
		xml := sb.String()
		e := loadEngine(t, xml)
		doc := domnav.MustParse(xml)
		queries := []string{
			`/root/a`, `//a`, `//a/b`, `//a//b`, `//a[b]`, `//a[b="x"]`,
			`//a[b][c]`, `//a[b/c]`, `//a[b]//c`, `/root/a/b/c`,
			`//b[c="42"]`, `//a[b="x"][c="y"]`, `//*[b]`, `//a/*`,
			`//d//c//b`, `//a[b][c][d]`,
		}
		for _, q := range queries {
			got := queryOrds(t, e, q)
			want := oracleOrds(t, doc, q)
			if !sameInts(got, want) {
				t.Errorf("trial %d %s:\n got  %v\n want %v\nxml: %.300s",
					trial, q, got, want, xml)
			}
		}
	}
}

func TestDeepNesting(t *testing.T) {
	// Recursive same-tag nesting stresses the stacks.
	xml := `<root><a><a><a><b>x</b></a></a><b>y</b></a></root>`
	e := loadEngine(t, xml)
	doc := domnav.MustParse(xml)
	for _, q := range []string{`//a//b`, `//a/a//b`, `//a[b]`, `//a/b`, `//a//a`} {
		got := queryOrds(t, e, q)
		want := oracleOrds(t, doc, q)
		if !sameInts(got, want) {
			t.Errorf("%s: got %v want %v", q, got, want)
		}
	}
}

func TestWideFanout(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < 300; i++ {
		fmt.Fprintf(&sb, "<a><b>%d</b><c>%d</c></a>", i%10, i%7)
	}
	sb.WriteString("</r>")
	xml := sb.String()
	e := loadEngine(t, xml)
	doc := domnav.MustParse(xml)
	for _, q := range []string{`//a[b="3"][c="3"]`, `//a[b="3"]/c`, `/r/a/b`} {
		got := queryOrds(t, e, q)
		want := oracleOrds(t, doc, q)
		if !sameInts(got, want) {
			t.Errorf("%s: got %d results, want %d", q, len(got), len(want))
		}
	}
}

func TestCountAndOpenErrors(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ts")
	e, err := Load(dir, strings.NewReader(samples.Bibliography))
	if err != nil {
		t.Fatal(err)
	}
	if e.Count() != 40 {
		t.Errorf("Count = %d, want 40", e.Count())
	}
	e.Close()
	if _, err := Open(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("Open of missing dir should fail")
	}
	if err := os.Remove(filepath.Join(dir, "all.str")); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Error("Open without all.str should fail")
	}
}

func TestInternalNodeResultMetadata(t *testing.T) {
	// The returning node being an *internal* twig node exercises
	// elementMeta's stream re-read path.
	xml := `<r><a><b><c>x</c></b></a><a><b><d/></b></a></r>`
	e := loadEngine(t, xml)
	doc := domnav.MustParse(xml)
	for _, q := range []string{
		`//a/b[c]`,   // b internal? b is returning with child predicate
		`//a[b/c]/b`, // returning b under a constrained a
		`//a[b]`,     // returning a with b below
		`//r/a[b[c]]`,
	} {
		got := queryOrds(t, e, q)
		want := oracleOrds(t, doc, q)
		if !sameInts(got, want) {
			t.Errorf("%s: got %v want %v", q, got, want)
		}
	}
}
