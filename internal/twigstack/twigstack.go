// Package twigstack implements the holistic twig join baseline
// [Bruno, Koudas, Srivastava, SIGMOD 2002] the paper compares against.
//
// Storage follows the paper's §6.2 setup: "different tree nodes with
// different tag names are stored separately in a file sorted by document
// order. Each file contains the nodes constituting an input stream
// associated with a node in the twig." Elements are interval-encoded
// (start, end, level) records; value predicates filter the streams as they
// are read (the paper used a value B+ tree for the same purpose — see
// DESIGN.md's substitution notes).
//
// TwigStack is optimal for ancestor-descendant twigs; parent-child edges
// are verified by level checks during path-solution expansion, the
// standard post-filtering treatment. Sibling-order arcs are not supported
// (the original algorithm has no notion of them) and yield
// ErrNotImplemented.
package twigstack

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"nok/internal/pattern"
	"nok/internal/sax"
	"nok/internal/stree"
	"nok/internal/symtab"
	"nok/internal/vstore"
)

// ErrNotImplemented marks unsupported query features (sibling-order arcs).
var ErrNotImplemented = errors.New("twigstack: not implemented (sibling axis)")

// NoValue marks elements without text content.
const NoValue = ^uint64(0)

// stream record: start u64, end u64, level u32, ordinal u32, valOff u64.
const recordSize = 8 + 8 + 4 + 4 + 8

const (
	fileTags   = "tags.sym"
	fileValues = "values.dat"
	fileAll    = "all.str"
	streamsDir = "streams"
)

// Element is one interval-encoded stream record.
type Element struct {
	Interval stree.Interval
	Level    int
	Ordinal  int
	ValOff   uint64
}

// Result identifies a matched element by preorder ordinal.
type Result struct {
	Ordinal  int
	Interval stree.Interval
	Level    int
}

// Stats counts the work one query did.
type Stats struct {
	// ElementsScanned counts stream records read (including filtered ones).
	ElementsScanned int64
	// PathSolutions counts root-to-leaf solutions emitted.
	PathSolutions int64
	// ValueLookups counts data-file reads for value predicates.
	ValueLookups int64
}

// Engine is an opened TwigStack store.
type Engine struct {
	dir   string
	tags  *symtab.Table
	vals  *vstore.Store
	count int

	stats Stats
}

// Load shreds an XML document into per-tag stream files.
func Load(dir string, r io.Reader) (*Engine, error) {
	if err := os.MkdirAll(filepath.Join(dir, streamsDir), 0o755); err != nil {
		return nil, err
	}
	tags := symtab.New()
	vals, err := vstore.Create(filepath.Join(dir, fileValues))
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*Engine, error) {
		vals.Close()
		return nil, err
	}

	type rec struct {
		start, end uint64
		level      uint32
		ordinal    uint32
		valOff     uint64
		sym        symtab.Sym
	}
	var recs []rec
	type open struct {
		ordinal int
		text    strings.Builder
	}
	var stack []*open
	var pos uint64
	sc := sax.NewScanner(r)

	openElem := func(name string) error {
		sym, err := tags.Intern(name)
		if err != nil {
			return err
		}
		pos++
		recs = append(recs, rec{
			start: pos, level: uint32(len(stack) + 1),
			ordinal: uint32(len(recs)), valOff: NoValue, sym: sym,
		})
		stack = append(stack, &open{ordinal: len(recs) - 1})
		return nil
	}
	closeElem := func(trim bool) error {
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		pos++
		recs[e.ordinal].end = pos
		text := e.text.String()
		if trim {
			text = strings.TrimSpace(text)
		}
		if text != "" {
			off, err := vals.Append([]byte(text))
			if err != nil {
				return err
			}
			recs[e.ordinal].valOff = uint64(off)
		}
		return nil
	}

	for {
		ev, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fail(err)
		}
		switch ev.Kind {
		case sax.StartElement:
			if err := openElem(ev.Name); err != nil {
				return fail(err)
			}
			for _, a := range ev.Attrs {
				if err := openElem(symtab.AttrPrefix + a.Name); err != nil {
					return fail(err)
				}
				stack[len(stack)-1].text.WriteString(a.Value)
				if err := closeElem(false); err != nil {
					return fail(err)
				}
			}
		case sax.EndElement:
			if err := closeElem(true); err != nil {
				return fail(err)
			}
		case sax.Text:
			if len(stack) > 0 {
				stack[len(stack)-1].text.WriteString(ev.Data)
			}
		}
	}

	// Write per-tag streams plus the all-elements stream. recs is already
	// in document (start) order.
	writers := map[symtab.Sym]*bufio.Writer{}
	files := map[symtab.Sym]*os.File{}
	allF, err := os.Create(filepath.Join(dir, fileAll))
	if err != nil {
		return fail(err)
	}
	allW := bufio.NewWriterSize(allF, 128<<10)
	var buf [recordSize]byte
	for _, rc := range recs {
		binary.BigEndian.PutUint64(buf[0:8], rc.start)
		binary.BigEndian.PutUint64(buf[8:16], rc.end)
		binary.BigEndian.PutUint32(buf[16:20], rc.level)
		binary.BigEndian.PutUint32(buf[20:24], rc.ordinal)
		binary.BigEndian.PutUint64(buf[24:32], rc.valOff)
		if _, err := allW.Write(buf[:]); err != nil {
			return fail(err)
		}
		w := writers[rc.sym]
		if w == nil {
			f, err := os.Create(streamPath(dir, rc.sym))
			if err != nil {
				return fail(err)
			}
			files[rc.sym] = f
			w = bufio.NewWriterSize(f, 32<<10)
			writers[rc.sym] = w
		}
		if _, err := w.Write(buf[:]); err != nil {
			return fail(err)
		}
	}
	for sym, w := range writers {
		if err := w.Flush(); err != nil {
			return fail(err)
		}
		if err := files[sym].Close(); err != nil {
			return fail(err)
		}
	}
	if err := allW.Flush(); err != nil {
		return fail(err)
	}
	if err := allF.Close(); err != nil {
		return fail(err)
	}
	if err := tags.Save(filepath.Join(dir, fileTags)); err != nil {
		return fail(err)
	}
	return &Engine{dir: dir, tags: tags, vals: vals, count: len(recs)}, nil
}

func streamPath(dir string, sym symtab.Sym) string {
	return filepath.Join(dir, streamsDir, fmt.Sprintf("%05d.str", sym))
}

// Open attaches to an existing TwigStack directory.
func Open(dir string) (*Engine, error) {
	tags, err := symtab.Load(filepath.Join(dir, fileTags))
	if err != nil {
		return nil, err
	}
	vals, err := vstore.Open(filepath.Join(dir, fileValues))
	if err != nil {
		return nil, err
	}
	fi, err := os.Stat(filepath.Join(dir, fileAll))
	if err != nil {
		vals.Close()
		return nil, err
	}
	return &Engine{dir: dir, tags: tags, vals: vals, count: int(fi.Size() / recordSize)}, nil
}

// Close releases the engine.
func (e *Engine) Close() error { return e.vals.Close() }

// Count returns the number of stored elements.
func (e *Engine) Count() int { return e.count }

// Stats returns the accumulated work counters.
func (e *Engine) Stats() Stats { return e.stats }

// ResetStats zeroes the counters.
func (e *Engine) ResetStats() { e.stats = Stats{} }

// ---- streams ----------------------------------------------------------------

// infinity is the head of an exhausted stream.
var infinity = Element{Interval: stree.Interval{Start: ^uint64(0), End: ^uint64(0)}}

// qstream reads one query node's input stream, filtering by value
// constraint and an optional exact-level requirement.
type qstream struct {
	e     *Engine
	r     *bufio.Reader
	f     *os.File
	head  Element
	eof   bool
	cmp   pattern.Cmp
	lit   string
	level int // 0 = any
}

func (e *Engine) openStream(p *pattern.Node, exactLevel int) (*qstream, error) {
	var path string
	if p.Test == "*" {
		path = filepath.Join(e.dir, fileAll)
	} else {
		sym, ok := e.tags.Lookup(p.Test)
		if !ok {
			// Tag absent: an empty stream.
			s := &qstream{e: e, eof: true, head: infinity}
			return s, nil
		}
		path = streamPath(e.dir, sym)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	s := &qstream{
		e: e, f: f, r: bufio.NewReaderSize(f, 64<<10),
		cmp: p.Cmp, lit: p.Literal, level: exactLevel,
	}
	if err := s.advance(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

func (s *qstream) close() {
	if s.f != nil {
		s.f.Close()
		s.f = nil
	}
}

// advance moves to the next element passing the filters.
func (s *qstream) advance() error {
	if s.eof {
		return nil
	}
	var buf [recordSize]byte
	for {
		if _, err := io.ReadFull(s.r, buf[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				s.eof = true
				s.head = infinity
				return nil
			}
			return err
		}
		s.e.stats.ElementsScanned++
		el := Element{
			Interval: stree.Interval{
				Start: binary.BigEndian.Uint64(buf[0:8]),
				End:   binary.BigEndian.Uint64(buf[8:16]),
			},
			Level:   int(binary.BigEndian.Uint32(buf[16:20])),
			Ordinal: int(binary.BigEndian.Uint32(buf[20:24])),
			ValOff:  binary.BigEndian.Uint64(buf[24:32]),
		}
		if s.level > 0 && el.Level != s.level {
			continue
		}
		if s.cmp != pattern.CmpNone {
			if el.ValOff == NoValue {
				continue
			}
			v, err := s.e.vals.Get(int64(el.ValOff))
			if err != nil {
				return err
			}
			s.e.stats.ValueLookups++
			if !s.cmp.Eval(string(v), s.lit) {
				continue
			}
		}
		s.head = el
		return nil
	}
}
