package chaosnet

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newBackend serves a fixed body big enough that truncation provably
// cuts it short.
func newBackend(t *testing.T) (*httptest.Server, string) {
	t.Helper()
	body := strings.Repeat("nok-payload ", 100)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, body)
	}))
	t.Cleanup(ts.Close)
	return ts, body
}

// proxyFor stands a Proxy in front of ts and returns it with a client
// that never reuses connections (each request must see the current mode).
func proxyFor(t *testing.T, ts *httptest.Server) (*Proxy, *http.Client) {
	t.Helper()
	p, err := NewProxy(strings.TrimPrefix(ts.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Close() })
	hc := &http.Client{
		Transport: &http.Transport{DisableKeepAlives: true},
		Timeout:   2 * time.Second,
	}
	return p, hc
}

func TestProxyPass(t *testing.T) {
	ts, body := newBackend(t)
	p, hc := proxyFor(t, ts)
	resp, err := hc.Get(p.URL())
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(got) != body {
		t.Errorf("pass mode altered the body: %d bytes, want %d", len(got), len(body))
	}
}

func TestProxyLatency(t *testing.T) {
	ts, _ := newBackend(t)
	p, hc := proxyFor(t, ts)
	p.SetMode(ModeLatency)
	p.SetLatency(120 * time.Millisecond)
	t0 := time.Now()
	resp, err := hc.Get(p.URL())
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if d := time.Since(t0); d < 120*time.Millisecond {
		t.Errorf("latency mode answered in %v, want >= 120ms", d)
	}
}

func TestProxyReset(t *testing.T) {
	ts, _ := newBackend(t)
	p, hc := proxyFor(t, ts)
	p.SetMode(ModeReset)
	if _, err := hc.Get(p.URL()); err == nil {
		t.Fatal("reset mode delivered a response")
	}
}

func TestProxyBlackholeAndHeal(t *testing.T) {
	ts, body := newBackend(t)
	p, hc := proxyFor(t, ts)
	p.SetMode(ModeBlackhole)
	short := &http.Client{
		Transport: &http.Transport{DisableKeepAlives: true},
		Timeout:   150 * time.Millisecond,
	}
	t0 := time.Now()
	if _, err := short.Get(p.URL()); err == nil {
		t.Fatal("black-holed request got an answer")
	} else if d := time.Since(t0); d < 140*time.Millisecond {
		t.Errorf("black-holed request failed in %v; it should hang until the client gives up", d)
	}

	// Open a second hung connection, then heal: SetMode must sever it so
	// recovery does not wait out a long client timeout.
	errCh := make(chan error, 1)
	go func() {
		_, err := hc.Get(p.URL()) // 2s budget; must fail far sooner
		errCh <- err
	}()
	time.Sleep(50 * time.Millisecond)
	p.SetMode(ModePass)
	select {
	case err := <-errCh:
		if err == nil {
			t.Error("connection accepted under blackhole answered after heal; want a severed connection")
		}
	case <-time.After(time.Second):
		t.Fatal("hung connection not severed by SetMode(ModePass)")
	}
	// New connections flow again.
	resp, err := hc.Get(p.URL())
	if err != nil {
		t.Fatalf("after heal: %v", err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(got) != body {
		t.Errorf("healed body: %d bytes, want %d", len(got), len(body))
	}
}

func TestProxyTruncate(t *testing.T) {
	ts, body := newBackend(t)
	p, hc := proxyFor(t, ts)
	p.SetMode(ModeTruncate)
	p.SetTruncateBytes(40)
	resp, err := hc.Get(p.URL())
	if err == nil {
		// The cut may land inside the headers (error above) or inside the
		// body: then the read must fail or come up short.
		got, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr == nil && string(got) == body {
			t.Fatal("truncate mode delivered the full body")
		}
	}
}

func TestTransportFaults(t *testing.T) {
	ts, body := newBackend(t)
	tr := &Transport{}
	hc := &http.Client{Transport: tr}

	tr.FailNext(2)
	for i := 0; i < 2; i++ {
		if _, err := hc.Get(ts.URL); !errors.Is(err, ErrInjected) {
			t.Fatalf("injected failure %d: %v", i, err)
		}
	}
	resp, err := hc.Get(ts.URL)
	if err != nil {
		t.Fatalf("after injected failures: %v", err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := tr.Requests(); got != 3 {
		t.Errorf("request counter %d, want 3", got)
	}

	tr.TruncateBodies(10)
	resp, err = hc.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if len(got) != 10 {
		t.Errorf("truncated body %d bytes, want 10", len(got))
	}

	tr.TruncateBodies(0)
	tr.SetLatency(60 * time.Millisecond)
	t0 := time.Now()
	resp, err = hc.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if time.Since(t0) < 60*time.Millisecond {
		t.Error("latency fault not applied")
	}
	if string(b) != body {
		t.Error("latency fault altered the body")
	}
}
