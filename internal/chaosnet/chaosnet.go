// Package chaosnet injects network faults for testing the fault-tolerant
// remote-shard path. It offers two layers:
//
//   - Proxy: a real TCP proxy in front of a target address whose failure
//     mode can be flipped at runtime — pass traffic, add latency, reset
//     connections, black-hole them (accept but never answer), or truncate
//     responses mid-stream. Because it sits at the socket layer, it
//     exercises the same failure surface a flaky network does: dial
//     timeouts, connection resets, half-delivered bodies.
//
//   - Transport: an http.RoundTripper wrapper for unit tests that need
//     deterministic per-request faults (fail the next N requests, delay,
//     truncate bodies) without real sockets.
//
// Both are driven by the chaos sweep in internal/remote, which asserts
// the system-level guarantees: no silently wrong results, breakers open
// and recover, healthy shards keep answering.
package chaosnet

import (
	"errors"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Mode is a Proxy failure mode. Mode changes apply to connections
// accepted after the change; connections already black-holed stay hung
// until the client gives up (that is the failure being simulated).
type Mode int

const (
	// ModePass forwards traffic unmodified.
	ModePass Mode = iota
	// ModeLatency delays the first response byte of each connection by
	// the configured latency, then forwards normally.
	ModeLatency
	// ModeReset closes every accepted connection immediately — the
	// "connection refused / reset by peer" class of failure.
	ModeReset
	// ModeBlackhole accepts connections, reads and discards whatever the
	// client sends, and never answers — the failure mode that makes
	// timeouts and hedging matter, because without them one dead shard
	// stalls every query for the full client patience.
	ModeBlackhole
	// ModeTruncate forwards only the first TruncateBytes of each
	// response, then severs the connection — tests that a cut-off result
	// stream is detected (end-frame check) and never returned as a
	// complete answer.
	ModeTruncate
)

// Proxy is a TCP proxy with switchable failure modes. Safe for
// concurrent use.
type Proxy struct {
	target string
	ln     net.Listener

	mu       sync.Mutex
	mode     Mode
	latency  time.Duration
	truncate int64
	conns    map[net.Conn]struct{}

	closed atomic.Bool
	wg     sync.WaitGroup
}

// NewProxy starts a proxy on a fresh loopback port in front of target
// (host:port). Close it when done.
func NewProxy(target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		target:   target,
		ln:       ln,
		truncate: 64,
		conns:    make(map[net.Conn]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address (host:port).
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// URL returns the proxy address as an http base URL.
func (p *Proxy) URL() string { return "http://" + p.Addr() }

// SetMode switches the failure mode for subsequently accepted
// connections, and severs every established connection: a real
// partition kills pooled keep-alive flows too, and a heal must not wait
// out client timeouts on previously black-holed connections.
func (p *Proxy) SetMode(m Mode) {
	p.mu.Lock()
	changed := p.mode != m
	p.mode = m
	var open []net.Conn
	if changed {
		for c := range p.conns {
			open = append(open, c)
		}
	}
	p.mu.Unlock()
	for _, c := range open {
		_ = c.Close()
	}
}

// SetLatency configures the ModeLatency delay.
func (p *Proxy) SetLatency(d time.Duration) {
	p.mu.Lock()
	p.latency = d
	p.mu.Unlock()
}

// SetTruncateBytes configures how many response bytes ModeTruncate lets
// through before severing (default 64).
func (p *Proxy) SetTruncateBytes(n int64) {
	p.mu.Lock()
	p.truncate = n
	p.mu.Unlock()
}

// Close stops accepting, severs all connections and waits for the
// handler goroutines.
func (p *Proxy) Close() error {
	if p.closed.Swap(true) {
		return nil
	}
	err := p.ln.Close()
	p.mu.Lock()
	for c := range p.conns {
		_ = c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.wg.Add(1)
		go p.handle(conn)
	}
}

func (p *Proxy) track(c net.Conn) {
	p.mu.Lock()
	p.conns[c] = struct{}{}
	p.mu.Unlock()
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) handle(client net.Conn) {
	defer p.wg.Done()
	p.track(client)
	defer p.untrack(client)
	defer client.Close()

	p.mu.Lock()
	mode, latency, truncate := p.mode, p.latency, p.truncate
	p.mu.Unlock()

	switch mode {
	case ModeReset:
		return // deferred Close sends the reset
	case ModeBlackhole:
		// Swallow the request and say nothing. The connection ends when
		// the client times out, the proxy closes, or the mode changes
		// (SetMode severs hung connections).
		_, _ = io.Copy(io.Discard, client)
		return
	}

	server, err := net.DialTimeout("tcp", p.target, 5*time.Second)
	if err != nil {
		return
	}
	p.track(server)
	defer p.untrack(server)
	defer server.Close()

	done := make(chan struct{}, 2)
	// client → server: always forwarded in full (the faults under test
	// are response-side).
	go func() {
		_, _ = io.Copy(server, client)
		// Half-close so the server sees EOF but the response path stays up.
		if tc, ok := server.(*net.TCPConn); ok {
			_ = tc.CloseWrite()
		}
		done <- struct{}{}
	}()
	// server → client, with the response-side fault applied.
	go func() {
		switch mode {
		case ModeLatency:
			buf := make([]byte, 1)
			if _, err := server.Read(buf); err == nil {
				time.Sleep(latency)
				if _, err := client.Write(buf); err == nil {
					_, _ = io.Copy(client, server)
				}
			}
		case ModeTruncate:
			_, _ = io.CopyN(client, server, truncate)
			// Sever both sides so the client sees the cut immediately.
			_ = client.Close()
			_ = server.Close()
		default:
			_, _ = io.Copy(client, server)
		}
		done <- struct{}{}
	}()
	<-done
	<-done
}

// ---- RoundTripper-level faults ----------------------------------------------

// ErrInjected is the connection-level error Transport returns for
// injected failures.
var ErrInjected = errors.New("chaosnet: injected connection failure")

// Transport wraps an http.RoundTripper with deterministic fault
// injection for unit tests. The zero value with a nil Base uses
// http.DefaultTransport. Safe for concurrent use.
type Transport struct {
	Base http.RoundTripper

	mu       sync.Mutex
	failNext int
	latency  time.Duration
	truncate int64 // >0: cut response bodies after this many bytes

	requests atomic.Int64
}

// FailNext makes the next n requests fail with ErrInjected before
// reaching the network.
func (t *Transport) FailNext(n int) {
	t.mu.Lock()
	t.failNext = n
	t.mu.Unlock()
}

// SetLatency delays every request by d before forwarding.
func (t *Transport) SetLatency(d time.Duration) {
	t.mu.Lock()
	t.latency = d
	t.mu.Unlock()
}

// TruncateBodies cuts every response body off after n bytes (0 restores
// full bodies). The cut surfaces as an early EOF, as a severed
// connection would.
func (t *Transport) TruncateBodies(n int64) {
	t.mu.Lock()
	t.truncate = n
	t.mu.Unlock()
}

// Requests returns how many requests have been attempted through this
// transport (including injected failures) — the unit tests' retry meter.
func (t *Transport) Requests() int64 { return t.requests.Load() }

// RoundTrip applies the configured faults, then delegates.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.requests.Add(1)
	t.mu.Lock()
	fail := t.failNext > 0
	if fail {
		t.failNext--
	}
	latency, truncate := t.latency, t.truncate
	t.mu.Unlock()
	if fail {
		return nil, ErrInjected
	}
	if latency > 0 {
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(latency):
		}
	}
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	resp, err := base.RoundTrip(req)
	if err != nil || truncate <= 0 {
		return resp, err
	}
	resp.Body = &truncatedBody{r: io.LimitReader(resp.Body, truncate), c: resp.Body}
	return resp, nil
}

// CloseIdleConnections forwards to the base transport when it has one.
func (t *Transport) CloseIdleConnections() {
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	if b, ok := base.(interface{ CloseIdleConnections() }); ok {
		b.CloseIdleConnections()
	}
}

type truncatedBody struct {
	r io.Reader
	c io.Closer
}

func (b *truncatedBody) Read(p []byte) (int, error) { return b.r.Read(p) }
func (b *truncatedBody) Close() error               { return b.c.Close() }
