// Package samples holds the XML documents used throughout tests, examples
// and documentation — chiefly the paper's running bibliography example
// (Figure 1(a)).
package samples

// Bibliography is the XML bibliography file of Figure 1(a), including the
// typo-corrected third book (the paper's listing has a malformed </lst>
// tag, which we normalize) and the editor-bearing fourth book.
const Bibliography = `<bib>
  <book year="1994">
    <title>TCP/IP Illustrated</title>
    <author><last>Stevens</last><first>W.</first></author>
    <publisher>Addison-Wesley</publisher>
    <price>65.95</price>
  </book>
  <book year="1992">
    <title>Advanced Programming in the Unix Environment</title>
    <author><last>Stevens</last><first>W.</first></author>
    <publisher>Addison-Wesley</publisher>
    <price>65.95</price>
  </book>
  <book year="2000">
    <title>Data on the Web</title>
    <author><last>Abiteboul</last><first>Serge</first></author>
    <author><last>Buneman</last><first>Peter</first></author>
    <author><last>Suciu</last><first>Dan</first></author>
    <publisher>Morgan Kaufmann Publishers</publisher>
    <price>39.95</price>
  </book>
  <book year="1999">
    <title>The Economics of Technology and Content for Digital TV</title>
    <editor>
      <last>Gerbarg</last><first>Darcy</first>
      <affiliation>CITI</affiliation>
    </editor>
    <publisher>Kluwer Academic Publishers</publisher>
    <price>129.95</price>
  </book>
</bib>`

// PaperQuery is the running example query: all books written by Stevens
// with price below 100 (Example 1 / Figure 1(b)).
const PaperQuery = `//book[author/last="Stevens"][price<100]`
