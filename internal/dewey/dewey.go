// Package dewey implements Dewey IDs — hierarchical node identifiers whose
// components are child ordinals along the path from the root.
//
// The paper uses Dewey IDs (§4.1) as the key that reconnects structural
// information with out-of-line value information: the root is 0 and its
// second child is 0.2, following XRANK. IDs are derived for free during
// document-order traversal, so nothing is stored in the string
// representation itself; they are only materialized as B+-tree keys.
//
// The byte encoding produced by Append/Bytes is order-preserving: comparing
// two encoded IDs bytewise (bytes.Compare) is exactly document-order
// comparison of the IDs, with ancestors ordering before their descendants.
// That property is what lets a plain byte-keyed B+ tree serve as the
// Dewey-ID index.
package dewey

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ID is a Dewey identifier: the root is ID{0}; the i-th child (1-based) of a
// node n has ID append(n, i). A nil or empty ID is invalid.
type ID []uint32

// Root is the ID of the document root.
func Root() ID { return ID{0} }

// Child returns the ID of the ord-th (1-based) child. The result shares no
// storage with the receiver.
func (id ID) Child(ord uint32) ID {
	out := make(ID, len(id)+1)
	copy(out, id)
	out[len(id)] = ord
	return out
}

// Parent returns the parent's ID, or nil if id is the root or invalid.
func (id ID) Parent() ID {
	if len(id) <= 1 {
		return nil
	}
	out := make(ID, len(id)-1)
	copy(out, id[:len(id)-1])
	return out
}

// Level returns the node's level, with the root at level 1 as in the
// paper's Figure 4.
func (id ID) Level() int { return len(id) }

// Clone returns a copy sharing no storage.
func (id ID) Clone() ID {
	out := make(ID, len(id))
	copy(out, id)
	return out
}

// Compare orders ids in document order: ancestors before descendants,
// siblings by ordinal. It returns -1, 0, or +1.
func Compare(a, b ID) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

// IsAncestorOf reports whether a is a proper ancestor of b.
func (id ID) IsAncestorOf(b ID) bool {
	if len(id) >= len(b) {
		return false
	}
	for i := range id {
		if id[i] != b[i] {
			return false
		}
	}
	return true
}

// String formats the ID in the paper's dotted notation, e.g. "0.2.1".
func (id ID) String() string {
	if len(id) == 0 {
		return "<invalid>"
	}
	var sb strings.Builder
	for i, c := range id {
		if i > 0 {
			sb.WriteByte('.')
		}
		sb.WriteString(strconv.FormatUint(uint64(c), 10))
	}
	return sb.String()
}

// Parse parses the dotted notation produced by String.
func Parse(s string) (ID, error) {
	if s == "" {
		return nil, errors.New("dewey: empty ID")
	}
	parts := strings.Split(s, ".")
	id := make(ID, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("dewey: bad component %q: %w", p, err)
		}
		id[i] = uint32(v)
	}
	return id, nil
}

// MaxComponent is the largest encodable component value (28 bits).
const MaxComponent = 1<<28 - 1

// Bytes returns the order-preserving byte encoding of id.
//
// Each component is encoded with a self-delimiting, length-monotonic varint:
//
//	0xxxxxxx                         values < 2^7
//	10xxxxxx 1 byte                  values < 2^14
//	110xxxxx 2 bytes                 values < 2^21
//	1110xxxx 3 bytes                 values < 2^28
//
// Longer encodings start with larger lead bytes, so bytewise comparison of
// two encodings compares component values; and a shorter ID that is a prefix
// of a longer one compares smaller, which is exactly "ancestor first" in
// document order.
func (id ID) Bytes() []byte {
	out := make([]byte, 0, len(id)*2)
	for _, c := range id {
		out = AppendComponent(out, c)
	}
	return out
}

// AppendComponent appends the varint encoding of c to dst. Components above
// MaxComponent are clamped (they cannot occur in practice: it would mean a
// node with more than half a billion preceding siblings).
func AppendComponent(dst []byte, c uint32) []byte {
	if c > MaxComponent {
		c = MaxComponent
	}
	switch {
	case c < 1<<7:
		return append(dst, byte(c))
	case c < 1<<14:
		return append(dst, 0x80|byte(c>>8), byte(c))
	case c < 1<<21:
		return append(dst, 0xC0|byte(c>>16), byte(c>>8), byte(c))
	default:
		return append(dst, 0xE0|byte(c>>24), byte(c>>16), byte(c>>8), byte(c))
	}
}

// FromBytes decodes an encoding produced by Bytes.
func FromBytes(b []byte) (ID, error) {
	var id ID
	for len(b) > 0 {
		lead := b[0]
		var size int
		var v uint32
		switch {
		case lead < 0x80:
			size, v = 1, uint32(lead)
		case lead < 0xC0:
			size, v = 2, uint32(lead&0x3F)
		case lead < 0xE0:
			size, v = 3, uint32(lead&0x1F)
		case lead < 0xF0:
			size, v = 4, uint32(lead&0x0F)
		default:
			return nil, fmt.Errorf("dewey: bad lead byte %#x", lead)
		}
		if len(b) < size {
			return nil, errors.New("dewey: truncated encoding")
		}
		for i := 1; i < size; i++ {
			v = v<<8 | uint32(b[i])
		}
		id = append(id, v)
		b = b[size:]
	}
	if len(id) == 0 {
		return nil, errors.New("dewey: empty encoding")
	}
	return id, nil
}
