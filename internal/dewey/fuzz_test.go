package dewey

import (
	"bytes"
	"testing"
)

// FuzzParse checks the dotted-notation codec: Parse never panics, and any
// accepted ID round-trips through String exactly.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"0", "0.1", "0.2.1", "", ".", "0.", ".0", "0..1",
		"4294967295", "4294967296", "-1", "0.00.01", "0.x", "0.1 ",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		id, err := Parse(s)
		if err != nil {
			return
		}
		if len(id) == 0 {
			t.Fatalf("Parse(%q) accepted an empty ID", s)
		}
		rt, err := Parse(id.String())
		if err != nil {
			t.Fatalf("Parse(%q).String() = %q does not re-parse: %v", s, id.String(), err)
		}
		if Compare(id, rt) != 0 {
			t.Fatalf("Parse(%q) round-trip drifted: %v vs %v", s, id, rt)
		}
	})
}

// FuzzFromBytes checks the order-preserving binary codec: FromBytes never
// panics on arbitrary bytes, any decoded ID re-encodes to a stable
// canonical form, and the canonical encodings of two decodable inputs
// compare bytewise exactly like the IDs compare in document order.
func FuzzFromBytes(f *testing.F) {
	f.Add(Root().Bytes(), ID{0, 1}.Bytes())
	f.Add(ID{0, 1, 300, 99999}.Bytes(), ID{0, 2}.Bytes())
	f.Add(ID{0, MaxComponent}.Bytes(), []byte{0xE0, 0x01})
	f.Add([]byte{0xFF}, []byte{0x80})
	f.Add([]byte{}, []byte{0x00})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		ida, erra := FromBytes(a)
		idb, errb := FromBytes(b)
		for _, v := range []struct {
			id  ID
			err error
			in  []byte
		}{{ida, erra, a}, {idb, errb, b}} {
			if v.err != nil {
				continue
			}
			if len(v.id) == 0 {
				t.Fatalf("FromBytes(%x) accepted an empty ID", v.in)
			}
			// Re-encoding canonicalizes (the decoder tolerates oversized
			// varints); the canonical form must decode back unchanged.
			enc := v.id.Bytes()
			if len(enc) > len(v.in) {
				t.Fatalf("canonical encoding of %v grew: %d bytes from %d", v.id, len(enc), len(v.in))
			}
			rt, err := FromBytes(enc)
			if err != nil {
				t.Fatalf("re-decode of %v failed: %v", v.id, err)
			}
			if Compare(v.id, rt) != 0 {
				t.Fatalf("binary round-trip drifted: %v vs %v", v.id, rt)
			}
		}
		if erra == nil && errb == nil {
			if got, want := bytes.Compare(ida.Bytes(), idb.Bytes()), Compare(ida, idb); got != want {
				t.Fatalf("encoding not order-preserving: bytes.Compare=%d, dewey.Compare=%d for %v vs %v", got, want, ida, idb)
			}
		}
	})
}
