package dewey

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRootChildParent(t *testing.T) {
	r := Root()
	if r.String() != "0" {
		t.Errorf("Root = %s", r)
	}
	c2 := r.Child(2)
	if c2.String() != "0.2" {
		t.Errorf("second child of root = %s, want 0.2 (paper §4.1)", c2)
	}
	if got := c2.Parent(); Compare(got, r) != 0 {
		t.Errorf("Parent(0.2) = %s", got)
	}
	if r.Parent() != nil {
		t.Error("Parent(root) should be nil")
	}
	if c2.Level() != 2 || r.Level() != 1 {
		t.Errorf("levels: root=%d child=%d", r.Level(), c2.Level())
	}
}

func TestChildDoesNotAlias(t *testing.T) {
	r := Root()
	a := r.Child(1)
	b := r.Child(2)
	a[1] = 99
	if b[1] != 2 {
		t.Error("Child results alias each other")
	}
}

func TestCompareDocumentOrder(t *testing.T) {
	// In document order: 0 < 0.1 < 0.1.1 < 0.1.2 < 0.2 < 0.10
	ids := []string{"0", "0.1", "0.1.1", "0.1.2", "0.2", "0.10"}
	for i := range ids {
		for j := range ids {
			a, _ := Parse(ids[i])
			b, _ := Parse(ids[j])
			got := Compare(a, b)
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%s, %s) = %d, want %d", ids[i], ids[j], got, want)
			}
		}
	}
}

func TestIsAncestorOf(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"0", "0.1", true},
		{"0", "0.1.2.3", true},
		{"0.1", "0.1.2", true},
		{"0.1", "0.2.1", false},
		{"0.1", "0.1", false},
		{"0.1.2", "0.1", false},
		{"0.2", "0.10", false},
	}
	for _, c := range cases {
		a, _ := Parse(c.a)
		b, _ := Parse(c.b)
		if got := a.IsAncestorOf(b); got != c.want {
			t.Errorf("IsAncestorOf(%s, %s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestParseString(t *testing.T) {
	for _, s := range []string{"0", "0.2", "0.12.345.6789"} {
		id, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if id.String() != s {
			t.Errorf("round trip %q -> %q", s, id.String())
		}
	}
	for _, s := range []string{"", "a.b", "0..1", "-1"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q): expected error", s)
		}
	}
}

func TestBytesRoundTrip(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		id := make(ID, len(raw))
		for i, v := range raw {
			id[i] = v % MaxComponent
		}
		got, err := FromBytes(id.Bytes())
		if err != nil {
			return false
		}
		return Compare(got, id) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestBytesBoundaryValues(t *testing.T) {
	for _, v := range []uint32{0, 1, 127, 128, 1<<14 - 1, 1 << 14, 1<<21 - 1, 1 << 21, MaxComponent} {
		id := ID{v}
		got, err := FromBytes(id.Bytes())
		if err != nil {
			t.Fatalf("FromBytes(%d): %v", v, err)
		}
		if got[0] != v {
			t.Errorf("round trip %d -> %d", v, got[0])
		}
	}
}

// TestBytesOrderPreserving is the core property: bytewise comparison of
// encodings equals document-order comparison of IDs.
func TestBytesOrderPreserving(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	randID := func() ID {
		n := 1 + rng.Intn(6)
		id := make(ID, n)
		id[0] = 0
		for i := 1; i < n; i++ {
			// Mix magnitudes to cross varint length boundaries.
			switch rng.Intn(4) {
			case 0:
				id[i] = uint32(rng.Intn(128))
			case 1:
				id[i] = uint32(rng.Intn(1 << 14))
			case 2:
				id[i] = uint32(rng.Intn(1 << 21))
			default:
				id[i] = uint32(rng.Intn(MaxComponent))
			}
		}
		return id
	}
	for i := 0; i < 20000; i++ {
		a, b := randID(), randID()
		want := Compare(a, b)
		got := bytes.Compare(a.Bytes(), b.Bytes())
		if got != want {
			t.Fatalf("order broken: Compare(%s,%s)=%d but bytes.Compare=%d", a, b, want, got)
		}
	}
}

func TestBytesAncestorIsPrefix(t *testing.T) {
	id, _ := Parse("0.3.1000.7")
	parent := id.Parent()
	if !bytes.HasPrefix(id.Bytes(), parent.Bytes()) {
		t.Error("parent encoding should be a byte prefix of the child's")
	}
}

func TestFromBytesRejectsGarbage(t *testing.T) {
	for _, b := range [][]byte{nil, {}, {0xFF}, {0x80}, {0xC0, 0x01}, {0xE0, 0x01, 0x02}} {
		if _, err := FromBytes(b); err == nil {
			t.Errorf("FromBytes(%x): expected error", b)
		}
	}
}

func TestClone(t *testing.T) {
	id, _ := Parse("0.1.2")
	c := id.Clone()
	c[2] = 99
	if id[2] != 2 {
		t.Error("Clone aliases original")
	}
}

func TestQuickFromBytesNeverPanics(t *testing.T) {
	f := func(b []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %x: %v", b, r)
				ok = false
			}
		}()
		id, err := FromBytes(b)
		if err != nil {
			return true
		}
		// Decoded IDs must re-encode to an equal-ordering byte string.
		if Compare(id, id) != 0 {
			return false
		}
		round, err := FromBytes(id.Bytes())
		return err == nil && Compare(round, id) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}
