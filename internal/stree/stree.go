// Package stree implements the paper's succinct physical storage scheme for
// XML structure (§4.2) and the physical tree primitives of Algorithm 2.
//
// The subject tree is materialized as a string: each element contributes one
// 2-byte character from the alphabet Σ (see internal/symtab) when it opens
// and one 1-byte ')' marker when it closes — exactly the shape of a SAX
// event stream. The string is split across fixed-size pages; tokens never
// straddle a page boundary.
//
// Every page carries the paper's (st, lo, hi) vector: st is the running
// level after the last token of the *previous* page, and [lo, hi] bounds the
// running level within the page. Unlike the paper's prose, lo/hi here also
// cover st itself; that closes a corner case in the FOLLOWING-SIBLING page
// skip (a page that begins exactly at the parent's close token would
// otherwise be skippable even though it ends the sibling scan).
//
// Page headers are tiny and the store keeps them all in memory (§4.2 sizes
// this at ≤70MB per terabyte of XML), which is what allows the navigation
// primitives to skip pages wholesale.
//
// Levels follow the paper's Figure 4 convention: the running level starts
// at 0, an open token sets it to parent+1 (the node's level; the root is at
// level 1), a close token decrements it.
package stree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"nok/internal/obs"
	"nok/internal/pager"
	"nok/internal/symtab"
)

// Process-wide navigation counters (all stores), exposed through the
// default obs registry. These are the direct measure of the paper's
// (st,lo,hi) page-skip optimization.
var (
	mPagesExamined = obs.Default.Counter("nok_stree_pages_examined_total", "pages examined by FOLLOWING-SIBLING / SubtreeEnd scans")
	mPagesSkipped  = obs.Default.Counter("nok_stree_pages_skipped_total", "pages skipped via (st,lo,hi) header bounds")
)

// CloseByte marks a close token in the string representation. Open tokens
// are 2-byte big-endian symbols whose high byte is < 0xFF (see
// symtab.MaxSym), so the two cannot be confused when scanning forward.
const CloseByte = 0xFF

// Token sizes in bytes.
const (
	OpenTokenSize  = 2
	CloseTokenSize = 1
)

// in-page header layout (16 bytes):
//
//	0:2   used u16 — content bytes in this page
//	2:4   st int16 — running level entering this page
//	4:6   lo int16 — min running level (including st)
//	6:8   hi int16 — max running level (including st)
//	8:12  next u32 — next page in chain
//	12:16 prev u32 — previous page in chain
const pageHeaderSize = 16

// store meta layout in the pager meta area:
//
//	magic "ST1" | head u32 | tail u32 | nodeCount u64 | tokenBytes u64 |
//	maxLevel u16 | reservePct u8
const (
	metaMagic = "ST1"
	metaLen   = 3 + 4 + 4 + 8 + 8 + 2 + 1
)

// Errors.
var (
	ErrNotStore   = errors.New("stree: pager file does not contain a string tree")
	ErrBadPos     = errors.New("stree: invalid position")
	ErrEmptyStore = errors.New("stree: store holds no document")
)

// Pos addresses a token: Chain is the index of its page in the page chain
// (not the physical page id), Off the byte offset of the token within the
// page's content area. Positions compare in document order via DocPos.
type Pos struct {
	Chain int
	Off   int
}

// DocPos is a single integer that orders positions in document order.
// Offsets fit in 16 bits because pages are at most 64KB.
func (p Pos) DocPos() uint64 { return uint64(p.Chain)<<16 | uint64(p.Off) }

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Chain, p.Off) }

// Interval is the paper's join condition surrogate (§5): Start is the
// DocPos of a node's open token and End the DocPos of its matching close.
// Node a contains node b iff a.Start < b.Start && b.End < a.End.
type Interval struct {
	Start, End uint64
}

// Contains reports whether iv properly contains other.
func (iv Interval) Contains(other Interval) bool {
	return iv.Start < other.Start && other.End < iv.End
}

// Before reports whether iv ends before other starts (the following /
// preceding axis condition).
func (iv Interval) Before(other Interval) bool {
	return iv.End < other.Start
}

// header is the in-RAM copy of a page header, kept for every page in chain
// order. This is the "feather-weight index" of §4.2.
type header struct {
	page pager.PageID
	used uint16
	st   int16
	lo   int16
	hi   int16
}

// Store is an opened string-tree store. Navigation methods are safe for
// concurrent use with each other but not with updates.
//
// A Store reads pages through pf, a pager.Source that is either the live
// writer view of a pager file or a pinned version snapshot. Mutation
// methods go through file, the underlying *pager.File; a Store produced by
// Snapshot has file == nil and is read-only.
type Store struct {
	pf   pager.Source
	file *pager.File // nil for read-only snapshot views
	// statsFile carries the underlying pager file on snapshot views so
	// Pager() can still report I/O statistics; never used for writes.
	statsFile *pager.File
	headers   []header // chain order

	nodeCount  uint64
	tokenBytes uint64
	maxLevel   int
	reservePct int

	levels *levelCache

	navExamined atomic.Uint64
	navSkipped  atomic.Uint64
}

// NavStats counts page-level work of the navigation primitives — the
// direct measure of the (st,lo,hi) page-skip optimization: pages whose
// header excluded them (skipped) versus pages actually examined.
type NavStats struct {
	PagesExamined uint64
	PagesSkipped  uint64
}

// NavCounters accumulates per-caller navigation counts. A query evaluation
// owns one and passes it to the *Counted navigation variants, giving
// per-query PagesScanned/PagesSkipped numbers that the store-global
// (concurrently shared) NavStats cannot provide. A NavCounters is owned by
// one goroutine; it is deliberately not synchronized.
type NavCounters struct {
	Examined uint64
	Skipped  uint64
}

// add is nil-safe so navigation can thread an optional collector.
func (nc *NavCounters) add(examined, skipped uint64) {
	if nc != nil {
		nc.Examined += examined
		nc.Skipped += skipped
	}
}

// AddExamined records n examined pages; nil-safe. Callers outside the
// package use it to attribute non-navigation page reads (index probes,
// point lookups) to the same per-query counter.
func (nc *NavCounters) AddExamined(n uint64) { nc.add(n, 0) }

// NavStats returns the accumulated navigation counters.
func (s *Store) NavStats() NavStats {
	return NavStats{
		PagesExamined: s.navExamined.Load(),
		PagesSkipped:  s.navSkipped.Load(),
	}
}

// ResetNavStats zeroes the navigation counters.
func (s *Store) ResetNavStats() {
	s.navExamined.Store(0)
	s.navSkipped.Store(0)
}

// NodeCount returns the number of element nodes stored.
func (s *Store) NodeCount() uint64 { return s.nodeCount }

// TokenBytes returns the total size of the string representation in bytes
// (the |tree| column of the paper's Table 1).
func (s *Store) TokenBytes() uint64 { return s.tokenBytes }

// MaxLevel returns the maximum node level (document depth; root = 1).
func (s *Store) MaxLevel() int { return s.maxLevel }

// NumPages returns the number of pages in the chain.
func (s *Store) NumPages() int { return len(s.headers) }

// HeaderBytes returns the in-memory footprint of the header table in bytes,
// for the §4.2 "headers of 1TB fit in RAM" experiment. Each header carries
// the paper's 7 logical bytes plus alignment.
func (s *Store) HeaderBytes() int { return len(s.headers) * 16 }

// Pager exposes the underlying pager (for I/O statistics). It is nil for
// snapshot views.
func (s *Store) Pager() *pager.File {
	if s.file != nil {
		return s.file
	}
	return s.statsFile
}

// Snapshot returns a read-only view of the store that navigates through
// src — typically a pinned pager version — with its own level cache. The
// view shares no mutable state with s: the header table is copied, so
// later updates to s (or the store it was cloned from) never disturb it.
func (s *Store) Snapshot(src pager.Source) *Store {
	return &Store{
		pf:         src,
		statsFile:  s.Pager(),
		headers:    append([]header(nil), s.headers...),
		nodeCount:  s.nodeCount,
		tokenBytes: s.tokenBytes,
		maxLevel:   s.maxLevel,
		reservePct: s.reservePct,
		levels:     newLevelCache(defaultLevelCacheSize),
	}
}

// WriterClone returns a mutable clone of the store bound to file: the
// in-RAM header table is copied so mutations never disturb s (which may be
// the read view of a committed epoch). Used by the copy-on-write update
// path, where the pager file must have an open transaction before the
// clone is mutated.
func (s *Store) WriterClone(file *pager.File) *Store {
	return &Store{
		pf:         file,
		file:       file,
		headers:    append([]header(nil), s.headers...),
		nodeCount:  s.nodeCount,
		tokenBytes: s.tokenBytes,
		maxLevel:   s.maxLevel,
		reservePct: s.reservePct,
		levels:     newLevelCache(defaultLevelCacheSize),
	}
}

// Open attaches to a store previously built in pf and loads the page header
// table into memory by walking the page chain.
func Open(pf *pager.File) (*Store, error) {
	meta := pf.Meta()
	if len(meta) != metaLen || string(meta[:3]) != metaMagic {
		return nil, ErrNotStore
	}
	s := &Store{pf: pf, file: pf, levels: newLevelCache(defaultLevelCacheSize)}
	head := pager.PageID(binary.BigEndian.Uint32(meta[3:7]))
	s.nodeCount = binary.BigEndian.Uint64(meta[11:19])
	s.tokenBytes = binary.BigEndian.Uint64(meta[19:27])
	s.maxLevel = int(binary.BigEndian.Uint16(meta[27:29]))
	s.reservePct = int(meta[29])
	for id := head; id != pager.InvalidPage; {
		p, err := pf.Get(id)
		if err != nil {
			return nil, err
		}
		d := p.Data()
		s.headers = append(s.headers, header{
			page: id,
			used: binary.BigEndian.Uint16(d[0:2]),
			st:   int16(binary.BigEndian.Uint16(d[2:4])),
			lo:   int16(binary.BigEndian.Uint16(d[4:6])),
			hi:   int16(binary.BigEndian.Uint16(d[6:8])),
		})
		next := pager.PageID(binary.BigEndian.Uint32(d[8:12]))
		pf.Unpin(p)
		id = next
	}
	if len(s.headers) == 0 {
		return nil, ErrEmptyStore
	}
	return s, nil
}

func (s *Store) writeMeta() error {
	var meta [metaLen]byte
	copy(meta[:3], metaMagic)
	var head, tail pager.PageID
	if len(s.headers) > 0 {
		head = s.headers[0].page
		tail = s.headers[len(s.headers)-1].page
	}
	binary.BigEndian.PutUint32(meta[3:7], uint32(head))
	binary.BigEndian.PutUint32(meta[7:11], uint32(tail))
	binary.BigEndian.PutUint64(meta[11:19], s.nodeCount)
	binary.BigEndian.PutUint64(meta[19:27], s.tokenBytes)
	binary.BigEndian.PutUint16(meta[27:29], uint16(s.maxLevel))
	meta[29] = byte(s.reservePct)
	return s.file.SetMeta(meta[:])
}

// writePageHeader flushes the in-RAM header of chain index ci into its page.
func (s *Store) writePageHeader(ci int, d []byte) {
	h := s.headers[ci]
	binary.BigEndian.PutUint16(d[0:2], h.used)
	binary.BigEndian.PutUint16(d[2:4], uint16(h.st))
	binary.BigEndian.PutUint16(d[4:6], uint16(h.lo))
	binary.BigEndian.PutUint16(d[6:8], uint16(h.hi))
	var next, prev pager.PageID
	if ci+1 < len(s.headers) {
		next = s.headers[ci+1].page
	}
	if ci > 0 {
		prev = s.headers[ci-1].page
	}
	binary.BigEndian.PutUint32(d[8:12], uint32(next))
	binary.BigEndian.PutUint32(d[12:16], uint32(prev))
}

// contentCapacity is the maximum content bytes a page can hold.
func (s *Store) contentCapacity() int { return s.pf.PageSize() - pageHeaderSize }

// Capacity returns the paper's page capacity C in *nodes*: how many
// (open, close) token pairs fit in one page's content area at full fill.
func (s *Store) Capacity() int {
	return s.contentCapacity() / (OpenTokenSize + CloseTokenSize)
}

// content returns the content area of a pinned page.
func content(d []byte, used int) []byte { return d[pageHeaderSize : pageHeaderSize+used] }

// validPos reports whether p addresses a token start in the current store.
func (s *Store) validPos(p Pos) bool {
	return p.Chain >= 0 && p.Chain < len(s.headers) && p.Off >= 0 && p.Off < int(s.headers[p.Chain].used)
}

// ---- level arrays ----------------------------------------------------------

const defaultLevelCacheSize = 1024

// levelCache caches per-page running-level arrays, the L[p] of the paper's
// READ-PAGE subroutine. Entries are invalidated wholesale on update.
// Safe for concurrent readers (queries run concurrently; updates are
// exclusive at the store level).
type levelCache struct {
	mu  sync.Mutex
	max int
	m   map[pager.PageID][]int16
}

func newLevelCache(max int) *levelCache {
	return &levelCache{max: max, m: make(map[pager.PageID][]int16)}
}

func (c *levelCache) get(id pager.PageID) ([]int16, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	l, ok := c.m[id]
	return l, ok
}

func (c *levelCache) put(id pager.PageID, l []int16) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.m) >= c.max {
		// Drop an arbitrary entry; recomputing a level array is one linear
		// scan of a page, so eviction policy hardly matters.
		for k := range c.m {
			delete(c.m, k)
			break
		}
	}
	c.m[id] = l
}

func (c *levelCache) invalidateAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	clear(c.m)
}

// computeLevels builds the running-level array for page content: levels[i]
// is the running level *after* processing the token starting at byte i (for
// byte positions that are token starts; other entries hold the level of the
// token they belong to). st is the level entering the page.
func computeLevels(cont []byte, st int16) []int16 {
	levels := make([]int16, len(cont))
	lvl := st
	for i := 0; i < len(cont); {
		if cont[i] == CloseByte {
			lvl--
			levels[i] = lvl
			i += CloseTokenSize
		} else {
			lvl++
			levels[i] = lvl
			if i+1 < len(cont) {
				levels[i+1] = lvl
			}
			i += OpenTokenSize
		}
	}
	return levels
}

// pageLevels returns the level array for the page at chain index ci, using
// the cache. The page is read through the buffer pool.
func (s *Store) pageLevels(ci int) ([]int16, error) {
	h := s.headers[ci]
	if l, ok := s.levels.get(h.page); ok {
		return l, nil
	}
	p, err := s.pf.Get(h.page)
	if err != nil {
		return nil, err
	}
	l := computeLevels(content(p.Data(), int(h.used)), h.st)
	s.pf.Unpin(p)
	s.levels.put(h.page, l)
	return l, nil
}

// SymAt returns the symbol of the open token at p.
func (s *Store) SymAt(p Pos) (symtab.Sym, error) {
	if !s.validPos(p) {
		return 0, fmt.Errorf("%w: %v", ErrBadPos, p)
	}
	h := s.headers[p.Chain]
	pg, err := s.pf.Get(h.page)
	if err != nil {
		return 0, err
	}
	defer s.pf.Unpin(pg)
	cont := content(pg.Data(), int(h.used))
	if cont[p.Off] == CloseByte {
		return 0, fmt.Errorf("%w: %v is a close token", ErrBadPos, p)
	}
	if p.Off+1 >= len(cont) {
		return 0, fmt.Errorf("%w: truncated token at %v", ErrBadPos, p)
	}
	return symtab.Sym(binary.BigEndian.Uint16(cont[p.Off : p.Off+2])), nil
}

// LevelAt returns the node level of the open token at p (root = 1).
func (s *Store) LevelAt(p Pos) (int, error) {
	if !s.validPos(p) {
		return 0, fmt.Errorf("%w: %v", ErrBadPos, p)
	}
	levels, err := s.pageLevels(p.Chain)
	if err != nil {
		return 0, err
	}
	return int(levels[p.Off]), nil
}
