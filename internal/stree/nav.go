package stree

import (
	"fmt"

	"nok/internal/dewey"
	"nok/internal/symtab"
)

// This file implements the paper's Algorithm 2: the physical FIRST-CHILD
// and FOLLOWING-SIBLING primitives over the paged string representation,
// plus the subtree-end scan that yields interval encodings for structural
// joins (§5).

// Root returns the position of the document root's open token.
func (s *Store) Root() (Pos, error) {
	if len(s.headers) == 0 {
		return Pos{}, ErrEmptyStore
	}
	// Skip leading empty pages (possible after updates).
	for ci := 0; ci < len(s.headers); ci++ {
		if s.headers[ci].used > 0 {
			return Pos{Chain: ci, Off: 0}, nil
		}
	}
	return Pos{}, ErrEmptyStore
}

// nextTokenPos returns the position of the token following the token at p,
// reading at most the page containing p (token length determines the next
// offset; empty pages in the chain are skipped without I/O thanks to the
// header table). ok is false at the end of the document.
func (s *Store) nextTokenPos(p Pos, tokLen int) (Pos, bool) {
	off := p.Off + tokLen
	ci := p.Chain
	for {
		if off < int(s.headers[ci].used) {
			return Pos{Chain: ci, Off: off}, true
		}
		ci++
		off = 0
		if ci >= len(s.headers) {
			return Pos{}, false
		}
	}
}

// tokenAt returns whether the token at p is a close marker and, if not, its
// symbol. The page is accessed through the buffer pool.
func (s *Store) tokenAt(p Pos) (isClose bool, sym symtab.Sym, err error) {
	h := s.headers[p.Chain]
	pg, err := s.pf.Get(h.page)
	if err != nil {
		return false, 0, err
	}
	defer s.pf.Unpin(pg)
	cont := content(pg.Data(), int(h.used))
	if p.Off >= len(cont) {
		return false, 0, fmt.Errorf("%w: %v beyond page content", ErrBadPos, p)
	}
	if cont[p.Off] == CloseByte {
		return true, 0, nil
	}
	return false, symtab.Sym(uint16(cont[p.Off])<<8 | uint16(cont[p.Off+1])), nil
}

// FirstChild returns the position of p's first child, or ok=false if p has
// no children. Per Algorithm 2, the first child is simply the next token
// when that token is an open character (its level is then level(p)+1).
func (s *Store) FirstChild(p Pos) (Pos, bool, error) {
	if !s.validPos(p) {
		return Pos{}, false, fmt.Errorf("%w: %v", ErrBadPos, p)
	}
	np, ok := s.nextTokenPos(p, OpenTokenSize)
	if !ok {
		return Pos{}, false, nil
	}
	isClose, _, err := s.tokenAt(np)
	if err != nil {
		return Pos{}, false, err
	}
	if isClose {
		return Pos{}, false, nil
	}
	return np, true, nil
}

// FollowingSibling returns the position of p's next sibling, or ok=false if
// none exists. It scans forward for an open token at level(p), stopping at
// the parent's close (running level level(p)-2); pages whose [lo,hi] range
// cannot contain running level level(p)-1 are skipped without I/O — the
// paper's page-skip optimization driven by the in-memory header table.
func (s *Store) FollowingSibling(p Pos) (Pos, bool, error) {
	return s.followingSibling(p, true, nil)
}

// FollowingSiblingNoSkip is FollowingSibling with the header-based page
// skipping disabled; it exists for the ablation benchmark that quantifies
// the value of the (st,lo,hi) vectors.
func (s *Store) FollowingSiblingNoSkip(p Pos) (Pos, bool, error) {
	return s.followingSibling(p, false, nil)
}

// FollowingSiblingCounted is FollowingSibling with an optional per-caller
// page counter (nil is allowed) and an explicit skip switch; the query
// evaluator uses it to attribute page work to individual queries.
func (s *Store) FollowingSiblingCounted(p Pos, skip bool, nc *NavCounters) (Pos, bool, error) {
	return s.followingSibling(p, skip, nc)
}

func (s *Store) followingSibling(p Pos, skip bool, nc *NavCounters) (Pos, bool, error) {
	if !s.validPos(p) {
		return Pos{}, false, fmt.Errorf("%w: %v", ErrBadPos, p)
	}
	levels, err := s.pageLevels(p.Chain)
	if err != nil {
		return Pos{}, false, err
	}
	l := levels[p.Off] // node level of p

	ci := p.Chain
	off := p.Off + OpenTokenSize
	for ci < len(s.headers) {
		h := s.headers[ci]
		if off >= int(h.used) {
			ci, off = ci+1, 0
			continue
		}
		if skip && off == 0 {
			// The page can be relevant only if the running level touches
			// l-1 inside it (sibling opens are immediately preceded by
			// running level l-1; the parent's close is too, because lo/hi
			// include st). See the package comment for why st is included.
			if int(h.lo) > int(l)-1 || int(h.hi) < int(l)-1 {
				s.navSkipped.Add(1)
				mPagesSkipped.Inc()
				nc.add(0, 1)
				ci++
				continue
			}
		}
		s.navExamined.Add(1)
		mPagesExamined.Inc()
		nc.add(1, 0)
		pls, err := s.pageLevels(ci)
		if err != nil {
			return Pos{}, false, err
		}
		h2 := s.headers[ci]
		pg, err := s.pf.Get(h2.page)
		if err != nil {
			return Pos{}, false, err
		}
		cont := content(pg.Data(), int(h2.used))
		for off < len(cont) {
			if cont[off] == CloseByte {
				if pls[off] == l-2 {
					// Parent closed: no following sibling.
					s.pf.Unpin(pg)
					return Pos{}, false, nil
				}
				off += CloseTokenSize
				continue
			}
			if pls[off] == l {
				s.pf.Unpin(pg)
				return Pos{Chain: ci, Off: off}, true, nil
			}
			off += OpenTokenSize
		}
		s.pf.Unpin(pg)
		ci, off = ci+1, 0
	}
	return Pos{}, false, nil
}

// SubtreeEnd returns the position of the close token matching the open
// token at p. Pages that cannot contain running level level(p)-1 are
// skipped via the header table.
func (s *Store) SubtreeEnd(p Pos) (Pos, error) {
	return s.subtreeEnd(p, nil)
}

// SubtreeEndCounted is SubtreeEnd with an optional per-caller page counter.
func (s *Store) SubtreeEndCounted(p Pos, nc *NavCounters) (Pos, error) {
	return s.subtreeEnd(p, nc)
}

func (s *Store) subtreeEnd(p Pos, nc *NavCounters) (Pos, error) {
	if !s.validPos(p) {
		return Pos{}, fmt.Errorf("%w: %v", ErrBadPos, p)
	}
	levels, err := s.pageLevels(p.Chain)
	if err != nil {
		return Pos{}, err
	}
	l := levels[p.Off]

	ci := p.Chain
	off := p.Off + OpenTokenSize
	for ci < len(s.headers) {
		h := s.headers[ci]
		if off >= int(h.used) {
			ci, off = ci+1, 0
			continue
		}
		if off == 0 {
			// The matching close runs the level down to l-1; skip pages
			// whose level range stays strictly above (or below) that.
			if int(h.lo) > int(l)-1 || int(h.hi) < int(l)-1 {
				s.navSkipped.Add(1)
				mPagesSkipped.Inc()
				nc.add(0, 1)
				ci++
				continue
			}
		}
		s.navExamined.Add(1)
		mPagesExamined.Inc()
		nc.add(1, 0)
		pls, err := s.pageLevels(ci)
		if err != nil {
			return Pos{}, err
		}
		h2 := s.headers[ci]
		pg, err := s.pf.Get(h2.page)
		if err != nil {
			return Pos{}, err
		}
		cont := content(pg.Data(), int(h2.used))
		for off < len(cont) {
			if cont[off] == CloseByte {
				if pls[off] == l-1 {
					s.pf.Unpin(pg)
					return Pos{Chain: ci, Off: off}, nil
				}
				off += CloseTokenSize
				continue
			}
			off += OpenTokenSize
		}
		s.pf.Unpin(pg)
		ci, off = ci+1, 0
	}
	return Pos{}, fmt.Errorf("stree: no matching close for %v (corrupt store)", p)
}

// Interval returns the paper's interval encoding surrogate for the node at
// p: the DocPos of its open token and of its matching close (§5).
func (s *Store) Interval(p Pos) (Interval, error) {
	return s.IntervalCounted(p, nil)
}

// IntervalCounted is Interval with an optional per-caller page counter.
func (s *Store) IntervalCounted(p Pos, nc *NavCounters) (Interval, error) {
	end, err := s.subtreeEnd(p, nc)
	if err != nil {
		return Interval{}, err
	}
	return Interval{Start: p.DocPos(), End: end.DocPos()}, nil
}

// ScanFunc receives each element node during a full document scan: its
// position, symbol, level and Dewey ID. The dewey.ID is only valid for the
// duration of the call; clone it to retain it. Returning false stops the
// scan.
type ScanFunc func(pos Pos, sym symtab.Sym, level int, id dewey.ID) bool

// Scan walks the whole document in document order (the naïve
// starting-point strategy of §3 and the index build path), deriving Dewey
// IDs on the fly, which is exactly why the paper stores no per-node IDs.
func (s *Store) Scan(fn ScanFunc) error {
	return s.ScanCounted(fn, nil)
}

// ScanCounted is Scan with an optional per-caller page counter; every
// non-empty page visited is charged as examined.
func (s *Store) ScanCounted(fn ScanFunc, nc *NavCounters) error {
	if len(s.headers) == 0 {
		return nil
	}
	// Child-ordinal stack: ords[d] is the number of children of the node
	// at depth d seen so far. The Dewey ID of a node at depth d is
	// id[0..d], maintained incrementally.
	var id dewey.ID
	var ords []uint32
	depth := 0 // elements currently open

	for ci := 0; ci < len(s.headers); ci++ {
		h := s.headers[ci]
		if h.used == 0 {
			continue
		}
		nc.add(1, 0)
		pg, err := s.pf.Get(h.page)
		if err != nil {
			return err
		}
		cont := content(pg.Data(), int(h.used))
		levels, err := s.pageLevels(ci)
		if err != nil {
			s.pf.Unpin(pg)
			return err
		}
		for off := 0; off < len(cont); {
			if cont[off] == CloseByte {
				depth--
				id = id[:len(id)-1]
				ords = ords[:len(ords)-1]
				off += CloseTokenSize
				continue
			}
			sym := symtab.Sym(uint16(cont[off])<<8 | uint16(cont[off+1]))
			if depth == 0 {
				id = append(id, 0)
			} else {
				ords[len(ords)-1]++
				id = append(id, ords[len(ords)-1])
			}
			ords = append(ords, 0)
			depth++
			if !fn(Pos{Chain: ci, Off: off}, sym, int(levels[off]), id) {
				s.pf.Unpin(pg)
				return nil
			}
			off += OpenTokenSize
		}
		s.pf.Unpin(pg)
	}
	return nil
}

// String renders the whole stored string using tags for symbols — the
// "ab z)e)..." notation of Figure 4. Intended for tests and debugging on
// small documents.
func (s *Store) String(tags *symtab.Table) (string, error) {
	out := ""
	for ci := 0; ci < len(s.headers); ci++ {
		h := s.headers[ci]
		if h.used == 0 {
			continue
		}
		pg, err := s.pf.Get(h.page)
		if err != nil {
			return "", err
		}
		cont := content(pg.Data(), int(h.used))
		for off := 0; off < len(cont); {
			if cont[off] == CloseByte {
				out += ")"
				off += CloseTokenSize
				continue
			}
			sym := symtab.Sym(uint16(cont[off])<<8 | uint16(cont[off+1]))
			name, ok := tags.Name(sym)
			if !ok {
				name = fmt.Sprintf("<%d>", sym)
			}
			out += name + " "
			off += OpenTokenSize
		}
		s.pf.Unpin(pg)
	}
	return out, nil
}
