package stree

import (
	"math/rand"
	"testing"

	"nok/internal/dewey"
	"nok/internal/symtab"
)

// scanScript reconstructs the token script from the store by a full scan
// plus subtree ends; used to verify updates against model surgery.
func scanScript(t *testing.T, s *Store) []symtab.Sym {
	t.Helper()
	type ev struct {
		pos uint64
		sym symtab.Sym // 0 = close
	}
	var evs []ev
	err := s.Scan(func(pos Pos, sym symtab.Sym, level int, id dewey.ID) bool {
		end, err := s.SubtreeEnd(pos)
		if err != nil {
			t.Fatal(err)
		}
		evs = append(evs, ev{pos.DocPos(), sym}, ev{end.DocPos(), 0})
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sort by document position; opens and closes interleave correctly
	// because DocPos is unique per token.
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && evs[j].pos < evs[j-1].pos; j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
	out := make([]symtab.Sym, len(evs))
	for i, e := range evs {
		out[i] = e.sym
	}
	return out
}

func encode(t *testing.T, script []symtab.Sym) []byte {
	t.Helper()
	var e SubtreeEncoder
	for _, tok := range script {
		var err error
		if tok == 0 {
			err = e.Close()
		} else {
			err = e.Open(tok)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	b, err := e.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func scriptsEqual(a, b []symtab.Sym) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestInsertChildAtLeafFastPath(t *testing.T) {
	// The paper's example: insert ab)c)) as a subtree of a leaf. Generous
	// reserve so the fast (in-page) path is taken.
	script := []symtab.Sym{1, 2, 0, 3, 0, 0} // a(b)(c)
	s, _ := buildStore(t, script, 4096, 50)
	positions := scanPositions(t, s)
	bLeaf := positions[1]

	sub := encode(t, []symtab.Sym{4, 5, 0, 6, 0, 0}) // x(y)(z)
	pagesBefore := s.NumPages()
	if err := s.InsertChild(bLeaf, sub); err != nil {
		t.Fatal(err)
	}
	if s.NumPages() != pagesBefore {
		t.Errorf("fast-path insert allocated pages: %d -> %d", pagesBefore, s.NumPages())
	}
	want := []symtab.Sym{1, 2, 4, 5, 0, 6, 0, 0, 0, 3, 0, 0}
	if got := scanScript(t, s); !scriptsEqual(got, want) {
		t.Errorf("after insert: %v, want %v", got, want)
	}
	if s.NodeCount() != 6 {
		t.Errorf("NodeCount = %d, want 6", s.NodeCount())
	}
	crossCheck(t, s, want)
}

func TestInsertChildAtNonLeaf(t *testing.T) {
	// Inserting under a non-leaf node appends after its existing children
	// (before its close token), the §4.2 "insert between root and child"
	// case generalized.
	script := []symtab.Sym{1, 2, 3, 0, 0, 4, 0, 0}
	s, _ := buildStore(t, script, 4096, 50)
	positions := scanPositions(t, s)
	root := positions[0]

	sub := encode(t, []symtab.Sym{5, 0})
	if err := s.InsertChild(root, sub); err != nil {
		t.Fatal(err)
	}
	want := []symtab.Sym{1, 2, 3, 0, 0, 4, 0, 5, 0, 0}
	if got := scanScript(t, s); !scriptsEqual(got, want) {
		t.Errorf("after insert: %v, want %v", got, want)
	}
	crossCheck(t, s, want)
}

func TestInsertBefore(t *testing.T) {
	script := []symtab.Sym{1, 2, 0, 3, 0, 0}
	s, _ := buildStore(t, script, 4096, 50)
	positions := scanPositions(t, s)
	cNode := positions[2]

	sub := encode(t, []symtab.Sym{7, 0})
	if err := s.InsertBefore(cNode, sub); err != nil {
		t.Fatal(err)
	}
	want := []symtab.Sym{1, 2, 0, 7, 0, 3, 0, 0}
	if got := scanScript(t, s); !scriptsEqual(got, want) {
		t.Errorf("after insert: %v, want %v", got, want)
	}
	crossCheck(t, s, want)
}

func TestInsertBeforeRootRejected(t *testing.T) {
	s, _ := buildStore(t, []symtab.Sym{1, 0}, 4096, 50)
	root, err := s.Root()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.InsertBefore(root, encode(t, []symtab.Sym{2, 0})); err == nil {
		t.Error("inserting a sibling of the root should fail")
	}
}

func TestInsertUnbalancedRejected(t *testing.T) {
	s, _ := buildStore(t, []symtab.Sym{1, 2, 0, 0}, 4096, 50)
	positions := scanPositions(t, s)
	for _, bad := range [][]byte{
		{0, 3},               // open without close
		{CloseByte},          // bare close
		{0, 3, CloseByte, 0}, // truncated trailing open
		{},                   // empty
	} {
		if err := s.InsertChild(positions[1], bad); err == nil {
			t.Errorf("unbalanced tokens %v accepted", bad)
		}
	}
}

func TestInsertSplitsPage(t *testing.T) {
	// Zero reserve and a big insertion force the cut-and-paste slow path.
	script := []symtab.Sym{1}
	for i := 0; i < 100; i++ {
		script = append(script, 2, 0)
	}
	script = append(script, 0)
	s, _ := buildStore(t, script, 128, 0)
	positions := scanPositions(t, s)
	target := positions[50]

	// Insert a subtree with 40 nodes under a mid-document leaf.
	var subScript []symtab.Sym
	subScript = append(subScript, 9)
	for i := 0; i < 39; i++ {
		subScript = append(subScript, 10, 0)
	}
	subScript = append(subScript, 0)
	sub := encode(t, subScript)

	pagesBefore := s.NumPages()
	if err := s.InsertChild(target, sub); err != nil {
		t.Fatal(err)
	}
	if s.NumPages() <= pagesBefore {
		t.Errorf("slow-path insert did not allocate pages (%d -> %d)", pagesBefore, s.NumPages())
	}

	// Model surgery: the 50th b (preorder index 50) gains the subtree
	// before its close token. Its open sits at script index 1+49*2 = 99.
	cut := 1 + 49*2 + 1
	want := make([]symtab.Sym, 0, len(script)+len(subScript))
	want = append(want, script[:cut]...)
	want = append(want, subScript...)
	want = append(want, script[cut:]...)
	if got := scanScript(t, s); !scriptsEqual(got, want) {
		t.Fatalf("after split insert, script mismatch\ngot  %v\nwant %v", got, want)
	}
	crossCheck(t, s, want)
}

func TestDeleteSubtreeSinglePage(t *testing.T) {
	script := []symtab.Sym{1, 2, 3, 0, 0, 4, 0, 0}
	s, _ := buildStore(t, script, 4096, 20)
	positions := scanPositions(t, s)

	if err := s.DeleteSubtree(positions[1]); err != nil { // delete 2(3)
		t.Fatal(err)
	}
	want := []symtab.Sym{1, 4, 0, 0}
	if got := scanScript(t, s); !scriptsEqual(got, want) {
		t.Errorf("after delete: %v, want %v", got, want)
	}
	if s.NodeCount() != 2 {
		t.Errorf("NodeCount = %d, want 2", s.NodeCount())
	}
	crossCheck(t, s, want)
}

func TestDeleteSubtreeSpanningPages(t *testing.T) {
	// Large middle subtree spanning many small pages.
	script := []symtab.Sym{1, 2, 0, 3}
	for i := 0; i < 500; i++ {
		script = append(script, 4, 0)
	}
	script = append(script, 0, 5, 0, 0)
	s, _ := buildStore(t, script, 128, 10)
	positions := scanPositions(t, s)
	big := positions[2] // the node with sym 3

	pagesBefore := s.NumPages()
	if err := s.DeleteSubtree(big); err != nil {
		t.Fatal(err)
	}
	if s.NumPages() >= pagesBefore {
		t.Errorf("deleting a page-spanning subtree should free pages (%d -> %d)",
			pagesBefore, s.NumPages())
	}
	want := []symtab.Sym{1, 2, 0, 5, 0, 0}
	if got := scanScript(t, s); !scriptsEqual(got, want) {
		t.Errorf("after delete: %v, want %v", got, want)
	}
	crossCheck(t, s, want)
}

func TestDeleteRoot(t *testing.T) {
	script := []symtab.Sym{1, 2, 0, 0}
	s, _ := buildStore(t, script, 256, 20)
	root, err := s.Root()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteSubtree(root); err != nil {
		t.Fatal(err)
	}
	if s.NodeCount() != 0 {
		t.Errorf("NodeCount = %d after deleting root", s.NodeCount())
	}
	if _, err := s.Root(); err == nil {
		t.Error("Root() should fail on an emptied store")
	}
	// The store must accept a fresh document via insert-into-empty? Not
	// supported; emptied stores are rebuilt. Verify Scan is a no-op.
	n := 0
	if err := s.Scan(func(Pos, symtab.Sym, int, dewey.ID) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("Scan visited %d nodes on empty store", n)
	}
}

func TestRandomizedUpdateStorm(t *testing.T) {
	// Random inserts and deletes cross-checked against model surgery on
	// the script level, across page sizes that force both update paths.
	rng := rand.New(rand.NewSource(77))
	for _, pageSize := range []int{128, 512} {
		script := randomScript(rng, 120, 8)
		s, _ := buildStore(t, script, pageSize, 20)
		for step := 0; step < 25; step++ {
			positions := scanPositions(t, s)
			if len(positions) <= 1 {
				break
			}
			idx := rng.Intn(len(positions))
			if rng.Intn(2) == 0 && idx > 0 {
				// Delete a non-root subtree.
				if err := s.DeleteSubtree(positions[idx]); err != nil {
					t.Fatalf("step %d delete: %v", step, err)
				}
				script = deleteFromScript(script, idx)
			} else {
				sub := randomScript(rng, 1+rng.Intn(20), 8)
				if err := s.InsertChild(positions[idx], encode(t, sub)); err != nil {
					t.Fatalf("step %d insert: %v", step, err)
				}
				script = insertIntoScript(script, idx, sub)
			}
			if got := scanScript(t, s); !scriptsEqual(got, script) {
				t.Fatalf("step %d: script diverged (pageSize %d)", step, pageSize)
			}
		}
		crossCheck(t, s, script)
	}
}

// scriptNodeRange returns the token range [open, closeIdx] of the idx-th
// node (preorder) in script.
func scriptNodeRange(script []symtab.Sym, idx int) (int, int) {
	seen := -1
	for i, tok := range script {
		if tok != 0 {
			seen++
			if seen == idx {
				depth := 0
				for j := i; j < len(script); j++ {
					if script[j] != 0 {
						depth++
					} else {
						depth--
						if depth == 0 {
							return i, j
						}
					}
				}
			}
		}
	}
	return -1, -1
}

func deleteFromScript(script []symtab.Sym, idx int) []symtab.Sym {
	i, j := scriptNodeRange(script, idx)
	out := append([]symtab.Sym(nil), script[:i]...)
	return append(out, script[j+1:]...)
}

func insertIntoScript(script []symtab.Sym, idx int, sub []symtab.Sym) []symtab.Sym {
	_, j := scriptNodeRange(script, idx) // insert before close of node idx
	out := append([]symtab.Sym(nil), script[:j]...)
	out = append(out, sub...)
	return append(out, script[j:]...)
}
