package stree

import (
	"testing"
	"testing/quick"

	"nok/internal/symtab"
)

// scriptFromBytes shapes arbitrary bytes into a well-formed token script:
// each byte decides open-vs-close (biased to keep some depth); the result
// always balances.
func scriptFromBytes(raw []byte) []symtab.Sym {
	var script []symtab.Sym
	depth := 0
	script = append(script, 1) // root
	depth = 1
	for _, b := range raw {
		if depth > 1 && b%3 == 0 {
			script = append(script, 0)
			depth--
			continue
		}
		if depth < 30 {
			script = append(script, symtab.Sym(1+b%7))
			depth++
		}
	}
	for depth > 0 {
		script = append(script, 0)
		depth--
	}
	return script
}

// TestQuickNavigationInvariants checks, for arbitrary generated trees and
// small pages, the structural invariants every consumer relies on:
// FirstChild/FollowingSibling walk visits exactly the Scan sequence, and
// intervals properly nest.
func TestQuickNavigationInvariants(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) > 300 {
			raw = raw[:300]
		}
		script := scriptFromBytes(raw)
		s, _ := buildStore(t, script, 128, 20)

		// Walk the tree with the primitives; collect preorder positions.
		var walk func(p Pos, out *[]Pos) bool
		walk = func(p Pos, out *[]Pos) bool {
			*out = append(*out, p)
			c, ok, err := s.FirstChild(p)
			if err != nil {
				return false
			}
			for ok {
				if !walk(c, out) {
					return false
				}
				c, ok, err = s.FollowingSibling(c)
				if err != nil {
					return false
				}
			}
			return true
		}
		root, err := s.Root()
		if err != nil {
			return false
		}
		var navOrder []Pos
		if !walk(root, &navOrder) {
			return false
		}
		scanOrder := scanPositions(t, s)
		if len(navOrder) != len(scanOrder) {
			t.Logf("nav %d nodes, scan %d", len(navOrder), len(scanOrder))
			return false
		}
		for i := range navOrder {
			if navOrder[i] != scanOrder[i] {
				t.Logf("order diverges at %d: %v vs %v", i, navOrder[i], scanOrder[i])
				return false
			}
		}
		// Intervals of consecutive preorder nodes either nest or are
		// disjoint, and each interval is non-empty.
		for _, p := range navOrder {
			iv, err := s.Interval(p)
			if err != nil || iv.End <= iv.Start {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickLevelArrays cross-checks computeLevels/boundsOf/runningLevelAfter
// agreement on arbitrary balanced chunks.
func TestQuickLevelArrays(t *testing.T) {
	f := func(raw []byte, stRaw uint8) bool {
		st := int16(stRaw % 40)
		// Build a token byte string from raw (possibly unbalanced —
		// these helpers must handle page fragments).
		var cont []byte
		lvl := st
		for _, b := range raw {
			if lvl > 0 && b%3 == 0 {
				cont = append(cont, CloseByte)
				lvl--
			} else {
				sym := symtab.Sym(1 + b%200)
				cont = append(cont, byte(sym>>8), byte(sym))
				lvl++
			}
		}
		levels := computeLevels(cont, st)
		lo, hi := boundsOf(cont, st)
		after := runningLevelAfter(cont, st)

		// Walk manually and verify all three.
		wantLo, wantHi := st, st
		cur := st
		for i := 0; i < len(cont); {
			var tok int
			if cont[i] == CloseByte {
				cur--
				tok = CloseTokenSize
			} else {
				cur++
				tok = OpenTokenSize
			}
			if levels[i] != cur {
				return false
			}
			if cur < wantLo {
				wantLo = cur
			}
			if cur > wantHi {
				wantHi = cur
			}
			i += tok
		}
		return lo == wantLo && hi == wantHi && after == cur
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
