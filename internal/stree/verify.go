package stree

import (
	"encoding/binary"
	"fmt"

	"nok/internal/pager"
)

// Verify re-derives the string representation's invariants from the raw
// page contents and checks them against the headers and meta: the
// parenthesis string must balance (the running level returns to exactly 0
// at the end of the document and never goes negative), every page's
// on-disk header must agree with the in-RAM header table, each (st, lo,
// hi) vector must match the levels actually attained inside the page, the
// chain links must be mutually consistent, and the node/byte/depth totals
// must match the meta. Violations go to report (may be nil); the return
// value counts them. An I/O error aborts the walk and is returned — the
// check is then incomplete.
func (s *Store) Verify(report func(error)) (int, error) {
	issues := 0
	emit := func(err error) {
		issues++
		if report != nil {
			report(err)
		}
	}

	var (
		lvl        int16
		nodes      uint64
		tokenBytes uint64
		maxLvl     int16
	)
	for ci := range s.headers {
		h := s.headers[ci]
		p, err := s.pf.Get(h.page)
		if err != nil {
			return issues, err
		}
		d := p.Data()

		// On-disk header vs the in-RAM table (§4.2's feather-weight index).
		diskUsed := binary.BigEndian.Uint16(d[0:2])
		diskSt := int16(binary.BigEndian.Uint16(d[2:4]))
		diskLo := int16(binary.BigEndian.Uint16(d[4:6]))
		diskHi := int16(binary.BigEndian.Uint16(d[6:8]))
		if diskUsed != h.used || diskSt != h.st || diskLo != h.lo || diskHi != h.hi {
			emit(fmt.Errorf("stree: page %d (chain %d): on-disk header (used=%d st=%d lo=%d hi=%d) differs from header table (used=%d st=%d lo=%d hi=%d)",
				h.page, ci, diskUsed, diskSt, diskLo, diskHi, h.used, h.st, h.lo, h.hi))
		}
		var wantNext, wantPrev pager.PageID
		if ci+1 < len(s.headers) {
			wantNext = s.headers[ci+1].page
		}
		if ci > 0 {
			wantPrev = s.headers[ci-1].page
		}
		if got := pager.PageID(binary.BigEndian.Uint32(d[8:12])); got != wantNext {
			emit(fmt.Errorf("stree: page %d (chain %d): next = %d, want %d", h.page, ci, got, wantNext))
		}
		if got := pager.PageID(binary.BigEndian.Uint32(d[12:16])); got != wantPrev {
			emit(fmt.Errorf("stree: page %d (chain %d): prev = %d, want %d", h.page, ci, got, wantPrev))
		}
		if int(h.used) > s.contentCapacity() {
			emit(fmt.Errorf("stree: page %d (chain %d): used %d exceeds capacity %d", h.page, ci, h.used, s.contentCapacity()))
			s.pf.Unpin(p)
			continue
		}

		// Recompute the running level through the page and the attained
		// [lo, hi] (which include st itself, per the package convention).
		if h.st != lvl {
			emit(fmt.Errorf("stree: page %d (chain %d): st = %d, but running level entering the page is %d", h.page, ci, h.st, lvl))
			lvl = h.st // keep per-page checks meaningful after a mismatch
		}
		lo, hi := lvl, lvl
		cont := content(d, int(h.used))
		bad := false
		for i := 0; i < len(cont); {
			if cont[i] == CloseByte {
				lvl--
				i += CloseTokenSize
			} else {
				if i+OpenTokenSize > len(cont) {
					emit(fmt.Errorf("stree: page %d (chain %d): open token truncated at offset %d", h.page, ci, i))
					bad = true
					break
				}
				lvl++
				nodes++
				i += OpenTokenSize
			}
			if lvl < lo {
				lo = lvl
			}
			if lvl > hi {
				hi = lvl
			}
			if lvl < 0 {
				emit(fmt.Errorf("stree: page %d (chain %d): unbalanced parentheses, running level went negative", h.page, ci))
				bad = true
				break
			}
		}
		if !bad && (lo != h.lo || hi != h.hi) {
			emit(fmt.Errorf("stree: page %d (chain %d): header (lo=%d hi=%d) vs recomputed (lo=%d hi=%d)", h.page, ci, h.lo, h.hi, lo, hi))
		}
		if hi > maxLvl {
			maxLvl = hi
		}
		tokenBytes += uint64(h.used)
		s.pf.Unpin(p)
	}

	if lvl != 0 {
		emit(fmt.Errorf("stree: unbalanced document: running level ends at %d, want 0", lvl))
	}
	if nodes != s.nodeCount {
		emit(fmt.Errorf("stree: counted %d open tokens, meta says %d nodes", nodes, s.nodeCount))
	}
	if tokenBytes != s.tokenBytes {
		emit(fmt.Errorf("stree: pages hold %d content bytes, meta says %d", tokenBytes, s.tokenBytes))
	}
	if int(maxLvl) != s.maxLevel {
		emit(fmt.Errorf("stree: deepest level reached is %d, meta says %d", maxLvl, s.maxLevel))
	}
	return issues, nil
}
