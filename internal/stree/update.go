package stree

import (
	"errors"
	"fmt"

	"nok/internal/symtab"
)

// This file implements the update path of §4.2: attaching a subtree is an
// insertion of its (balanced) token string at the right point of the stored
// string; when the target page's reserved slack is exhausted the tail of the
// page is cut-and-pasted into freshly allocated pages spliced into the page
// chain. Deletion removes a balanced token range and unlinks pages that
// become empty.
//
// Updates invalidate all outstanding Pos values and any position-bearing
// indexes built over the store; callers re-derive positions (the paper
// notes the Dewey-ID B+ tree "may need to be reconstructed" after many
// updates, and the same holds for the position-valued tag index here).

// SubtreeEncoder serializes a subtree into the token bytes accepted by
// InsertBefore/InsertChild. Drive it like a Builder: Open/Close in SAX
// order.
type SubtreeEncoder struct {
	buf   []byte
	open  int
	nodes int
}

// Open appends an open token for sym.
func (e *SubtreeEncoder) Open(sym symtab.Sym) error {
	if sym == 0 || sym > symtab.MaxSym {
		return fmt.Errorf("stree: symbol %d out of range", sym)
	}
	e.buf = append(e.buf, byte(sym>>8), byte(sym))
	e.open++
	e.nodes++
	return nil
}

// Close appends a close token.
func (e *SubtreeEncoder) Close() error {
	if e.open == 0 {
		return errors.New("stree: SubtreeEncoder.Close without Open")
	}
	e.buf = append(e.buf, CloseByte)
	e.open--
	return nil
}

// Bytes returns the balanced token string, failing if elements remain open
// or nothing was encoded.
func (e *SubtreeEncoder) Bytes() ([]byte, error) {
	if e.open != 0 {
		return nil, fmt.Errorf("stree: SubtreeEncoder has %d unclosed element(s)", e.open)
	}
	if len(e.buf) == 0 {
		return nil, errors.New("stree: empty subtree")
	}
	return e.buf, nil
}

// NodeCount returns the number of element nodes encoded.
func (e *SubtreeEncoder) NodeCount() int { return e.nodes }

// countTokens returns the number of open tokens and verifies the byte
// string is a well-formed, non-empty, balanced token sequence.
func countTokens(tokens []byte) (opens int, err error) {
	if len(tokens) == 0 {
		return 0, errors.New("stree: empty token string")
	}
	depth := 0
	for i := 0; i < len(tokens); {
		if tokens[i] == CloseByte {
			depth--
			if depth < 0 {
				return 0, errors.New("stree: unbalanced token string (extra close)")
			}
			i += CloseTokenSize
			continue
		}
		if i+1 >= len(tokens) {
			return 0, errors.New("stree: truncated open token")
		}
		depth++
		opens++
		i += OpenTokenSize
	}
	if depth != 0 {
		return 0, errors.New("stree: unbalanced token string (unclosed opens)")
	}
	return opens, nil
}

// InsertChild inserts the balanced token string as the last child of the
// node at parent. All outstanding positions are invalidated.
func (s *Store) InsertChild(parent Pos, tokens []byte) error {
	end, err := s.SubtreeEnd(parent)
	if err != nil {
		return err
	}
	return s.insertAt(end, tokens)
}

// InsertBefore inserts the balanced token string immediately before the
// node at p, making it p's preceding sibling. p must not be the document
// root. All outstanding positions are invalidated.
func (s *Store) InsertBefore(p Pos, tokens []byte) error {
	if !s.validPos(p) {
		return fmt.Errorf("%w: %v", ErrBadPos, p)
	}
	lvl, err := s.LevelAt(p)
	if err != nil {
		return err
	}
	if lvl <= 1 {
		return errors.New("stree: cannot insert a sibling of the document root")
	}
	return s.insertAt(p, tokens)
}

// ErrReadOnly reports a mutation attempted on a snapshot view.
var ErrReadOnly = errors.New("stree: store view is read-only")

// insertAt splices tokens in before the token at p.
func (s *Store) insertAt(p Pos, tokens []byte) error {
	if s.file == nil {
		return ErrReadOnly
	}
	opens, err := countTokens(tokens)
	if err != nil {
		return err
	}
	if !s.validPos(p) {
		return fmt.Errorf("%w: %v", ErrBadPos, p)
	}
	defer s.levels.invalidateAll()

	ci := p.Chain
	h := &s.headers[ci]
	pg, err := s.file.GetMut(h.page)
	if err != nil {
		return err
	}
	d := pg.Data()
	used := int(h.used)

	if used+len(tokens) <= s.contentCapacity() {
		// Fast path: the page's slack absorbs the insertion.
		cont := d[pageHeaderSize : pageHeaderSize+used+len(tokens)]
		copy(cont[p.Off+len(tokens):], cont[p.Off:used])
		copy(cont[p.Off:], tokens)
		h.used = uint16(used + len(tokens))
		s.recomputeBounds(ci, cont)
		s.writePageHeader(ci, d)
		pg.MarkDirty()
		s.pf.Unpin(pg)
	} else {
		// Slow path (the paper's cut-and-paste): keep [0, off) in this
		// page, move tokens ++ tail into new pages spliced after it.
		tail := make([]byte, used-p.Off)
		copy(tail, d[pageHeaderSize+p.Off:pageHeaderSize+used])
		stream := make([]byte, 0, len(tokens)+len(tail))
		stream = append(stream, tokens...)
		stream = append(stream, tail...)

		h.used = uint16(p.Off)
		cont := d[pageHeaderSize : pageHeaderSize+p.Off]
		s.recomputeBounds(ci, cont)
		// Running level at the end of the truncated page = st + walk.
		lvl := runningLevelAfter(cont, h.st)

		chunks, err := s.chunkTokenStream(stream)
		if err != nil {
			s.pf.Unpin(pg)
			return err
		}
		newHeaders := make([]header, 0, len(chunks))
		for _, chunk := range chunks {
			np, err := s.file.Allocate()
			if err != nil {
				s.pf.Unpin(pg)
				return err
			}
			copy(np.Data()[pageHeaderSize:], chunk)
			nh := header{page: np.ID(), used: uint16(len(chunk)), st: lvl}
			nh.lo, nh.hi = boundsOf(chunk, lvl)
			lvl = runningLevelAfter(chunk, lvl)
			newHeaders = append(newHeaders, nh)
			np.MarkDirty()
			s.pf.Unpin(np)
		}
		// Splice into the header table after ci.
		s.headers = append(s.headers[:ci+1], append(newHeaders, s.headers[ci+1:]...)...)
		// Rewrite affected page headers: ci, the new pages, and the next
		// old page (its prev pointer changed).
		s.writePageHeader(ci, d)
		pg.MarkDirty()
		s.pf.Unpin(pg)
		for i := 0; i < len(newHeaders)+1 && ci+1+i < len(s.headers); i++ {
			if err := s.rewriteHeader(ci + 1 + i); err != nil {
				return err
			}
		}
	}

	s.nodeCount += uint64(opens)
	s.tokenBytes += uint64(len(tokens))
	if err := s.writeMeta(); err != nil {
		return err
	}
	return s.file.Flush()
}

// DeleteSubtree removes the node at p and all its descendants. All
// outstanding positions are invalidated.
func (s *Store) DeleteSubtree(p Pos) error {
	if s.file == nil {
		return ErrReadOnly
	}
	if !s.validPos(p) {
		return fmt.Errorf("%w: %v", ErrBadPos, p)
	}
	end, err := s.SubtreeEnd(p)
	if err != nil {
		return err
	}
	defer s.levels.invalidateAll()

	// Level entering the deleted range (= level after it, since the range
	// is balanced).
	lvls, err := s.pageLevels(p.Chain)
	if err != nil {
		return err
	}
	entryLevel := lvls[p.Off] - 1

	removedBytes := 0
	removedOpens := 0

	if p.Chain == end.Chain {
		// Single-page removal.
		ci := p.Chain
		h := &s.headers[ci]
		pg, err := s.file.GetMut(h.page)
		if err != nil {
			return err
		}
		d := pg.Data()
		used := int(h.used)
		from, to := p.Off, end.Off+CloseTokenSize
		opens, err := countTokens(d[pageHeaderSize+from : pageHeaderSize+to])
		if err != nil {
			s.pf.Unpin(pg)
			return fmt.Errorf("stree: corrupt range during delete: %w", err)
		}
		removedOpens = opens
		removedBytes = to - from
		copy(d[pageHeaderSize+from:], d[pageHeaderSize+to:pageHeaderSize+used])
		h.used = uint16(used - removedBytes)
		s.recomputeBounds(ci, d[pageHeaderSize:pageHeaderSize+int(h.used)])
		s.writePageHeader(ci, d)
		pg.MarkDirty()
		s.pf.Unpin(pg)
		if err := s.dropIfEmpty(ci); err != nil {
			return err
		}
	} else {
		// Multi-page removal: truncate the first page, drop whole pages in
		// between, trim the head of the last page.
		firstCi, lastCi := p.Chain, end.Chain

		// First page: keep [0, p.Off).
		h := &s.headers[firstCi]
		pg, err := s.file.GetMut(h.page)
		if err != nil {
			return err
		}
		d := pg.Data()
		seg := d[pageHeaderSize+p.Off : pageHeaderSize+int(h.used)]
		removedOpens += opensIn(seg)
		removedBytes += len(seg)
		h.used = uint16(p.Off)
		s.recomputeBounds(firstCi, d[pageHeaderSize:pageHeaderSize+p.Off])
		s.writePageHeader(firstCi, d)
		pg.MarkDirty()
		s.pf.Unpin(pg)

		// Middle pages: removed entirely.
		for ci := firstCi + 1; ci < lastCi; ci++ {
			h := s.headers[ci]
			pg, err := s.pf.Get(h.page)
			if err != nil {
				return err
			}
			seg := pg.Data()[pageHeaderSize : pageHeaderSize+int(h.used)]
			removedOpens += opensIn(seg)
			removedBytes += len(seg)
			s.pf.Unpin(pg)
		}

		// Last page: keep (end.Off+1, used); its st becomes entryLevel.
		lh := &s.headers[lastCi]
		lpg, err := s.file.GetMut(lh.page)
		if err != nil {
			return err
		}
		ld := lpg.Data()
		lused := int(lh.used)
		cut := end.Off + CloseTokenSize
		seg = ld[pageHeaderSize : pageHeaderSize+cut]
		removedOpens += opensIn(seg)
		removedBytes += len(seg)
		copy(ld[pageHeaderSize:], ld[pageHeaderSize+cut:pageHeaderSize+lused])
		lh.used = uint16(lused - cut)
		lh.st = entryLevel
		s.recomputeBounds(lastCi, ld[pageHeaderSize:pageHeaderSize+int(lh.used)])
		s.writePageHeader(lastCi, ld)
		lpg.MarkDirty()
		s.pf.Unpin(lpg)

		// Unlink and free the fully removed middle pages (back to front so
		// chain indexes stay valid), then drop first/last if emptied.
		for ci := lastCi - 1; ci > firstCi; ci-- {
			if err := s.removeFromChain(ci); err != nil {
				return err
			}
		}
		// After removals, lastCi shifted left to firstCi+1.
		if err := s.dropIfEmpty(firstCi + 1); err != nil {
			return err
		}
		if err := s.dropIfEmpty(firstCi); err != nil {
			return err
		}
	}

	s.nodeCount -= uint64(removedOpens)
	s.tokenBytes -= uint64(removedBytes)
	if err := s.writeMeta(); err != nil {
		return err
	}
	return s.file.Flush()
}

// ---- helpers ----------------------------------------------------------------

// chunkTokenStream splits a token stream into chunks of at most fillMax
// bytes, never splitting a token.
func (s *Store) chunkTokenStream(stream []byte) ([][]byte, error) {
	capacity := s.contentCapacity()
	fillMax := capacity * (100 - s.reservePct) / 100
	if fillMax < OpenTokenSize+CloseTokenSize {
		fillMax = OpenTokenSize + CloseTokenSize
	}
	var chunks [][]byte
	start := 0
	cur := 0
	for cur < len(stream) {
		tok := OpenTokenSize
		if stream[cur] == CloseByte {
			tok = CloseTokenSize
		}
		if cur+tok-start > fillMax {
			chunks = append(chunks, stream[start:cur])
			start = cur
		}
		cur += tok
	}
	if cur > len(stream) {
		return nil, errors.New("stree: token stream ends mid-token")
	}
	if start < len(stream) {
		chunks = append(chunks, stream[start:])
	}
	return chunks, nil
}

// recomputeBounds refreshes lo/hi (including st) for chain index ci whose
// content is cont.
func (s *Store) recomputeBounds(ci int, cont []byte) {
	h := &s.headers[ci]
	h.lo, h.hi = boundsOf(cont, h.st)
}

// boundsOf returns the min/max running level over cont starting from st,
// including st itself.
func boundsOf(cont []byte, st int16) (lo, hi int16) {
	lo, hi = st, st
	lvl := st
	for i := 0; i < len(cont); {
		if cont[i] == CloseByte {
			lvl--
			i += CloseTokenSize
		} else {
			lvl++
			i += OpenTokenSize
		}
		if lvl < lo {
			lo = lvl
		}
		if lvl > hi {
			hi = lvl
		}
	}
	return lo, hi
}

// runningLevelAfter returns the running level after processing cont
// starting from st.
func runningLevelAfter(cont []byte, st int16) int16 {
	lvl := st
	for i := 0; i < len(cont); {
		if cont[i] == CloseByte {
			lvl--
			i += CloseTokenSize
		} else {
			lvl++
			i += OpenTokenSize
		}
	}
	return lvl
}

// opensIn counts open tokens in a well-formed token segment (which may be
// unbalanced, e.g. the head or tail of a subtree span).
func opensIn(seg []byte) int {
	n := 0
	for i := 0; i < len(seg); {
		if seg[i] == CloseByte {
			i += CloseTokenSize
		} else {
			n++
			i += OpenTokenSize
		}
	}
	return n
}

// rewriteHeader flushes the header of chain index ci to its page.
func (s *Store) rewriteHeader(ci int) error {
	if ci < 0 || ci >= len(s.headers) {
		return nil
	}
	pg, err := s.file.GetMut(s.headers[ci].page)
	if err != nil {
		return err
	}
	s.writePageHeader(ci, pg.Data())
	pg.MarkDirty()
	s.pf.Unpin(pg)
	return nil
}

// dropIfEmpty removes the page at chain index ci from the chain and frees
// it when it holds no content. The last remaining page is kept even when
// empty so the store always has a chain head.
func (s *Store) dropIfEmpty(ci int) error {
	if ci < 0 || ci >= len(s.headers) || s.headers[ci].used != 0 || len(s.headers) == 1 {
		return nil
	}
	return s.removeFromChain(ci)
}

// removeFromChain unlinks the page at chain index ci and frees it.
func (s *Store) removeFromChain(ci int) error {
	id := s.headers[ci].page
	s.headers = append(s.headers[:ci], s.headers[ci+1:]...)
	// Neighbors' next/prev changed.
	if err := s.rewriteHeader(ci - 1); err != nil {
		return err
	}
	if err := s.rewriteHeader(ci); err != nil {
		return err
	}
	return s.file.Free(id)
}
