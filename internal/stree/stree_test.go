package stree

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"nok/internal/dewey"
	"nok/internal/pager"
	"nok/internal/symtab"
)

// ---- reference model --------------------------------------------------------

// modelNode is the in-memory oracle for navigation primitives.
type modelNode struct {
	sym      symtab.Sym
	level    int
	id       dewey.ID
	parent   *modelNode
	children []*modelNode
	// order is the index of this node in document (pre-)order.
	order int
}

// buildModel constructs the oracle tree from a token script (sym values for
// opens, 0 for close).
func buildModel(script []symtab.Sym) *modelNode {
	var root *modelNode
	var stack []*modelNode
	order := 0
	for _, tok := range script {
		if tok == 0 {
			stack = stack[:len(stack)-1]
			continue
		}
		n := &modelNode{sym: tok, level: len(stack) + 1, order: order}
		order++
		if len(stack) == 0 {
			n.id = dewey.Root()
			root = n
		} else {
			p := stack[len(stack)-1]
			n.parent = p
			p.children = append(p.children, n)
			n.id = p.id.Child(uint32(len(p.children)))
		}
		stack = append(stack, n)
	}
	return root
}

func preorder(n *modelNode, out *[]*modelNode) {
	if n == nil {
		return
	}
	*out = append(*out, n)
	for _, c := range n.children {
		preorder(c, out)
	}
}

// ---- script helpers ---------------------------------------------------------

// paperScript is the bibliography subject tree of Figure 2. Symbols:
// a=bib b=book z=@year e=title c=author g=last f=first i=publisher j=price
// d=editor h=affiliation.
func paperScript(t *testing.T, tab *symtab.Table) []symtab.Sym {
	t.Helper()
	sym := func(name string) symtab.Sym {
		s, err := tab.Intern(name)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	var script []symtab.Sym
	open := func(name string) { script = append(script, sym(name)) }
	cl := func() { script = append(script, 0) }

	book := func(authors int, editor bool) {
		open("book")
		open("@year")
		cl()
		open("title")
		cl()
		for i := 0; i < authors; i++ {
			open("author")
			open("last")
			cl()
			open("first")
			cl()
			cl()
		}
		if editor {
			open("editor")
			open("last")
			cl()
			open("first")
			cl()
			open("affiliation")
			cl()
			cl()
		}
		open("publisher")
		cl()
		open("price")
		cl()
		cl()
	}
	open("bib")
	book(1, false)
	book(1, false)
	book(3, false)
	book(0, true)
	cl()
	return script
}

// randomScript produces a well-formed random tree with n nodes and up to
// maxTags distinct symbols.
func randomScript(rng *rand.Rand, n, maxTags int) []symtab.Sym {
	var script []symtab.Sym
	var emit func(budget int) int
	emit = func(budget int) int {
		if budget <= 0 {
			return 0
		}
		script = append(script, symtab.Sym(1+rng.Intn(maxTags)))
		used := 1
		kids := rng.Intn(5)
		for i := 0; i < kids && used < budget; i++ {
			used += emit((budget - used + kids - 1) / (kids - i))
		}
		script = append(script, 0)
		return used
	}
	emit(n)
	return script
}

// buildStore materializes a script into a fresh store.
func buildStore(t *testing.T, script []symtab.Sym, pageSize, reservePct int) (*Store, *pager.File) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tree.st")
	pf, err := pager.Create(path, &pager.Options{PageSize: pageSize, PoolPages: 128})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pf.Close() })
	b, err := NewBuilder(pf, &BuilderOptions{ReservePct: reservePct})
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range script {
		if tok == 0 {
			if err := b.Close(); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := b.Open(tok); err != nil {
				t.Fatal(err)
			}
		}
	}
	s, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return s, pf
}

// scanPositions returns the Pos of every node in document order.
func scanPositions(t *testing.T, s *Store) []Pos {
	t.Helper()
	var out []Pos
	err := s.Scan(func(pos Pos, sym symtab.Sym, level int, id dewey.ID) bool {
		out = append(out, pos)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// crossCheck verifies every navigation primitive against the model.
func crossCheck(t *testing.T, s *Store, script []symtab.Sym) {
	t.Helper()
	root := buildModel(script)
	var nodes []*modelNode
	preorder(root, &nodes)

	positions := scanPositions(t, s)
	if len(positions) != len(nodes) {
		t.Fatalf("Scan found %d nodes, model has %d", len(positions), len(nodes))
	}

	// Scan must agree on symbol, level and Dewey ID.
	i := 0
	err := s.Scan(func(pos Pos, sym symtab.Sym, level int, id dewey.ID) bool {
		m := nodes[i]
		if sym != m.sym {
			t.Fatalf("node %d: sym %d, model %d", i, sym, m.sym)
		}
		if level != m.level {
			t.Fatalf("node %d: level %d, model %d", i, level, m.level)
		}
		if dewey.Compare(id, m.id) != 0 {
			t.Fatalf("node %d: dewey %s, model %s", i, id, m.id)
		}
		i++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}

	// FirstChild / FollowingSibling / SubtreeEnd / LevelAt / SymAt.
	for i, m := range nodes {
		pos := positions[i]
		if got, err := s.SymAt(pos); err != nil || got != m.sym {
			t.Fatalf("SymAt(%v) = %d,%v, want %d", pos, got, err, m.sym)
		}
		if got, err := s.LevelAt(pos); err != nil || got != m.level {
			t.Fatalf("LevelAt(%v) = %d,%v, want %d", pos, got, err, m.level)
		}
		fc, ok, err := s.FirstChild(pos)
		if err != nil {
			t.Fatalf("FirstChild(%v): %v", pos, err)
		}
		if len(m.children) == 0 {
			if ok {
				t.Fatalf("FirstChild(%v) = %v, model says leaf", pos, fc)
			}
		} else {
			want := positions[m.children[0].order]
			if !ok || fc != want {
				t.Fatalf("FirstChild(%v) = %v,%v, want %v", pos, fc, ok, want)
			}
		}
		fs, ok, err := s.FollowingSibling(pos)
		if err != nil {
			t.Fatalf("FollowingSibling(%v): %v", pos, err)
		}
		var wantSib *modelNode
		if m.parent != nil {
			sibs := m.parent.children
			for j, c := range sibs {
				if c == m && j+1 < len(sibs) {
					wantSib = sibs[j+1]
				}
			}
		}
		if wantSib == nil {
			if ok {
				t.Fatalf("FollowingSibling(%v) = %v, model says none", pos, fs)
			}
		} else {
			want := positions[wantSib.order]
			if !ok || fs != want {
				t.Fatalf("FollowingSibling(%v) = %v,%v, want %v", pos, fs, ok, want)
			}
		}
		// No-skip variant must agree exactly.
		fs2, ok2, err := s.FollowingSiblingNoSkip(pos)
		if err != nil {
			t.Fatal(err)
		}
		if ok2 != ok || (ok && fs2 != fs) {
			t.Fatalf("FollowingSiblingNoSkip(%v) disagrees: %v,%v vs %v,%v", pos, fs2, ok2, fs, ok)
		}
	}

	// Interval containment must mirror ancestor relations.
	ivs := make([]Interval, len(nodes))
	for i := range nodes {
		iv, err := s.Interval(positions[i])
		if err != nil {
			t.Fatal(err)
		}
		ivs[i] = iv
	}
	for i, a := range nodes {
		for j, b := range nodes {
			wantContain := a.id.IsAncestorOf(b.id)
			if got := ivs[i].Contains(ivs[j]); got != wantContain {
				t.Fatalf("Interval containment (%s, %s) = %v, want %v", a.id, b.id, got, wantContain)
			}
		}
	}
}

// ---- tests -------------------------------------------------------------------

func TestPaperExampleSmallPages(t *testing.T) {
	tab := symtab.New()
	script := paperScript(t, tab)
	// 20-byte content pages as in Figure 4's illustration is below our
	// minimum page size; 128-byte pages with a 16-byte header still force
	// the string across several pages.
	s, _ := buildStore(t, script, 128, 20)
	if s.NodeCount() != uint64(len(script)/2) {
		t.Errorf("NodeCount = %d, want %d", s.NodeCount(), len(script)/2)
	}
	if s.MaxLevel() != 4 {
		t.Errorf("MaxLevel = %d, want 4", s.MaxLevel())
	}
	if s.NumPages() < 2 {
		t.Errorf("expected multiple pages, got %d", s.NumPages())
	}
	crossCheck(t, s, script)

	// Figure 4 rendering sanity: starts with "bib book @year)…".
	str, err := s.String(tab)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(str, "bib book @year )title )") {
		t.Errorf("String() = %q…", str[:40])
	}
}

func TestStringRepresentationSizes(t *testing.T) {
	tab := symtab.New()
	script := paperScript(t, tab)
	s, _ := buildStore(t, script, 4096, 20)
	n := uint64(len(script) / 2)
	want := n*OpenTokenSize + n*CloseTokenSize
	if s.TokenBytes() != want {
		t.Errorf("TokenBytes = %d, want %d (3 bytes per node, §4.2)", s.TokenBytes(), want)
	}
}

func TestCapacityFormula(t *testing.T) {
	// §4.2: C = (B×(1−r) − V − I) / (S+P) ≈ 1000+ for 4KB pages. Our
	// header folds V and I into 16 bytes.
	s, _ := buildStore(t, []symtab.Sym{1, 0}, 4096, 20)
	if c := s.Capacity(); c < 1000 || c > 1400 {
		t.Errorf("Capacity = %d, want ≈(4096−16)/3", c)
	}
}

func TestRandomTreesAcrossPageSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for _, pageSize := range []int{128, 256, 512} {
		for trial := 0; trial < 4; trial++ {
			n := 50 + rng.Intn(400)
			script := randomScript(rng, n, 20)
			t.Run(fmt.Sprintf("ps%d/n%d", pageSize, len(script)/2), func(t *testing.T) {
				s, _ := buildStore(t, script, pageSize, 20)
				crossCheck(t, s, script)
			})
		}
	}
}

func TestDeepTree(t *testing.T) {
	// A path of 200 nodes: every page transition is a level change.
	var script []symtab.Sym
	for i := 0; i < 200; i++ {
		script = append(script, symtab.Sym(1+i%5))
	}
	for i := 0; i < 200; i++ {
		script = append(script, 0)
	}
	s, _ := buildStore(t, script, 128, 10)
	if s.MaxLevel() != 200 {
		t.Errorf("MaxLevel = %d", s.MaxLevel())
	}
	crossCheck(t, s, script)
}

func TestWideTree(t *testing.T) {
	// Root with 500 leaf children: FollowingSibling crosses many pages.
	script := []symtab.Sym{1}
	for i := 0; i < 500; i++ {
		script = append(script, symtab.Sym(2+i%3), 0)
	}
	script = append(script, 0)
	s, _ := buildStore(t, script, 128, 20)
	crossCheck(t, s, script)
}

func TestPersistenceAcrossReopen(t *testing.T) {
	tab := symtab.New()
	script := paperScript(t, tab)
	path := filepath.Join(t.TempDir(), "persist.st")
	pf, err := pager.Create(path, &pager.Options{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBuilder(pf, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range script {
		if tok == 0 {
			err = b.Close()
		} else {
			_, err = b.Open(tok)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	s, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	wantNodes := s.NodeCount()
	wantPages := s.NumPages()
	if err := pf.Close(); err != nil {
		t.Fatal(err)
	}

	pf2, err := pager.Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer pf2.Close()
	s2, err := Open(pf2)
	if err != nil {
		t.Fatal(err)
	}
	if s2.NodeCount() != wantNodes || s2.NumPages() != wantPages {
		t.Errorf("after reopen: %d nodes %d pages, want %d / %d",
			s2.NodeCount(), s2.NumPages(), wantNodes, wantPages)
	}
	crossCheck(t, s2, script)
}

func TestOpenRejectsNonStore(t *testing.T) {
	pf, err := pager.Create(filepath.Join(t.TempDir(), "x.pg"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	if _, err := Open(pf); err == nil {
		t.Error("Open of non-store should fail")
	}
}

func TestBuilderErrors(t *testing.T) {
	pf, err := pager.Create(filepath.Join(t.TempDir(), "b.pg"), &pager.Options{PageSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	b, err := NewBuilder(pf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err == nil {
		t.Error("Close before Open should fail")
	}
	if _, err := b.Open(0); err == nil {
		t.Error("Open(0) should fail")
	}
	if _, err := b.Open(1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Finish(); err == nil {
		t.Error("Finish with unclosed element should fail")
	}
}

func TestPageSkipReducesIO(t *testing.T) {
	// A root with two children where the first child has a huge subtree:
	// finding the root child's following sibling should skip the interior
	// pages of that subtree.
	script := []symtab.Sym{1, 2}
	for i := 0; i < 2000; i++ {
		script = append(script, 3, 0)
	}
	script = append(script, 0, 4, 0, 0) // close child-1, open+close child-2, close root
	s, pf := buildStore(t, script, 256, 10)

	positions := scanPositions(t, s)
	child1 := positions[1]

	drainCaches := func() {
		s.levels.invalidateAll()
		// Force the buffer pool to forget by reading a fresh store view:
		// simplest is to reset the stats and count physical reads of a
		// fresh traversal; the pool is large, so instead compare *page
		// accesses* via the level computation path below.
	}
	drainCaches()
	pf.ResetStats()
	if _, _, err := s.FollowingSibling(child1); err != nil {
		t.Fatal(err)
	}
	withSkip := pf.Stats().PhysicalReads + pf.Stats().CacheHits

	drainCaches()
	pf.ResetStats()
	if _, _, err := s.FollowingSiblingNoSkip(child1); err != nil {
		t.Fatal(err)
	}
	withoutSkip := pf.Stats().PhysicalReads + pf.Stats().CacheHits

	if withSkip*2 >= withoutSkip {
		t.Errorf("page accesses with skip = %d, without = %d; expected a large reduction",
			withSkip, withoutSkip)
	}
}

func TestHeaderBytesSmall(t *testing.T) {
	script := []symtab.Sym{1}
	for i := 0; i < 3000; i++ {
		script = append(script, 2, 0)
	}
	script = append(script, 0)
	s, _ := buildStore(t, script, 256, 20)
	// The header table must be a tiny fraction of the stored bytes.
	if s.HeaderBytes() > int(s.TokenBytes())/4 {
		t.Errorf("HeaderBytes = %d vs TokenBytes %d", s.HeaderBytes(), s.TokenBytes())
	}
}

// TestConcurrentNavigation runs parallel walkers over one store (queries
// are concurrent in the public API); run with -race.
func TestConcurrentNavigation(t *testing.T) {
	tab := symtab.New()
	script := paperScript(t, tab)
	s, _ := buildStore(t, script, 128, 20)
	positions := scanPositions(t, s)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				p := positions[(seed*13+i*7)%len(positions)]
				if _, err := s.LevelAt(p); err != nil {
					t.Error(err)
					return
				}
				if _, _, err := s.FirstChild(p); err != nil {
					t.Error(err)
					return
				}
				if _, _, err := s.FollowingSibling(p); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.SubtreeEnd(p); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
