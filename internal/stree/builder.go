package stree

import (
	"errors"
	"fmt"

	"nok/internal/pager"
	"nok/internal/symtab"
)

// Builder bulk-loads a string tree into an empty pager file. Drive it with
// Open/Close calls mirroring the document's SAX events, then call Finish.
//
// Pages are filled only up to a load factor (1 - ReservePct/100), leaving
// the paper's "reserved for update" slack (Figure 5) so later subtree
// insertions stay local.
type Builder struct {
	pf    *pager.File
	store *Store

	// current page under construction
	cur     *pager.Page
	curCont []byte // content area of cur
	used    int
	fillMax int

	level    int16 // running level
	maxLevel int16
	st       int16 // level entering the current page
	lo, hi   int16

	open     uint64 // currently open elements
	nodes    uint64
	tokBytes uint64

	finished bool
}

// BuilderOptions configure bulk loading.
type BuilderOptions struct {
	// ReservePct is the percentage of each page's content area left free
	// for future updates. The paper's example uses 20. Valid range [0, 90].
	ReservePct int
}

// NewBuilder starts building a string tree in the empty pager file pf.
func NewBuilder(pf *pager.File, opts *BuilderOptions) (*Builder, error) {
	if pf.NumPages() != 0 {
		return nil, errors.New("stree: builder requires an empty pager file")
	}
	reserve := 20
	if opts != nil {
		if opts.ReservePct < 0 || opts.ReservePct > 90 {
			return nil, fmt.Errorf("stree: reserve percentage %d out of range [0,90]", opts.ReservePct)
		}
		reserve = opts.ReservePct
	}
	b := &Builder{
		pf: pf,
		store: &Store{
			pf:         pf,
			file:       pf,
			reservePct: reserve,
			levels:     newLevelCache(defaultLevelCacheSize),
		},
	}
	cap := b.store.contentCapacity()
	b.fillMax = cap * (100 - reserve) / 100
	if b.fillMax < OpenTokenSize+CloseTokenSize {
		b.fillMax = OpenTokenSize + CloseTokenSize
	}
	return b, nil
}

// newPage seals the current page (if any) and starts a fresh one.
func (b *Builder) newPage() error {
	if err := b.sealCurrent(); err != nil {
		return err
	}
	p, err := b.pf.Allocate()
	if err != nil {
		return err
	}
	b.cur = p
	b.curCont = p.Data()[pageHeaderSize:]
	b.used = 0
	b.st = b.level
	b.lo, b.hi = b.level, b.level // lo/hi include st by construction
	return nil
}

// sealCurrent records the current page's header and releases it.
func (b *Builder) sealCurrent() error {
	if b.cur == nil {
		return nil
	}
	b.store.headers = append(b.store.headers, header{
		page: b.cur.ID(),
		used: uint16(b.used),
		st:   b.st,
		lo:   b.lo,
		hi:   b.hi,
	})
	b.cur.MarkDirty()
	b.pf.Unpin(b.cur)
	b.cur = nil
	return nil
}

// ensureRoom makes the current page able to accept n more content bytes.
func (b *Builder) ensureRoom(n int) error {
	if b.cur == nil || b.used+n > b.fillMax {
		return b.newPage()
	}
	return nil
}

// Open appends an open token for sym and returns its position.
func (b *Builder) Open(sym symtab.Sym) (Pos, error) {
	if b.finished {
		return Pos{}, errors.New("stree: builder already finished")
	}
	if sym == 0 || sym > symtab.MaxSym {
		return Pos{}, fmt.Errorf("stree: symbol %d out of range", sym)
	}
	if err := b.ensureRoom(OpenTokenSize); err != nil {
		return Pos{}, err
	}
	pos := Pos{Chain: len(b.store.headers), Off: b.used}
	b.curCont[b.used] = byte(sym >> 8)
	b.curCont[b.used+1] = byte(sym)
	b.used += OpenTokenSize
	b.level++
	if b.level > b.hi {
		b.hi = b.level
	}
	if b.level > b.maxLevel {
		b.maxLevel = b.level
	}
	b.open++
	b.nodes++
	b.tokBytes += OpenTokenSize
	return pos, nil
}

// Close appends a close token for the most recently opened element.
func (b *Builder) Close() error {
	if b.finished {
		return errors.New("stree: builder already finished")
	}
	if b.open == 0 {
		return errors.New("stree: Close without matching Open")
	}
	if err := b.ensureRoom(CloseTokenSize); err != nil {
		return err
	}
	b.curCont[b.used] = CloseByte
	b.used += CloseTokenSize
	b.level--
	if b.level < b.lo {
		b.lo = b.level
	}
	b.open--
	b.tokBytes += CloseTokenSize
	return nil
}

// Finish seals the last page, persists headers and meta, and returns the
// completed store.
func (b *Builder) Finish() (*Store, error) {
	if b.finished {
		return nil, errors.New("stree: builder already finished")
	}
	if b.open != 0 {
		return nil, fmt.Errorf("stree: %d unclosed element(s) at Finish", b.open)
	}
	if b.nodes == 0 {
		return nil, errors.New("stree: empty document")
	}
	b.finished = true
	if err := b.sealCurrent(); err != nil {
		return nil, err
	}
	s := b.store
	s.nodeCount = b.nodes
	s.tokenBytes = b.tokBytes
	s.maxLevel = int(b.maxLevel)
	// Write every page header now that next/prev links are known.
	for ci := range s.headers {
		p, err := b.pf.GetMut(s.headers[ci].page)
		if err != nil {
			return nil, err
		}
		s.writePageHeader(ci, p.Data())
		p.MarkDirty()
		b.pf.Unpin(p)
	}
	if err := s.writeMeta(); err != nil {
		return nil, err
	}
	if err := b.pf.Flush(); err != nil {
		return nil, err
	}
	return s, nil
}
