package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"nok/internal/pager"
)

func newTree(t *testing.T, pageSize int) (*Tree, *pager.File) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tree.pg")
	pf, err := pager.Create(path, &pager.Options{PageSize: pageSize, PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Create(pf)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pf.Close() })
	return tr, pf
}

// checkInvariants validates structural invariants: in-node ordering, key
// ranges implied by separators, uniform leaf depth, and leaf-chain
// consistency with the logical key order.
func checkInvariants(t *testing.T, tr *Tree) {
	t.Helper()
	tr.mu.Lock()
	defer tr.mu.Unlock()

	var leaves []pager.PageID
	var walk func(id pager.PageID, level int, lo, hi []byte)
	walk = func(id pager.PageID, level int, lo, hi []byte) {
		p, err := tr.pf.Get(id)
		if err != nil {
			t.Fatalf("get page %d: %v", id, err)
		}
		defer tr.pf.Unpin(p)
		d := p.Data()
		n := nCells(d)
		wantType := byte(internalType)
		if level == 1 {
			wantType = leafType
		}
		if nodeType(d) != wantType {
			t.Fatalf("page %d at level %d has type %d", id, level, nodeType(d))
		}
		var prevKey []byte
		for i := 0; i < n; i++ {
			k := cellKey(d, i)
			if prevKey != nil && bytes.Compare(prevKey, k) >= 0 {
				t.Fatalf("page %d: keys out of order at slot %d", id, i)
			}
			if lo != nil && bytes.Compare(k, lo) < 0 {
				t.Fatalf("page %d: key below subtree lower bound", id)
			}
			if hi != nil && bytes.Compare(k, hi) >= 0 {
				t.Fatalf("page %d: key above subtree upper bound", id)
			}
			prevKey = append([]byte(nil), k...)
		}
		if level == 1 {
			leaves = append(leaves, id)
			return
		}
		childLo := lo
		for i := -1; i < n; i++ {
			var childHi []byte
			if i+1 < n {
				childHi = append([]byte(nil), cellKey(d, i+1)...)
			} else {
				childHi = hi
			}
			walk(childAt(d, i), level-1, childLo, childHi)
			if i+1 < n {
				childLo = append([]byte(nil), cellKey(d, i+1)...)
			}
		}
	}
	walk(tr.root, tr.height, nil, nil)

	// Leaf chain must visit exactly the leaves found by the tree walk, in
	// order, starting from the leftmost.
	if len(leaves) > 0 {
		id := leaves[0]
		for i, want := range leaves {
			if id != want {
				t.Fatalf("leaf chain diverges at %d: chain %d, tree %d", i, id, want)
			}
			p, err := tr.pf.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			id = nextPtr(p.Data())
			tr.pf.Unpin(p)
		}
		if id != pager.InvalidPage {
			t.Fatalf("leaf chain continues past the last tree leaf to %d", id)
		}
	}
}

func TestEmptyTree(t *testing.T) {
	tr, _ := newTree(t, 256)
	if tr.Count() != 0 {
		t.Errorf("Count = %d", tr.Count())
	}
	if _, ok, err := tr.Get([]byte("missing")); err != nil || ok {
		t.Errorf("Get on empty tree: ok=%v err=%v", ok, err)
	}
	it := tr.First()
	if it.Next() {
		t.Error("iterator on empty tree returned an item")
	}
	checkInvariants(t, tr)
}

func TestInsertGetSmall(t *testing.T) {
	tr, _ := newTree(t, 256)
	pairs := map[string]string{
		"book": "1", "author": "2", "title": "3", "price": "4", "year": "5",
	}
	for k, v := range pairs {
		if err := tr.Insert([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Count() != uint64(len(pairs)) {
		t.Errorf("Count = %d, want %d", tr.Count(), len(pairs))
	}
	for k, v := range pairs {
		got, ok, err := tr.Get([]byte(k))
		if err != nil || !ok || string(got) != v {
			t.Errorf("Get(%q) = %q,%v,%v, want %q", k, got, ok, err, v)
		}
	}
	checkInvariants(t, tr)
}

func TestUpsertReplacesValue(t *testing.T) {
	tr, _ := newTree(t, 256)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(tr.Insert([]byte("k"), []byte("old")))
	must(tr.Insert([]byte("k"), []byte("new"))) // same length: in-place
	got, _, _ := tr.Get([]byte("k"))
	if string(got) != "new" {
		t.Errorf("after same-size upsert: %q", got)
	}
	must(tr.Insert([]byte("k"), []byte("much longer value")))
	got, _, _ = tr.Get([]byte("k"))
	if string(got) != "much longer value" {
		t.Errorf("after growing upsert: %q", got)
	}
	must(tr.Insert([]byte("k"), []byte("s")))
	got, _, _ = tr.Get([]byte("k"))
	if string(got) != "s" {
		t.Errorf("after shrinking upsert: %q", got)
	}
	if tr.Count() != 1 {
		t.Errorf("Count = %d, want 1", tr.Count())
	}
	checkInvariants(t, tr)
}

func TestEmptyKeyRejected(t *testing.T) {
	tr, _ := newTree(t, 256)
	if err := tr.Insert(nil, []byte("v")); err == nil {
		t.Error("empty key should be rejected")
	}
}

func TestItemTooLargeRejected(t *testing.T) {
	tr, _ := newTree(t, 256)
	if err := tr.Insert(bytes.Repeat([]byte("k"), 300), nil); err == nil {
		t.Error("oversized item should be rejected")
	}
}

func key(i int) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(i))
	return b[:]
}

func TestManyInsertionsSequential(t *testing.T) {
	tr, _ := newTree(t, 256) // tiny pages force deep trees
	const n = 5000
	for i := 0; i < n; i++ {
		if err := tr.Insert(key(i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if tr.Count() != n {
		t.Fatalf("Count = %d, want %d", tr.Count(), n)
	}
	if tr.Height() < 3 {
		t.Errorf("height = %d; tiny pages should force a multi-level tree", tr.Height())
	}
	for i := 0; i < n; i++ {
		got, ok, err := tr.Get(key(i))
		if err != nil || !ok {
			t.Fatalf("Get(%d): ok=%v err=%v", i, ok, err)
		}
		if string(got) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%d) = %q", i, got)
		}
	}
	checkInvariants(t, tr)
}

func TestManyInsertionsRandomOrder(t *testing.T) {
	tr, _ := newTree(t, 256)
	const n = 5000
	perm := rand.New(rand.NewSource(7)).Perm(n)
	for _, i := range perm {
		if err := tr.Insert(key(i), key(i*3)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	checkInvariants(t, tr)
	for i := 0; i < n; i++ {
		got, ok, err := tr.Get(key(i))
		if err != nil || !ok || !bytes.Equal(got, key(i*3)) {
			t.Fatalf("Get(%d) = %x,%v,%v", i, got, ok, err)
		}
	}
}

func TestVariableLengthKeys(t *testing.T) {
	tr, _ := newTree(t, 512)
	rng := rand.New(rand.NewSource(11))
	want := map[string]string{}
	for i := 0; i < 2000; i++ {
		k := make([]byte, 1+rng.Intn(40))
		rng.Read(k)
		v := make([]byte, rng.Intn(60))
		rng.Read(v)
		want[string(k)] = string(v)
		if err := tr.Insert(k, v); err != nil {
			t.Fatal(err)
		}
	}
	checkInvariants(t, tr)
	if tr.Count() != uint64(len(want)) {
		t.Errorf("Count = %d, want %d", tr.Count(), len(want))
	}
	for k, v := range want {
		got, ok, err := tr.Get([]byte(k))
		if err != nil || !ok || string(got) != v {
			t.Fatalf("Get(%x): ok=%v err=%v", k, ok, err)
		}
	}
}

func TestIterationInOrder(t *testing.T) {
	tr, _ := newTree(t, 256)
	const n = 3000
	perm := rand.New(rand.NewSource(3)).Perm(n)
	for _, i := range perm {
		if err := tr.Insert(key(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	it := tr.First()
	i := 0
	for it.Next() {
		if !bytes.Equal(it.Key(), key(i)) {
			t.Fatalf("iteration item %d = %x, want %x", i, it.Key(), key(i))
		}
		i++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if i != n {
		t.Errorf("iterated %d items, want %d", i, n)
	}
}

func TestSeek(t *testing.T) {
	tr, _ := newTree(t, 256)
	for i := 0; i < 1000; i += 2 { // even keys only
		if err := tr.Insert(key(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	// Seeking an absent odd key lands on the next even key.
	it := tr.Seek(key(501))
	if !it.Next() {
		t.Fatal("Seek(501).Next() = false")
	}
	if !bytes.Equal(it.Key(), key(502)) {
		t.Errorf("Seek(501) landed on %x, want %x", it.Key(), key(502))
	}
	// Seeking a present key lands exactly on it.
	it = tr.Seek(key(500))
	it.Next()
	if !bytes.Equal(it.Key(), key(500)) {
		t.Errorf("Seek(500) landed on %x", it.Key())
	}
	// Seeking past the end yields nothing.
	it = tr.Seek(key(2000))
	if it.Next() {
		t.Error("Seek past end returned an item")
	}
}

func TestScanRangeAndPrefix(t *testing.T) {
	tr, _ := newTree(t, 256)
	for i := 0; i < 300; i++ {
		if err := tr.Insert(key(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	var got []int
	err := tr.ScanRange(key(100), key(110), func(k, v []byte) bool {
		got = append(got, int(binary.BigEndian.Uint64(k)))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[0] != 100 || got[9] != 109 {
		t.Errorf("ScanRange = %v", got)
	}

	// Prefix scan: composite keys tag‖pos, the multi-valued index pattern.
	tr2, _ := newTree(t, 256)
	for tag := 0; tag < 5; tag++ {
		for pos := 0; pos < 50; pos++ {
			k := append([]byte{byte(tag)}, key(pos)...)
			if err := tr2.Insert(k, nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	count := 0
	prev := -1
	err = tr2.ScanPrefix([]byte{3}, func(k, v []byte) bool {
		pos := int(binary.BigEndian.Uint64(k[1:]))
		if pos <= prev {
			t.Errorf("prefix scan out of order: %d after %d", pos, prev)
		}
		prev = pos
		count++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 50 {
		t.Errorf("ScanPrefix visited %d, want 50", count)
	}
}

func TestDeleteBasic(t *testing.T) {
	tr, _ := newTree(t, 256)
	for i := 0; i < 100; i++ {
		if err := tr.Insert(key(i), key(i)); err != nil {
			t.Fatal(err)
		}
	}
	ok, err := tr.Delete(key(50))
	if err != nil || !ok {
		t.Fatalf("Delete(50) = %v, %v", ok, err)
	}
	if _, found, _ := tr.Get(key(50)); found {
		t.Error("key 50 still present after delete")
	}
	if ok, _ := tr.Delete(key(50)); ok {
		t.Error("second delete of same key reported success")
	}
	if tr.Count() != 99 {
		t.Errorf("Count = %d, want 99", tr.Count())
	}
	checkInvariants(t, tr)
}

func TestDeleteEverything(t *testing.T) {
	tr, _ := newTree(t, 256)
	const n = 2000
	for i := 0; i < n; i++ {
		if err := tr.Insert(key(i), key(i)); err != nil {
			t.Fatal(err)
		}
	}
	perm := rand.New(rand.NewSource(5)).Perm(n)
	for _, i := range perm {
		ok, err := tr.Delete(key(i))
		if err != nil || !ok {
			t.Fatalf("Delete(%d) = %v, %v", i, ok, err)
		}
	}
	if tr.Count() != 0 {
		t.Errorf("Count = %d after deleting everything", tr.Count())
	}
	if tr.Height() != 1 {
		t.Errorf("Height = %d after deleting everything, want 1", tr.Height())
	}
	it := tr.First()
	if it.Next() {
		t.Error("iterator returned an item after deleting everything")
	}
	checkInvariants(t, tr)
	// The tree must be fully usable again.
	for i := 0; i < 100; i++ {
		if err := tr.Insert(key(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	checkInvariants(t, tr)
}

func TestDeleteInterleavedWithInserts(t *testing.T) {
	tr, _ := newTree(t, 256)
	model := map[string]string{}
	rng := rand.New(rand.NewSource(99))
	for step := 0; step < 8000; step++ {
		i := rng.Intn(500)
		k := key(i)
		if rng.Intn(3) == 0 {
			delete(model, string(k))
			if _, err := tr.Delete(k); err != nil {
				t.Fatal(err)
			}
		} else {
			v := fmt.Sprintf("val-%d-%d", i, step%7)
			model[string(k)] = v
			if err := tr.Insert(k, []byte(v)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if tr.Count() != uint64(len(model)) {
		t.Errorf("Count = %d, model has %d", tr.Count(), len(model))
	}
	checkInvariants(t, tr)
	// Verify exact contents via iteration.
	var modelKeys []string
	for k := range model {
		modelKeys = append(modelKeys, k)
	}
	sort.Strings(modelKeys)
	it := tr.First()
	i := 0
	for it.Next() {
		if i >= len(modelKeys) {
			t.Fatal("tree has more items than model")
		}
		if string(it.Key()) != modelKeys[i] {
			t.Fatalf("item %d key = %x, want %x", i, it.Key(), modelKeys[i])
		}
		if string(it.Value()) != model[modelKeys[i]] {
			t.Fatalf("item %d value mismatch", i)
		}
		i++
	}
	if i != len(modelKeys) {
		t.Fatalf("tree has %d items, model %d", i, len(modelKeys))
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "persist.pg")
	pf, err := pager.Create(path, &pager.Options{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Create(pf)
	if err != nil {
		t.Fatal(err)
	}
	const n = 1000
	for i := 0; i < n; i++ {
		if err := tr.Insert(key(i), key(i*2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := pf.Close(); err != nil {
		t.Fatal(err)
	}

	pf2, err := pager.Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer pf2.Close()
	tr2, err := Open(pf2)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Count() != n {
		t.Errorf("Count after reopen = %d", tr2.Count())
	}
	for i := 0; i < n; i += 37 {
		got, ok, err := tr2.Get(key(i))
		if err != nil || !ok || !bytes.Equal(got, key(i*2)) {
			t.Fatalf("Get(%d) after reopen: %x,%v,%v", i, got, ok, err)
		}
	}
	checkInvariants(t, tr2)
}

func TestOpenRejectsNonTree(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.pg")
	pf, err := pager.Create(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	if _, err := Open(pf); err == nil {
		t.Error("Open of a pager file without tree meta should fail")
	}
}

func TestLargeValuesNearLimit(t *testing.T) {
	tr, _ := newTree(t, 4096)
	max := tr.maxItemSize()
	v := bytes.Repeat([]byte("x"), max-20)
	for i := 0; i < 50; i++ {
		if err := tr.Insert(key(i), v); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	checkInvariants(t, tr)
	got, ok, err := tr.Get(key(25))
	if err != nil || !ok || !bytes.Equal(got, v) {
		t.Fatal("large value round trip failed")
	}
}
