package btree

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
	"testing/quick"
)

// op is one randomized tree operation for the model-based property test.
type op struct {
	Kind  uint8 // 0 insert, 1 delete, 2 get
	Key   uint16
	Value uint8
}

// TestQuickModelEquivalence drives random operation sequences against both
// the tree and a map model, then verifies full contents and invariants.
func TestQuickModelEquivalence(t *testing.T) {
	f := func(ops []op) bool {
		tr, _ := newTree(t, 256)
		model := map[string]string{}
		for _, o := range ops {
			k := fmt.Sprintf("key-%05d", o.Key%512)
			switch o.Kind % 3 {
			case 0:
				v := fmt.Sprintf("val-%d-%d", o.Key, o.Value)
				if err := tr.Insert([]byte(k), []byte(v)); err != nil {
					t.Logf("insert: %v", err)
					return false
				}
				model[k] = v
			case 1:
				gone, err := tr.Delete([]byte(k))
				if err != nil {
					t.Logf("delete: %v", err)
					return false
				}
				_, existed := model[k]
				if gone != existed {
					t.Logf("delete(%q) = %v, model %v", k, gone, existed)
					return false
				}
				delete(model, k)
			case 2:
				got, found, err := tr.Get([]byte(k))
				if err != nil {
					return false
				}
				want, existed := model[k]
				if found != existed || (found && string(got) != want) {
					t.Logf("get(%q) = %q,%v want %q,%v", k, got, found, want, existed)
					return false
				}
			}
		}
		if tr.Count() != uint64(len(model)) {
			t.Logf("count %d vs model %d", tr.Count(), len(model))
			return false
		}
		// Iteration yields exactly the sorted model.
		var keys []string
		for k := range model {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		it := tr.First()
		i := 0
		for it.Next() {
			if i >= len(keys) || string(it.Key()) != keys[i] ||
				string(it.Value()) != model[keys[i]] {
				t.Logf("iteration diverged at %d", i)
				return false
			}
			i++
		}
		if i != len(keys) || it.Err() != nil {
			return false
		}
		checkInvariants(t, tr)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQuickArbitraryKeys uses raw random byte keys (including
// prefix-of-each-other and near-identical keys).
func TestQuickArbitraryKeys(t *testing.T) {
	tr, _ := newTree(t, 512)
	model := map[string][]byte{}
	f := func(k, v []byte) bool {
		if len(k) == 0 {
			return true
		}
		if len(k) > 40 {
			k = k[:40]
		}
		if len(v) > 60 {
			v = v[:60]
		}
		if err := tr.Insert(k, v); err != nil {
			return false
		}
		model[string(k)] = append([]byte(nil), v...)
		got, found, err := tr.Get(k)
		return err == nil && found && bytes.Equal(got, model[string(k)])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Error(err)
	}
	if tr.Count() != uint64(len(model)) {
		t.Errorf("count %d vs model %d", tr.Count(), len(model))
	}
	checkInvariants(t, tr)
}
