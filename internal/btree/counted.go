package btree

import (
	"bytes"

	"nok/internal/pager"
)

// counted.go — page-accounting variants of the read paths. The planner's
// cost model (internal/planner) prices index accesses in pages touched;
// these variants report that number into *pages so QueryStats.PagesScanned
// reflects starting-point location work, not just pattern navigation.
// A nil pages pointer disables accounting.

// GetCounted is Get, charging the root-to-leaf descent (Height pages).
func (t *Tree) GetCounted(key []byte, pages *uint64) ([]byte, bool, error) {
	if pages != nil {
		*pages += uint64(t.Height())
	}
	return t.Get(key)
}

// ScanPrefixCounted is ScanPrefix, charging the initial descent plus one
// page per leaf-chain advance.
func (t *Tree) ScanPrefixCounted(prefix []byte, fn func(key, value []byte) bool, pages *uint64) error {
	it := t.Seek(prefix)
	if pages != nil {
		*pages += uint64(t.Height())
	}
	last := it.leaf
	for it.Next() {
		if pages != nil && it.leaf != last && it.leaf != pager.InvalidPage {
			*pages++
			last = it.leaf
		}
		if !bytes.HasPrefix(it.Key(), prefix) {
			break
		}
		if !fn(it.Key(), it.Value()) {
			break
		}
	}
	return it.Err()
}
