package btree

import (
	"bytes"
	"fmt"

	"nok/internal/pager"
)

// Verify checks the tree's structural invariants by descending to the
// leftmost leaf and walking the doubly linked leaf chain: node types,
// prev/next symmetry, strictly ascending keys across the whole chain, and
// the meta key count. Each violation is passed to report (which may be
// nil); the return value is the number of violations. An I/O error aborts
// the walk and is returned directly — it means the check is incomplete,
// not that the tree is clean.
func (t *Tree) Verify(report func(error)) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	issues := 0
	emit := func(err error) {
		issues++
		if report != nil {
			report(err)
		}
	}

	// Descend the leftmost spine, checking node types level by level.
	id := t.root
	for level := t.height; level > 1; level-- {
		p, err := t.pf.Get(id)
		if err != nil {
			return issues, err
		}
		d := p.Data()
		if nodeType(d) != internalType {
			emit(fmt.Errorf("btree: %s: page %d at height %d is not an internal node", t.pf.Path(), id, level))
			t.pf.Unpin(p)
			return issues, nil
		}
		next := nextPtr(d) // leftmost child
		t.pf.Unpin(p)
		if next == pager.InvalidPage {
			emit(fmt.Errorf("btree: %s: internal page %d has no leftmost child", t.pf.Path(), id))
			return issues, nil
		}
		id = next
	}

	// Walk the leaf chain left to right.
	var (
		prevKey  []byte
		haveKey  bool
		prevLeaf = pager.InvalidPage
		total    uint64
	)
	for id != pager.InvalidPage {
		p, err := t.pf.Get(id)
		if err != nil {
			return issues, err
		}
		d := p.Data()
		if nodeType(d) != leafType {
			emit(fmt.Errorf("btree: %s: page %d in leaf chain is not a leaf", t.pf.Path(), id))
			t.pf.Unpin(p)
			break
		}
		if got := prevPtr(d); got != prevLeaf {
			emit(fmt.Errorf("btree: %s: leaf %d prev pointer = %d, want %d", t.pf.Path(), id, got, prevLeaf))
		}
		n := nCells(d)
		for i := 0; i < n; i++ {
			k := cellKey(d, i)
			if haveKey && bytes.Compare(prevKey, k) >= 0 {
				emit(fmt.Errorf("btree: %s: leaf %d cell %d: keys out of order", t.pf.Path(), id, i))
			}
			prevKey = append(prevKey[:0], k...)
			haveKey = true
			total++
		}
		next := nextPtr(d)
		t.pf.Unpin(p)
		prevLeaf = id
		id = next
	}
	if total != t.count {
		emit(fmt.Errorf("btree: %s: leaf chain holds %d keys, meta count says %d", t.pf.Path(), total, t.count))
	}
	return issues, nil
}
