// Package btree implements a disk-backed B+ tree over a pager file.
//
// The paper's storage scheme (§4.1, Figure 3) relies on three B+ trees: a
// tag-name index, a hashed-value index, and a Dewey-ID index that maps node
// IDs to value-file offsets. All three are instances of this tree.
//
// The tree maps unique byte-string keys to byte-string values, ordered by
// bytes.Compare. Multi-valued indexes (one tag → many positions) are built
// by composing the key from a fixed-width prefix and the "value" suffix and
// scanning by prefix; see internal/stree and internal/core for the
// compositions used.
//
// Implementation notes:
//   - Nodes are slotted pages: cells grow from the low end, a sorted slot
//     directory of 2-byte cell offsets grows from the high end, and holes
//     left by deletions are reclaimed by compaction when space is needed.
//   - Leaves are doubly linked for ordered range scans.
//   - Inserts split on overflow (by bytes, not cell count, since items are
//     variable length). Deletes free nodes that become completely empty and
//     collapse their ancestors, but do not rebalance merely underfull
//     nodes — the workloads here are bulk-load-then-query with occasional
//     update, where lazy deletion is the standard engineering trade-off.
package btree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"nok/internal/obs"
	"nok/internal/pager"
)

// Process-wide B+-tree work counters (all trees), exposed through the
// default obs registry.
var (
	mLookups = obs.Default.Counter("nok_btree_lookups_total", "point lookups (Get/Has) across all B+ trees")
	mSeeks   = obs.Default.Counter("nok_btree_seeks_total", "iterator seeks (Seek/First/ScanPrefix/ScanRange) across all B+ trees")
	mInserts = obs.Default.Counter("nok_btree_inserts_total", "insertions across all B+ trees")
	mDeletes = obs.Default.Counter("nok_btree_deletes_total", "deletions across all B+ trees")
)

const (
	leafType     = 1
	internalType = 0

	// node header layout:
	// 0     type u8
	// 1:3   nCells u16
	// 3:7   next u32 (leaf: next leaf; internal: leftmost child)
	// 7:11  prev u32 (leaf only)
	// 11:13 cellsEnd u16
	// 13:16 reserved
	nodeHeader = 16

	metaMagic = "BT1"
	// meta layout: magic[3] root u32 height u16 count u64
	metaLen = 3 + 4 + 2 + 8
)

// ErrItemTooLarge is returned when a key/value pair cannot fit with at
// least minFanout siblings in one page.
var ErrItemTooLarge = errors.New("btree: key/value too large for page size")

const minFanout = 4

// Tree is a B+ tree. All methods are safe for concurrent use by virtue of a
// single mutex; iterators must not be used concurrently with writes.
type Tree struct {
	mu     sync.Mutex
	pf     *pager.File
	root   pager.PageID
	height int // 1 = root is a leaf
	count  uint64
}

// Create initializes a new tree in an empty pager file.
func Create(pf *pager.File) (*Tree, error) {
	t := &Tree{pf: pf, height: 1}
	p, err := pf.Allocate()
	if err != nil {
		return nil, err
	}
	initNode(p.Data(), leafType)
	p.MarkDirty()
	t.root = p.ID()
	pf.Unpin(p)
	if err := t.writeMeta(); err != nil {
		return nil, err
	}
	return t, nil
}

// Open attaches to a tree previously created in pf.
func Open(pf *pager.File) (*Tree, error) {
	meta := pf.Meta()
	if len(meta) != metaLen || string(meta[:3]) != metaMagic {
		return nil, fmt.Errorf("btree: %s does not contain a btree (meta %q)", pf.Path(), meta)
	}
	t := &Tree{pf: pf}
	t.root = pager.PageID(binary.BigEndian.Uint32(meta[3:7]))
	t.height = int(binary.BigEndian.Uint16(meta[7:9]))
	t.count = binary.BigEndian.Uint64(meta[9:17])
	if t.root == pager.InvalidPage || t.height < 1 {
		return nil, fmt.Errorf("btree: corrupt meta in %s", pf.Path())
	}
	return t, nil
}

func (t *Tree) writeMeta() error {
	var meta [metaLen]byte
	copy(meta[:3], metaMagic)
	binary.BigEndian.PutUint32(meta[3:7], uint32(t.root))
	binary.BigEndian.PutUint16(meta[7:9], uint16(t.height))
	binary.BigEndian.PutUint64(meta[9:17], t.count)
	return t.pf.SetMeta(meta[:])
}

// Count returns the number of stored keys.
func (t *Tree) Count() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}

// Height returns the tree height (1 = a single leaf).
func (t *Tree) Height() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.height
}

// Flush persists meta and all dirty pages.
func (t *Tree) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.writeMeta(); err != nil {
		return err
	}
	return t.pf.Flush()
}

// maxItemSize returns the largest encoded cell allowed.
func (t *Tree) maxItemSize() int {
	return (t.pf.PageSize() - nodeHeader) / minFanout
}

// ---- node accessors -------------------------------------------------------

func initNode(d []byte, typ byte) {
	clear(d[:nodeHeader])
	d[0] = typ
	binary.BigEndian.PutUint16(d[11:13], nodeHeader)
}

func nodeType(d []byte) byte    { return d[0] }
func nCells(d []byte) int       { return int(binary.BigEndian.Uint16(d[1:3])) }
func setNCells(d []byte, n int) { binary.BigEndian.PutUint16(d[1:3], uint16(n)) }
func nextPtr(d []byte) pager.PageID {
	return pager.PageID(binary.BigEndian.Uint32(d[3:7]))
}
func setNextPtr(d []byte, id pager.PageID) { binary.BigEndian.PutUint32(d[3:7], uint32(id)) }
func prevPtr(d []byte) pager.PageID {
	return pager.PageID(binary.BigEndian.Uint32(d[7:11]))
}
func setPrevPtr(d []byte, id pager.PageID) { binary.BigEndian.PutUint32(d[7:11], uint32(id)) }
func cellsEnd(d []byte) int                { return int(binary.BigEndian.Uint16(d[11:13])) }
func setCellsEnd(d []byte, v int)          { binary.BigEndian.PutUint16(d[11:13], uint16(v)) }

// slotBase returns the byte index of slot i's entry; slots are stored in
// logical order in a contiguous array at the top of the page.
func slotBase(d []byte, i, n int) int { return len(d) - 2*(n-i) }

func slot(d []byte, i int) int {
	n := nCells(d)
	return int(binary.BigEndian.Uint16(d[slotBase(d, i, n):]))
}

func setSlot(d []byte, i, off int) {
	n := nCells(d)
	binary.BigEndian.PutUint16(d[slotBase(d, i, n):], uint16(off))
}

// freeSpace is the contiguous space between cell data and slot directory,
// accounting for one new slot entry.
func freeSpace(d []byte) int {
	return len(d) - 2*nCells(d) - cellsEnd(d) - 2
}

// cellAt decodes the cell at byte offset off. For leaves it returns
// (key, value, cellLen); for internals (key, childBytes, cellLen) where
// childBytes is the 4-byte child pointer region.
func cellAt(d []byte, off int, typ byte) (key, val []byte, size int) {
	klen, n := binary.Uvarint(d[off:])
	p := off + n
	key = d[p : p+int(klen)]
	p += int(klen)
	if typ == leafType {
		vlen, m := binary.Uvarint(d[p:])
		p += m
		val = d[p : p+int(vlen)]
		p += int(vlen)
	} else {
		val = d[p : p+4]
		p += 4
	}
	return key, val, p - off
}

func cellKey(d []byte, i int) []byte {
	k, _, _ := cellAt(d, slot(d, i), nodeType(d))
	return k
}

func cellVal(d []byte, i int) []byte {
	_, v, _ := cellAt(d, slot(d, i), nodeType(d))
	return v
}

func childAt(d []byte, i int) pager.PageID {
	// i == -1 addresses the leftmost child stored in the header.
	if i < 0 {
		return nextPtr(d)
	}
	return pager.PageID(binary.BigEndian.Uint32(cellVal(d, i)))
}

// encodedLeafCell appends a leaf cell for (key, value) to dst.
func encodedLeafCell(dst []byte, key, value []byte) []byte {
	var buf [binary.MaxVarintLen32]byte
	n := binary.PutUvarint(buf[:], uint64(len(key)))
	dst = append(dst, buf[:n]...)
	dst = append(dst, key...)
	n = binary.PutUvarint(buf[:], uint64(len(value)))
	dst = append(dst, buf[:n]...)
	dst = append(dst, value...)
	return dst
}

// encodedInternalCell appends an internal cell for (key, child) to dst.
func encodedInternalCell(dst []byte, key []byte, child pager.PageID) []byte {
	var buf [binary.MaxVarintLen32]byte
	n := binary.PutUvarint(buf[:], uint64(len(key)))
	dst = append(dst, buf[:n]...)
	dst = append(dst, key...)
	var c [4]byte
	binary.BigEndian.PutUint32(c[:], uint32(child))
	return append(dst, c[:]...)
}

// search returns the smallest index i in [0, n] such that key(i) >= k, and
// whether key(i) == k.
func search(d []byte, k []byte) (int, bool) {
	lo, hi := 0, nCells(d)
	for lo < hi {
		mid := (lo + hi) / 2
		switch bytes.Compare(cellKey(d, mid), k) {
		case -1:
			lo = mid + 1
		case 0:
			return mid, true
		default:
			hi = mid
		}
	}
	return lo, false
}

// childIndexFor returns the child slot index (-1 for leftmost) to descend
// into for key k: the largest i with sep(i) <= k.
func childIndexFor(d []byte, k []byte) int {
	i, eq := search(d, k)
	if eq {
		return i
	}
	return i - 1
}

// insertCellAt inserts the encoded cell at logical position i. The caller
// guarantees freeSpace(d) >= len(cell)+... after compaction.
func insertCellAt(d []byte, i int, cell []byte) {
	n := nCells(d)
	end := cellsEnd(d)
	copy(d[end:], cell)
	// Grow the slot directory downward: slots [0, i) shift down 2 bytes.
	oldBase := len(d) - 2*n
	newBase := oldBase - 2
	copy(d[newBase:], d[oldBase:oldBase+2*i])
	setNCells(d, n+1)
	setCellsEnd(d, end+len(cell))
	setSlot(d, i, end)
}

// removeCellAt removes logical slot i, leaving its bytes as a hole.
func removeCellAt(d []byte, i int) {
	n := nCells(d)
	base := len(d) - 2*n
	// Shift slots [0, i) up 2 bytes, overwriting slot i's entry.
	copy(d[base+2:], d[base:base+2*i])
	setNCells(d, n-1)
}

// compact rewrites the cell area without holes, preserving logical order.
func compact(d []byte) {
	n := nCells(d)
	typ := nodeType(d)
	buf := make([]byte, 0, cellsEnd(d)-nodeHeader)
	offs := make([]int, n)
	for i := 0; i < n; i++ {
		off := slot(d, i)
		_, _, size := cellAt(d, off, typ)
		offs[i] = nodeHeader + len(buf)
		buf = append(buf, d[off:off+size]...)
	}
	copy(d[nodeHeader:], buf)
	setCellsEnd(d, nodeHeader+len(buf))
	for i := 0; i < n; i++ {
		setSlot(d, i, offs[i])
	}
}

// ensureSpace makes room for need bytes of cell data (plus slot), compacting
// if the space exists but is fragmented. It reports whether space is now
// available.
func ensureSpace(d []byte, need int) bool {
	if freeSpace(d) >= need {
		return true
	}
	// Total live bytes vs page capacity.
	n := nCells(d)
	typ := nodeType(d)
	live := 0
	for i := 0; i < n; i++ {
		_, _, size := cellAt(d, slot(d, i), typ)
		live += size
	}
	if nodeHeader+live+need+2*(n+1) <= len(d) {
		compact(d)
		return true
	}
	return false
}

// ---- public operations ----------------------------------------------------

// Get returns the value for key.
func (t *Tree) Get(key []byte) ([]byte, bool, error) {
	mLookups.Inc()
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.root
	for level := t.height; level > 1; level-- {
		p, err := t.pf.Get(id)
		if err != nil {
			return nil, false, err
		}
		ci := childIndexFor(p.Data(), key)
		id = childAt(p.Data(), ci)
		t.pf.Unpin(p)
	}
	p, err := t.pf.Get(id)
	if err != nil {
		return nil, false, err
	}
	defer t.pf.Unpin(p)
	i, eq := search(p.Data(), key)
	if !eq {
		return nil, false, nil
	}
	v := cellVal(p.Data(), i)
	out := make([]byte, len(v))
	copy(out, v)
	return out, true, nil
}

// Has reports whether key is present.
func (t *Tree) Has(key []byte) (bool, error) {
	_, ok, err := t.Get(key)
	return ok, err
}

// splitResult carries a completed child split up to the parent.
type splitResult struct {
	split bool
	sep   []byte       // first key of (or promoted into) the new right node
	right pager.PageID // the new right sibling
}

// Insert stores (key, value), replacing any existing value for key.
func (t *Tree) Insert(key, value []byte) error {
	mInserts.Inc()
	if len(key) == 0 {
		return errors.New("btree: empty key")
	}
	cellSize := len(encodedLeafCell(nil, key, value))
	if cellSize > t.maxItemSize() {
		return fmt.Errorf("%w: cell of %d bytes, max %d", ErrItemTooLarge, cellSize, t.maxItemSize())
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	res, inserted, err := t.insertRec(t.root, t.height, key, value)
	if err != nil {
		return err
	}
	if inserted {
		t.count++
	}
	if res.split {
		// Grow a new root.
		p, err := t.pf.Allocate()
		if err != nil {
			return err
		}
		d := p.Data()
		initNode(d, internalType)
		setNextPtr(d, t.root) // leftmost child
		cell := encodedInternalCell(nil, res.sep, res.right)
		insertCellAt(d, 0, cell)
		p.MarkDirty()
		t.root = p.ID()
		t.height++
		t.pf.Unpin(p)
	}
	return t.writeMeta()
}

func (t *Tree) insertRec(id pager.PageID, level int, key, value []byte) (splitResult, bool, error) {
	p, err := t.pf.Get(id)
	if err != nil {
		return splitResult{}, false, err
	}
	defer t.pf.Unpin(p)
	d := p.Data()

	if level == 1 {
		return t.insertLeaf(p, key, value)
	}

	ci := childIndexFor(d, key)
	child := childAt(d, ci)
	res, inserted, err := t.insertRec(child, level-1, key, value)
	if err != nil || !res.split {
		return splitResult{}, inserted, err
	}
	// Child split: insert separator after ci.
	cell := encodedInternalCell(nil, res.sep, res.right)
	if ensureSpace(d, len(cell)) {
		i, _ := search(d, res.sep)
		insertCellAt(d, i, cell)
		p.MarkDirty()
		return splitResult{}, inserted, nil
	}
	sep2, right, err := t.splitInternal(p, res.sep, res.right)
	if err != nil {
		return splitResult{}, inserted, err
	}
	return splitResult{split: true, sep: sep2, right: right}, inserted, nil
}

func (t *Tree) insertLeaf(p *pager.Page, key, value []byte) (splitResult, bool, error) {
	d := p.Data()
	i, eq := search(d, key)
	if eq {
		// Upsert: replace in place when the new cell has identical size,
		// otherwise remove and reinsert.
		old := cellVal(d, i)
		if len(old) == len(value) {
			copy(old, value)
			p.MarkDirty()
			return splitResult{}, false, nil
		}
		removeCellAt(d, i)
		cell := encodedLeafCell(nil, key, value)
		if !ensureSpace(d, len(cell)) {
			sep, right, err := t.splitLeaf(p, key, value)
			if err != nil {
				return splitResult{}, false, err
			}
			return splitResult{split: true, sep: sep, right: right}, false, nil
		}
		insertCellAt(d, i, cell)
		p.MarkDirty()
		return splitResult{}, false, nil
	}
	cell := encodedLeafCell(nil, key, value)
	if ensureSpace(d, len(cell)) {
		insertCellAt(d, i, cell)
		p.MarkDirty()
		return splitResult{}, true, nil
	}
	sep, right, err := t.splitLeaf(p, key, value)
	if err != nil {
		return splitResult{}, false, err
	}
	return splitResult{split: true, sep: sep, right: right}, true, nil
}

// splitLeaf splits p and inserts (key, value) into the correct half.
// It returns the separator (first key of the right node) and the right id.
func (t *Tree) splitLeaf(p *pager.Page, key, value []byte) ([]byte, pager.PageID, error) {
	d := p.Data()
	rp, err := t.pf.Allocate()
	if err != nil {
		return nil, 0, err
	}
	defer t.pf.Unpin(rp)
	rd := rp.Data()
	initNode(rd, leafType)

	// Gather all cells (including the new one) in order, then redistribute
	// by bytes so both halves end up roughly balanced.
	type item struct{ k, v []byte }
	n := nCells(d)
	items := make([]item, 0, n+1)
	insertAt, _ := search(d, key)
	total := 0
	for i := 0; i < n; i++ {
		if i == insertAt {
			items = append(items, item{key, value})
			total += len(encodedLeafCell(nil, key, value))
		}
		k, v, size := cellAt(d, slot(d, i), leafType)
		// Copy: the originals live in the page we are about to rewrite.
		kc := append([]byte(nil), k...)
		vc := append([]byte(nil), v...)
		items = append(items, item{kc, vc})
		total += size
	}
	if insertAt == n {
		items = append(items, item{key, value})
		total += len(encodedLeafCell(nil, key, value))
	}

	// Left half takes items until it exceeds half the bytes.
	oldNext := nextPtr(d)
	oldPrev := prevPtr(d)
	initNode(d, leafType)
	setNextPtr(d, oldNext)
	setPrevPtr(d, oldPrev)

	// Rightmost-split heuristic: ascending bulk loads (Dewey-ordered index
	// builds) always insert at the end of the rightmost leaf; a median
	// split would strand every left half at 50% fill. Giving the new right
	// node only the freshly inserted item keeps sequentially built trees
	// near-full, roughly halving index size.
	li := len(items) - 1
	if !(insertAt == n && oldNext == pager.InvalidPage) {
		half := total / 2
		acc := 0
		li = 0
		for li < len(items)-1 { // right node must get at least one item
			sz := len(encodedLeafCell(nil, items[li].k, items[li].v))
			if acc+sz > half && li > 0 {
				break
			}
			acc += sz
			li++
		}
	}
	for i := 0; i < li; i++ {
		cell := encodedLeafCell(nil, items[i].k, items[i].v)
		insertCellAt(d, i, cell)
	}
	for i := li; i < len(items); i++ {
		cell := encodedLeafCell(nil, items[i].k, items[i].v)
		insertCellAt(rd, i-li, cell)
	}

	// Fix the leaf chain: p <-> rp <-> oldNext.
	setNextPtr(d, rp.ID())
	setPrevPtr(rd, p.ID())
	setNextPtr(rd, oldNext)
	if oldNext != pager.InvalidPage {
		np, err := t.pf.Get(oldNext)
		if err != nil {
			return nil, 0, err
		}
		setPrevPtr(np.Data(), rp.ID())
		np.MarkDirty()
		t.pf.Unpin(np)
	}
	p.MarkDirty()
	rp.MarkDirty()
	sep := append([]byte(nil), items[li].k...)
	return sep, rp.ID(), nil
}

// splitInternal splits internal node p while adding (sep, right) from a
// child split. The median separator is promoted, not duplicated.
func (t *Tree) splitInternal(p *pager.Page, newSep []byte, newChild pager.PageID) ([]byte, pager.PageID, error) {
	d := p.Data()
	rp, err := t.pf.Allocate()
	if err != nil {
		return nil, 0, err
	}
	defer t.pf.Unpin(rp)
	rd := rp.Data()
	initNode(rd, internalType)

	type item struct {
		k     []byte
		child pager.PageID
	}
	n := nCells(d)
	items := make([]item, 0, n+1)
	insertAt, _ := search(d, newSep)
	for i := 0; i < n; i++ {
		if i == insertAt {
			items = append(items, item{newSep, newChild})
		}
		k := append([]byte(nil), cellKey(d, i)...)
		items = append(items, item{k, childAt(d, i)})
	}
	if insertAt == n {
		items = append(items, item{newSep, newChild})
	}

	leftmost := nextPtr(d)
	initNode(d, internalType)
	setNextPtr(d, leftmost)

	mid := len(items) / 2
	if insertAt == n {
		// Rightmost-split heuristic, internal flavor (see splitLeaf).
		mid = len(items) - 2
	}
	promoted := items[mid]
	for i := 0; i < mid; i++ {
		insertCellAt(d, i, encodedInternalCell(nil, items[i].k, items[i].child))
	}
	// Right node: leftmost child is the promoted cell's child.
	setNextPtr(rd, promoted.child)
	for i := mid + 1; i < len(items); i++ {
		insertCellAt(rd, i-mid-1, encodedInternalCell(nil, items[i].k, items[i].child))
	}
	p.MarkDirty()
	rp.MarkDirty()
	return append([]byte(nil), promoted.k...), rp.ID(), nil
}

// Delete removes key, reporting whether it was present.
//
// Nodes whose last child (or last item) disappears are freed and their
// pointers removed from the parent. Internal nodes that end up with zero
// separators but one live leftmost child remain in place — collapsing them
// mid-tree would break the uniform-height invariant the level-based descent
// relies on; only the root is collapsed, in the loop below.
func (t *Tree) Delete(key []byte) (bool, error) {
	mDeletes.Inc()
	t.mu.Lock()
	defer t.mu.Unlock()
	removed, dropped, err := t.deleteRec(t.root, t.height, key)
	if err != nil {
		return false, err
	}
	if removed {
		t.count--
	}
	if dropped {
		// The whole tree emptied out: reset to a fresh leaf root. (When the
		// root is already a leaf, deleteRec never reports dropped.)
		if err := t.pf.Free(t.root); err != nil {
			return removed, err
		}
		p, err := t.pf.Allocate()
		if err != nil {
			return removed, err
		}
		initNode(p.Data(), leafType)
		p.MarkDirty()
		t.root = p.ID()
		t.height = 1
		t.pf.Unpin(p)
	}
	// Collapse a root that is an internal node with a single child.
	for t.height > 1 {
		p, err := t.pf.Get(t.root)
		if err != nil {
			return removed, err
		}
		d := p.Data()
		if nCells(d) > 0 {
			t.pf.Unpin(p)
			break
		}
		old := t.root
		t.root = nextPtr(d)
		t.height--
		t.pf.Unpin(p)
		if err := t.pf.Free(old); err != nil {
			return removed, err
		}
	}
	return removed, t.writeMeta()
}

// deleteRec removes key from the subtree at id (level 1 = leaf). dropped
// reports that the node has no content left at all: the caller must remove
// its pointer and free the page. Empty leaves unlink themselves from the
// leaf chain before reporting dropped (except a root leaf, which stays).
func (t *Tree) deleteRec(id pager.PageID, level int, key []byte) (removed, dropped bool, err error) {
	p, err := t.pf.Get(id)
	if err != nil {
		return false, false, err
	}
	d := p.Data()

	if level == 1 {
		i, eq := search(d, key)
		if !eq {
			t.pf.Unpin(p)
			return false, false, nil
		}
		removeCellAt(d, i)
		p.MarkDirty()
		if nCells(d) == 0 && id != t.root {
			prev, next := prevPtr(d), nextPtr(d)
			t.pf.Unpin(p)
			if err := t.relinkChain(prev, next); err != nil {
				return true, false, err
			}
			return true, true, nil
		}
		t.pf.Unpin(p)
		return true, false, nil
	}

	ci := childIndexFor(d, key)
	child := childAt(d, ci)
	removed, childDropped, err := t.deleteRec(child, level-1, key)
	if err != nil {
		t.pf.Unpin(p)
		return false, false, err
	}
	if !childDropped {
		t.pf.Unpin(p)
		return removed, false, nil
	}
	// Remove the pointer to the dropped child and free its page.
	if ci == -1 {
		if nCells(d) == 0 {
			// That was the only child: this node is empty too.
			t.pf.Unpin(p)
			if err := t.pf.Free(child); err != nil {
				return removed, false, err
			}
			return removed, true, nil
		}
		setNextPtr(d, childAt(d, 0))
		removeCellAt(d, 0)
	} else {
		removeCellAt(d, ci)
	}
	p.MarkDirty()
	t.pf.Unpin(p)
	if err := t.pf.Free(child); err != nil {
		return removed, false, err
	}
	return removed, false, nil
}

// relinkChain splices the leaf chain around a removed leaf.
func (t *Tree) relinkChain(prev, next pager.PageID) error {
	if prev != pager.InvalidPage {
		pp, err := t.pf.Get(prev)
		if err != nil {
			return err
		}
		setNextPtr(pp.Data(), next)
		pp.MarkDirty()
		t.pf.Unpin(pp)
	}
	if next != pager.InvalidPage {
		np, err := t.pf.Get(next)
		if err != nil {
			return err
		}
		setPrevPtr(np.Data(), prev)
		np.MarkDirty()
		t.pf.Unpin(np)
	}
	return nil
}
