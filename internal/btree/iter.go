package btree

import (
	"bytes"

	"nok/internal/pager"
)

// Iterator walks keys in ascending order via the leaf chain. Obtain one
// with Seek or First. An Iterator must not be used concurrently with tree
// modifications: splits and frees invalidate its position.
type Iterator struct {
	t    *Tree
	leaf pager.PageID
	idx  int
	key  []byte
	val  []byte
	err  error
	done bool
}

// Seek returns an iterator positioned at the first key >= lo.
func (t *Tree) Seek(lo []byte) *Iterator {
	mSeeks.Inc()
	t.mu.Lock()
	defer t.mu.Unlock()
	it := &Iterator{t: t}
	id := t.root
	for level := t.height; level > 1; level-- {
		p, err := t.pf.Get(id)
		if err != nil {
			it.err = err
			it.done = true
			return it
		}
		ci := childIndexFor(p.Data(), lo)
		id = childAt(p.Data(), ci)
		t.pf.Unpin(p)
	}
	it.leaf = id
	p, err := t.pf.Get(id)
	if err != nil {
		it.err = err
		it.done = true
		return it
	}
	i, _ := search(p.Data(), lo)
	it.idx = i
	t.pf.Unpin(p)
	return it
}

// First returns an iterator positioned at the smallest key.
func (t *Tree) First() *Iterator {
	return t.Seek(nil)
}

// Next advances to the next item, reporting false at the end or on error
// (check Err). Key and Value are valid until the following Next call.
func (it *Iterator) Next() bool {
	if it.done {
		return false
	}
	t := it.t
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		if it.leaf == pager.InvalidPage {
			it.done = true
			return false
		}
		p, err := t.pf.Get(it.leaf)
		if err != nil {
			it.err = err
			it.done = true
			return false
		}
		d := p.Data()
		if it.idx < nCells(d) {
			k, v, _ := cellAt(d, slot(d, it.idx), leafType)
			it.key = append(it.key[:0], k...)
			it.val = append(it.val[:0], v...)
			it.idx++
			t.pf.Unpin(p)
			return true
		}
		next := nextPtr(d)
		t.pf.Unpin(p)
		it.leaf = next
		it.idx = 0
	}
}

// Key returns the current key; valid after a true Next.
func (it *Iterator) Key() []byte { return it.key }

// Value returns the current value; valid after a true Next.
func (it *Iterator) Value() []byte { return it.val }

// Err returns the first error the iterator encountered.
func (it *Iterator) Err() error { return it.err }

// ScanPrefix calls fn for every (key, value) whose key begins with prefix,
// in ascending key order, stopping early when fn returns false. This is the
// multi-valued index access path: the tag-name and value indexes compose
// keys as prefix‖payload.
func (t *Tree) ScanPrefix(prefix []byte, fn func(key, value []byte) bool) error {
	it := t.Seek(prefix)
	for it.Next() {
		if !bytes.HasPrefix(it.Key(), prefix) {
			break
		}
		if !fn(it.Key(), it.Value()) {
			break
		}
	}
	return it.Err()
}

// ScanRange calls fn for every (key, value) with lo <= key < hi (hi nil
// means unbounded), stopping early when fn returns false.
func (t *Tree) ScanRange(lo, hi []byte, fn func(key, value []byte) bool) error {
	it := t.Seek(lo)
	for it.Next() {
		if hi != nil && bytes.Compare(it.Key(), hi) >= 0 {
			break
		}
		if !fn(it.Key(), it.Value()) {
			break
		}
	}
	return it.Err()
}
