// Package faultfs is a fault-injection vfs.FS for crash-consistency
// testing.
//
// The wrapper counts every *mutating* operation (WriteAt, Sync, Truncate,
// Rename, Remove, SyncDir, and file creation) across all files opened
// through it. When the count reaches a configured trigger point the
// configured fault fires:
//
//   - ErrWrite / ErrSync / ErrOp: the operation fails with ErrInjected
//     having done nothing.
//   - ShortWrite: the first half of the buffer is written, then the
//     operation fails — the torn-page case a real power cut produces.
//
// After the trigger the file system is "crashed": every subsequent
// operation (reads included) fails with ErrCrashed, modelling the process
// dying at the fault point. The on-disk state left behind is exactly the
// prefix of operations before the fault plus any partial write the fault
// mode produced — which is what the recovery path must cope with.
//
// A trigger point of 0 disables injection; use Ops() afterwards to size a
// sweep (run the workload once fault-free, then re-run it once per
// operation index).
package faultfs

import (
	"errors"
	"io/fs"
	"os"
	"sync"

	"nok/internal/vfs"
)

// Errors returned by injected faults.
var (
	// ErrInjected is the error carried by the faulted operation itself.
	ErrInjected = errors.New("faultfs: injected fault")
	// ErrCrashed is returned by every operation after the fault point.
	ErrCrashed = errors.New("faultfs: file system crashed")
)

// Mode selects what happens at the trigger point.
type Mode int

const (
	// ErrOp fails the triggering operation cleanly (no partial effect).
	ErrOp Mode = iota
	// ShortWrite applies the first half of the triggering WriteAt, then
	// fails — a torn page. Non-write operations at the trigger point fail
	// cleanly.
	ShortWrite
)

// FS wraps an inner vfs.FS with fault injection. Safe for concurrent use.
type FS struct {
	inner vfs.FS

	mu      sync.Mutex
	ops     int64 // mutating operations performed so far
	failAt  int64 // 1-based op index that faults; 0 = disabled
	mode    Mode
	crashed bool
}

// New wraps inner with injection disabled (counting only).
func New(inner vfs.FS) *FS { return &FS{inner: inner} }

// FailAt arms the fault: the n-th mutating operation (1-based) fails with
// the given mode and the file system crashes. n <= 0 disables injection.
func (f *FS) FailAt(n int64, mode Mode) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAt = n
	f.mode = mode
}

// Ops returns the number of mutating operations performed so far.
func (f *FS) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Crashed reports whether the fault has fired.
func (f *FS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// step accounts one mutating operation. It returns (mode, true) when this
// operation must fault, and an ErrCrashed error when the fs already died.
func (f *FS) step() (Mode, bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return 0, false, ErrCrashed
	}
	f.ops++
	if f.failAt > 0 && f.ops == f.failAt {
		f.crashed = true
		return f.mode, true, nil
	}
	return 0, false, nil
}

// readGate fails reads after the crash (the process is gone).
func (f *FS) readGate() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	return nil
}

// ---- FS interface -----------------------------------------------------------

// OpenFile counts creation as a mutating operation; plain opens are reads.
func (f *FS) OpenFile(name string, flag int, perm os.FileMode) (vfs.File, error) {
	if flag&os.O_CREATE != 0 {
		if _, fault, err := f.step(); err != nil {
			return nil, err
		} else if fault {
			return nil, fileErr(name, "open", ErrInjected)
		}
	} else if err := f.readGate(); err != nil {
		return nil, err
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, name: name, inner: inner}, nil
}

func (f *FS) Remove(name string) error {
	if _, fault, err := f.step(); err != nil {
		return err
	} else if fault {
		return fileErr(name, "remove", ErrInjected)
	}
	return f.inner.Remove(name)
}

func (f *FS) Rename(oldpath, newpath string) error {
	if _, fault, err := f.step(); err != nil {
		return err
	} else if fault {
		return fileErr(oldpath, "rename", ErrInjected)
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FS) Stat(name string) (os.FileInfo, error) {
	if err := f.readGate(); err != nil {
		return nil, err
	}
	return f.inner.Stat(name)
}

func (f *FS) Truncate(name string, size int64) error {
	if _, fault, err := f.step(); err != nil {
		return err
	} else if fault {
		return fileErr(name, "truncate", ErrInjected)
	}
	return f.inner.Truncate(name, size)
}

func (f *FS) ReadDir(name string) ([]fs.DirEntry, error) {
	if err := f.readGate(); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(name)
}

func (f *FS) MkdirAll(name string, perm os.FileMode) error {
	if _, fault, err := f.step(); err != nil {
		return err
	} else if fault {
		return fileErr(name, "mkdir", ErrInjected)
	}
	return f.inner.MkdirAll(name, perm)
}

func (f *FS) SyncDir(name string) error {
	if _, fault, err := f.step(); err != nil {
		return err
	} else if fault {
		return fileErr(name, "syncdir", ErrInjected)
	}
	return f.inner.SyncDir(name)
}

// ---- File -------------------------------------------------------------------

type file struct {
	fs    *FS
	name  string
	inner vfs.File
}

func (fl *file) ReadAt(p []byte, off int64) (int, error) {
	if err := fl.fs.readGate(); err != nil {
		return 0, err
	}
	return fl.inner.ReadAt(p, off)
}

func (fl *file) WriteAt(p []byte, off int64) (int, error) {
	mode, fault, err := fl.fs.step()
	if err != nil {
		return 0, err
	}
	if fault {
		if mode == ShortWrite && len(p) > 1 {
			// Tear the write: half the buffer lands, the rest never does.
			n, _ := fl.inner.WriteAt(p[:len(p)/2], off)
			return n, fileErr(fl.name, "write", ErrInjected)
		}
		return 0, fileErr(fl.name, "write", ErrInjected)
	}
	return fl.inner.WriteAt(p, off)
}

func (fl *file) Sync() error {
	if _, fault, err := fl.fs.step(); err != nil {
		return err
	} else if fault {
		return fileErr(fl.name, "sync", ErrInjected)
	}
	return fl.inner.Sync()
}

func (fl *file) Truncate(size int64) error {
	if _, fault, err := fl.fs.step(); err != nil {
		return err
	} else if fault {
		return fileErr(fl.name, "truncate", ErrInjected)
	}
	return fl.inner.Truncate(size)
}

func (fl *file) Stat() (os.FileInfo, error) {
	if err := fl.fs.readGate(); err != nil {
		return nil, err
	}
	return fl.inner.Stat()
}

// Close is never faulted: a crashed process's descriptors close anyway,
// and failing Close would leak handles in the test harness itself.
func (fl *file) Close() error { return fl.inner.Close() }

func fileErr(name, op string, err error) error {
	return &fs.PathError{Op: op, Path: name, Err: err}
}
