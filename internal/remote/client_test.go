package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nok"
	"nok/internal/chaosnet"
)

// noProbe disables the background prober and retries unless a test
// opts back in; unit tests want one observable attempt per injected fault.
func noProbe(cfg Config) Config {
	cfg.ProbeInterval = -1
	return cfg
}

// scatterHandler answers /scatter with the given result and /healthz,
// /stats with minimal JSON, mirroring what nokserve serves.
func scatterHandler(res *ScatterResult) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /scatter", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-nok-scatter")
		_ = WriteScatter(w, res)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(map[string]any{"status": "ok", "epoch": res.Epoch})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(map[string]any{"nodes": 7, "generation": 3, "epoch": res.Epoch})
	})
	return mux
}

func sampleScatter() *ScatterResult {
	return &ScatterResult{
		Results: []nok.Result{
			{ID: "0.1", Tag: "book"},
			{ID: "0.1.2", Tag: "title", HasValue: true, Value: "TCP/IP Illustrated"},
			{ID: "0.4.1", Tag: "price", HasValue: true, Value: "65"},
		},
		Stats: &nok.QueryStats{NodesVisited: 42, PagesScanned: 3},
		Epoch: 9,
	}
}

func TestWireRoundTrip(t *testing.T) {
	for name, res := range map[string]*ScatterResult{
		"results": sampleScatter(),
		"empty":   {Epoch: 1},
		"pruned":  {Pruned: true, Reason: "tag absent: book", Epoch: 5},
	} {
		var buf bytes.Buffer
		if err := WriteScatter(&buf, res); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		got, err := ReadScatter(&buf)
		if err != nil {
			t.Fatalf("%s: read: %v", name, err)
		}
		if !reflect.DeepEqual(got, res) {
			t.Errorf("%s: round trip mismatch:\n got %+v\nwant %+v", name, got, res)
		}
	}
}

// TestWireTruncation feeds every proper prefix of a valid stream to the
// decoder: all of them must fail — most with ErrTruncated — and none may
// return a result set, because a short prefix is exactly what a severed
// connection delivers.
func TestWireTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteScatter(&buf, sampleScatter()); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for n := 0; n < len(full); n++ {
		res, err := ReadScatter(bytes.NewReader(full[:n]))
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded successfully: %+v", n, len(full), res)
		}
	}
	// The most dangerous prefix — everything but the end frame — must be
	// recognizably truncation, so the client retries instead of surfacing it.
	cut := len(full) - 2 // drop the 'E' byte and the epoch varint
	if _, err := ReadScatter(bytes.NewReader(full[:cut])); !errors.Is(err, ErrTruncated) {
		t.Errorf("missing end frame: got %v, want ErrTruncated", err)
	}
}

func TestScatterRetriesTruncation(t *testing.T) {
	ts := httptest.NewServer(scatterHandler(sampleScatter()))
	defer ts.Close()
	tr := &chaosnet.Transport{}
	c := New(ts.URL, 0, noProbe(Config{Transport: tr, MaxRetries: 2, RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond}))
	defer c.Close()

	// All attempts truncated: the call exhausts its retries and reports
	// the shard unavailable — never a short result set.
	tr.TruncateBodies(20)
	if _, err := c.Scatter(context.Background(), "//book", nil); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("truncated scatter: got %v, want ErrUnavailable", err)
	}
	if got := tr.Requests(); got != 3 {
		t.Errorf("attempts %d, want 3 (1 + 2 retries)", got)
	}

	// Faults cleared: the same client recovers.
	tr.TruncateBodies(0)
	res, err := c.Scatter(context.Background(), "//book", nil)
	if err != nil {
		t.Fatalf("healed scatter: %v", err)
	}
	if len(res.Results) != 3 || res.Epoch != 9 {
		t.Errorf("healed scatter result: %+v", res)
	}
	if c.Epoch() != 9 {
		t.Errorf("epoch %d, want 9", c.Epoch())
	}
}

func TestRetryExhaustionIsUnavailable(t *testing.T) {
	tr := &chaosnet.Transport{}
	tr.FailNext(1 << 20)
	c := New("http://127.0.0.1:0", 0, noProbe(Config{Transport: tr, MaxRetries: 2, RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond}))
	defer c.Close()
	_, err := c.Scatter(context.Background(), "//book", nil)
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("got %v, want ErrUnavailable", err)
	}
	if !errors.Is(err, chaosnet.ErrInjected) {
		t.Errorf("unavailable error should carry its cause, got %v", err)
	}
	if got := tr.Requests(); got != 3 {
		t.Errorf("attempts %d, want 3", got)
	}
}

// TestNoRetryOnClientError: a 4xx means the shard answered — retrying
// cannot help, the breaker records a success, and the error surfaces
// as-is (not as unavailability).
func TestNoRetryOnClientError(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"bad query"}`, http.StatusBadRequest)
	}))
	defer ts.Close()
	c := New(ts.URL, 0, noProbe(Config{MaxRetries: 3, RetryBase: time.Millisecond}))
	defer c.Close()
	_, err := c.Scatter(context.Background(), "//book[", nil)
	if err == nil || errors.Is(err, ErrUnavailable) {
		t.Fatalf("got %v, want a permanent non-unavailable error", err)
	}
	var se *statusError
	if !errors.As(err, &se) || se.code != 400 {
		t.Fatalf("got %v, want statusError 400", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d attempts, want 1 (no retry on 4xx)", got)
	}
	if got := c.BreakerState(); got != "closed" {
		t.Errorf("breaker %s after a 400, want closed (the shard is up)", got)
	}
}

// TestMutationsNeverRetried: a failed insert or delete must reach the
// transport exactly once — replaying a timed-out mutation could
// duplicate a subtree or misreport a delete.
func TestMutationsNeverRetried(t *testing.T) {
	tr := &chaosnet.Transport{}
	c := New("http://127.0.0.1:0", 0, noProbe(Config{Transport: tr, MaxRetries: 5, RetryBase: time.Millisecond}))
	defer c.Close()

	tr.FailNext(1 << 20)
	if err := c.Insert("0.1", bytes.NewReader([]byte("<x/>"))); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("insert: got %v, want ErrUnavailable", err)
	}
	if got := tr.Requests(); got != 1 {
		t.Errorf("insert attempts %d, want exactly 1", got)
	}
	if err := c.Delete("0.1"); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("delete: got %v, want ErrUnavailable", err)
	}
	if got := tr.Requests(); got != 2 {
		t.Errorf("delete attempts %d (cumulative), want 2", got)
	}
}

func TestBreakerOpensAndRecovers(t *testing.T) {
	ts := httptest.NewServer(scatterHandler(sampleScatter()))
	defer ts.Close()
	tr := &chaosnet.Transport{}
	c := New(ts.URL, 0, noProbe(Config{
		Transport: tr, MaxRetries: -1,
		BreakerThreshold: 2, BreakerCooldown: 30 * time.Millisecond,
	}))
	defer c.Close()

	tr.FailNext(1 << 20)
	for i := 0; i < 2; i++ {
		if _, err := c.Scatter(context.Background(), "//book", nil); !errors.Is(err, ErrUnavailable) {
			t.Fatalf("failure %d: %v", i, err)
		}
	}
	if got := c.BreakerState(); got != "open" {
		t.Fatalf("breaker %s after %d failures, want open", got, 2)
	}
	// Open breaker: rejected without touching the network.
	before := tr.Requests()
	if _, err := c.Scatter(context.Background(), "//book", nil); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("open-breaker call: %v", err)
	}
	if tr.Requests() != before {
		t.Errorf("open breaker let a request through (%d -> %d)", before, tr.Requests())
	}

	// Cooldown passes while the shard heals: the half-open probe closes it.
	tr.FailNext(0)
	time.Sleep(40 * time.Millisecond)
	res, err := c.Scatter(context.Background(), "//book", nil)
	if err != nil {
		t.Fatalf("half-open probe: %v", err)
	}
	if len(res.Results) != 3 {
		t.Errorf("probe result: %+v", res)
	}
	if got := c.BreakerState(); got != "closed" {
		t.Errorf("breaker %s after successful probe, want closed", got)
	}
}

// TestBreakerHalfOpenAdmitsOneProbe: when the cooldown expires under
// concurrent traffic, exactly one request may probe; the rest stay
// rejected until the probe's outcome is known.
func TestBreakerHalfOpenAdmitsOneProbe(t *testing.T) {
	b := newBreaker(93, 1, time.Millisecond)
	if probe, ok := b.admit(); probe || !ok {
		t.Fatalf("closed breaker: probe=%v ok=%v", probe, ok)
	}
	b.result(false, false) // threshold 1: open
	time.Sleep(2 * time.Millisecond)

	var admitted, probes atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			probe, ok := b.admit()
			if ok {
				admitted.Add(1)
			}
			if probe {
				probes.Add(1)
			}
		}()
	}
	wg.Wait()
	if admitted.Load() != 1 || probes.Load() != 1 {
		t.Fatalf("half-open admitted %d (probes %d), want exactly 1", admitted.Load(), probes.Load())
	}
	// A failed probe re-opens; the cooldown restarts.
	b.result(true, false)
	if got := b.snapshot(); got != "open" {
		t.Fatalf("after failed probe: %s, want open", got)
	}
	time.Sleep(2 * time.Millisecond)
	probe, ok := b.admit()
	if !probe || !ok {
		t.Fatalf("second probe window: probe=%v ok=%v", probe, ok)
	}
	b.result(true, true)
	if got := b.snapshot(); got != "closed" {
		t.Fatalf("after successful probe: %s, want closed", got)
	}
}

// TestProbeRacesRecovery exercises the half-open probe against the
// background prober's force-reset under the race detector: query traffic
// and /healthz probes may both decide the breaker's fate concurrently.
func TestProbeRacesRecovery(t *testing.T) {
	var down atomic.Bool
	mux := http.NewServeMux()
	mux.Handle("/", scatterHandler(sampleScatter()))
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		mux.ServeHTTP(w, r)
	}))
	defer ts.Close()

	c := New(ts.URL, 0, Config{
		MaxRetries: -1, RetryBase: time.Millisecond,
		BreakerThreshold: 2, BreakerCooldown: 5 * time.Millisecond,
		ProbeInterval: 3 * time.Millisecond,
	})
	defer c.Close()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 40; j++ {
				_, _ = c.Scatter(context.Background(), "//book", nil)
			}
		}()
	}
	for i := 0; i < 6; i++ {
		down.Store(true)
		time.Sleep(4 * time.Millisecond)
		down.Store(false)
		time.Sleep(4 * time.Millisecond)
	}
	wg.Wait()

	// Healed and given a probe cycle, the client must converge to working.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := c.Scatter(context.Background(), "//book", nil); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never recovered after the flapping stopped")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := c.BreakerState(); got != "closed" {
		t.Errorf("breaker %s after recovery, want closed", got)
	}
}

// TestHedgedScatter: with hedging enabled, a stalled primary attempt is
// raced by a second one and the fast response wins well before the
// primary's stall ends.
func TestHedgedScatter(t *testing.T) {
	var calls atomic.Int64
	res := sampleScatter()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			time.Sleep(600 * time.Millisecond) // only the first request stalls
		}
		_ = WriteScatter(w, res)
	}))
	defer ts.Close()

	c := New(ts.URL, 0, noProbe(Config{HedgeAfter: 20 * time.Millisecond, MaxRetries: -1}))
	defer c.Close()
	t0 := time.Now()
	got, err := c.Scatter(context.Background(), "//book", nil)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(t0); elapsed > 500*time.Millisecond {
		t.Errorf("hedged scatter took %v; the hedge should have beaten the %v stall", elapsed, 600*time.Millisecond)
	}
	if len(got.Results) != 3 {
		t.Errorf("hedged result: %+v", got)
	}
	if calls.Load() < 2 {
		t.Errorf("server saw %d calls, want the hedge's second request", calls.Load())
	}
}

// TestCloseAbortsInFlight: Close must cancel an in-flight scatter rather
// than wait out its attempt timeout.
func TestCloseAbortsInFlight(t *testing.T) {
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer ts.Close()
	defer close(release)

	c := New(ts.URL, 0, noProbe(Config{AttemptTimeout: 30 * time.Second, MaxRetries: -1}))
	done := make(chan error, 1)
	go func() {
		_, err := c.Scatter(context.Background(), "//book", nil)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the request get in flight
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrUnavailable) {
			t.Errorf("aborted scatter: got %v, want ErrUnavailable", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("scatter still in flight 5s after Close")
	}
}

// TestStatsSurface exercises the JSON side of the client against a fake
// nokserve, including the stale-cache fallback when the shard goes down.
func TestStatsSurface(t *testing.T) {
	var down atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(w, "gone", http.StatusBadGateway)
			return
		}
		_ = json.NewEncoder(w).Encode(map[string]any{
			"nodes": 11, "generation": 4, "epoch": 6, "tag_count": 3,
		})
	}))
	defer ts.Close()
	c := New(ts.URL, 0, noProbe(Config{MaxRetries: -1}))
	defer c.Close()

	if n := c.NodeCount(); n != 11 {
		t.Errorf("nodes %d, want 11", n)
	}
	if g := c.Generation(); g != 4 {
		t.Errorf("generation %d, want 4", g)
	}
	if tc := c.TagCount("book"); tc != 3 {
		t.Errorf("tag count %d, want 3", tc)
	}
	if e := c.Epoch(); e != 6 {
		t.Errorf("epoch %d, want 6", e)
	}
	// Shard down: the getters keep serving the last good payload.
	down.Store(true)
	if n := c.NodeCount(); n != 11 {
		t.Errorf("stale nodes %d, want cached 11", n)
	}
}

func TestScatterPathEncoding(t *testing.T) {
	got := scatterPath("//book[price<9]", &nok.QueryOptions{Strategy: nok.StrategyTagIndex, DisablePlanner: true})
	want := "/scatter?planner=0&q=%2F%2Fbook%5Bprice%3C9%5D&strategy=tag"
	if got != want {
		t.Errorf("scatterPath:\n got %s\nwant %s", got, want)
	}
	if got := scatterPath("//a", nil); got != "/scatter?q=%2F%2Fa" {
		t.Errorf("bare path: %s", got)
	}
}

func TestBackoffBounds(t *testing.T) {
	c := New("http://127.0.0.1:0", 0, noProbe(Config{RetryBase: 10 * time.Millisecond, RetryMax: 80 * time.Millisecond}))
	defer c.Close()
	for attempt := 1; attempt <= 12; attempt++ {
		for i := 0; i < 50; i++ {
			d := c.backoff(attempt)
			if d < 5*time.Millisecond || d > 120*time.Millisecond {
				t.Fatalf("attempt %d: backoff %v outside [base/2, 1.5*max]", attempt, d)
			}
		}
	}
}

func TestVerifyUnreachable(t *testing.T) {
	c := New("http://127.0.0.1:0", 2, noProbe(Config{MaxRetries: -1, AttemptTimeout: 200 * time.Millisecond}))
	defer c.Close()
	res := c.Verify(false)
	if len(res.Issues) == 0 {
		t.Fatal("verify of an unreachable shard reported no issues")
	}
	if want := fmt.Sprintf("remote %s", c.Addr()); res.Issues[0].Component != want {
		t.Errorf("issue component %q, want %q", res.Issues[0].Component, want)
	}
}
