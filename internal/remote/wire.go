// Package remote is the network shard backend: an HTTP client that
// implements the shard-store surface against a remote nokserve process, so
// internal/shard can scatter one query across processes and machines the
// same way it scatters across local directories.
//
// The hot path is GET /scatter, a binary endpoint added for this package:
// the remote process evaluates the pattern against its own committed
// snapshot (applying the same statistics-based pruning a local shard
// gets) and streams the matches back dewey-ordered, ready for the
// coordinator's k-way merge. Everything else — stats, planning, health,
// mutations — reuses the JSON endpoints nokserve already serves.
//
// Every call goes through a fault-tolerance stack: per-attempt timeouts,
// bounded retries with exponential backoff + jitter (idempotent reads
// only — mutations are never retried), a per-shard circuit breaker with
// half-open probing, optional hedged scatter requests, and a background
// health prober. When the stack gives up the caller sees ErrUnavailable;
// internal/shard turns that into a degraded partial result or a typed
// ErrShardUnavailable depending on the query's options.
package remote

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"nok"
	"nok/internal/dewey"
)

// scatterMagic opens every /scatter response body. A version bump means a
// coordinator and a shard disagree about the wire format; the mismatch is
// detected before any frame is trusted.
const scatterMagic = "nokscat1"

// Frame kinds of the scatter stream. A well-formed stream is
// magic, zero or more 'R' frames (or one 'P' frame), one 'S' frame,
// and exactly one terminating 'E' frame.
const (
	frameResult = 'R' // one match: dewey bytes, tag, optional value
	frameStats  = 'S' // QueryStats as JSON
	framePruned = 'P' // shard proved itself empty for this pattern
	frameEnd    = 'E' // end marker carrying the served epoch
)

// maxFrameField caps a single length-prefixed field so a corrupt or
// malicious stream cannot ask the decoder to allocate gigabytes.
const maxFrameField = 1 << 28

// ErrTruncated reports a scatter stream that ended before its end frame.
// A short read over a failing connection must never be mistaken for a
// short (but complete) result set — the decoder insists on the explicit
// 'E' marker and fails the attempt otherwise, which makes truncation
// retryable instead of silently wrong.
var ErrTruncated = errors.New("remote: scatter stream truncated before end frame")

// ScatterResult is one shard's contribution to a scattered query, as
// decoded from a /scatter response (or produced locally by the server
// handler before encoding).
type ScatterResult struct {
	// Results are the shard's matches in ascending (local) Dewey order.
	Results []nok.Result
	// Stats are the shard's evaluation counters (nil when pruned).
	Stats *nok.QueryStats
	// Pruned reports that the remote shard proved from its statistics
	// synopsis that the pattern cannot match there; Reason says why.
	// A pruned response carries no results and no stats.
	Pruned bool
	Reason string
	// Epoch is the committed epoch the shard evaluated against.
	Epoch uint64
}

// WriteScatter encodes res as a scatter stream. The server handler calls
// this with the ResponseWriter; tests round-trip through a buffer.
func WriteScatter(w io.Writer, res *ScatterResult) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(scatterMagic); err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	writeField := func(b []byte) error {
		n := binary.PutUvarint(scratch[:], uint64(len(b)))
		if _, err := bw.Write(scratch[:n]); err != nil {
			return err
		}
		_, err := bw.Write(b)
		return err
	}
	if res.Pruned {
		if err := bw.WriteByte(framePruned); err != nil {
			return err
		}
		if err := writeField([]byte(res.Reason)); err != nil {
			return err
		}
	} else {
		for i := range res.Results {
			r := &res.Results[i]
			id, err := dewey.Parse(r.ID)
			if err != nil {
				return fmt.Errorf("remote: result %d has bad dewey id %q: %w", i, r.ID, err)
			}
			if err := bw.WriteByte(frameResult); err != nil {
				return err
			}
			if err := writeField(id.Bytes()); err != nil {
				return err
			}
			if err := writeField([]byte(r.Tag)); err != nil {
				return err
			}
			hv := byte(0)
			if r.HasValue {
				hv = 1
			}
			if err := bw.WriteByte(hv); err != nil {
				return err
			}
			if r.HasValue {
				if err := writeField([]byte(r.Value)); err != nil {
					return err
				}
			}
		}
		if res.Stats != nil {
			js, err := json.Marshal(res.Stats)
			if err != nil {
				return err
			}
			if err := bw.WriteByte(frameStats); err != nil {
				return err
			}
			if err := writeField(js); err != nil {
				return err
			}
		}
	}
	if err := bw.WriteByte(frameEnd); err != nil {
		return err
	}
	n := binary.PutUvarint(scratch[:], res.Epoch)
	if _, err := bw.Write(scratch[:n]); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadScatter decodes a scatter stream. Any stream that ends before the
// 'E' frame — a cut connection, a truncating proxy, a dead server — fails
// with an error wrapping ErrTruncated rather than returning the partial
// prefix as if it were complete.
func ReadScatter(r io.Reader) (*ScatterResult, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(scatterMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, truncated(err)
	}
	if string(magic) != scatterMagic {
		return nil, fmt.Errorf("remote: bad scatter magic %q", magic)
	}
	readField := func() ([]byte, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, truncated(err)
		}
		if n > maxFrameField {
			return nil, fmt.Errorf("remote: scatter field of %d bytes exceeds limit", n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, truncated(err)
		}
		return b, nil
	}
	res := &ScatterResult{}
	for {
		kind, err := br.ReadByte()
		if err != nil {
			return nil, truncated(err)
		}
		switch kind {
		case frameResult:
			idb, err := readField()
			if err != nil {
				return nil, err
			}
			id, err := dewey.FromBytes(idb)
			if err != nil {
				return nil, fmt.Errorf("remote: bad dewey bytes in scatter stream: %w", err)
			}
			tag, err := readField()
			if err != nil {
				return nil, err
			}
			hv, err := br.ReadByte()
			if err != nil {
				return nil, truncated(err)
			}
			out := nok.Result{ID: id.String(), Tag: string(tag), HasValue: hv != 0}
			if out.HasValue {
				val, err := readField()
				if err != nil {
					return nil, err
				}
				out.Value = string(val)
			}
			res.Results = append(res.Results, out)
		case frameStats:
			js, err := readField()
			if err != nil {
				return nil, err
			}
			st := &nok.QueryStats{}
			if err := json.Unmarshal(js, st); err != nil {
				return nil, fmt.Errorf("remote: bad stats frame: %w", err)
			}
			res.Stats = st
		case framePruned:
			reason, err := readField()
			if err != nil {
				return nil, err
			}
			res.Pruned = true
			res.Reason = string(reason)
		case frameEnd:
			epoch, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, truncated(err)
			}
			res.Epoch = epoch
			return res, nil
		default:
			return nil, fmt.Errorf("remote: unknown scatter frame kind %q", kind)
		}
	}
}

// truncated wraps a premature-EOF class error as ErrTruncated; other I/O
// errors pass through annotated.
func truncated(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	return fmt.Errorf("remote: scatter stream read: %w", err)
}
