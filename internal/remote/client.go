package remote

// client.go — the fault-tolerant HTTP client for one remote shard.
//
// A Client speaks to one nokserve process and presents (a superset of)
// the shard-store surface internal/shard needs. Its reliability stack,
// outermost to innermost:
//
//	circuit breaker  — open shard fails immediately, half-open probes
//	retry loop       — idempotent reads only; exponential backoff + jitter
//	attempt timeout  — every HTTP attempt has its own deadline
//
// plus a background /healthz prober that maintains the healthy flag and
// last-known epoch, and (for Scatter only) optional request hedging: when
// an attempt outlives the shard's recent p95 latency, a second attempt is
// raced against it and the first response wins.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nok"
	"nok/internal/obs"
)

// ErrUnavailable reports that a remote shard could not be reached: every
// attempt failed, the circuit breaker is open, or the client is closed.
// Match with errors.Is. internal/shard maps it to degraded partial
// results or core.ErrShardUnavailable depending on QueryOptions.
var ErrUnavailable = errors.New("remote: shard unavailable")

var (
	mRequests = obs.Default.Counter("nok_remote_requests_total", "HTTP attempts issued to remote shards")
	mRetries  = obs.Default.Counter("nok_remote_retries_total", "retry attempts after a retryable remote failure")
	mFailures = obs.Default.Counter("nok_remote_failures_total", "remote attempts that failed (before retry accounting)")
	mHedges   = obs.Default.Counter("nok_remote_hedges_total", "hedged scatter requests launched")
	mRejected = obs.Default.Counter("nok_remote_breaker_rejected_total", "calls refused immediately by an open circuit breaker")
	mProbes   = obs.Default.Counter("nok_remote_probes_total", "background health probes sent")
)

// Config tunes the fault-tolerance stack. The zero value selects the
// documented defaults; see docs/FAULT_TOLERANCE.md for the rationale.
type Config struct {
	// AttemptTimeout bounds one HTTP attempt (default 2s).
	AttemptTimeout time.Duration
	// MaxRetries is how many additional attempts an idempotent read gets
	// after the first fails retryably (default 2; negative disables
	// retries). Mutations are never retried.
	MaxRetries int
	// RetryBase and RetryMax shape the exponential backoff between
	// attempts: base·2^(attempt-1) capped at max, with ±50% jitter
	// (defaults 25ms and 500ms).
	RetryBase time.Duration
	RetryMax  time.Duration
	// BreakerThreshold consecutive failures open the circuit breaker
	// (default 5); BreakerCooldown is how long it stays open before
	// admitting a half-open probe (default 3s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// HedgeAfter enables hedged scatter requests: when an attempt has
	// been in flight for max(HedgeAfter, observed p95) a second attempt
	// is raced against it. Zero disables hedging.
	HedgeAfter time.Duration
	// ProbeInterval is the background /healthz polling period (default
	// 1s; negative disables the prober).
	ProbeInterval time.Duration
	// Transport overrides the HTTP transport — the chaos tests inject
	// faults here (default: a private http.Transport).
	Transport http.RoundTripper
}

func (c Config) withDefaults() Config {
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = 2 * time.Second
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 25 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 500 * time.Millisecond
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 3 * time.Second
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = time.Second
	}
	if c.Transport == nil {
		c.Transport = &http.Transport{MaxIdleConnsPerHost: 16, IdleConnTimeout: 30 * time.Second}
	}
	return c
}

// Client talks to one remote shard. Safe for concurrent use.
type Client struct {
	addr  string // base URL, e.g. "http://10.0.0.7:8080"
	shard int
	cfg   Config
	hc    *http.Client
	br    *breaker

	// healthy is maintained by the prober and by real traffic; a false
	// value drops the retry budget to zero so a query does not serially
	// wait out attempts the prober already knows will fail.
	healthy atomic.Bool
	epoch   atomic.Uint64 // last epoch observed from any response
	stats   atomic.Pointer[statsPayload]

	lat latWindow // recent scatter latencies, for the hedge delay

	closed  atomic.Bool
	ctx     context.Context // canceled by Close: aborts in-flight attempts
	cancel  context.CancelFunc
	probeWG sync.WaitGroup
}

// New builds a client for the shard at addr (scheme://host:port, no
// trailing slash) and starts its background health prober.
func New(addr string, shard int, cfg Config) *Client {
	cfg = cfg.withDefaults()
	c := &Client{
		addr:  strings.TrimRight(addr, "/"),
		shard: shard,
		cfg:   cfg,
		hc:    &http.Client{Transport: cfg.Transport},
		br:    newBreaker(shard, cfg.BreakerThreshold, cfg.BreakerCooldown),
	}
	c.ctx, c.cancel = context.WithCancel(context.Background())
	c.healthy.Store(true) // optimistic until the first probe says otherwise
	if cfg.ProbeInterval > 0 {
		c.probeWG.Add(1)
		go c.probeLoop()
	}
	return c
}

// Addr returns the shard's base URL.
func (c *Client) Addr() string { return c.addr }

// Shard returns the shard index this client serves.
func (c *Client) Shard() int { return c.shard }

// Healthy reports the prober's last verdict.
func (c *Client) Healthy() bool { return c.healthy.Load() }

// BreakerState names the circuit breaker state for health reporting.
func (c *Client) BreakerState() string { return c.br.snapshot() }

// Epoch returns the shard's last observed committed epoch (0 before any
// response has been seen). It is refreshed by every scatter response,
// stats fetch and health probe, so its staleness is bounded by the probe
// interval.
func (c *Client) Epoch() uint64 { return c.epoch.Load() }

// Close stops the prober and aborts in-flight attempts. Idempotent.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	c.cancel()
	c.probeWG.Wait()
	if t, ok := c.cfg.Transport.(interface{ CloseIdleConnections() }); ok {
		t.CloseIdleConnections()
	}
	return nil
}

// ---- request machinery ------------------------------------------------------

// statusError is a non-2xx response from a live server. 4xx (except 429)
// are permanent: the server understood the request and rejected it, so a
// retry cannot help and the error surfaces to the caller as-is.
type statusError struct {
	code int
	msg  string
}

func (e *statusError) Error() string { return fmt.Sprintf("HTTP %d: %s", e.code, e.msg) }

func retryable(err error) bool {
	var se *statusError
	if errors.As(err, &se) {
		return se.code >= 500 || se.code == http.StatusTooManyRequests || se.code == http.StatusRequestTimeout
	}
	// Everything else — dial failures, resets, attempt timeouts,
	// truncated streams — is a transport-level fault and worth retrying.
	return true
}

// unavailableError carries the shard address and last cause behind
// ErrUnavailable.
type unavailableError struct {
	addr  string
	cause error
}

func (e *unavailableError) Error() string {
	return fmt.Sprintf("remote shard %s unavailable: %v", e.addr, e.cause)
}
func (e *unavailableError) Is(target error) bool { return target == ErrUnavailable }
func (e *unavailableError) Unwrap() error        { return e.cause }

func (c *Client) unavailable(cause error) error {
	return &unavailableError{addr: c.addr, cause: cause}
}

// do runs one logical request through the breaker and (for idempotent
// requests) the retry loop. decode consumes a 2xx response body; extraOK
// lists non-2xx statuses also handed to decode (e.g. 404 on /value).
func (c *Client) do(ctx context.Context, method, path string, body []byte, idempotent bool, extraOK []int, decode func(status int, body io.Reader) error) error {
	if c.closed.Load() {
		return c.unavailable(errors.New("client closed"))
	}
	probe, ok := c.br.admit()
	if !ok {
		mRejected.Inc()
		return c.unavailable(errors.New("circuit breaker open"))
	}
	retries := 0
	if idempotent && c.healthy.Load() {
		retries = c.cfg.MaxRetries
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			mRetries.Inc()
			if err := sleepCtx(ctx, c.backoff(attempt)); err != nil {
				break
			}
		}
		err := c.attempt(ctx, method, path, body, extraOK, decode)
		if err == nil {
			c.br.result(probe, true)
			c.healthy.Store(true)
			return nil
		}
		if !retryable(err) {
			// The shard answered; it is available, just unwilling.
			c.br.result(probe, true)
			return err
		}
		mFailures.Inc()
		lastErr = err
		if ctx.Err() != nil || c.ctx.Err() != nil || attempt >= retries {
			break
		}
	}
	c.br.result(probe, false)
	c.healthy.Store(false)
	return c.unavailable(lastErr)
}

// attempt issues one HTTP request under the attempt timeout (also bounded
// by the caller's ctx and aborted by Close).
func (c *Client) attempt(ctx context.Context, method, path string, body []byte, extraOK []int, decode func(status int, body io.Reader) error) error {
	actx, cancel := context.WithTimeout(ctx, c.cfg.AttemptTimeout)
	defer cancel()
	stop := context.AfterFunc(c.ctx, cancel)
	defer stop()

	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, c.addr+path, rd)
	if err != nil {
		return err
	}
	mRequests.Inc()
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		_ = resp.Body.Close()
	}()
	okStatus := resp.StatusCode >= 200 && resp.StatusCode < 300
	for _, s := range extraOK {
		okStatus = okStatus || resp.StatusCode == s
	}
	if !okStatus {
		msg := readErrorBody(resp.Body)
		return &statusError{code: resp.StatusCode, msg: msg}
	}
	if decode == nil {
		return nil
	}
	return decode(resp.StatusCode, resp.Body)
}

// readErrorBody extracts the server's error message (JSON
// {"error": "..."} or plain text), bounded to 4KiB.
func readErrorBody(r io.Reader) string {
	b, _ := io.ReadAll(io.LimitReader(r, 4096))
	var er struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(b, &er) == nil && er.Error != "" {
		return er.Error
	}
	return strings.TrimSpace(string(b))
}

// backoff returns the sleep before the attempt-th try: exponential from
// RetryBase, capped at RetryMax, with ±50% jitter so a fleet of
// coordinators does not retry in lockstep.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.cfg.RetryBase << (attempt - 1)
	if d > c.cfg.RetryMax || d <= 0 {
		d = c.cfg.RetryMax
	}
	return time.Duration(float64(d) * (0.5 + rand.Float64()))
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// ---- scatter ----------------------------------------------------------------

// strategyParam renders a strategy for the ?strategy= query parameter
// (the inverse of the server's parseStrategy).
func strategyParam(s nok.Strategy) string {
	switch s {
	case nok.StrategyScan:
		return "scan"
	case nok.StrategyTagIndex:
		return "tag"
	case nok.StrategyValueIndex:
		return "value"
	case nok.StrategyPathIndex:
		return "path"
	default:
		return "auto"
	}
}

func scatterPath(expr string, opts *nok.QueryOptions) string {
	v := url.Values{}
	v.Set("q", expr)
	if opts != nil {
		if opts.Strategy != nok.StrategyAuto {
			v.Set("strategy", strategyParam(opts.Strategy))
		}
		if opts.DisablePageSkip {
			v.Set("pageskip", "0")
		}
		if opts.DisablePlanner {
			v.Set("planner", "0")
		}
		if opts.DisableParallel {
			v.Set("parallel", "0")
		}
	}
	return "/scatter?" + v.Encode()
}

// Scatter evaluates expr on the remote shard and returns its
// dewey-ordered matches (or a pruned marker). The shard applies its own
// statistics-based pruning server-side, so a provably empty shard costs
// one round trip and no evaluation. With hedging enabled, a second
// attempt races the first once it outlives the shard's recent p95.
func (c *Client) Scatter(ctx context.Context, expr string, opts *nok.QueryOptions) (*ScatterResult, error) {
	path := scatterPath(expr, opts)
	run := func(ctx context.Context) (*ScatterResult, error) {
		var out *ScatterResult
		err := c.do(ctx, http.MethodGet, path, nil, true, nil, func(_ int, body io.Reader) error {
			res, err := ReadScatter(body)
			if err != nil {
				return err
			}
			out = res
			return nil
		})
		return out, err
	}

	begin := time.Now()
	delay := c.hedgeDelay()
	var res *ScatterResult
	var err error
	if delay <= 0 {
		res, err = run(ctx)
	} else {
		res, err = c.hedged(ctx, delay, run)
	}
	if err != nil {
		return nil, err
	}
	c.lat.observe(time.Since(begin))
	c.epoch.Store(res.Epoch)
	return res, nil
}

// hedged races a second run launched after delay; the first success wins
// and cancels the loser. Both failing returns the first error.
func (c *Client) hedged(ctx context.Context, delay time.Duration, run func(context.Context) (*ScatterResult, error)) (*ScatterResult, error) {
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		res *ScatterResult
		err error
	}
	ch := make(chan outcome, 2)
	launch := func() {
		go func() {
			r, e := run(cctx)
			ch <- outcome{r, e}
		}()
	}
	launch()
	timer := time.NewTimer(delay)
	defer timer.Stop()
	pending, hedged := 1, false
	var firstErr error
	for {
		select {
		case o := <-ch:
			if o.err == nil {
				return o.res, nil
			}
			if firstErr == nil {
				firstErr = o.err
			}
			pending--
			if pending == 0 && (hedged || !timer.Stop()) {
				// Both runs failed, or the only run failed after the
				// hedge window already fired-and-was-consumed.
				return nil, firstErr
			}
			if !hedged {
				// The primary failed before the hedge launched; a hedge
				// would just repeat the retry loop that already ran.
				return nil, firstErr
			}
		case <-timer.C:
			if pending == 0 {
				return nil, firstErr
			}
			mHedges.Inc()
			hedged = true
			pending++
			launch()
		}
	}
}

// hedgeDelay is max(cfg.HedgeAfter, recent p95); zero disables hedging.
func (c *Client) hedgeDelay() time.Duration {
	if c.cfg.HedgeAfter <= 0 {
		return 0
	}
	if p := c.lat.p95(); p > c.cfg.HedgeAfter {
		return p
	}
	return c.cfg.HedgeAfter
}

// latWindow is a small ring of recent latencies for the hedge delay.
type latWindow struct {
	mu  sync.Mutex
	buf [64]time.Duration
	n   int
}

func (w *latWindow) observe(d time.Duration) {
	w.mu.Lock()
	w.buf[w.n%len(w.buf)] = d
	w.n++
	w.mu.Unlock()
}

// p95 returns the 95th percentile of the window, or 0 with fewer than 8
// samples (not enough signal to hedge on).
func (w *latWindow) p95() time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := w.n
	if n > len(w.buf) {
		n = len(w.buf)
	}
	if n < 8 {
		return 0
	}
	s := make([]time.Duration, n)
	copy(s, w.buf[:n])
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[n*95/100]
}

// ---- the rest of the shard-store surface ------------------------------------

// statsPayload mirrors the fields of the server's /stats response the
// client consumes.
type statsPayload struct {
	Store      nok.Stats         `json:"store"`
	Nodes      uint64            `json:"nodes"`
	Generation uint64            `json:"generation"`
	Epoch      uint64            `json:"epoch"`
	MVCC       *nok.MVCCInfo     `json:"mvcc"`
	Synopsis   *nok.SynopsisInfo `json:"synopsis"`
	TagCount   *uint64           `json:"tag_count"`
}

// fetchStats GETs /stats (optionally with extra query parameters) and
// caches the payload for the availability-window getters below.
func (c *Client) fetchStats(params string) (*statsPayload, error) {
	var out *statsPayload
	err := c.do(c.ctx, http.MethodGet, "/stats"+params, nil, true, nil, func(_ int, body io.Reader) error {
		p := &statsPayload{}
		if err := json.NewDecoder(body).Decode(p); err != nil {
			return err
		}
		out = p
		return nil
	})
	if err != nil {
		return nil, err
	}
	c.stats.Store(out)
	c.epoch.Store(out.Epoch)
	return out, nil
}

// cachedStats returns the freshest payload available: a live fetch when
// the shard answers, the last good payload otherwise (so aggregate stats
// keep rendering while one shard is down).
func (c *Client) cachedStats() *statsPayload {
	if p, err := c.fetchStats(""); err == nil {
		return p
	}
	if p := c.stats.Load(); p != nil {
		return p
	}
	return &statsPayload{}
}

// Stats returns the remote store's stats (zero value when the shard has
// never answered).
func (c *Client) Stats() nok.Stats { return c.cachedStats().Store }

// NodeCount returns the remote node count (possibly stale when down).
func (c *Client) NodeCount() uint64 { return c.cachedStats().Nodes }

// Generation returns the remote mutation counter (possibly stale).
func (c *Client) Generation() uint64 { return c.cachedStats().Generation }

// MVCC returns the remote MVCC accounting; ok is false when the shard
// has never reported one.
func (c *Client) MVCC() (nok.MVCCInfo, bool) {
	p := c.cachedStats()
	if p.MVCC == nil {
		return nok.MVCCInfo{}, false
	}
	return *p.MVCC, true
}

// Synopsis returns the remote statistics synopsis (zero value when the
// shard is unreachable and was never seen).
func (c *Client) Synopsis(n int) nok.SynopsisInfo {
	var out *nok.SynopsisInfo
	params := ""
	if n > 0 {
		params = "?top=" + strconv.Itoa(n)
	}
	if p, err := c.fetchStats(params); err == nil && p.Synopsis != nil {
		out = p.Synopsis
	} else if p := c.stats.Load(); p != nil && p.Synopsis != nil {
		out = p.Synopsis
	}
	if out == nil {
		return nok.SynopsisInfo{}
	}
	return *out
}

// TagCount returns the remote count of nodes with the given tag (0 when
// unreachable).
func (c *Client) TagCount(name string) uint64 {
	p, err := c.fetchStats("?tag=" + url.QueryEscape(name))
	if err != nil || p.TagCount == nil {
		return 0
	}
	return *p.TagCount
}

// Plan fetches the remote planner's textual plan for expr.
func (c *Client) Plan(expr string) (string, error) {
	var out string
	err := c.do(c.ctx, http.MethodGet, "/plan?q="+url.QueryEscape(expr), nil, true, nil, func(_ int, body io.Reader) error {
		b, err := io.ReadAll(io.LimitReader(body, 1<<20))
		if err != nil {
			return err
		}
		out = string(b)
		return nil
	})
	return out, err
}

// Value fetches one node's text content. A 404 means the node exists
// without a value (or not at all) — reported as ok=false, not an error,
// matching nok.Store.Value.
func (c *Client) Value(id string) (string, bool, error) {
	var out string
	var found bool
	err := c.do(c.ctx, http.MethodGet, "/value/"+url.PathEscape(id), nil, true, []int{http.StatusNotFound}, func(status int, body io.Reader) error {
		if status == http.StatusNotFound {
			return nil
		}
		var r struct {
			Value    string `json:"value"`
			HasValue bool   `json:"has_value"`
		}
		if err := json.NewDecoder(body).Decode(&r); err != nil {
			return err
		}
		out, found = r.Value, r.HasValue
		return nil
	})
	return out, found, err
}

// mutationPayload mirrors the server's mutation response.
type mutationPayload struct {
	Epoch uint64 `json:"epoch"`
}

// Insert sends an XML fragment to be inserted under parentID on the
// remote shard. Mutations are NOT idempotent and are never retried: a
// timed-out insert may have committed, and replaying it would duplicate
// the subtree. The caller sees the transport error and decides.
func (c *Client) Insert(parentID string, fragment io.Reader) error {
	body, err := io.ReadAll(fragment)
	if err != nil {
		return err
	}
	return c.do(c.ctx, http.MethodPost, "/insert?parent="+url.QueryEscape(parentID), body, false, nil, c.decodeMutation)
}

// Delete removes the subtree rooted at id on the remote shard. Not
// retried (a replayed delete after a timed-out success returns a
// spurious not-found).
func (c *Client) Delete(id string) error {
	return c.do(c.ctx, http.MethodDelete, "/node/"+url.PathEscape(id), nil, false, nil, c.decodeMutation)
}

func (c *Client) decodeMutation(_ int, body io.Reader) error {
	var m mutationPayload
	if err := json.NewDecoder(body).Decode(&m); err != nil {
		return err
	}
	c.epoch.Store(m.Epoch)
	return nil
}

// Verify asks the remote shard for a health verdict. Shallow maps to
// GET /healthz, deep to /healthz?deep=1 (a full remote store
// verification). An unreachable shard yields a single-issue result
// rather than an error, matching the local Verify contract of always
// returning a report.
func (c *Client) Verify(deep bool) *nok.VerifyResult {
	path := "/healthz"
	if deep {
		path += "?deep=1"
	}
	res := &nok.VerifyResult{}
	err := c.do(c.ctx, http.MethodGet, path, nil, true, []int{http.StatusServiceUnavailable}, func(_ int, body io.Reader) error {
		var h struct {
			Status         string   `json:"status"`
			Epoch          uint64   `json:"epoch"`
			PagesChecked   int      `json:"pages_checked"`
			EntriesChecked uint64   `json:"entries_checked"`
			RecordsChecked int      `json:"records_checked"`
			Issues         []string `json:"issues"`
		}
		if err := json.NewDecoder(body).Decode(&h); err != nil {
			return err
		}
		res.PagesChecked = h.PagesChecked
		res.EntriesChecked = h.EntriesChecked
		res.RecordsChecked = h.RecordsChecked
		if h.Epoch > 0 {
			c.epoch.Store(h.Epoch)
		}
		for _, is := range h.Issues {
			res.Issues = append(res.Issues, nok.VerifyIssue{Component: fmt.Sprintf("remote %s", c.addr), Err: errors.New(is)})
		}
		if h.Status != "ok" && len(h.Issues) == 0 {
			res.Issues = append(res.Issues, nok.VerifyIssue{Component: fmt.Sprintf("remote %s", c.addr), Err: fmt.Errorf("status %q", h.Status)})
		}
		return nil
	})
	if err != nil {
		res.Issues = append(res.Issues, nok.VerifyIssue{Component: fmt.Sprintf("remote %s", c.addr), Err: err})
	}
	return res
}

// RefreshStats is a no-op for remote shards: the remote process owns its
// statistics synopsis and refreshes it on its own schedule (nokserve
// -refresh-stats or an operator hitting the local CLI).
func (c *Client) RefreshStats() error { return nil }

// ---- background prober ------------------------------------------------------

func (c *Client) probeLoop() {
	defer c.probeWG.Done()
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-c.ctx.Done():
			return
		case <-t.C:
			c.probe()
		}
	}
}

// probe hits /healthz once, bypassing breaker and retries: its job is to
// maintain the healthy flag and re-close an open breaker the moment the
// shard answers again, independent of query traffic. A degraded (503 but
// JSON-speaking) server still counts as reachable — it serves reads.
func (c *Client) probe() {
	mProbes.Inc()
	timeout := c.cfg.AttemptTimeout
	if c.cfg.ProbeInterval < timeout {
		timeout = c.cfg.ProbeInterval
	}
	ctx, cancel := context.WithTimeout(c.ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.addr+"/healthz", nil)
	if err != nil {
		return
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		c.healthy.Store(false)
		return
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
		_ = resp.Body.Close()
	}()
	var h struct {
		Status string `json:"status"`
		Epoch  uint64 `json:"epoch"`
	}
	if json.NewDecoder(io.LimitReader(resp.Body, 1<<12)).Decode(&h) != nil || h.Status == "" {
		// Plain-text 503 ("draining") or garbage: the process is going
		// away or is not a nokserve.
		c.healthy.Store(false)
		return
	}
	c.healthy.Store(true)
	if h.Epoch > 0 {
		c.epoch.Store(h.Epoch)
	}
	c.br.reset()
}
