package remote

// breaker.go — the per-shard circuit breaker.
//
// The breaker exists so a dead shard costs one timeout, not one timeout
// per query: after Threshold consecutive failures the breaker opens and
// every call fails immediately with ErrUnavailable until Cooldown has
// passed. Then it admits exactly one probe request (half-open); a probe
// success closes the breaker, a probe failure re-opens it for another
// cooldown. The background health prober (client.go) can also close an
// open breaker when /healthz starts answering again, so recovery does not
// have to wait for query traffic.

import (
	"strconv"
	"sync"
	"time"

	"nok/internal/obs"
)

// Breaker states, exposed as the nok_shard_breaker_state gauge
// (one labeled series per shard).
const (
	breakerClosed   = 0
	breakerHalfOpen = 1
	breakerOpen     = 2
)

var mBreakerOpens = obs.Default.Counter("nok_shard_breaker_opens_total", "circuit breaker open transitions across all remote shards")

// breaker is a consecutive-failure circuit breaker. All methods are safe
// for concurrent use.
type breaker struct {
	threshold int
	cooldown  time.Duration
	gauge     *obs.Gauge

	mu       sync.Mutex
	state    int
	failures int
	openedAt time.Time
	probing  bool // a half-open probe is in flight; its outcome decides the state
}

func newBreaker(shard int, threshold int, cooldown time.Duration) *breaker {
	return &breaker{
		threshold: threshold,
		cooldown:  cooldown,
		gauge: obs.Default.GaugeWithLabels("nok_shard_breaker_state",
			"per-shard circuit breaker state (0 closed, 1 half-open, 2 open)",
			map[string]string{"shard": strconv.Itoa(shard)}),
	}
}

// admit reports whether a request may proceed. probe marks the single
// request whose outcome decides a half-open breaker; the caller must
// report it back through result.
func (b *breaker) admit() (probe, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return false, true
	case breakerOpen:
		if time.Since(b.openedAt) < b.cooldown {
			return false, false
		}
		b.setState(breakerHalfOpen)
		b.probing = true
		return true, true
	default: // half-open: one probe at a time
		if b.probing {
			return false, false
		}
		b.probing = true
		return true, true
	}
}

// result reports the outcome of an admitted request.
func (b *breaker) result(probe, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probing = false
	}
	if ok {
		// Any success while closed resets the consecutive-failure count;
		// a probe success (or a straggler succeeding while half-open)
		// closes the breaker.
		b.failures = 0
		if b.state != breakerClosed {
			b.setState(breakerClosed)
		}
		return
	}
	switch b.state {
	case breakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.open()
		}
	case breakerHalfOpen:
		if probe {
			b.open()
		}
	case breakerOpen:
		// Stragglers admitted before the open keep failing; the cooldown
		// clock is not refreshed, or steady traffic could hold the
		// breaker open forever.
	}
}

func (b *breaker) open() {
	b.setState(breakerOpen)
	b.openedAt = time.Now()
	b.failures = 0
	mBreakerOpens.Inc()
}

// reset force-closes the breaker — the background prober calls this when
// /healthz answers while the breaker is open or half-open.
func (b *breaker) reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.probing = false
	if b.state != breakerClosed {
		b.setState(breakerClosed)
	}
}

// setState must run under mu.
func (b *breaker) setState(s int) {
	b.state = s
	b.gauge.Set(int64(s))
}

// snapshot returns the current state for health reporting.
func (b *breaker) snapshot() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}
