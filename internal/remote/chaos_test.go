package remote_test

// chaos_test.go — the system-level chaos sweep (run ×3 under -race in
// CI). A 4-shard collection is served by four real server.Server
// processes, each behind a chaosnet proxy whose failure mode flips at
// runtime. The sweep asserts the guarantees the fault-tolerance stack
// promises:
//
//   - no silently wrong results: a query either errors, is flagged
//     Degraded with the missing shards named, or equals the single-store
//     oracle exactly;
//   - circuit breakers open while a shard is dark and close after heal;
//   - queries keep answering (bounded latency) while one shard is
//     black-holed, once the breaker has tripped.

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"nok"
	"nok/internal/chaosnet"
	"nok/internal/remote"
	"nok/internal/server"
	"nok/internal/shard"
)

// chaosXML: four document kinds so path routing deals one kind per
// shard; //title touches every shard, //book/title prunes three.
func chaosXML() string {
	var b strings.Builder
	b.WriteString("<corpus>")
	for i := 0; i < 24; i++ {
		for _, kind := range []string{"book", "article", "thesis", "report"} {
			fmt.Fprintf(&b, "<%s><title>%s-%d</title><val>%d</val></%s>", kind, kind, i, i%7, kind)
		}
	}
	b.WriteString("</corpus>")
	return b.String()
}

var chaosQueries = []string{`//title`, `//book/title`, `/corpus/report/val`}

type chaosCluster struct {
	st      *shard.Store
	oracle  *nok.Store
	proxies []*chaosnet.Proxy
}

// newChaosCluster serves every shard of a 4-way path-routed collection
// through its own server.Server behind its own chaos proxy, and opens a
// coordinator tuned for fast failure detection.
func newChaosCluster(t *testing.T, rcfg remote.Config) *chaosCluster {
	t.Helper()
	xml := chaosXML()
	base := t.TempDir()
	oracle, err := nok.Create(filepath.Join(base, "oracle"), strings.NewReader(xml), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { oracle.Close() })

	dir := filepath.Join(base, "coll")
	created, err := shard.Create(dir, strings.NewReader(xml), &shard.Options{Shards: 4, Strategy: shard.StrategyPath})
	if err != nil {
		t.Fatal(err)
	}
	created.Close()

	c := &chaosCluster{oracle: oracle}
	addrs := make([]string, 4)
	for s := 0; s < 4; s++ {
		sub, err := nok.Open(filepath.Join(dir, fmt.Sprintf("shard-%04d", s)), nil)
		if err != nil {
			t.Fatal(err)
		}
		srv := server.NewBackend(sub, server.Config{CacheEntries: -1})
		ts := httptest.NewServer(srv)
		t.Cleanup(func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
		})
		p, err := chaosnet.NewProxy(strings.TrimPrefix(ts.URL, "http://"))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = p.Close() })
		c.proxies = append(c.proxies, p)
		addrs[s] = p.URL()
	}
	if err := shard.SetShardAddrs(dir, addrs); err != nil {
		t.Fatal(err)
	}
	c.st, err = shard.OpenWithOptions(dir, &shard.OpenOptions{Remote: &rcfg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.st.Close() })
	return c
}

// fastChaos: failures are detected in ~100ms, breakers trip after 2
// misses and probe every 50ms.
func fastChaos() remote.Config {
	return remote.Config{
		AttemptTimeout:   400 * time.Millisecond,
		MaxRetries:       1,
		RetryBase:        5 * time.Millisecond,
		RetryMax:         20 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  100 * time.Millisecond,
		ProbeInterval:    50 * time.Millisecond,
	}
}

// checkOracle asserts a non-degraded answer is byte-identical to the
// single store's.
func (c *chaosCluster) checkOracle(t *testing.T, expr string, got []nok.Result, stats *nok.QueryStats) {
	t.Helper()
	if stats != nil && stats.Degraded {
		t.Fatalf("%s: checkOracle on a degraded answer", expr)
	}
	want, err := c.oracle.Query(expr)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, oracle has %d — a short answer was not flagged", expr, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: result %d differs: %+v vs oracle %+v", expr, i, got[i], want[i])
		}
	}
}

// checkDegradedSubset asserts a degraded answer is a correct subset of
// the oracle: nothing invented, missing shards named.
func (c *chaosCluster) checkDegradedSubset(t *testing.T, expr string, got []nok.Result, stats *nok.QueryStats, wantMissing []int) {
	t.Helper()
	if !stats.Degraded {
		t.Fatalf("%s: answer not flagged degraded", expr)
	}
	miss := append([]int(nil), stats.MissingShards...)
	sort.Ints(miss)
	if fmt.Sprint(miss) != fmt.Sprint(wantMissing) {
		t.Fatalf("%s: missing shards %v, want %v", expr, miss, wantMissing)
	}
	full, err := c.oracle.Query(expr)
	if err != nil {
		t.Fatal(err)
	}
	in := make(map[nok.Result]bool, len(full))
	for _, r := range full {
		in[r] = true
	}
	for _, r := range got {
		if !in[r] {
			t.Fatalf("%s: degraded answer invented result %+v", expr, r)
		}
	}
}

// waitBreaker polls the coordinator's health until the given shard's
// breaker reaches state (driving traffic if drive is set).
func (c *chaosCluster) waitBreaker(t *testing.T, s int, state string, drive bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if drive {
			_, _, _ = c.st.QueryWithOptions(`//title`, &nok.QueryOptions{AllowPartial: true})
		}
		for _, h := range c.st.Health() {
			if h.Shard == s && h.Breaker == state {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard %d breaker never reached %q: %+v", s, state, c.st.Health())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestChaosBlackhole(t *testing.T) {
	c := newChaosCluster(t, fastChaos())

	// Healthy cluster: every query equals the oracle.
	for _, q := range chaosQueries {
		rs, stats, err := c.st.QueryWithOptions(q, nil)
		if err != nil {
			t.Fatalf("healthy %s: %v", q, err)
		}
		c.checkOracle(t, q, rs, stats)
	}

	// Black-hole shard 2. Fail-fast path: typed unavailability, never a
	// short answer.
	c.proxies[2].SetMode(chaosnet.ModeBlackhole)
	_, _, err := c.st.QueryWithOptions(`//title`, nil)
	if !errors.Is(err, nok.ErrShardUnavailable) {
		t.Fatalf("blackholed query: got %v, want ErrShardUnavailable", err)
	}

	// Opt-in path: degraded subset with the missing shard named.
	rs, stats, err := c.st.QueryWithOptions(`//title`, &nok.QueryOptions{AllowPartial: true})
	if err != nil {
		t.Fatalf("partial query: %v", err)
	}
	c.checkDegradedSubset(t, `//title`, rs, stats, []int{2})

	// The breaker opens under traffic…
	c.waitBreaker(t, 2, "open", true)

	// …and with it open, queries answer fast: the dead shard costs a
	// breaker rejection, not an attempt timeout. p50 over 9 runs must be
	// far under the 400ms attempt timeout.
	durs := make([]time.Duration, 0, 9)
	for i := 0; i < 9; i++ {
		t0 := time.Now()
		_, stats, err := c.st.QueryWithOptions(`//title`, &nok.QueryOptions{AllowPartial: true})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if !stats.Degraded {
			t.Fatalf("run %d: not degraded while shard 2 is dark", i)
		}
		durs = append(durs, time.Since(t0))
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	if p50 := durs[len(durs)/2]; p50 > 200*time.Millisecond {
		t.Errorf("p50 %v with an open breaker; want well under the 400ms attempt timeout", p50)
	}

	// Heal. The prober notices and force-closes the breaker without
	// waiting for query traffic; full answers resume.
	c.proxies[2].SetMode(chaosnet.ModePass)
	c.waitBreaker(t, 2, "closed", false)
	deadline := time.Now().Add(10 * time.Second)
	for {
		rs, stats, err := c.st.QueryWithOptions(`//title`, nil)
		if err == nil && !stats.Degraded {
			c.checkOracle(t, `//title`, rs, stats)
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never healed: err=%v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestChaosTruncate: a proxy that cuts responses mid-stream must never
// produce a silently short result set — the end-frame check turns the
// cut into a retryable failure and, with retries exhausted, into typed
// unavailability or a flagged degraded answer.
func TestChaosTruncate(t *testing.T) {
	c := newChaosCluster(t, fastChaos())
	c.proxies[1].SetMode(chaosnet.ModeTruncate)
	c.proxies[1].SetTruncateBytes(80)

	for i := 0; i < 5; i++ {
		rs, stats, err := c.st.QueryWithOptions(`//title`, nil)
		if err != nil {
			if !errors.Is(err, nok.ErrShardUnavailable) {
				t.Fatalf("truncated query error: %v", err)
			}
			continue
		}
		// A success must be the complete answer.
		c.checkOracle(t, `//title`, rs, stats)
	}
	rs, stats, err := c.st.QueryWithOptions(`//title`, &nok.QueryOptions{AllowPartial: true})
	if err != nil {
		t.Fatalf("partial under truncation: %v", err)
	}
	if stats.Degraded {
		c.checkDegradedSubset(t, `//title`, rs, stats, []int{1})
	} else {
		c.checkOracle(t, `//title`, rs, stats)
	}

	c.proxies[1].SetMode(chaosnet.ModePass)
	deadline := time.Now().Add(10 * time.Second)
	for {
		rs, stats, err := c.st.QueryWithOptions(`//title`, nil)
		if err == nil && !stats.Degraded {
			c.checkOracle(t, `//title`, rs, stats)
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("never healed after truncation: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestChaosReset: immediate connection resets are the cheap failure —
// detected in microseconds, handled identically.
func TestChaosReset(t *testing.T) {
	c := newChaosCluster(t, fastChaos())
	c.proxies[3].SetMode(chaosnet.ModeReset)

	if _, _, err := c.st.QueryWithOptions(`//title`, nil); !errors.Is(err, nok.ErrShardUnavailable) {
		t.Fatalf("reset query: got %v, want ErrShardUnavailable", err)
	}
	rs, stats, err := c.st.QueryWithOptions(`//title`, &nok.QueryOptions{AllowPartial: true})
	if err != nil {
		t.Fatal(err)
	}
	c.checkDegradedSubset(t, `//title`, rs, stats, []int{3})
	c.waitBreaker(t, 3, "open", true)

	c.proxies[3].SetMode(chaosnet.ModePass)
	c.waitBreaker(t, 3, "closed", false)
}

// TestChaosLatency: latency alone (inside the attempt timeout) degrades
// nothing — answers stay complete and correct.
func TestChaosLatency(t *testing.T) {
	c := newChaosCluster(t, fastChaos())
	c.proxies[0].SetMode(chaosnet.ModeLatency)
	c.proxies[0].SetLatency(100 * time.Millisecond)

	for _, q := range chaosQueries {
		rs, stats, err := c.st.QueryWithOptions(q, nil)
		if err != nil {
			t.Fatalf("%s under latency: %v", q, err)
		}
		if stats.Degraded {
			t.Fatalf("%s: slow-but-alive shard marked degraded", q)
		}
		c.checkOracle(t, q, rs, stats)
	}
}
