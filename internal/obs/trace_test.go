package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	sp := tr.Start("phase")
	sp.Set("k", 1)
	child := sp.Start("sub")
	child.End()
	sp.End()
	tr.Finish()
	if got := tr.String(); got != "" {
		t.Errorf("nil trace rendered %q", got)
	}
	if d := sp.Duration(); d != 0 {
		t.Errorf("nil span duration %v", d)
	}
}

func TestTraceTreeRendering(t *testing.T) {
	tr := New("query //a/x")
	p := tr.Start("parse")
	p.End()
	m := tr.Start("match")
	m.Set("partition", 1)
	m.Set("strategy", "tag-index")
	j := m.Start("join")
	j.Set("inputs", 42)
	j.End()
	m.End()
	tr.Root().Set("results", 3)
	tr.Finish()

	out := tr.String()
	for _, want := range []string{
		"query //a/x", "results=3",
		"├─ parse",
		"└─ match", "partition=1", "strategy=tag-index",
		"   └─ join", "inputs=42",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestSpanSetReplaces(t *testing.T) {
	tr := New("q")
	sp := tr.Start("s")
	sp.Set("n", 1)
	sp.Set("n", 2)
	if v, ok := sp.Field("n"); !ok || v != "2" {
		t.Errorf("Field(n) = %q, %v", v, ok)
	}
	if strings.Count(tr.String(), "n=") != 1 {
		t.Errorf("duplicate field rendered:\n%s", tr.String())
	}
}

func TestSpanDuration(t *testing.T) {
	tr := New("q")
	sp := tr.Start("s")
	time.Sleep(time.Millisecond)
	sp.End()
	if d := sp.Duration(); d < time.Millisecond {
		t.Errorf("duration %v < 1ms", d)
	}
	d := sp.Duration()
	sp.End() // second End keeps the first duration
	if sp.Duration() != d {
		t.Error("second End changed duration")
	}
}

func TestContextRoundTrip(t *testing.T) {
	tr := New("q")
	ctx := NewContext(context.Background(), tr)
	if got := FromContext(ctx); got != tr {
		t.Error("trace lost in context")
	}
	if got := FromContext(context.Background()); got != nil {
		t.Error("empty context yielded a trace")
	}
}
