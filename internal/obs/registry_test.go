package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestSnapshotConsistentUnderConcurrentIncrements hammers one registry from
// many goroutines while snapshotting; the final snapshot must account for
// every increment and intermediate counter reads must be monotonic.
func TestSnapshotConsistentUnderConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 5000

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var snapErr error
	var snapMu sync.Mutex
	go func() {
		var lastC, lastH int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := r.Snapshot()
			c := s.Counters["ops"]
			h := s.Histograms["lat"].Count
			snapMu.Lock()
			if c < lastC || h < lastH {
				snapErr = fmt.Errorf("snapshot went backwards: counter %d->%d, hist %d->%d", lastC, c, lastH, h)
			}
			lastC, lastH = c, h
			snapMu.Unlock()
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("ops", "")
			g := r.Gauge("level", "")
			h := r.Histogram("lat", "", []float64{0.5, 1, 2})
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%4) * 0.7)
			}
		}(w)
	}
	wg.Wait()
	close(stop)

	snapMu.Lock()
	defer snapMu.Unlock()
	if snapErr != nil {
		t.Fatal(snapErr)
	}
	s := r.Snapshot()
	total := int64(workers * perWorker)
	if s.Counters["ops"] != total {
		t.Errorf("counter = %d, want %d", s.Counters["ops"], total)
	}
	if s.Gauges["level"] != total {
		t.Errorf("gauge = %d, want %d", s.Gauges["level"], total)
	}
	if s.Histograms["lat"].Count != total {
		t.Errorf("histogram count = %d, want %d", s.Histograms["lat"].Count, total)
	}
}

// TestHistogramBucketBoundaries verifies the le (less-or-equal) bucket
// semantics at exact boundaries and beyond the last bound.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0, 1, 1.5, 10, 10.5, 100, 1000} {
		h.Observe(v)
	}
	s := h.snapshot()
	// le=1: {0, 1}; le=10: +{1.5, 10}; le=100: +{10.5, 100}; +Inf: +{1000}.
	wantCum := []int64{2, 4, 6}
	for i, want := range wantCum {
		if s.Cumulative[i] != want {
			t.Errorf("bucket le=%g: cumulative = %d, want %d", s.Bounds[i], s.Cumulative[i], want)
		}
	}
	if s.Count != 7 {
		t.Errorf("count = %d, want 7", s.Count)
	}
	if want := 0.0 + 1 + 1.5 + 10 + 10.5 + 100 + 1000; s.Sum != want {
		t.Errorf("sum = %g, want %g", s.Sum, want)
	}
}

// TestWritePrometheusGolden pins the text exposition format.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("nok_test_ops_total", "operations performed")
	g := r.Gauge("nok_test_depth", "current depth")
	h := r.Histogram("nok_test_seconds", "operation latency", []float64{0.01, 0.1})
	c.Add(41)
	c.Inc()
	g.Set(-3)
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(7)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# HELP nok_test_ops_total operations performed",
		"# TYPE nok_test_ops_total counter",
		"nok_test_ops_total 42",
		"# HELP nok_test_depth current depth",
		"# TYPE nok_test_depth gauge",
		"nok_test_depth -3",
		"# HELP nok_test_seconds operation latency",
		"# TYPE nok_test_seconds histogram",
		`nok_test_seconds_bucket{le="0.01"} 1`,
		`nok_test_seconds_bucket{le="0.1"} 2`,
		`nok_test_seconds_bucket{le="+Inf"} 3`,
		"nok_test_seconds_sum 7.055",
		"nok_test_seconds_count 3",
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a", "").Add(7)
	r.Histogram("h", "", []float64{1}).Observe(0.5)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if s.Counters["a"] != 7 || s.Histograms["h"].Count != 1 {
		t.Errorf("round-trip mismatch: %+v", s)
	}
}

func TestSameNameSameKindIsShared(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x", "things counted")
	c2 := r.Counter("x", "things counted")
	if c1 != c2 {
		t.Error("same-name counter not shared")
	}
}

// TestRegistrationMismatchPanics pins the process-wide-contract rule: the
// same name registered as a different kind OR with a different help string
// panics instead of silently keeping the first registration.
func TestRegistrationMismatchPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}

	r := NewRegistry()
	r.Counter("x", "things counted")
	mustPanic("cross-kind", func() { r.Gauge("x", "things counted") })
	mustPanic("counter help mismatch", func() { r.Counter("x", "different help") })

	r.Gauge("g", "a level")
	mustPanic("gauge help mismatch", func() { r.Gauge("g", "another level") })

	r.Histogram("h", "a latency", []float64{1})
	mustPanic("histogram help mismatch", func() { r.Histogram("h", "other latency", []float64{1}) })

	r.Info("i", "build info", map[string]string{"version": "1"})
	r.Info("i", "build info", map[string]string{"version": "1"}) // identical: no-op
	mustPanic("info help mismatch", func() { r.Info("i", "other", map[string]string{"version": "1"}) })
	mustPanic("info label mismatch", func() { r.Info("i", "build info", map[string]string{"version": "2"}) })
}

func TestReset(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "").Add(5)
	r.Histogram("h", "", []float64{1}).Observe(2)
	r.Reset()
	s := r.Snapshot()
	if s.Counters["c"] != 0 || s.Histograms["h"].Count != 0 || s.Histograms["h"].Sum != 0 {
		t.Errorf("reset left residue: %+v", s)
	}
}
