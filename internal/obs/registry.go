// Package obs is the unified observability layer: a process-wide metrics
// registry (lock-free counters, gauges and fixed-bucket histograms with
// Prometheus-text and JSON exposition) and a lightweight per-query tracing
// API (see trace.go) that the evaluator uses to produce EXPLAIN ANALYZE
// plans.
//
// Every storage layer registers its counters in the Default registry at
// package init: the pager (physical I/O, cache hits), the B+ trees
// (lookups, scans), the value store (reads, appends), the structural-join
// primitives and the DI baseline. A long-running process exposes them by
// writing Default.WritePrometheus to an HTTP handler or by running
// `nokstat -metrics`.
//
// Counters and gauges are single atomic words; histograms are an atomic
// word per bucket. Incrementing a metric never takes a lock — the registry
// mutex only guards metric registration, which happens once per name.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use, but counters are normally obtained from a Registry so they appear in
// expositions.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket cumulative histogram. Observations count into
// the first bucket whose upper bound is >= the value; values above every
// bound count only into the implicit +Inf bucket.
type Histogram struct {
	bounds []float64 // sorted upper bounds, exclusive of +Inf
	counts []atomic.Int64
	inf    atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, updated by CAS
}

// LatencyBuckets are the default histogram bounds for query latencies, in
// seconds: 100µs up to ~10s in roughly 3× steps.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs))}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	idx := sort.SearchFloat64s(h.bounds, v)
	if idx < len(h.bounds) {
		h.counts[idx].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// snapshot returns cumulative bucket counts (per Prometheus convention) and
// the total/sum.
func (h *Histogram) snapshot() HistogramSnapshot {
	out := HistogramSnapshot{
		Bounds:     append([]float64(nil), h.bounds...),
		Cumulative: make([]int64, len(h.bounds)),
	}
	var run int64
	for i := range h.counts {
		run += h.counts[i].Load()
		out.Cumulative[i] = run
	}
	out.Count = run + h.inf.Load()
	out.Sum = h.Sum()
	return out
}

// HistogramSnapshot is a point-in-time view of a histogram. Cumulative[i]
// counts observations <= Bounds[i]; Count includes the +Inf bucket.
type HistogramSnapshot struct {
	Bounds     []float64 `json:"bounds"`
	Cumulative []int64   `json:"cumulative"`
	Count      int64     `json:"count"`
	Sum        float64   `json:"sum"`
}

// Snapshot is a point-in-time view of a whole registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Registry holds named metrics. Metric lookup/creation takes a mutex;
// updating a metric is lock-free.
type Registry struct {
	mu     sync.RWMutex
	order  []string // registration order, for stable exposition
	kinds  map[string]byte
	help   map[string]string
	ctrs   map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// Default is the process-wide registry all packages register into.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		kinds:  make(map[string]byte),
		help:   make(map[string]string),
		ctrs:   make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

const (
	kindCounter   = 'c'
	kindGauge     = 'g'
	kindHistogram = 'h'
)

// Counter returns the counter registered under name, creating it on first
// use. Registering the same name as a different kind panics: metric names
// are a process-wide contract.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if k, ok := r.kinds[name]; ok {
		if k != kindCounter {
			panic(fmt.Sprintf("obs: metric %q already registered as %c", name, k))
		}
		return r.ctrs[name]
	}
	c := &Counter{}
	r.register(name, help, kindCounter)
	r.ctrs[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if k, ok := r.kinds[name]; ok {
		if k != kindGauge {
			panic(fmt.Sprintf("obs: metric %q already registered as %c", name, k))
		}
		return r.gauges[name]
	}
	g := &Gauge{}
	r.register(name, help, kindGauge)
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds on first use (later calls reuse the
// original buckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if k, ok := r.kinds[name]; ok {
		if k != kindHistogram {
			panic(fmt.Sprintf("obs: metric %q already registered as %c", name, k))
		}
		return r.hists[name]
	}
	h := newHistogram(bounds)
	r.register(name, help, kindHistogram)
	r.hists[name] = h
	return h
}

func (r *Registry) register(name, help string, kind byte) {
	r.kinds[name] = kind
	r.help[name] = help
	r.order = append(r.order, name)
}

// Snapshot returns a consistent-enough point-in-time view: each metric is
// read atomically; the set of metrics is read under the registry lock.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.ctrs)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for n, c := range r.ctrs {
		s.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = g.Value()
	}
	for n, h := range r.hists {
		s.Histograms[n] = h.snapshot()
	}
	return s
}

// Reset zeroes every metric (between benchmark phases; exposition formats
// assume counters are cumulative, so production code should never reset).
func (r *Registry) Reset() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.ctrs {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.hists {
		for i := range h.counts {
			h.counts[i].Store(0)
		}
		h.inf.Store(0)
		h.count.Store(0)
		h.sum.Store(0)
	}
}

// formatFloat renders a float the way Prometheus text format expects.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4), metrics in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, name := range r.order {
		if help := r.help[name]; help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, help); err != nil {
				return err
			}
		}
		var err error
		switch r.kinds[name] {
		case kindCounter:
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, r.ctrs[name].Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, r.gauges[name].Value())
		case kindHistogram:
			if _, err = fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
				return err
			}
			hs := r.hists[name].snapshot()
			for i, b := range hs.Bounds {
				if _, err = fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatFloat(b), hs.Cumulative[i]); err != nil {
					return err
				}
			}
			if _, err = fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, hs.Count); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, formatFloat(hs.Sum), name, hs.Count)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes a Snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
