// Package obs is the unified observability layer: a process-wide metrics
// registry (lock-free counters, gauges and fixed-bucket histograms with
// Prometheus-text and JSON exposition) and a lightweight per-query tracing
// API (see trace.go) that the evaluator uses to produce EXPLAIN ANALYZE
// plans.
//
// Every storage layer registers its counters in the Default registry at
// package init: the pager (physical I/O, cache hits), the B+ trees
// (lookups, scans), the value store (reads, appends), the structural-join
// primitives and the DI baseline. A long-running process exposes them by
// writing Default.WritePrometheus to an HTTP handler or by running
// `nokstat -metrics`.
//
// Counters and gauges are single atomic words; histograms are an atomic
// word per bucket. Incrementing a metric never takes a lock — the registry
// mutex only guards metric registration, which happens once per name.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use, but counters are normally obtained from a Registry so they appear in
// expositions.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket cumulative histogram. Observations count into
// the first bucket whose upper bound is >= the value; values above every
// bound count only into the implicit +Inf bucket.
type Histogram struct {
	bounds []float64 // sorted upper bounds, exclusive of +Inf
	counts []atomic.Int64
	inf    atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, updated by CAS
	// exemplars holds one exemplar per bucket (last index is +Inf),
	// replaced wholesale on each ObserveWithExemplar — lock-free, last
	// writer wins.
	exemplars []atomic.Pointer[Exemplar]
}

// Exemplar ties one observation to an identifying label (e.g. a query ID),
// letting a histogram bucket point back at a concrete recent event in the
// flight recorder.
type Exemplar struct {
	LabelKey   string    `json:"label_key"`
	LabelValue string    `json:"label_value"`
	Value      float64   `json:"value"`
	Time       time.Time `json:"time"`
}

// LatencyBuckets are the default histogram bounds for query latencies, in
// seconds: 100µs up to ~10s in roughly 3× steps.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{
		bounds:    bs,
		counts:    make([]atomic.Int64, len(bs)),
		exemplars: make([]atomic.Pointer[Exemplar], len(bs)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	idx := sort.SearchFloat64s(h.bounds, v)
	if idx < len(h.bounds) {
		h.counts[idx].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// exemplarMinAge is how long a bucket keeps its exemplar before a new
// observation may replace it. Exemplars are samples — one recent event per
// bucket is all an investigation needs — and the throttle keeps the
// per-observation cost at an atomic load instead of an allocation when a
// bucket is hot.
const exemplarMinAge = 250 * time.Millisecond

// ObserveWithExemplar records one value and attaches an exemplar to its
// bucket — one atomic pointer swap on top of Observe, last writer wins.
// Refreshes are rate-limited per bucket (see exemplarMinAge).
func (h *Histogram) ObserveWithExemplar(v float64, labelKey, labelValue string) {
	idx := sort.SearchFloat64s(h.bounds, v)
	now := time.Now()
	if cur := h.exemplars[idx].Load(); cur == nil || now.Sub(cur.Time) >= exemplarMinAge {
		h.exemplars[idx].Store(&Exemplar{
			LabelKey:   labelKey,
			LabelValue: labelValue,
			Value:      v,
			Time:       now,
		})
	}
	h.Observe(v)
}

// ObserveWithExemplarID is ObserveWithExemplar for a numeric label value
// (e.g. a query ID), formatting the number only when the bucket's exemplar
// slot is actually refreshed — the hot path stays allocation-free.
func (h *Histogram) ObserveWithExemplarID(v float64, labelKey string, id uint64) {
	idx := sort.SearchFloat64s(h.bounds, v)
	now := time.Now()
	if cur := h.exemplars[idx].Load(); cur == nil || now.Sub(cur.Time) >= exemplarMinAge {
		h.exemplars[idx].Store(&Exemplar{
			LabelKey:   labelKey,
			LabelValue: strconv.FormatUint(id, 10),
			Value:      v,
			Time:       now,
		})
	}
	h.Observe(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// snapshot returns cumulative bucket counts (per Prometheus convention) and
// the total/sum.
func (h *Histogram) snapshot() HistogramSnapshot {
	out := HistogramSnapshot{
		Bounds:     append([]float64(nil), h.bounds...),
		Cumulative: make([]int64, len(h.bounds)),
	}
	var run int64
	for i := range h.counts {
		run += h.counts[i].Load()
		out.Cumulative[i] = run
	}
	out.Count = run + h.inf.Load()
	out.Sum = h.Sum()
	for i := range h.exemplars {
		if ex := h.exemplars[i].Load(); ex != nil {
			out.Exemplars = append(out.Exemplars, ex)
		}
	}
	return out
}

// HistogramSnapshot is a point-in-time view of a histogram. Cumulative[i]
// counts observations <= Bounds[i]; Count includes the +Inf bucket.
// Exemplars holds the most recent exemplar of each bucket that has one.
type HistogramSnapshot struct {
	Bounds     []float64   `json:"bounds"`
	Cumulative []int64     `json:"cumulative"`
	Count      int64       `json:"count"`
	Sum        float64     `json:"sum"`
	Exemplars  []*Exemplar `json:"exemplars,omitempty"`
}

// Snapshot is a point-in-time view of a whole registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	// Infos maps info-metric names to their constant labels (value always 1).
	Infos map[string]map[string]string `json:"infos,omitempty"`
}

// labeledSeries is one series of a labeled-gauge family: its rendered
// constant labels and the gauge holding its value.
type labeledSeries struct {
	labels string // rendered {k="v",...}, the series key within the family
	g      *Gauge
}

// Registry holds named metrics. Metric lookup/creation takes a mutex;
// updating a metric is lock-free.
type Registry struct {
	mu     sync.RWMutex
	order  []string // registration order, for stable exposition
	kinds  map[string]byte
	help   map[string]string
	ctrs   map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
	infos  map[string][][2]string     // sorted constant labels, value fixed at 1
	series map[string][]labeledSeries // labeled-gauge families, series in registration order
}

// Default is the process-wide registry all packages register into.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		kinds:  make(map[string]byte),
		help:   make(map[string]string),
		ctrs:   make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
		infos:  make(map[string][][2]string),
		series: make(map[string][]labeledSeries),
	}
}

const (
	kindCounter      = 'c'
	kindGauge        = 'g'
	kindHistogram    = 'h'
	kindInfo         = 'i'
	kindLabeledGauge = 'G'
)

// checkExisting validates a re-registration under the registry lock: the
// kind AND the help string must match the first registration exactly.
// Metric names are a process-wide contract — two packages claiming the same
// name with different meanings is a bug that silent first-wins behavior
// would hide, so both mismatches panic.
func (r *Registry) checkExisting(name, help string, kind byte) bool {
	k, ok := r.kinds[name]
	if !ok {
		return false
	}
	if k != kind {
		panic(fmt.Sprintf("obs: metric %q already registered as %c, now requested as %c", name, k, kind))
	}
	if r.help[name] != help {
		panic(fmt.Sprintf("obs: metric %q re-registered with different help (%q vs %q)", name, r.help[name], help))
	}
	return true
}

// Counter returns the counter registered under name, creating it on first
// use. Registering the same name as a different kind — or with a different
// help string — panics: metric names are a process-wide contract.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.checkExisting(name, help, kindCounter) {
		return r.ctrs[name]
	}
	c := &Counter{}
	r.register(name, help, kindCounter)
	r.ctrs[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.checkExisting(name, help, kindGauge) {
		return r.gauges[name]
	}
	g := &Gauge{}
	r.register(name, help, kindGauge)
	r.gauges[name] = g
	return g
}

// GaugeWithLabels returns the gauge series registered under the family
// name with the given constant labels, creating the family and the series
// on first use. All series of one family share the help string; the
// exposition renders one # HELP/# TYPE header followed by one
// name{labels} line per series, which is how per-shard state (e.g.
// nok_shard_breaker_state{shard="3"}) lands in Prometheus with real
// labels instead of name suffixes.
func (r *Registry) GaugeWithLabels(name, help string, labels map[string]string) *Gauge {
	ls := make([][2]string, 0, len(labels))
	for k, v := range labels {
		ls = append(ls, [2]string{k, v})
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i][0] < ls[j][0] })
	key := renderLabels(ls)

	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.checkExisting(name, help, kindLabeledGauge) {
		r.register(name, help, kindLabeledGauge)
	}
	for _, s := range r.series[name] {
		if s.labels == key {
			return s.g
		}
	}
	g := &Gauge{}
	r.series[name] = append(r.series[name], labeledSeries{labels: key, g: g})
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds on first use (later calls reuse the
// original buckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.checkExisting(name, help, kindHistogram) {
		return r.hists[name]
	}
	h := newHistogram(bounds)
	r.register(name, help, kindHistogram)
	r.hists[name] = h
	return h
}

// Info registers an information metric: a gauge pinned to 1 whose payload
// is its constant labels (the Prometheus build_info idiom). Re-registering
// with identical help and labels is a no-op; any difference panics.
func (r *Registry) Info(name, help string, labels map[string]string) {
	ls := make([][2]string, 0, len(labels))
	for k, v := range labels {
		ls = append(ls, [2]string{k, v})
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i][0] < ls[j][0] })

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.checkExisting(name, help, kindInfo) {
		if fmt.Sprint(r.infos[name]) != fmt.Sprint(ls) {
			panic(fmt.Sprintf("obs: info metric %q re-registered with different labels", name))
		}
		return
	}
	r.register(name, help, kindInfo)
	r.infos[name] = ls
}

func (r *Registry) register(name, help string, kind byte) {
	r.kinds[name] = kind
	r.help[name] = help
	r.order = append(r.order, name)
}

// Snapshot returns a consistent-enough point-in-time view: each metric is
// read atomically; the set of metrics is read under the registry lock.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.ctrs)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for n, c := range r.ctrs {
		s.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = g.Value()
	}
	for n, fam := range r.series {
		for _, ls := range fam {
			s.Gauges[n+ls.labels] = ls.g.Value()
		}
	}
	for n, h := range r.hists {
		s.Histograms[n] = h.snapshot()
	}
	if len(r.infos) > 0 {
		s.Infos = make(map[string]map[string]string, len(r.infos))
		for n, ls := range r.infos {
			m := make(map[string]string, len(ls))
			for _, kv := range ls {
				m[kv[0]] = kv[1]
			}
			s.Infos[n] = m
		}
	}
	return s
}

// Reset zeroes every metric (between benchmark phases; exposition formats
// assume counters are cumulative, so production code should never reset).
func (r *Registry) Reset() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.ctrs {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, fam := range r.series {
		for _, ls := range fam {
			ls.g.v.Store(0)
		}
	}
	for _, h := range r.hists {
		for i := range h.counts {
			h.counts[i].Store(0)
		}
		h.inf.Store(0)
		h.count.Store(0)
		h.sum.Store(0)
		for i := range h.exemplars {
			h.exemplars[i].Store(nil)
		}
	}
}

// formatFloat renders a float the way Prometheus text format expects.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP string per the Prometheus text format:
// backslash and newline only (double quotes are legal in help text).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabelValue escapes a label value per the Prometheus text format:
// backslash, double quote, and newline.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// renderLabels renders a sorted constant-label set as {k="v",...}.
func renderLabels(ls [][2]string) string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, kv := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, kv[0], escapeLabelValue(kv[1]))
	}
	b.WriteByte('}')
	return b.String()
}

// renderExemplar renders an OpenMetrics exemplar suffix for a bucket line.
func renderExemplar(ex *Exemplar) string {
	if ex == nil {
		return ""
	}
	return fmt.Sprintf(" # {%s=\"%s\"} %s %s",
		ex.LabelKey, escapeLabelValue(ex.LabelValue),
		formatFloat(ex.Value),
		strconv.FormatFloat(float64(ex.Time.UnixNano())/1e9, 'f', 3, 64))
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4), metrics in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.write(w, false)
}

// WriteOpenMetrics writes the registry in an OpenMetrics-style text format:
// the same metric lines as WritePrometheus plus per-bucket exemplars
// (`# {label="value"} v ts` suffixes) and a terminating `# EOF`. Scrapers
// that want exemplars (linking latency buckets to flight-recorder query
// IDs) read this; plain 0.0.4 consumers should use WritePrometheus.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	if err := r.write(w, true); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "# EOF")
	return err
}

func (r *Registry) write(w io.Writer, exemplars bool) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, name := range r.order {
		if help := r.help[name]; help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(help)); err != nil {
				return err
			}
		}
		var err error
		switch r.kinds[name] {
		case kindCounter:
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, r.ctrs[name].Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, r.gauges[name].Value())
		case kindLabeledGauge:
			if _, err = fmt.Fprintf(w, "# TYPE %s gauge\n", name); err != nil {
				return err
			}
			for _, ls := range r.series[name] {
				if _, err = fmt.Fprintf(w, "%s%s %d\n", name, ls.labels, ls.g.Value()); err != nil {
					return err
				}
			}
		case kindInfo:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s%s 1\n", name, name, renderLabels(r.infos[name]))
		case kindHistogram:
			if _, err = fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
				return err
			}
			h := r.hists[name]
			hs := h.snapshot()
			for i, b := range hs.Bounds {
				ex := ""
				if exemplars {
					ex = renderExemplar(h.exemplars[i].Load())
				}
				if _, err = fmt.Fprintf(w, "%s_bucket{le=%q} %d%s\n", name, formatFloat(b), hs.Cumulative[i], ex); err != nil {
					return err
				}
			}
			ex := ""
			if exemplars {
				ex = renderExemplar(h.exemplars[len(hs.Bounds)].Load())
			}
			if _, err = fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d%s\n", name, hs.Count, ex); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, formatFloat(hs.Sum), name, hs.Count)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes a Snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
