package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"
)

// Trace records the timed phases of one query evaluation as a tree of
// spans. It is the substrate of EXPLAIN ANALYZE: the evaluator opens a span
// per phase (parse, partition, starting-point lookup, NoK matching,
// structural join) and annotates it with counters; String renders the
// executed plan.
//
// All methods are nil-safe: a nil *Trace (or a span obtained from one) is a
// no-op, so instrumented code can call tr.Start(...) unconditionally and
// tracing costs nothing when disabled.
//
// A Trace may be shared across goroutines — span creation and field updates
// take the trace mutex — but it is designed for the evaluator's
// one-goroutine-per-query model, where that lock is never contended.
type Trace struct {
	mu   sync.Mutex
	root *Span
}

// Span is one timed phase. Create children with Start, close with End, and
// attach ordered key=value annotations with Set.
type Span struct {
	tr       *Trace
	name     string
	start    time.Time
	duration time.Duration
	ended    bool
	children []*Span
	fields   []field
}

type field struct {
	key string
	val string
}

// New starts a trace whose root span carries the given name (conventionally
// the query text).
func New(name string) *Trace {
	t := &Trace{}
	t.root = &Span{tr: t, name: name, start: time.Now()}
	return t
}

// Root returns the root span.
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Start opens a child span of the root.
func (t *Trace) Start(name string) *Span {
	return t.Root().Start(name)
}

// Finish ends the root span (and with it the total duration).
func (t *Trace) Finish() {
	t.Root().End()
}

// Start opens a child span of s.
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	c := &Span{tr: s.tr, name: name, start: time.Now()}
	s.children = append(s.children, c)
	return c
}

// End closes the span, fixing its duration. Ending twice keeps the first
// duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if !s.ended {
		s.duration = time.Since(s.start)
		s.ended = true
	}
}

// Set attaches (or replaces) an annotation on the span. Values are rendered
// with fmt.Sprint; durations are rounded for readability.
func (s *Span) Set(key string, value any) {
	if s == nil {
		return
	}
	var v string
	switch x := value.(type) {
	case time.Duration:
		v = roundDuration(x).String()
	case float64:
		v = fmt.Sprintf("%.3g", x)
	default:
		v = fmt.Sprint(value)
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	for i := range s.fields {
		if s.fields[i].key == key {
			s.fields[i].val = v
			return
		}
	}
	s.fields = append(s.fields, field{key, v})
}

// Duration returns the span's recorded duration (zero until End).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	return s.duration
}

// Field returns the rendered value of an annotation, if set.
func (s *Span) Field(key string) (string, bool) {
	if s == nil {
		return "", false
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	for _, f := range s.fields {
		if f.key == key {
			return f.val, true
		}
	}
	return "", false
}

func roundDuration(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(time.Microsecond)
	default:
		return d.Round(time.Nanosecond)
	}
}

// String renders the trace as an indented plan tree:
//
//	query //a/x  [1.2ms]  results=3
//	├─ parse  [17µs]
//	├─ partition  [1µs]  partitions=2
//	└─ ...
func (t *Trace) String() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var b strings.Builder
	t.root.render(&b, "", "", true)
	return b.String()
}

// render writes the span line and recurses; selfPrefix precedes this span's
// line, childPrefix its children's lines. Caller holds the trace mutex.
func (s *Span) render(b *strings.Builder, selfPrefix, childPrefix string, isRoot bool) {
	b.WriteString(selfPrefix)
	b.WriteString(s.name)
	if s.ended {
		fmt.Fprintf(b, "  [%s]", roundDuration(s.duration))
	}
	for _, f := range s.fields {
		fmt.Fprintf(b, "  %s=%s", f.key, f.val)
	}
	b.WriteByte('\n')
	for i, c := range s.children {
		last := i == len(s.children)-1
		branch, cont := "├─ ", "│  "
		if last {
			branch, cont = "└─ ", "   "
		}
		c.render(b, childPrefix+branch, childPrefix+cont, false)
	}
}

// Phase is the compact summary of one top-level span: its name and
// duration. The telemetry flight recorder stores this flattened form
// instead of retaining whole span trees.
type Phase struct {
	Name     string        `json:"name"`
	Duration time.Duration `json:"duration"`
}

// Phases summarizes the root's direct children — the evaluator's top-level
// phases (parse, partition, ext-match per partition, top-down). Unended
// spans report a zero duration.
func (t *Trace) Phases() []Phase {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Phase, 0, len(t.root.children))
	for _, c := range t.root.children {
		out = append(out, Phase{Name: c.name, Duration: c.duration})
	}
	return out
}

type ctxKey struct{}

// NewContext returns a context carrying the trace.
func NewContext(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext extracts a trace from the context; nil (a no-op trace) when
// absent.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}
