package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// golden compares got against testdata/<name> (rewriting it under -update).
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

// goldenRegistry builds a registry exercising every exposition corner:
// help-string escaping, unsorted histogram bounds, boundary and +Inf
// observations, negative gauges, and an info metric with labels that need
// escaping.
func goldenRegistry() *Registry {
	r := NewRegistry()

	c := r.Counter("nok_golden_ops_total", `operations with a backslash \ and
a newline in the help`)
	c.Add(41)
	c.Inc()

	r.Gauge("nok_golden_depth", "current depth").Set(-3)

	// Bounds given out of order: exposition must sort them ascending so
	// cumulative bucket counts are monotone (promtool rejects unsorted le).
	h := r.Histogram("nok_golden_seconds", "operation latency", []float64{1, 0.01, 0.1})
	h.Observe(0.01) // exactly on a bound: counts into le="0.01"
	h.Observe(0.05)
	h.Observe(1)
	h.Observe(7) // beyond every bound: +Inf only

	r.Info("nok_golden_build_info", "build metadata", map[string]string{
		"version":   "v1.2.3",
		"goversion": "go1.24",
		"quoted":    `a "b" \c`,
	})
	return r
}

// TestWritePrometheusGoldenFile pins the full text exposition against a
// golden file: escaped help, sorted buckets, correct +Inf cumulative count,
// and labeled info rendering.
func TestWritePrometheusGoldenFile(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden(t, "exposition.golden", buf.Bytes())
}

// TestWriteOpenMetricsGoldenFile pins the exemplar-bearing variant. The
// exemplar is planted with a fixed timestamp so the output is stable.
func TestWriteOpenMetricsGoldenFile(t *testing.T) {
	r := goldenRegistry()
	h := r.hists["nok_golden_seconds"]
	h.exemplars[1].Store(&Exemplar{
		LabelKey:   "query_id",
		LabelValue: "42",
		Value:      0.05,
		Time:       time.Unix(1700000000, 0),
	})
	var buf bytes.Buffer
	if err := r.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	golden(t, "openmetrics.golden", buf.Bytes())
}

// TestHistogramBucketInvariants checks the structural rules promtool
// enforces on every histogram exposition: le values strictly ascending,
// cumulative counts monotone non-decreasing, +Inf equal to _count.
func TestHistogramBucketInvariants(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	lastLe := -1.0
	var lastCum int64
	var infCount, totalCount int64 = -1, -2
	sawInf := false
	const bucketPrefix = `nok_golden_seconds_bucket{le="`
	for _, line := range strings.Split(buf.String(), "\n") {
		if v, ok := strings.CutPrefix(line, "nok_golden_seconds_count "); ok {
			totalCount = mustInt(t, v)
			continue
		}
		rest, ok := strings.CutPrefix(line, bucketPrefix)
		if !ok {
			continue
		}
		leStr, cntStr, ok := strings.Cut(rest, `"} `)
		if !ok {
			t.Fatalf("malformed bucket line %q", line)
		}
		cum := mustInt(t, cntStr)
		if leStr == "+Inf" {
			sawInf = true
			infCount = cum
			if cum < lastCum {
				t.Errorf("+Inf cumulative %d < previous bucket %d", cum, lastCum)
			}
			continue
		}
		if sawInf {
			t.Error("bucket line after +Inf")
		}
		le := mustFloat(t, leStr)
		if le <= lastLe {
			t.Errorf("le %g not strictly ascending after %g", le, lastLe)
		}
		if cum < lastCum {
			t.Errorf("cumulative %d decreased from %d", cum, lastCum)
		}
		lastLe, lastCum = le, cum
	}
	if !sawInf {
		t.Fatal("no +Inf bucket emitted")
	}
	if infCount != totalCount {
		t.Errorf("+Inf bucket %d != _count %d", infCount, totalCount)
	}
}

func mustInt(t *testing.T, s string) int64 {
	t.Helper()
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		t.Fatalf("bad integer %q: %v", s, err)
	}
	return n
}

func mustFloat(t *testing.T, s string) float64 {
	t.Helper()
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad float %q: %v", s, err)
	}
	return f
}
