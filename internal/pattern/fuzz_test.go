package pattern

import "testing"

// FuzzParse throws arbitrary byte strings at the path-expression parser.
// Whatever comes in, Parse must return a tree or an error — never panic —
// and an accepted tree must be internally consistent: at least one node,
// a returning node reachable by Walk, and a non-empty rendering.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		`//book`,
		`/bib/book/title`,
		`//book[author/last="Stevens"][price<100]`,
		`//book[@year=2001]/title`,
		`/bib/book/author/following-sibling::price`,
		`//*/title`,
		`/bib/@version`,
		`//a[b="x\"y"]`,
		`//book[price<]`,
		`[`,
		`//`,
		`/a[`,
		`//a[b=]`,
		`//a[[`,
		`/a/following-sibling::`,
		`//a[b="unterminated`,
		`0.1.2`,
		"//\x00tag",
		`//a[p<1][q>2][r="s"]`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		tree, err := Parse(src)
		if err != nil {
			if tree != nil {
				t.Errorf("Parse(%q) returned both a tree and error %v", src, err)
			}
			return
		}
		if tree.NumNodes() < 1 {
			t.Errorf("Parse(%q) accepted an empty pattern tree", src)
		}
		var returning, walked int
		tree.Walk(func(n *Node, depth int) {
			if !n.IsVirtualRoot() {
				walked++
			}
			if n.Returning {
				returning++
			}
		})
		if walked != tree.NumNodes() {
			t.Errorf("Parse(%q): Walk visited %d nodes, NumNodes says %d", src, walked, tree.NumNodes())
		}
		if returning != 1 {
			t.Errorf("Parse(%q): %d returning nodes, want exactly 1", src, returning)
		}
		if r := tree.String(); r == "" {
			t.Errorf("Parse(%q): empty rendering of accepted tree", src)
		}
		// Accepted sources round-trip stability: parsing again must
		// succeed with the identical structure (the parser has no state).
		again, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q) succeeded once then failed: %v", src, err)
		} else if again.NumNodes() != tree.NumNodes() {
			t.Errorf("Parse(%q) unstable: %d nodes then %d", src, tree.NumNodes(), again.NumNodes())
		}
	})
}
