package pattern

import (
	"strings"
	"testing"
)

func TestParsePaperExample(t *testing.T) {
	// //book[author/last="Stevens"][price<100] — Figure 1(b).
	tr, err := Parse(`//book[author/last="Stevens"][price<100]`)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Root.IsVirtualRoot() {
		t.Fatal("root must be virtual")
	}
	if len(tr.Root.Children) != 1 || tr.Root.Children[0].Axis != Descendant {
		t.Fatalf("root edge: %+v", tr.Root.Children)
	}
	book := tr.Root.Children[0].To
	if book.Test != "book" || !book.Returning || tr.Return != book {
		t.Fatalf("book node: %+v", book)
	}
	if len(book.Children) != 2 {
		t.Fatalf("book children: %d", len(book.Children))
	}
	author := book.Children[0].To
	if author.Test != "author" || book.Children[0].Axis != Child {
		t.Fatalf("author: %+v", author)
	}
	last := author.Children[0].To
	if last.Test != "last" || last.Cmp != CmpEq || last.Literal != "Stevens" {
		t.Fatalf("last: %+v", last)
	}
	price := book.Children[1].To
	if price.Test != "price" || price.Cmp != CmpLt || price.Literal != "100" {
		t.Fatalf("price: %+v", price)
	}
	if tr.NumNodes() != 4 {
		t.Errorf("NumNodes = %d, want 4", tr.NumNodes())
	}
}

func TestParseSimplePaths(t *testing.T) {
	cases := []struct {
		src  string
		want string // Tree.String()
	}{
		{`/a/b/c`, `root(/a(/b(/c^)))`},
		{`//a`, `root(//a^)`},
		{`/a//b/c`, `root(/a(//b(/c^)))`},
		{`/a/*/c`, `root(/a(/*(/c^)))`},
		{`/a/@year`, `root(/a(/@year^))`},
		{`/a[b]`, `root(/a^(/b))`},
		{`/a[.="v"]`, `root(/a="v"^)`},
		{`/a[b="x"][c]`, `root(/a^(/b="x" /c))`},
		{`/a[b/c="x"]/d`, `root(/a(/b(/c="x") /d^))`},
		{`/a[@id="7"]`, `root(/a^(/@id="7"))`},
		{`/a[b>=10]`, `root(/a^(/b>="10"))`},
		{`/a[b!='x']`, `root(/a^(/b!="x"))`},
		{`/a[.//b]`, `root(/a^(//b))`},
	}
	for _, c := range cases {
		tr, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		if got := tr.String(); got != c.want {
			t.Errorf("Parse(%q) = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestParseFollowingSibling(t *testing.T) {
	tr, err := Parse(`/a/b/following-sibling::c`)
	if err != nil {
		t.Fatal(err)
	}
	a := tr.Root.Children[0].To
	if len(a.Children) != 2 {
		t.Fatalf("a should have 2 children (b and c), has %d", len(a.Children))
	}
	b, c := a.Children[0].To, a.Children[1].To
	if b.Test != "b" || c.Test != "c" {
		t.Fatalf("children: %s, %s", b.Test, c.Test)
	}
	if len(c.PrecededBy) != 1 || c.PrecededBy[0] != b {
		t.Fatalf("c.PrecededBy = %v", c.PrecededBy)
	}
	if !c.Returning {
		t.Error("returning node should be c")
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"a/b",                   // missing leading slash
		"/a[",                   // unterminated predicate
		"/a[b",                  // unterminated predicate
		"/a[.]",                 // self without comparison
		"/a[b='x]",              // unterminated literal
		"/a/'lit'",              // literal as step
		"/a[b='x']extra",        // trailing garbage
		"/a[.='x'][.='y']",      // duplicate self constraint
		"/following-sibling::a", // sibling without predecessor
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		} else if _, ok := err.(*ParseError); !ok {
			t.Errorf("Parse(%q): error %v is not *ParseError", src, err)
		}
	}
}

func TestCmpEval(t *testing.T) {
	cases := []struct {
		cmp  Cmp
		node string
		lit  string
		want bool
	}{
		{CmpEq, "Stevens", "Stevens", true},
		{CmpEq, "Stevens", "stevens", false},
		{CmpLt, "65.95", "100", true},   // numeric
		{CmpLt, "129.95", "100", false}, // numeric
		{CmpLt, "9", "10", true},        // numeric (string compare would fail)
		{CmpGt, "abc", "abd", false},    // string
		{CmpLe, "10", "10", true},
		{CmpGe, "10", "10", true},
		{CmpNe, "a", "b", true},
		{CmpNone, "anything", "x", true},
		{CmpEq, " 42 ", "42", true}, // whitespace-trimmed numeric
	}
	for _, c := range cases {
		if got := c.cmp.Eval(c.node, c.lit); got != c.want {
			t.Errorf("(%q %s %q) = %v, want %v", c.node, c.cmp, c.lit, got, c.want)
		}
	}
}

func TestPartitionSingleNoK(t *testing.T) {
	tr := MustParse(`/a/b[c][d]/e`)
	parts := Partition(tr)
	if len(parts) != 1 {
		t.Fatalf("partitions = %d, want 1", len(parts))
	}
	nodes := parts[0].Nodes()
	if len(nodes) != 6 { // root a b c d e
		t.Errorf("partition nodes = %d, want 6", len(nodes))
	}
	if len(parts[0].Links) != 0 {
		t.Error("single-NoK pattern should have no links")
	}
}

func TestPartitionPaperExample(t *testing.T) {
	tr := MustParse(`//book[author/last="Stevens"][price<100]`)
	parts := Partition(tr)
	if len(parts) != 2 {
		t.Fatalf("partitions = %d, want 2 (root | book-subtree)", len(parts))
	}
	top, sub := parts[0], parts[1]
	if !top.Root.IsVirtualRoot() || len(top.Nodes()) != 1 {
		t.Errorf("top partition: %s", top)
	}
	if sub.Root.Test != "book" || len(sub.Nodes()) != 4 {
		t.Errorf("book partition: %s", sub)
	}
	if len(top.Links) != 1 || top.Links[0].Axis != Descendant || top.Links[0].To != sub {
		t.Errorf("link: %+v", top.Links)
	}
	if sub.ParentTree() != top {
		t.Error("parent wiring broken")
	}
}

func TestPartitionChain(t *testing.T) {
	tr := MustParse(`/a//b/c//d[e="x"]`)
	parts := Partition(tr)
	if len(parts) != 3 {
		t.Fatalf("partitions = %d, want 3", len(parts))
	}
	if got := parts[0].String(); !strings.Contains(got, "root a") {
		t.Errorf("parts[0] = %s", got)
	}
	if parts[1].Root.Test != "b" || parts[2].Root.Test != "d" {
		t.Errorf("roots: %s, %s", parts[1].Root.Test, parts[2].Root.Test)
	}
	// Topological order: parent before child.
	for _, p := range parts {
		if p.ParentTree() != nil && p.ParentTree().Index() >= p.Index() {
			t.Errorf("partition %d appears before its parent %d", p.Index(), p.ParentTree().Index())
		}
	}
}

func TestPartitionBranchingLinks(t *testing.T) {
	tr := MustParse(`/a[.//b]//c`)
	parts := Partition(tr)
	if len(parts) != 3 {
		t.Fatalf("partitions = %d, want 3: %v", len(parts), parts)
	}
	if len(parts[0].Links) != 2 {
		t.Fatalf("top partition should carry both // links, has %d", len(parts[0].Links))
	}
}

func TestValueConstrainedDepths(t *testing.T) {
	tr := MustParse(`//book[author/last="Stevens"][price<100]`)
	parts := Partition(tr)
	vc := parts[1].ValueConstrained()
	if len(vc) != 2 {
		t.Fatalf("value-constrained nodes = %d, want 2", len(vc))
	}
	byTest := map[string]int{}
	for _, v := range vc {
		byTest[v.Node.Test] = v.Depth
	}
	if byTest["last"] != 2 || byTest["price"] != 1 {
		t.Errorf("depths = %v, want last:2 price:1", byTest)
	}
}

func TestPathToReturn(t *testing.T) {
	tr := MustParse(`/a//b[.//x]/c`)
	parts := Partition(tr)
	chain := PathToReturn(parts, tr)
	if len(chain) != 2 {
		t.Fatalf("chain length = %d, want 2", len(chain))
	}
	if chain[0] != parts[0] || chain[1].Root.Test != "b" {
		t.Errorf("chain = %v", chain)
	}
}

func TestCountAxes(t *testing.T) {
	tr := MustParse(`/a/b//c[d]/e`)
	local, global := CountAxes(tr)
	if local != 4 || global != 1 {
		t.Errorf("CountAxes = %d local, %d global; want 4, 1", local, global)
	}
}

func TestMatchesWildcard(t *testing.T) {
	n := &Node{Test: "*"}
	if !n.Matches("anything") {
		t.Error("* should match any tag")
	}
	n = &Node{Test: "book"}
	if n.Matches("price") || !n.Matches("book") {
		t.Error("exact test broken")
	}
}

func TestParseFollowingAxis(t *testing.T) {
	tr, err := Parse(`/a/b/following::c`)
	if err != nil {
		t.Fatal(err)
	}
	b := tr.Root.Children[0].To.Children[0].To
	if b.Test != "b" || len(b.Children) != 1 || b.Children[0].Axis != Following {
		t.Fatalf("b: %+v", b)
	}
	c := b.Children[0].To
	if c.Test != "c" || !c.Returning {
		t.Fatalf("c: %+v", c)
	}
	// following:: is a global axis: it must split partitions.
	parts := Partition(tr)
	if len(parts) != 2 || parts[0].Links[0].Axis != Following {
		t.Fatalf("partitions: %v", parts)
	}
	// And it counts as a global edge.
	local, global := CountAxes(tr)
	if local != 2 || global != 1 {
		t.Errorf("axes: %d local, %d global", local, global)
	}
}

func TestParsePrecedingSibling(t *testing.T) {
	tr, err := Parse(`/a/b/preceding-sibling::c`)
	if err != nil {
		t.Fatal(err)
	}
	a := tr.Root.Children[0].To
	if len(a.Children) != 2 {
		t.Fatalf("a children: %d", len(a.Children))
	}
	b, c := a.Children[0].To, a.Children[1].To
	if b.Test != "b" || c.Test != "c" {
		t.Fatalf("children: %s %s", b.Test, c.Test)
	}
	// The arc points the other way: b must come AFTER c.
	if len(b.PrecededBy) != 1 || b.PrecededBy[0] != c {
		t.Fatalf("b.PrecededBy = %v", b.PrecededBy)
	}
	if !c.Returning {
		t.Error("returning node should be c")
	}
}
