// Package pattern implements the pattern-tree formalism of §2: parsing a
// path expression into a pattern tree whose nodes carry tag-name and value
// constraints and whose edges carry structural-relationship constraints,
// and partitioning that tree into next-of-kin (NoK) pattern trees connected
// by global axes.
//
// The supported path language is the fragment the paper evaluates:
//
//	path       := ('/' | '//') step (('/' | '//') step)*
//	step       := axis? nametest predicate*
//	axis       := '@' | 'following-sibling::' | 'self::'
//	nametest   := NCName | '*' | '.'
//	predicate  := '[' relpath (cmp literal)? ']'
//	            | '[' '.' cmp literal ']'
//	relpath    := step (('/' | '//') step)*
//	cmp        := '=' | '!=' | '<' | '<=' | '>' | '>='
//	literal    := '"' chars '"' | '\'' chars '\'' | number
//
// Attributes are modeled as child nodes whose name carries the '@' prefix,
// matching the loader's treatment (Example 1 maps @year to a child symbol).
//
// Per §2, any XPath axis can be rewritten into {self, child, descendant,
// following}; we additionally keep following-sibling explicit because it is
// a *local* axis that stays inside a NoK pattern tree (the ⊲ arcs that make
// the children of a pattern node a DAG).
package pattern

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// Axis is a structural relationship between pattern nodes.
type Axis uint8

const (
	// Child is the '/' axis — local, stays within a NoK pattern tree.
	Child Axis = iota
	// Descendant is the '//' axis — global, partitions NoK trees.
	Descendant
	// FollowingSibling is the '⊲' axis — local (a sibling-order arc).
	FollowingSibling
	// Following is the '◀' axis — global.
	Following
)

// String returns the axis in the paper's notation.
func (a Axis) String() string {
	switch a {
	case Child:
		return "/"
	case Descendant:
		return "//"
	case FollowingSibling:
		return "⊲"
	case Following:
		return "◀"
	default:
		return fmt.Sprintf("Axis(%d)", uint8(a))
	}
}

// Local reports whether the axis stays inside a NoK pattern tree.
func (a Axis) Local() bool { return a == Child || a == FollowingSibling }

// Cmp is a value-comparison operator.
type Cmp uint8

const (
	CmpNone Cmp = iota
	CmpEq
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

// String returns the operator's source form.
func (c Cmp) String() string {
	switch c {
	case CmpNone:
		return ""
	case CmpEq:
		return "="
	case CmpNe:
		return "!="
	case CmpLt:
		return "<"
	case CmpLe:
		return "<="
	case CmpGt:
		return ">"
	case CmpGe:
		return ">="
	default:
		return fmt.Sprintf("Cmp(%d)", uint8(c))
	}
}

// Eval applies the comparison to a node value and the literal. When both
// sides parse as numbers the comparison is numeric (the paper's price<100);
// otherwise it is a string comparison.
func (c Cmp) Eval(nodeValue, literal string) bool {
	if c == CmpNone {
		return true
	}
	var ord int
	if a, errA := strconv.ParseFloat(strings.TrimSpace(nodeValue), 64); errA == nil {
		if b, errB := strconv.ParseFloat(literal, 64); errB == nil {
			switch {
			case a < b:
				ord = -1
			case a > b:
				ord = 1
			}
			return c.ordMatches(ord)
		}
	}
	ord = strings.Compare(nodeValue, literal)
	return c.ordMatches(ord)
}

func (c Cmp) ordMatches(ord int) bool {
	switch c {
	case CmpEq:
		return ord == 0
	case CmpNe:
		return ord != 0
	case CmpLt:
		return ord < 0
	case CmpLe:
		return ord <= 0
	case CmpGt:
		return ord > 0
	case CmpGe:
		return ord >= 0
	default:
		return true
	}
}

// Node is a pattern tree node: a tag-name constraint, an optional value
// constraint, child edges, and sibling-order arcs.
type Node struct {
	// Test is the tag name to match; "*" matches any element; "" only on
	// the virtual root (which matches the document's virtual root, the
	// parent of the root element).
	Test string

	// Cmp/Literal is the value constraint on this node, e.g. ="Stevens".
	Cmp     Cmp
	Literal string

	// Returning marks the (single) returning node of the pattern tree.
	Returning bool

	// Children are the outgoing edges to child pattern nodes, in source
	// order. Edges with local axes stay in this node's NoK pattern tree.
	Children []*Edge

	// PrecededBy lists sibling nodes (children of the same parent) that
	// must occur before this node in document order — the incoming ⊲ arcs
	// that give the sibling DAG its partial order. A node is a "frontier"
	// (§3) while its unsatisfied PrecededBy set is empty.
	PrecededBy []*Node

	// id is a stable ordinal for deterministic debugging output.
	id int
}

// Edge is a pattern tree edge.
type Edge struct {
	Axis Axis
	To   *Node
}

// Tree is a parsed pattern tree.
type Tree struct {
	// Root is the virtual root (Test == ""); its edges lead to the first
	// step(s) of the path.
	Root *Node
	// Return is the returning node (exactly one).
	Return *Node
	// Source is the original expression.
	Source string

	nodes int

	strOnce sync.Once
	str     string
}

// NumNodes returns the number of pattern nodes excluding the virtual root.
func (t *Tree) NumNodes() int { return t.nodes }

// IsVirtualRoot reports whether n is the pattern tree's virtual root.
func (n *Node) IsVirtualRoot() bool { return n.Test == "" }

// Matches reports whether the node's tag-name constraint accepts name.
func (n *Node) Matches(name string) bool {
	return n.Test == "*" || n.Test == name
}

// HasValueConstraint reports whether a value constraint is attached.
func (n *Node) HasValueConstraint() bool { return n.Cmp != CmpNone }

// String renders the pattern tree in a compact parenthesized form. Trees
// are immutable after parsing, so the rendering is computed once and
// reused: it doubles as the plan-cache key and the telemetry record's
// normalized expression, both on the per-query hot path.
func (t *Tree) String() string {
	t.strOnce.Do(func() { t.str = t.render() })
	return t.str
}

func (t *Tree) render() string {
	var sb strings.Builder
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.IsVirtualRoot() {
			sb.WriteString("root")
		} else {
			sb.WriteString(n.Test)
		}
		if n.Cmp != CmpNone {
			fmt.Fprintf(&sb, "%s%q", n.Cmp, n.Literal)
		}
		if n.Returning {
			sb.WriteString("^")
		}
		if len(n.PrecededBy) > 0 {
			sb.WriteString("{after")
			for _, p := range n.PrecededBy {
				sb.WriteString(" " + p.Test)
			}
			sb.WriteString("}")
		}
		if len(n.Children) > 0 {
			sb.WriteString("(")
			for i, e := range n.Children {
				if i > 0 {
					sb.WriteString(" ")
				}
				sb.WriteString(e.Axis.String())
				walk(e.To)
			}
			sb.WriteString(")")
		}
	}
	walk(t.Root)
	return sb.String()
}

// Walk visits every node in the tree (preorder, virtual root included).
func (t *Tree) Walk(fn func(n *Node, depth int)) {
	var rec func(n *Node, d int)
	rec = func(n *Node, d int) {
		fn(n, d)
		for _, e := range n.Children {
			rec(e.To, d+1)
		}
	}
	rec(t.Root, 0)
}
