package pattern

import (
	"fmt"
	"strings"
)

// ParseError reports a malformed path expression with its byte position.
type ParseError struct {
	Pos int
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("pattern: position %d: %s", e.Pos, e.Msg)
}

// Parse compiles a path expression into a pattern tree. The last step of
// the main path becomes the returning node.
func Parse(src string) (*Tree, error) {
	p := &parser{src: src}
	t, err := p.parse()
	if err != nil {
		return nil, err
	}
	t.Source = src
	return t, nil
}

// MustParse is Parse for tests and static expressions.
func MustParse(src string) *Tree {
	t, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return t
}

type parser struct {
	src    string
	pos    int
	nextID int
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Pos: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) eof() bool { return p.pos >= len(p.src) }

func (p *parser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) skipSpace() {
	for !p.eof() && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

// consume reports whether the source continues with s, advancing past it.
func (p *parser) consume(s string) bool {
	if strings.HasPrefix(p.src[p.pos:], s) {
		p.pos += len(s)
		return true
	}
	return false
}

func (p *parser) newNode(test string) *Node {
	p.nextID++
	return &Node{Test: test, id: p.nextID}
}

// parse parses the whole expression.
func (p *parser) parse() (*Tree, error) {
	p.skipSpace()
	if p.eof() {
		return nil, p.errf("empty path expression")
	}
	root := p.newNode("")
	t := &Tree{Root: root}
	last, err := p.parseSteps(t, root, true)
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if !p.eof() {
		return nil, p.errf("unexpected trailing input %q", p.src[p.pos:])
	}
	last.Returning = true
	t.Return = last
	return t, nil
}

// parseSteps parses ('/'|'//') step ... sequences below anchor and returns
// the last step's node. At the top level (top=true) a leading slash is
// required; in predicates (top=false) the path is relative and the first
// step attaches with the Child axis unless it begins with '//' or '@'.
func (p *parser) parseSteps(t *Tree, anchor *Node, top bool) (*Node, error) {
	cur := anchor
	first := true
	for {
		p.skipSpace()
		var axis Axis
		switch {
		case p.consume("//"):
			axis = Descendant
		case p.consume("/"):
			axis = Child
		default:
			if !first || top {
				if first {
					return nil, p.errf("path must start with '/' or '//'")
				}
				return cur, nil
			}
			// Relative first step in a predicate.
			axis = Child
		}
		node, sAxis, err := p.parseStep(t)
		if err != nil {
			return nil, err
		}
		switch sAxis {
		case stepSibling, stepPreceding:
			// following-sibling:: / preceding-sibling:: — attach as a
			// sibling of cur (a child of cur's parent) with a ⊲ arc in the
			// appropriate direction; §2 notes preceding-sibling arcs are
			// part of the NoK (local) fragment.
			parent := p.parentOf(t, cur)
			if parent == nil {
				return nil, p.errf("sibling axis has no preceding step")
			}
			parent.Children = append(parent.Children, &Edge{Axis: Child, To: node})
			if sAxis == stepSibling {
				node.PrecededBy = append(node.PrecededBy, cur)
			} else {
				cur.PrecededBy = append(cur.PrecededBy, node)
			}
		case stepFollowing:
			// following:: — the paper's ◀ global axis: the step matches
			// nodes entirely after cur's subtree in document order.
			cur.Children = append(cur.Children, &Edge{Axis: Following, To: node})
		default:
			cur.Children = append(cur.Children, &Edge{Axis: axis, To: node})
		}
		t.nodes++
		cur = node
		first = false
		// Predicates attach to the node just parsed.
		if err := p.parsePredicates(t, cur); err != nil {
			return nil, err
		}
	}
}

// parentOf finds the parent of n (linear walk; pattern trees are tiny).
func (p *parser) parentOf(t *Tree, n *Node) *Node {
	var found *Node
	t.Walk(func(m *Node, _ int) {
		for _, e := range m.Children {
			if e.To == n {
				found = m
			}
		}
	})
	return found
}

// stepAxis classifies a step's explicit axis prefix.
type stepAxis uint8

const (
	stepChild stepAxis = iota
	stepSibling
	stepPreceding
	stepFollowing
)

// parseStep parses one step: optional axis prefix plus a name test.
func (p *parser) parseStep(t *Tree) (*Node, stepAxis, error) {
	p.skipSpace()
	axis := stepChild
	switch {
	case p.consume("following-sibling::"):
		axis = stepSibling
	case p.consume("preceding-sibling::"):
		axis = stepPreceding
	case p.consume("following::"):
		axis = stepFollowing
	case p.consume("child::"):
		// default axis, explicit form
	case p.consume("self::"):
		return nil, 0, p.errf("self:: steps are only meaningful in predicates; use '.'")
	}
	if p.consume("@") {
		name, err := p.parseName()
		if err != nil {
			return nil, 0, err
		}
		return p.newNode("@" + name), axis, nil
	}
	if p.consume("*") {
		return p.newNode("*"), axis, nil
	}
	name, err := p.parseName()
	if err != nil {
		return nil, 0, err
	}
	return p.newNode(name), axis, nil
}

func (p *parser) parseName() (string, error) {
	start := p.pos
	for !p.eof() {
		c := p.src[p.pos]
		if c == '/' || c == '[' || c == ']' || c == '=' || c == '!' || c == '<' ||
			c == '>' || c == ' ' || c == '\t' || c == '@' || c == '*' || c == '"' || c == '\'' {
			break
		}
		p.pos++
	}
	if p.pos == start {
		return "", p.errf("expected a name")
	}
	return p.src[start:p.pos], nil
}

// parsePredicates parses zero or more [...] predicates on node n.
func (p *parser) parsePredicates(t *Tree, n *Node) error {
	for {
		p.skipSpace()
		if !p.consume("[") {
			return nil
		}
		if err := p.parsePredicate(t, n); err != nil {
			return err
		}
		p.skipSpace()
		if !p.consume("]") {
			return p.errf("expected ']'")
		}
	}
}

// parsePredicate parses the contents of one predicate on node n.
func (p *parser) parsePredicate(t *Tree, n *Node) error {
	p.skipSpace()
	// '.' starts either a self value constraint [. op literal] or a
	// dot-relative path [./b], [.//b].
	if p.consume(".") {
		if p.peek() != '/' {
			cmp, lit, err := p.parseComparison()
			if err != nil {
				return err
			}
			if cmp == CmpNone {
				return p.errf("predicate '.' requires a comparison or a relative path")
			}
			if n.Cmp != CmpNone {
				return p.errf("node %s already has a value constraint", n.Test)
			}
			n.Cmp, n.Literal = cmp, lit
			return nil
		}
		// fall through: the '/'-led remainder parses as a relative path.
	}
	// Relative path, optionally compared against a literal.
	last, err := p.parseSteps(t, n, false)
	if err != nil {
		return err
	}
	cmp, lit, err := p.parseComparison()
	if err != nil {
		return err
	}
	if cmp != CmpNone {
		if last.Cmp != CmpNone {
			return p.errf("node %s already has a value constraint", last.Test)
		}
		last.Cmp, last.Literal = cmp, lit
	}
	return nil
}

// parseComparison parses an optional comparison operator and literal.
func (p *parser) parseComparison() (Cmp, string, error) {
	p.skipSpace()
	var cmp Cmp
	switch {
	case p.consume("!="):
		cmp = CmpNe
	case p.consume("<="):
		cmp = CmpLe
	case p.consume(">="):
		cmp = CmpGe
	case p.consume("="):
		cmp = CmpEq
	case p.consume("<"):
		cmp = CmpLt
	case p.consume(">"):
		cmp = CmpGt
	default:
		return CmpNone, "", nil
	}
	p.skipSpace()
	lit, err := p.parseLiteral()
	if err != nil {
		return CmpNone, "", err
	}
	return cmp, lit, nil
}

func (p *parser) parseLiteral() (string, error) {
	if p.eof() {
		return "", p.errf("expected a literal")
	}
	quote := p.peek()
	if quote == '"' || quote == '\'' {
		p.pos++
		start := p.pos
		for !p.eof() && p.src[p.pos] != quote {
			p.pos++
		}
		if p.eof() {
			return "", p.errf("unterminated string literal")
		}
		lit := p.src[start:p.pos]
		p.pos++
		return lit, nil
	}
	// Number.
	start := p.pos
	for !p.eof() {
		c := p.src[p.pos]
		if (c >= '0' && c <= '9') || c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E' {
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return "", p.errf("expected a literal")
	}
	return p.src[start:p.pos], nil
}
