package pattern

import (
	"fmt"
	"strings"
)

// This file implements the partitioning step of §2: any pattern tree splits
// into NoK pattern trees (maximal subtrees connected by local axes — '/'
// and '⊲') interconnected by global axes ('//' and '◀'). NoK pattern
// matching handles each NoK tree; structural joins recombine them.

// NoKTree is one partition: a pattern subtree reachable from Root through
// local axes only.
type NoKTree struct {
	// Root is the NoK tree's root pattern node. For the partition that
	// contains the pattern tree's virtual root, Root.IsVirtualRoot() holds.
	Root *Node

	// Links lead to child NoK trees: From is a node inside this NoK tree,
	// Axis the global axis, To the child partition.
	Links []*Link

	// Parent is the incoming link, nil for the top partition.
	Parent *Link

	// index is the partition's ordinal in Partition()'s result.
	index int
}

// Link is a global-axis connection between two NoK trees.
type Link struct {
	From *Node
	Axis Axis
	To   *NoKTree
	// parent is the NoK tree containing From.
	parent *NoKTree
}

// Index returns the partition's ordinal (0 = the partition holding the
// virtual root).
func (nt *NoKTree) Index() int { return nt.index }

// ParentTree returns the NoK tree this partition hangs off, nil for the top.
func (nt *NoKTree) ParentTree() *NoKTree {
	if nt.Parent == nil {
		return nil
	}
	return nt.Parent.parent
}

// Nodes returns this partition's pattern nodes in preorder (local edges
// only).
func (nt *NoKTree) Nodes() []*Node {
	var out []*Node
	var rec func(n *Node)
	rec = func(n *Node) {
		out = append(out, n)
		for _, e := range n.Children {
			if e.Axis.Local() {
				rec(e.To)
			}
		}
	}
	rec(nt.Root)
	return out
}

// LocalChildren returns n's children connected by local axes (the children
// that participate in NoK matching at n).
func LocalChildren(n *Node) []*Node {
	var out []*Node
	for _, e := range n.Children {
		if e.Axis.Local() {
			out = append(out, e.To)
		}
	}
	return out
}

// Contains reports whether node n belongs to this partition.
func (nt *NoKTree) Contains(n *Node) bool {
	for _, m := range nt.Nodes() {
		if m == n {
			return true
		}
	}
	return false
}

// ValueConstrained returns the partition's nodes that carry value
// constraints, with their depth below the NoK root (root = 0). The depths
// are exact because within a NoK tree every edge is a child edge.
func (nt *NoKTree) ValueConstrained() []ValueNode {
	var out []ValueNode
	var rec func(n *Node, d int)
	rec = func(n *Node, d int) {
		if n.HasValueConstraint() {
			out = append(out, ValueNode{Node: n, Depth: d})
		}
		for _, e := range n.Children {
			if e.Axis.Local() {
				rec(e.To, d+1)
			}
		}
	}
	rec(nt.Root, 0)
	return out
}

// ValueNode is a value-constrained node and its depth below its NoK root.
type ValueNode struct {
	Node  *Node
	Depth int
}

// String renders the partition for debugging.
func (nt *NoKTree) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "NoK#%d[", nt.index)
	for i, n := range nt.Nodes() {
		if i > 0 {
			sb.WriteString(" ")
		}
		if n.IsVirtualRoot() {
			sb.WriteString("root")
		} else {
			sb.WriteString(n.Test)
		}
	}
	sb.WriteString("]")
	for _, l := range nt.Links {
		fmt.Fprintf(&sb, " --%s(%s)-->NoK#%d", l.Axis, l.From.Test, l.To.index)
	}
	return sb.String()
}

// Partition splits t into NoK pattern trees. The result is in topological
// order: result[0] holds the virtual root, and every partition appears
// after its parent. Structural-join planning walks this slice backwards
// for the bottom-up pass and forwards for the top-down pass.
func Partition(t *Tree) []*NoKTree {
	var out []*NoKTree
	var build func(root *Node, parent *Link) *NoKTree
	build = func(root *Node, parent *Link) *NoKTree {
		nt := &NoKTree{Root: root, Parent: parent, index: len(out)}
		out = append(out, nt)
		// Find global edges inside this partition.
		var rec func(n *Node)
		rec = func(n *Node) {
			for _, e := range n.Children {
				if e.Axis.Local() {
					rec(e.To)
					continue
				}
				link := &Link{From: n, Axis: e.Axis, parent: nt}
				nt.Links = append(nt.Links, link)
				link.To = build(e.To, link)
			}
		}
		rec(root)
		return nt
	}
	build(t.Root, nil)
	return out
}

// TreeOf returns the partition that contains node n.
func TreeOf(parts []*NoKTree, n *Node) *NoKTree {
	for _, p := range parts {
		if p.Contains(n) {
			return p
		}
	}
	return nil
}

// PathToReturn returns the chain of partitions from the top partition down
// to the one containing the returning node, inclusive.
func PathToReturn(parts []*NoKTree, t *Tree) []*NoKTree {
	target := TreeOf(parts, t.Return)
	if target == nil {
		return nil
	}
	var chain []*NoKTree
	for nt := target; nt != nil; nt = nt.ParentTree() {
		chain = append(chain, nt)
	}
	// Reverse to top-down order.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain
}

// CountAxes tallies local vs global edges in the tree — the statistic
// behind the paper's claim that ~2/3 of structural relationships in
// XQuery Use Cases are '/' (§1).
func CountAxes(t *Tree) (local, global int) {
	t.Walk(func(n *Node, _ int) {
		for _, e := range n.Children {
			if e.Axis.Local() {
				local++
			} else {
				global++
			}
		}
	})
	return local, global
}
