package pattern

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestQuickParserNeverPanics feeds arbitrary strings to the parser: it must
// return a value or an error, never panic, and never accept input with
// unbalanced brackets.
func TestQuickParserNeverPanics(t *testing.T) {
	f := func(s string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %q: %v", s, r)
				ok = false
			}
		}()
		tr, err := Parse(s)
		if err != nil {
			return true
		}
		// Accepted input must produce a well-formed tree.
		if tr.Root == nil || tr.Return == nil || !tr.Return.Returning {
			t.Logf("accepted %q but tree malformed", s)
			return false
		}
		if strings.Count(s, "[") != strings.Count(s, "]") {
			t.Logf("accepted unbalanced %q", s)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// TestQuickGeneratedExpressionsParse builds random syntactically valid
// expressions and verifies they parse with the expected node count.
func TestQuickGeneratedExpressionsParse(t *testing.T) {
	tags := []string{"a", "bee", "c1", "*", "@id"}
	f := func(seedBytes []byte) bool {
		if len(seedBytes) == 0 {
			return true
		}
		var sb strings.Builder
		nodes := 0
		i := 0
		next := func() byte {
			b := seedBytes[i%len(seedBytes)]
			i++
			return b
		}
		steps := 1 + int(next())%4
		for s := 0; s < steps; s++ {
			if next()%3 == 0 {
				sb.WriteString("//")
			} else {
				sb.WriteString("/")
			}
			sb.WriteString(tags[int(next())%len(tags)])
			nodes++
			if next()%3 == 0 {
				sb.WriteString("[")
				sb.WriteString(strings.TrimPrefix(tags[int(next())%(len(tags)-1)], "*"))
				if sb.String()[sb.Len()-1] == '[' {
					sb.WriteString("x")
				}
				nodes++
				if next()%2 == 0 {
					sb.WriteString(`="v"`)
				}
				sb.WriteString("]")
			}
		}
		tr, err := Parse(sb.String())
		if err != nil {
			t.Logf("generated %q failed: %v", sb.String(), err)
			return false
		}
		if tr.NumNodes() < steps {
			t.Logf("generated %q: %d nodes < %d steps", sb.String(), tr.NumNodes(), steps)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
