package sax

import (
	"io"
	"strings"
	"testing"
	"testing/quick"
)

// TestQuickScannerNeverPanics: the scanner must survive arbitrary input —
// returning events or a SyntaxError, never panicking or looping forever
// (the event count is bounded by the input length).
func TestQuickScannerNeverPanics(t *testing.T) {
	f := func(doc string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %q: %v", doc, r)
				ok = false
			}
		}()
		if len(doc) > 4096 {
			doc = doc[:4096]
		}
		s := NewScanner(strings.NewReader(doc))
		events := 0
		for {
			_, err := s.Next()
			if err == io.EOF {
				return true
			}
			if err != nil {
				return true // clean error is fine
			}
			events++
			if events > len(doc)+8 {
				t.Logf("event explosion on %q", doc)
				return false
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// TestQuickMarkupSoup throws markup-dense random strings at the scanner.
func TestQuickMarkupSoup(t *testing.T) {
	pieces := []string{"<", ">", "/", "a", "b", `"`, "'", "=", " ", "!", "-",
		"?", "[", "]", "&", ";", "<!--", "-->", "<![CDATA[", "]]>", "x"}
	f := func(picks []uint8) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		var sb strings.Builder
		for _, p := range picks {
			sb.WriteString(pieces[int(p)%len(pieces)])
		}
		s := NewScanner(strings.NewReader(sb.String()))
		for i := 0; i < len(picks)+16; i++ {
			if _, err := s.Next(); err != nil {
				return true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}
