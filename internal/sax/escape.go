package sax

import (
	"io"
	"strings"
)

// EscapeText writes s to w with the five XML-predefined entities escaped,
// suitable for element content and attribute values (both quote styles).
func EscapeText(w io.Writer, s string) error {
	last := 0
	for i := 0; i < len(s); i++ {
		var esc string
		switch s[i] {
		case '<':
			esc = "&lt;"
		case '>':
			esc = "&gt;"
		case '&':
			esc = "&amp;"
		case '\'':
			esc = "&apos;"
		case '"':
			esc = "&quot;"
		default:
			continue
		}
		if _, err := io.WriteString(w, s[last:i]); err != nil {
			return err
		}
		if _, err := io.WriteString(w, esc); err != nil {
			return err
		}
		last = i + 1
	}
	_, err := io.WriteString(w, s[last:])
	return err
}

// EscapeString returns s with XML special characters escaped.
func EscapeString(s string) string {
	if !strings.ContainsAny(s, "<>&'\"") {
		return s
	}
	var sb strings.Builder
	_ = EscapeText(&sb, s)
	return sb.String()
}
