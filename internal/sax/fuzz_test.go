package sax

import (
	"io"
	"strings"
	"testing"
)

// scanAll drains a scanner, returning the events up to EOF or the error
// that stopped it.
func scanAll(r io.Reader) ([]Event, error) {
	sc := NewScanner(r)
	var evs []Event
	for {
		ev, err := sc.Next()
		if err == io.EOF {
			return evs, nil
		}
		if err != nil {
			return evs, err
		}
		evs = append(evs, ev)
	}
}

// canonicalize keeps the events the store consumes (elements and text),
// merging adjacent text — re-serialization can fuse texts that were split
// by a dropped comment or CDATA boundary, which the scanner then
// coalesces into one event.
func canonicalize(evs []Event) []Event {
	var out []Event
	for _, ev := range evs {
		switch ev.Kind {
		case StartElement, EndElement:
			out = append(out, ev)
		case Text:
			if n := len(out); n > 0 && out[n-1].Kind == Text {
				out[n-1].Data += ev.Data
			} else {
				out = append(out, Event{Kind: Text, Data: ev.Data})
			}
		}
	}
	return out
}

// FuzzScanner throws arbitrary bytes at the SAX scanner — the parser now
// sits on the network-facing ingest path (POST /ingest bodies stream
// straight into it), so it must never panic, must keep accepted streams
// balanced, and accepted input must survive a re-serialization round
// trip: write the events back out as XML, rescan, and get the same
// element/text stream.
func FuzzScanner(f *testing.F) {
	for _, seed := range []string{
		`<a/>`,
		`<bib><book year="2004"><title>Succinct &amp; Fast</title></book></bib>`,
		`<a><b>x</b><b>y</b></a>`,
		`<a foo="1" bar="it&apos;s">t</a>`,
		`<a><!-- comment --><b/></a>`,
		`<?xml version="1.0"?><a>x</a>`,
		`<a><![CDATA[<raw> & bytes]]></a>`,
		`<a>one</a><a>two</a>`, // concatenated documents: the ingest stream shape
		`<a>unterminated`,
		`</late>`,
		`<a></b>`,
		`<a attr=noquote>`,
		`<a>text &unknown; more</a>`,
		`<a>]]></a>`,
		`<<>>`,
		"<a>\x00\xff</a>",
		`<a b="c" b="d"/>`,
		`text outside`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		evs, err := scanAll(strings.NewReader(src))
		if err != nil {
			return // rejected input is fine; panics are the failure mode
		}
		// Accepted streams are balanced: the scanner enforces matched
		// tags, so starts and ends must pair up exactly.
		depth := 0
		var stack []string
		for _, ev := range evs {
			switch ev.Kind {
			case StartElement:
				depth++
				stack = append(stack, ev.Name)
				if ev.Name == "" {
					t.Fatalf("accepted StartElement with empty name in %q", src)
				}
			case EndElement:
				depth--
				if depth < 0 {
					t.Fatalf("accepted unbalanced stream (extra close) in %q", src)
				}
				if want := stack[len(stack)-1]; ev.Name != want {
					t.Fatalf("accepted mismatched close %q (open %q) in %q", ev.Name, want, src)
				}
				stack = stack[:len(stack)-1]
			case Text:
				if depth == 0 && strings.TrimSpace(ev.Data) != "" {
					t.Fatalf("accepted character data outside any element in %q", src)
				}
			}
		}
		if depth != 0 {
			t.Fatalf("accepted stream with %d unclosed element(s) in %q", depth, src)
		}

		// Round trip: re-serialize and rescan. The second pass must accept
		// and yield the same canonical element/text stream.
		var sb strings.Builder
		for _, ev := range evs {
			if err := WriteEvent(&sb, ev); err != nil {
				t.Fatalf("WriteEvent: %v", err)
			}
		}
		evs2, err := scanAll(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("rescan of re-serialized %q (from %q) failed: %v", sb.String(), src, err)
		}
		a, b := canonicalize(evs), canonicalize(evs2)
		if len(a) != len(b) {
			t.Fatalf("round trip changed event count %d -> %d (src %q, ser %q)", len(a), len(b), src, sb.String())
		}
		for i := range a {
			if a[i].Kind != b[i].Kind || a[i].Name != b[i].Name || a[i].Data != b[i].Data {
				t.Fatalf("round trip changed event %d: %+v -> %+v (src %q)", i, a[i], b[i], src)
			}
			if len(a[i].Attrs) != len(b[i].Attrs) {
				t.Fatalf("round trip changed attr count of event %d (src %q)", i, src)
			}
			for j := range a[i].Attrs {
				if a[i].Attrs[j] != b[i].Attrs[j] {
					t.Fatalf("round trip changed attr %d of event %d: %+v -> %+v (src %q)",
						j, i, a[i].Attrs[j], b[i].Attrs[j], src)
				}
			}
		}
	})
}
