package sax

import (
	"io"
	"strings"
)

// WriteEvent re-serializes one scanner event as XML markup. StartElement,
// EndElement and Text round-trip through the scanner; Comment and PI are
// emitted in their original syntax. Attribute values and character data
// are escaped, so the output is well-formed whatever the event carries.
// The ingest splitter (internal/ingest) uses this to cut a concatenated
// fragment stream into standalone documents.
func WriteEvent(w io.Writer, ev Event) error {
	switch ev.Kind {
	case StartElement:
		if _, err := io.WriteString(w, "<"+ev.Name); err != nil {
			return err
		}
		for _, a := range ev.Attrs {
			if _, err := io.WriteString(w, " "+a.Name+`="`+EscapeString(a.Value)+`"`); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, ">")
		return err
	case EndElement:
		_, err := io.WriteString(w, "</"+ev.Name+">")
		return err
	case Text:
		return EscapeText(w, ev.Data)
	case Comment:
		// "--" cannot appear in comment content; drop the event's claim to
		// commenthood rather than emit malformed markup.
		if strings.Contains(ev.Data, "--") {
			return nil
		}
		_, err := io.WriteString(w, "<!--"+ev.Data+"-->")
		return err
	case PI:
		_, err := io.WriteString(w, "<?"+ev.Name+" "+ev.Data+"?>")
		return err
	}
	return nil
}
