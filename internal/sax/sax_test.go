package sax

import (
	"io"
	"strings"
	"testing"
	"testing/quick"
)

// drain collects all events from a document string.
func drain(t *testing.T, doc string) []Event {
	t.Helper()
	s := NewScanner(strings.NewReader(doc))
	var evs []Event
	for {
		ev, err := s.Next()
		if err == io.EOF {
			return evs
		}
		if err != nil {
			t.Fatalf("Next: %v (events so far: %v)", err, evs)
		}
		evs = append(evs, ev)
	}
}

func kinds(evs []Event) []EventKind {
	ks := make([]EventKind, len(evs))
	for i, e := range evs {
		ks[i] = e.Kind
	}
	return ks
}

func TestSimpleDocument(t *testing.T) {
	evs := drain(t, `<a><b>hello</b><c/></a>`)
	want := []struct {
		kind EventKind
		name string
		data string
	}{
		{StartElement, "a", ""},
		{StartElement, "b", ""},
		{Text, "", "hello"},
		{EndElement, "b", ""},
		{StartElement, "c", ""},
		{EndElement, "c", ""},
		{EndElement, "a", ""},
	}
	if len(evs) != len(want) {
		t.Fatalf("got %d events %v, want %d", len(evs), kinds(evs), len(want))
	}
	for i, w := range want {
		if evs[i].Kind != w.kind || evs[i].Name != w.name || evs[i].Data != w.data {
			t.Errorf("event %d = {%v %q %q}, want {%v %q %q}",
				i, evs[i].Kind, evs[i].Name, evs[i].Data, w.kind, w.name, w.data)
		}
	}
}

func TestAttributes(t *testing.T) {
	evs := drain(t, `<book year="1994" lang='en' title="a&amp;b"/>`)
	if len(evs) != 2 || evs[0].Kind != StartElement {
		t.Fatalf("unexpected events: %v", evs)
	}
	attrs := evs[0].Attrs
	if len(attrs) != 3 {
		t.Fatalf("got %d attrs, want 3", len(attrs))
	}
	want := []Attr{{"year", "1994"}, {"lang", "en"}, {"title", "a&b"}}
	for i, w := range want {
		if attrs[i] != w {
			t.Errorf("attr %d = %v, want %v", i, attrs[i], w)
		}
	}
}

func TestAttributeSpacing(t *testing.T) {
	evs := drain(t, "<a  x = \"1\"\n\ty='2' ></a>")
	if len(evs[0].Attrs) != 2 {
		t.Fatalf("attrs = %v", evs[0].Attrs)
	}
	if evs[0].Attrs[0] != (Attr{"x", "1"}) || evs[0].Attrs[1] != (Attr{"y", "2"}) {
		t.Fatalf("attrs = %v", evs[0].Attrs)
	}
}

func TestEntities(t *testing.T) {
	evs := drain(t, `<a>&lt;tag&gt; &amp; &quot;x&quot; &apos;y&apos; &#65;&#x42;</a>`)
	if len(evs) != 3 {
		t.Fatalf("events: %v", evs)
	}
	want := `<tag> & "x" 'y' AB`
	if evs[1].Data != want {
		t.Errorf("text = %q, want %q", evs[1].Data, want)
	}
}

func TestUnknownEntityPassesThrough(t *testing.T) {
	evs := drain(t, `<a>&nbsp;x</a>`)
	if evs[1].Data != "&nbsp;x" {
		t.Errorf("text = %q, want %q", evs[1].Data, "&nbsp;x")
	}
}

func TestCDATA(t *testing.T) {
	evs := drain(t, `<a><![CDATA[<raw> & stuff]]></a>`)
	if len(evs) != 3 || evs[1].Kind != Text {
		t.Fatalf("events: %v", evs)
	}
	if evs[1].Data != "<raw> & stuff" {
		t.Errorf("text = %q", evs[1].Data)
	}
}

func TestCDATACoalescesWithText(t *testing.T) {
	evs := drain(t, `<a>pre<![CDATA[mid]]>post</a>`)
	if len(evs) != 3 {
		t.Fatalf("events: %v — CDATA should coalesce into one Text", evs)
	}
	if evs[1].Data != "premidpost" {
		t.Errorf("text = %q, want %q", evs[1].Data, "premidpost")
	}
}

func TestCommentAndPI(t *testing.T) {
	evs := drain(t, `<?xml version="1.0"?><!-- top --><a><!-- in --><?target data?></a>`)
	var gotKinds []EventKind
	for _, e := range evs {
		gotKinds = append(gotKinds, e.Kind)
	}
	want := []EventKind{PI, Comment, StartElement, Comment, PI, EndElement}
	if len(gotKinds) != len(want) {
		t.Fatalf("kinds = %v, want %v", gotKinds, want)
	}
	for i := range want {
		if gotKinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", gotKinds, want)
		}
	}
	if evs[0].Name != "xml" || evs[4].Name != "target" || evs[4].Data != "data" {
		t.Errorf("PI events wrong: %+v, %+v", evs[0], evs[4])
	}
	if strings.TrimSpace(evs[1].Data) != "top" {
		t.Errorf("comment = %q", evs[1].Data)
	}
}

func TestDoctypeSkipped(t *testing.T) {
	doc := `<!DOCTYPE bib [
		<!ELEMENT bib (book*)>
		<!ENTITY pub "Addison-Wesley">
	]><bib></bib>`
	evs := drain(t, doc)
	if len(evs) != 2 || evs[0].Kind != StartElement || evs[0].Name != "bib" {
		t.Fatalf("events: %v", evs)
	}
}

func TestWhitespaceSkipping(t *testing.T) {
	doc := "<a>\n  <b> x </b>\n</a>"
	evs := drain(t, doc)
	if len(evs) != 5 {
		t.Fatalf("with skipping: %d events %v", len(evs), kinds(evs))
	}
	s := NewScanner(strings.NewReader(doc))
	s.SkipWhitespaceText = false
	n := 0
	for {
		_, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 7 {
		t.Fatalf("without skipping: %d events, want 7", n)
	}
}

func TestMismatchedTags(t *testing.T) {
	for _, doc := range []string{
		`<a><b></a></b>`,
		`<a>`,
		`</a>`,
		`<a></a></a>`,
	} {
		s := NewScanner(strings.NewReader(doc))
		var err error
		for err == nil {
			_, err = s.Next()
		}
		if err == io.EOF {
			t.Errorf("doc %q: expected syntax error, got clean EOF", doc)
			continue
		}
		if _, ok := err.(*SyntaxError); !ok {
			t.Errorf("doc %q: error %v is not *SyntaxError", doc, err)
		}
	}
}

func TestSyntaxErrorLineNumbers(t *testing.T) {
	doc := "<a>\n<b>\n</c>\n</a>"
	s := NewScanner(strings.NewReader(doc))
	var err error
	for err == nil {
		_, err = s.Next()
	}
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("expected SyntaxError, got %v", err)
	}
	if se.Line != 3 {
		t.Errorf("error line = %d, want 3: %v", se.Line, se)
	}
}

func TestTextOutsideRootRejected(t *testing.T) {
	s := NewScanner(strings.NewReader("stray<a></a>"))
	_, err := s.Next()
	if err == nil {
		t.Fatal("expected error for text outside root")
	}
}

func TestDepth(t *testing.T) {
	s := NewScanner(strings.NewReader("<a><b><c/></b></a>"))
	maxDepth := 0
	for {
		_, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if d := s.Depth(); d > maxDepth {
			maxDepth = d
		}
	}
	if maxDepth != 3 {
		t.Errorf("max depth = %d, want 3", maxDepth)
	}
}

func TestUTF8Names(t *testing.T) {
	evs := drain(t, `<日本語 属性="値">text</日本語>`)
	if evs[0].Name != "日本語" || evs[0].Attrs[0].Name != "属性" {
		t.Fatalf("events: %+v", evs)
	}
}

func TestSelfClosingNested(t *testing.T) {
	evs := drain(t, `<a><b/><c/><d/></a>`)
	balance := 0
	for _, e := range evs {
		switch e.Kind {
		case StartElement:
			balance++
		case EndElement:
			balance--
		}
	}
	if balance != 0 {
		t.Errorf("unbalanced events: %v", kinds(evs))
	}
	if len(evs) != 8 {
		t.Errorf("got %d events, want 8", len(evs))
	}
}

func TestEscapeRoundTrip(t *testing.T) {
	f := func(s string) bool {
		if !isValidUTF8ForTest(s) {
			return true
		}
		doc := "<a>" + EscapeString(s) + "</a>"
		sc := NewScanner(strings.NewReader(doc))
		sc.SkipWhitespaceText = false
		var text strings.Builder
		for {
			ev, err := sc.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return false
			}
			if ev.Kind == Text {
				text.WriteString(ev.Data)
			}
		}
		// Carriage-return normalization aside, content must round-trip.
		return text.String() == s
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func isValidUTF8ForTest(s string) bool {
	for _, r := range s {
		if r == 0xFFFD {
			return false
		}
		// Control characters other than \t\n are not legal XML chars and
		// the round-trip property does not apply to them.
		if r < 0x20 && r != '\t' && r != '\n' {
			return false
		}
	}
	return true
}

func TestEscapeString(t *testing.T) {
	got := EscapeString(`a<b>&'"`)
	want := "a&lt;b&gt;&amp;&apos;&quot;"
	if got != want {
		t.Errorf("EscapeString = %q, want %q", got, want)
	}
	if EscapeString("plain") != "plain" {
		t.Error("plain string should be returned unchanged")
	}
}

func TestPaperBibliographyExcerpt(t *testing.T) {
	doc := `<bib>
  <book year="1994">
    <title>TCP/IP Illustrated</title>
    <author><last>Stevens</last><first>W.</first></author>
    <publisher>Addison-Wesley</publisher>
    <price>65.95</price>
  </book>
</bib>`
	evs := drain(t, doc)
	starts := 0
	for _, e := range evs {
		if e.Kind == StartElement {
			starts++
		}
	}
	if starts != 8 {
		t.Errorf("start elements = %d, want 8", starts)
	}
	if evs[1].Name != "book" || len(evs[1].Attrs) != 1 || evs[1].Attrs[0].Value != "1994" {
		t.Errorf("book event: %+v", evs[1])
	}
}
