// Package sax implements a streaming, event-based XML scanner.
//
// The scanner is the substrate for every loader and streaming evaluator in
// this repository. It emits a flat sequence of events (StartElement,
// EndElement, Text, Comment, PI) in document order, exactly the shape the
// paper's string representation mirrors: one alphabet symbol per start tag
// and one ')' per end tag.
//
// The scanner is deliberately small and strict about well-formedness in the
// ways that matter for tree reconstruction (balanced tags, matching end-tag
// names) while being forgiving about DTDs and processing instructions, which
// it skips or surfaces as opaque events.
package sax

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// EventKind identifies the type of a scanner event.
type EventKind uint8

const (
	// StartElement is emitted for <name attr="v"...> and for the open half
	// of a self-closing element <name/>.
	StartElement EventKind = iota
	// EndElement is emitted for </name> and for the close half of <name/>.
	EndElement
	// Text is emitted for character data and CDATA sections. Entity
	// references are decoded. Consecutive raw segments are coalesced.
	Text
	// Comment is emitted for <!-- ... --> sections.
	Comment
	// PI is emitted for processing instructions <? ... ?> (including the
	// XML declaration).
	PI
)

// String returns the event kind name.
func (k EventKind) String() string {
	switch k {
	case StartElement:
		return "StartElement"
	case EndElement:
		return "EndElement"
	case Text:
		return "Text"
	case Comment:
		return "Comment"
	case PI:
		return "PI"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Attr is a single attribute of a start element.
type Attr struct {
	Name  string
	Value string
}

// Event is one scanner event. Name is the tag name for element events, the
// target for PIs, and empty otherwise. Data holds character data for Text,
// comment text for Comment, and instruction content for PI.
type Event struct {
	Kind  EventKind
	Name  string
	Data  string
	Attrs []Attr
	// Line is the 1-based input line at which the event started; useful in
	// error messages of downstream loaders.
	Line int
}

// SyntaxError reports a malformed construct with its input position.
type SyntaxError struct {
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("sax: line %d: %s", e.Line, e.Msg)
}

// Scanner reads XML from an io.Reader and produces Events. Create one with
// NewScanner and call Next until it returns io.EOF.
type Scanner struct {
	r    *bufio.Reader
	line int

	// stack of open element names, used to verify balance.
	stack []string

	// pending holds an EndElement to deliver after a self-closing start.
	pending *Event

	// ltPending records that scanText consumed a '<' beginning a markup
	// construct that Next must dispatch before reading more input.
	ltPending bool

	// SkipWhitespaceText, when true (the default), suppresses Text events
	// that consist entirely of XML whitespace. Document loaders want this;
	// text-sensitive consumers can turn it off.
	SkipWhitespaceText bool

	// CoalesceText, when true (the default), merges adjacent character
	// data and CDATA sections into a single Text event.
	CoalesceText bool
}

// NewScanner returns a Scanner reading from r.
func NewScanner(r io.Reader) *Scanner {
	return &Scanner{
		r:                  bufio.NewReaderSize(r, 64<<10),
		line:               1,
		SkipWhitespaceText: true,
		CoalesceText:       true,
	}
}

// Depth returns the number of currently open elements.
func (s *Scanner) Depth() int { return len(s.stack) }

func (s *Scanner) errf(format string, args ...any) error {
	return &SyntaxError{Line: s.line, Msg: fmt.Sprintf(format, args...)}
}

func (s *Scanner) readByte() (byte, error) {
	b, err := s.r.ReadByte()
	if err == nil && b == '\n' {
		s.line++
	}
	return b, err
}

// unreadByte pushes back the byte b that was just obtained from readByte,
// undoing its line accounting. It must only be called immediately after
// readByte with the byte that call returned.
func (s *Scanner) unreadByte(b byte) {
	if b == '\n' {
		s.line--
	}
	_ = s.r.UnreadByte()
}

func (s *Scanner) peekByte() (byte, error) {
	bs, err := s.r.Peek(1)
	if err != nil {
		return 0, err
	}
	return bs[0], nil
}

// Next returns the next event, or io.EOF when the document is exhausted.
// A non-nil *SyntaxError is returned for malformed input. After an error or
// EOF the scanner should not be used further.
func (s *Scanner) Next() (Event, error) {
	if s.pending != nil {
		ev := *s.pending
		s.pending = nil
		if ev.Kind == EndElement {
			// Close half of a self-closing element.
			s.stack = s.stack[:len(s.stack)-1]
		}
		return ev, nil
	}
	for {
		if !s.ltPending {
			b, err := s.readByte()
			if err == io.EOF {
				if len(s.stack) != 0 {
					return Event{}, s.errf("unexpected EOF: %d unclosed element(s), innermost <%s>", len(s.stack), s.stack[len(s.stack)-1])
				}
				return Event{}, io.EOF
			}
			if err != nil {
				return Event{}, err
			}
			if b != '<' {
				ev, err := s.scanText(b)
				if err != nil {
					return Event{}, err
				}
				if ev.Data == "" || (s.SkipWhitespaceText && isAllXMLSpace(ev.Data)) {
					continue
				}
				if len(s.stack) == 0 {
					return Event{}, s.errf("character data outside of document element")
				}
				return ev, nil
			}
		}
		// A markup construct; '<' consumed.
		s.ltPending = false
		ev, skip, err := s.scanMarkup()
		if err != nil {
			return Event{}, err
		}
		if skip {
			continue
		}
		return ev, nil
	}
}

// scanMarkup dispatches on the byte following a consumed '<'. skip reports
// that the construct produced no event (e.g. DOCTYPE).
func (s *Scanner) scanMarkup() (ev Event, skip bool, err error) {
	c, err := s.peekByte()
	if err != nil {
		return Event{}, false, s.errf("unexpected EOF after '<'")
	}
	switch c {
	case '/':
		_, _ = s.readByte()
		ev, err = s.scanEndTag()
		return ev, false, err
	case '!':
		_, _ = s.readByte()
		return s.scanBang()
	case '?':
		_, _ = s.readByte()
		ev, err = s.scanPI()
		return ev, false, err
	default:
		ev, err = s.scanStartTag()
		return ev, false, err
	}
}

// scanText consumes character data starting with the already-read byte
// first, up to the next markup '<'. When it stops at markup it leaves
// s.ltPending set (the '<' is consumed).
func (s *Scanner) scanText(first byte) (Event, error) {
	line := s.line
	var sb strings.Builder
	b := first
	for {
		if b == '<' {
			if s.CoalesceText {
				// CDATA immediately following text coalesces with it.
				if ok, err := s.tryCDATA(&sb); err != nil {
					return Event{}, err
				} else if ok {
					goto next
				}
			}
			s.ltPending = true
			break
		}
		if b == '&' {
			r, err := s.scanEntity()
			if err != nil {
				return Event{}, err
			}
			sb.WriteString(r)
		} else {
			sb.WriteByte(b)
		}
	next:
		var err error
		b, err = s.readByte()
		if err == io.EOF {
			break
		}
		if err != nil {
			return Event{}, err
		}
	}
	return Event{Kind: Text, Data: sb.String(), Line: line}, nil
}

// tryCDATA checks whether the input (positioned just after '<') begins a
// CDATA section; if so it consumes it into sb and reports true. The '<' has
// already been consumed by the caller.
func (s *Scanner) tryCDATA(sb *strings.Builder) (bool, error) {
	const marker = "![CDATA["
	bs, err := s.r.Peek(len(marker))
	if err != nil || string(bs) != marker {
		return false, nil
	}
	if _, err := s.r.Discard(len(marker)); err != nil {
		return false, err
	}
	for {
		b, err := s.readByte()
		if err != nil {
			return false, s.errf("unexpected EOF in CDATA section")
		}
		if b == ']' {
			bs, err := s.r.Peek(2)
			if err == nil && bs[0] == ']' && bs[1] == '>' {
				_, _ = s.r.Discard(2)
				return true, nil
			}
		}
		sb.WriteByte(b)
	}
}

// scanEntity decodes an entity reference; the '&' has been consumed.
func (s *Scanner) scanEntity() (string, error) {
	var name strings.Builder
	for {
		b, err := s.readByte()
		if err != nil {
			return "", s.errf("unexpected EOF in entity reference")
		}
		if b == ';' {
			break
		}
		if name.Len() > 32 {
			return "", s.errf("entity reference too long")
		}
		name.WriteByte(b)
	}
	return decodeEntity(name.String(), s)
}

func decodeEntity(name string, s *Scanner) (string, error) {
	switch name {
	case "lt":
		return "<", nil
	case "gt":
		return ">", nil
	case "amp":
		return "&", nil
	case "apos":
		return "'", nil
	case "quot":
		return "\"", nil
	}
	if strings.HasPrefix(name, "#") {
		num := name[1:]
		base := 10
		if strings.HasPrefix(num, "x") || strings.HasPrefix(num, "X") {
			num, base = num[1:], 16
		}
		var r rune
		for _, c := range num {
			var d rune
			switch {
			case c >= '0' && c <= '9':
				d = c - '0'
			case base == 16 && c >= 'a' && c <= 'f':
				d = c - 'a' + 10
			case base == 16 && c >= 'A' && c <= 'F':
				d = c - 'A' + 10
			default:
				return "", s.errf("bad character reference &%s;", name)
			}
			r = r*rune(base) + d
			if r > 0x10FFFF {
				return "", s.errf("character reference out of range &%s;", name)
			}
		}
		return string(r), nil
	}
	// Unknown named entity: pass through literally, as many real-world
	// documents rely on DTD-defined entities we do not resolve.
	return "&" + name + ";", nil
}

// scanStartTag parses <name attr="v" ...> or <name ... />; '<' consumed.
func (s *Scanner) scanStartTag() (Event, error) {
	line := s.line
	name, err := s.scanName()
	if err != nil {
		return Event{}, err
	}
	var attrs []Attr
	for {
		if err := s.skipSpace(); err != nil {
			return Event{}, s.errf("unexpected EOF in <%s>", name)
		}
		b, err := s.readByte()
		if err != nil {
			return Event{}, s.errf("unexpected EOF in <%s>", name)
		}
		if b == '>' {
			s.stack = append(s.stack, name)
			return Event{Kind: StartElement, Name: name, Attrs: attrs, Line: line}, nil
		}
		if b == '/' {
			b2, err := s.readByte()
			if err != nil || b2 != '>' {
				return Event{}, s.errf("expected '>' after '/' in <%s>", name)
			}
			// The element is open until its pending EndElement is
			// delivered, so Depth reflects it like any other element.
			s.stack = append(s.stack, name)
			s.pending = &Event{Kind: EndElement, Name: name, Line: s.line}
			return Event{Kind: StartElement, Name: name, Attrs: attrs, Line: line}, nil
		}
		s.unreadByte(b)
		attr, err := s.scanAttr(name)
		if err != nil {
			return Event{}, err
		}
		attrs = append(attrs, attr)
	}
}

func (s *Scanner) scanAttr(elem string) (Attr, error) {
	name, err := s.scanName()
	if err != nil {
		return Attr{}, s.errf("bad attribute name in <%s>: %v", elem, err)
	}
	if err := s.skipSpace(); err != nil {
		return Attr{}, s.errf("unexpected EOF in attribute %s of <%s>", name, elem)
	}
	b, err := s.readByte()
	if err != nil || b != '=' {
		return Attr{}, s.errf("expected '=' after attribute %s of <%s>", name, elem)
	}
	if err := s.skipSpace(); err != nil {
		return Attr{}, s.errf("unexpected EOF in attribute %s of <%s>", name, elem)
	}
	quote, err := s.readByte()
	if err != nil || (quote != '"' && quote != '\'') {
		return Attr{}, s.errf("expected quoted value for attribute %s of <%s>", name, elem)
	}
	var sb strings.Builder
	for {
		b, err := s.readByte()
		if err != nil {
			return Attr{}, s.errf("unexpected EOF in value of attribute %s", name)
		}
		if b == quote {
			break
		}
		if b == '&' {
			r, err := s.scanEntity()
			if err != nil {
				return Attr{}, err
			}
			sb.WriteString(r)
			continue
		}
		sb.WriteByte(b)
	}
	return Attr{Name: name, Value: sb.String()}, nil
}

// scanEndTag parses </name>; "</" consumed.
func (s *Scanner) scanEndTag() (Event, error) {
	line := s.line
	name, err := s.scanName()
	if err != nil {
		return Event{}, err
	}
	if err := s.skipSpace(); err != nil {
		return Event{}, s.errf("unexpected EOF in </%s>", name)
	}
	b, err := s.readByte()
	if err != nil || b != '>' {
		return Event{}, s.errf("expected '>' in </%s>", name)
	}
	if len(s.stack) == 0 {
		return Event{}, s.errf("unmatched end tag </%s>", name)
	}
	top := s.stack[len(s.stack)-1]
	if top != name {
		return Event{}, s.errf("mismatched end tag: </%s> closes <%s>", name, top)
	}
	s.stack = s.stack[:len(s.stack)-1]
	return Event{Kind: EndElement, Name: name, Line: line}, nil
}

// scanBang handles <!-- comments -->, <![CDATA[...]]> and <!DOCTYPE ...>;
// "<!" consumed. For CDATA it returns a Text event; DOCTYPE is skipped.
func (s *Scanner) scanBang() (ev Event, skip bool, err error) {
	line := s.line
	bs, err := s.r.Peek(2)
	if err == nil && bs[0] == '-' && bs[1] == '-' {
		_, _ = s.r.Discard(2)
		var sb strings.Builder
		for {
			b, err := s.readByte()
			if err != nil {
				return Event{}, false, s.errf("unexpected EOF in comment")
			}
			if b == '-' {
				bs, err := s.r.Peek(2)
				if err == nil && bs[0] == '-' && bs[1] == '>' {
					_, _ = s.r.Discard(2)
					return Event{Kind: Comment, Data: sb.String(), Line: line}, false, nil
				}
			}
			sb.WriteByte(b)
		}
	}
	bs, err = s.r.Peek(7)
	if err == nil && string(bs) == "[CDATA[" {
		_, _ = s.r.Discard(7)
		var sb strings.Builder
		for {
			b, err := s.readByte()
			if err != nil {
				return Event{}, false, s.errf("unexpected EOF in CDATA section")
			}
			if b == ']' {
				bs, err := s.r.Peek(2)
				if err == nil && bs[0] == ']' && bs[1] == '>' {
					_, _ = s.r.Discard(2)
					break
				}
			}
			sb.WriteByte(b)
		}
		data := sb.String()
		if s.SkipWhitespaceText && isAllXMLSpace(data) {
			return Event{}, true, nil
		}
		if len(s.stack) == 0 {
			return Event{}, false, s.errf("CDATA outside of document element")
		}
		return Event{Kind: Text, Data: data, Line: line}, false, nil
	}
	// DOCTYPE or other declaration: skip to matching '>' tracking nested
	// '[' ... ']' internal subsets and quoted strings.
	depth := 0
	inQuote := byte(0)
	for {
		b, err := s.readByte()
		if err != nil {
			return Event{}, false, s.errf("unexpected EOF in <! declaration")
		}
		switch {
		case inQuote != 0:
			if b == inQuote {
				inQuote = 0
			}
		case b == '"' || b == '\'':
			inQuote = b
		case b == '[':
			depth++
		case b == ']':
			depth--
		case b == '>' && depth <= 0:
			return Event{}, true, nil
		}
	}
}

// scanPI parses <? target content ?>; "<?" consumed.
func (s *Scanner) scanPI() (Event, error) {
	line := s.line
	name, err := s.scanName()
	if err != nil {
		return Event{}, err
	}
	var sb strings.Builder
	for {
		b, err := s.readByte()
		if err != nil {
			return Event{}, s.errf("unexpected EOF in processing instruction <?%s", name)
		}
		if b == '?' {
			c, err := s.peekByte()
			if err == nil && c == '>' {
				_, _ = s.readByte()
				return Event{Kind: PI, Name: name, Data: strings.TrimSpace(sb.String()), Line: line}, nil
			}
		}
		sb.WriteByte(b)
	}
}

func (s *Scanner) scanName() (string, error) {
	var sb strings.Builder
	first := true
	for {
		b, err := s.readByte()
		if err != nil {
			return "", s.errf("unexpected EOF in name")
		}
		if isNameByte(b, first) {
			sb.WriteByte(b)
			first = false
			continue
		}
		s.unreadByte(b)
		break
	}
	if sb.Len() == 0 {
		return "", s.errf("expected a name")
	}
	return sb.String(), nil
}

func (s *Scanner) skipSpace() error {
	for {
		b, err := s.readByte()
		if err != nil {
			return err
		}
		if !isXMLSpace(b) {
			s.unreadByte(b)
			return nil
		}
	}
}

func isXMLSpace(b byte) bool { return b == ' ' || b == '\t' || b == '\n' || b == '\r' }

func isAllXMLSpace(s string) bool {
	for i := 0; i < len(s); i++ {
		if !isXMLSpace(s[i]) {
			return false
		}
	}
	return true
}

// isNameByte reports whether b may appear in an XML name. Multi-byte UTF-8
// name characters are accepted wholesale (any byte >= 0x80), which is
// sufficient for tag-name identity even though it does not validate the
// full XML name grammar.
func isNameByte(b byte, first bool) bool {
	switch {
	case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b == '_', b == ':':
		return true
	case b >= 0x80:
		return true
	case first:
		return false
	case b >= '0' && b <= '9', b == '-', b == '.':
		return true
	default:
		return false
	}
}
