package shard

import (
	"bytes"
	"errors"
	"fmt"

	"nok"
	"nok/internal/dewey"
)

// batchInserter is the optional group-commit fast path a backend may
// offer: the whole slice lands in one committed epoch. Local backends get
// it from *nok.Store; remote backends fall back to per-fragment inserts
// (mutations are never retried or batched over the wire).
type batchInserter interface {
	InsertBatch(parentID string, frags [][]byte) error
}

// InsertBatch appends a batch of fragments in one pass. Deep parents (a
// node inside one document) go to the owning shard as a single atomic
// batch. Inserting under the collection root ("0") deep-validates and
// routes each fragment by the collection's strategy, assigns consecutive
// global ordinals, and groups the fragments per target shard so every
// shard commits its share as ONE epoch; the manifest is rewritten once at
// the end.
//
// Atomicity is per shard, not per collection: a failure on one shard
// leaves batches already committed on other shards in place (their
// assignments are preserved). The error contract is the ingest.Target
// one: a *nok.FragmentError (index remapped to the caller's batch) is
// returned ONLY while the collection is still untouched — every
// document-attributable failure is caught by the validation pass before
// the first shard commits — so callers may drop the offender and retry
// the remainder without duplicating documents. Once any shard has
// committed, failures surface as plain (non-retryable) errors.
func (st *Store) InsertBatch(parentID string, frags [][]byte) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return ErrClosed
	}
	pid, err := dewey.Parse(parentID)
	if err != nil {
		return err
	}
	if len(frags) == 0 {
		return nil
	}
	if len(pid) > 1 {
		s, local, err := st.locate(pid)
		if err != nil {
			return err
		}
		return insertBatchOn(st.shards[s], local.String(), frags)
	}

	// New top-level documents: deep-validate and route each fragment, then
	// deliver each shard's share as one batch. Validation runs the full
	// parse up front so a malformed body (not just a bad root tag) rejects
	// the batch here, while nothing has committed and a *FragmentError is
	// still retry-safe. Ordinals of a failed share are simply never
	// assigned; the next insert reuses them, keeping per-shard assignments
	// strictly increasing and duplicate-free.
	type share struct {
		frags   [][]byte
		globals []uint32
		orig    []int // caller's batch indexes, for error remapping
	}
	shares := make([]share, st.man.Shards)
	global := st.maxGlobal()
	for i, buf := range frags {
		tag, err := validateFragment(buf)
		if err != nil {
			return &nok.FragmentError{Index: i, Err: err}
		}
		global++
		var target int
		if st.man.Strategy == StrategyPath {
			target = st.man.routeTag(tag)
		} else {
			target = routeHash(global, st.man.Shards)
		}
		sh := &shares[target]
		sh.frags = append(sh.frags, buf)
		sh.globals = append(sh.globals, global)
		sh.orig = append(sh.orig, i)
	}

	// committed flips once ANY document is durable on any shard. From that
	// point a failure must NOT read as a *FragmentError: drop-and-retry
	// callers would re-submit the committed shares and duplicate them.
	var firstErr error
	committed := false
	for s := range st.shards {
		sh := shares[s]
		if len(sh.frags) == 0 {
			continue
		}
		if bi, ok := st.shards[s].(batchInserter); ok {
			if err := bi.InsertBatch("0", sh.frags); err != nil {
				var fe *nok.FragmentError
				switch {
				case errors.As(err, &fe) && fe.Index < len(sh.orig) && !committed:
					// The shard's own batch is atomic, so nothing anywhere
					// has committed yet: remap and stay retryable.
					err = &nok.FragmentError{Index: sh.orig[fe.Index], Err: fe.Err}
				case errors.As(err, &fe) && fe.Index < len(sh.orig):
					err = fmt.Errorf("fragment %d: partial batch commit (earlier shards kept their shares), not retryable: %v",
						sh.orig[fe.Index], fe.Err)
				}
				firstErr = fmt.Errorf("shard %d: %w", s, err)
				break
			}
			committed = true
			st.man.Assign[s] = append(st.man.Assign[s], sh.globals...)
			continue
		}
		// Per-fragment fallback (remote shard): record each success in the
		// assignment immediately so a mid-batch failure never strands
		// committed documents outside the manifest. Fragments were already
		// validated, so a failure here is store- or network-level — and a
		// prefix of the share may be durable — so it is never reported as a
		// retryable *FragmentError.
		for i, f := range sh.frags {
			if err := st.shards[s].Insert("0", bytes.NewReader(f)); err != nil {
				firstErr = fmt.Errorf("shard %d: fragment %d: not retryable (%d of this share committed): %v",
					s, sh.orig[i], i, err)
				break
			}
			committed = true
			st.man.Assign[s] = append(st.man.Assign[s], sh.globals[i])
		}
		if firstErr != nil {
			break
		}
	}
	if err := saveManifest(st.dir, st.man); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// insertBatchOn delivers a same-parent batch to one backend, using its
// group-commit path when offered and per-fragment inserts otherwise. The
// fallback keeps the ingest.Target contract: a *nok.FragmentError is only
// returned while the backend is untouched (first fragment), because later
// fragments fail with a committed prefix behind them and retrying would
// duplicate it.
func insertBatchOn(b Backend, parentID string, frags [][]byte) error {
	if bi, ok := b.(batchInserter); ok {
		return bi.InsertBatch(parentID, frags)
	}
	for i, f := range frags {
		if err := b.Insert(parentID, bytes.NewReader(f)); err != nil {
			if i == 0 {
				return &nok.FragmentError{Index: 0, Err: err}
			}
			return fmt.Errorf("shard: fragment %d: partial batch commit (%d fragments already committed), not retryable: %v",
				i, i, err)
		}
	}
	return nil
}
