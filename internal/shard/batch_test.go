package shard

import (
	"errors"
	"fmt"
	"testing"

	"nok"
)

func batchFragments(n, from int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		k := from + i
		if k%2 == 0 {
			out[i] = []byte(fmt.Sprintf(
				`<book year="%d"><title>NB%d</title><author><last>Batch%d</last></author><price>%d.25</price></book>`,
				2010+k%10, k, k%5, 30+k%50))
		} else {
			out[i] = []byte(fmt.Sprintf(
				`<article><title>NA%d</title><pages>%d</pages></article>`, k, 3+k%20))
		}
	}
	return out
}

// TestInsertBatchOracle checks the group-commit path keeps the sharded
// collection byte-identical to a single store fed the same batches.
func TestInsertBatchOracle(t *testing.T) {
	xml := collection(24)
	for _, routing := range []Strategy{StrategyHash, StrategyPath} {
		t.Run(string(routing), func(t *testing.T) {
			single, sharded := openPair(t, xml, 4, routing)
			for round := 0; round < 3; round++ {
				frags := batchFragments(7, round*7)
				if err := single.InsertBatch("0", frags); err != nil {
					t.Fatalf("single round %d: %v", round, err)
				}
				if err := sharded.InsertBatch("0", frags); err != nil {
					t.Fatalf("sharded round %d: %v", round, err)
				}
			}
			for _, expr := range shardableQueries {
				compareQuery(t, single, sharded, expr, nil)
			}
			if r := sharded.Verify(true); len(r.Issues) != 0 {
				t.Fatalf("verify after batches: %v", r.Issues)
			}
		})
	}
}

func TestInsertBatchDeepParent(t *testing.T) {
	single, sharded := openPair(t, collection(12), 3, StrategyHash)
	frags := [][]byte{
		[]byte(`<last>DeepA</last>`),
		[]byte(`<last>DeepB</last>`),
	}
	// 0.4 is a top-level document; 0.4.2 its author element in collection().
	// Find a stable deep parent instead: append under the first book's
	// author via a query for its ID.
	res, err := sharded.Query(`//author[last="L0"]`)
	if err != nil || len(res) == 0 {
		t.Fatalf("locating author: %v (%d results)", err, len(res))
	}
	parent := res[0].ID
	if err := sharded.InsertBatch(parent, frags); err != nil {
		t.Fatalf("deep batch: %v", err)
	}
	if err := single.InsertBatch(parent, frags); err != nil {
		t.Fatalf("single deep batch: %v", err)
	}
	compareQuery(t, single, sharded, `//author[last="DeepB"]`, nil)
}

func TestInsertBatchBadFragment(t *testing.T) {
	_, sharded := openPair(t, collection(9), 3, StrategyHash)
	before, err := sharded.Query(`//book`)
	if err != nil {
		t.Fatal(err)
	}
	batch := [][]byte{
		[]byte(`<book><title>ok</title></book>`),
		[]byte(`not xml at all`),
	}
	err = sharded.InsertBatch("0", batch)
	var fe *nok.FragmentError
	if !errors.As(err, &fe) {
		t.Fatalf("want *nok.FragmentError, got %v", err)
	}
	if fe.Index != 1 {
		t.Fatalf("FragmentError.Index = %d, want 1", fe.Index)
	}
	// Routing happens before any shard commit, so a bad fragment rejects
	// the whole batch and the collection is untouched.
	after, err := sharded.Query(`//book`)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("failed batch mutated collection: %d -> %d books", len(before), len(after))
	}
	if r := sharded.Verify(true); len(r.Issues) != 0 {
		t.Fatalf("verify after failed batch: %v", r.Issues)
	}
}
