package shard

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"nok"
	"nok/internal/ingest"
)

func batchFragments(n, from int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		k := from + i
		if k%2 == 0 {
			out[i] = []byte(fmt.Sprintf(
				`<book year="%d"><title>NB%d</title><author><last>Batch%d</last></author><price>%d.25</price></book>`,
				2010+k%10, k, k%5, 30+k%50))
		} else {
			out[i] = []byte(fmt.Sprintf(
				`<article><title>NA%d</title><pages>%d</pages></article>`, k, 3+k%20))
		}
	}
	return out
}

// TestInsertBatchOracle checks the group-commit path keeps the sharded
// collection byte-identical to a single store fed the same batches.
func TestInsertBatchOracle(t *testing.T) {
	xml := collection(24)
	for _, routing := range []Strategy{StrategyHash, StrategyPath} {
		t.Run(string(routing), func(t *testing.T) {
			single, sharded := openPair(t, xml, 4, routing)
			for round := 0; round < 3; round++ {
				frags := batchFragments(7, round*7)
				if err := single.InsertBatch("0", frags); err != nil {
					t.Fatalf("single round %d: %v", round, err)
				}
				if err := sharded.InsertBatch("0", frags); err != nil {
					t.Fatalf("sharded round %d: %v", round, err)
				}
			}
			for _, expr := range shardableQueries {
				compareQuery(t, single, sharded, expr, nil)
			}
			if r := sharded.Verify(true); len(r.Issues) != 0 {
				t.Fatalf("verify after batches: %v", r.Issues)
			}
		})
	}
}

func TestInsertBatchDeepParent(t *testing.T) {
	single, sharded := openPair(t, collection(12), 3, StrategyHash)
	frags := [][]byte{
		[]byte(`<last>DeepA</last>`),
		[]byte(`<last>DeepB</last>`),
	}
	// 0.4 is a top-level document; 0.4.2 its author element in collection().
	// Find a stable deep parent instead: append under the first book's
	// author via a query for its ID.
	res, err := sharded.Query(`//author[last="L0"]`)
	if err != nil || len(res) == 0 {
		t.Fatalf("locating author: %v (%d results)", err, len(res))
	}
	parent := res[0].ID
	if err := sharded.InsertBatch(parent, frags); err != nil {
		t.Fatalf("deep batch: %v", err)
	}
	if err := single.InsertBatch(parent, frags); err != nil {
		t.Fatalf("single deep batch: %v", err)
	}
	compareQuery(t, single, sharded, `//author[last="DeepB"]`, nil)
}

func TestInsertBatchBadFragment(t *testing.T) {
	_, sharded := openPair(t, collection(9), 3, StrategyHash)
	before, err := sharded.Query(`//book`)
	if err != nil {
		t.Fatal(err)
	}
	batch := [][]byte{
		[]byte(`<book><title>ok</title></book>`),
		[]byte(`not xml at all`),
	}
	err = sharded.InsertBatch("0", batch)
	var fe *nok.FragmentError
	if !errors.As(err, &fe) {
		t.Fatalf("want *nok.FragmentError, got %v", err)
	}
	if fe.Index != 1 {
		t.Fatalf("FragmentError.Index = %d, want 1", fe.Index)
	}
	// Routing happens before any shard commit, so a bad fragment rejects
	// the whole batch and the collection is untouched.
	after, err := sharded.Query(`//book`)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("failed batch mutated collection: %d -> %d books", len(before), len(after))
	}
	if r := sharded.Verify(true); len(r.Issues) != 0 {
		t.Fatalf("verify after failed batch: %v", r.Issues)
	}
}

// TestInsertBatchDeepParseFailure is the retry-safety contract: a fragment
// whose root tag parses but whose BODY is malformed must reject the batch
// before any shard commits, so a caller that drops the offender and
// re-submits the remainder (the ingest pipeline) never duplicates the
// documents of shards that went first.
func TestInsertBatchDeepParseFailure(t *testing.T) {
	for _, routing := range []Strategy{StrategyHash, StrategyPath} {
		t.Run(string(routing), func(t *testing.T) {
			_, sharded := openPair(t, collection(9), 3, routing)
			count := func() int {
				res, err := sharded.Query(`//title`)
				if err != nil {
					t.Fatal(err)
				}
				return len(res)
			}
			before := count()
			batch := batchFragments(6, 0)
			// Root tag <book> scans fine; only the deep parse sees the
			// mismatched close tag.
			batch[4] = []byte(`<book><title>poison</wrong></book>`)
			err := sharded.InsertBatch("0", batch)
			var fe *nok.FragmentError
			if !errors.As(err, &fe) {
				t.Fatalf("want *nok.FragmentError, got %v", err)
			}
			if fe.Index != 4 {
				t.Fatalf("FragmentError.Index = %d, want 4", fe.Index)
			}
			if got := count(); got != before {
				t.Fatalf("failed batch committed documents: %d -> %d titles", before, got)
			}
			// Drop-and-retry lands every survivor exactly once.
			retry := append(append([][]byte{}, batch[:4]...), batch[5:]...)
			if err := sharded.InsertBatch("0", retry); err != nil {
				t.Fatalf("retry: %v", err)
			}
			if got := count(); got != before+5 {
				t.Fatalf("retry landed %d new documents, want 5", got-before)
			}
			if r := sharded.Verify(true); len(r.Issues) != 0 {
				t.Fatalf("verify after retry: %v", r.Issues)
			}
		})
	}
}

// TestIngestPipelineShardedNoDuplicates drives the real ingest pipeline at
// a sharded store with a deep-malformed document mid-stream: the pipeline
// must drop exactly that document and commit every other exactly once.
func TestIngestPipelineShardedNoDuplicates(t *testing.T) {
	_, sharded := openPair(t, collection(6), 3, StrategyHash)
	count := func() int {
		res, err := sharded.Query(`//title`)
		if err != nil {
			t.Fatal(err)
		}
		return len(res)
	}
	before := count()
	p := ingest.NewPipeline(sharded, ingest.Options{BatchDocs: 16, BatchInterval: time.Hour})
	good := 0
	for i, frag := range batchFragments(7, 0) {
		if i == 3 {
			frag = []byte(`<book><title>poison</wrong></book>`)
		} else {
			good++
		}
		if err := p.Submit(frag); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if st := p.Stats(); st.Rejected != 1 || st.Docs != uint64(good) {
		t.Fatalf("stats after flush: %+v (want %d docs, 1 rejected)", st, good)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if got := count(); got != before+good {
		t.Fatalf("pipeline landed %d new documents, want %d (duplicates or drops)", got-before, good)
	}
	if r := sharded.Verify(true); len(r.Issues) != 0 {
		t.Fatalf("verify after pipeline: %v", r.Issues)
	}
}
