package shard

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"nok"
	"nok/internal/core"
	"nok/internal/dewey"
	"nok/internal/pattern"
	"nok/internal/sax"
)

// locate maps a global Dewey ID to (shard, shard-local ID). Broadcast nodes
// (the collection root and its attributes) resolve to shard 0, where one
// replica lives; mutations special-case them before calling this.
func (st *Store) locate(id dewey.ID) (int, dewey.ID, error) {
	if len(id) <= 1 {
		return 0, id, nil
	}
	s, local, routed := st.man.globalToLocal(id[1])
	if !routed {
		return 0, id, nil
	}
	if s < 0 {
		return 0, nil, fmt.Errorf("shard: no document at root-child ordinal %d", id[1])
	}
	mapped := id.Clone()
	mapped[1] = local
	return s, mapped, nil
}

// Value returns the text content of the node with the given global Dewey ID.
func (st *Store) Value(id string) (string, bool, error) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if st.closed {
		return "", false, ErrClosed
	}
	did, err := dewey.Parse(id)
	if err != nil {
		return "", false, err
	}
	s, local, err := st.locate(did)
	if err != nil {
		return "", false, err
	}
	return st.shards[s].Value(local.String())
}

// Insert appends an XML fragment as the last child of the node identified
// by parentID. Inserting under the collection root ("0") adds a new
// top-level document: it is routed by the collection's strategy, assigned
// the next global ordinal, and the manifest is rewritten; deeper inserts
// go to the single shard owning the enclosing document.
func (st *Store) Insert(parentID string, fragment io.Reader) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return ErrClosed
	}
	pid, err := dewey.Parse(parentID)
	if err != nil {
		return err
	}
	if len(pid) > 1 {
		s, local, err := st.locate(pid)
		if err != nil {
			return err
		}
		return st.shards[s].Insert(local.String(), fragment)
	}

	// New top-level document. Buffer the fragment to learn its root tag
	// (path routing needs it; hash routing only needs the ordinal).
	buf, err := io.ReadAll(fragment)
	if err != nil {
		return err
	}
	tag, err := fragmentRootTag(buf)
	if err != nil {
		return err
	}
	global := st.maxGlobal() + 1
	var target int
	if st.man.Strategy == StrategyPath {
		// May record a route for an unseen name; the manifest is saved
		// below either way.
		target = st.man.routeTag(tag)
	} else {
		target = routeHash(global, st.man.Shards)
	}
	if err := st.shards[target].Insert("0", bytes.NewReader(buf)); err != nil {
		return err
	}
	st.man.Assign[target] = append(st.man.Assign[target], global)
	return saveManifest(st.dir, st.man)
}

// Delete removes the node with the given global Dewey ID and its subtree.
// Deleting a whole document (a root child) removes it from its shard and
// renumbers the global ordinals after it, exactly as the unsharded store
// renumbers following siblings; deleting a collection-root attribute
// applies to its replica on every shard.
func (st *Store) Delete(id string) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return ErrClosed
	}
	did, err := dewey.Parse(id)
	if err != nil {
		return err
	}
	if len(did) <= 1 {
		return fmt.Errorf("shard: cannot delete the collection root")
	}
	g := did[1]
	if int(g) <= st.man.RootAttrs {
		if len(did) > 2 {
			return fmt.Errorf("shard: no node below attribute %s", did.String())
		}
		// Broadcast node: remove the replica on every shard, then shift the
		// global numbering down past it.
		for s, sub := range st.shards {
			if err := sub.Delete(did.String()); err != nil {
				return fmt.Errorf("shard %d: %w", s, err)
			}
		}
		st.man.RootAttrs--
		for _, a := range st.man.Assign {
			for i := range a {
				a[i]--
			}
		}
		return saveManifest(st.dir, st.man)
	}

	s, local, err := st.locate(did)
	if err != nil {
		return err
	}
	if err := st.shards[s].Delete(local.String()); err != nil {
		return err
	}
	if len(did) == 2 {
		// A whole document went away: drop it from the assignment and
		// renumber every later document down by one.
		a := st.man.Assign[s]
		k := int(local[1]) - st.man.RootAttrs - 1
		st.man.Assign[s] = append(a[:k], a[k+1:]...)
		for _, a := range st.man.Assign {
			for i := range a {
				if a[i] > g {
					a[i]--
				}
			}
		}
		return saveManifest(st.dir, st.man)
	}
	return nil
}

// maxGlobal returns the largest assigned global root-child ordinal (or the
// last broadcast ordinal when no documents exist).
func (st *Store) maxGlobal() uint32 {
	m := uint32(st.man.RootAttrs)
	for _, a := range st.man.Assign {
		if len(a) > 0 && a[len(a)-1] > m {
			m = a[len(a)-1]
		}
	}
	return m
}

// validateFragment deep-parses a fragment — well-formed XML, exactly one
// root element — and names its root. InsertBatch runs it over the whole
// batch before any shard commits: catching every document-attributable
// failure up front is what keeps the routing stage's *FragmentError
// retry-safe, because by the time shards start committing, the only
// errors left are store-level and fatal.
func validateFragment(buf []byte) (string, error) {
	sc := sax.NewScanner(bytes.NewReader(buf))
	root := ""
	depth := 0
	for {
		ev, err := sc.Next()
		if err == io.EOF {
			// The scanner errors on EOF inside an open element, so a clean
			// EOF means everything opened was closed.
			if root == "" {
				return "", fmt.Errorf("shard: fragment has no root element")
			}
			return root, nil
		}
		if err != nil {
			return "", err
		}
		switch ev.Kind {
		case sax.StartElement:
			if depth == 0 {
				if root != "" {
					return "", fmt.Errorf("shard: fragment must have a single root element")
				}
				root = ev.Name
			}
			depth++
		case sax.EndElement:
			depth--
		}
	}
}

// fragmentRootTag scans just far enough into a fragment to name its root.
func fragmentRootTag(buf []byte) (string, error) {
	sc := sax.NewScanner(bytes.NewReader(buf))
	for {
		ev, err := sc.Next()
		if err == io.EOF {
			return "", fmt.Errorf("shard: fragment has no root element")
		}
		if err != nil {
			return "", err
		}
		if ev.Kind == sax.StartElement {
			return ev.Name, nil
		}
	}
}

// Generation returns the sum of the shard generations: it is bumped by
// every mutation anywhere in the collection. Caches wanting finer-grained
// invalidation should key on CacheFingerprint instead.
func (st *Store) Generation() uint64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var g uint64
	for _, sub := range st.shards {
		g += sub.Generation()
	}
	return g
}

// CacheFingerprint identifies exactly the state a cached result for expr
// depends on: the (shard, epoch) pairs of the shards that would
// participate in evaluating it right now. Epochs only advance on committed
// mutations, and a mutation on a shard the query is pruned from leaves the
// fingerprint unchanged, so cached results for unrelated shards survive
// writes elsewhere. Each shard is judged on a pinned snapshot, so the
// pruning decision and the epoch it is keyed on describe the same committed
// state. Remote shards are keyed on the client's last observed epoch — a
// deliberate bounded-staleness trade-off (at most one health-probe
// interval behind); with no epoch observed yet the query is uncachable.
// Returns "" (uncachable) for expressions the executor would refuse.
func (st *Store) CacheFingerprint(expr string) string {
	st.mu.RLock()
	if st.closed {
		st.mu.RUnlock()
		return ""
	}
	rootTag := st.man.RootTag
	shards := st.shards
	st.mu.RUnlock()
	t, err := pattern.Parse(expr)
	if err != nil {
		return ""
	}
	if err := checkShardable(t, rootTag); err != nil {
		return ""
	}
	var b strings.Builder
	for s, sub := range shards {
		v, err := sub.View()
		if err != nil {
			return ""
		}
		empty, _, perr := v.ProvablyEmpty(expr)
		epoch := v.Epoch()
		v.Release()
		if perr != nil {
			return ""
		}
		if empty {
			continue
		}
		if epoch == 0 {
			// A remote shard whose epoch the client has never observed:
			// there is no state to key a cached answer on, so the query
			// is uncachable until the first response or probe lands.
			return ""
		}
		if b.Len() > 0 {
			b.WriteByte('|')
		}
		b.WriteString(strconv.Itoa(s))
		b.WriteByte(':')
		b.WriteString(strconv.FormatUint(epoch, 10))
	}
	if b.Len() == 0 {
		return "none"
	}
	return b.String()
}

// MVCC aggregates the shards' version state: Epoch is the largest
// committed epoch, every other field is summed across shards.
func (st *Store) MVCC() nok.MVCCInfo {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var out nok.MVCCInfo
	if st.closed {
		return out
	}
	for _, sub := range st.shards {
		mi, ok := sub.MVCC()
		if !ok {
			continue
		}
		if mi.Epoch > out.Epoch {
			out.Epoch = mi.Epoch
		}
		out.LiveVersions += mi.LiveVersions
		out.PinnedSnaps += mi.PinnedSnaps
		out.NumLogical += mi.NumLogical
		out.NumPhysical += mi.NumPhysical
		out.FreePhysical += mi.FreePhysical
		out.OrphanPages += mi.OrphanPages
	}
	return out
}

// Epoch returns the largest committed epoch across shards.
func (st *Store) Epoch() uint64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.epochLocked()
}

func (st *Store) epochLocked() uint64 {
	var e uint64
	for _, sub := range st.shards {
		if se := sub.Epoch(); se > e {
			e = se
		}
	}
	return e
}

// NodeCount returns the number of distinct nodes in the merged collection:
// per-shard counts minus the extra replicas of the broadcast root and its
// attributes.
func (st *Store) NodeCount() uint64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var total uint64
	for _, sub := range st.shards {
		total += sub.NodeCount()
	}
	return total - uint64(st.man.Shards-1)*uint64(1+st.man.RootAttrs)
}

// Stats aggregates the shards' physical layout: node counts are
// deduplicated for the broadcast replicas, sizes and page counts are the
// real on-disk sums, and MaxDepth is the maximum.
func (st *Store) Stats() nok.Stats {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var out nok.Stats
	for _, sub := range st.shards {
		s := sub.Stats()
		out.Nodes += s.Nodes
		out.Pages += s.Pages
		out.TreeBytes += s.TreeBytes
		out.ValueBytes += s.ValueBytes
		out.HeaderBytes += s.HeaderBytes
		if s.MaxDepth > out.MaxDepth {
			out.MaxDepth = s.MaxDepth
		}
	}
	out.Nodes -= uint64(st.man.Shards-1) * uint64(1+st.man.RootAttrs)
	return out
}

// TagCount sums the tag's cardinality over shards, deduplicating the
// collection root's replicas. Broadcast root attributes are the one
// remaining overcount: each shard carries a replica and the manifest does
// not record their names, so an @-tag shared with a root attribute counts
// each replica.
func (st *Store) TagCount(name string) uint64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var total uint64
	for _, sub := range st.shards {
		total += sub.TagCount(name)
	}
	if name == st.man.RootTag && total >= uint64(st.man.Shards-1) {
		total -= uint64(st.man.Shards - 1)
	}
	return total
}

// RefreshStats rebuilds every shard's statistics synopsis — pruning and
// cost-based planning degrade to heuristics on shards with stale stats, so
// run this after bulk mutations.
func (st *Store) RefreshStats() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return ErrClosed
	}
	for s, sub := range st.shards {
		if err := sub.RefreshStats(); err != nil {
			return fmt.Errorf("shard %d: %w", s, err)
		}
	}
	return nil
}

// Synopsis merges the shards' synopsis summaries by tag and path name.
// Totals are exact sums over shards (the broadcast root replicas included);
// the top-n lists merge each shard's top-n, so a tag only narrowly popular
// everywhere can in principle be under-ranked.
func (st *Store) Synopsis(n int) nok.SynopsisInfo {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var out nok.SynopsisInfo
	out.Present = true
	tags := map[string]uint64{}
	paths := map[string]uint64{}
	for _, sub := range st.shards {
		si := sub.Synopsis(n)
		if !si.Present {
			out.Present = false
		}
		out.Stale = out.Stale || si.Stale
		if si.Epoch > out.Epoch {
			out.Epoch = si.Epoch
		}
		if si.StoreEpoch > out.StoreEpoch {
			out.StoreEpoch = si.StoreEpoch
		}
		out.TotalNodes += si.TotalNodes
		out.ValueNodes += si.ValueNodes
		out.TreePages += si.TreePages
		if si.MaxDepth > out.MaxDepth {
			out.MaxDepth = si.MaxDepth
		}
		if si.Tags > out.Tags {
			out.Tags = si.Tags
		}
		if si.Paths > out.Paths {
			out.Paths = si.Paths
		}
		out.Truncated = out.Truncated || si.Truncated
		for _, tc := range si.TopTags {
			tags[tc.Name] += tc.Count
		}
		for _, pc := range si.TopPaths {
			paths[pc.Path] += pc.Count
		}
	}
	out.TopTags = topCounts(tags, n, func(name string, c uint64) core.TagCountInfo {
		return core.TagCountInfo{Name: name, Count: c}
	})
	out.TopPaths = topCounts(paths, n, func(name string, c uint64) core.PathCountInfo {
		return core.PathCountInfo{Path: name, Count: c}
	})
	return out
}

func topCounts[T any](m map[string]uint64, n int, mk func(string, uint64) T) []T {
	type row struct {
		name string
		c    uint64
	}
	rows := make([]row, 0, len(m))
	for name, c := range m {
		rows = append(rows, row{name, c})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].c != rows[j].c {
			return rows[i].c > rows[j].c
		}
		return rows[i].name < rows[j].name
	})
	if len(rows) > n {
		rows = rows[:n]
	}
	out := make([]T, len(rows))
	for i, r := range rows {
		out[i] = mk(r.name, r.c)
	}
	return out
}

// Plan renders the cost-based plan per shard, marking shards the
// statistics prove empty for the query.
func (st *Store) Plan(expr string) (string, error) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if st.closed {
		return "", ErrClosed
	}
	t, err := pattern.Parse(expr)
	if err != nil {
		return "", err
	}
	if err := checkShardable(t, st.man.RootTag); err != nil {
		return "", err
	}
	var b strings.Builder
	for s, sub := range st.shards {
		if empty, reason, perr := sub.ProvablyEmpty(expr); perr == nil && empty {
			fmt.Fprintf(&b, "shard %d: pruned (%s)\n", s, reason)
			continue
		}
		pt, err := sub.Plan(expr)
		if err != nil {
			return "", fmt.Errorf("shard %d: %w", s, err)
		}
		fmt.Fprintf(&b, "shard %d:\n", s)
		for _, line := range strings.Split(strings.TrimRight(pt, "\n"), "\n") {
			b.WriteString("  ")
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String(), nil
}

// Verify checks the manifest's internal consistency and every shard's
// integrity, prefixing each shard's issues with its name.
func (st *Store) Verify(deep bool) *nok.VerifyResult {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := &nok.VerifyResult{Deep: deep}
	if st.closed {
		out.Issues = append(out.Issues, nok.VerifyIssue{Component: "store", Err: ErrClosed})
		return out
	}
	seen := map[uint32]int{}
	for s, a := range st.man.Assign {
		for i, g := range a {
			if int(g) <= st.man.RootAttrs {
				out.Issues = append(out.Issues, nok.VerifyIssue{
					Component: "manifest",
					Err:       fmt.Errorf("shard %d assigns broadcast ordinal %d", s, g),
				})
			}
			if i > 0 && a[i-1] >= g {
				out.Issues = append(out.Issues, nok.VerifyIssue{
					Component: "manifest",
					Err:       fmt.Errorf("shard %d assignment not strictly increasing at %d", s, g),
				})
			}
			if prev, dup := seen[g]; dup {
				out.Issues = append(out.Issues, nok.VerifyIssue{
					Component: "manifest",
					Err:       fmt.Errorf("ordinal %d assigned to both shard %d and shard %d", g, prev, s),
				})
			}
			seen[g] = s
		}
	}
	for s, sub := range st.shards {
		r := sub.Verify(deep)
		out.PagesChecked += r.PagesChecked
		out.EntriesChecked += r.EntriesChecked
		out.RecordsChecked += r.RecordsChecked
		for _, is := range r.Issues {
			out.Issues = append(out.Issues, nok.VerifyIssue{
				Component: fmt.Sprintf("shard%d/%s", s, is.Component),
				Err:       is.Err,
			})
		}
	}
	return out
}
