package shard

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"nok"
	"nok/internal/samples"
)

// collection builds a mixed-tag collection with enough documents that
// every shard count under test gets a non-trivial subset.
func collection(docs int) string {
	var b strings.Builder
	b.WriteString(`<bib version="2" curator="kim">`)
	b.WriteString("keeper's note")
	for i := 0; i < docs; i++ {
		switch i % 3 {
		case 0:
			fmt.Fprintf(&b, `<book year="%d"><title>B%d &amp; co</title><author><last>L%d</last><first>F%d</first></author><price>%d.50</price></book>`,
				1990+i%20, i, i%11, i%7, 20+i%80)
		case 1:
			fmt.Fprintf(&b, `<article><title>A%d</title><author><last>L%d</last></author><pages>%d</pages></article>`,
				i, i%11, 4+i%30)
		default:
			fmt.Fprintf(&b, `<book year="2001"><title>B%d</title><author><last>Stevens</last></author><price>9.99</price></book>`, i)
		}
	}
	b.WriteString(`</bib>`)
	return b.String()
}

// shardableQueries covers the full query surface the executor accepts:
// descendant and child axes, wildcards, attributes, value predicates
// (string and numeric), multi-predicate documents, sibling arcs inside a
// document, and matches of the broadcast root itself.
var shardableQueries = []string{
	`//book`,
	`//book/title`,
	`/bib/book/author/last`,
	`//author[last="Stevens"]`,
	`//book[author/last="Stevens"][price<100]`,
	`//book[price=9.99]/title`,
	`//article/pages`,
	`//*/title`,
	`/bib/@version`,
	`/bib/@curator`,
	`/bib`,
	`//bib`,
	`//book[@year=2001]`,
	`/bib/book/author/following-sibling::price`,
	`//last`,
	`//book[title="B0 & co"]`,
	`//nosuchtag`,
}

func openPair(t *testing.T, xml string, shards int, strat Strategy) (*nok.Store, *Store) {
	t.Helper()
	dir := t.TempDir()
	single, err := nok.Create(filepath.Join(dir, "single"), strings.NewReader(xml), nil)
	if err != nil {
		t.Fatalf("single Create: %v", err)
	}
	t.Cleanup(func() { single.Close() })
	sharded, err := Create(filepath.Join(dir, "sharded"), strings.NewReader(xml),
		&Options{Shards: shards, Strategy: strat})
	if err != nil {
		t.Fatalf("sharded Create: %v", err)
	}
	t.Cleanup(func() { sharded.Close() })
	return single, sharded
}

func compareQuery(t *testing.T, single *nok.Store, sharded *Store, expr string, opts *nok.QueryOptions) {
	t.Helper()
	want, _, err := single.QueryWithOptions(expr, opts)
	if err != nil {
		t.Fatalf("single %s: %v", expr, err)
	}
	got, _, err := sharded.QueryWithOptions(expr, opts)
	if err != nil {
		t.Fatalf("sharded %s: %v", expr, err)
	}
	if len(got) != len(want) {
		t.Fatalf("%s: sharded %d results, single %d", expr, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: result %d differs:\n sharded %+v\n single  %+v", expr, i, got[i], want[i])
		}
	}
}

// TestOracleEquivalence is the oracle property: for every shard count,
// routing strategy and starting-point strategy, the sharded store answers
// byte-identically to a single store holding the merged collection.
func TestOracleEquivalence(t *testing.T) {
	xml := collection(60)
	for _, shards := range []int{1, 2, 8} {
		for _, routing := range []Strategy{StrategyHash, StrategyPath} {
			t.Run(fmt.Sprintf("shards=%d/%s", shards, routing), func(t *testing.T) {
				single, sharded := openPair(t, xml, shards, routing)
				for _, expr := range shardableQueries {
					for _, strat := range []nok.Strategy{
						nok.StrategyAuto, nok.StrategyScan, nok.StrategyTagIndex,
						nok.StrategyValueIndex, nok.StrategyPathIndex,
					} {
						compareQuery(t, single, sharded, expr, &nok.QueryOptions{Strategy: strat})
					}
				}
			})
		}
	}
}

// TestOracleAfterMutations drives the same mutation sequence through both
// stores — document insert, deep insert, subtree delete, whole-document
// delete, root-attribute delete — and re-checks equivalence after each.
func TestOracleAfterMutations(t *testing.T) {
	xml := collection(24)
	single, sharded := openPair(t, xml, 4, StrategyHash)
	recheck := func(stage string) {
		t.Helper()
		for _, expr := range shardableQueries {
			compareQuery(t, single, sharded, expr, nil)
		}
		if sn, gn := single.NodeCount(), sharded.NodeCount(); sn != gn {
			t.Fatalf("%s: NodeCount %d (sharded) != %d (single)", stage, gn, sn)
		}
	}
	recheck("initial")

	doc := `<book year="2024"><title>New</title><author><last>Stevens</last></author><price>5.00</price></book>`
	if err := single.Insert("0", strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	if err := sharded.Insert("0", strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	recheck("after document insert")

	// Deep insert into an existing document (root child ordinal 3 = first
	// document after the two root attributes).
	frag := `<note>checked</note>`
	if err := single.Insert("0.3", strings.NewReader(frag)); err != nil {
		t.Fatal(err)
	}
	if err := sharded.Insert("0.3", strings.NewReader(frag)); err != nil {
		t.Fatal(err)
	}
	recheck("after deep insert")

	// Delete a subtree inside a document.
	if err := single.Delete("0.4.1"); err != nil {
		t.Fatal(err)
	}
	if err := sharded.Delete("0.4.1"); err != nil {
		t.Fatal(err)
	}
	recheck("after subtree delete")

	// Delete a whole document: later documents renumber globally.
	if err := single.Delete("0.5"); err != nil {
		t.Fatal(err)
	}
	if err := sharded.Delete("0.5"); err != nil {
		t.Fatal(err)
	}
	recheck("after document delete")

	// Delete a broadcast root attribute: every ordinal shifts down.
	if err := single.Delete("0.1"); err != nil {
		t.Fatal(err)
	}
	if err := sharded.Delete("0.1"); err != nil {
		t.Fatal(err)
	}
	recheck("after root-attribute delete")
}

// TestOpenRoundTrip re-opens a mutated sharded collection from disk and
// checks the manifest still describes the data.
func TestOpenRoundTrip(t *testing.T) {
	xml := collection(20)
	dir := filepath.Join(t.TempDir(), "c")
	st, err := Create(dir, strings.NewReader(xml), &Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Insert("0", strings.NewReader(`<book><title>X</title></book>`)); err != nil {
		t.Fatal(err)
	}
	if err := st.Delete("0.4"); err != nil {
		t.Fatal(err)
	}
	before, err := st.Query(`//title`)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if !IsSharded(dir) {
		t.Fatal("IsSharded = false for a sharded collection")
	}
	st2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if r := st2.Verify(false); !r.OK() {
		t.Fatalf("Verify after reopen: %v", r.Issues)
	}
	after, err := st2.Query(`//title`)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != len(after) {
		t.Fatalf("reopen changed results: %d vs %d", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("reopen result %d differs: %+v vs %+v", i, after[i], before[i])
		}
	}
}

// TestShardPruning checks that statistics-only pruning skips shards and is
// visible in the stats, the plan rendering, and the analyze trace. Path
// routing puts all articles on one shard, so an //article query must prune
// every shard without articles.
func TestShardPruning(t *testing.T) {
	_, sharded := openPair(t, collection(30), 4, StrategyPath)
	rs, stats, err := sharded.QueryWithOptions(`//article/pages`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("no article results")
	}
	skipped := 0
	for _, sh := range stats.Shards {
		if sh.Skipped {
			skipped++
			if !strings.Contains(sh.SkipReason, "article") {
				t.Errorf("shard %d skip reason %q does not name the absent tag", sh.Shard, sh.SkipReason)
			}
		}
	}
	if skipped == 0 {
		t.Fatal("path routing concentrated articles but no shard was pruned")
	}
	plan, err := sharded.Plan(`//article/pages`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "pruned") {
		t.Fatalf("Plan rendering does not show pruning:\n%s", plan)
	}
	_, _, analyze, err := sharded.QueryAnalyze(`//article/pages`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(analyze, "pruned") {
		t.Fatalf("analyze trace does not show pruning:\n%s", analyze)
	}
}

// TestNotShardable pins the refusal surface: constructs whose per-shard
// union is not the global answer must fail with ErrNotShardable.
func TestNotShardable(t *testing.T) {
	_, sharded := openPair(t, collection(12), 2, StrategyHash)
	for _, expr := range []string{
		`/bib[book/title="B0 & co"]//article`, // witness on one shard, results on another
		`//book/following::article`,           // crosses document order globally
		`//*[title][pages]`,                   // wildcard may bind the root
	} {
		_, err := sharded.Query(expr)
		if !errors.Is(err, ErrNotShardable) {
			t.Errorf("%s: err = %v, want ErrNotShardable", expr, err)
		}
	}
	// The single-branch form stays shardable.
	if _, err := sharded.Query(`/bib/book/title`); err != nil {
		t.Errorf("single-branch query refused: %v", err)
	}
}

// TestCacheFingerprint is the per-shard invalidation property: a write to
// a shard a query is pruned from leaves its fingerprint unchanged, while a
// write to a participating shard changes it.
func TestCacheFingerprint(t *testing.T) {
	_, sharded := openPair(t, collection(30), 4, StrategyPath)
	const q = `//article/pages`
	fp := sharded.CacheFingerprint(q)
	if fp == "" || fp == "none" {
		t.Fatalf("no fingerprint for %s: %q", q, fp)
	}

	// Find a shard pruned for q and a document on it to mutate.
	_, stats, err := sharded.QueryWithOptions(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	man := sharded.Manifest()
	victim := -1
	for _, sh := range stats.Shards {
		if sh.Skipped && len(man.Assign[sh.Shard]) > 0 {
			victim = sh.Shard
			break
		}
	}
	if victim == -1 {
		t.Fatal("no pruned shard with documents")
	}
	docID := fmt.Sprintf("0.%d", man.Assign[victim][0])
	if err := sharded.Insert(docID, strings.NewReader(`<note>touched</note>`)); err != nil {
		t.Fatal(err)
	}
	if got := sharded.CacheFingerprint(q); got != fp {
		t.Fatalf("write to pruned shard %d changed fingerprint: %q -> %q", victim, fp, got)
	}

	// Mutate a participating shard (insert an article document: path
	// routing sends it to the article shard).
	if err := sharded.Insert("0", strings.NewReader(`<article><title>new</title><pages>3</pages></article>`)); err != nil {
		t.Fatal(err)
	}
	if got := sharded.CacheFingerprint(q); got == fp {
		t.Fatalf("write to participating shard did not change fingerprint %q", fp)
	}
}

// TestPaperExample runs the paper's running query over a sharded copy of
// the Figure 1(a) bibliography.
func TestPaperExample(t *testing.T) {
	single, sharded := openPair(t, samples.Bibliography, 2, StrategyHash)
	compareQuery(t, single, sharded, samples.PaperQuery, nil)
	rs, err := sharded.Query(samples.PaperQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("paper query returned %d books, want 2", len(rs))
	}
}
