package shard

// mvcc_test.go — the sharded half of the MVCC harness: the scatter
// executor pins every shard's snapshot plus a manifest copy as one
// consistent cut, so queries interleave freely with document mutations
// and with Close.

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"nok"
	"nok/internal/dewey"
)

func renderResults(rs []nok.Result) string {
	var b strings.Builder
	for _, r := range rs {
		fmt.Fprintf(&b, "%s\x1f%s\x1f%v\x1f%s\x1e", r.ID, r.Tag, r.HasValue, r.Value)
	}
	return b.String()
}

// TestScatterConsistentCutUnderMutations races scatter-gather queries
// against document inserts and deletes. Every query must observe one
// committed cut of the collection: results in strict global document
// order with no duplicates (a manifest raced mid-remap would produce
// out-of-order or out-of-assignment IDs), and never an error. Run under
// -race this also proves the executor takes no lock writers hold while
// evaluating.
func TestScatterConsistentCutUnderMutations(t *testing.T) {
	st, err := Create(t.TempDir(), strings.NewReader(collection(60)), &Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	const writers, opsPerWriter, readers = 2, 15, 4
	var (
		wg        sync.WaitGroup
		inserts   atomic.Int64
		deletes   atomic.Int64
		writeDone = make(chan struct{})
	)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerWriter; i++ {
				if i%5 == 4 {
					// Delete the first document (root-child ordinal after
					// the broadcast attributes); this renumbers every
					// later document's global ordinal — the hostile case
					// for a racing remap.
					man := st.Manifest()
					if err := st.Delete(fmt.Sprintf("0.%d", man.RootAttrs+1)); err != nil {
						t.Errorf("delete: %v", err)
						return
					}
					deletes.Add(1)
				} else {
					frag := fmt.Sprintf("<book><title>mv%d-%d</title><price>50</price></book>", w, i)
					if err := st.Insert("0", strings.NewReader(frag)); err != nil {
						t.Errorf("insert: %v", err)
						return
					}
					inserts.Add(1)
				}
			}
		}(w)
	}
	go func() { wg.Wait(); close(writeDone) }()

	var rg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-writeDone:
					return
				default:
				}
				rs, err := st.Query(`//book/title`)
				if err != nil {
					t.Errorf("scatter during writes: %v", err)
					return
				}
				var prev dewey.ID
				for _, res := range rs {
					id, err := dewey.Parse(res.ID)
					if err != nil {
						t.Errorf("malformed result ID %q: %v", res.ID, err)
						return
					}
					if prev != nil && bytes.Compare(prev.Bytes(), id.Bytes()) >= 0 {
						t.Errorf("results out of global document order: %s after %s", res.ID, prev)
						return
					}
					prev = id
				}
			}
		}()
	}
	<-writeDone
	rg.Wait()

	if vr := st.Verify(true); len(vr.Issues) != 0 {
		t.Errorf("deep verify after mutation stress: %v", vr.Issues)
	}
	rs, err := st.Query(`//book`)
	if err != nil {
		t.Fatal(err)
	}
	// collection(60) has 40 books (i%3 != 1); every insert added one,
	// every delete removed the then-first document, which cycles through
	// books and articles — so only bound the count.
	if int64(len(rs)) < 40+inserts.Load()-deletes.Load()-int64(opsPerWriter*writers) {
		t.Errorf("book count %d implausible after %d inserts / %d deletes", len(rs), inserts.Load(), deletes.Load())
	}
}

// TestCloseRacesScatterQueries closes the sharded store while scatter
// queries are in flight. Each query must either complete with a full,
// correctly ordered result set or fail with ErrClosed (the collection's
// or a shard's); afterwards everything returns ErrClosed.
func TestCloseRacesScatterQueries(t *testing.T) {
	st, err := Create(t.TempDir(), strings.NewReader(collection(120)), &Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	want, err := st.Query(`//book/title`)
	if err != nil {
		t.Fatal(err)
	}
	wantR := renderResults(want)

	const readers = 6
	var rg sync.WaitGroup
	start := make(chan struct{})
	for r := 0; r < readers; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			<-start
			for {
				rs, err := st.Query(`//book/title`)
				if err != nil {
					if !errors.Is(err, ErrClosed) && !errors.Is(err, nok.ErrClosed) {
						t.Errorf("scatter during Close: %v, want success or ErrClosed", err)
					}
					return
				}
				if renderResults(rs) != wantR {
					t.Errorf("torn scatter result during Close")
					return
				}
			}
		}()
	}
	close(start)
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	rg.Wait()

	if _, err := st.Query(`//book`); !errors.Is(err, ErrClosed) {
		t.Errorf("Query after Close: %v, want ErrClosed", err)
	}
	if err := st.Insert("0", strings.NewReader("<book/>")); !errors.Is(err, ErrClosed) {
		t.Errorf("Insert after Close: %v, want ErrClosed", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
