package shard

import (
	"errors"
	"fmt"
	"strings"

	"nok/internal/pattern"
)

// ErrNotShardable is the sentinel for queries the scatter-gather executor
// must refuse: match it with errors.Is. The concrete *NotShardableError
// names the construct.
var ErrNotShardable = errors.New("shard: query not shardable")

// NotShardableError reports why a query cannot be evaluated shard-by-shard.
type NotShardableError struct{ Reason string }

func (e *NotShardableError) Error() string {
	return "shard: query not shardable: " + e.Reason
}

func (e *NotShardableError) Is(target error) bool { return target == ErrNotShardable }

// checkShardable decides whether evaluating the pattern independently per
// shard and unioning the remapped results equals evaluating it on the
// merged document. Documents are whole on one shard, so anything confined
// to a single document is safe; the two constructs that cross document
// boundaries are refused:
//
//   - the following:: axis — its frontier spans later documents, which may
//     live on other shards;
//   - branching at a node that may bind to the collection root — a
//     predicate witness in one document then licenses results in another
//     ("/lib[book/title=\"X\"]//article"), and per-shard evaluation only
//     sees its own witnesses. Branches into broadcast state (the root's
//     attributes, replicated on every shard) are exempt; sibling-order
//     arcs among the root's children are a special case of branching and
//     are caught by the same rule.
//
// The root-binding test is conservative: "*" and a test equal to the
// collection root tag count as may-bind-root even when a deeper binding
// also exists.
func checkShardable(t *pattern.Tree, rootTag string) error {
	var bad *NotShardableError
	t.Walk(func(n *pattern.Node, _ int) {
		if bad != nil {
			return
		}
		for _, e := range n.Children {
			if e.Axis == pattern.Following {
				bad = &NotShardableError{"following:: crosses document boundaries"}
				return
			}
		}
		if !mayBindRoot(n, rootTag) {
			return
		}
		routed := 0
		for _, e := range n.Children {
			if !strings.HasPrefix(e.To.Test, "@") {
				routed++
			}
		}
		if routed >= 2 {
			name := n.Test
			if n.IsVirtualRoot() {
				name = "(virtual root)"
			}
			bad = &NotShardableError{fmt.Sprintf(
				"%d branches at %q, which may bind the collection root; a predicate witness and a result could live on different shards", routed, name)}
		}
	})
	if bad != nil {
		return bad
	}
	return nil
}

// mayBindRoot reports whether the pattern node could bind to the
// collection root element (or its virtual parent).
func mayBindRoot(n *pattern.Node, rootTag string) bool {
	return n.IsVirtualRoot() || n.Test == "*" || n.Test == rootTag
}
