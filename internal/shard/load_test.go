package shard

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"nok"
)

// TestScatterGatherLoad hammers one sharded store from many goroutines —
// exactly the access pattern the scatter executor's bounded pool, shared
// stats aggregation, and merge path must survive under the race detector.
// Three phases: concurrent readers checked against a baseline, readers
// racing a mutator, and Close racing readers (the drain property at the
// shard layer).
func TestScatterGatherLoad(t *testing.T) {
	var b strings.Builder
	b.WriteString(`<bib version="9">`)
	for i := 0; i < 120; i++ {
		switch i % 3 {
		case 0:
			fmt.Fprintf(&b, "<article><title>r%d</title><pages>%d</pages></article>", i, i%40)
		default:
			fmt.Fprintf(&b, "<book><title>b%d</title><author><last>a%d</last></author><price>%d</price></book>", i, i%7, i%90)
		}
	}
	b.WriteString("</bib>")
	st, err := Create(filepath.Join(t.TempDir(), "coll"), strings.NewReader(b.String()),
		&Options{Shards: 4, Strategy: StrategyHash})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	startNodes := st.NodeCount()

	queries := []string{
		`//book/title`,
		`//article/pages`,
		`//book[price<30]//last`,
		`/bib/book[author/last="a3"]/title`,
		`//nosuchtag`,
	}
	baseline := make(map[string][]nok.Result, len(queries))
	for _, q := range queries {
		rs, err := st.Query(q)
		if err != nil {
			t.Fatalf("baseline %s: %v", q, err)
		}
		baseline[q] = rs
	}

	// Phase 1: pure read load; every answer must equal the baseline.
	const readers = 8
	var wg sync.WaitGroup
	errCh := make(chan error, readers)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				q := queries[(g+i)%len(queries)]
				rs, err := st.Query(q)
				if err != nil {
					errCh <- fmt.Errorf("reader %d: %s: %w", g, q, err)
					return
				}
				want := baseline[q]
				if len(rs) != len(want) {
					errCh <- fmt.Errorf("reader %d: %s: %d results, want %d", g, q, len(rs), len(want))
					return
				}
				for k := range rs {
					if rs[k] != want[k] {
						errCh <- fmt.Errorf("reader %d: %s: result %d = %+v, want %+v", g, q, k, rs[k], want[k])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Phase 2: readers race a mutator that inserts documents and deletes
	// them again. Results are in flux, so only errors are checked; the
	// mutator restores the starting state, checked after the barrier.
	stop := make(chan struct{})
	errCh = make(chan error, readers+1)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := st.Query(queries[(g+i)%len(queries)]); err != nil {
					errCh <- fmt.Errorf("racing reader %d: %w", g, err)
					return
				}
			}
		}(g)
	}
	for i := 0; i < 10; i++ {
		doc := fmt.Sprintf("<book><title>tmp%d</title><price>1</price></book>", i)
		if err := st.Insert("0", strings.NewReader(doc)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		man := st.Manifest()
		g := uint32(0)
		for _, a := range man.Assign {
			for _, v := range a {
				if v > g {
					g = v
				}
			}
		}
		if err := st.Delete(fmt.Sprintf("0.%d", g)); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if n := st.NodeCount(); n != startNodes {
		t.Fatalf("node count after mutation churn: %d, want %d", n, startNodes)
	}
	for _, q := range queries {
		rs, err := st.Query(q)
		if err != nil {
			t.Fatalf("post-churn %s: %v", q, err)
		}
		if len(rs) != len(baseline[q]) {
			t.Fatalf("post-churn %s: %d results, want %d", q, len(rs), len(baseline[q]))
		}
	}

	// Phase 3: Close while queries are in flight. In-flight scatters hold
	// the read lock, so Close blocks until they drain; late arrivals get
	// ErrClosed, never a partial answer or a panic.
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				rs, err := st.Query(queries[(g+i)%len(queries)])
				if err != nil {
					if !errors.Is(err, ErrClosed) {
						errCh2(t, err)
					}
					return
				}
				if q := queries[(g+i)%len(queries)]; len(rs) != len(baseline[q]) {
					errCh2(t, fmt.Errorf("torn read during close: %s gave %d results", q, len(rs)))
					return
				}
			}
		}(g)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	wg.Wait()
	if err := st.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := st.Query(queries[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("query after close: %v, want ErrClosed", err)
	}
}

// errCh2 reports a phase-3 failure from a goroutine.
func errCh2(t *testing.T, err error) {
	t.Helper()
	t.Error(err)
}
