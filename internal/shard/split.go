package shard

import (
	"bytes"
	"fmt"
	"io"

	"nok/internal/sax"
)

// splitResult is one pass of the splitter: a re-serialized XML buffer per
// shard plus the assignment of global root-child ordinals to shards.
type splitResult struct {
	rootTag   string
	rootAttrs int
	assign    [][]uint32
	routes    map[string]int // top-level tag -> shard (path strategy only)
	docs      []bytes.Buffer
}

// split runs a single SAX pass over the collection and deals its top-level
// documents into n per-shard XML buffers.
//
// The collection root's start tag (with all attributes) and its direct text
// are broadcast to every buffer, so each shard's root is byte-identical to
// the global one — value constraints and attribute tests on the root then
// evaluate identically everywhere, and the executor deduplicates the copies
// on merge. Each depth-1 element subtree is routed whole to one shard and
// re-serialized there. Comments and processing instructions are dropped,
// exactly as the store loader drops them, so loading a shard buffer yields
// the same events the loader would have seen for those documents.
func split(r io.Reader, n int, strat Strategy) (*splitResult, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: need at least 1 shard, got %d", n)
	}
	sc := sax.NewScanner(r)
	res := &splitResult{
		assign: make([][]uint32, n),
		docs:   make([]bytes.Buffer, n),
	}
	for i := range res.assign {
		res.assign[i] = []uint32{}
	}

	// Find the collection root and broadcast its start tag.
	var root sax.Event
	for {
		ev, err := sc.Next()
		if err == io.EOF {
			return nil, fmt.Errorf("shard: no root element")
		}
		if err != nil {
			return nil, err
		}
		if ev.Kind == sax.StartElement {
			root = ev
			break
		}
	}
	res.rootTag = root.Name
	res.rootAttrs = len(root.Attrs)
	for i := range res.docs {
		writeStartTag(&res.docs[i], root)
	}

	depth := 1  // open elements; 1 = inside the collection root only
	target := 0 // shard receiving the current document subtree
	ndocs := uint32(0)
	for {
		ev, err := sc.Next()
		if err == io.EOF {
			return nil, fmt.Errorf("shard: unexpected EOF inside collection")
		}
		if err != nil {
			return nil, err
		}
		switch ev.Kind {
		case sax.StartElement:
			if depth == 1 {
				// A new top-level document: ordinal after the broadcast
				// root attributes and every earlier document.
				ndocs++
				global := uint32(res.rootAttrs) + ndocs
				switch strat {
				case StrategyPath:
					t, ok := res.routes[ev.Name]
					if !ok {
						t = len(res.routes) % n
						if res.routes == nil {
							res.routes = make(map[string]int)
						}
						res.routes[ev.Name] = t
					}
					target = t
				default:
					target = routeHash(global, n)
				}
				res.assign[target] = append(res.assign[target], global)
			}
			writeStartTag(&res.docs[target], ev)
			depth++
		case sax.EndElement:
			depth--
			if depth == 0 {
				// Collection root closes: broadcast and finish.
				for i := range res.docs {
					fmt.Fprintf(&res.docs[i], "</%s>", ev.Name)
				}
				return res, drainTrailer(sc)
			}
			fmt.Fprintf(&res.docs[target], "</%s>", ev.Name)
		case sax.Text:
			if depth == 1 {
				// Direct text of the collection root: broadcast, so every
				// shard's root carries the full root value.
				for i := range res.docs {
					_ = sax.EscapeText(&res.docs[i], ev.Data)
				}
			} else {
				_ = sax.EscapeText(&res.docs[target], ev.Data)
			}
		case sax.Comment, sax.PI:
			// Dropped, as in the store loader.
		}
	}
}

// drainTrailer consumes events after the root closes, rejecting content.
func drainTrailer(sc *sax.Scanner) error {
	for {
		ev, err := sc.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if ev.Kind == sax.StartElement {
			return fmt.Errorf("shard: multiple root elements")
		}
	}
}

func writeStartTag(b *bytes.Buffer, ev sax.Event) {
	b.WriteByte('<')
	b.WriteString(ev.Name)
	for _, a := range ev.Attrs {
		b.WriteByte(' ')
		b.WriteString(a.Name)
		b.WriteString(`="`)
		b.WriteString(sax.EscapeString(a.Value))
		b.WriteString(`"`)
	}
	b.WriteByte('>')
}
