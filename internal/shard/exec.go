package shard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"nok"
	"nok/internal/core"
	"nok/internal/dewey"
	"nok/internal/obs"
	"nok/internal/pattern"
	"nok/internal/remote"
	"nok/internal/telemetry"
)

// Scatter-gather metrics, exposed through the default obs registry.
var (
	mScatterQueries   = obs.Default.Counter("nok_shard_queries_total", "queries evaluated by the scatter-gather executor")
	mShardSkipped     = obs.Default.Counter("nok_shard_skipped_total", "shards skipped because statistics proved them empty for a query")
	mShardFanout      = obs.Default.Counter("nok_shard_fanout_total", "per-shard query executions issued by the scatter-gather executor")
	mShardUnavailable = obs.Default.Counter("nok_shard_unavailable_total", "per-shard scatter attempts that found the shard unreachable")
	mShardDegraded    = obs.Default.Counter("nok_shard_degraded_queries_total", "queries answered with degraded partial results (missing shards)")
)

// Query evaluates a path expression across all shards and returns matches
// in global document order — byte-identical to what the unsharded store
// would return.
func (st *Store) Query(expr string) ([]nok.Result, error) {
	rs, _, err := st.QueryWithOptions(expr, nil)
	return rs, err
}

// QueryWithOptions is Query with per-evaluation options and statistics.
func (st *Store) QueryWithOptions(expr string, opts *nok.QueryOptions) ([]nok.Result, *nok.QueryStats, error) {
	return st.QueryWithOptionsContext(context.Background(), expr, opts)
}

// QueryWithOptionsContext fans the query out to every shard the statistics
// cannot prove empty, on a bounded worker pool, and merges the remapped
// per-shard results. The first shard error cancels the rest; ctx
// cancellation propagates into every shard's matching loops.
func (st *Store) QueryWithOptionsContext(ctx context.Context, expr string, opts *nok.QueryOptions) ([]nok.Result, *nok.QueryStats, error) {
	return st.scatter(ctx, expr, opts, nil)
}

// QueryAnalyze is the sharded EXPLAIN ANALYZE: alongside results and
// aggregated statistics it renders the fan-out — one phase per shard with
// its timing, result count, and (for pruned shards) the statistics proof
// that skipped it.
func (st *Store) QueryAnalyze(expr string, opts *nok.QueryOptions) ([]nok.Result, *nok.QueryStats, string, error) {
	tr := obs.New("query " + expr)
	rs, stats, err := st.scatter(context.Background(), expr, opts, tr)
	tr.Finish()
	if err != nil {
		return nil, nil, "", err
	}
	root := tr.Root()
	root.Set("shards", st.man.Shards)
	root.Set("results", len(rs))
	if stats.Degraded {
		root.Set("degraded", fmt.Sprintf("missing shards %v", stats.MissingShards))
	}
	return rs, stats, tr.String(), nil
}

// shardResult is one shard's remapped, merge-ready output.
type shardResult struct {
	keys []dewey.ID // remapped IDs, ascending
	rs   []nok.Result
}

func (st *Store) scatter(ctx context.Context, expr string, opts *nok.QueryOptions, tr *obs.Trace) ([]nok.Result, *nok.QueryStats, error) {
	begin := time.Now()
	t, err := pattern.Parse(expr)
	if err != nil {
		return nil, nil, err
	}

	// Pin a read view of the collection plus a private copy of the
	// manifest, taken under the lock mutations hold exclusively. For local
	// shards the view is the current MVCC snapshot, so the local side of a
	// query is a consistent cut; remote shards pin nothing here — each
	// remote process evaluates against its own committed snapshot (see
	// docs/FAULT_TOLERANCE.md for the weaker cross-process consistency).
	// Everything after runs without any store-level lock — pruning,
	// evaluation, and Dewey remapping all observe the pinned views, and
	// writers never wait for the scatter.
	st.mu.RLock()
	if st.closed {
		st.mu.RUnlock()
		return nil, nil, ErrClosed
	}
	man := st.man.clone()
	hasRemote := st.remote
	views := make([]View, len(st.shards))
	for s, sub := range st.shards {
		v, serr := sub.View()
		if serr != nil {
			for _, pv := range views[:s] {
				pv.Release()
			}
			st.mu.RUnlock()
			return nil, nil, fmt.Errorf("shard %d: %w", s, serr)
		}
		views[s] = v
	}
	st.mu.RUnlock()
	defer func() {
		for _, v := range views {
			v.Release()
		}
	}()

	if err := checkShardable(t, man.RootTag); err != nil {
		return nil, nil, err
	}
	mScatterQueries.Inc()

	n := man.Shards
	stats := &nok.QueryStats{Shards: make([]core.ShardTiming, n)}
	if opts != nil {
		stats.Requested = opts.Strategy
	}

	// Scatter on a bounded pool. Each view applies its shard's own
	// statistics-based pruning (locally via ProvablyEmpty, remotely inside
	// the /scatter handler, so pruning never costs an extra round trip).
	// CPU-bound local fan-out is bounded by GOMAXPROCS; once remote shards
	// participate the work is network-bound and every shard flies at once.
	base := ctx
	if base == nil {
		base = context.Background()
	}
	qctx, cancel := context.WithCancel(base)
	defer cancel()
	workers := runtime.GOMAXPROCS(0)
	if hasRemote || workers > n {
		workers = n
	}
	sem := make(chan struct{}, max(workers, 1))
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		downErr  error // last remote-unavailability cause
		missing  []int // shards that were unreachable
	)
	perShard := make([]shardResult, n)
	shardStats := make([]*nok.QueryStats, n)
	for s := 0; s < n; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if qctx.Err() != nil {
				return
			}
			mShardFanout.Inc()
			t0 := time.Now()
			res, err := views[s].Scatter(qctx, expr, opts)
			dur := time.Since(t0)
			var sr shardResult
			if err == nil && !res.Pruned {
				sr, err = remapResults(man, s, res.Results)
			}
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if errors.Is(err, remote.ErrUnavailable) {
					// The shard is down, not the query wrong: record it
					// and let the gather decide between degraded partial
					// results and a typed failure. The other shards keep
					// running either way — their results are needed for
					// the degraded answer.
					mShardUnavailable.Inc()
					missing = append(missing, s)
					downErr = err
					stats.Shards[s] = core.ShardTiming{Shard: s, Duration: dur, Unavailable: true}
					return
				}
				if firstErr == nil {
					firstErr = fmt.Errorf("shard %d: %w", s, err)
					cancel()
				}
				return
			}
			if res.Pruned {
				mShardSkipped.Inc()
				stats.Shards[s] = core.ShardTiming{Shard: s, Skipped: true, SkipReason: res.Reason}
				return
			}
			perShard[s] = sr
			shardStats[s] = res.Stats
			stats.Shards[s] = core.ShardTiming{Shard: s, Duration: dur, Results: len(res.Results)}
		}(s)
	}
	wg.Wait()
	if firstErr == nil {
		firstErr = ctxErr(ctx)
	}
	if firstErr != nil {
		return nil, nil, firstErr
	}
	if len(missing) > 0 {
		sort.Ints(missing)
		if opts == nil || !opts.AllowPartial {
			// Correctness requires every un-pruned shard; without the
			// partial-results opt-in a missing one fails the query fast
			// with the typed sentinel the server maps to 503.
			return nil, nil, &UnavailableError{Shards: missing, Err: downErr}
		}
		mShardDegraded.Inc()
		stats.Degraded = true
		stats.MissingShards = missing
	}

	// Aggregate per-shard statistics; StrategyUsed/Partitions describe the
	// first live shard (the pattern partitions identically everywhere).
	for s := 0; s < n; s++ {
		qs := shardStats[s]
		if qs == nil {
			continue
		}
		if stats.Partitions == 0 {
			stats.Partitions = qs.Partitions
			stats.StrategyUsed = qs.StrategyUsed
			stats.Planned = qs.Planned
			stats.PlanEpoch = qs.PlanEpoch
		}
		stats.StartingPoints += qs.StartingPoints
		stats.NPMCalls += qs.NPMCalls
		stats.NodesVisited += qs.NodesVisited
		stats.JoinInputs += qs.JoinInputs
		stats.PagesScanned += qs.PagesScanned
		stats.PagesSkipped += qs.PagesSkipped
		stats.EstRows += qs.EstRows
		stats.EstPages += qs.EstPages
		stats.Parallel = stats.Parallel || qs.Parallel
	}
	if tr != nil {
		for s := 0; s < n; s++ {
			sp := tr.Start(fmt.Sprintf("shard %d", s))
			switch {
			case stats.Shards[s].Unavailable:
				sp.Set("unavailable", true)
			case stats.Shards[s].Skipped:
				sp.Set("pruned", stats.Shards[s].SkipReason)
			default:
				sp.Set("took", stats.Shards[s].Duration.Round(time.Microsecond).String())
				sp.Set("results", stats.Shards[s].Results)
				if qs := shardStats[s]; qs != nil {
					sp.Set("pages-scanned", qs.PagesScanned)
					sp.Set("pages-skipped", qs.PagesSkipped)
				}
			}
			sp.End()
		}
	}

	out := mergeShards(perShard)
	if telemetry.Default.Enabled() {
		st.capture(expr, stats, len(out), begin, time.Since(begin), nil)
	}
	return out, stats, nil
}

// remapResults rewrites shard s's local Dewey IDs into the global
// numbering: the component below the collection root moves from the
// shard-local root-child ordinal to the manifest's global ordinal. The
// rewrite is strictly monotone within a shard, so the slice stays sorted.
// It takes the scatter's pinned manifest copy, not the live one, so a
// concurrent document insert or delete cannot skew the mapping mid-query.
func remapResults(man *Manifest, s int, rs []nok.Result) (shardResult, error) {
	sr := shardResult{keys: make([]dewey.ID, len(rs)), rs: rs}
	for i := range rs {
		id, err := dewey.Parse(rs[i].ID)
		if err != nil {
			return sr, err
		}
		if len(id) > 1 {
			g, ok := man.localToGlobal(s, id[1])
			if !ok {
				return sr, fmt.Errorf("result %s outside shard %d's assignment", rs[i].ID, s)
			}
			if g != id[1] {
				id[1] = g
				rs[i].ID = id.String()
			}
		}
		sr.keys[i] = id
	}
	return sr, nil
}

// mergeShards k-way merges the per-shard result lists by Dewey order and
// deduplicates the broadcast nodes (the collection root and its
// attributes appear once per participating shard).
func mergeShards(per []shardResult) []nok.Result {
	total := 0
	for i := range per {
		total += len(per[i].rs)
	}
	out := make([]nok.Result, 0, total)
	heads := make([]int, len(per))
	var last []byte
	for {
		best := -1
		var bestKey []byte
		for i := range per {
			if heads[i] >= len(per[i].rs) {
				continue
			}
			k := per[i].keys[heads[i]].Bytes()
			if best == -1 || bytes.Compare(k, bestKey) < 0 {
				best, bestKey = i, k
			}
		}
		if best == -1 {
			return out
		}
		r := per[best].rs[heads[best]]
		heads[best]++
		if last != nil && bytes.Equal(bestKey, last) {
			continue // broadcast duplicate
		}
		last = bestKey
		out = append(out, r)
	}
}

// capture emits the collection-level telemetry record for one
// scatter-gather evaluation; the per-shard evaluations have already
// captured their own records through their stores.
func (st *Store) capture(expr string, stats *nok.QueryStats, results int, begin time.Time, dur time.Duration, err error) {
	rec := &telemetry.Record{
		Expr:     expr,
		Start:    begin,
		Duration: dur,
		Results:  results,
		Epoch:    st.epochLocked(),
	}
	if stats != nil {
		rec.Partitions = stats.Partitions
		rec.PagesScanned = stats.PagesScanned
		rec.PagesSkipped = stats.PagesSkipped
		rec.StartingPoints = stats.StartingPoints
		rec.NodesVisited = stats.NodesVisited
		for _, sh := range stats.Shards {
			rec.Shards = append(rec.Shards, telemetry.ShardTiming{
				Shard:      sh.Shard,
				Micros:     sh.Duration.Microseconds(),
				Results:    sh.Results,
				Skipped:    sh.Skipped,
				SkipReason: sh.SkipReason,
			})
		}
	}
	if err != nil {
		rec.Error = err.Error()
	}
	id := telemetry.Default.Capture(rec)
	if stats != nil {
		stats.QueryID = id
	}
}

func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}
