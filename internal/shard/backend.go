package shard

// backend.go — the per-shard storage abstraction behind the scatter
// executor. A shard is either local (a nok.Store directory under the
// collection root) or remote (a nokserve process reached through
// internal/remote's fault-tolerant client); the coordinator talks to both
// through Backend and never cares which is which, except in two places:
// remote unavailability maps to degraded results or ErrShardUnavailable
// (a local shard is either open or the whole store is broken), and remote
// shards sit outside the local MVCC consistent cut (each remote process
// pins its own committed snapshot — see docs/FAULT_TOLERANCE.md).

import (
	"context"
	"io"

	"nok"
	"nok/internal/remote"
)

// Backend is one shard's storage surface. Local shards are *nok.Store
// wrappers; remote shards are internal/remote clients.
type Backend interface {
	// View pins a read view for one scatter: a reference-counted MVCC
	// snapshot locally, a plain handle remotely. The caller must Release
	// it exactly once.
	View() (View, error)

	Value(id string) (string, bool, error)
	Insert(parentID string, fragment io.Reader) error
	Delete(id string) error

	Stats() nok.Stats
	NodeCount() uint64
	Generation() uint64
	Epoch() uint64
	TagCount(name string) uint64
	Synopsis(n int) nok.SynopsisInfo
	// MVCC reports the shard's version accounting; ok is false when the
	// shard cannot report one (an unreachable remote never seen).
	MVCC() (nok.MVCCInfo, bool)
	Plan(expr string) (string, error)
	// ProvablyEmpty consults the shard's statistics synopsis without
	// evaluating. Remote shards answer conservatively (false) here —
	// their real pruning happens server-side inside Scatter, where it
	// costs no extra round trip.
	ProvablyEmpty(expr string) (bool, string, error)
	RefreshStats() error
	Verify(deep bool) *nok.VerifyResult
	Close() error
}

// View is one shard's pinned read view for the duration of one scatter.
type View interface {
	// Epoch is the committed epoch the view observes (a local pin is
	// exact; a remote view reports the last epoch the client has seen,
	// 0 before any response).
	Epoch() uint64
	// Scatter evaluates expr on the shard, applying the shard's own
	// statistics-based pruning first: a provably empty shard returns
	// Pruned=true without evaluating.
	Scatter(ctx context.Context, expr string, opts *nok.QueryOptions) (*remote.ScatterResult, error)
	// ProvablyEmpty consults the view's statistics (used by the cache
	// fingerprint, which needs the pruning verdict and the epoch to
	// describe the same pinned state). Remote views answer false.
	ProvablyEmpty(expr string) (bool, string, error)
	Release()
}

// health describes one shard's availability for Store.Health; local
// shards are always healthy-or-broken with the store itself.
type health interface {
	Healthy() bool
	BreakerState() string
	Addr() string
}

// ---- local --------------------------------------------------------------

// localBackend adapts *nok.Store. Everything except View and MVCC is the
// embedded method set.
type localBackend struct {
	*nok.Store
}

func (b localBackend) View() (View, error) {
	snap, err := b.Store.Snapshot()
	if err != nil {
		return nil, err
	}
	return localView{snap}, nil
}

func (b localBackend) MVCC() (nok.MVCCInfo, bool) { return b.Store.MVCC(), true }

type localView struct {
	snap *nok.Snapshot
}

func (v localView) Epoch() uint64 { return v.snap.Epoch() }
func (v localView) Release()      { v.snap.Release() }

func (v localView) ProvablyEmpty(expr string) (bool, string, error) {
	return v.snap.ProvablyEmpty(expr)
}

func (v localView) Scatter(ctx context.Context, expr string, opts *nok.QueryOptions) (*remote.ScatterResult, error) {
	empty, reason, err := v.snap.ProvablyEmpty(expr)
	if err != nil {
		return nil, err
	}
	if empty {
		return &remote.ScatterResult{Pruned: true, Reason: reason, Epoch: v.snap.Epoch()}, nil
	}
	rs, qs, err := v.snap.QueryWithOptionsContext(ctx, expr, opts)
	if err != nil {
		return nil, err
	}
	return &remote.ScatterResult{Results: rs, Stats: qs, Epoch: v.snap.Epoch()}, nil
}

// ---- remote -------------------------------------------------------------

// remoteBackend adapts a remote client. The client's own methods already
// match the Backend surface; only View and ProvablyEmpty need glue.
type remoteBackend struct {
	*remote.Client
}

func (b remoteBackend) View() (View, error) { return remoteView{b.Client}, nil }

// ProvablyEmpty answers conservatively: the coordinator holds no
// statistics for a remote shard. The remote process applies its own
// pruning inside /scatter.
func (b remoteBackend) ProvablyEmpty(string) (bool, string, error) { return false, "", nil }

type remoteView struct {
	c *remote.Client
}

func (v remoteView) Epoch() uint64 { return v.c.Epoch() }
func (v remoteView) Release()      {}

func (v remoteView) ProvablyEmpty(string) (bool, string, error) { return false, "", nil }

func (v remoteView) Scatter(ctx context.Context, expr string, opts *nok.QueryOptions) (*remote.ScatterResult, error) {
	return v.c.Scatter(ctx, expr, opts)
}
