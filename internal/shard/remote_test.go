package shard

// remote_test.go — the mixed local/remote coordinator against real
// loopback nokserve processes (the same server.Server the binary runs),
// plus the failure-path contracts: fail-fast typed unavailability,
// opt-in degraded partial results, and shutdown racing an in-flight
// remote scatter.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nok"
	"nok/internal/core"
	"nok/internal/remote"
	"nok/internal/server"
)

// fastRemote keeps failure detection quick and deterministic in tests:
// no background prober, no retries unless the test opts in.
func fastRemote() *remote.Config {
	return &remote.Config{
		AttemptTimeout: 2 * time.Second,
		MaxRetries:     -1,
		ProbeInterval:  -1,
	}
}

// serveMixed builds a sharded collection from xml, then rewires the
// shards listed in remoteIdx onto loopback server.Server instances and
// opens the coordinator. The returned servers map is keyed by shard
// index so tests can kill individual shards.
func serveMixed(t *testing.T, xml string, shards int, remoteIdx []int, rcfg *remote.Config) (*Store, map[int]*httptest.Server) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "coll")
	created, err := Create(dir, strings.NewReader(xml), &Options{Shards: shards, Strategy: StrategyHash})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := created.Close(); err != nil {
		t.Fatalf("Close after create: %v", err)
	}

	servers := make(map[int]*httptest.Server)
	addrs := make([]string, shards)
	for _, s := range remoteIdx {
		sub, err := nok.Open(shardDir(dir, s), nil)
		if err != nil {
			t.Fatalf("open member %d: %v", s, err)
		}
		srv := server.NewBackend(sub, server.Config{CacheEntries: -1})
		ts := httptest.NewServer(srv)
		t.Cleanup(func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx) // closes sub
		})
		servers[s] = ts
		addrs[s] = ts.URL
	}
	if err := SetShardAddrs(dir, addrs); err != nil {
		t.Fatalf("SetShardAddrs: %v", err)
	}
	if rcfg == nil {
		rcfg = fastRemote()
	}
	st, err := OpenWithOptions(dir, &OpenOptions{Remote: rcfg})
	if err != nil {
		t.Fatalf("OpenWithOptions: %v", err)
	}
	t.Cleanup(func() { _ = st.Close() })
	return st, servers
}

// TestRemoteOracle: with one shard remote and with every shard remote,
// the coordinator answers byte-identically to a single store holding the
// merged collection — the same oracle the all-local topology is held to.
func TestRemoteOracle(t *testing.T) {
	xml := collection(30)
	dir := t.TempDir()
	single, err := nok.Create(filepath.Join(dir, "single"), strings.NewReader(xml), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()

	for name, remoteIdx := range map[string][]int{
		"one-remote": {1},
		"all-remote": {0, 1, 2},
	} {
		t.Run(name, func(t *testing.T) {
			st, _ := serveMixed(t, xml, 3, remoteIdx, nil)
			for _, q := range shardableQueries {
				compareQuery(t, single, st, q, nil)
			}
			if h := st.Health(); len(h) != 3 {
				t.Fatalf("health entries: %d", len(h))
			} else {
				for _, sh := range h {
					if !sh.Healthy || sh.Breaker == "open" {
						t.Errorf("shard %d unhealthy in a healthy cluster: %+v", sh.Shard, sh)
					}
				}
			}
		})
	}
}

// TestRemoteMutations routes inserts and deletes through the HTTP
// backend: the coordinator locates the owning shard, the remote process
// applies the mutation, and subsequent scattered queries observe it.
func TestRemoteMutations(t *testing.T) {
	st, _ := serveMixed(t, collection(12), 2, []int{0, 1}, nil)

	articles, err := st.Query(`//article`)
	if err != nil {
		t.Fatal(err)
	}
	if len(articles) == 0 {
		t.Fatal("no articles to insert under")
	}
	parent := articles[0].ID

	if err := st.Insert(parent, strings.NewReader(`<errata note="fixed">two typos</errata>`)); err != nil {
		t.Fatalf("remote insert: %v", err)
	}
	rs, err := st.Query(`//errata`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Value != "two typos" {
		t.Fatalf("inserted node not visible through scatter: %+v", rs)
	}
	if v, ok, err := st.Value(rs[0].ID); err != nil || !ok || v != "two typos" {
		t.Fatalf("Value over HTTP: %q ok=%v err=%v", v, ok, err)
	}

	if err := st.Delete(rs[0].ID); err != nil {
		t.Fatalf("remote delete: %v", err)
	}
	rs, err = st.Query(`//errata`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 0 {
		t.Fatalf("deleted node still visible: %+v", rs)
	}
}

// TestRemoteUnavailableFailFast: without the partial-results opt-in, a
// down shard fails the query with the typed sentinel — never a silently
// short answer.
func TestRemoteUnavailableFailFast(t *testing.T) {
	st, servers := serveMixed(t, collection(18), 2, []int{1}, nil)
	servers[1].Close() // connection refused from now on

	_, _, err := st.QueryWithOptions(`//book`, nil)
	if err == nil {
		t.Fatal("query over a dead shard succeeded without AllowPartial")
	}
	if !errors.Is(err, core.ErrShardUnavailable) {
		t.Fatalf("got %v, want core.ErrShardUnavailable", err)
	}
	var ue *UnavailableError
	if !errors.As(err, &ue) || len(ue.Shards) != 1 || ue.Shards[0] != 1 {
		t.Fatalf("unavailable detail: %v", err)
	}
}

// TestRemoteAllowPartial: with the opt-in, the same topology yields the
// healthy shards' results flagged Degraded with the missing-shard list —
// exactly the full answer minus the dead shard's contribution.
func TestRemoteAllowPartial(t *testing.T) {
	st, servers := serveMixed(t, collection(18), 2, []int{1}, nil)

	// Healthy baseline: total count and shard 1's share of it.
	full, stats, err := st.QueryWithOptions(`//book`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Degraded {
		t.Fatalf("healthy query marked degraded: %+v", stats)
	}
	shard1 := 0
	for _, sh := range stats.Shards {
		if sh.Shard == 1 {
			shard1 = sh.Results
		}
	}
	if shard1 == 0 {
		t.Fatal("test needs shard 1 to own some books")
	}

	servers[1].Close()
	got, stats, err := st.QueryWithOptions(`//book`, &nok.QueryOptions{AllowPartial: true})
	if err != nil {
		t.Fatalf("degraded query failed despite AllowPartial: %v", err)
	}
	if !stats.Degraded {
		t.Fatal("stats not marked degraded")
	}
	if len(stats.MissingShards) != 1 || stats.MissingShards[0] != 1 {
		t.Fatalf("missing shards %v, want [1]", stats.MissingShards)
	}
	if len(got) != len(full)-shard1 {
		t.Fatalf("degraded answer has %d results, want %d (full %d minus shard 1's %d)",
			len(got), len(full)-shard1, len(full), shard1)
	}
	// Every surviving result appears in the full answer: a correct subset.
	want := make(map[nok.Result]bool, len(full))
	for _, r := range full {
		want[r] = true
	}
	for _, r := range got {
		if !want[r] {
			t.Fatalf("degraded result %+v not in the full answer", r)
		}
	}
	// The per-shard trace names the dead shard.
	found := false
	for _, sh := range stats.Shards {
		if sh.Shard == 1 && sh.Unavailable {
			found = true
		}
	}
	if !found {
		t.Errorf("shard 1 not marked unavailable in timings: %+v", stats.Shards)
	}

	// Health surfaces the failure for operators.
	for _, sh := range st.Health() {
		if sh.Shard == 1 && sh.Healthy && sh.Breaker == "closed" {
			// Either the healthy flag or the breaker must have noticed.
			t.Errorf("shard 1 still fully healthy after failures: %+v", sh)
		}
	}
}

// TestRemoteCloseDuringScatter races Close against an in-flight remote
// scatter (run under -race in CI): the query must unblock promptly and
// the close must not hang or panic.
func TestRemoteCloseDuringScatter(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "coll")
	created, err := Create(dir, strings.NewReader(collection(12)), &Options{Shards: 2, Strategy: StrategyHash})
	if err != nil {
		t.Fatal(err)
	}
	created.Close()

	// Shard 1 is a black hole that holds every scatter until the client
	// gives up or is canceled.
	entered := make(chan struct{}, 8)
	hang := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-r.Context().Done()
	}))
	defer hang.Close()
	if err := SetShardAddrs(dir, []string{"", hang.URL}); err != nil {
		t.Fatal(err)
	}
	cfg := fastRemote()
	cfg.AttemptTimeout = 30 * time.Second // only Close can unblock it
	st, err := OpenWithOptions(dir, &OpenOptions{Remote: cfg})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, _, err := st.QueryWithOptions(`//book`, nil)
		done <- err
	}()
	<-entered // the remote scatter is in flight
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Error("query against a hung shard succeeded after Close")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("query still blocked 10s after Close")
	}
}

// TestRemoteRetryHeals: transient failures within the retry budget are
// invisible to the caller — the query succeeds with no degradation.
func TestRemoteRetryHeals(t *testing.T) {
	xml := collection(18)
	dir := filepath.Join(t.TempDir(), "coll")
	created, err := Create(dir, strings.NewReader(xml), &Options{Shards: 2, Strategy: StrategyHash})
	if err != nil {
		t.Fatal(err)
	}
	created.Close()

	sub, err := nok.Open(shardDir(dir, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.NewBackend(sub, server.Config{CacheEntries: -1})
	// Flaky front: fail each distinct scatter path once, then forward.
	failed := make(map[string]bool)
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key := r.URL.String()
		if strings.HasPrefix(r.URL.Path, "/scatter") && !failed[key] {
			failed[key] = true
			http.Error(w, "transient", http.StatusBadGateway)
			return
		}
		srv.ServeHTTP(w, r)
	}))
	defer func() {
		flaky.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	if err := SetShardAddrs(dir, []string{"", flaky.URL}); err != nil {
		t.Fatal(err)
	}
	st, err := OpenWithOptions(dir, &OpenOptions{Remote: &remote.Config{
		MaxRetries: 2, RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond, ProbeInterval: -1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	rs, stats, err := st.QueryWithOptions(`//book`, nil)
	if err != nil {
		t.Fatalf("query through flaky shard: %v", err)
	}
	if stats.Degraded {
		t.Fatal("retried-and-recovered query marked degraded")
	}
	if len(rs) == 0 {
		t.Fatal("no results")
	}
}
