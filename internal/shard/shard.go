// Package shard partitions one XML document collection across N
// independent NoK stores and evaluates path queries with a scatter-gather
// executor that merges per-shard results back into global document order.
//
// The unit of distribution is the top-level document: a collection
//
//	<bib> <book>…</book> <book>…</book> … </bib>
//
// is split so every shard holds the collection root (with its attributes
// and direct text, broadcast to all shards) plus a subset of the root's
// element children. Inside a shard the layout is an ordinary NoK store —
// the same succinct string representation, indexes, planner statistics and
// crash-safety machinery — so everything the paper's evaluator does per
// shard is unchanged; this package only routes, fans out and merges.
//
// Results come back in exactly the order the unsharded store would produce:
// each shard's Dewey IDs are remapped from local root-child ordinals to the
// global ordinals recorded in the SHARDS manifest (a strictly monotone
// rewrite, so per-shard document order survives), then k-way merged.
package shard

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sync"

	"nok"
	"nok/internal/core"
	"nok/internal/remote"
)

// Strategy selects how top-level documents are routed to shards.
type Strategy string

const (
	// StrategyHash routes each document by a hash of its global root-child
	// ordinal — uniform spread, position-stable.
	StrategyHash Strategy = "hash"
	// StrategyPath routes each document by its top-level element name: the
	// distinct names are dealt round-robin to shards in order of first
	// appearance (recorded in the manifest's routes table), so all
	// /bib/book documents land on one shard and all /bib/article documents
	// on another — the top-level-path locality routing that lets per-shard
	// statistics prune whole shards from tag-selective queries. Skewed
	// collections (one dominant tag) degrade to one busy shard.
	StrategyPath Strategy = "path"
)

// ManifestName is the file that marks a directory as a sharded collection.
const ManifestName = "SHARDS"

// manifestVersion guards the on-disk manifest format.
const manifestVersion = 1

// Manifest records how the collection was split. Assign[s] lists, in
// increasing order, the global root-child ordinals of the documents shard s
// owns; global ordinal g of a document at position k within shard s is
// Assign[s][k], and its local ordinal there is RootAttrs+k+1 (the broadcast
// root attributes occupy local ordinals 1..RootAttrs in every shard).
type Manifest struct {
	Version   int        `json:"version"`
	Strategy  Strategy   `json:"strategy"`
	Shards    int        `json:"shards"`
	RootTag   string     `json:"root_tag"`
	RootAttrs int        `json:"root_attrs"`
	Assign    [][]uint32 `json:"assign"`
	// Routes maps top-level element names to shards under StrategyPath;
	// names are dealt round-robin in order of first appearance, so up to
	// Shards distinct names never share a shard.
	Routes map[string]int `json:"routes,omitempty"`
	// Addrs optionally places shards on remote nokserve processes: a
	// non-empty Addrs[s] is the base URL (e.g. "http://10.0.0.7:8080")
	// of the process serving shard s's store, and Open builds a
	// fault-tolerant network client for it instead of opening
	// shard-NNNN/ locally. Empty entries (or a missing table) stay
	// local. Edited offline with SetShardAddrs (nokload -addrs).
	Addrs []string `json:"addrs,omitempty"`
}

// Options configure Create.
type Options struct {
	// Shards is the number of partitions (default 4).
	Shards int
	// Strategy is the document-routing strategy (default StrategyHash).
	Strategy Strategy
	// Store passes through to each per-shard nok store.
	Store *nok.Options
}

// Store is an opened sharded collection: N independent nok stores plus the
// manifest mapping documents to shards.
//
// Like nok.Store it is safe for concurrent use — queries fan out in
// parallel with each other; mutations serialize against queries per shard
// and against the manifest here.
type Store struct {
	dir string

	// mu guards man (Assign and RootAttrs move under mutations) and closed.
	// Queries snapshot the assignment under RLock and then run against the
	// per-shard stores, whose own locks serialize against shard mutations.
	mu     sync.RWMutex
	man    *Manifest
	shards []Backend
	closed bool
	// remote reports that at least one backend is a network client; the
	// scatter pool then sizes itself for I/O-bound fan-out instead of
	// CPU-bound evaluation.
	remote bool
}

// ErrClosed is returned by Store methods called after Close.
var ErrClosed = errors.New("shard: store is closed")

// UnavailableError reports a scatter that could not be answered
// completely: the listed shards were unreachable after retries (or their
// circuit breakers were open) and the caller did not opt into degraded
// partial results. It matches errors.Is(err, core.ErrShardUnavailable)
// (aliased as nok.ErrShardUnavailable); the HTTP server maps it to 503.
type UnavailableError struct {
	// Shards lists the unreachable shard indexes, ascending.
	Shards []int
	// Err is the last underlying transport failure.
	Err error
}

func (e *UnavailableError) Error() string {
	return fmt.Sprintf("shard: shards %v unavailable: %v", e.Shards, e.Err)
}
func (e *UnavailableError) Is(target error) bool { return target == core.ErrShardUnavailable }
func (e *UnavailableError) Unwrap() error        { return e.Err }

// IsSharded reports whether dir holds a sharded collection (a SHARDS
// manifest), letting callers pick between nok.Open and shard.Open.
func IsSharded(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, ManifestName))
	return err == nil
}

func shardDir(dir string, s int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%04d", s))
}

// Create splits the XML collection read from xml across o.Shards stores
// under dir and returns the opened collection.
func Create(dir string, xml io.Reader, o *Options) (*Store, error) {
	n, strat := 4, StrategyHash
	var storeOpts *nok.Options
	if o != nil {
		if o.Shards > 0 {
			n = o.Shards
		}
		if o.Strategy != "" {
			strat = o.Strategy
		}
		storeOpts = o.Store
	}
	if strat != StrategyHash && strat != StrategyPath {
		return nil, fmt.Errorf("shard: unknown strategy %q", strat)
	}
	sp, err := split(xml, n, strat)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	man := &Manifest{
		Version:   manifestVersion,
		Strategy:  strat,
		Shards:    n,
		RootTag:   sp.rootTag,
		RootAttrs: sp.rootAttrs,
		Assign:    sp.assign,
		Routes:    sp.routes,
	}
	st := &Store{dir: dir, man: man, shards: make([]Backend, n)}
	for s := 0; s < n; s++ {
		sub, err := nok.Create(shardDir(dir, s), &sp.docs[s], storeOpts)
		if err != nil {
			st.cleanup(s)
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		st.shards[s] = localBackend{sub}
	}
	if err := saveManifest(dir, man); err != nil {
		st.cleanup(n)
		return nil, err
	}
	return st, nil
}

// cleanup closes the first n shards and removes everything Create built.
func (st *Store) cleanup(n int) {
	for s := 0; s < n; s++ {
		if st.shards[s] != nil {
			_ = st.shards[s].Close()
		}
	}
	for s := range st.shards {
		_ = os.RemoveAll(shardDir(st.dir, s))
	}
}

// CreateFromFile is Create reading the collection from a file.
func CreateFromFile(dir, xmlPath string, o *Options) (*Store, error) {
	f, err := os.Open(xmlPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Create(dir, f, o)
}

// OpenOptions configure OpenWithOptions.
type OpenOptions struct {
	// Store passes through to each locally opened per-shard nok store.
	Store *nok.Options
	// Remote tunes the fault-tolerance stack of the network clients built
	// for shards the manifest places on remote addresses (nil selects the
	// remote package's defaults).
	Remote *remote.Config
}

// Open attaches to a sharded collection created by Create. Shards the
// manifest places on remote addresses are reached through fault-tolerant
// network clients; the rest open locally.
func Open(dir string, opts *nok.Options) (*Store, error) {
	return OpenWithOptions(dir, &OpenOptions{Store: opts})
}

// OpenWithOptions is Open with control over the remote-client
// configuration.
func OpenWithOptions(dir string, o *OpenOptions) (*Store, error) {
	if o == nil {
		o = &OpenOptions{}
	}
	var rcfg remote.Config
	if o.Remote != nil {
		rcfg = *o.Remote
	}
	man, err := loadManifest(dir)
	if err != nil {
		return nil, err
	}
	st := &Store{dir: dir, man: man, shards: make([]Backend, man.Shards)}
	for s := 0; s < man.Shards; s++ {
		if addr := man.addr(s); addr != "" {
			st.shards[s] = remoteBackend{remote.New(addr, s, rcfg)}
			st.remote = true
			continue
		}
		sub, err := nok.Open(shardDir(dir, s), o.Store)
		if err != nil {
			for i := 0; i < s; i++ {
				_ = st.shards[i].Close()
			}
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		st.shards[s] = localBackend{sub}
	}
	return st, nil
}

// addr returns shard s's remote base URL, "" for local shards.
func (m *Manifest) addr(s int) string {
	if s < len(m.Addrs) {
		return m.Addrs[s]
	}
	return ""
}

// SetShardAddrs rewrites the manifest's address table: addrs[s] == ""
// keeps shard s local, anything else is the base URL of the nokserve
// process serving it. The collection must not be open for writing while
// the manifest is edited. Pass nil to make every shard local again.
func SetShardAddrs(dir string, addrs []string) error {
	man, err := loadManifest(dir)
	if err != nil {
		return err
	}
	if addrs != nil && len(addrs) != man.Shards {
		return fmt.Errorf("shard: %d addresses for %d shards", len(addrs), man.Shards)
	}
	all := true
	for _, a := range addrs {
		if a != "" {
			all = false
		}
	}
	if all {
		addrs = nil
	}
	man.Addrs = addrs
	return saveManifest(dir, man)
}

// Health reports each shard's availability as the coordinator sees it:
// local shards are healthy by construction (a broken local shard fails
// Open), remote shards report the prober's verdict, the breaker state and
// the last observed epoch.
func (st *Store) Health() []nok.ShardHealth {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]nok.ShardHealth, len(st.shards))
	for s, sub := range st.shards {
		h := nok.ShardHealth{Shard: s, Healthy: !st.closed, Epoch: sub.Epoch()}
		if r, ok := sub.(health); ok {
			h.Remote = true
			h.Addr = r.Addr()
			h.Healthy = r.Healthy()
			h.Breaker = r.BreakerState()
		}
		out[s] = h
	}
	return out
}

// Close closes every shard, draining their in-flight queries. The first
// error is returned but all shards are closed regardless.
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return nil
	}
	st.closed = true
	var first error
	// Remote backends close first: closing a remote client aborts its
	// in-flight scatters, which releases the local MVCC views the same
	// query pinned. Closing a local store first would wait for those
	// pinned readers — held hostage by a hung remote attempt — for the
	// full attempt timeout.
	for _, sub := range st.shards {
		if _, ok := sub.(remoteBackend); !ok {
			continue
		}
		if err := sub.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, sub := range st.shards {
		if _, ok := sub.(remoteBackend); ok {
			continue
		}
		if err := sub.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// NumShards returns the shard count.
func (st *Store) NumShards() int { return st.man.Shards }

// Manifest returns a deep copy of the current manifest.
func (st *Store) Manifest() *Manifest {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.man.clone()
}

// clone deep-copies the manifest. The scatter executor takes a private
// copy under the store lock so document inserts/deletes (which renumber
// Assign entries in place) cannot skew an in-flight query's remapping.
func (m *Manifest) clone() *Manifest {
	c := *m
	if m.Routes != nil {
		c.Routes = make(map[string]int, len(m.Routes))
		for k, v := range m.Routes {
			c.Routes[k] = v
		}
	}
	c.Assign = make([][]uint32, len(m.Assign))
	for i, a := range m.Assign {
		c.Assign[i] = append([]uint32(nil), a...)
	}
	c.Addrs = append([]string(nil), m.Addrs...)
	return &c
}

func saveManifest(dir string, m *Manifest) error {
	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	tmp := filepath.Join(dir, ManifestName+".tmp")
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, ManifestName))
}

func loadManifest(dir string) (*Manifest, error) {
	buf, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("shard: not a sharded collection: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(buf, &m); err != nil {
		return nil, fmt.Errorf("shard: bad manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("shard: manifest version %d not supported", m.Version)
	}
	if m.Shards < 1 || len(m.Assign) != m.Shards {
		return nil, fmt.Errorf("shard: manifest inconsistent: %d shards, %d assignment lists", m.Shards, len(m.Assign))
	}
	if len(m.Addrs) != 0 && len(m.Addrs) != m.Shards {
		return nil, fmt.Errorf("shard: manifest inconsistent: %d shards, %d addresses", m.Shards, len(m.Addrs))
	}
	return &m, nil
}

// routeHash picks the shard for the document with the given global ordinal.
func routeHash(global uint32, shards int) int {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], global)
	h := fnv.New64a()
	_, _ = h.Write(b[:])
	return int(h.Sum64() % uint64(shards))
}

// routeTag picks the shard for a document by its top-level element name,
// assigning unseen names round-robin and recording the choice so later
// documents (and future inserts) with the same name follow them.
func (m *Manifest) routeTag(tag string) int {
	if s, ok := m.Routes[tag]; ok {
		return s
	}
	if m.Routes == nil {
		m.Routes = make(map[string]int)
	}
	s := len(m.Routes) % m.Shards
	m.Routes[tag] = s
	return s
}

// globalToLocal maps a global root-child ordinal to (shard, local ordinal).
// Broadcast ordinals (root attributes, g <= RootAttrs) map to every shard
// unchanged; the second return is false for them.
func (m *Manifest) globalToLocal(g uint32) (shard int, local uint32, routed bool) {
	if int(g) <= m.RootAttrs {
		return 0, g, false
	}
	for s, a := range m.Assign {
		// Binary search: assignment lists are kept sorted.
		lo, hi := 0, len(a)
		for lo < hi {
			mid := (lo + hi) / 2
			if a[mid] < g {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(a) && a[lo] == g {
			return s, uint32(m.RootAttrs + lo + 1), true
		}
	}
	return -1, 0, true
}

// localToGlobal maps shard s's local root-child ordinal back to the global
// one. Broadcast ordinals pass through unchanged.
func (m *Manifest) localToGlobal(s int, local uint32) (uint32, bool) {
	if int(local) <= m.RootAttrs {
		return local, true
	}
	k := int(local) - m.RootAttrs - 1
	if k < 0 || k >= len(m.Assign[s]) {
		return 0, false
	}
	return m.Assign[s][k], true
}
