package di

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nok/internal/domnav"
	"nok/internal/pattern"
	"nok/internal/samples"
)

func loadEngine(t *testing.T, xml string) *Engine {
	t.Helper()
	e, err := Load(filepath.Join(t.TempDir(), "di"), strings.NewReader(xml))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func queryOrds(t *testing.T, e *Engine, expr string) []int {
	t.Helper()
	rs, err := e.Query(expr)
	if err != nil {
		t.Fatalf("Query(%q): %v", expr, err)
	}
	out := make([]int, len(rs))
	for i, r := range rs {
		out[i] = r.Ordinal
	}
	return out
}

func oracleOrds(t *testing.T, doc *domnav.Doc, expr string) []int {
	t.Helper()
	tr, err := pattern.Parse(expr)
	if err != nil {
		t.Fatal(err)
	}
	var out []int
	for _, n := range domnav.Evaluate(doc, tr) {
		out = append(out, n.Order)
	}
	return out
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBibliographyAgainstOracle(t *testing.T) {
	e := loadEngine(t, samples.Bibliography)
	doc := domnav.MustParse(samples.Bibliography)
	queries := []string{
		`/bib`,
		`/bib/book`,
		`/bib/book/title`,
		`//last`,
		`//book[author/last="Stevens"]`,
		`//book[@year="2000"]/title`,
		`//book[editor]`,
		`//book[author][editor]`,
		`/bib/*/title`,
		`//author//last`,
		`//book[title="Data on the Web"]//last`,
		`//missing`,
	}
	for _, q := range queries {
		got := queryOrds(t, e, q)
		want := oracleOrds(t, doc, q)
		if !sameInts(got, want) {
			t.Errorf("%s:\n got  %v\n want %v", q, got, want)
		}
	}
}

func TestNotImplementedCells(t *testing.T) {
	// Non-equality comparisons are DI's NI cells in Table 3.
	e := loadEngine(t, samples.Bibliography)
	for _, q := range []string{
		`//book[price<100]`,
		`//book[price>=129.95]`,
		`//book[price!="65.95"]`,
		`//book/author/following-sibling::author`,
	} {
		_, err := e.Query(q)
		if !errors.Is(err, ErrNotImplemented) {
			t.Errorf("%s: err = %v, want ErrNotImplemented", q, err)
		}
	}
}

func TestSelectivityInsensitiveScans(t *testing.T) {
	// DI scans the full table per pattern node regardless of selectivity —
	// the paper's explanation for its flat running times.
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < 500; i++ {
		fmt.Fprintf(&sb, "<a><b>%d</b></a>", i%100)
	}
	sb.WriteString("</r>")
	e := loadEngine(t, sb.String())

	e.ResetStats()
	if _, err := e.Query(`/r/a[b="1"]`); err != nil {
		t.Fatal(err)
	}
	high := e.Stats().TuplesScanned

	e.ResetStats()
	if _, err := e.Query(`/r/a[b="x"]`); err != nil { // zero matches
		t.Fatal(err)
	}
	zero := e.Stats().TuplesScanned

	if high != zero {
		t.Errorf("scans should be selectivity-insensitive: %d vs %d", high, zero)
	}
	if high == 0 {
		t.Error("stats not counting")
	}
}

func TestTopologySensitivity(t *testing.T) {
	// A bushy query joins (and materializes) more than a path query of the
	// same node count.
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < 200; i++ {
		sb.WriteString("<a><b><c/></b><d/><e/></a>")
	}
	sb.WriteString("</r>")
	e := loadEngine(t, sb.String())

	e.ResetStats()
	if _, err := e.Query(`/r/a/b/c`); err != nil {
		t.Fatal(err)
	}
	path := e.Stats()

	e.ResetStats()
	if _, err := e.Query(`/r/a[b][d][e]`); err != nil {
		t.Fatal(err)
	}
	bushy := e.Stats()

	if bushy.TuplesMaterialized <= path.TuplesMaterialized {
		t.Errorf("bushy should materialize more: %d vs %d",
			bushy.TuplesMaterialized, path.TuplesMaterialized)
	}
}

func TestPersistence(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "di")
	e, err := Load(dir, strings.NewReader(samples.Bibliography))
	if err != nil {
		t.Fatal(err)
	}
	want := queryOrds(t, e, `/bib/book/title`)
	e.Close()

	e2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	got := queryOrds(t, e2, `/bib/book/title`)
	if !sameInts(got, want) {
		t.Errorf("after reopen: %v, want %v", got, want)
	}
	if e2.Count() == 0 {
		t.Error("count lost")
	}
}

func TestRandomDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tags := []string{"a", "b", "c", "d"}
	vals := []string{"x", "y", "z"}
	var gen func(sb *strings.Builder, budget, depth int) int
	gen = func(sb *strings.Builder, budget, depth int) int {
		tag := tags[rng.Intn(len(tags))]
		sb.WriteString("<" + tag + ">")
		used := 1
		kids := rng.Intn(4)
		if depth > 5 {
			kids = 0
		}
		if kids == 0 {
			sb.WriteString(vals[rng.Intn(len(vals))])
		}
		for i := 0; i < kids && used < budget; i++ {
			used += gen(sb, (budget-used)/(kids-i)+1, depth+1)
		}
		sb.WriteString("</" + tag + ">")
		return used
	}
	for trial := 0; trial < 3; trial++ {
		var sb strings.Builder
		sb.WriteString("<root>")
		n := 0
		for n < 200 {
			n += gen(&sb, 200-n, 1)
		}
		sb.WriteString("</root>")
		xml := sb.String()
		e := loadEngine(t, xml)
		doc := domnav.MustParse(xml)
		queries := []string{
			`/root/a`, `//a/b`, `//a[b]`, `//a[b="x"]`, `//b//c`,
			`/root/a[b][c]`, `//a[b/c]`, `//*[c="y"]`, `//d[a]//b`,
		}
		for _, q := range queries {
			got := queryOrds(t, e, q)
			want := oracleOrds(t, doc, q)
			if !sameInts(got, want) {
				t.Errorf("trial %d %s:\n got  %v\n want %v", trial, q, got, want)
			}
		}
	}
}

func TestFollowingAxisAgainstOracle(t *testing.T) {
	xml := `<r><a><x>1</x></a><mark/><a><x>2</x></a><b/><a><x>3</x></a></r>`
	e := loadEngine(t, xml)
	doc := domnav.MustParse(xml)
	for _, q := range []string{
		`//mark/following::a`,
		`//a/following::mark`,
		`//b/following::a/x`,
		`//a[x="3"]/following::a`,
	} {
		got := queryOrds(t, e, q)
		want := oracleOrds(t, doc, q)
		if !sameInts(got, want) {
			t.Errorf("%s: got %v want %v", q, got, want)
		}
	}
}

func TestOpenErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(dir); err == nil {
		t.Error("Open of empty dir should fail")
	}
	// Partial directory: tags present, table missing.
	e := loadEngine(t, samples.Bibliography)
	_ = e
	src := filepath.Join(t.TempDir(), "di2")
	e2, err := Load(src, strings.NewReader(samples.Bibliography))
	if err != nil {
		t.Fatal(err)
	}
	e2.Close()
	if err := os.Remove(filepath.Join(src, "elements.tbl")); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(src); err == nil {
		t.Error("Open without element table should fail")
	}
}

func TestDeepLevelsParentChild(t *testing.T) {
	// Parent-child joins must respect exact level difference even with
	// same-tag nesting.
	xml := `<r><a><a><b/></a></a><a><b/></a></r>`
	e := loadEngine(t, xml)
	doc := domnav.MustParse(xml)
	for _, q := range []string{`//a/b`, `//a/a/b`, `/r/a/b`, `//a//b`} {
		got := queryOrds(t, e, q)
		want := oracleOrds(t, doc, q)
		if !sameInts(got, want) {
			t.Errorf("%s: got %v want %v", q, got, want)
		}
	}
}
