// Package di implements the dynamic-interval (DI) baseline [DeHaan et al.,
// SIGMOD 2003]: every element is shredded to an interval-encoded tuple
// (start, end, level, tag, value) and path expressions are evaluated with
// per-step structural joins over full element lists.
//
// The implementation deliberately reproduces the properties the paper
// attributes to DI in §6.2:
//
//   - No tag-name index: every pattern node's input list is produced by a
//     sequential scan of the whole element table ("DI has only limited
//     support for tag-name index at this time, so we did not use index on
//     the tests for DI"), so DI is insensitive to selectivity.
//   - Intermediate join results are materialized per pattern edge, so
//     bushy queries cost extra joins and materialization ("DI is topology
//     sensitive").
//   - Value comparisons other than equality are not implemented and yield
//     ErrNotImplemented — Table 3's NI cells.
package di

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"nok/internal/join"
	"nok/internal/obs"
	"nok/internal/pattern"
	"nok/internal/sax"
	"nok/internal/stree"
	"nok/internal/symtab"
	"nok/internal/vstore"
)

// Process-wide DI-baseline counters, exposed through the default obs
// registry (mirrors of Stats, aggregated across engines).
var (
	mQueries      = obs.Default.Counter("nok_di_queries_total", "queries evaluated by the DI baseline")
	mScanned      = obs.Default.Counter("nok_di_tuples_scanned_total", "element-table records read by the DI baseline")
	mMaterialized = obs.Default.Counter("nok_di_tuples_materialized_total", "intermediate result tuples materialized by the DI baseline")
	mDIJoins      = obs.Default.Counter("nok_di_joins_total", "structural joins performed by the DI baseline")
)

// ErrNotImplemented marks query features the DI prototype lacked (the NI
// cells of Table 3).
var ErrNotImplemented = errors.New("di: not implemented (non-equality value comparison or sibling axis)")

// record layout in the element table: start u64, end u64, level u16,
// sym u16, valOff u64 (NoValue = none).
const recordSize = 8 + 8 + 2 + 2 + 8

// Element-table header: magic "NKDT" | version u16 | reserved u16 |
// count u64 | crc32c u32 (over the first 16 bytes). The checksummed count
// lets Open detect a truncated or damaged table instead of deriving the
// element count from whatever the file size happens to be.
const (
	tableMagic     = "NKDT"
	tableVersion   = 1
	tableHeaderLen = 4 + 2 + 2 + 8 + 4
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrBadTable is returned by Open when the element table's header is
// missing or damaged, or the table body does not match the recorded count.
var ErrBadTable = errors.New("di: bad element table")

func encodeTableHeader(count int) []byte {
	hdr := make([]byte, tableHeaderLen)
	copy(hdr[0:4], tableMagic)
	binary.BigEndian.PutUint16(hdr[4:6], tableVersion)
	binary.BigEndian.PutUint64(hdr[8:16], uint64(count))
	binary.BigEndian.PutUint32(hdr[16:20], crc32.Checksum(hdr[:16], crcTable))
	return hdr
}

// NoValue marks elements without text content.
const NoValue = ^uint64(0)

const (
	fileTable  = "elements.tbl"
	fileTags   = "tags.sym"
	fileValues = "values.dat"
)

// Engine is an opened DI store.
type Engine struct {
	dir   string
	tags  *symtab.Table
	vals  *vstore.Store
	count int

	// Stats accumulate across queries until ResetStats.
	stats Stats
}

// Stats counts the work DI does.
type Stats struct {
	// TuplesScanned counts element-table records read.
	TuplesScanned int64
	// TuplesMaterialized counts intermediate result tuples written.
	TuplesMaterialized int64
	// Joins counts structural joins performed.
	Joins int64
}

// Element is one interval-encoded tuple.
type Element struct {
	Interval stree.Interval
	Level    int
	Sym      symtab.Sym
	ValOff   uint64
}

// Result identifies a matched element by its preorder ordinal (the order
// of its record in the element table).
type Result struct {
	Ordinal  int
	Interval stree.Interval
	Level    int
}

// Load shreds an XML document into a new DI directory.
func Load(dir string, r io.Reader) (*Engine, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	tags := symtab.New()
	vals, err := vstore.Create(filepath.Join(dir, fileValues))
	if err != nil {
		return nil, err
	}
	f, err := os.Create(filepath.Join(dir, fileTable))
	if err != nil {
		vals.Close()
		return nil, err
	}
	w := bufio.NewWriterSize(f, 256<<10)

	type open struct {
		sym     symtab.Sym
		start   uint64
		ordinal int
		text    strings.Builder
	}
	var stack []*open
	var pos uint64
	count := 0
	sc := sax.NewScanner(r)

	// Elements must be written in start order, but end positions are only
	// known at close. Buffer per-element records in memory in start order
	// and flush at the end (records are 28 bytes; even the largest bench
	// dataset fits easily).
	type rec struct {
		start, end uint64
		level      uint16
		sym        symtab.Sym
		valOff     uint64
	}
	var recs []rec

	openElem := func(name string) error {
		sym, err := tags.Intern(name)
		if err != nil {
			return err
		}
		pos++
		stack = append(stack, &open{sym: sym, start: pos, ordinal: count})
		recs = append(recs, rec{start: pos, level: uint16(len(stack)), sym: sym, valOff: NoValue})
		count++
		return nil
	}
	closeElem := func(trim bool) error {
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		pos++
		recs[e.ordinal].end = pos
		text := e.text.String()
		if trim {
			text = strings.TrimSpace(text)
		}
		if text != "" {
			off, err := vals.Append([]byte(text))
			if err != nil {
				return err
			}
			recs[e.ordinal].valOff = uint64(off)
		}
		return nil
	}

	for {
		ev, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			f.Close()
			vals.Close()
			return nil, err
		}
		switch ev.Kind {
		case sax.StartElement:
			if err := openElem(ev.Name); err != nil {
				f.Close()
				vals.Close()
				return nil, err
			}
			for _, a := range ev.Attrs {
				if err := openElem(symtab.AttrPrefix + a.Name); err != nil {
					f.Close()
					vals.Close()
					return nil, err
				}
				stack[len(stack)-1].text.WriteString(a.Value)
				if err := closeElem(false); err != nil {
					f.Close()
					vals.Close()
					return nil, err
				}
			}
		case sax.EndElement:
			if err := closeElem(true); err != nil {
				f.Close()
				vals.Close()
				return nil, err
			}
		case sax.Text:
			if len(stack) > 0 {
				stack[len(stack)-1].text.WriteString(ev.Data)
			}
		}
	}

	if _, err := w.Write(encodeTableHeader(count)); err != nil {
		f.Close()
		vals.Close()
		return nil, err
	}
	var buf [recordSize]byte
	for _, rc := range recs {
		binary.BigEndian.PutUint64(buf[0:8], rc.start)
		binary.BigEndian.PutUint64(buf[8:16], rc.end)
		binary.BigEndian.PutUint16(buf[16:18], rc.level)
		binary.BigEndian.PutUint16(buf[18:20], uint16(rc.sym))
		binary.BigEndian.PutUint64(buf[20:28], rc.valOff)
		if _, err := w.Write(buf[:]); err != nil {
			f.Close()
			vals.Close()
			return nil, err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		vals.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		vals.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		vals.Close()
		return nil, err
	}
	if err := tags.Save(filepath.Join(dir, fileTags)); err != nil {
		vals.Close()
		return nil, err
	}
	return &Engine{dir: dir, tags: tags, vals: vals, count: count}, nil
}

// Open attaches to an existing DI directory.
func Open(dir string) (*Engine, error) {
	tags, err := symtab.Load(filepath.Join(dir, fileTags))
	if err != nil {
		return nil, err
	}
	vals, err := vstore.Open(filepath.Join(dir, fileValues))
	if err != nil {
		return nil, err
	}
	tablePath := filepath.Join(dir, fileTable)
	f, err := os.Open(tablePath)
	if err != nil {
		vals.Close()
		return nil, err
	}
	defer f.Close()
	var hdr [tableHeaderLen]byte
	if n, err := f.ReadAt(hdr[:], 0); err != nil && err != io.EOF {
		vals.Close()
		return nil, err
	} else if n < tableHeaderLen {
		vals.Close()
		return nil, fmt.Errorf("%w: %s: truncated header (%d bytes)", ErrBadTable, tablePath, n)
	}
	if string(hdr[0:4]) != tableMagic {
		vals.Close()
		return nil, fmt.Errorf("%w: %s: bad magic %q (pre-checksum file? rebuild the store)", ErrBadTable, tablePath, hdr[0:4])
	}
	if crc32.Checksum(hdr[:16], crcTable) != binary.BigEndian.Uint32(hdr[16:20]) {
		vals.Close()
		return nil, fmt.Errorf("%w: %s: header checksum mismatch", ErrBadTable, tablePath)
	}
	if v := binary.BigEndian.Uint16(hdr[4:6]); v != tableVersion {
		vals.Close()
		return nil, fmt.Errorf("%w: %s: unsupported version %d", ErrBadTable, tablePath, v)
	}
	count := int(binary.BigEndian.Uint64(hdr[8:16]))
	fi, err := f.Stat()
	if err != nil {
		vals.Close()
		return nil, err
	}
	if want := int64(tableHeaderLen) + int64(count)*recordSize; fi.Size() != want {
		vals.Close()
		return nil, fmt.Errorf("%w: %s: size %d does not match recorded count %d (want %d bytes; truncated or torn write)",
			ErrBadTable, tablePath, fi.Size(), count, want)
	}
	return &Engine{dir: dir, tags: tags, vals: vals, count: count}, nil
}

// Close releases the engine.
func (e *Engine) Close() error { return e.vals.Close() }

// Count returns the number of stored elements.
func (e *Engine) Count() int { return e.count }

// Stats returns accumulated work counters.
func (e *Engine) Stats() Stats { return e.stats }

// ResetStats zeroes the counters.
func (e *Engine) ResetStats() { e.stats = Stats{} }

// scan sequentially reads the whole element table, calling fn for each
// element in document order — DI's only access path.
func (e *Engine) scan(fn func(ordinal int, el Element) error) error {
	f, err := os.Open(filepath.Join(e.dir, fileTable))
	if err != nil {
		return err
	}
	defer f.Close()
	body := io.NewSectionReader(f, tableHeaderLen, int64(e.count)*recordSize)
	r := bufio.NewReaderSize(body, 256<<10)
	var buf [recordSize]byte
	for i := 0; ; i++ {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		e.stats.TuplesScanned++
		el := Element{
			Interval: stree.Interval{
				Start: binary.BigEndian.Uint64(buf[0:8]),
				End:   binary.BigEndian.Uint64(buf[8:16]),
			},
			Level:  int(binary.BigEndian.Uint16(buf[16:18])),
			Sym:    symtab.Sym(binary.BigEndian.Uint16(buf[18:20])),
			ValOff: binary.BigEndian.Uint64(buf[20:28]),
		}
		if err := fn(i, el); err != nil {
			return err
		}
	}
}

// item is a materialized tuple in an intermediate result list.
type item struct {
	ordinal int
	iv      stree.Interval
	level   int
}

// selectNodes materializes the element list for one pattern node: a full
// table scan filtered by the node's tag and value constraints.
func (e *Engine) selectNodes(p *pattern.Node) ([]item, error) {
	if p.HasValueConstraint() && p.Cmp != pattern.CmpEq && p.Cmp != pattern.CmpNone {
		return nil, ErrNotImplemented
	}
	wild := p.Test == "*"
	var want symtab.Sym
	if !wild {
		sym, ok := e.tags.Lookup(p.Test)
		if !ok {
			return nil, nil
		}
		want = sym
	}
	var out []item
	err := e.scan(func(ordinal int, el Element) error {
		if !wild && el.Sym != want {
			return nil
		}
		if p.HasValueConstraint() {
			if el.ValOff == NoValue {
				return nil
			}
			v, err := e.vals.Get(int64(el.ValOff))
			if err != nil {
				return err
			}
			if !p.Cmp.Eval(string(v), p.Literal) {
				return nil
			}
		}
		out = append(out, item{ordinal: ordinal, iv: el.Interval, level: el.Level})
		e.stats.TuplesMaterialized++
		return nil
	})
	return out, err
}

// Query evaluates a path expression.
func (e *Engine) Query(expr string) ([]Result, error) {
	t, err := pattern.Parse(expr)
	if err != nil {
		return nil, err
	}
	return e.QueryPattern(t)
}

// QueryPattern evaluates a parsed pattern tree with per-edge structural
// joins: a bottom-up semijoin pass computes, for every pattern node, the
// elements whose subtree constraints hold; a top-down pass then narrows
// the chain to the returning node.
func (e *Engine) QueryPattern(t *pattern.Tree) ([]Result, error) {
	mQueries.Inc()
	before := e.stats
	defer func() {
		mScanned.Add(e.stats.TuplesScanned - before.TuplesScanned)
		mMaterialized.Add(e.stats.TuplesMaterialized - before.TuplesMaterialized)
		mDIJoins.Add(e.stats.Joins - before.Joins)
	}()
	// Reject sibling-order arcs, which the DI prototype did not support.
	var hasArcs bool
	t.Walk(func(n *pattern.Node, _ int) {
		if len(n.PrecededBy) > 0 {
			hasArcs = true
		}
	})
	if hasArcs {
		return nil, ErrNotImplemented
	}

	// Single-path queries admit a pipelined plan in DI ("in a single-path
	// query, DI could use a pipelined plan and avoid materialization"),
	// so intermediate join outputs only count as materialized tuples when
	// the pattern tree branches.
	pipelined := true
	t.Walk(func(n *pattern.Node, _ int) {
		if len(n.Children) > 1 {
			pipelined = false
		}
	})

	lists := make(map[*pattern.Node][]item)
	// Bottom-up: matchList(p) = select(p) semijoined with each child list.
	var up func(p *pattern.Node) error
	up = func(p *pattern.Node) error {
		for _, edge := range p.Children {
			if err := up(edge.To); err != nil {
				return err
			}
		}
		var list []item
		if p.IsVirtualRoot() {
			list = []item{{ordinal: -1, iv: stree.Interval{Start: 0, End: ^uint64(0)}, level: 0}}
		} else {
			var err error
			list, err = e.selectNodes(p)
			if err != nil {
				return err
			}
		}
		for _, edge := range p.Children {
			childList := lists[edge.To]
			list = e.semiJoinParents(list, childList, edge.Axis)
			e.stats.Joins++
			if !pipelined {
				e.stats.TuplesMaterialized += int64(len(list))
			}
		}
		lists[p] = list
		return nil
	}
	if err := up(t.Root); err != nil {
		return nil, err
	}

	// Top-down: narrow along the path to the returning node.
	chain := chainToReturn(t)
	cur := lists[chain[0]]
	for i := 1; i < len(chain); i++ {
		axis := axisBetween(chain[i-1], chain[i])
		cur = e.joinChildren(cur, lists[chain[i]], axis)
		e.stats.Joins++
		if !pipelined {
			e.stats.TuplesMaterialized += int64(len(cur))
		}
	}

	out := make([]Result, len(cur))
	for i, it := range cur {
		out[i] = Result{Ordinal: it.ordinal, Interval: it.iv, Level: it.level}
	}
	return out, nil
}

// structuralPairs enumerates (parent, child) index pairs satisfying the
// axis via the stack-based structural join; for the Child axis the level
// difference filters ancestor pairs down to parent-child ones. Both lists
// must be sorted by interval start, which they are by construction (the
// table is in document order and joins preserve it).
func structuralPairs(parents, children []item, axis pattern.Axis) []join.Pair {
	ancIvs := make([]stree.Interval, len(parents))
	for i, p := range parents {
		ancIvs[i] = p.iv
	}
	descIvs := make([]stree.Interval, len(children))
	for i, c := range children {
		descIvs[i] = c.iv
	}
	pairs := join.StackJoin(ancIvs, descIvs)
	if axis == pattern.Child {
		kept := pairs[:0]
		for _, pr := range pairs {
			if children[pr.Desc].level == parents[pr.Anc].level+1 {
				kept = append(kept, pr)
			}
		}
		pairs = kept
	}
	return pairs
}

// semiJoinParents keeps parents that have a qualifying child/descendant/
// follower in children.
func (e *Engine) semiJoinParents(parents, children []item, axis pattern.Axis) []item {
	var out []item
	switch axis {
	case pattern.Child, pattern.Descendant:
		keep := make([]bool, len(parents))
		for _, pr := range structuralPairs(parents, children, axis) {
			keep[pr.Anc] = true
		}
		for i, p := range parents {
			if keep[i] {
				out = append(out, p)
			}
		}
	case pattern.Following:
		maxStart := uint64(0)
		for _, c := range children {
			if c.iv.Start > maxStart {
				maxStart = c.iv.Start
			}
		}
		for _, p := range parents {
			if p.iv.End < maxStart {
				out = append(out, p)
			}
		}
	}
	return out
}

// joinChildren keeps children reachable from some parent via axis.
func (e *Engine) joinChildren(parents, children []item, axis pattern.Axis) []item {
	var out []item
	switch axis {
	case pattern.Child, pattern.Descendant:
		keep := make([]bool, len(children))
		for _, pr := range structuralPairs(parents, children, axis) {
			keep[pr.Desc] = true
		}
		for i, c := range children {
			if keep[i] {
				out = append(out, c)
			}
		}
	case pattern.Following:
		var minEnd uint64 = ^uint64(0)
		for _, p := range parents {
			if p.iv.End < minEnd {
				minEnd = p.iv.End
			}
		}
		for _, c := range children {
			if c.iv.Start > minEnd {
				out = append(out, c)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].iv.Start < out[j].iv.Start })
	return out
}

func chainToReturn(t *pattern.Tree) []*pattern.Node {
	parentOf := map[*pattern.Node]*pattern.Node{}
	t.Walk(func(n *pattern.Node, _ int) {
		for _, e := range n.Children {
			parentOf[e.To] = n
		}
	})
	var chain []*pattern.Node
	for n := t.Return; n != nil; n = parentOf[n] {
		chain = append(chain, n)
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain
}

func axisBetween(parent, child *pattern.Node) pattern.Axis {
	for _, e := range parent.Children {
		if e.To == child {
			return e.Axis
		}
	}
	return pattern.Child
}
