package datagen

import (
	"bytes"
	"path/filepath"
	"testing"

	"nok/internal/domnav"
)

func generate(t *testing.T, spec Spec, scale int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), spec.Name+".xml")
	if err := GenerateFile(spec, path, scale, 7); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAllDatasetsWellFormed(t *testing.T) {
	for _, spec := range Specs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			path := generate(t, spec, 1)
			st, err := ComputeStats(path)
			if err != nil {
				t.Fatalf("stats (document malformed?): %v", err)
			}
			if st.Nodes < 1000 {
				t.Errorf("only %d nodes at scale 1", st.Nodes)
			}
			t.Logf("%s: %d bytes, %d nodes, avg depth %.1f, max depth %d, %d tags",
				spec.Name, st.Bytes, st.Nodes, st.AvgDepth, st.MaxDepth, st.Tags)
		})
	}
}

func TestDeterminism(t *testing.T) {
	for _, spec := range Specs() {
		var a, b bytes.Buffer
		if err := spec.Generate(&a, 1, 42); err != nil {
			t.Fatal(err)
		}
		if err := spec.Generate(&b, 1, 42); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("%s: not deterministic", spec.Name)
		}
		if err := spec.Generate(&b, 1, 43); err != nil {
			t.Fatal(err)
		}
	}
}

func TestScaleGrowsOutput(t *testing.T) {
	spec, _ := SpecByName("author")
	var s1, s2 bytes.Buffer
	if err := spec.Generate(&s1, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := spec.Generate(&s2, 2, 1); err != nil {
		t.Fatal(err)
	}
	if s2.Len() < s1.Len()*3/2 {
		t.Errorf("scale 2 (%d bytes) should be much larger than scale 1 (%d)", s2.Len(), s1.Len())
	}
}

func TestTableOneShapes(t *testing.T) {
	// The properties §6.1 selects datasets by: author/address/dblp bushy
	// (shallow), catalog/treebank deep.
	shapes := map[string]struct {
		maxDepthMin, maxDepthMax int
		tagsMin                  int
	}{
		"author":   {3, 6, 8},
		"address":  {3, 5, 7},
		"catalog":  {7, 10, 35},
		"treebank": {12, 40, 60},
		"dblp":     {3, 7, 20},
	}
	for _, spec := range Specs() {
		want := shapes[spec.Name]
		path := generate(t, spec, 1)
		st, err := ComputeStats(path)
		if err != nil {
			t.Fatal(err)
		}
		if st.MaxDepth < want.maxDepthMin || st.MaxDepth > want.maxDepthMax {
			t.Errorf("%s: max depth %d outside [%d, %d]", spec.Name, st.MaxDepth, want.maxDepthMin, want.maxDepthMax)
		}
		if st.Tags < want.tagsMin {
			t.Errorf("%s: %d tags, want >= %d", spec.Name, st.Tags, want.tagsMin)
		}
	}
}

func TestNeedleCounts(t *testing.T) {
	// Every dataset must plant the structural needles with exact counts,
	// and the value needles with the planned frequencies.
	for _, spec := range Specs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			path := generate(t, spec, 1)
			hist, err := TagHistogram(path)
			if err != nil {
				t.Fatal(err)
			}
			if hist[RareTag] != HighCount {
				t.Errorf("%s occurrences = %d, want %d", RareTag, hist[RareTag], HighCount)
			}
			if hist[ModTag] != ModCount {
				t.Errorf("%s occurrences = %d, want %d", ModTag, hist[ModTag], ModCount)
			}
		})
	}
}

func TestValueNeedleCountsAuthor(t *testing.T) {
	spec, _ := SpecByName("author")
	var buf bytes.Buffer
	if err := spec.Generate(&buf, 1, 7); err != nil {
		t.Fatal(err)
	}
	doc, err := domnav.Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, n := range doc.Nodes {
		if n.Name == "city" {
			counts[n.Value]++
		}
	}
	if counts[NeedleHigh] != HighCount {
		t.Errorf("high needle count = %d, want %d", counts[NeedleHigh], HighCount)
	}
	if counts[NeedleMod] != ModCount {
		t.Errorf("mod needle count = %d, want %d", counts[NeedleMod], ModCount)
	}
	if counts[NeedleLow] < 100 {
		t.Errorf("low needle count = %d, want >= 100", counts[NeedleLow])
	}
}
