package datagen

import (
	"fmt"
	"io"
	"math/rand"
)

// GenerateDBLP produces the dblp-like dataset: a flat, very bushy
// bibliography (Table 1's dblp row: depth 3–6, ~35 tags, the largest
// document). scale × 4000 publication records of mixed kinds.
//
// Value needles are planted on article author values; structural needles
// are children of article records.
func GenerateDBLP(w io.Writer, scale int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	n := 4000 * scale
	plan := planNeedles(rng, n)

	journals := []string{"TODS", "VLDB Journal", "SIGMOD Record", "TKDE",
		"Information Systems", "JACM", "Computing Surveys"}
	conferences := []string{"ICDE", "SIGMOD Conference", "VLDB", "EDBT",
		"PODS", "CIKM", "WWW"}
	months := []string{"January", "April", "July", "October"}

	x := newXW(w)
	x.open("dblp")
	for i := 0; i < n; i++ {
		kind := "article"
		switch rng.Intn(10) {
		case 0, 1, 2:
			kind = "inproceedings"
		case 3:
			kind = "book"
		case 4:
			kind = "phdthesis"
		}
		// Needles are planted on articles only, so force the record kind
		// for scheduled ordinals.
		if plan.high[i] || plan.mod[i] || i%plan.lowEvery == 0 {
			kind = "article"
		}
		x.open(kind, "key", fmt.Sprintf("%s/%d", kind, i), "mdate", fmt.Sprintf("200%d-0%d-1%d", rng.Intn(9), 1+rng.Intn(9), rng.Intn(9)))
		authors := 1 + rng.Intn(3)
		for a := 0; a < authors; a++ {
			name := pick(rng, firstNames) + " " + pick(rng, lastNames)
			if a == 0 {
				name = plan.value(i, name)
			}
			x.leaf("author", name)
		}
		// Titles occasionally contain markup, pushing depth to 4-6.
		if rng.Intn(8) == 0 {
			x.open("title")
			x.raw(sentenceEscaped(rng, 3))
			x.open("sub")
			x.raw(sentenceEscaped(rng, 1))
			x.open("i")
			x.raw(sentenceEscaped(rng, 1))
			x.close()
			x.close()
			x.close()
		} else {
			x.leaf("title", sentence(rng, 5))
		}
		x.leaf("year", fmt.Sprintf("%d", 1975+rng.Intn(50)))
		switch kind {
		case "article":
			x.leaf("journal", pick(rng, journals))
			x.leaf("volume", fmt.Sprintf("%d", 1+rng.Intn(40)))
			x.leaf("number", fmt.Sprintf("%d", 1+rng.Intn(12)))
		case "inproceedings":
			x.leaf("booktitle", pick(rng, conferences))
			if rng.Intn(3) == 0 {
				x.leaf("crossref", fmt.Sprintf("conf/%d", rng.Intn(100)))
			}
		case "book":
			x.leaf("publisher", "Morgan Kaufmann")
			x.leaf("isbn", fmt.Sprintf("1-55860-%03d-%d", rng.Intn(1000), rng.Intn(10)))
		case "phdthesis":
			x.leaf("school", pick(rng, cities)+" University")
			x.leaf("month", pick(rng, months))
		}
		x.leaf("pages", fmt.Sprintf("%d-%d", rng.Intn(400), 400+rng.Intn(400)))
		if rng.Intn(2) == 0 {
			x.leaf("ee", fmt.Sprintf("db/%s/%d.html", kind, i))
		}
		if rng.Intn(3) == 0 {
			x.leaf("url", fmt.Sprintf("https://example.org/%d", i))
		}
		for c := 0; c < rng.Intn(3); c++ {
			x.leaf("cite", fmt.Sprintf("ref%06d", rng.Intn(n)))
		}
		if plan.high[i] {
			x.open(RareTag)
			x.leaf("flag", "set")
			x.leaf("extra", "info")
			x.close()
		}
		if plan.mod[i] {
			x.open(ModTag)
			x.leaf("flag", "set")
			x.leaf("extra", "info")
			x.close()
		}
		x.close()
	}
	x.close()
	return x.done()
}

func sentenceEscaped(rng *rand.Rand, n int) string {
	return sentence(rng, n) // word pool is escape-free
}
