package datagen

import (
	"fmt"
	"io"
	"math/rand"
)

// GenerateTreebank produces the Treebank-like dataset: deep, recursive
// parse trees with ~250 distinct tags, average depth ≈ 8 and maximum depth
// in the thirties (Table 1's Treebank row), and randomly generated leaf
// values — which is exactly why the paper's value index beats its tag index
// on this dataset ("values in Treebank were randomly generated and has
// higher selectivity than tag names").
//
// Value needles are planted as explicit <NP><DT/><NN>needle</NN></NP>
// subtrees so the Table 2 value queries have exact result counts;
// structural needles are <rareelem>/<modelem> subtrees at random depths.
func GenerateTreebank(w io.Writer, scale int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	targetNodes := 30000 * scale

	nonterminals := []string{"S", "NP", "VP", "PP", "SBAR", "ADJP", "ADVP",
		"WHNP", "PRN", "FRAG", "SINV", "SQ", "X", "UCP", "QP", "NX", "CONJP"}
	terminals := []string{"NN", "NNS", "NNP", "VB", "VBD", "VBZ", "VBG", "JJ",
		"RB", "IN", "DT", "CC", "PRP", "TO", "MD", "CD", "WDT", "EX", "POS"}
	// Pad the alphabet to ~250 distinct tags with synthetic categories.
	var rareTags []string
	for i := 0; i < 214; i++ {
		rareTags = append(rareTags, fmt.Sprintf("CAT%03d", i))
	}

	randomValue := func() string {
		const hex = "0123456789abcdef"
		b := make([]byte, 10)
		for i := range b {
			b[i] = hex[rng.Intn(16)]
		}
		return string(b)
	}

	x := newXW(w)
	nodes := 0
	var emit func(depth int)
	emit = func(depth int) {
		nodes++
		// Leaf probability rises with depth so the average depth settles
		// around 8 while the deep-chain path below reaches the thirties.
		pLeaf := float64(depth-2) * 0.13
		if pLeaf > 0.85 {
			pLeaf = 0.85
		}
		if depth >= 35 || (depth > 2 && rng.Float64() < pLeaf) {
			x.leaf(terminals[rng.Intn(len(terminals))], randomValue())
			return
		}
		tag := nonterminals[rng.Intn(len(nonterminals))]
		if rng.Intn(50) == 0 {
			tag = rareTags[rng.Intn(len(rareTags))]
		}
		x.open(tag)
		if depth < 6 && rng.Intn(60) == 0 {
			// A deep linear chain: recursively nested clauses push the
			// maximum depth into the thirties (Treebank's signature).
			chain := 20 + rng.Intn(8)
			for i := 0; i < chain; i++ {
				x.open(nonterminals[rng.Intn(len(nonterminals))])
				nodes++
			}
			emit(depth + chain + 1)
			for i := 0; i < chain; i++ {
				x.close()
			}
			x.close()
			return
		}
		kids := 1 + rng.Intn(4)
		for i := 0; i < kids && nodes < targetNodes; i++ {
			emit(depth + 1)
		}
		x.close()
	}

	plantedValue := func(v string) {
		x.open("NP")
		x.leaf("DT", "the")
		x.leaf("NN", v)
		x.close()
		nodes += 3
	}
	plantedStruct := func(tag string) {
		x.open(tag)
		x.leaf("flag", "set")
		x.leaf("extra", "info")
		x.close()
		nodes += 3
	}

	// Needles are planted at fixed sentence ordinals; sentence generation
	// continues until the node target is met, which is always far beyond
	// the largest planting ordinal.
	highAt := map[int]bool{10: true, 20: true, 30: true, 40: true}
	rareAt := map[int]bool{12: true, 22: true, 32: true, 42: true}
	const modValueSentence, modTagSentence = 15, 25

	x.open("FILE")
	for s := 0; nodes < targetNodes || s <= 50; s++ {
		x.open("EMPTY") // Treebank wraps sentences in EMPTY elements
		x.open("S")
		nodes += 2
		emit(3)
		if highAt[s] {
			plantedValue(NeedleHigh)
		}
		if s == modValueSentence {
			for i := 0; i < ModCount; i++ {
				plantedValue(NeedleMod)
			}
		}
		if s%4 == 0 {
			plantedValue(NeedleLow)
		}
		if rareAt[s] {
			plantedStruct(RareTag)
		}
		if s == modTagSentence {
			for i := 0; i < ModCount; i++ {
				plantedStruct(ModTag)
			}
		}
		x.close()
		x.close()
	}
	x.close()
	return x.done()
}
