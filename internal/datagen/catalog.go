package datagen

import (
	"fmt"
	"io"
	"math/rand"
	"nok/internal/sax"
)

// GenerateCatalog produces the catalog dataset: the deep data-centric
// XBench document (Table 1: 51 tags, max depth 8). 20 categories × scale ×
// 40 items, each item a rich nested record. Value needles sit on the item
// publisher; structural needles are item children.
func GenerateCatalog(w io.Writer, scale int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	categories := 20
	itemsPer := 60 * scale
	total := categories * itemsPer
	plan := planNeedles(rng, total)

	publishers := []string{"Addison-Wesley", "Morgan Kaufmann", "Kluwer Academic",
		"Springer", "Prentice Hall", "North-Holland", "MIT Press"}
	bindings := []string{"hardcover", "paperback", "ebook"}
	currencies := []string{"USD", "CAD", "EUR", "JPY"}

	x := newXW(w)
	x.open("catalog")
	item := 0
	for c := 0; c < categories; c++ {
		x.open("category", "id", fmt.Sprintf("c%02d", c))
		x.leaf("name", fmt.Sprintf("category-%s", pick(rng, words)))
		x.open("description")
		x.open("text")
		x.raw(sax.EscapeString(sentence(rng, 6)))
		x.leaf("bold", pick(rng, words))
		x.leaf("keyword", pick(rng, words))
		x.close()
		x.close()
		for it := 0; it < itemsPer; it++ {
			i := item
			item++
			x.open("item", "id", fmt.Sprintf("i%06d", i))
			x.leaf("title", sentence(rng, 4))
			x.leaf("isbn", fmt.Sprintf("0-%03d-%05d-%d", rng.Intn(1000), rng.Intn(100000), rng.Intn(10)))
			x.leaf("publisher", plan.value(i, pick(rng, publishers)))
			x.leaf("edition", fmt.Sprintf("%d", 1+rng.Intn(5)))
			x.leaf("binding", pick(rng, bindings))
			x.open("authors_info")
			for a := 0; a < 1+rng.Intn(2); a++ {
				x.open("author")
				x.open("name")
				x.leaf("first", pick(rng, firstNames))
				x.leaf("last", pick(rng, lastNames))
				x.close()
				x.open("contact")
				x.leaf("phone", fmt.Sprintf("+1-%03d-%04d", rng.Intn(1000), rng.Intn(10000)))
				x.leaf("email", fmt.Sprintf("%s@example.org", pick(rng, words)))
				x.close()
				x.close()
			}
			x.close()
			x.open("pricing")
			x.open("list_price")
			x.open("money", "currency", pick(rng, currencies))
			x.leaf("value", fmt.Sprintf("%d.%02d", 10+rng.Intn(190), rng.Intn(100)))
			x.close()
			x.close()
			if rng.Intn(3) == 0 {
				x.leaf("discount", fmt.Sprintf("%d%%", 5+rng.Intn(40)))
			}
			x.close()
			x.open("subjects")
			x.leaf("subject", pick(rng, words))
			x.leaf("subject", pick(rng, words))
			x.close()
			x.open("attributes")
			x.open("size_of_book")
			x.leaf("length", fmt.Sprintf("%d", 15+rng.Intn(20)))
			x.leaf("width", fmt.Sprintf("%d", 10+rng.Intn(12)))
			x.leaf("height", fmt.Sprintf("%d", 1+rng.Intn(6)))
			x.close()
			x.leaf("number_of_pages", fmt.Sprintf("%d", 80+rng.Intn(900)))
			x.close()
			x.leaf("date_of_release", fmt.Sprintf("%d-%02d-%02d", 1980+rng.Intn(45), 1+rng.Intn(12), 1+rng.Intn(28)))
			if rng.Intn(2) == 0 {
				x.open("reviews")
				x.open("review", "rating", fmt.Sprintf("%d", 1+rng.Intn(5)))
				x.leaf("reviewer", pick(rng, firstNames))
				x.open("comment")
				x.open("text")
				x.raw(sax.EscapeString(sentence(rng, 5)))
				x.leaf("bold", pick(rng, words))
				x.leaf("keyword", pick(rng, words))
				x.close()
				x.close()
				x.close()
				x.close()
			}
			if rng.Intn(4) == 0 {
				x.open("availability")
				x.leaf("stock", fmt.Sprintf("%d", rng.Intn(500)))
				x.leaf("warehouse", pick(rng, cities))
				x.leaf("ship_to", pick(rng, countries))
				x.close()
			}
			if rng.Intn(6) == 0 {
				x.open("translation")
				x.leaf("original_title", sentence(rng, 3))
				x.leaf("original_language", pick(rng, []string{"de", "fr", "ja", "ru"}))
				x.close()
			}
			if rng.Intn(8) == 0 {
				x.open("series")
				x.leaf("series_name", sentence(rng, 2))
				x.leaf("volume", fmt.Sprintf("%d", 1+rng.Intn(20)))
				x.close()
			}
			if plan.high[i] {
				x.open(RareTag)
				x.leaf("flag", "set")
				x.leaf("extra", "info")
				x.close()
			}
			if plan.mod[i] {
				x.open(ModTag)
				x.leaf("flag", "set")
				x.leaf("extra", "info")
				x.close()
			}
			x.close()
		}
		x.close()
	}
	x.close()
	return x.done()
}
