package datagen

import (
	"fmt"
	"io"
	"math/rand"
)

// This file holds the two XBench-style data-centric generators: author and
// address. Both are bushy and shallow (avg depth 3 in Table 1): a root with
// a long list of flat records.

// GenerateAuthor produces the author dataset: scale × 1000 author records.
//
// Structural needles: author records selected by the needle plan carry a
// <rareelem>/<modelem> child; value needles are planted on address/city.
func GenerateAuthor(w io.Writer, scale int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	n := 1000 * scale
	plan := planNeedles(rng, n)
	x := newXW(w)
	x.open("authors")
	for i := 0; i < n; i++ {
		x.open("author", "id", fmt.Sprintf("a%06d", i))
		x.open("name")
		x.leaf("first", pick(rng, firstNames))
		x.leaf("last", pick(rng, lastNames))
		x.close()
		x.open("address")
		x.leaf("street", fmt.Sprintf("%d %s", 1+rng.Intn(999), pick(rng, streets)))
		x.leaf("city", plan.value(i, pick(rng, cities)))
		x.leaf("country", pick(rng, countries))
		x.close()
		x.leaf("born", fmt.Sprintf("%d", 1900+rng.Intn(100)))
		if i%3 == 0 {
			x.leaf("biography", sentence(rng, 8))
		}
		if plan.high[i] {
			x.open(RareTag)
			x.leaf("flag", "set")
			x.leaf("extra", "info")
			x.close()
		}
		if plan.mod[i] {
			x.open(ModTag)
			x.leaf("flag", "set")
			x.leaf("extra", "info")
			x.close()
		}
		x.close()
	}
	x.close()
	return x.done()
}

// GenerateAddress produces the address dataset: scale × 2500 records with
// the seven tags of Table 1's address row. Value needles sit on city.
func GenerateAddress(w io.Writer, scale int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	n := 2500 * scale
	plan := planNeedles(rng, n)
	x := newXW(w)
	x.open("addresses")
	for i := 0; i < n; i++ {
		x.open("address", "id", fmt.Sprintf("ad%06d", i))
		x.leaf("street", fmt.Sprintf("%d %s", 1+rng.Intn(999), pick(rng, streets)))
		x.leaf("city", plan.value(i, pick(rng, cities)))
		x.leaf("province", pick(rng, []string{"ON", "BC", "QC", "MH", "WA", "NY"}))
		x.leaf("postcode", fmt.Sprintf("%c%d%c %d%c%d",
			'A'+rune(rng.Intn(26)), rng.Intn(10), 'A'+rune(rng.Intn(26)),
			rng.Intn(10), 'A'+rune(rng.Intn(26)), rng.Intn(10)))
		x.leaf("country", pick(rng, countries))
		x.leaf("phone", fmt.Sprintf("+1-%03d-%03d-%04d", rng.Intn(1000), rng.Intn(1000), rng.Intn(10000)))
		if plan.high[i] {
			x.open(RareTag)
			x.leaf("flag", "set")
			x.leaf("extra", "info")
			x.close()
		}
		if plan.mod[i] {
			x.open(ModTag)
			x.leaf("flag", "set")
			x.leaf("extra", "info")
			x.close()
		}
		x.close()
	}
	x.close()
	return x.done()
}
