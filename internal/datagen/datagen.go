// Package datagen generates the synthetic datasets of the evaluation.
//
// The paper's experiments (§6.1, Table 1) use three XBench data-centric
// documents (author, address, catalog) and two real documents from the UW
// repository (Treebank, dblp). Neither source is redistributable or
// reachable offline, so this package synthesizes documents that reproduce
// the *shape* statistics Table 1 reports — bushiness vs depth, distinct
// tag counts, and value distributions — which are the properties the
// engines are sensitive to (see DESIGN.md §3 for the substitution
// argument).
//
// Every generator is deterministic in (scale, seed). Selectivity needles
// are planted so the twelve query categories of Table 2 have predictable
// result sizes:
//
//   - NeedleHigh appears HighCount times (a handful of results);
//   - NeedleMod appears ModCount times (tens of results);
//   - NeedleLow appears in a fixed fraction of records (hundreds+).
//
// Structural rarity mirrors the value needles: RareTag elements appear
// HighCount times, ModTag elements ModCount times.
package datagen

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"

	"nok/internal/sax"
)

// Needle values planted for value-constrained queries (the "hi", "mod",
// "low" constants of Table 2's example queries).
const (
	NeedleHigh = "needle-high-zyzzyva"
	NeedleMod  = "needle-mod-waterloo"
	NeedleLow  = "needle-low-common"

	// HighCount and ModCount are the absolute occurrence counts of the
	// high- and moderate-selectivity needles.
	HighCount = 4
	ModCount  = 40

	// RareTag and ModTag are planted structural needles: elements whose
	// tag occurs HighCount / ModCount times.
	RareTag = "rareelem"
	ModTag  = "modelem"
)

// Spec describes one generatable dataset.
type Spec struct {
	// Name is the dataset's identifier (matches Table 1's rows).
	Name string
	// Shape is "bushy" or "deep", the property §6.1 selects datasets by.
	Shape string
	// Generate writes the XML document at the given scale.
	Generate func(w io.Writer, scale int, seed int64) error
	// ApproxNodes estimates element count (attributes included) at scale.
	ApproxNodes func(scale int) int
}

// Specs lists the five datasets in Table 1's order.
func Specs() []Spec {
	return []Spec{
		{Name: "author", Shape: "bushy", Generate: GenerateAuthor, ApproxNodes: func(s int) int { return 11 * 1000 * s }},
		{Name: "address", Shape: "bushy", Generate: GenerateAddress, ApproxNodes: func(s int) int { return 22 * 1000 * s }},
		{Name: "catalog", Shape: "deep", Generate: GenerateCatalog, ApproxNodes: func(s int) int { return 26 * 1000 * s }},
		{Name: "treebank", Shape: "deep", Generate: GenerateTreebank, ApproxNodes: func(s int) int { return 30 * 1000 * s }},
		{Name: "dblp", Shape: "bushy", Generate: GenerateDBLP, ApproxNodes: func(s int) int { return 36 * 1000 * s }},
	}
}

// SpecByName returns the named spec.
func SpecByName(name string) (Spec, bool) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// GenerateFile writes a dataset to a file.
func GenerateFile(spec Spec, path string, scale int, seed int64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 256<<10)
	if err := spec.Generate(w, scale, seed); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// xw is a minimal pretty-printing XML writer with element-stack checking.
// Output is indented like the files in public XML repositories — which is
// also what makes the §4.2 document/structure size ratio realistic: markup
// and whitespace dominate real documents, while the string representation
// stores three bytes per element regardless.
type xw struct {
	w     io.Writer
	err   error
	stack []string
	// hadKids[i] records whether stack element i has element children,
	// controlling close-tag indentation.
	hadKids []bool
}

func newXW(w io.Writer) *xw { return &xw{w: w} }

func (x *xw) raw(s string) {
	if x.err == nil {
		_, x.err = io.WriteString(x.w, s)
	}
}

var indentBytes = "\n                                                                "

func (x *xw) indent() {
	n := 1 + 2*len(x.stack)
	if n > len(indentBytes) {
		n = len(indentBytes)
	}
	x.raw(indentBytes[:n])
}

func (x *xw) markChild() {
	if len(x.hadKids) > 0 {
		x.hadKids[len(x.hadKids)-1] = true
	}
}

// open starts an element on a fresh indented line; attrs are name, value
// pairs.
func (x *xw) open(tag string, attrs ...string) {
	x.markChild()
	if len(x.stack) > 0 {
		x.indent()
	}
	x.raw("<" + tag)
	for i := 0; i+1 < len(attrs); i += 2 {
		x.raw(" " + attrs[i] + `="` + sax.EscapeString(attrs[i+1]) + `"`)
	}
	x.raw(">")
	x.stack = append(x.stack, tag)
	x.hadKids = append(x.hadKids, false)
}

func (x *xw) close() {
	tag := x.stack[len(x.stack)-1]
	kids := x.hadKids[len(x.hadKids)-1]
	x.stack = x.stack[:len(x.stack)-1]
	x.hadKids = x.hadKids[:len(x.hadKids)-1]
	if kids {
		x.indent()
	}
	x.raw("</" + tag + ">")
}

// leaf writes an indented <tag>text</tag> line.
func (x *xw) leaf(tag, text string) {
	x.markChild()
	x.indent()
	x.raw("<" + tag + ">")
	x.raw(sax.EscapeString(text))
	x.raw("</" + tag + ">")
}

func (x *xw) done() error {
	if x.err != nil {
		return x.err
	}
	if len(x.stack) != 0 {
		return fmt.Errorf("datagen: %d unclosed element(s)", len(x.stack))
	}
	return nil
}

// needlePlan precomputes which record ordinals carry which needles so
// occurrence counts are exact regardless of scale.
type needlePlan struct {
	high     map[int]bool
	mod      map[int]bool
	lowEvery int
}

func planNeedles(rng *rand.Rand, records int) needlePlan {
	pickDistinct := func(n int) map[int]bool {
		if n > records {
			n = records
		}
		out := make(map[int]bool, n)
		for len(out) < n {
			out[rng.Intn(records)] = true
		}
		return out
	}
	p := needlePlan{
		high:     pickDistinct(HighCount),
		mod:      pickDistinct(ModCount),
		lowEvery: 8, // every 8th record carries the low needle
	}
	return p
}

func (p needlePlan) value(i int, normal string) string {
	switch {
	case p.high[i]:
		return NeedleHigh
	case p.mod[i]:
		return NeedleMod
	case i%p.lowEvery == 0:
		return NeedleLow
	default:
		return normal
	}
}

// word pools for plausible values.
var (
	firstNames = []string{"Ada", "Alan", "Barbara", "Claude", "Donald", "Edsger",
		"Frances", "Grace", "John", "Kathleen", "Leslie", "Margaret", "Niklaus",
		"Peter", "Robin", "Tony", "Whitfield", "Yukihiro"}
	lastNames = []string{"Lovelace", "Turing", "Liskov", "Shannon", "Knuth",
		"Dijkstra", "Allen", "Hopper", "Backus", "Booth", "Lamport", "Hamilton",
		"Wirth", "Naur", "Milner", "Hoare", "Diffie", "Matsumoto"}
	cities = []string{"Waterloo", "Toronto", "Bombay", "Seattle", "Uppsala",
		"Zurich", "Kyoto", "Austin", "Dublin", "Leipzig", "Nairobi", "Lima"}
	countries = []string{"Canada", "India", "USA", "Sweden", "Switzerland",
		"Japan", "Ireland", "Germany", "Kenya", "Peru"}
	streets = []string{"Ring Road", "King St", "Queen St", "Columbia St",
		"University Ave", "Albert St", "Erb St", "Phillip St"}
	words = []string{"succinct", "storage", "path", "query", "pattern", "tree",
		"stream", "index", "join", "page", "level", "sibling", "interval",
		"matching", "navigation", "structure", "document", "element"}
)

func pick(rng *rand.Rand, pool []string) string { return pool[rng.Intn(len(pool))] }

func sentence(rng *rand.Rand, n int) string {
	out := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			out += " "
		}
		out += pick(rng, words)
	}
	return out
}

// Stats summarizes a generated document (Table 1's left columns). It is
// computed by a SAX pass in ComputeStats.
type Stats struct {
	Bytes    int64
	Nodes    int // elements + attributes
	AvgDepth float64
	MaxDepth int
	Tags     int
}

// ComputeStats scans an XML file and reports Table-1-style statistics.
// Attributes count as nodes at depth parent+1, matching the storage model.
func ComputeStats(path string) (Stats, error) {
	f, err := os.Open(path)
	if err != nil {
		return Stats{}, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return Stats{}, err
	}
	sc := sax.NewScanner(f)
	tags := map[string]bool{}
	var nodes, depthSum, maxDepth int
	for {
		ev, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return Stats{}, err
		}
		if ev.Kind != sax.StartElement {
			continue
		}
		d := sc.Depth()
		nodes++
		depthSum += d
		if d > maxDepth {
			maxDepth = d
		}
		tags[ev.Name] = true
		for _, a := range ev.Attrs {
			nodes++
			depthSum += d + 1
			if d+1 > maxDepth {
				maxDepth = d + 1
			}
			tags["@"+a.Name] = true
		}
	}
	st := Stats{Bytes: fi.Size(), Nodes: nodes, MaxDepth: maxDepth, Tags: len(tags)}
	if nodes > 0 {
		st.AvgDepth = float64(depthSum) / float64(nodes)
	}
	return st, nil
}

// TagHistogram returns tag → count for a generated file, sorted output via
// SortedTagCounts; used in tests to validate needle plans.
func TagHistogram(path string) (map[string]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := sax.NewScanner(f)
	out := map[string]int{}
	for {
		ev, err := sc.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		if ev.Kind == sax.StartElement {
			out[ev.Name]++
			for _, a := range ev.Attrs {
				out["@"+a.Name]++
			}
		}
	}
}

// SortedTagCounts renders a histogram deterministically (tests, tooling).
func SortedTagCounts(h map[string]int) []string {
	keys := make([]string, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = fmt.Sprintf("%s=%d", k, h[k])
	}
	return out
}
