package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// slowLog emits one JSON line per slow query, rate-limited so a storm of
// slow queries (the exact situation in which they occur) cannot flood the
// log. The rate limiter is a CAS on the last-emit timestamp: losers are
// counted as suppressed, never blocked.
type slowLog struct {
	threshold time.Duration
	interval  time.Duration
	lastEmit  atomic.Int64 // unix nanos of the last emitted line

	mu sync.Mutex // serializes writes so lines never interleave
	w  io.Writer

	logged     atomic.Uint64
	suppressed atomic.Uint64
}

func newSlowLog(threshold, interval time.Duration) *slowLog {
	return &slowLog{threshold: threshold, interval: interval}
}

// setWriter installs (or removes, with nil) the log destination.
func (l *slowLog) setWriter(w io.Writer) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.w = w
}

// offer logs the record if it crosses the threshold and the rate limiter
// admits it. Returns whether a line was written.
func (l *slowLog) offer(rec *Record) bool {
	if l.threshold <= 0 || rec.Duration < l.threshold {
		return false
	}
	l.mu.Lock()
	noWriter := l.w == nil
	l.mu.Unlock()
	if noWriter {
		return false
	}
	now := time.Now().UnixNano()
	for {
		last := l.lastEmit.Load()
		if last != 0 && now-last < int64(l.interval) {
			l.suppressed.Add(1)
			return false
		}
		if l.lastEmit.CompareAndSwap(last, now) {
			break
		}
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.w == nil {
		return false
	}
	l.w.Write(append(line, '\n'))
	l.logged.Add(1)
	return true
}
