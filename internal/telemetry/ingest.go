package telemetry

import (
	"sort"
	"sync/atomic"
	"time"
)

// IngestBatch is one group-commit flush captured by the ingest pipeline
// (internal/ingest): how many documents and bytes the batch carried, how
// long the commit took, the epoch it published, and any per-document
// rejections. Served by GET /debug/ingest and nokdebug bundles.
type IngestBatch struct {
	ID       uint64        `json:"id"`
	When     time.Time     `json:"when"`
	Docs     int           `json:"docs"`
	Rejected int           `json:"rejected,omitempty"`
	Bytes    int64         `json:"bytes"`
	Flush    time.Duration `json:"-"`
	FlushMS  float64       `json:"flush_ms"`
	Epoch    uint64        `json:"epoch"`
	Err      string        `json:"err,omitempty"`
}

// ingestRing mirrors the query flight recorder for ingest batches: a
// fixed-size lock-free buffer of the most recent records.
type ingestRing struct {
	slots []atomic.Pointer[IngestBatch]
	next  atomic.Uint64
}

func newIngestRing(n int) *ingestRing {
	if n < 1 {
		n = 1
	}
	return &ingestRing{slots: make([]atomic.Pointer[IngestBatch], n)}
}

// DefaultIngestRingSize bounds the ingest flight recorder.
const DefaultIngestRingSize = 64

// CaptureIngest records one flushed batch, assigning its ID. Disabled
// capture still assigns IDs but skips recording, matching query capture.
func (p *Pipeline) CaptureIngest(rec *IngestBatch) uint64 {
	rec.ID = p.ingest.next.Add(1)
	rec.FlushMS = float64(rec.Flush) / float64(time.Millisecond)
	if !p.enabled.Load() {
		return rec.ID
	}
	p.ingest.slots[(rec.ID-1)%uint64(len(p.ingest.slots))].Store(rec)
	return rec.ID
}

// IngestRecent returns up to n captured ingest batches, newest first (all
// when n <= 0).
func (p *Pipeline) IngestRecent(n int) []*IngestBatch {
	out := make([]*IngestBatch, 0, len(p.ingest.slots))
	for i := range p.ingest.slots {
		if rec := p.ingest.slots[i].Load(); rec != nil {
			out = append(out, rec)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID > out[j].ID })
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}
