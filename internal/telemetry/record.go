package telemetry

import (
	"encoding/json"
	"fmt"
	"time"

	"nok/internal/obs"
)

// Record is the telemetry capture of one query evaluation: everything an
// operator needs to answer "which query, which plan, and why was it slow"
// without attaching a debugger. Records are immutable after Capture; the
// flight recorder, slowest tracker and slow-query log all share the same
// pointer.
type Record struct {
	// ID is the process-unique query ID assigned at capture; it is echoed
	// in the X-Nok-Query-Id response header and in the exemplars of the
	// nok_query_seconds histogram, linking a latency bucket back to this
	// record.
	ID uint64
	// Expr is the canonical (normalized) rendering of the pattern tree, so
	// textual variants of one query aggregate under one string.
	Expr string
	// Start and Duration time the evaluation end to end.
	Start    time.Time
	Duration time.Duration
	// Results is the match count returned (0 on error).
	Results int
	// Partitions and Strategies describe the executed access paths: one
	// effective strategy per NoK partition, including silent degradations
	// and "skipped" short-circuits.
	Partitions int
	Strategies []string
	// Planned reports whether the cost-based planner chose the strategies;
	// PlanEpoch is the synopsis epoch the plan was costed against. EstRows
	// and EstPages carry the plan's estimates (meaningful only when
	// Planned), and QError quantifies the row misestimate:
	// max(est, actual)/min(est, actual) with both clamped to >= 1.
	// Misestimate marks q-errors at or beyond the pipeline's factor.
	Planned     bool
	PlanEpoch   uint64
	EstRows     float64
	EstPages    float64
	QError      float64
	Misestimate bool
	// Page-level I/O attribution and matching work, mirroring QueryStats.
	PagesScanned   uint64
	PagesSkipped   uint64
	StartingPoints int
	NodesVisited   int
	// Phases carries the top-level phase timings when the evaluation ran
	// with a Trace attached (EXPLAIN ANALYZE, /explain?analyze=1); empty
	// otherwise.
	Phases []obs.Phase
	// Parallel marks evaluations whose bottom-up phase ran NoK partitions
	// on concurrent workers; Parts carries the per-partition wall-clock
	// attribution collected on that path.
	Parallel bool
	Parts    []PartTiming
	// Shards carries the per-shard fan-out when the query ran through the
	// scatter-gather executor: one entry per shard, pruned shards included
	// with the statistics proof that skipped them.
	Shards []ShardTiming
	// CacheHit marks records emitted for result-cache hits (the serving
	// layer answers without evaluating; Duration is the lookup time).
	CacheHit bool
	// Epoch is the store's committed epoch at evaluation time.
	Epoch uint64
	// Error is the evaluation error, if any (including cancellation).
	Error string

	// Plan renders the cost-based plan on demand (nil when the §6.2
	// heuristic chose the strategies). Deferring the rendering keeps the
	// per-query capture cost to field copies — the text is only built when
	// a record is actually exposed through /debug/queries or the slow log.
	Plan fmt.Stringer
}

// PartTiming is one NoK partition's share of a parallel bottom-up phase.
type PartTiming struct {
	Partition int    `json:"partition"`
	Strategy  string `json:"strategy"`
	Micros    int64  `json:"micros"`
	Matches   int    `json:"matches"`
}

// ShardTiming is one shard's share of a scatter-gather evaluation.
type ShardTiming struct {
	Shard      int    `json:"shard"`
	Micros     int64  `json:"micros"`
	Results    int    `json:"results"`
	Skipped    bool   `json:"skipped,omitempty"`
	SkipReason string `json:"skip_reason,omitempty"`
}

// PlanText renders the plan, or "" when the heuristic ran.
func (r *Record) PlanText() string {
	if r.Plan == nil {
		return ""
	}
	return r.Plan.String()
}

// recordJSON is the wire form shared by /debug/queries and the slow-query
// log: flat, stable field names, durations in milliseconds.
type recordJSON struct {
	ID             uint64        `json:"query_id"`
	Expr           string        `json:"expr"`
	Start          time.Time     `json:"start"`
	DurationMS     float64       `json:"duration_ms"`
	Results        int           `json:"results"`
	Partitions     int           `json:"partitions"`
	Strategies     []string      `json:"strategies,omitempty"`
	Planned        bool          `json:"planned"`
	PlanEpoch      uint64        `json:"plan_epoch,omitempty"`
	EstRows        float64       `json:"est_rows,omitempty"`
	EstPages       float64       `json:"est_pages,omitempty"`
	ActualRows     int           `json:"actual_rows"`
	QError         float64       `json:"q_error,omitempty"`
	Misestimate    bool          `json:"misestimate,omitempty"`
	PagesScanned   uint64        `json:"pages_scanned"`
	PagesSkipped   uint64        `json:"pages_skipped"`
	StartingPoints int           `json:"starting_points"`
	NodesVisited   int           `json:"nodes_visited"`
	Phases         []phaseJSON   `json:"phases,omitempty"`
	Parallel       bool          `json:"parallel,omitempty"`
	Parts          []PartTiming  `json:"partition_timings,omitempty"`
	Shards         []ShardTiming `json:"shards,omitempty"`
	CacheHit       bool          `json:"cache_hit,omitempty"`
	Epoch          uint64        `json:"epoch"`
	Error          string        `json:"error,omitempty"`
	Plan           string        `json:"plan,omitempty"`
}

type phaseJSON struct {
	Name       string  `json:"name"`
	DurationMS float64 `json:"duration_ms"`
}

// MarshalJSON renders the record in its wire form, including the rendered
// plan text.
func (r *Record) MarshalJSON() ([]byte, error) {
	out := recordJSON{
		ID:             r.ID,
		Expr:           r.Expr,
		Start:          r.Start,
		DurationMS:     ms(r.Duration),
		Results:        r.Results,
		Partitions:     r.Partitions,
		Strategies:     r.Strategies,
		Planned:        r.Planned,
		PlanEpoch:      r.PlanEpoch,
		EstRows:        r.EstRows,
		EstPages:       r.EstPages,
		ActualRows:     r.Results,
		QError:         r.QError,
		Misestimate:    r.Misestimate,
		PagesScanned:   r.PagesScanned,
		PagesSkipped:   r.PagesSkipped,
		StartingPoints: r.StartingPoints,
		NodesVisited:   r.NodesVisited,
		Parallel:       r.Parallel,
		Parts:          r.Parts,
		Shards:         r.Shards,
		CacheHit:       r.CacheHit,
		Epoch:          r.Epoch,
		Error:          r.Error,
		Plan:           r.PlanText(),
	}
	for _, p := range r.Phases {
		out.Phases = append(out.Phases, phaseJSON{Name: p.Name, DurationMS: ms(p.Duration)})
	}
	return json.Marshal(out)
}

func ms(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}
