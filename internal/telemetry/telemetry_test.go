package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"nok/internal/obs"
)

func testPipeline(cfg Config) *Pipeline {
	return NewPipeline(cfg, obs.NewRegistry())
}

// TestRingWraparound fills the flight recorder past capacity and checks
// that recent() returns only the newest records, newest first.
func TestRingWraparound(t *testing.T) {
	p := testPipeline(Config{RingSize: 4, SlowThreshold: -1})
	for i := 0; i < 10; i++ {
		p.Capture(&Record{Expr: fmt.Sprintf("q%d", i)})
	}
	recs := p.Recent(0)
	if len(recs) != 4 {
		t.Fatalf("recent returned %d records, want 4", len(recs))
	}
	for i, want := range []string{"q9", "q8", "q7", "q6"} {
		if recs[i].Expr != want {
			t.Errorf("recent[%d] = %s, want %s", i, recs[i].Expr, want)
		}
	}
	if got := p.Recent(2); len(got) != 2 || got[0].Expr != "q9" {
		t.Errorf("recent(2) = %v", got)
	}
}

// TestSlowestTracker checks the top-K keeps the K slowest regardless of
// arrival order, slowest first, and that the floor fast-path doesn't drop
// a new maximum.
func TestSlowestTracker(t *testing.T) {
	p := testPipeline(Config{SlowestSize: 3, SlowThreshold: -1})
	durations := []time.Duration{5, 1, 9, 3, 7, 2, 8} // ms
	for i, d := range durations {
		p.Capture(&Record{Expr: fmt.Sprintf("q%d", i), Duration: d * time.Millisecond})
	}
	got := p.Slowest(0)
	if len(got) != 3 {
		t.Fatalf("slowest returned %d records, want 3", len(got))
	}
	for i, want := range []time.Duration{9, 8, 7} {
		if got[i].Duration != want*time.Millisecond {
			t.Errorf("slowest[%d] = %v, want %vms", i, got[i].Duration, want)
		}
	}
}

// TestSlowLogRateLimited pins the acceptance criterion: two slow queries in
// quick succession produce exactly one slow-query log line, and that line
// carries the estimated-vs-actual cardinality fields.
func TestSlowLogRateLimited(t *testing.T) {
	var buf bytes.Buffer
	p := testPipeline(Config{
		SlowThreshold: time.Millisecond,
		SlowInterval:  time.Hour, // nothing else gets through
		SlowWriter:    &buf,
	})

	rec := &Record{
		Expr:       "//a/b",
		Duration:   50 * time.Millisecond,
		Results:    3,
		Partitions: 2,
		Strategies: []string{"tag-index", "scan"},
		Planned:    true,
		EstRows:    12,
		EstPages:   4,
	}
	p.Capture(rec)
	p.Capture(&Record{Expr: "//a/c", Duration: 60 * time.Millisecond}) // suppressed

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("slow log emitted %d lines, want exactly 1:\n%s", len(lines), buf.String())
	}
	var got map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &got); err != nil {
		t.Fatalf("slow log line is not JSON: %v\n%s", err, lines[0])
	}
	checks := map[string]any{
		"expr":        "//a/b",
		"duration_ms": 50.0,
		"est_rows":    12.0,
		"actual_rows": 3.0,
		"planned":     true,
		"q_error":     4.0,
		"misestimate": true,
	}
	for k, want := range checks {
		if got[k] != want {
			t.Errorf("slow log field %s = %v, want %v", k, got[k], want)
		}
	}
	if got["query_id"] == nil {
		t.Error("slow log line missing query_id")
	}
	if p.slog.suppressed.Load() != 1 {
		t.Errorf("suppressed = %d, want 1", p.slog.suppressed.Load())
	}
}

// TestSlowLogBelowThreshold checks fast queries never reach the log.
func TestSlowLogBelowThreshold(t *testing.T) {
	var buf bytes.Buffer
	p := testPipeline(Config{SlowThreshold: time.Second, SlowWriter: &buf})
	p.Capture(&Record{Expr: "//a", Duration: time.Millisecond})
	if buf.Len() != 0 {
		t.Errorf("fast query was logged: %s", buf.String())
	}
}

// TestQError pins the q-error math, including the clamp at zero.
func TestQError(t *testing.T) {
	cases := []struct {
		est    float64
		actual int
		want   float64
	}{
		{10, 10, 1},
		{20, 10, 2},
		{10, 40, 4},
		{0, 0, 1},    // both clamped to 1
		{0, 5, 5},    // est clamped
		{8, 0, 8},    // actual clamped
		{0.25, 1, 1}, // sub-1 estimate clamps up, not a 4x error
	}
	for _, c := range cases {
		if got := QError(c.est, c.actual); got != c.want {
			t.Errorf("QError(%g, %d) = %g, want %g", c.est, c.actual, got, c.want)
		}
	}
}

// TestPlanQualityMetrics checks Capture feeds the q-error histogram and the
// misestimate counter only for planned queries.
func TestPlanQualityMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	p := NewPipeline(Config{SlowThreshold: -1}, reg)

	p.Capture(&Record{Planned: true, EstRows: 10, Results: 10})  // q-error 1
	p.Capture(&Record{Planned: true, EstRows: 100, Results: 10}) // q-error 10: misestimate
	p.Capture(&Record{Planned: false, Results: 10})              // heuristic: not counted

	s := reg.Snapshot()
	if got := s.Histograms["nok_plan_qerror"].Count; got != 2 {
		t.Errorf("q-error observations = %d, want 2", got)
	}
	if got := s.Counters["nok_plan_misestimate_total"]; got != 1 {
		t.Errorf("misestimates = %d, want 1", got)
	}
}

// TestDisabledCaptureAssignsIDsOnly checks the ablation switch: IDs keep
// flowing (correlation headers stay stable) but nothing is recorded.
func TestDisabledCaptureAssignsIDsOnly(t *testing.T) {
	p := testPipeline(Config{SlowThreshold: -1})
	id1 := p.Capture(&Record{Expr: "a"})
	p.SetEnabled(false)
	id2 := p.Capture(&Record{Expr: "b"})
	if id2 != id1+1 {
		t.Errorf("disabled capture broke ID sequence: %d after %d", id2, id1)
	}
	recs := p.Recent(0)
	if len(recs) != 1 || recs[0].Expr != "a" {
		t.Errorf("disabled capture recorded anyway: %v", recs)
	}
}

// TestRecordJSONIncludesPlanAndPhases checks the wire form renders the lazy
// plan and converts phase durations to milliseconds.
func TestRecordJSONIncludesPlanAndPhases(t *testing.T) {
	rec := &Record{
		ID:   7,
		Expr: "//a",
		Plan: stringerFunc("plan //a\n  part 0: tag-index"),
		Phases: []obs.Phase{
			{Name: "parse", Duration: 1500 * time.Microsecond},
		},
	}
	b, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got["plan"] != "plan //a\n  part 0: tag-index" {
		t.Errorf("plan = %q", got["plan"])
	}
	phases, ok := got["phases"].([]any)
	if !ok || len(phases) != 1 {
		t.Fatalf("phases = %v", got["phases"])
	}
	ph := phases[0].(map[string]any)
	if ph["name"] != "parse" || ph["duration_ms"] != 1.5 {
		t.Errorf("phase = %v", ph)
	}
}

type stringerFunc string

func (s stringerFunc) String() string { return string(s) }

// TestConcurrentCapture hammers the pipeline from many goroutines under the
// race detector: IDs must stay unique and the recorder must survive.
func TestConcurrentCapture(t *testing.T) {
	var buf bytes.Buffer
	p := testPipeline(Config{
		RingSize:      16,
		SlowestSize:   8,
		SlowThreshold: time.Nanosecond,
		SlowInterval:  time.Nanosecond,
		SlowWriter:    &buf,
	})
	const workers = 8
	const perWorker = 500
	ids := make([]map[uint64]bool, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		ids[w] = make(map[uint64]bool)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := p.Capture(&Record{
					Expr:     fmt.Sprintf("w%d-%d", w, i),
					Duration: time.Duration(i) * time.Microsecond,
					Planned:  i%2 == 0,
					EstRows:  float64(i),
					Results:  i % 7,
				})
				ids[w][id] = true
			}
		}(w)
	}
	wg.Wait()

	seen := make(map[uint64]bool)
	for _, m := range ids {
		for id := range m {
			if seen[id] {
				t.Fatalf("duplicate query ID %d", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != workers*perWorker {
		t.Errorf("got %d unique IDs, want %d", len(seen), workers*perWorker)
	}
	if got := len(p.Recent(0)); got > 16 {
		t.Errorf("ring holds %d records, capacity 16", got)
	}
	if got := len(p.Slowest(0)); got > 8 {
		t.Errorf("slowest holds %d records, capacity 8", got)
	}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var v map[string]any
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			t.Fatalf("interleaved slow-log line: %v\n%q", err, line)
		}
	}
}
