// Package telemetry is the query telemetry pipeline: every evaluation ends
// by depositing a Record into a lock-free ring-buffer flight recorder, a
// top-K slowest tracker, and (past a threshold, rate-limited) a structured
// slow-query log. The pipeline also closes the planner feedback loop,
// turning each record's estimated-vs-actual cardinalities into the
// nok_plan_qerror histogram and nok_plan_misestimate_total counter, so plan
// quality is observable without EXPLAIN ANALYZE.
//
// Capture is designed for the hot path: with the defaults it costs one
// atomic add, one pointer store, a floor comparison, and a handful of
// histogram observes — no locks, no allocation beyond the record itself,
// and no plan rendering (plans are kept as lazy Stringers and rendered only
// when a human asks).
package telemetry

import (
	"io"
	"math"
	"sync/atomic"
	"time"

	"nok/internal/obs"
)

// Defaults for the package-level pipeline.
const (
	DefaultRingSize      = 256
	DefaultSlowestSize   = 32
	DefaultSlowThreshold = 250 * time.Millisecond
	DefaultSlowInterval  = time.Second

	// MisestimateFactor is the q-error at or above which a planned query
	// counts as misestimated (the conventional "off by 4x" line).
	MisestimateFactor = 4.0
)

// Pipeline fans a captured Record out to the flight recorder, the slowest
// tracker, the slow-query log, and the plan-quality metrics.
type Pipeline struct {
	enabled atomic.Bool
	nextID  atomic.Uint64

	ring    *ring
	slowest *topK
	slog    *slowLog
	ingest  *ingestRing

	mQuerySeconds *obs.Histogram
	mQError       *obs.Histogram
	mMisestimate  *obs.Counter
	mSlow         *obs.Counter
	mSuppressed   *obs.Counter
}

// Config sizes a Pipeline. Zero values take the defaults.
type Config struct {
	RingSize      int           // flight-recorder capacity
	SlowestSize   int           // how many slowest queries to retain
	SlowThreshold time.Duration // slow-query log threshold; <0 disables
	SlowInterval  time.Duration // min spacing between slow-log lines
	SlowWriter    io.Writer     // slow-log destination; nil disables
}

// NewPipeline builds a pipeline registering its metrics in reg (obs.Default
// when nil).
func NewPipeline(cfg Config, reg *obs.Registry) *Pipeline {
	if reg == nil {
		reg = obs.Default
	}
	if cfg.RingSize == 0 {
		cfg.RingSize = DefaultRingSize
	}
	if cfg.SlowestSize == 0 {
		cfg.SlowestSize = DefaultSlowestSize
	}
	if cfg.SlowThreshold == 0 {
		cfg.SlowThreshold = DefaultSlowThreshold
	}
	if cfg.SlowInterval == 0 {
		cfg.SlowInterval = DefaultSlowInterval
	}
	p := &Pipeline{
		ring:    newRing(cfg.RingSize),
		slowest: newTopK(cfg.SlowestSize),
		slog:    newSlowLog(cfg.SlowThreshold, cfg.SlowInterval),
		ingest:  newIngestRing(DefaultIngestRingSize),
		// Same name+help as the evaluator's registration, so both resolve
		// to one shared histogram in the registry.
		mQuerySeconds: reg.Histogram("nok_query_seconds",
			"end-to-end query evaluation latency in seconds", obs.LatencyBuckets),
		mQError: reg.Histogram("nok_plan_qerror",
			"q-error of planner row estimates: max(est,actual)/min(est,actual), clamped to >=1",
			[]float64{1, 1.25, 1.5, 2, 3, 4, 8, 16, 32, 64, 128}),
		mMisestimate: reg.Counter("nok_plan_misestimate_total",
			"planned queries whose row-estimate q-error was >= 4"),
		mSlow: reg.Counter("nok_slow_queries_total",
			"queries slower than the slow-query threshold"),
		mSuppressed: reg.Counter("nok_slow_query_log_suppressed_total",
			"slow-query log lines dropped by the rate limiter"),
	}
	p.slog.setWriter(cfg.SlowWriter)
	p.enabled.Store(true)
	return p
}

// Default is the process-wide pipeline. The evaluator captures into it; the
// server and nokdebug read from it.
var Default = NewPipeline(Config{}, nil)

// SetEnabled turns capture on or off. Disabled capture still assigns IDs
// (so correlation headers stay stable) but skips all recording — this is
// the ablation switch the telemetry-overhead benchmark flips.
func (p *Pipeline) SetEnabled(on bool) { p.enabled.Store(on) }

// Enabled reports whether capture is active.
func (p *Pipeline) Enabled() bool { return p.enabled.Load() }

// SetSlowLog reconfigures the slow-query log destination and thresholds at
// runtime (nokserve wires its -slow-log flags through this). A nil writer
// disables logging; threshold/interval <= 0 keep the current values.
func (p *Pipeline) SetSlowLog(w io.Writer, threshold, interval time.Duration) {
	if threshold > 0 {
		p.slog.threshold = threshold
	}
	if interval > 0 {
		p.slog.interval = interval
	}
	p.slog.setWriter(w)
}

// SlowThreshold returns the current slow-query threshold.
func (p *Pipeline) SlowThreshold() time.Duration { return p.slog.threshold }

// QError returns the q-error of a row estimate: the factor by which the
// estimate missed, symmetric in direction, with both sides clamped to >= 1
// so empty results don't divide by zero.
func QError(est float64, actual int) float64 {
	e := math.Max(est, 1)
	a := math.Max(float64(actual), 1)
	if e > a {
		return e / a
	}
	return a / e
}

// Capture assigns the record its query ID and, when the pipeline is
// enabled, fans it out to the flight recorder, slowest tracker, slow log,
// and metrics. It finalizes the record's QError/Misestimate fields for
// planned queries. The record must not be mutated after Capture.
func (p *Pipeline) Capture(rec *Record) uint64 {
	rec.ID = p.nextID.Add(1)
	if !p.enabled.Load() {
		return rec.ID
	}
	if rec.Planned {
		rec.QError = QError(rec.EstRows, rec.Results)
		rec.Misestimate = rec.QError >= MisestimateFactor
		p.mQError.Observe(rec.QError)
		if rec.Misestimate {
			p.mMisestimate.Inc()
		}
	}
	p.ring.add(rec)
	p.slowest.offer(rec)
	if p.slog.threshold > 0 && rec.Duration >= p.slog.threshold {
		p.mSlow.Inc()
		before := p.slog.suppressed.Load()
		p.slog.offer(rec)
		if p.slog.suppressed.Load() > before {
			p.mSuppressed.Inc()
		}
	}
	return rec.ID
}

// ObserveQuery records the latency histogram observation with the record's
// query ID attached as an exemplar, linking the bucket to /debug/queries.
func (p *Pipeline) ObserveQuery(rec *Record) {
	p.mQuerySeconds.ObserveWithExemplarID(rec.Duration.Seconds(), "query_id", rec.ID)
}

// Recent returns up to n flight-recorder records, newest first (all when
// n <= 0).
func (p *Pipeline) Recent(n int) []*Record { return p.ring.recent(n) }

// Slowest returns up to n of the slowest records, slowest first (all when
// n <= 0).
func (p *Pipeline) Slowest(n int) []*Record { return p.slowest.slowest(n) }

// Reset clears the flight recorder's slowest tracker (used by tests and by
// nokbench between phases). The ring itself is left alone: old records age
// out naturally.
func (p *Pipeline) Reset() { p.slowest.reset() }
