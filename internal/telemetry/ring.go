package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
)

// ring is the flight recorder: a fixed-size lock-free buffer of the most
// recent query records. Writers claim a slot with one atomic add and store
// the record pointer; readers walk the slots and sort by ID. Under a write
// race a reader may briefly see a slot's previous occupant — acceptable for
// a diagnostic view, and never a torn record (pointers swap atomically).
type ring struct {
	slots []atomic.Pointer[Record]
	next  atomic.Uint64
}

func newRing(n int) *ring {
	if n < 1 {
		n = 1
	}
	return &ring{slots: make([]atomic.Pointer[Record], n)}
}

func (r *ring) add(rec *Record) {
	i := r.next.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(rec)
}

// recent returns up to n records, newest first.
func (r *ring) recent(n int) []*Record {
	out := make([]*Record, 0, len(r.slots))
	for i := range r.slots {
		if rec := r.slots[i].Load(); rec != nil {
			out = append(out, rec)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID > out[j].ID })
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// topK tracks the K slowest queries seen. The common case — a query faster
// than the current floor once the tracker is full — is a single atomic load
// with no locking; only genuine candidates take the mutex.
type topK struct {
	k     int
	floor atomic.Int64 // min duration (ns) among kept records once full
	mu    sync.Mutex
	recs  []*Record
}

func newTopK(k int) *topK {
	if k < 1 {
		k = 1
	}
	return &topK{k: k}
}

func (t *topK) offer(rec *Record) {
	if f := t.floor.Load(); f > 0 && int64(rec.Duration) <= f {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.recs = append(t.recs, rec)
	sort.Slice(t.recs, func(i, j int) bool { return t.recs[i].Duration > t.recs[j].Duration })
	if len(t.recs) > t.k {
		t.recs = t.recs[:t.k]
	}
	if len(t.recs) == t.k {
		t.floor.Store(int64(t.recs[len(t.recs)-1].Duration))
	}
}

// slowest returns up to n records, slowest first.
func (t *topK) slowest(n int) []*Record {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n <= 0 || n > len(t.recs) {
		n = len(t.recs)
	}
	out := make([]*Record, n)
	copy(out, t.recs[:n])
	return out
}

func (t *topK) reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.recs = nil
	t.floor.Store(0)
}
