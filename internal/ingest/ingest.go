package ingest

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"nok/internal/core"
	"nok/internal/obs"
	"nok/internal/telemetry"
)

// Target is the store surface the pipeline commits to. *nok.Store and
// *shard.Store both satisfy it: the whole slice lands as one committed
// epoch (per shard, for a sharded collection, with shard-aware routing
// through the SHARDS manifest).
//
// Retry contract: InsertBatch may return a *core.FragmentError ONLY if
// the store is completely untouched — no document of the batch durable
// anywhere. The pipeline reacts by dropping the offending fragment and
// re-submitting the remainder, so a FragmentError after a partial commit
// would durably duplicate the committed documents. A failure that leaves
// any prefix committed must surface as a different error type; the
// pipeline treats it as fatal.
type Target interface {
	InsertBatch(parentID string, frags [][]byte) error
	Epoch() uint64
}

// Options tunes a Pipeline. Zero values take the defaults.
type Options struct {
	// Parent is the Dewey ID new documents append under (default "0",
	// the collection/document root).
	Parent string
	// BatchDocs flushes a batch once it holds this many documents
	// (default 256).
	BatchDocs int
	// BatchBytes flushes a batch once it holds this many bytes
	// (default 1 MiB).
	BatchBytes int64
	// BatchInterval flushes a non-empty batch at least this often, so a
	// slow trickle still becomes durable promptly (default 200ms).
	BatchInterval time.Duration
	// MaxPending bounds the bytes accepted but not yet committed — the
	// pipeline's whole memory footprint. Submit returns a
	// *BackpressureError once it is exceeded (default 8 MiB).
	MaxPending int64
}

func (o Options) withDefaults() Options {
	if o.Parent == "" {
		o.Parent = "0"
	}
	if o.BatchDocs <= 0 {
		o.BatchDocs = 256
	}
	if o.BatchBytes <= 0 {
		o.BatchBytes = 1 << 20
	}
	if o.BatchInterval <= 0 {
		o.BatchInterval = 200 * time.Millisecond
	}
	if o.MaxPending <= 0 {
		o.MaxPending = 8 << 20
	}
	return o
}

// ErrClosed is returned by Submit and Flush after Close.
var ErrClosed = errors.New("ingest: pipeline closed")

// ErrBackpressure matches (errors.Is) every *BackpressureError.
var ErrBackpressure = errors.New("ingest: pipeline backpressure")

// BackpressureError is the typed, retryable overload signal: the bounded
// in-flight budget is full, so the submission was NOT accepted. Retry
// after RetryAfter — by then the committer has had a full flush interval
// to drain. The server maps this to HTTP 429 + Retry-After.
type BackpressureError struct {
	Pending    int64
	Limit      int64
	RetryAfter time.Duration
}

func (e *BackpressureError) Error() string {
	return fmt.Sprintf("ingest: backpressure: %d bytes pending of %d budget (retry in %s)",
		e.Pending, e.Limit, e.RetryAfter)
}

// Is reports true for ErrBackpressure, so errors.Is(err, ErrBackpressure)
// identifies backpressure without unwrapping.
func (e *BackpressureError) Is(target error) bool { return target == ErrBackpressure }

// Stats is a snapshot of a pipeline's lifetime counters.
type Stats struct {
	// Batches is the number of group commits; Docs the documents durably
	// committed; Bytes their submitted sizes.
	Batches uint64
	Docs    uint64
	Bytes   uint64
	// Rejected counts documents dropped because the store refused them
	// (malformed fragments); the rest of their batch still commits.
	Rejected uint64
	// Backpressured counts submissions refused by the in-flight budget.
	Backpressured uint64
	// LastReject describes the most recent per-document rejection.
	LastReject string
}

var (
	mBatches = obs.Default.Counter("nok_ingest_batches_total",
		"group commits executed by the ingest pipeline")
	mDocs = obs.Default.Counter("nok_ingest_docs_total",
		"documents durably committed by the ingest pipeline")
	mBytes = obs.Default.Counter("nok_ingest_bytes_total",
		"fragment bytes durably committed by the ingest pipeline")
	mRejected = obs.Default.Counter("nok_ingest_rejected_total",
		"documents rejected by the store during ingest (malformed fragments)")
	mBackpressure = obs.Default.Counter("nok_ingest_backpressure_total",
		"submissions refused because the ingest in-flight budget was full")
	hBatchDocs = obs.Default.Histogram("nok_ingest_batch_docs",
		"documents per group commit",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024})
	hFlushSeconds = obs.Default.Histogram("nok_ingest_flush_seconds",
		"group-commit flush latency in seconds", obs.LatencyBuckets)
)

// Pipeline batches submitted documents into group commits. Submissions
// are asynchronous: Submit accepts (or refuses, under backpressure) and
// returns immediately; a background committer flushes on size and time
// triggers. Flush is the durability barrier. Concurrent submitters share
// batches — and therefore share commits — which is the point: N writers
// each paying 1/Nth of an fsync.
//
// A store-level failure that is not attributable to one document (I/O
// error, ErrNeedsRecovery) is sticky: the pipeline fails fast on every
// subsequent Submit/Flush, because the committed prefix is unknown to
// later submitters and silently dropping their documents is worse.
type Pipeline struct {
	target Target
	opt    Options

	mu        sync.Mutex
	flushed   *sync.Cond // signaled after every drain step
	cur       [][]byte
	curBytes  int64
	pending   int64 // submitted-not-committed bytes, incl. in-flight batch
	submitSeq uint64
	doneSeq   uint64
	err       error // sticky fatal error
	closed    bool
	stats     Stats

	kick chan struct{}
	quit chan struct{}
	done chan struct{}
}

// NewPipeline starts a pipeline committing to target.
func NewPipeline(target Target, opt Options) *Pipeline {
	p := &Pipeline{
		target: target,
		opt:    opt.withDefaults(),
		kick:   make(chan struct{}, 1),
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	p.flushed = sync.NewCond(&p.mu)
	go p.run()
	return p
}

// Submit hands one document fragment to the pipeline. It does NOT wait
// for durability — call Flush for the barrier. The pipeline keeps the
// slice until commit; the caller must not modify it afterwards. Under
// backpressure the document is NOT accepted and a *BackpressureError
// (errors.Is ErrBackpressure) says when to retry.
func (p *Pipeline) Submit(frag []byte) error {
	n := int64(len(frag))
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	if p.err != nil {
		err := p.err
		p.mu.Unlock()
		return err
	}
	// Always admit into an empty pipeline, so one oversized document can
	// not wedge it; otherwise hold the bounded budget.
	if p.pending > 0 && p.pending+n > p.opt.MaxPending {
		p.stats.Backpressured++
		bp := &BackpressureError{Pending: p.pending, Limit: p.opt.MaxPending, RetryAfter: p.opt.BatchInterval}
		p.mu.Unlock()
		mBackpressure.Inc()
		return bp
	}
	p.cur = append(p.cur, frag)
	p.curBytes += n
	p.pending += n
	p.submitSeq++
	ready := len(p.cur) >= p.opt.BatchDocs || p.curBytes >= p.opt.BatchBytes
	p.mu.Unlock()
	if ready {
		p.wake()
	}
	return nil
}

// Flush blocks until every document submitted before the call is either
// durably committed or rejected, returning the pipeline's sticky error if
// the stream is dead.
func (p *Pipeline) Flush() error {
	p.mu.Lock()
	if p.closed {
		err := p.err
		p.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return err
	}
	target := p.submitSeq
	p.mu.Unlock()
	p.wake()
	p.mu.Lock()
	defer p.mu.Unlock()
	// A racing Close still drains everything buffered before the
	// committer exits, so doneSeq reaches target either way.
	for p.doneSeq < target && p.err == nil {
		p.flushed.Wait()
	}
	return p.err
}

// Close flushes what is buffered, stops the committer, and returns the
// sticky error, if any. Further Submit/Flush calls return ErrClosed.
func (p *Pipeline) Close() error {
	p.mu.Lock()
	if p.closed {
		err := p.err
		p.mu.Unlock()
		return err
	}
	p.closed = true
	p.mu.Unlock()
	close(p.quit)
	<-p.done
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// Stats returns a snapshot of the lifetime counters.
func (p *Pipeline) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Pending returns the submitted-but-uncommitted byte count.
func (p *Pipeline) Pending() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pending
}

// Budget returns the MaxPending in-flight byte budget. Feeders use it to
// bound a single document: Submit always admits into an empty pipeline
// (so one large document cannot wedge it), which means the budget only
// holds if no individual document exceeds it.
func (p *Pipeline) Budget() int64 { return p.opt.MaxPending }

func (p *Pipeline) wake() {
	select {
	case p.kick <- struct{}{}:
	default:
	}
}

// run is the committer: one goroutine turning accumulated submissions
// into group commits on size (kick) and time (ticker) triggers.
func (p *Pipeline) run() {
	defer close(p.done)
	ticker := time.NewTicker(p.opt.BatchInterval)
	defer ticker.Stop()
	for {
		select {
		case <-p.kick:
		case <-ticker.C:
		case <-p.quit:
			p.drain()
			return
		}
		p.drain()
	}
}

// drain commits full batches until nothing is buffered, then wakes
// flushers. On a sticky error the remaining submissions are accounted as
// done (they will never commit) so Flush callers observe the failure
// instead of hanging.
func (p *Pipeline) drain() {
	for {
		p.mu.Lock()
		if p.err != nil || len(p.cur) == 0 {
			if p.err != nil {
				p.doneSeq = p.submitSeq
			}
			p.flushed.Broadcast()
			p.mu.Unlock()
			return
		}
		batch := p.cur
		nbytes := p.curBytes
		p.cur = nil
		p.curBytes = 0
		p.mu.Unlock()

		start := time.Now()
		rejected, lastReject, err := p.commitBatch(batch)
		dur := time.Since(start)
		committed := len(batch) - rejected

		mBatches.Inc()
		mDocs.Add(int64(committed))
		mBytes.Add(nbytes)
		mRejected.Add(int64(rejected))
		hBatchDocs.Observe(float64(len(batch)))
		hFlushSeconds.Observe(dur.Seconds())
		rec := &telemetry.IngestBatch{
			When:     start,
			Docs:     committed,
			Rejected: rejected,
			Bytes:    nbytes,
			Flush:    dur,
			Epoch:    p.target.Epoch(),
		}
		if err != nil {
			rec.Err = err.Error()
		}
		telemetry.Default.CaptureIngest(rec)

		p.mu.Lock()
		p.pending -= nbytes
		p.doneSeq += uint64(len(batch))
		p.stats.Batches++
		p.stats.Docs += uint64(committed)
		p.stats.Bytes += uint64(nbytes)
		p.stats.Rejected += uint64(rejected)
		if lastReject != "" {
			p.stats.LastReject = lastReject
		}
		if err != nil {
			p.err = err
		}
		p.flushed.Broadcast()
		p.mu.Unlock()
		if err != nil {
			return
		}
	}
}

// commitBatch lands one batch. A *FragmentError pins the failure to one
// document: that document is dropped (rejected) and the rest of the batch
// retries, so one malformed fragment never poisons its batchmates. The
// retry is duplicate-free because of the Target contract — a
// *FragmentError promises nothing committed. Any other error (including a
// partial commit across shards) is fatal to the pipeline.
func (p *Pipeline) commitBatch(batch [][]byte) (rejected int, lastReject string, err error) {
	for len(batch) > 0 {
		err := p.target.InsertBatch(p.opt.Parent, batch)
		if err == nil {
			return rejected, lastReject, nil
		}
		var fe *core.FragmentError
		if errors.As(err, &fe) && fe.Index >= 0 && fe.Index < len(batch) {
			rejected++
			lastReject = fe.Error()
			batch = append(batch[:fe.Index:fe.Index], batch[fe.Index+1:]...)
			continue
		}
		return rejected, lastReject, err
	}
	return rejected, lastReject, nil
}
