package ingest

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func splitAll(t *testing.T, src string) []string {
	t.Helper()
	sp := NewSplitter(strings.NewReader(src))
	var out []string
	for {
		doc, err := sp.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out = append(out, string(doc))
	}
}

func TestSplitterCutsDocuments(t *testing.T) {
	src := `<doc n="1"><v>a</v></doc>` + "\n  " +
		`<doc n="2">two &amp; a half</doc>` +
		`<!-- between --><doc n="3"><nest><deep/></nest></doc>`
	docs := splitAll(t, src)
	if len(docs) != 3 {
		t.Fatalf("split %d documents, want 3: %q", len(docs), docs)
	}
	want := []string{
		`<doc n="1"><v>a</v></doc>`,
		`<doc n="2">two &amp; a half</doc>`,
		`<doc n="3"><nest><deep></deep></nest></doc>`,
	}
	for i := range want {
		if docs[i] != want[i] {
			t.Errorf("doc %d = %q, want %q", i, docs[i], want[i])
		}
	}
}

func TestSplitterPreservesAttrsAndEscapes(t *testing.T) {
	src := `<doc title="it&apos;s &lt;fine&gt;">a &lt; b</doc>`
	docs := splitAll(t, src)
	if len(docs) != 1 {
		t.Fatalf("split %d documents, want 1", len(docs))
	}
	// Re-splitting the output must produce the same document: the escape
	// round trip is stable.
	again := splitAll(t, docs[0])
	if len(again) != 1 || again[0] != docs[0] {
		t.Fatalf("re-split changed the document: %q -> %q", docs[0], again)
	}
}

func TestSplitterMalformedStream(t *testing.T) {
	sp := NewSplitter(strings.NewReader(`<doc>ok</doc><doc>unclosed`))
	if _, err := sp.Next(); err != nil {
		t.Fatalf("first document: %v", err)
	}
	if _, err := sp.Next(); err == nil || err == io.EOF {
		t.Fatalf("malformed tail: err = %v, want syntax error", err)
	}
	// The splitter is spent: the error is sticky.
	if _, err := sp.Next(); err == nil || err == io.EOF {
		t.Fatalf("spent splitter returned %v", err)
	}
}

func TestSplitterMaxDocBytes(t *testing.T) {
	big := `<doc><v>` + strings.Repeat("x", 256) + `</v></doc>`
	sp := NewSplitter(strings.NewReader(`<doc>small</doc>` + big))
	sp.MaxDocBytes = 64
	if _, err := sp.Next(); err != nil {
		t.Fatalf("document under the limit: %v", err)
	}
	_, err := sp.Next()
	if !errors.Is(err, ErrDocTooLarge) {
		t.Fatalf("oversized document: err = %v, want ErrDocTooLarge", err)
	}
	// Spent afterwards, like any malformed-stream error.
	if _, err := sp.Next(); !errors.Is(err, ErrDocTooLarge) {
		t.Fatalf("spent splitter returned %v", err)
	}
	// Unlimited splitters keep accepting the same document.
	sp = NewSplitter(strings.NewReader(big))
	if _, err := sp.Next(); err != nil {
		t.Fatalf("unlimited splitter: %v", err)
	}
}

func TestSplitterEmptyStream(t *testing.T) {
	sp := NewSplitter(strings.NewReader("  \n "))
	if _, err := sp.Next(); err != io.EOF {
		t.Fatalf("empty stream: %v, want io.EOF", err)
	}
}

// errThenDataReader returns its payload together with a non-EOF error in
// one Read call — the io.Reader contract TailReader must not lose data or
// errors over, even when the underlying error is not sticky.
type errThenDataReader struct {
	data []byte
	err  error
	done bool
}

func (r *errThenDataReader) Read(p []byte) (int, error) {
	if r.done {
		return 0, io.EOF // NOT sticky: the original error never repeats
	}
	r.done = true
	n := copy(p, r.data)
	return n, r.err
}

// TestTailReaderKeepsErrorWithData: a non-EOF error arriving alongside
// bytes must surface on the next Read instead of being dropped — with a
// non-sticky underlying reader the tail would otherwise poll forever as
// if healthy.
func TestTailReaderKeepsErrorWithData(t *testing.T) {
	boom := errors.New("disk on fire")
	tr := NewTailReader(&errThenDataReader{data: []byte("abc"), err: boom})
	buf := make([]byte, 16)
	n, err := tr.Read(buf)
	if n != 3 || err != nil {
		t.Fatalf("first Read = %d, %v; want 3, nil", n, err)
	}
	if n, err := tr.Read(buf); n != 0 || !errors.Is(err, boom) {
		t.Fatalf("second Read = %d, %v; want 0, the remembered error", n, err)
	}
	// The failure stays sticky on the tail itself.
	if _, err := tr.Read(buf); !errors.Is(err, boom) {
		t.Fatalf("third Read = %v, want the remembered error", err)
	}
}

// TestTailReaderFollowsGrowth appends documents to a file while a
// splitter tails it — the -follow data path.
func TestTailReaderFollowsGrowth(t *testing.T) {
	path := filepath.Join(t.TempDir(), "feed.xml")
	if err := os.WriteFile(path, []byte(`<doc n="0"/>`), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr := NewTailReader(f)
	tr.Poll = 5 * time.Millisecond
	sp := NewSplitter(tr)

	got := make(chan string, 8)
	fail := make(chan error, 1)
	go func() {
		for {
			doc, err := sp.Next()
			if err == io.EOF {
				close(got)
				return
			}
			if err != nil {
				fail <- err
				return
			}
			got <- string(doc)
		}
	}()

	expect := func(want string) {
		t.Helper()
		select {
		case doc := <-got:
			if doc != want {
				t.Fatalf("tailed %q, want %q", doc, want)
			}
		case err := <-fail:
			t.Fatalf("splitter: %v", err)
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for %q", want)
		}
	}
	expect(`<doc n="0"></doc>`)

	w, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 1; i <= 3; i++ {
		if _, err := fmt.Fprintf(w, `<doc n="%d"/>`, i); err != nil {
			t.Fatal(err)
		}
		expect(fmt.Sprintf(`<doc n="%d"></doc>`, i))
	}
	tr.Stop()
	select {
	case _, open := <-got:
		if open {
			t.Fatal("unexpected extra document after Stop")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("tail did not end after Stop")
	}
}
