package ingest

import (
	"io"
	"sync/atomic"
	"time"
)

// TailReader adapts a growing input (a file being appended to) into the
// endless reader a Splitter wants: at EOF of the underlying reader it
// polls for more data instead of reporting end-of-stream, because an
// *os.File keeps its offset and serves newly appended bytes on the next
// Read. The tail ends when Stop is called or, with a non-zero IdleLimit,
// when no new data arrives for that long.
type TailReader struct {
	r io.Reader
	// Poll is the growth-check interval (default 150ms).
	Poll time.Duration
	// IdleLimit, when non-zero, ends the tail (io.EOF) after this much
	// time without new data. Zero tails until Stop.
	IdleLimit time.Duration

	stopped atomic.Bool
	// sticky holds a non-EOF error that arrived together with data; it is
	// delivered on the next Read so the failure survives even when the
	// underlying reader's error is not sticky.
	sticky error
}

// NewTailReader wraps r with the default poll interval.
func NewTailReader(r io.Reader) *TailReader {
	return &TailReader{r: r, Poll: 150 * time.Millisecond}
}

// Stop makes the next Read at end-of-data return io.EOF, ending the tail
// cleanly between documents. Safe to call from another goroutine.
func (t *TailReader) Stop() { t.stopped.Store(true) }

func (t *TailReader) Read(p []byte) (int, error) {
	if t.sticky != nil {
		return 0, t.sticky
	}
	var idle time.Duration
	for {
		n, err := t.r.Read(p)
		if n > 0 {
			// Deliver the bytes now; a non-EOF error that rode along is
			// remembered and returned on the next call instead of dropped.
			if err != nil && err != io.EOF {
				t.sticky = err
			}
			return n, nil
		}
		if err != nil && err != io.EOF {
			return 0, err
		}
		if t.stopped.Load() {
			return 0, io.EOF
		}
		if t.IdleLimit > 0 && idle >= t.IdleLimit {
			return 0, io.EOF
		}
		poll := t.Poll
		if poll <= 0 {
			poll = 150 * time.Millisecond
		}
		time.Sleep(poll)
		idle += poll
	}
}
