// Package ingest is the continuous-ingestion subsystem: a bounded-memory,
// SAX-driven append pipeline that accepts a stream of XML document
// fragments and lands them in the store through group commit — many
// submitted documents accumulate into one copy-on-write transaction and
// publish as ONE MVCC epoch, amortizing the per-commit fsync + manifest
// rename that makes per-Insert appends unusable for sustained writes.
// Readers keep serving pinned snapshots throughout, and the statistics
// synopsis is maintained incrementally (stats.Merge), so the planner never
// silently degrades to the §6.2 heuristic mid-stream.
//
// The pieces:
//
//   - Splitter cuts a concatenated fragment stream (an HTTP body, a tailed
//     file) into standalone documents with bounded memory.
//   - Pipeline batches submitted documents and group-commits them on size
//     and time triggers, with backpressure (a typed retryable error) when
//     the in-flight budget fills.
//   - TailReader turns a growing file into the endless reader -follow
//     needs.
package ingest

import (
	"bytes"
	"errors"
	"fmt"
	"io"

	"nok/internal/sax"
)

// ErrDocTooLarge is returned (wrapped) by Splitter.Next when a single
// document grows past MaxDocBytes. The splitter is spent afterwards, like
// any other malformed-stream error: the oversized document is mid-stream
// and cannot be skipped.
var ErrDocTooLarge = errors.New("ingest: document exceeds the per-document size limit")

// Splitter reads a concatenation of top-level XML documents from one
// reader and returns them one at a time, re-serialized as standalone
// fragments. Memory is bounded by the largest single document, not the
// stream: the underlying SAX scanner never buffers past one event. The
// input need not terminate — wrap a growing file in a TailReader and the
// splitter keeps producing documents as they complete.
type Splitter struct {
	sc  *sax.Scanner
	err error

	// MaxDocBytes, when non-zero, bounds the re-serialized size of one
	// document; a document growing past it fails Next with a wrapped
	// ErrDocTooLarge. It is the memory cap for untrusted input: without it
	// a single oversized document buffers in full, outside any pipeline
	// backpressure budget.
	MaxDocBytes int64
}

// NewSplitter returns a Splitter over r.
func NewSplitter(r io.Reader) *Splitter {
	return &Splitter{sc: sax.NewScanner(r)}
}

// Next returns the next complete top-level document, or io.EOF at the end
// of the stream. Comments and processing instructions between and inside
// documents are dropped (the store does not represent them). After a
// non-EOF error the splitter is spent: the scanner cannot resynchronize
// inside a malformed stream.
func (sp *Splitter) Next() ([]byte, error) {
	if sp.err != nil {
		return nil, sp.err
	}
	var buf bytes.Buffer
	depth := 0
	write := func(ev sax.Event) error {
		if err := sax.WriteEvent(&buf, ev); err != nil {
			return err
		}
		if sp.MaxDocBytes > 0 && int64(buf.Len()) > sp.MaxDocBytes {
			return fmt.Errorf("%w: %d bytes buffered of %d allowed", ErrDocTooLarge, buf.Len(), sp.MaxDocBytes)
		}
		return nil
	}
	for {
		ev, err := sp.sc.Next()
		if err == io.EOF {
			// The scanner errors on EOF inside an open element, so depth
			// is 0 here: a clean end of stream.
			sp.err = io.EOF
			return nil, io.EOF
		}
		if err != nil {
			sp.err = err
			return nil, err
		}
		switch ev.Kind {
		case sax.StartElement:
			depth++
			if err := write(ev); err != nil {
				sp.err = err
				return nil, err
			}
		case sax.EndElement:
			depth--
			if err := write(ev); err != nil {
				sp.err = err
				return nil, err
			}
			if depth == 0 {
				return buf.Bytes(), nil
			}
		case sax.Text:
			if depth > 0 {
				if err := write(ev); err != nil {
					sp.err = err
					return nil, err
				}
			}
		}
	}
}
