package ingest

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"nok/internal/core"
	"nok/internal/dewey"
	"nok/internal/faultfs"
	"nok/internal/vfs"
)

// coreTarget adapts *core.DB to the pipeline's Target so the crash sweep
// can inject faults through core.Options.FS (the public nok.Options has no
// file-system hook — crash plumbing stays internal).
type coreTarget struct{ db *core.DB }

func (t coreTarget) InsertBatch(parentID string, frags [][]byte) error {
	id, err := dewey.Parse(parentID)
	if err != nil {
		return err
	}
	readers := make([]io.Reader, len(frags))
	for i, f := range frags {
		readers[i] = bytes.NewReader(f)
	}
	return t.db.InsertFragmentBatch(id, readers)
}

func (t coreTarget) Epoch() uint64 { return t.db.Epoch() }

const ingestCrashDoc = `<col><doc n="seed"><v>0</v></doc></col>`

// ingestCrashWorkload opens the store through fsys and streams two
// deterministic 3-document batches through a pipeline (BatchDocs 4 and a
// huge interval mean only the Flush barriers trigger commits, so the
// file-system op sequence is identical on every run). Any step may fail
// once a fault is armed; the first error aborts the rest (the process
// "died" there).
func ingestCrashWorkload(dir string, fsys vfs.FS) error {
	db, err := core.Open(dir, &core.Options{FS: fsys})
	if err != nil {
		return err
	}
	p := NewPipeline(coreTarget{db}, Options{BatchDocs: 4, BatchInterval: time.Hour})
	werr := func() error {
		for batch := 0; batch < 2; batch++ {
			for i := 0; i < 3; i++ {
				doc := fmt.Sprintf(`<doc n="c%d"><v>x</v></doc>`, batch*3+i)
				if err := p.Submit([]byte(doc)); err != nil {
					return err
				}
			}
			if err := p.Flush(); err != nil {
				return err
			}
		}
		return nil
	}()
	cerr := p.Close()
	dberr := db.Close()
	if werr != nil {
		return werr
	}
	if cerr != nil {
		return cerr
	}
	return dberr
}

// TestCrashIngestSweep kills the "process" at every mutating file-system
// operation of a two-batch ingest and requires that recovery always lands
// on a committed batch boundary: node count and epoch of the base, the
// post-batch-1, or the post-batch-2 commit, agreeing with each other, with
// a clean deep Verify, no MVCC debris, and — the ingest-specific
// obligation — a synopsis that matches the recovered store exactly, so the
// planner is never left with stale statistics after a crash mid-stream.
func TestCrashIngestSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep re-runs the ingest workload once per fault point")
	}

	// Probe run: record the three committed states and the op count.
	probe := t.TempDir() + "/probe"
	db, err := core.LoadXML(probe, strings.NewReader(ingestCrashDoc), nil)
	if err != nil {
		t.Fatal(err)
	}
	n0, baseEpoch := db.NodeCount(), db.Epoch()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	counter := faultfs.New(vfs.OS)
	if err := ingestCrashWorkload(probe, counter); err != nil {
		t.Fatal(err)
	}
	total := counter.Ops()
	if total < 10 {
		t.Fatalf("ingest workload performed only %d mutating ops; sweep is vacuous", total)
	}
	db, err = core.Open(probe, nil)
	if err != nil {
		t.Fatal(err)
	}
	n2 := db.NodeCount()
	if got := db.Epoch(); got != baseEpoch+2 {
		t.Fatalf("probe ended on epoch %d, want %d (exactly two group commits)", got, baseEpoch+2)
	}
	// Both batches are the same shape, so the mid state is the midpoint.
	n1 := n0 + (n2-n0)/2
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	wantNodes := map[uint64]uint64{baseEpoch: n0, baseEpoch + 1: n1, baseEpoch + 2: n2}
	t.Logf("sweeping %d fault points × 2 modes (n0=%d n1=%d n2=%d baseEpoch=%d)", total, n0, n1, n2, baseEpoch)

	for _, mode := range []faultfs.Mode{faultfs.ErrOp, faultfs.ShortWrite} {
		modeName := map[faultfs.Mode]string{faultfs.ErrOp: "errop", faultfs.ShortWrite: "shortwrite"}[mode]
		for i := int64(1); i <= total; i++ {
			i, mode := i, mode
			t.Run(fmt.Sprintf("%s/op%03d", modeName, i), func(t *testing.T) {
				dir := t.TempDir() + "/db"
				db, err := core.LoadXML(dir, strings.NewReader(ingestCrashDoc), nil)
				if err != nil {
					t.Fatal(err)
				}
				if err := db.Close(); err != nil {
					t.Fatal(err)
				}

				ffs := faultfs.New(vfs.OS)
				ffs.FailAt(i, mode)
				werr := ingestCrashWorkload(dir, ffs)
				if !ffs.Crashed() {
					t.Fatalf("fault at op %d never fired (workload err: %v)", i, werr)
				}
				if werr == nil {
					t.Fatalf("ingest workload survived a crash at op %d", i)
				}

				re, err := core.Open(dir, nil)
				if err != nil {
					t.Fatalf("reopen after crash at op %d: %v", i, err)
				}
				defer re.Close()
				res := re.Verify(true)
				for _, is := range res.Issues {
					t.Errorf("verify after crash at op %d: %s", i, is)
				}
				e := re.Epoch()
				want, ok := wantNodes[e]
				if !ok {
					t.Fatalf("epoch %d after crash at op %d; want within [%d, %d]", e, i, baseEpoch, baseEpoch+2)
				}
				if n := re.NodeCount(); n != want {
					t.Errorf("epoch %d with node count %d after crash at op %d; want %d — recovery landed between batch boundaries", e, n, i, want)
				}
				// Synopsis and store must agree: the synopsis belongs to the
				// recovered epoch and describes exactly its nodes.
				syn := re.Synopsis()
				if syn == nil {
					t.Fatalf("no synopsis after crash at op %d", i)
				}
				if !re.SynopsisFresh() {
					t.Errorf("stale synopsis (epoch %d) for store epoch %d after crash at op %d", syn.Epoch, e, i)
				}
				if syn.TotalNodes != re.NodeCount() {
					t.Errorf("synopsis claims %d nodes, store has %d, after crash at op %d", syn.TotalNodes, re.NodeCount(), i)
				}
				mi := re.MVCCInfo()
				if mi.LiveVersions != 1 || mi.OrphanPages != 0 {
					t.Errorf("MVCC state after crash at op %d: %+v", i, mi)
				}
				// The recovered store must accept new group commits.
				tgt := coreTarget{re}
				if err := tgt.InsertBatch("0", [][]byte{[]byte(`<doc n="after"/>`)}); err != nil {
					t.Errorf("batch insert after recovery from crash at op %d: %v", i, err)
				} else if got := re.Epoch(); got != e+1 {
					t.Errorf("epoch %d after post-recovery batch, want %d", got, e+1)
				}
			})
		}
	}
}
