package ingest

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"nok/internal/shard"
)

// TestIngestSoakSharded drives sustained streamed load into a 4-shard
// collection while concurrent readers query it — the CI soak scenario,
// meant to run under -race. Writers share one pipeline (group commit across
// submitters), readers must always observe a consistent snapshot: document
// counts only ever grow, and every query succeeds mid-stream.
func TestIngestSoakSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("soak streams hundreds of documents")
	}
	seed := `<col>` + strings.Repeat(`<doc n="seed"><v>0</v></doc>`, 4) + `</col>`
	st, err := shard.Create(t.TempDir(), strings.NewReader(seed), &shard.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	p := NewPipeline(st, Options{
		BatchDocs:     32,
		BatchInterval: 10 * time.Millisecond,
		MaxPending:    64 << 10,
	})

	const writers, perWriter = 3, 80
	var readerWG, writerWG sync.WaitGroup
	errCh := make(chan error, writers+1)
	stop := make(chan struct{})

	// Reader: counts grow monotonically and queries never fail mid-stream.
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		last := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			res, err := st.Query(`//doc`)
			if err != nil {
				errCh <- fmt.Errorf("query mid-stream: %w", err)
				return
			}
			if len(res) < last {
				errCh <- fmt.Errorf("document count went backwards: %d -> %d", last, len(res))
				return
			}
			last = len(res)
			time.Sleep(2 * time.Millisecond)
		}
	}()

	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				doc := []byte(fmt.Sprintf(
					`<doc n="w%d-%d"><v>soak payload %d</v></doc>`, w, i, i))
				for {
					err := p.Submit(doc)
					if err == nil {
						break
					}
					var bp *BackpressureError
					if !errors.As(err, &bp) {
						errCh <- fmt.Errorf("writer %d doc %d: %w", w, i, err)
						return
					}
					time.Sleep(bp.RetryAfter)
				}
			}
		}(w)
	}

	writerWG.Wait()
	werr := p.Flush()
	close(stop)
	readerWG.Wait()
	if werr != nil {
		t.Fatal(werr)
	}
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if err := p.Close(); err != nil {
		t.Fatalf("close pipeline: %v", err)
	}

	stats := p.Stats()
	const total = writers * perWriter
	if stats.Docs != total || stats.Rejected != 0 {
		t.Fatalf("stats = %+v, want %d docs committed", stats, total)
	}
	if stats.Batches >= total {
		t.Fatalf("%d batches for %d docs: no grouping under sustained load", stats.Batches, total)
	}
	res, err := st.Query(`//doc`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != total+4 {
		t.Fatalf("collection holds %d docs, want %d", len(res), total+4)
	}
	if r := st.Verify(true); len(r.Issues) != 0 {
		t.Fatalf("verify after soak: %v", r.Issues)
	}
	t.Logf("soak: %d docs in %d group commits, %d backpressure refusals",
		stats.Docs, stats.Batches, stats.Backpressured)
}
