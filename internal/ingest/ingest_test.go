package ingest

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"nok"
	"nok/internal/telemetry"
)

const testSeed = `<col><doc n="seed"><v>0</v></doc></col>`

func testDoc(i int) []byte {
	return []byte(fmt.Sprintf(`<doc n="%d"><v>payload %d</v></doc>`, i, i))
}

func openStore(t *testing.T) *nok.Store {
	t.Helper()
	st, err := nok.Create(t.TempDir(), strings.NewReader(testSeed), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func countDocs(t *testing.T, st *nok.Store) int {
	t.Helper()
	res, err := st.Query(`//doc`)
	if err != nil {
		t.Fatalf("count docs: %v", err)
	}
	return len(res)
}

// TestPipelineGroupCommit is the core property: N submitted documents land
// in far fewer commits, each batch one MVCC epoch, with the telemetry
// record carrying the published epoch.
func TestPipelineGroupCommit(t *testing.T) {
	st := openStore(t)
	epoch0 := st.Epoch()
	p := NewPipeline(st, Options{BatchDocs: 8, BatchInterval: time.Hour})
	const n = 24
	for i := 0; i < n; i++ {
		if err := p.Submit(testDoc(i)); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	stats := p.Stats()
	if stats.Docs != n || stats.Rejected != 0 {
		t.Fatalf("stats = %+v, want %d docs, 0 rejected", stats, n)
	}
	// Size trigger fires at 8 docs, so at most ceil(24/8) commits; group
	// commit means strictly fewer epochs than documents.
	if stats.Batches == 0 || stats.Batches > 3 {
		t.Fatalf("%d batches for %d docs, want 1..3", stats.Batches, n)
	}
	if got, want := st.Epoch()-epoch0, stats.Batches; got != want {
		t.Fatalf("epoch advanced by %d, want one epoch per batch (%d)", got, want)
	}
	if got := countDocs(t, st); got != n+1 {
		t.Fatalf("store holds %d docs, want %d", got, n+1)
	}
	recs := telemetry.Default.IngestRecent(1)
	if len(recs) != 1 {
		t.Fatalf("no ingest telemetry captured")
	}
	if recs[0].Epoch != st.Epoch() || recs[0].Docs == 0 {
		t.Fatalf("telemetry record %+v does not match store epoch %d", recs[0], st.Epoch())
	}
	if err := p.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestPipelineTimeTrigger commits a trickle on the interval timer, without
// any Flush barrier.
func TestPipelineTimeTrigger(t *testing.T) {
	st := openStore(t)
	p := NewPipeline(st, Options{BatchDocs: 1 << 20, BatchInterval: 20 * time.Millisecond})
	defer p.Close()
	for i := 0; i < 2; i++ {
		if err := p.Submit(testDoc(i)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().Docs < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("interval flush never happened: %+v", p.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := countDocs(t, st); got != 3 {
		t.Fatalf("store holds %d docs, want 3", got)
	}
}

// TestPipelineRejectsMalformed drops a malformed fragment but commits its
// batchmates.
func TestPipelineRejectsMalformed(t *testing.T) {
	st := openStore(t)
	p := NewPipeline(st, Options{BatchDocs: 3, BatchInterval: time.Hour})
	defer p.Close()
	for _, frag := range [][]byte{
		testDoc(0),
		[]byte(`   `), // no root element: the store rejects it
		testDoc(1),
	} {
		if err := p.Submit(frag); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	stats := p.Stats()
	if stats.Docs != 2 || stats.Rejected != 1 {
		t.Fatalf("stats = %+v, want 2 committed + 1 rejected", stats)
	}
	if stats.LastReject == "" {
		t.Fatal("LastReject empty after a rejection")
	}
	if got := countDocs(t, st); got != 3 {
		t.Fatalf("store holds %d docs, want 3", got)
	}
	// The pipeline is still healthy.
	if err := p.Submit(testDoc(2)); err != nil {
		t.Fatalf("submit after rejection: %v", err)
	}
	if err := p.Flush(); err != nil {
		t.Fatalf("flush after rejection: %v", err)
	}
}

// stubTarget lets tests control commit behavior: block commits to build
// backpressure, or fail them to test the sticky-error path.
type stubTarget struct {
	mu      sync.Mutex
	epoch   uint64
	batches int
	docs    int
	block   chan struct{} // non-nil: commits wait until closed
	fail    error         // non-nil: commits fail
}

func (s *stubTarget) InsertBatch(parentID string, frags [][]byte) error {
	s.mu.Lock()
	block, fail := s.block, s.fail
	s.mu.Unlock()
	if block != nil {
		<-block
	}
	if fail != nil {
		return fail
	}
	s.mu.Lock()
	s.epoch++
	s.batches++
	s.docs += len(frags)
	s.mu.Unlock()
	return nil
}

func (s *stubTarget) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

func TestPipelineBackpressure(t *testing.T) {
	gate := make(chan struct{})
	tgt := &stubTarget{block: gate}
	p := NewPipeline(tgt, Options{BatchDocs: 1, BatchInterval: time.Hour, MaxPending: 100})
	defer p.Close()

	big := make([]byte, 60)
	if err := p.Submit(big); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	// The committer is now stuck inside InsertBatch holding 60 in-flight
	// bytes; the budget refuses the next 60.
	deadline := time.Now().Add(5 * time.Second)
	var err error
	for {
		err = p.Submit(big)
		if err != nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !errors.Is(err, ErrBackpressure) {
		t.Fatalf("submit over budget: %v, want ErrBackpressure", err)
	}
	var bp *BackpressureError
	if !errors.As(err, &bp) {
		t.Fatalf("error %T is not *BackpressureError", err)
	}
	if bp.RetryAfter <= 0 || bp.Limit != 100 {
		t.Fatalf("backpressure detail %+v", bp)
	}
	if p.Stats().Backpressured == 0 {
		t.Fatal("Backpressured counter not incremented")
	}

	// Releasing the committer drains the budget; the retry succeeds.
	close(gate)
	tgt.mu.Lock()
	tgt.block = nil
	tgt.mu.Unlock()
	if err := p.Flush(); err != nil {
		t.Fatalf("flush after release: %v", err)
	}
	if err := p.Submit(big); err != nil {
		t.Fatalf("submit after drain: %v", err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if p.Pending() != 0 {
		t.Fatalf("pending %d after full flush", p.Pending())
	}
}

func TestPipelineStickyError(t *testing.T) {
	boom := errors.New("disk on fire")
	tgt := &stubTarget{fail: boom}
	p := NewPipeline(tgt, Options{BatchDocs: 1, BatchInterval: time.Hour})
	if err := p.Submit([]byte(`<doc/>`)); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); !errors.Is(err, boom) {
		t.Fatalf("flush: %v, want sticky %v", err, boom)
	}
	if err := p.Submit([]byte(`<doc/>`)); !errors.Is(err, boom) {
		t.Fatalf("submit after fatal error: %v, want sticky %v", err, boom)
	}
	if err := p.Close(); !errors.Is(err, boom) {
		t.Fatalf("close: %v, want sticky %v", err, boom)
	}
}

func TestPipelineCloseFlushesAndRefuses(t *testing.T) {
	st := openStore(t)
	p := NewPipeline(st, Options{BatchDocs: 1 << 20, BatchInterval: time.Hour})
	for i := 0; i < 5; i++ {
		if err := p.Submit(testDoc(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if got := countDocs(t, st); got != 6 {
		t.Fatalf("store holds %d docs after close, want buffered docs committed (6)", got)
	}
	if err := p.Submit(testDoc(9)); err != ErrClosed {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
	if err := p.Flush(); err != ErrClosed {
		t.Fatalf("flush after close: %v, want ErrClosed", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// TestPipelineConcurrentSubmitters is the group-commit payoff: many
// writers share batches, so commits (= epochs = fsyncs) stay far below the
// document count. Submitters retry through backpressure like a real client.
func TestPipelineConcurrentSubmitters(t *testing.T) {
	st := openStore(t)
	epoch0 := st.Epoch()
	p := NewPipeline(st, Options{BatchDocs: 64, BatchInterval: 10 * time.Millisecond, MaxPending: 64 << 10})
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				doc := testDoc(w*perWorker + i)
				for {
					err := p.Submit(doc)
					if err == nil {
						break
					}
					var bp *BackpressureError
					if !errors.As(err, &bp) {
						errCh <- fmt.Errorf("worker %d doc %d: %w", w, i, err)
						return
					}
					time.Sleep(bp.RetryAfter)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	stats := p.Stats()
	const total = workers * perWorker
	if stats.Docs != total || stats.Rejected != 0 {
		t.Fatalf("stats = %+v, want %d docs", stats, total)
	}
	if stats.Batches >= total/2 {
		t.Fatalf("%d batches for %d docs: group commit is not grouping", stats.Batches, total)
	}
	if got, want := st.Epoch()-epoch0, stats.Batches; got != want {
		t.Fatalf("epoch advanced by %d, want %d (one per batch)", got, want)
	}
	if got := countDocs(t, st); got != total+1 {
		t.Fatalf("store holds %d docs, want %d", got, total+1)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if r := st.Verify(true); len(r.Issues) != 0 {
		t.Fatalf("verify after concurrent ingest: %v", r.Issues)
	}
}
