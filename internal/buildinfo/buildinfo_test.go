package buildinfo

import (
	"bytes"
	"strings"
	"testing"

	"nok/internal/obs"
)

func TestString(t *testing.T) {
	s := String()
	if !strings.HasPrefix(s, "nok ") || !strings.Contains(s, GoVersion()) {
		t.Errorf("identity line = %q", s)
	}
}

// TestBuildInfoMetricRegistered checks init published nok_build_info in the
// default registry with the identity labels.
func TestBuildInfoMetricRegistered(t *testing.T) {
	var buf bytes.Buffer
	if err := obs.Default.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# TYPE nok_build_info gauge") {
		t.Fatal("nok_build_info not exposed")
	}
	for _, want := range []string{`version="` + Version + `"`, `goversion="` + GoVersion() + `"`, `commit="`} {
		if !strings.Contains(out, want) {
			t.Errorf("nok_build_info missing label %s:\n%s", want, out)
		}
	}
}
