// Package buildinfo identifies the running binary: version (stamped at
// link time), VCS commit (from the embedded build info), and Go toolchain.
// Every nok command's -version flag, nokstat, /healthz, and the
// nok_build_info metric all read from here, so a support bundle or a
// metrics scrape always says exactly what was running.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"nok/internal/obs"
)

// Version is the human-facing release string, stamped at build time:
//
//	go build -ldflags "-X nok/internal/buildinfo.Version=v1.2.3" ./...
//
// Unstamped builds report "dev".
var Version = "dev"

var commitOnce = sync.OnceValue(func() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	commit, dirty := "unknown", false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			commit = s.Value
			if len(commit) > 12 {
				commit = commit[:12]
			}
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if dirty {
		commit += "+dirty"
	}
	return commit
})

// Commit returns the short VCS revision the binary was built from, with a
// "+dirty" suffix for modified trees; "unknown" when the build carried no
// VCS stamp (e.g. go test binaries).
func Commit() string { return commitOnce() }

// GoVersion returns the Go toolchain that built the binary.
func GoVersion() string { return runtime.Version() }

// String renders the one-line identity used by every command's -version
// flag: "nok dev (abc123def456, go1.24.0)".
func String() string {
	return fmt.Sprintf("nok %s (%s, %s)", Version, Commit(), GoVersion())
}

// init publishes the identity as the nok_build_info info metric — the
// Prometheus idiom of a constant-1 gauge whose labels carry the facts — so
// every scrape records what was running.
func init() {
	obs.Default.Info("nok_build_info", "build metadata of the running binary", map[string]string{
		"version":   Version,
		"commit":    Commit(),
		"goversion": GoVersion(),
	})
}
