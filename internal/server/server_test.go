package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nok"
	"nok/internal/samples"
)

// buildXML generates a library of n books; //book[price<100] with a forced
// scan strategy visits every node, making evaluation slow enough to observe
// cancellation, deadlines and admission control.
func buildXML(n int) string {
	var b strings.Builder
	b.WriteString("<lib>")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "<book><title>t%d</title><price>%d</price></book>", i, i%200)
	}
	b.WriteString("</lib>")
	return b.String()
}

// slowQuery forces a full-document navigation on the generated library.
const slowQuery = "/query?q=" + "%2F%2Fbook%5Bprice%3C100%5D" + "&strategy=scan"

// newTestServer builds a store from xml and wraps it in a Server +
// httptest.Server. The Server owns the store; cleanup drains it.
func newTestServer(t *testing.T, xml string, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	st, err := nok.Create(filepath.Join(t.TempDir(), "db"), strings.NewReader(xml), nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(st, cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv, ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decoding: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestEndpoints(t *testing.T) {
	_, ts := newTestServer(t, samples.Bibliography, Config{})

	var qr queryResponse
	if code := getJSON(t, ts.URL+"/query?q=%2Fbib%2Fbook%2Ftitle&stats=1", &qr); code != 200 {
		t.Fatalf("query status %d", code)
	}
	if qr.Count != 4 || len(qr.Results) != 4 || qr.Cached || qr.Stats == nil {
		t.Errorf("query response: %+v", qr)
	}
	if qr.Results[0].Value != "TCP/IP Illustrated" {
		t.Errorf("first title: %+v", qr.Results[0])
	}

	// Same expression, different whitespace: normalization hits the cache.
	if code := getJSON(t, ts.URL+"/query?q=%2Fbib%2F%20book%2Ftitle", &qr); code != 200 {
		t.Fatalf("repeat query status %d", code)
	}
	if !qr.Cached {
		t.Errorf("normalized repeat not cached: %+v", qr)
	}

	// limit truncates but reports the full count.
	if getJSON(t, ts.URL+"/query?q=%2Fbib%2Fbook%2Ftitle&limit=2", &qr); qr.Count != 4 || len(qr.Results) != 2 || !qr.Truncated {
		t.Errorf("limited response: %+v", qr)
	}

	var er errorResponse
	for _, bad := range []string{
		"/query?q=%2Fbib%5B",         // malformed expression
		"/query",                     // missing q
		"/query?q=%2Fbib&strategy=x", // unknown strategy
		"/query?q=%2Fbib&limit=-1",   // bad limit
		"/query?q=%2Fbib&timeout=no", // bad timeout
	} {
		if code := getJSON(t, ts.URL+bad, &er); code != 400 {
			t.Errorf("GET %s: status %d, want 400", bad, code)
		}
		if er.Error == "" {
			t.Errorf("GET %s: empty error message", bad)
		}
	}

	var v resultJSON
	if code := getJSON(t, ts.URL+"/value/0.1.2", &v); code != 200 || v.Value != "TCP/IP Illustrated" {
		t.Errorf("value: status %d, %+v", code, v)
	}
	if code := getJSON(t, ts.URL+"/value/0.99", nil); code != 404 {
		t.Errorf("missing value: status %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/value/bogus", nil); code != 400 {
		t.Errorf("bad id: status %d, want 400", code)
	}

	var sr statsResponse
	if code := getJSON(t, ts.URL+"/stats", &sr); code != 200 || sr.Nodes == 0 || sr.Cache.Capacity != 1024 {
		t.Errorf("stats: status %d, %+v", code, sr)
	}

	resp, err := http.Get(ts.URL + "/explain?q=%2F%2Fbook")
	if err != nil {
		t.Fatal(err)
	}
	plan, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(plan), "partitions") {
		t.Errorf("explain: status %d, %q", resp.StatusCode, plan)
	}
	resp, err = http.Get(ts.URL + "/explain?q=%2F%2Fbook&analyze=1")
	if err != nil {
		t.Fatal(err)
	}
	plan, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(plan), "query //book") {
		t.Errorf("explain analyze: status %d, %q", resp.StatusCode, plan)
	}

	// /plan prints the cost-based plan without executing.
	resp, err = http.Get(ts.URL + "/plan?q=%2F%2Fbook%5Bprice%5D")
	if err != nil {
		t.Fatal(err)
	}
	plan, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(plan), "plan //book[price]") ||
		!strings.Contains(string(plan), "est total") {
		t.Errorf("plan: status %d, %q", resp.StatusCode, plan)
	}
	if code := getJSON(t, ts.URL+"/plan?q=%2Fbib%5B", nil); code != 400 {
		t.Errorf("plan with bad query: status %d, want 400", code)
	}
	if code := getJSON(t, ts.URL+"/plan", nil); code != 400 {
		t.Errorf("plan without q: status %d, want 400", code)
	}

	if code := getJSON(t, ts.URL+"/healthz", nil); code != 200 {
		t.Errorf("healthz: status %d", code)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"nokserve_request_seconds_bucket",
		"nokserve_cache_hits_total",
		"nokserve_rejected_total",
		"nok_queries_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestCacheInvalidation checks the acceptance property "stale results must
// not be served": a mutation bumps the store generation, so the cached
// pre-mutation entry becomes unreachable.
func TestCacheInvalidation(t *testing.T) {
	srv, ts := newTestServer(t, samples.Bibliography, Config{})

	const q = "/query?q=%2Fbib%2Fbook"
	var qr queryResponse
	getJSON(t, ts.URL+q, &qr)
	if qr.Count != 4 || qr.Cached {
		t.Fatalf("first query: %+v", qr)
	}
	getJSON(t, ts.URL+q, &qr)
	if !qr.Cached {
		t.Fatalf("repeat not cached: %+v", qr)
	}

	frag := `<book year="2004"><title>Succinct XML</title><price>10</price></book>`
	if err := srv.store.Insert("0", strings.NewReader(frag)); err != nil {
		t.Fatal(err)
	}

	getJSON(t, ts.URL+q, &qr)
	if qr.Cached {
		t.Fatal("served cached result across a mutation")
	}
	if qr.Count != 5 {
		t.Fatalf("post-insert count = %d, want 5", qr.Count)
	}
	getJSON(t, ts.URL+q, &qr)
	if !qr.Cached || qr.Count != 5 {
		t.Fatalf("post-insert repeat: %+v", qr)
	}

	if err := srv.store.Delete("0.5"); err != nil {
		t.Fatal(err)
	}
	getJSON(t, ts.URL+q, &qr)
	if qr.Cached || qr.Count != 4 {
		t.Fatalf("post-delete: %+v", qr)
	}
}

// TestConcurrentLoad is the acceptance load test: ≥64 concurrent clients
// issuing a mix of cached and uncached queries while inserts land
// mid-test. Run under -race via `make check`.
func TestConcurrentLoad(t *testing.T) {
	srv, ts := newTestServer(t, buildXML(400), Config{Workers: 8, QueueDepth: 1024})

	const clients = 64
	const perClient = 8
	exprs := []string{
		"%2F%2Fbook%2Ftitle",          // shared → cached after first miss
		"%2F%2Fbook%5Bprice%3C50%5D",  // shared
		"%2Flib%2Fbook%2Fprice",       // shared
		"%2F%2Fbook%5Bprice%3E150%5D", // shared
	}

	var wg sync.WaitGroup
	var failures atomic.Int64
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				url := ts.URL + "/query?q=" + exprs[(c+i)%len(exprs)]
				if c%7 == 0 {
					// A slice of clients bypasses the cache with unique
					// uncacheable-by-reuse expressions.
					url = ts.URL + fmt.Sprintf("/query?q=%%2F%%2Fbook%%5Bprice%%3C%d%%5D", 50+(c*perClient+i)%100)
				}
				resp, err := http.Get(url)
				if err != nil {
					failures.Add(1)
					select {
					case errCh <- err:
					default:
					}
					continue
				}
				if resp.StatusCode != 200 {
					failures.Add(1)
					select {
					case errCh <- fmt.Errorf("status %d for %s", resp.StatusCode, url):
					default:
					}
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(c)
	}
	// Mid-test writers: inserts and deletes interleave with the reads.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			frag := fmt.Sprintf("<book><title>new%d</title><price>%d</price></book>", i, i)
			if err := srv.store.Insert("0", strings.NewReader(frag)); err != nil {
				t.Errorf("insert %d: %v", i, err)
				return
			}
			if i%2 == 1 {
				if err := srv.store.Delete("0.401"); err != nil {
					t.Errorf("delete %d: %v", i, err)
					return
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()

	if n := failures.Load(); n > 0 {
		t.Fatalf("%d/%d requests failed; first: %v", n, clients*perClient, <-errCh)
	}
	if srv.cache.hits.Load() == 0 {
		t.Error("no cache hits under shared workload")
	}
	if srv.cache.misses.Load() == 0 {
		t.Error("no cache misses under mutating workload")
	}
	if got := srv.Inflight(); got != 0 {
		t.Errorf("inflight after drain: %d", got)
	}
}

// TestAdmissionControl fills the single worker slot and the queue, then
// verifies the overflow request is rejected with 429 immediately.
func TestAdmissionControl(t *testing.T) {
	srv, ts := newTestServer(t, samples.Bibliography, Config{Workers: 1, QueueDepth: 1, CacheEntries: -1})

	// Occupy the worker slot directly, then park one waiter in the queue —
	// deterministic occupancy, independent of query duration.
	if err := srv.pool.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	waiterCtx, cancelWaiter := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() { waiterDone <- srv.pool.acquire(waiterCtx) }()
	deadline := time.Now().Add(5 * time.Second)
	for srv.pool.Queued() < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("waiter never queued: inflight=%d queued=%d", srv.pool.Inflight(), srv.pool.Queued())
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Get(ts.URL + "/query?q=%2Fbib%2Fbook")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("overflow request: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	// Give up the queue seat, then the slot; the pool must be usable again.
	cancelWaiter()
	if err := <-waiterDone; err != context.Canceled {
		t.Fatalf("queued waiter: %v", err)
	}
	srv.pool.release()
	if code := getJSON(t, ts.URL+"/query?q=%2Fbib%2Fbook", nil); code != 200 {
		t.Errorf("post-release query: status %d", code)
	}
}

// TestCancellationReleasesWorker is the acceptance cancellation property: a
// cancelled request returns promptly — well before its query would complete
// — and frees its worker slot for the next request.
func TestCancellationReleasesWorker(t *testing.T) {
	srv, ts := newTestServer(t, buildXML(10000), Config{Workers: 1, CacheEntries: -1})

	// Baseline: how long the slow query takes to run to completion.
	t0 := time.Now()
	resp, err := http.Get(ts.URL + slowQuery)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	baseline := time.Since(t0)
	if baseline < 5*time.Millisecond {
		t.Skipf("baseline query too fast to observe cancellation (%v)", baseline)
	}

	// Cancel the same query early; the server must notice at a matching
	// checkpoint and release the slot long before `baseline` elapses.
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+slowQuery, nil)
	go func() {
		time.Sleep(baseline / 20)
		cancel()
	}()
	t0 = time.Now()
	if _, err := http.DefaultClient.Do(req); err == nil {
		t.Fatal("cancelled request did not error")
	}

	// The worker slot must come back promptly: poll until inflight drops.
	freed := false
	for deadline := time.Now().Add(baseline / 2); time.Now().Before(deadline); {
		if srv.Inflight() == 0 {
			freed = true
			break
		}
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(t0)
	if !freed {
		t.Fatalf("worker slot not released within %v of cancellation (baseline %v)", baseline/2, baseline)
	}
	if elapsed >= baseline {
		t.Errorf("cancellation took %v, not before the full query (%v)", elapsed, baseline)
	}

	// And the slot is usable: a fresh cheap query succeeds.
	if code := getJSON(t, ts.URL+"/query?q=%2Flib%2Fbook%2Ftitle&limit=1", nil); code != 200 {
		t.Errorf("post-cancel query: status %d", code)
	}
}

// TestQueryDeadline: a per-request timeout expiring mid-match surfaces as
// HTTP 504, not a hung handler.
func TestQueryDeadline(t *testing.T) {
	_, ts := newTestServer(t, buildXML(10000), Config{Workers: 2, CacheEntries: -1})

	var er errorResponse
	if code := getJSON(t, ts.URL+slowQuery+"&timeout=1ms", &er); code != http.StatusGatewayTimeout {
		t.Fatalf("deadline query: status %d (%+v), want 504", code, er)
	}
	if !strings.Contains(er.Error, "deadline") {
		t.Errorf("deadline error: %q", er.Error)
	}
}

// TestShutdownDrain: after Shutdown the server refuses work and the store
// is closed exactly once.
func TestShutdownDrain(t *testing.T) {
	st, err := nok.Create(filepath.Join(t.TempDir(), "db"), strings.NewReader(samples.Bibliography), nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(st, Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if code := getJSON(t, ts.URL+"/query?q=%2Fbib%2Fbook", nil); code != 200 {
		t.Fatalf("pre-shutdown query: %d", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
	for _, path := range []string{"/healthz", "/query?q=%2Fbib", "/stats"} {
		if code := getJSON(t, ts.URL+path, nil); code != http.StatusServiceUnavailable {
			t.Errorf("GET %s after shutdown: status %d, want 503", path, code)
		}
	}
}

func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	k := func(i int) cacheKey { return cacheKey{expr: fmt.Sprintf("q%d", i)} }
	c.put(k(1), []nok.Result{{ID: "1"}}, nil)
	c.put(k(2), []nok.Result{{ID: "2"}}, nil)
	if _, _, ok := c.get(k(1)); !ok {
		t.Fatal("k1 evicted too early")
	}
	c.put(k(3), nil, nil) // evicts k2 (k1 was just touched)
	if _, _, ok := c.get(k(2)); ok {
		t.Error("k2 should have been evicted")
	}
	if _, _, ok := c.get(k(1)); !ok {
		t.Error("k1 should survive")
	}
	if c.len() != 2 {
		t.Errorf("len = %d", c.len())
	}
	// Fingerprint mismatch is a miss even for the same expression.
	if _, _, ok := c.get(cacheKey{expr: "q1", fp: "0:1"}); ok {
		t.Error("stale-fingerprint entry served")
	}
	// Disabled cache never stores.
	d := newResultCache(-1)
	d.put(k(1), nil, nil)
	if _, _, ok := d.get(k(1)); ok {
		t.Error("disabled cache returned a hit")
	}
}
