package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nok/internal/shard"
)

// shardedCollection puts all articles on one shard and all books on
// another (path routing), so queries over one tag are pruned from the
// other's shard.
func shardedCollection(t *testing.T) (*Server, *httptest.Server, *shard.Store) {
	t.Helper()
	var b strings.Builder
	b.WriteString("<bib>")
	for i := 0; i < 30; i++ {
		if i%2 == 0 {
			fmt.Fprintf(&b, "<book><title>b%d</title><price>%d</price></book>", i, i%90)
		} else {
			fmt.Fprintf(&b, "<article><title>a%d</title><pages>%d</pages></article>", i, i%40)
		}
	}
	b.WriteString("</bib>")
	st, err := shard.Create(filepath.Join(t.TempDir(), "coll"), strings.NewReader(b.String()),
		&shard.Options{Shards: 4, Strategy: shard.StrategyPath})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewBackend(st, Config{})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv, ts, st
}

// TestShardedCacheInvalidationPerShard is the per-shard invalidation
// property at the HTTP layer: a mutation routed to a shard a cached query
// is pruned from must NOT evict that query's entry, while a mutation on a
// participating shard must.
func TestShardedCacheInvalidationPerShard(t *testing.T) {
	_, ts, st := shardedCollection(t)
	q := ts.URL + "/query?q=" + url.QueryEscape(`//article/pages`)

	var r1 queryResponse
	if code := getJSON(t, q, &r1); code != 200 || r1.Cached {
		t.Fatalf("first query: code %d cached %v", code, r1.Cached)
	}
	var r2 queryResponse
	if code := getJSON(t, q, &r2); code != 200 || !r2.Cached {
		t.Fatalf("repeat query not served from cache (code %d)", code)
	}

	// Mutate a book document — path routing sends books to a shard the
	// article query is pruned from.
	resp, err := http.Post(ts.URL+"/insert?parent=0", "application/xml",
		strings.NewReader(`<book><title>new</title><price>7</price></book>`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("insert: status %d", resp.StatusCode)
	}
	var r3 queryResponse
	if code := getJSON(t, q, &r3); code != 200 || !r3.Cached {
		t.Fatalf("write to non-participating shard evicted the cache (code %d cached %v)", code, r3.Cached)
	}

	// Mutate the article shard: now the entry must be unreachable and the
	// fresh evaluation must see the new document.
	resp, err = http.Post(ts.URL+"/insert?parent=0", "application/xml",
		strings.NewReader(`<article><title>fresh</title><pages>1</pages></article>`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("insert: status %d", resp.StatusCode)
	}
	var r4 queryResponse
	if code := getJSON(t, q, &r4); code != 200 || r4.Cached {
		t.Fatalf("write to participating shard did not evict the cache (code %d cached %v)", code, r4.Cached)
	}
	if r4.Count != r1.Count+1 {
		t.Fatalf("post-insert count %d, want %d", r4.Count, r1.Count+1)
	}

	// The sharded backend serves the rest of the surface too.
	var stats statsResponse
	if code := getJSON(t, ts.URL+"/stats", &stats); code != 200 {
		t.Fatalf("/stats: %d", code)
	}
	if stats.Nodes != st.NodeCount() {
		t.Fatalf("/stats nodes %d != NodeCount %d", stats.Nodes, st.NodeCount())
	}
	var health healthResponse
	if code := getJSON(t, ts.URL+"/healthz?deep=1", &health); code != 200 {
		t.Fatalf("/healthz?deep=1: %d (%+v)", code, health)
	}
}

// TestShardedExplainShowsFanout checks GET /explain?analyze=1 against a
// sharded backend renders the per-shard fan-out including pruning.
func TestShardedExplainShowsFanout(t *testing.T) {
	_, ts, _ := shardedCollection(t)
	resp, err := http.Get(ts.URL + "/explain?analyze=1&q=" + url.QueryEscape(`//article/pages`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, "shard") {
		t.Fatalf("analyze output has no shard fan-out:\n%s", body)
	}
	if !strings.Contains(body, "pruned") {
		t.Fatalf("analyze output does not show pruning:\n%s", body)
	}

	// Non-shardable queries surface the refusal as a client error.
	resp2, err := http.Get(ts.URL + "/query?q=" + url.QueryEscape(`//book/following::article`))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusInternalServerError && resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("non-shardable query: status %d", resp2.StatusCode)
	}
}
