package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nok"
)

// BenchmarkServerQuery drives the HTTP service with parallel clients over a
// skewed workload (a few hot expressions plus a long tail of unique ones)
// and reports throughput (qps) and the result-cache hit ratio alongside
// ns/op.
//
//	go test -bench ServerQuery -benchtime 2s ./internal/server
func BenchmarkServerQuery(b *testing.B) {
	st, err := nok.Create(filepath.Join(b.TempDir(), "db"), strings.NewReader(buildXML(2000)), nil)
	if err != nil {
		b.Fatal(err)
	}
	srv := New(st, Config{Workers: 8, QueueDepth: 4096})
	ts := httptest.NewServer(srv)
	defer func() {
		ts.Close()
		_ = st.Close()
	}()

	hot := []string{
		"%2F%2Fbook%2Ftitle",
		"%2F%2Fbook%5Bprice%3C50%5D",
		"%2Flib%2Fbook%2Fprice",
	}

	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			// 90% hot (cacheable), 10% unique (forced miss).
			url := ts.URL + "/query?q=" + hot[i%len(hot)] + "&limit=1"
			if i%10 == 0 {
				url = ts.URL + fmt.Sprintf("/query?q=%%2F%%2Fbook%%5Bprice%%3C%d%%5D&limit=1", i%197)
			}
			resp, err := http.Get(url)
			if err != nil {
				b.Fatal(err)
			}
			if resp.StatusCode != 200 {
				b.Fatalf("status %d", resp.StatusCode)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	})
	elapsed := time.Since(start)
	b.ReportMetric(float64(b.N)/elapsed.Seconds(), "qps")
	b.ReportMetric(srv.CacheHitRatio(), "cache-hit-ratio")
}
