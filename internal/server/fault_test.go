package server

// fault_test.go — the robustness surface added for remote shards: panic
// recovery middleware, the binary /scatter endpoint, the 503 mapping for
// typed shard unavailability, and the ?partial= opt-in plumbing.

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"nok"
	"nok/internal/remote"
)

// faultBackend is a scriptable Backend for failure-path tests.
type faultBackend struct {
	queryErr     error
	panicMsg     string
	stats        *nok.QueryStats
	results      []nok.Result
	queries      atomic.Int64
	sawPartial   atomic.Bool
	sawPartialOK atomic.Bool
}

func (f *faultBackend) QueryWithOptionsContext(ctx context.Context, expr string, opts *nok.QueryOptions) ([]nok.Result, *nok.QueryStats, error) {
	f.queries.Add(1)
	if opts != nil {
		f.sawPartialOK.Store(true)
		f.sawPartial.Store(opts.AllowPartial)
	}
	if f.panicMsg != "" {
		panic(f.panicMsg)
	}
	if f.queryErr != nil {
		return nil, nil, f.queryErr
	}
	st := f.stats
	if st == nil {
		st = &nok.QueryStats{}
	}
	return f.results, st, nil
}

func (f *faultBackend) QueryAnalyze(expr string, opts *nok.QueryOptions) ([]nok.Result, *nok.QueryStats, string, error) {
	rs, st, err := f.QueryWithOptionsContext(context.Background(), expr, opts)
	return rs, st, "", err
}
func (f *faultBackend) Plan(expr string) (string, error)           { return "", nil }
func (f *faultBackend) Value(id string) (string, bool, error)      { return "", false, nil }
func (f *faultBackend) Insert(parent string, frag io.Reader) error { return nil }
func (f *faultBackend) Delete(id string) error                     { return nil }
func (f *faultBackend) Stats() nok.Stats                           { return nok.Stats{} }
func (f *faultBackend) NodeCount() uint64                          { return 1 }
func (f *faultBackend) Generation() uint64                         { return 1 }
func (f *faultBackend) Epoch() uint64                              { return 1 }
func (f *faultBackend) Synopsis(n int) nok.SynopsisInfo            { return nok.SynopsisInfo{} }
func (f *faultBackend) Verify(deep bool) *nok.VerifyResult         { return &nok.VerifyResult{} }
func (f *faultBackend) Close() error                               { return nil }

func newFaultServer(t *testing.T, f *faultBackend, cfg Config) string {
	t.Helper()
	srv := NewBackend(f, cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return ts.URL
}

// TestPanicRecovery: a handler panic becomes a 500 with a JSON error,
// bumps nok_panics_total, and leaves the server serving.
func TestPanicRecovery(t *testing.T) {
	f := &faultBackend{panicMsg: "index out of range [7]"}
	url := newFaultServer(t, f, Config{CacheEntries: -1})

	before := mPanics.Value()
	var er errorResponse
	if code := getJSON(t, url+"/query?q=%2F%2Fa", &er); code != 500 {
		t.Fatalf("panicking query: status %d, want 500", code)
	}
	if er.Error == "" {
		t.Error("panic response has no error body")
	}
	if got := mPanics.Value(); got != before+1 {
		t.Errorf("nok_panics_total %d, want %d", got, before+1)
	}

	// The server survives: the next request is handled normally.
	f.panicMsg = ""
	var qr queryResponse
	if code := getJSON(t, url+"/query?q=%2F%2Fa", &qr); code != 200 {
		t.Fatalf("request after panic: status %d, want 200", code)
	}
}

// TestShardUnavailableMaps503: the typed unavailability sentinel surfaces
// as 503 + Retry-After, not as a generic 500 — load balancers and
// retrying clients key off exactly this distinction.
func TestShardUnavailableMaps503(t *testing.T) {
	f := &faultBackend{queryErr: &wrapUnavailable{}}
	url := newFaultServer(t, f, Config{CacheEntries: -1})

	before := mShardUnavail.Value()
	resp, err := http.Get(url + "/query?q=%2F%2Fa")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	if got := mShardUnavail.Value(); got != before+1 {
		t.Errorf("unavailable counter %d, want %d", got, before+1)
	}
}

// wrapUnavailable stands in for shard.UnavailableError: it wraps a
// deadline (as a timed-out remote attempt does) yet must still map to
// 503, not 504 — unavailability is checked first on purpose.
type wrapUnavailable struct{}

func (e *wrapUnavailable) Error() string { return "shards [2] unavailable: attempt timed out" }
func (e *wrapUnavailable) Is(target error) bool {
	return target == nok.ErrShardUnavailable
}
func (e *wrapUnavailable) Unwrap() error { return context.DeadlineExceeded }

// TestPartialParam: the per-request ?partial= override and the server
// default both reach the backend's QueryOptions, and a degraded answer
// is marked in the JSON response and never cached.
func TestPartialParam(t *testing.T) {
	f := &faultBackend{stats: &nok.QueryStats{Degraded: true, MissingShards: []int{1, 3}}}
	url := newFaultServer(t, f, Config{AllowPartial: true})

	var qr queryResponse
	if code := getJSON(t, url+"/query?q=%2F%2Fa", &qr); code != 200 {
		t.Fatalf("status %d", code)
	}
	if !f.sawPartial.Load() {
		t.Error("-allow-partial default did not reach QueryOptions")
	}
	if !qr.Degraded || !reflect.DeepEqual(qr.MissingShards, []int{1, 3}) {
		t.Errorf("degraded response: %+v", qr)
	}

	// ?partial=0 overrides the permissive default.
	if code := getJSON(t, url+"/query?q=%2F%2Fa&partial=0", &qr); code != 200 {
		t.Fatalf("status %d", code)
	}
	if f.sawPartial.Load() {
		t.Error("?partial=0 did not override the server default")
	}

	// Degraded answers bypass the cache: the same query hits the backend
	// every time.
	n := f.queries.Load()
	if code := getJSON(t, url+"/query?q=%2F%2Fa", &qr); code != 200 || qr.Cached {
		t.Fatalf("repeat degraded query: status %d cached=%v", code, qr.Cached)
	}
	if f.queries.Load() != n+1 {
		t.Error("degraded answer was served from cache")
	}
}

// TestScatterEndpoint: the binary endpoint streams the same matches
// /query returns as JSON, plus a pruned frame when statistics prove the
// shard empty.
func TestScatterEndpoint(t *testing.T) {
	_, ts := newTestServer(t, buildXML(50), Config{})

	var qr queryResponse
	if code := getJSON(t, ts.URL+"/query?q=%2F%2Fbook%2Ftitle", &qr); code != 200 {
		t.Fatalf("query status %d", code)
	}

	resp, err := http.Get(ts.URL + "/scatter?q=%2F%2Fbook%2Ftitle")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("scatter status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-nok-scatter" {
		t.Errorf("content type %q", ct)
	}
	res, err := remote.ReadScatter(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pruned || len(res.Results) != qr.Count || res.Stats == nil || res.Epoch == 0 {
		t.Fatalf("scatter result: pruned=%v results=%d (want %d) stats=%v epoch=%d",
			res.Pruned, len(res.Results), qr.Count, res.Stats != nil, res.Epoch)
	}
	for i, r := range res.Results {
		if r.ID != qr.Results[i].ID || r.Value != qr.Results[i].Value {
			t.Fatalf("scatter result %d: %+v vs query %+v", i, r, qr.Results[i])
		}
	}

	// A tag the synopsis proves absent: one pruned frame, no evaluation.
	resp2, err := http.Get(ts.URL + "/scatter?q=%2F%2Fnosuchtag")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	pr, err := remote.ReadScatter(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Pruned || pr.Reason == "" || len(pr.Results) != 0 {
		t.Fatalf("pruned scatter: %+v", pr)
	}

	// Bad requests stay JSON errors, not binary streams.
	var er errorResponse
	if code := getJSON(t, ts.URL+"/scatter?q=%2F%2Fbook%5B", &er); code != 400 || er.Error == "" {
		t.Fatalf("malformed scatter query: %d %+v", code, er)
	}
	if code := getJSON(t, ts.URL+"/scatter", &er); code != 400 {
		t.Fatalf("missing q: %d", code)
	}
}
