package server

// scatter.go — the binary shard-to-coordinator endpoint.
//
// GET /scatter?q=EXPR[&strategy=S][&planner=0][&pageskip=0][&parallel=0]
// evaluates the pattern against this process's store and streams the
// matches back in the remote package's frame format: dewey-ordered
// results ready for the coordinator's k-way merge, the evaluation stats,
// and an explicit end frame so a severed connection can never pass for a
// short result set. When the store's statistics prove the pattern cannot
// match here, the response is a single pruned frame — the coordinator's
// shard pruning, evaluated server-side where the synopsis lives.

import (
	"context"
	"net/http"
	"time"

	"nok"
	"nok/internal/pattern"
	"nok/internal/remote"
)

// scatterContentType names the binary scatter stream.
const scatterContentType = "application/x-nok-scatter"

func (s *Server) handleScatter(w http.ResponseWriter, r *http.Request) {
	if !s.beginRequest() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	defer s.wg.Done()

	expr := r.FormValue("q")
	if expr == "" {
		writeError(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	if _, err := pattern.Parse(expr); err != nil {
		writeError(w, http.StatusBadRequest, "bad query: %v", err)
		return
	}
	strat, err := parseStrategy(r.FormValue("strategy"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opts := &nok.QueryOptions{
		Strategy:        strat,
		DisablePageSkip: r.FormValue("pageskip") == "0",
		DisablePlanner:  r.FormValue("planner") == "0",
		DisableParallel: r.FormValue("parallel") == "0",
	}
	timeout := s.cfg.QueryTimeout
	if v := r.FormValue("timeout"); v != "" {
		if d, perr := time.ParseDuration(v); perr == nil && d > 0 && d < timeout {
			timeout = d
		}
	}

	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	if err := s.pool.acquire(ctx); err != nil {
		s.writeQueryError(w, err)
		return
	}
	defer s.pool.release()

	// Server-side pruning: one round trip answers both "can this shard
	// match at all" and, if so, the matches themselves.
	if pe, ok := s.store.(ProvableEmptier); ok {
		if empty, reason, perr := pe.ProvablyEmpty(expr); perr == nil && empty {
			w.Header().Set("Content-Type", scatterContentType)
			_ = remote.WriteScatter(w, &remote.ScatterResult{Pruned: true, Reason: reason, Epoch: s.store.Epoch()})
			return
		}
	}

	results, stats, err := s.store.QueryWithOptionsContext(ctx, expr, opts)
	if err != nil {
		s.writeQueryError(w, err)
		return
	}
	w.Header().Set("Content-Type", scatterContentType)
	_ = remote.WriteScatter(w, &remote.ScatterResult{Results: results, Stats: stats, Epoch: s.store.Epoch()})
}
