package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"nok/internal/samples"
	"nok/internal/telemetry"
)

// TestQueryIDHeader checks every /query response — evaluated or served from
// cache — carries a fresh X-Nok-Query-Id, and that the IDs differ (a cache
// hit gets its own telemetry record).
func TestQueryIDHeader(t *testing.T) {
	_, ts := newTestServer(t, samples.Bibliography, Config{})

	get := func() (uint64, bool) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/query?q=%2Fbib%2Fbook%2Ftitle")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var qr queryResponse
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatal(err)
		}
		h := resp.Header.Get("X-Nok-Query-Id")
		if h == "" {
			t.Fatal("missing X-Nok-Query-Id header")
		}
		id, err := strconv.ParseUint(h, 10, 64)
		if err != nil || id == 0 {
			t.Fatalf("bad X-Nok-Query-Id %q", h)
		}
		return id, qr.Cached
	}

	id1, cached1 := get()
	id2, cached2 := get()
	if cached1 || !cached2 {
		t.Fatalf("expected miss then hit, got cached=%v,%v", cached1, cached2)
	}
	if id2 == id1 {
		t.Error("cache hit reused the original query ID")
	}

	// The cache hit's own record is in the flight recorder, marked CacheHit.
	var hit *telemetry.Record
	for _, r := range telemetry.Default.Recent(0) {
		if r.ID == id2 {
			hit = r
			break
		}
	}
	if hit == nil {
		t.Fatalf("cache-hit record %d not in flight recorder", id2)
	}
	if !hit.CacheHit || hit.Results != 4 {
		t.Errorf("cache-hit record = cachehit:%v results:%d", hit.CacheHit, hit.Results)
	}
}

// TestDebugQueries checks /debug/queries returns recent and slowest records
// with plans after some traffic, and honors ?n=.
func TestDebugQueries(t *testing.T) {
	_, ts := newTestServer(t, samples.Bibliography, Config{CacheEntries: -1})

	for _, q := range []string{
		"/query?q=%2Fbib%2Fbook%2Ftitle",
		"/query?q=%2F%2Fbook%5Beditor%5D",
		"/query?q=%2F%2Fbook",
	} {
		if code := getJSON(t, ts.URL+q, nil); code != 200 {
			t.Fatalf("query %s: status %d", q, code)
		}
	}

	var dbg struct {
		SlowThresholdMS float64           `json:"slow_threshold_ms"`
		Recent          []json.RawMessage `json:"recent"`
		Slowest         []json.RawMessage `json:"slowest"`
	}
	if code := getJSON(t, ts.URL+"/debug/queries", &dbg); code != 200 {
		t.Fatalf("/debug/queries status %d", code)
	}
	if len(dbg.Recent) < 3 || len(dbg.Slowest) < 3 {
		t.Fatalf("recent=%d slowest=%d, want >= 3 each", len(dbg.Recent), len(dbg.Slowest))
	}
	if dbg.SlowThresholdMS <= 0 {
		t.Errorf("slow_threshold_ms = %g", dbg.SlowThresholdMS)
	}

	// Records carry the full diagnostic payload: expression, strategies,
	// estimates, and (for planned queries on a fresh synopsis) a plan.
	sawPlan := false
	for _, raw := range dbg.Recent {
		var rec map[string]any
		if err := json.Unmarshal(raw, &rec); err != nil {
			t.Fatalf("record not JSON: %v", err)
		}
		for _, k := range []string{"query_id", "expr", "duration_ms", "epoch"} {
			if _, ok := rec[k]; !ok {
				t.Errorf("record missing %s: %s", k, raw)
			}
		}
		if p, _ := rec["plan"].(string); p != "" {
			sawPlan = true
		}
	}
	if !sawPlan {
		t.Error("no record carried a rendered plan")
	}

	if code := getJSON(t, ts.URL+"/debug/queries?n=1", &dbg); code != 200 {
		t.Fatalf("/debug/queries?n=1 status %d", code)
	}
	if len(dbg.Recent) != 1 {
		t.Errorf("?n=1 returned %d recent records", len(dbg.Recent))
	}
	if code := getJSON(t, ts.URL+"/debug/queries?n=bogus", nil); code != 400 {
		t.Errorf("?n=bogus status %d, want 400", code)
	}
}

// TestPprofOptIn checks /debug/pprof is a 404 by default and serves
// profiles when enabled.
func TestPprofOptIn(t *testing.T) {
	_, off := newTestServer(t, samples.Bibliography, Config{})
	if code := getJSON(t, off.URL+"/debug/pprof/", nil); code != 404 {
		t.Errorf("pprof without opt-in: status %d, want 404", code)
	}

	_, on := newTestServer(t, samples.Bibliography, Config{EnablePprof: true})
	resp, err := http.Get(on.URL + "/debug/pprof/goroutine?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 || len(body) == 0 {
		t.Errorf("goroutine profile: status %d, %d bytes", resp.StatusCode, len(body))
	}
}

// TestMetricsExemplars checks the OpenMetrics variant is opt-in and carries
// the EOF terminator, while the default exposition stays plain 0.0.4.
func TestMetricsExemplars(t *testing.T) {
	_, ts := newTestServer(t, samples.Bibliography, Config{})
	if code := getJSON(t, ts.URL+"/query?q=%2Fbib%2Fbook", nil); code != 200 {
		t.Fatal("query failed")
	}

	get := func(url, accept string) (string, string) {
		t.Helper()
		req, _ := http.NewRequest("GET", url, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b), resp.Header.Get("Content-Type")
	}

	plain, ct := get(ts.URL+"/metrics", "")
	if !strings.Contains(ct, "version=0.0.4") || strings.Contains(plain, "# EOF") {
		t.Errorf("plain exposition: ct=%q eof=%v", ct, strings.Contains(plain, "# EOF"))
	}

	om, ct := get(ts.URL+"/metrics?exemplars=1", "")
	if !strings.Contains(ct, "openmetrics") || !strings.Contains(om, "# EOF") {
		t.Errorf("openmetrics exposition: ct=%q", ct)
	}
	if !strings.Contains(om, "nok_query_seconds_bucket") {
		t.Error("openmetrics exposition missing latency histogram")
	}

	if _, ct := get(ts.URL+"/metrics", "application/openmetrics-text; version=1.0.0"); !strings.Contains(ct, "openmetrics") {
		t.Errorf("Accept negotiation failed: ct=%q", ct)
	}
}

// TestHealthzCarriesVersion checks /healthz reports the build identity and
// store epoch.
func TestHealthzCarriesVersion(t *testing.T) {
	_, ts := newTestServer(t, samples.Bibliography, Config{})
	var h healthResponse
	if code := getJSON(t, ts.URL+"/healthz", &h); code != 200 {
		t.Fatalf("healthz status %d", code)
	}
	if h.Status != "ok" || !strings.Contains(h.Version, "nok ") || h.Epoch == 0 {
		t.Errorf("healthz = %+v", h)
	}
}
