package server

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrOverloaded is returned by pool.acquire when the wait queue is full —
// the admission-control signal that handlers translate to HTTP 429.
var ErrOverloaded = errors.New("server: overloaded, queue full")

// pool bounds query concurrency with a counting semaphore plus a bounded
// wait queue. A request first tries to grab a worker slot without blocking;
// if none is free it joins the queue, and if the queue is already at
// capacity it is rejected immediately. Rejecting at admission rather than
// letting waiters pile up keeps tail latency bounded under overload (the
// client can back off and retry) and caps the server's memory per load
// spike at queue×request, not clients×request.
type pool struct {
	slots    chan struct{} // capacity = worker count
	maxQueue int
	queued   atomic.Int64
	inflight atomic.Int64
}

func newPool(workers, maxQueue int) *pool {
	return &pool{slots: make(chan struct{}, workers), maxQueue: maxQueue}
}

// acquire obtains a worker slot, waiting in the bounded queue if necessary.
// It returns ErrOverloaded when the queue is full, or ctx.Err() when the
// caller gives up while queued. On success the caller must release().
func (p *pool) acquire(ctx context.Context) error {
	select {
	case p.slots <- struct{}{}:
		p.inflight.Add(1)
		mInflight.Set(p.inflight.Load())
		return nil
	default:
	}
	if q := p.queued.Add(1); q > int64(p.maxQueue) {
		p.queued.Add(-1)
		mRejected.Inc()
		return ErrOverloaded
	}
	mQueued.Set(p.queued.Load())
	defer func() {
		p.queued.Add(-1)
		mQueued.Set(p.queued.Load())
	}()
	select {
	case p.slots <- struct{}{}:
		p.inflight.Add(1)
		mInflight.Set(p.inflight.Load())
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns a worker slot to the pool.
func (p *pool) release() {
	p.inflight.Add(-1)
	mInflight.Set(p.inflight.Load())
	<-p.slots
}

// Inflight reports how many queries hold worker slots right now.
func (p *pool) Inflight() int64 { return p.inflight.Load() }

// Queued reports how many requests are waiting for a slot right now.
func (p *pool) Queued() int64 { return p.queued.Load() }
