// Package server is the concurrent query service over an open nok.Store:
// HTTP endpoints for path queries, plan inspection, value lookup and store
// stats, backed by a bounded worker pool with admission control, an LRU
// result cache invalidated by store mutations, per-request deadlines
// threaded into the matching loops as context cancellation, and full
// metrics exposure through the internal/obs registry.
//
// The paper's storage scheme is built for repeated path-query evaluation
// over a loaded document; this package is the long-lived process that makes
// the repetition pay: hot pages stay in the buffer pool, repeated
// expressions hit the result cache, and overload is shed at admission
// instead of queueing without bound.
//
// Endpoints:
//
//	GET    /query?q=EXPR[&strategy=S][&limit=N][&timeout=D][&stats=1][&partial=0|1]
//	GET    /scatter?q=EXPR[&strategy=S][&planner=0][&pageskip=0][&parallel=0]   (binary)
//	GET    /explain?q=EXPR[&analyze=1]
//	GET    /plan?q=EXPR
//	GET    /value/{id}
//	POST   /insert?parent=ID   (XML fragment in the body)
//	POST   /ingest[?wait=0]    (stream of XML fragments in the body)
//	DELETE /node/{id}
//	GET    /stats[?tag=NAME][&top=N]
//	GET    /metrics[?exemplars=1]
//	GET    /healthz[?deep=1]
//	GET    /debug/queries[?n=N]
//	GET    /debug/ingest[?n=N]
//	GET    /debug/pprof/...        (only with Config.EnablePprof)
//
// Every /query response carries an X-Nok-Query-Id header naming the
// telemetry record the evaluation produced; /debug/queries returns the
// flight recorder's recent and slowest records (with rendered plans), and
// /metrics?exemplars=1 switches to OpenMetrics exposition whose latency
// buckets carry query-ID exemplars — three ways to get from "p99 is bad"
// to the exact query that caused it.
//
// /healthz?deep=1 runs a full store verification (every page checksum,
// structural invariants, index cross-references). A failed verification —
// or a mutation that dies mid-transaction — flips the server into degraded
// mode: queries keep serving the last committed state, mutations are
// refused with 503, and /healthz reports the reason until the operator
// restarts the process (recovery runs at open).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"time"

	"nok"
	"nok/internal/buildinfo"
	"nok/internal/ingest"
	"nok/internal/obs"
	"nok/internal/pattern"
	"nok/internal/telemetry"
)

// Server-wide metrics, registered in the process registry so /metrics
// exposes them alongside the storage-layer counters.
var (
	mRequests     = obs.Default.Counter("nokserve_requests_total", "HTTP requests served")
	mReqSeconds   = obs.Default.Histogram("nokserve_request_seconds", "end-to-end HTTP request latency in seconds", obs.LatencyBuckets)
	mCacheHits    = obs.Default.Counter("nokserve_cache_hits_total", "query-result cache hits")
	mCacheMisses  = obs.Default.Counter("nokserve_cache_misses_total", "query-result cache misses")
	mCacheEntries = obs.Default.Gauge("nokserve_cache_entries", "query-result cache resident entries")
	mInflight     = obs.Default.Gauge("nokserve_inflight_queries", "queries currently holding worker slots")
	mQueued       = obs.Default.Gauge("nokserve_queued_requests", "requests waiting for a worker slot")
	mRejected     = obs.Default.Counter("nokserve_rejected_total", "requests rejected by admission control (HTTP 429)")
	mCanceled     = obs.Default.Counter("nokserve_canceled_total", "queries abandoned by client cancellation")
	mTimeouts     = obs.Default.Counter("nokserve_deadline_exceeded_total", "queries that hit their deadline (HTTP 504)")
	mMutations    = obs.Default.Counter("nokserve_mutations_total", "insert/delete requests applied")
	mDegraded     = obs.Default.Gauge("nokserve_degraded", "1 while the server refuses mutations after a failed verification or update")
	mPanics       = obs.Default.Counter("nok_panics_total", "handler panics recovered into 500 responses")
	mQueryTimeout = obs.Default.Counter("nok_query_timeouts_total", "queries that hit their per-query deadline (HTTP 504)")
	mShardUnavail = obs.Default.Counter("nokserve_shard_unavailable_total", "queries refused with 503 because a required shard was unreachable")
	mPartial      = obs.Default.Counter("nokserve_degraded_results_total", "queries answered with degraded partial results")
)

// Config tunes the service; zero values select the documented defaults.
type Config struct {
	// Workers bounds concurrent query evaluations (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds requests waiting for a worker before admission
	// control rejects with 429 (default 2×Workers).
	QueueDepth int
	// CacheEntries sizes the LRU result cache; negative disables it
	// (default 1024).
	CacheEntries int
	// QueryTimeout is the per-request evaluation deadline ceiling; a
	// request may ask for less via ?timeout= but never more
	// (default 10s).
	QueryTimeout time.Duration
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profile endpoints expose timing side-channels and can be
	// heavy, so they are opt-in (nokserve -debug).
	EnablePprof bool
	// AllowPartial makes degraded partial results the default for /query
	// against a sharded backend with unreachable shards (still
	// overridable per request with ?partial=0/1). Off by default:
	// completeness beats availability unless the operator says otherwise.
	AllowPartial bool
	// Ingest tunes the POST /ingest group-commit pipeline (batch size and
	// interval, in-flight budget). Zero values take the ingest package
	// defaults.
	Ingest ingest.Options
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 1024
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 10 * time.Second
	}
	return c
}

// Backend is the store surface the server needs. Both nok.Store (one
// document) and shard.Store (a scatter-gather collection) implement it, so
// one serving layer fronts either; nokserve picks by probing for a SHARDS
// manifest.
type Backend interface {
	QueryWithOptionsContext(ctx context.Context, expr string, opts *nok.QueryOptions) ([]nok.Result, *nok.QueryStats, error)
	QueryAnalyze(expr string, opts *nok.QueryOptions) ([]nok.Result, *nok.QueryStats, string, error)
	Plan(expr string) (string, error)
	Value(id string) (string, bool, error)
	Insert(parentID string, fragment io.Reader) error
	Delete(id string) error
	Stats() nok.Stats
	NodeCount() uint64
	Generation() uint64
	Epoch() uint64
	Synopsis(n int) nok.SynopsisInfo
	Verify(deep bool) *nok.VerifyResult
	Close() error
}

// CacheFingerprinter is an optional Backend refinement: instead of keying
// cached results on the whole-store generation, the backend names exactly
// the state a query's answer depends on. The sharded store returns the
// participating (shard, generation) pairs, so a write to shard 3 does not
// evict shard 0's cached results. An empty fingerprint marks the query
// uncachable.
type CacheFingerprinter interface {
	CacheFingerprint(expr string) string
}

// MVCCReporter is an optional Backend refinement: backends built on the
// multi-version store expose the snapshot/page-version accounting that
// /stats reports (the sharded store aggregates it across shards).
type MVCCReporter interface {
	MVCC() nok.MVCCInfo
}

// TagCounter is an optional Backend refinement answering /stats?tag=NAME
// — remote coordinators use it to read one tag's cardinality without
// shipping the whole synopsis.
type TagCounter interface {
	TagCount(name string) uint64
}

// HealthReporter is an optional Backend refinement: sharded backends
// report per-shard availability (address, prober verdict, breaker state,
// last epoch) that /stats exposes for operators and the chaos tests.
type HealthReporter interface {
	Health() []nok.ShardHealth
}

// ProvableEmptier is an optional Backend refinement the /scatter handler
// uses for server-side pruning: a shard that can prove from its
// statistics synopsis that a pattern cannot match returns a pruned frame
// without evaluating, so coordinator-side pruning costs no extra round
// trip.
type ProvableEmptier interface {
	ProvablyEmpty(expr string) (bool, string, error)
}

// Server wraps an open store behind HTTP. It implements http.Handler;
// wire it into an http.Server (see cmd/nokserve) or httptest for tests.
type Server struct {
	store Backend
	cfg   Config
	pool  *pool
	cache *resultCache
	mux   *http.ServeMux

	// ingest is the shared group-commit pipeline behind POST /ingest; nil
	// when the backend cannot batch (the handler then answers 501).
	// Sharing one pipeline across requests is the point: concurrent
	// clients' documents coalesce into the same commits.
	ingest *ingest.Pipeline

	lifeMu   sync.Mutex
	draining bool
	wg       sync.WaitGroup

	// degradedReason, when non-empty, puts the server in read-only mode:
	// a deep verification failed or an update transaction died midway. The
	// committed on-disk state is intact (recovery runs at next open), so
	// queries continue; mutations get 503.
	degMu          sync.Mutex
	degradedReason string
}

// New builds a Server over an open single-document store. The store stays
// owned by the server from here on: Shutdown closes it after draining.
func New(store *nok.Store, cfg Config) *Server {
	return NewBackend(store, cfg)
}

// NewBackend builds a Server over any Backend (see New for single stores;
// pass a shard.Store to serve a sharded collection).
func NewBackend(store Backend, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		store: store,
		cfg:   cfg,
		pool:  newPool(cfg.Workers, cfg.QueueDepth),
		cache: newResultCache(cfg.CacheEntries),
		mux:   http.NewServeMux(),
	}
	s.mux.HandleFunc("GET /query", s.handleQuery)
	s.mux.HandleFunc("GET /scatter", s.handleScatter)
	s.mux.HandleFunc("GET /explain", s.handleExplain)
	s.mux.HandleFunc("GET /plan", s.handlePlan)
	s.mux.HandleFunc("GET /value/{id}", s.handleValue)
	s.mux.HandleFunc("POST /insert", s.handleInsert)
	s.mux.HandleFunc("POST /ingest", s.handleIngest)
	s.mux.HandleFunc("DELETE /node/{id}", s.handleDelete)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /debug/queries", s.handleDebugQueries)
	s.mux.HandleFunc("GET /debug/ingest", s.handleDebugIngest)
	if bi, ok := store.(batchInserter); ok {
		s.ingest = ingest.NewPipeline(ingestTarget{bi: bi, be: store}, cfg.Ingest)
	}
	if cfg.EnablePprof {
		// pprof.Index dispatches /debug/pprof/{goroutine,heap,...} itself;
		// the fixed-path handlers cover the endpoints Index doesn't.
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s
}

// setDegraded flips the server into read-only mode (idempotent; the first
// reason wins).
func (s *Server) setDegraded(reason string) {
	s.degMu.Lock()
	defer s.degMu.Unlock()
	if s.degradedReason == "" {
		s.degradedReason = reason
		mDegraded.Set(1)
	}
}

// Degraded reports whether the server is refusing mutations, and why.
func (s *Server) Degraded() (bool, string) {
	s.degMu.Lock()
	defer s.degMu.Unlock()
	return s.degradedReason != "", s.degradedReason
}

// ServeHTTP dispatches to the endpoint handlers through the
// panic-recovery middleware: an evaluator panic becomes a 500 with a
// logged stack and a nok_panics_total tick instead of killing the whole
// process (one bad query must not take down the shard for everyone).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	begin := time.Now()
	mRequests.Inc()
	rw := &trackingWriter{ResponseWriter: w}
	defer func() {
		if p := recover(); p != nil {
			if p == http.ErrAbortHandler {
				// net/http's own sentinel for deliberately aborted
				// responses; suppressing it would hide client aborts.
				panic(p)
			}
			mPanics.Inc()
			log.Printf("nokserve: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
			if !rw.wrote {
				writeError(rw, http.StatusInternalServerError, "internal error: %v", p)
			}
		}
		mReqSeconds.Observe(time.Since(begin).Seconds())
	}()
	s.mux.ServeHTTP(rw, r)
}

// trackingWriter records whether a handler already started its response,
// so the panic recovery knows whether a 500 can still be written.
type trackingWriter struct {
	http.ResponseWriter
	wrote bool
}

func (w *trackingWriter) WriteHeader(code int) {
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *trackingWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// Shutdown drains the server: new requests are refused (503 on /healthz,
// /query and friends), in-flight queries run to completion (or until ctx
// expires), and the store is closed. After Shutdown the server is done.
func (s *Server) Shutdown(ctx context.Context) error {
	s.lifeMu.Lock()
	already := s.draining
	s.draining = true
	s.lifeMu.Unlock()
	if already {
		return nil
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	// Drain the ingest pipeline first: Close flushes anything buffered, so
	// accepted-but-uncommitted documents land before the store goes away.
	if s.ingest != nil {
		if err := s.ingest.Close(); err != nil {
			s.store.Close()
			return err
		}
	}
	return s.store.Close()
}

// CacheHitRatio reports the lifetime cache hit ratio (for benchmarks and
// examples; production should read the counters from /metrics).
func (s *Server) CacheHitRatio() float64 { return s.cache.ratio() }

// Inflight reports queries currently holding worker slots.
func (s *Server) Inflight() int64 { return s.pool.Inflight() }

// beginRequest registers an in-flight request unless the server is
// draining.
func (s *Server) beginRequest() bool {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	if s.draining {
		return false
	}
	s.wg.Add(1)
	return true
}

// ---- responses --------------------------------------------------------------

type resultJSON struct {
	ID       string `json:"id"`
	Tag      string `json:"tag,omitempty"`
	Value    string `json:"value,omitempty"`
	HasValue bool   `json:"has_value"`
}

type queryResponse struct {
	Query     string       `json:"query"`
	Count     int          `json:"count"`
	Results   []resultJSON `json:"results"`
	Truncated bool         `json:"truncated,omitempty"`
	Cached    bool         `json:"cached"`
	ElapsedMS float64      `json:"elapsed_ms"`
	// Degraded marks a partial answer: the listed shards were
	// unreachable and their rows are missing (the rows present are
	// correct). Only set when the request opted in via ?partial=1 or the
	// server's -allow-partial default.
	Degraded      bool            `json:"degraded,omitempty"`
	MissingShards []int           `json:"missing_shards,omitempty"`
	Stats         *nok.QueryStats `json:"stats,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// ---- handlers ---------------------------------------------------------------

// parseStrategy maps the ?strategy= parameter to a nok.Strategy.
func parseStrategy(s string) (nok.Strategy, error) {
	switch s {
	case "", "auto":
		return nok.StrategyAuto, nil
	case "scan":
		return nok.StrategyScan, nil
	case "tag":
		return nok.StrategyTagIndex, nil
	case "value":
		return nok.StrategyValueIndex, nil
	case "path":
		return nok.StrategyPathIndex, nil
	default:
		return nok.StrategyAuto, fmt.Errorf("unknown strategy %q (want auto, scan, tag, value or path)", s)
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if !s.beginRequest() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	defer s.wg.Done()

	expr := r.FormValue("q")
	if expr == "" {
		writeError(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	// Parse once up front: malformed queries are rejected before they cost
	// a worker slot, and the pattern tree's canonical rendering is the
	// cache key, so textual variants of one query share an entry.
	tree, err := pattern.Parse(expr)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad query: %v", err)
		return
	}
	strat, err := parseStrategy(r.FormValue("strategy"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	limit := -1
	if v := r.FormValue("limit"); v != "" {
		if limit, err = strconv.Atoi(v); err != nil || limit < 0 {
			writeError(w, http.StatusBadRequest, "bad limit %q", v)
			return
		}
	}
	timeout := s.cfg.QueryTimeout
	if v := r.FormValue("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			writeError(w, http.StatusBadRequest, "bad timeout %q", v)
			return
		}
		if d < timeout {
			timeout = d
		}
	}
	// ?partial=1 opts this request into degraded partial results when a
	// shard is unreachable (?partial=0 opts out of a permissive server
	// default). Meaningless against a single-store backend.
	partial := s.cfg.AllowPartial
	if v := r.FormValue("partial"); v != "" {
		partial = v != "0"
	}

	begin := time.Now()
	// The fingerprint is read before evaluation: if a mutation lands while
	// the query runs, the entry is stored under the pre-mutation state and
	// can never be served afterwards — over-invalidation, never staleness.
	fp := s.fingerprint(expr)
	key := cacheKey{expr: tree.String(), strategy: strat, fp: fp}
	if results, stats, ok := s.cache.get(key); fp != "" && ok {
		// A hit still gets its own telemetry record (the cached stats
		// describe the original evaluation and must not be mutated); its
		// fresh ID goes in the correlation header.
		if telemetry.Default.Enabled() {
			id := telemetry.Default.Capture(&telemetry.Record{
				Expr:     tree.String(),
				Start:    begin,
				Duration: time.Since(begin),
				Results:  len(results),
				CacheHit: true,
				Epoch:    s.store.Epoch(),
			})
			w.Header().Set("X-Nok-Query-Id", strconv.FormatUint(id, 10))
		}
		s.respondQuery(w, r, expr, results, stats, true, limit, time.Since(begin))
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	if err := s.pool.acquire(ctx); err != nil {
		s.writeQueryError(w, err)
		return
	}
	defer s.pool.release()

	results, stats, err := s.store.QueryWithOptionsContext(ctx, expr, &nok.QueryOptions{Strategy: strat, AllowPartial: partial})
	if err != nil {
		s.writeQueryError(w, err)
		return
	}
	if stats != nil && stats.QueryID != 0 {
		w.Header().Set("X-Nok-Query-Id", strconv.FormatUint(stats.QueryID, 10))
	}
	if fp != "" && (stats == nil || !stats.Degraded) {
		// Degraded answers are never cached: they are correct only for
		// the moment their shards were down, and serving them after the
		// missing shard heals would silently drop its rows.
		s.cache.put(key, results, stats)
	}
	s.respondQuery(w, r, expr, results, stats, false, limit, time.Since(begin))
}

// fingerprint names the store state a cached answer for expr depends on:
// the backend's per-query fingerprint when it offers one, the committed
// MVCC epoch otherwise. The epoch is precise where the mutation counter is
// not: it advances only when a mutation actually commits, and two reads of
// the same epoch are guaranteed byte-identical state, so a failed insert
// no longer evicts every cached result. "" marks the query uncachable. It
// takes the raw query text (not the canonical tree rendering, which is a
// display form and not re-parseable); textual variants of one query still
// share a cache entry because the canonical form is the key and the
// fingerprint is determined by query semantics.
func (s *Server) fingerprint(expr string) string {
	if f, ok := s.store.(CacheFingerprinter); ok {
		return f.CacheFingerprint(expr)
	}
	return strconv.FormatUint(s.store.Epoch(), 10)
}

// writeQueryError maps evaluation/admission errors to HTTP statuses.
// The shard-unavailable case is checked before the deadline case on
// purpose: the typed unavailability error can wrap an attempt-level
// deadline from the remote client's retry loop, and "a shard is down"
// is the actionable half of that story.
func (s *Server) writeQueryError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "%v", err)
	case errors.Is(err, nok.ErrShardUnavailable):
		mShardUnavail.Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, context.DeadlineExceeded):
		mTimeouts.Inc()
		mQueryTimeout.Inc()
		writeError(w, http.StatusGatewayTimeout, "query deadline exceeded")
	case errors.Is(err, context.Canceled):
		// The client is gone; nobody reads this response. 499 is the
		// conventional (non-standard) code; anything written is for logs.
		mCanceled.Inc()
		writeError(w, 499, "client closed request")
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

func (s *Server) respondQuery(w http.ResponseWriter, r *http.Request, expr string, results []nok.Result, stats *nok.QueryStats, cached bool, limit int, elapsed time.Duration) {
	resp := queryResponse{
		Query:     expr,
		Count:     len(results),
		Cached:    cached,
		ElapsedMS: float64(elapsed.Microseconds()) / 1000,
	}
	if stats != nil && stats.Degraded {
		mPartial.Inc()
		resp.Degraded = true
		resp.MissingShards = stats.MissingShards
	}
	shown := results
	if limit >= 0 && limit < len(results) {
		shown = results[:limit]
		resp.Truncated = true
	}
	resp.Results = make([]resultJSON, len(shown))
	for i, res := range shown {
		resp.Results[i] = resultJSON{ID: res.ID, Tag: res.Tag, Value: res.Value, HasValue: res.HasValue}
	}
	if r.FormValue("stats") != "" {
		resp.Stats = stats
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	if !s.beginRequest() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	defer s.wg.Done()

	expr := r.FormValue("q")
	if expr == "" {
		writeError(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	var plan string
	var err error
	if r.FormValue("analyze") != "" {
		// EXPLAIN ANALYZE executes the query, so it pays for a worker slot
		// like any evaluation.
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.QueryTimeout)
		defer cancel()
		if err := s.pool.acquire(ctx); err != nil {
			s.writeQueryError(w, err)
			return
		}
		_, _, plan, err = s.store.QueryAnalyze(expr, nil)
		s.pool.release()
	} else {
		plan, err = nok.Explain(expr)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, plan)
}

// handlePlan prints the cost-based planner's plan for a query without
// executing it — EXPLAIN to /explain?analyze=1's EXPLAIN ANALYZE. When the
// store has no fresh statistics synopsis, the response says so and names the
// heuristic fallback instead of failing. Planning reads only the in-memory
// synopsis, so it doesn't pay for a worker slot.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if !s.beginRequest() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	defer s.wg.Done()

	expr := r.FormValue("q")
	if expr == "" {
		writeError(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	text, err := s.store.Plan(expr)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, text)
}

func (s *Server) handleValue(w http.ResponseWriter, r *http.Request) {
	if !s.beginRequest() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	defer s.wg.Done()

	id := r.PathValue("id")
	v, ok, err := s.store.Value(id)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad id %q: %v", id, err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, "node %q has no value", id)
		return
	}
	writeJSON(w, http.StatusOK, resultJSON{ID: id, Value: v, HasValue: true})
}

type mutationResponse struct {
	OK         bool   `json:"ok"`
	Generation uint64 `json:"generation"`
	Epoch      uint64 `json:"epoch"`
	Nodes      uint64 `json:"nodes"`
}

// refuseMutation writes the 503 for degraded/draining states; it reports
// true when the request must not proceed.
func (s *Server) refuseMutation(w http.ResponseWriter) bool {
	if degraded, reason := s.Degraded(); degraded {
		w.Header().Set("Retry-After", "60")
		writeError(w, http.StatusServiceUnavailable, "store is degraded (%s): serving reads only", reason)
		return true
	}
	return false
}

// writeMutationError maps a mutation failure to an HTTP status, entering
// degraded mode when the store reports an unrecoverable transaction.
func (s *Server) writeMutationError(w http.ResponseWriter, err error) {
	if errors.Is(err, nok.ErrNeedsRecovery) {
		s.setDegraded("update transaction failed; restart to roll back to the last commit")
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	writeError(w, http.StatusBadRequest, "%v", err)
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	if !s.beginRequest() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	defer s.wg.Done()
	if s.refuseMutation(w) {
		return
	}
	// The body is the XML fragment, so the parent must come from the URL
	// (FormValue would consume the body as a form).
	parent := r.URL.Query().Get("parent")
	if parent == "" {
		writeError(w, http.StatusBadRequest, "missing parent parameter")
		return
	}
	if err := s.store.Insert(parent, r.Body); err != nil {
		s.writeMutationError(w, err)
		return
	}
	mMutations.Inc()
	writeJSON(w, http.StatusOK, mutationResponse{
		OK: true, Generation: s.store.Generation(), Epoch: s.store.Epoch(), Nodes: s.store.NodeCount(),
	})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if !s.beginRequest() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	defer s.wg.Done()
	if s.refuseMutation(w) {
		return
	}
	if err := s.store.Delete(r.PathValue("id")); err != nil {
		s.writeMutationError(w, err)
		return
	}
	mMutations.Inc()
	writeJSON(w, http.StatusOK, mutationResponse{
		OK: true, Generation: s.store.Generation(), Epoch: s.store.Epoch(), Nodes: s.store.NodeCount(),
	})
}

type statsResponse struct {
	Version    string            `json:"version"`
	Store      nok.Stats         `json:"store"`
	Nodes      uint64            `json:"nodes"`
	Generation uint64            `json:"generation"`
	Epoch      uint64            `json:"epoch"`
	MVCC       *nok.MVCCInfo     `json:"mvcc,omitempty"`
	Synopsis   *nok.SynopsisInfo `json:"synopsis,omitempty"`
	// TagCount answers ?tag=NAME: the number of nodes with that tag.
	TagCount *uint64 `json:"tag_count,omitempty"`
	// Shards reports per-shard availability for sharded backends —
	// remote shards carry their address, prober verdict, breaker state
	// and last observed epoch.
	Shards     []nok.ShardHealth `json:"shards,omitempty"`
	Workers    int               `json:"workers"`
	QueueDepth int               `json:"queue_depth"`
	Inflight   int64             `json:"inflight"`
	Queued     int64             `json:"queued"`
	Cache      struct {
		Entries  int     `json:"entries"`
		Capacity int     `json:"capacity"`
		Hits     int64   `json:"hits"`
		Misses   int64   `json:"misses"`
		HitRatio float64 `json:"hit_ratio"`
	} `json:"cache"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if !s.beginRequest() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	defer s.wg.Done()

	top := 0
	if v := r.FormValue("top"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			top = n
		}
	}
	syn := s.store.Synopsis(top)
	resp := statsResponse{
		Version:    buildinfo.String(),
		Store:      s.store.Stats(),
		Nodes:      s.store.NodeCount(),
		Generation: s.store.Generation(),
		Epoch:      s.store.Epoch(),
		Synopsis:   &syn,
		Workers:    s.cfg.Workers,
		QueueDepth: s.cfg.QueueDepth,
		Inflight:   s.pool.Inflight(),
		Queued:     s.pool.Queued(),
	}
	if m, ok := s.store.(MVCCReporter); ok {
		info := m.MVCC()
		resp.MVCC = &info
	}
	if tag := r.FormValue("tag"); tag != "" {
		if tc, ok := s.store.(TagCounter); ok {
			n := tc.TagCount(tag)
			resp.TagCount = &n
		}
	}
	if hr, ok := s.store.(HealthReporter); ok {
		resp.Shards = hr.Health()
	}
	resp.Cache.Entries = s.cache.len()
	resp.Cache.Capacity = s.cfg.CacheEntries
	resp.Cache.Hits = s.cache.hits.Load()
	resp.Cache.Misses = s.cache.misses.Load()
	resp.Cache.HitRatio = s.cache.ratio()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// ?exemplars=1 (or an OpenMetrics Accept header) switches to the
	// OpenMetrics exposition, whose latency buckets carry query-ID
	// exemplars linking them to /debug/queries records. The default stays
	// plain 0.0.4 text, byte-compatible with every scraper.
	if r.FormValue("exemplars") != "" || strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text") {
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		_ = obs.Default.WriteOpenMetrics(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.Default.WritePrometheus(w)
}

// debugQueriesResponse is the /debug/queries payload: the flight
// recorder's most recent records and the all-time slowest, both with
// rendered plans.
type debugQueriesResponse struct {
	Now             time.Time           `json:"now"`
	SlowThresholdMS float64             `json:"slow_threshold_ms"`
	Recent          []*telemetry.Record `json:"recent"`
	Slowest         []*telemetry.Record `json:"slowest"`
}

func (s *Server) handleDebugQueries(w http.ResponseWriter, r *http.Request) {
	n := 32
	if v := r.FormValue("n"); v != "" {
		p, err := strconv.Atoi(v)
		if err != nil || p < 1 {
			writeError(w, http.StatusBadRequest, "bad n %q", v)
			return
		}
		n = p
	}
	writeJSON(w, http.StatusOK, debugQueriesResponse{
		Now:             time.Now(),
		SlowThresholdMS: float64(telemetry.Default.SlowThreshold().Microseconds()) / 1000,
		Recent:          telemetry.Default.Recent(n),
		Slowest:         telemetry.Default.Slowest(n),
	})
}

type healthResponse struct {
	Status         string   `json:"status"` // "ok" or "degraded"
	Version        string   `json:"version"`
	Epoch          uint64   `json:"epoch"`
	Reason         string   `json:"reason,omitempty"`
	Deep           bool     `json:"deep,omitempty"`
	PagesChecked   int      `json:"pages_checked,omitempty"`
	EntriesChecked uint64   `json:"entries_checked,omitempty"`
	RecordsChecked int      `json:"records_checked,omitempty"`
	Issues         []string `json:"issues,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.lifeMu.Lock()
	draining := s.draining
	s.lifeMu.Unlock()
	if draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if r.FormValue("deep") != "" {
		// Full store verification under the read lock: queries proceed,
		// mutations wait for the check to finish.
		res := s.store.Verify(true)
		resp := healthResponse{
			Status:         "ok",
			Version:        buildinfo.String(),
			Epoch:          s.store.Epoch(),
			Deep:           true,
			PagesChecked:   res.PagesChecked,
			EntriesChecked: res.EntriesChecked,
			RecordsChecked: res.RecordsChecked,
		}
		if !res.OK() {
			s.setDegraded("deep verification failed")
			resp.Status = "degraded"
			for _, is := range res.Issues {
				resp.Issues = append(resp.Issues, is.String())
			}
			_, resp.Reason = s.Degraded()
			writeJSON(w, http.StatusServiceUnavailable, resp)
			return
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	if degraded, reason := s.Degraded(); degraded {
		writeJSON(w, http.StatusServiceUnavailable, healthResponse{
			Status: "degraded", Version: buildinfo.String(), Epoch: s.store.Epoch(), Reason: reason,
		})
		return
	}
	writeJSON(w, http.StatusOK, healthResponse{
		Status: "ok", Version: buildinfo.String(), Epoch: s.store.Epoch(),
	})
}
