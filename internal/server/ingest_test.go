package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"nok/internal/ingest"
)

func postIngest(t *testing.T, url, body string, out any) (int, http.Header) {
	t.Helper()
	resp, err := http.Post(url, "application/xml", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	hdr := resp.Header
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decoding: %v", url, err)
		}
	}
	return resp.StatusCode, hdr
}

func TestIngestEndpoint(t *testing.T) {
	_, ts := newTestServer(t, "<lib><book><title>seed</title></book></lib>", Config{})

	// One body, many documents, one durable response.
	body := ""
	for i := 0; i < 6; i++ {
		body += fmt.Sprintf("<book><title>s%d</title><price>%d</price></book>", i, i)
	}
	var ir ingestResponse
	code, _ := postIngest(t, ts.URL+"/ingest", body, &ir)
	if code != 200 {
		t.Fatalf("ingest status %d: %+v", code, ir)
	}
	if !ir.OK || ir.Docs != 6 || !ir.Durable {
		t.Fatalf("ingest response %+v", ir)
	}
	var qr queryResponse
	if code := getJSON(t, ts.URL+"/query?q=%2F%2Fbook", &qr); code != 200 || qr.Count != 7 {
		t.Fatalf("after ingest: status %d, %d books, want 7", code, qr.Count)
	}

	// wait=0 accepts without the durability barrier.
	code, _ = postIngest(t, ts.URL+"/ingest?wait=0", "<book><title>async</title></book>", &ir)
	if code != http.StatusAccepted || ir.Durable {
		t.Fatalf("wait=0: status %d, response %+v", code, ir)
	}

	// Malformed stream and empty body are 400s.
	var er errorResponse
	if code, _ := postIngest(t, ts.URL+"/ingest", "<book><title>x</book>", &er); code != 400 {
		t.Fatalf("malformed body: status %d", code)
	}
	if code, _ := postIngest(t, ts.URL+"/ingest", "  ", &er); code != 400 {
		t.Fatalf("empty body: status %d", code)
	}

	// The flight recorder saw the commits.
	var dr debugIngestResponse
	if code := getJSON(t, ts.URL+"/debug/ingest", &dr); code != 200 {
		t.Fatalf("debug/ingest status %d", code)
	}
	if dr.Stats.Docs < 6 || len(dr.Recent) == 0 {
		t.Fatalf("debug/ingest response: stats %+v, %d records", dr.Stats, len(dr.Recent))
	}
}

// TestIngestSharesCommits is the group-commit property at the HTTP layer:
// concurrent POST /ingest requests coalesce into far fewer epochs than
// documents.
func TestIngestSharesCommits(t *testing.T) {
	srv, ts := newTestServer(t, "<lib><book><title>seed</title></book></lib>", Config{
		Ingest: ingest.Options{BatchDocs: 64, BatchInterval: 5 * time.Millisecond},
	})
	epoch0 := srv.store.Epoch()

	const clients, perClient = 8, 10
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				body := fmt.Sprintf("<book><title>c%d-%d</title></book>", c, i)
				resp, err := http.Post(ts.URL+"/ingest", "application/xml", strings.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != 200 {
					errs <- fmt.Errorf("client %d: status %d", c, resp.StatusCode)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	var qr queryResponse
	if code := getJSON(t, ts.URL+"/query?q=%2F%2Fbook", &qr); code != 200 || qr.Count != clients*perClient+1 {
		t.Fatalf("after concurrent ingest: status %d, %d books, want %d", code, qr.Count, clients*perClient+1)
	}
	commits := srv.store.Epoch() - epoch0
	if commits == 0 || commits >= clients*perClient {
		t.Fatalf("%d epochs for %d documents: group commit is not grouping", commits, clients*perClient)
	}
	t.Logf("%d documents across %d clients in %d epochs", clients*perClient, clients, commits)
}

// TestIngestBackpressure429 fills the in-flight budget and requires the
// typed refusal to surface as HTTP 429 with a Retry-After header.
func TestIngestBackpressure429(t *testing.T) {
	_, ts := newTestServer(t, "<lib></lib>", Config{
		Ingest: ingest.Options{
			// Commits never trigger on their own, so accepted bytes stay
			// pending and the second request must be refused. The budget
			// fits one filler document but not two.
			BatchDocs:     1 << 20,
			BatchInterval: time.Hour,
			MaxPending:    150,
		},
	})

	filler := "<book><title>" + strings.Repeat("x", 80) + "</title></book>"
	code, _ := postIngest(t, ts.URL+"/ingest?wait=0", filler, nil)
	if code != http.StatusAccepted {
		t.Fatalf("first ingest: status %d", code)
	}
	var er errorResponse
	code, hdr := postIngest(t, ts.URL+"/ingest?wait=0", filler, &er)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over budget: status %d (%+v)", code, er)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	if !strings.Contains(er.Error, "backpressure") {
		t.Fatalf("429 body: %+v", er)
	}
}

// TestIngestOversizedDoc413 sends a single document larger than the whole
// in-flight budget. Submit would admit it into an empty pipeline, so the
// splitter's per-document cap must refuse it (413) before it buffers —
// otherwise one request bypasses backpressure with unbounded memory.
func TestIngestOversizedDoc413(t *testing.T) {
	_, ts := newTestServer(t, "<lib></lib>", Config{
		Ingest: ingest.Options{MaxPending: 256},
	})
	huge := "<book><title>" + strings.Repeat("y", 4096) + "</title></book>"
	var er errorResponse
	code, _ := postIngest(t, ts.URL+"/ingest", huge, &er)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized document: status %d (%+v)", code, er)
	}
	if !strings.Contains(er.Error, "too large") {
		t.Fatalf("413 body: %+v", er)
	}
	// The store took nothing.
	var qr queryResponse
	if code := getJSON(t, ts.URL+"/query?q=%2F%2Fbook", &qr); code != 200 || qr.Count != 0 {
		t.Fatalf("after 413: status %d, %d books, want 0", code, qr.Count)
	}
}
