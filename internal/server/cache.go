package server

import (
	"container/list"
	"sync"
	"sync/atomic"

	"nok"
)

// cacheKey identifies one cacheable evaluation: the *normalized* query (the
// parsed pattern tree rendered back to text, so `//book` and `// book`
// collide), the forced strategy, and the state fingerprint at lookup time —
// the whole-store generation for single stores, the participating (shard,
// generation) pairs for sharded collections. Mutations to participating
// state change the fingerprint, so every entry computed before them becomes
// unreachable — stale results are never served, and dead entries age out
// through normal LRU eviction. Mutations to shards a query is pruned from
// leave its fingerprint, and therefore its cached results, intact.
type cacheKey struct {
	expr     string
	strategy nok.Strategy
	fp       string
}

// resultCache is a mutex-guarded LRU over query results. Entries store the
// result slice by reference; results are treated as immutable after
// evaluation (handlers marshal them without modification).
type resultCache struct {
	mu  sync.Mutex
	max int
	ll  *list.List // front = most recently used
	m   map[cacheKey]*list.Element

	hits   atomic.Int64
	misses atomic.Int64
}

type cacheEntry struct {
	key     cacheKey
	results []nok.Result
	stats   *nok.QueryStats
}

// newResultCache returns a cache holding at most max entries; max <= 0
// disables caching (every lookup misses, puts are dropped).
func newResultCache(max int) *resultCache {
	return &resultCache{max: max, ll: list.New(), m: make(map[cacheKey]*list.Element)}
}

// get returns the cached results for key, if present.
func (c *resultCache) get(key cacheKey) ([]nok.Result, *nok.QueryStats, bool) {
	if c.max <= 0 {
		c.misses.Add(1)
		return nil, nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		c.misses.Add(1)
		mCacheMisses.Inc()
		return nil, nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Add(1)
	mCacheHits.Inc()
	ent := el.Value.(*cacheEntry)
	return ent.results, ent.stats, true
}

// put stores results under key, evicting the least recently used entry
// when the cache is full.
func (c *resultCache) put(key cacheKey, results []nok.Result, stats *nok.QueryStats) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).results = results
		el.Value.(*cacheEntry).stats = stats
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, results: results, stats: stats})
	for c.ll.Len() > c.max {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.m, last.Value.(*cacheEntry).key)
	}
	mCacheEntries.Set(int64(c.ll.Len()))
}

// len returns the current entry count.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// ratio returns the lifetime hit ratio (0 when no lookups happened).
func (c *resultCache) ratio() float64 {
	h, m := c.hits.Load(), c.misses.Load()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}
