package server

import (
	"errors"
	"io"
	"math"
	"net/http"
	"strconv"

	"nok/internal/ingest"
	"nok/internal/telemetry"
)

// batchInserter is the optional Backend refinement POST /ingest needs: a
// whole slice of fragments landing as one committed epoch. Both nok.Store
// and shard.Store provide it; a backend without it gets a 501 so clients
// can fall back to per-document POST /insert.
type batchInserter interface {
	InsertBatch(parentID string, frags [][]byte) error
}

// ingestTarget glues a batching Backend to the pipeline's Target surface.
type ingestTarget struct {
	bi batchInserter
	be Backend
}

func (t ingestTarget) InsertBatch(parentID string, frags [][]byte) error {
	return t.bi.InsertBatch(parentID, frags)
}

func (t ingestTarget) Epoch() uint64 { return t.be.Epoch() }

type ingestResponse struct {
	OK   bool `json:"ok"`
	Docs int  `json:"docs"`
	// Durable reports whether the response waited for the group commit
	// (the default); with ?wait=0 the documents are accepted but may still
	// be buffered.
	Durable    bool   `json:"durable"`
	Generation uint64 `json:"generation"`
	Epoch      uint64 `json:"epoch"`
	Nodes      uint64 `json:"nodes"`
}

// handleIngest streams a concatenation of XML document fragments from the
// request body into the shared group-commit pipeline. Concurrent requests
// coalesce into the same commits — that is the throughput win over
// POST /insert. By default the response waits for durability (the Flush
// barrier); ?wait=0 returns 202 as soon as the documents are accepted.
//
// Backpressure maps to 429 + Retry-After. Documents accepted before the
// refusal stay accepted (they commit with the next batch); the response
// body says how many, so the client resumes from there.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if !s.beginRequest() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	defer s.wg.Done()
	if s.refuseMutation(w) {
		return
	}
	if s.ingest == nil {
		writeError(w, http.StatusNotImplemented, "backend does not support batched ingest; use POST /insert")
		return
	}

	accepted := 0
	sp := ingest.NewSplitter(r.Body)
	// Cap single documents at the pipeline's in-flight budget: Submit
	// always admits into an empty pipeline, so without this cap one
	// oversized document would buffer in full and bypass backpressure.
	sp.MaxDocBytes = s.ingest.Budget()
	for {
		doc, err := sp.Next()
		if err == io.EOF {
			break
		}
		if errors.Is(err, ingest.ErrDocTooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"document %d too large: %v", accepted, err)
			return
		}
		if err != nil {
			writeError(w, http.StatusBadRequest, "malformed fragment stream after %d documents: %v", accepted, err)
			return
		}
		if err := s.ingest.Submit(doc); err != nil {
			s.writeIngestError(w, err, accepted)
			return
		}
		accepted++
	}
	if accepted == 0 {
		writeError(w, http.StatusBadRequest, "no documents in request body")
		return
	}
	mMutations.Inc()

	status := http.StatusAccepted
	durable := r.URL.Query().Get("wait") != "0"
	if durable {
		if err := s.ingest.Flush(); err != nil {
			s.writeIngestError(w, err, accepted)
			return
		}
		status = http.StatusOK
	}
	writeJSON(w, status, ingestResponse{
		OK: true, Docs: accepted, Durable: durable,
		Generation: s.store.Generation(), Epoch: s.store.Epoch(), Nodes: s.store.NodeCount(),
	})
}

// writeIngestError maps pipeline failures: backpressure to 429 +
// Retry-After (retryable), a dead pipeline to degraded mode + 503.
func (s *Server) writeIngestError(w http.ResponseWriter, err error, accepted int) {
	var bp *ingest.BackpressureError
	if errors.As(err, &bp) {
		secs := int(math.Ceil(bp.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		mRejected.Inc()
		writeError(w, http.StatusTooManyRequests,
			"ingest backpressure after %d accepted documents: %v", accepted, err)
		return
	}
	if errors.Is(err, ingest.ErrClosed) {
		writeError(w, http.StatusServiceUnavailable, "ingest pipeline is shut down")
		return
	}
	// Anything else killed the pipeline (store-level failure): later
	// submissions fail fast, so stop taking mutations until an operator
	// restarts.
	s.setDegraded("ingest pipeline failed; restart to recover to the last commit")
	writeError(w, http.StatusServiceUnavailable, "%v", err)
}

type debugIngestResponse struct {
	Stats   ingest.Stats             `json:"stats"`
	Pending int64                    `json:"pending_bytes"`
	Recent  []*telemetry.IngestBatch `json:"recent"`
}

// handleDebugIngest exposes the pipeline's lifetime counters and the
// ingest flight recorder (most recent group commits, newest first).
func (s *Server) handleDebugIngest(w http.ResponseWriter, r *http.Request) {
	if !s.beginRequest() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	defer s.wg.Done()
	n := 16
	if v := r.FormValue("n"); v != "" {
		if k, err := strconv.Atoi(v); err == nil && k > 0 {
			n = k
		}
	}
	resp := debugIngestResponse{Recent: telemetry.Default.IngestRecent(n)}
	if s.ingest != nil {
		resp.Stats = s.ingest.Stats()
		resp.Pending = s.ingest.Pending()
	}
	writeJSON(w, http.StatusOK, resp)
}
