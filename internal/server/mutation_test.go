package server

import (
	"net/http"
	"strings"
	"testing"

	"nok/internal/samples"
)

func doReq(t *testing.T, method, url string, body string) (*http.Response, func()) {
	t.Helper()
	var r *strings.Reader
	if body != "" {
		r = strings.NewReader(body)
	} else {
		r = strings.NewReader("")
	}
	req, err := http.NewRequest(method, url, r)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp, func() { resp.Body.Close() }
}

func TestInsertAndDeleteEndpoints(t *testing.T) {
	srv, ts := newTestServer(t, samples.Bibliography, Config{})

	var before queryResponse
	getJSON(t, ts.URL+"/query?q=%2F%2Fbook", &before)

	resp, done := doReq(t, http.MethodPost, ts.URL+"/insert?parent=0",
		"<book><title>Crash Safety</title><price>42</price></book>")
	if resp.StatusCode != 200 {
		t.Fatalf("insert status %d", resp.StatusCode)
	}
	done()
	if srv.store.Epoch() != 2 {
		t.Errorf("post-insert epoch = %d, want 2", srv.store.Epoch())
	}

	var after queryResponse
	getJSON(t, ts.URL+"/query?q=%2F%2Fbook", &after)
	if after.Count != before.Count+1 {
		t.Errorf("book count %d after insert, want %d", after.Count, before.Count+1)
	}

	// Delete the node we just added (last child of the root).
	last := after.Results[len(after.Results)-1].ID
	resp, done = doReq(t, http.MethodDelete, ts.URL+"/node/"+last, "")
	if resp.StatusCode != 200 {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	done()

	getJSON(t, ts.URL+"/query?q=%2F%2Fbook", &after)
	if after.Count != before.Count {
		t.Errorf("book count %d after delete, want %d", after.Count, before.Count)
	}

	// Bad requests stay 4xx and do not degrade the server.
	resp, done = doReq(t, http.MethodPost, ts.URL+"/insert?parent=0", "<unclosed>")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed fragment status %d, want 400", resp.StatusCode)
	}
	done()
	resp, done = doReq(t, http.MethodPost, ts.URL+"/insert", "<x/>")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing parent status %d, want 400", resp.StatusCode)
	}
	done()
	if degraded, _ := srv.Degraded(); degraded {
		t.Error("benign mutation errors degraded the server")
	}
}

func TestHealthzDeep(t *testing.T) {
	srv, ts := newTestServer(t, samples.Bibliography, Config{})

	var h healthResponse
	if code := getJSON(t, ts.URL+"/healthz?deep=1", &h); code != 200 {
		t.Fatalf("deep healthz status %d (issues: %v)", code, h.Issues)
	}
	if h.Status != "ok" || h.PagesChecked == 0 || h.EntriesChecked == 0 {
		t.Errorf("deep healthz response: %+v", h)
	}
	if degraded, _ := srv.Degraded(); degraded {
		t.Error("clean deep verify degraded the server")
	}
}

func TestDegradedModeServesReadsRefusesWrites(t *testing.T) {
	srv, ts := newTestServer(t, samples.Bibliography, Config{})
	srv.setDegraded("test-induced")

	// Reads still work.
	var qr queryResponse
	if code := getJSON(t, ts.URL+"/query?q=%2F%2Fbook", &qr); code != 200 {
		t.Errorf("degraded query status %d, want 200", code)
	}
	// Mutations are refused with 503.
	resp, done := doReq(t, http.MethodPost, ts.URL+"/insert?parent=0", "<x/>")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("degraded insert status %d, want 503", resp.StatusCode)
	}
	done()
	resp, done = doReq(t, http.MethodDelete, ts.URL+"/node/0.1", "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("degraded delete status %d, want 503", resp.StatusCode)
	}
	done()
	// Plain healthz reports the state.
	var h healthResponse
	if code := getJSON(t, ts.URL+"/healthz", &h); code != http.StatusServiceUnavailable {
		t.Errorf("degraded healthz status %d, want 503", code)
	}
	if h.Status != "degraded" || h.Reason == "" {
		t.Errorf("degraded healthz response: %+v", h)
	}
}
