package pager

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func newFile(t *testing.T, opts *Options) *File {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.pg")
	pf, err := Create(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pf.Close() })
	return pf
}

func TestCreateRejectsExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dup.pg")
	pf, err := Create(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	pf.Close()
	if _, err := Create(path, nil); err == nil {
		t.Error("Create over existing file should fail")
	}
}

func TestAllocateGetRoundTrip(t *testing.T) {
	pf := newFile(t, &Options{PageSize: 256})
	p, err := pf.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if p.ID() != 1 {
		t.Errorf("first page id = %d, want 1", p.ID())
	}
	copy(p.Data(), "hello page")
	p.MarkDirty()
	pf.Unpin(p)

	got, err := pf.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Unpin(got)
	if !bytes.HasPrefix(got.Data(), []byte("hello page")) {
		t.Errorf("page content = %q", got.Data()[:16])
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "persist.pg")
	pf, err := Create(path, &Options{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		p, err := pf.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		copy(p.Data(), fmt.Sprintf("page-%d", p.ID()))
		p.MarkDirty()
		pf.Unpin(p)
	}
	if err := pf.SetMeta([]byte("client-meta")); err != nil {
		t.Fatal(err)
	}
	if err := pf.Close(); err != nil {
		t.Fatal(err)
	}

	pf2, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer pf2.Close()
	if pf2.NumPages() != 10 {
		t.Errorf("NumPages = %d, want 10", pf2.NumPages())
	}
	if string(pf2.Meta()) != "client-meta" {
		t.Errorf("Meta = %q", pf2.Meta())
	}
	for i := 1; i <= 10; i++ {
		p, err := pf2.Get(PageID(i))
		if err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf("page-%d", i)
		if !bytes.HasPrefix(p.Data(), []byte(want)) {
			t.Errorf("page %d content = %q, want prefix %q", i, p.Data()[:10], want)
		}
		pf2.Unpin(p)
	}
}

func TestOpenRejectsWrongPageSize(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ps.pg")
	pf, err := Create(path, &Options{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	pf.Close()
	if _, err := Open(path, &Options{PageSize: 512}); err == nil {
		t.Error("Open with mismatched page size should fail")
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.pg")
	if err := os.WriteFile(path, bytes.Repeat([]byte("x"), 1024), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, nil); err == nil {
		t.Error("Open of garbage should fail")
	}
}

func TestGetOutOfRange(t *testing.T) {
	pf := newFile(t, &Options{PageSize: 256})
	if _, err := pf.Get(0); err == nil {
		t.Error("Get(0) should fail")
	}
	if _, err := pf.Get(99); err == nil {
		t.Error("Get past end should fail")
	}
}

func TestFreeListReuse(t *testing.T) {
	pf := newFile(t, &Options{PageSize: 256})
	var ids []PageID
	for i := 0; i < 5; i++ {
		p, err := pf.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, p.ID())
		pf.Unpin(p)
	}
	if err := pf.Free(ids[1]); err != nil {
		t.Fatal(err)
	}
	if err := pf.Free(ids[3]); err != nil {
		t.Fatal(err)
	}
	// LIFO reuse: last freed first.
	p, err := pf.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if p.ID() != ids[3] {
		t.Errorf("reused page = %d, want %d", p.ID(), ids[3])
	}
	// Reused page must be zeroed.
	for _, b := range p.Data() {
		if b != 0 {
			t.Fatal("reused page not zeroed")
		}
	}
	pf.Unpin(p)
	p2, err := pf.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if p2.ID() != ids[1] {
		t.Errorf("second reuse = %d, want %d", p2.ID(), ids[1])
	}
	pf.Unpin(p2)
	// Free list exhausted: next allocation extends the file.
	p3, err := pf.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if p3.ID() != 6 {
		t.Errorf("extension page = %d, want 6", p3.ID())
	}
	pf.Unpin(p3)
}

func TestFreePinnedPageRejected(t *testing.T) {
	pf := newFile(t, &Options{PageSize: 256})
	p, err := pf.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := pf.Free(p.ID()); err == nil {
		t.Error("freeing a pinned page should fail")
	}
	pf.Unpin(p)
	if err := pf.Free(p.ID()); err != nil {
		t.Errorf("freeing an unpinned page: %v", err)
	}
}

func TestEvictionWritesBackDirtyPages(t *testing.T) {
	// Pool of 4 frames, 32 pages: every page must survive eviction.
	pf := newFile(t, &Options{PageSize: 256, PoolPages: 4})
	for i := 1; i <= 32; i++ {
		p, err := pf.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		copy(p.Data(), fmt.Sprintf("content-%02d", i))
		p.MarkDirty()
		pf.Unpin(p)
	}
	for i := 1; i <= 32; i++ {
		p, err := pf.Get(PageID(i))
		if err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf("content-%02d", i)
		if !bytes.HasPrefix(p.Data(), []byte(want)) {
			t.Errorf("page %d = %q, want %q", i, p.Data()[:12], want)
		}
		pf.Unpin(p)
	}
}

func TestPoolExhaustionWhenAllPinned(t *testing.T) {
	pf := newFile(t, &Options{PageSize: 256, PoolPages: 2})
	p1, err := pf.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := pf.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pf.Allocate(); err != ErrPoolExhausted {
		t.Errorf("expected ErrPoolExhausted, got %v", err)
	}
	pf.Unpin(p1)
	p3, err := pf.Allocate()
	if err != nil {
		t.Fatalf("after unpin, Allocate: %v", err)
	}
	pf.Unpin(p2)
	pf.Unpin(p3)
}

func TestLRUOrder(t *testing.T) {
	pf := newFile(t, &Options{PageSize: 256, PoolPages: 3})
	var pages []*Page
	for i := 0; i < 3; i++ {
		p, err := pf.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		pages = append(pages, p)
		pf.Unpin(p)
	}
	// Touch page 1 so page 2 becomes LRU.
	p, err := pf.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	pf.Unpin(p)
	// Allocating a 4th page must evict page 2 (the LRU), keeping 1 and 3.
	p4, err := pf.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	pf.Unpin(p4)
	before := pf.Stats().PhysicalReads
	p, err = pf.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	pf.Unpin(p)
	if pf.Stats().PhysicalReads != before {
		t.Error("page 1 should still be cached after eviction of LRU")
	}
	p, err = pf.Get(2)
	if err != nil {
		t.Fatal(err)
	}
	pf.Unpin(p)
	if pf.Stats().PhysicalReads != before+1 {
		t.Error("page 2 should have been evicted and re-read")
	}
	_ = pages
}

func TestStatsCounting(t *testing.T) {
	pf := newFile(t, &Options{PageSize: 256})
	p, err := pf.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	pf.Unpin(p)
	s := pf.Stats()
	if s.Allocations != 1 {
		t.Errorf("Allocations = %d", s.Allocations)
	}
	// Get of cached page is a hit, not a read.
	p, _ = pf.Get(1)
	pf.Unpin(p)
	s = pf.Stats()
	if s.CacheHits != 1 {
		t.Errorf("CacheHits = %d, want 1", s.CacheHits)
	}
	if s.PhysicalReads != 0 {
		t.Errorf("PhysicalReads = %d, want 0 (page was cached)", s.PhysicalReads)
	}
	pf.ResetStats()
	if pf.Stats() != (Stats{}) {
		t.Error("ResetStats did not zero counters")
	}
}

func TestMetaTooLarge(t *testing.T) {
	pf := newFile(t, nil)
	if err := pf.SetMeta(make([]byte, MaxMetaLen+1)); err == nil {
		t.Error("oversized meta should be rejected")
	}
}

func TestCloseReportsPinnedPages(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pinned.pg")
	pf, err := Create(path, &Options{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pf.Allocate(); err != nil {
		t.Fatal(err)
	}
	if err := pf.Close(); err == nil {
		t.Error("Close with pinned pages should report an error")
	}
}

func TestDoubleCloseIsIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dc.pg")
	pf, err := Create(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := pf.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pf.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestFreeListSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fl.pg")
	pf, err := Create(path, &Options{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		p, err := pf.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		pf.Unpin(p)
	}
	if err := pf.Free(2); err != nil {
		t.Fatal(err)
	}
	pf.Close()

	pf2, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer pf2.Close()
	p, err := pf2.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if p.ID() != 2 {
		t.Errorf("allocation after reopen = %d, want freed page 2", p.ID())
	}
	pf2.Unpin(p)
}
