// Package pager provides fixed-size paged file storage with a pinning
// buffer pool.
//
// Every on-disk structure in this repository — the succinct string
// representation (internal/stree), the B+ trees (internal/btree) and the
// value data file (internal/vstore) — lives in a pager file. The pager is
// deliberately unaware of what its clients store in a page: a page is an
// opaque byte array plus bookkeeping.
//
// Page 0 of every file is the file header; data pages are numbered from 1.
// The header carries a small client "meta" area where clients persist their
// own root pointers and statistics.
//
// # Integrity (format version 2)
//
// Every physical page — header included — carries an 8-byte trailer holding
// a CRC32C checksum of the page payload. The checksum is computed on every
// physical write and verified on every physical read; a mismatch surfaces
// as ErrChecksum, wrapped with the page id and file path. A page whose
// payload and trailer are entirely zero is a never-written page (Allocate
// extends the file lazily) and reads back as zeroes without a checksum
// error. The physical page size on disk is therefore PageSize+8; PageSize
// remains the client-visible payload size.
//
// # Crash safety
//
// In-place page updates can be wrapped in an undo-journal transaction
// (BeginUpdate / CommitUpdate): before a committed page is first
// overwritten, its on-disk pre-image is appended to a side journal and
// fsynced. A crash between BeginUpdate and CommitUpdate leaves the journal
// behind; ReplayJournal restores every journaled pre-image, the old header,
// and the old file length — returning the file to its pre-transaction
// state. See journal.go.
//
// The pool counts physical reads, physical writes and cache hits. Those
// counters are how the benchmark harness verifies the paper's Proposition 1
// (the physical NoK matcher reads every page at most once).
package pager

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"nok/internal/obs"
	"nok/internal/vfs"
)

// Process-wide I/O counters, aggregated across every pager file and exposed
// through the default obs registry (per-file counters live in File.Stats).
var (
	mReads  = obs.Default.Counter("nok_pager_physical_reads_total", "pages read from the OS across all pager files")
	mWrites = obs.Default.Counter("nok_pager_physical_writes_total", "pages written to the OS across all pager files")
	mHits   = obs.Default.Counter("nok_pager_cache_hits_total", "page requests served from the buffer pool")
	mAllocs = obs.Default.Counter("nok_pager_allocations_total", "pages allocated")
	mFrees  = obs.Default.Counter("nok_pager_frees_total", "pages returned to the free list")
)

// PageID identifies a data page. 0 is invalid (it is the file header).
type PageID uint32

// InvalidPage is the zero PageID.
const InvalidPage PageID = 0

const (
	// MinPageSize is small enough to exercise page-spanning logic in tests;
	// production files use DefaultPageSize.
	MinPageSize = 128
	// DefaultPageSize matches the paper's 4KB example in §4.2.
	DefaultPageSize = 4096
	// MaxMetaLen is the number of client meta bytes stored in the header.
	MaxMetaLen = 64

	// TrailerLen is the per-page integrity trailer appended to every
	// physical page: crc32c(payload) u32 followed by 4 reserved bytes.
	TrailerLen = 8

	headerMagic = "NKPG"
	// headerVersion 2 introduced the per-page checksum trailer; version 1
	// files (no trailers) are refused with a descriptive error.
	headerVersion = 2
	// header layout: magic[4] version[2] pageSize[4] numPages[4] freeHead[4]
	// metaLen[2] meta[MaxMetaLen]
	headerFixed = 4 + 2 + 4 + 4 + 4 + 2
)

// crcTable is the Castagnoli polynomial, hardware-accelerated on amd64 and
// arm64 — the same choice as iSCSI, ext4 and Snappy.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Errors returned by the pager.
var (
	ErrPageOutOfRange = errors.New("pager: page id out of range")
	ErrClosed         = errors.New("pager: file is closed")
	ErrPoolExhausted  = errors.New("pager: all buffer frames are pinned")
	// ErrChecksum reports a page whose stored CRC32C does not match its
	// payload — a torn write or bit rot. It is wrapped with the page id
	// and file path.
	ErrChecksum = errors.New("pager: page checksum mismatch")
	// ErrJournalPresent is returned by Open when an undo journal exists
	// next to the file: a transaction crashed mid-flight and the caller
	// must decide (ReplayJournal or DiscardJournal) before opening.
	ErrJournalPresent = errors.New("pager: undo journal present (crashed transaction; replay or discard it before opening)")
	// ErrInTx is returned when BeginUpdate is called while a transaction
	// is already open.
	ErrInTx = errors.New("pager: update transaction already open")
)

// Stats are cumulative I/O counters for a File.
type Stats struct {
	PhysicalReads  int64 // pages read from the OS
	PhysicalWrites int64 // pages written to the OS
	CacheHits      int64 // Get calls satisfied from the pool
	Allocations    int64 // pages allocated
	Frees          int64 // pages returned to the free list
}

// fileStats is the live, atomically updated form of Stats. Counters are
// atomics (not ints guarded by the pool mutex) so Stats and ResetStats can
// run concurrently with I/O without a data race — benchmarks and the
// metrics exporter read them from other goroutines.
type fileStats struct {
	reads, writes, hits, allocs, frees atomic.Int64
}

func (fs *fileStats) snapshot() Stats {
	return Stats{
		PhysicalReads:  fs.reads.Load(),
		PhysicalWrites: fs.writes.Load(),
		CacheHits:      fs.hits.Load(),
		Allocations:    fs.allocs.Load(),
		Frees:          fs.frees.Load(),
	}
}

func (fs *fileStats) reset() {
	fs.reads.Store(0)
	fs.writes.Store(0)
	fs.hits.Store(0)
	fs.allocs.Store(0)
	fs.frees.Store(0)
}

// Page is a pinned buffer-pool frame. Callers must Unpin every page they
// Get or Allocate, and must call MarkDirty before unpinning if they changed
// Data. Data is exactly PageSize bytes.
type Page struct {
	id   PageID // physical id: the pool key and on-disk location
	data []byte
	// logical is the id clients address the page by. In a plain file it
	// equals id; in a versioned file copy-on-write remaps a stable logical
	// id onto fresh physical pages. Written once at frame creation (under
	// the file mutex) and never changed while the frame is pooled.
	logical PageID
	pins    int
	dirty   bool

	// LRU list links; only meaningful while pins == 0.
	prev, next *Page
}

// ID returns the page's identifier as seen by clients. In a versioned file
// this is the stable logical id, not the physical location.
func (p *Page) ID() PageID { return p.logical }

// Data returns the page's byte buffer. The slice is valid while the page is
// pinned.
func (p *Page) Data() []byte { return p.data }

// MarkDirty records that Data was modified so the frame is written back
// before eviction or on Flush.
func (p *Page) MarkDirty() { p.dirty = true }

// File is a paged file with a buffer pool. All methods are safe for
// concurrent use; pages themselves follow a pin-before-use discipline.
type File struct {
	mu sync.Mutex

	fsys     vfs.FS
	f        vfs.File
	path     string
	pageSize int
	physSize int    // pageSize + TrailerLen, the on-disk page stride
	numPages uint32 // data pages (excluding header)
	freeHead PageID
	meta     [MaxMetaLen]byte
	metaLen  int

	pool     map[PageID]*Page
	capacity int
	// lru is a doubly-linked list of unpinned frames; lruHead is least
	// recently used (next eviction victim), lruTail most recently used.
	lruHead, lruTail *Page

	// scratch is the physical-page staging buffer (payload + trailer).
	// All physical I/O happens under mu, so one buffer per file suffices.
	scratch []byte

	// tx is the open undo-journal transaction, nil outside BeginUpdate /
	// CommitUpdate.
	tx *journalTx

	// vs is non-nil when the file runs in versioned (multi-version
	// copy-on-write) mode; see versions.go.
	vs *verState

	stats  fileStats
	closed bool

	headerDirty bool
}

// Options configure Create and Open.
type Options struct {
	// PageSize is the page size in bytes for Create; Open verifies it if
	// non-zero. Defaults to DefaultPageSize.
	PageSize int
	// PoolPages is the buffer-pool capacity in frames. Defaults to 256.
	PoolPages int
	// FS is the file system to operate on. Defaults to vfs.OS; tests
	// substitute internal/faultfs for crash injection.
	FS vfs.FS
}

func (o *Options) withDefaults() Options {
	out := Options{PageSize: DefaultPageSize, PoolPages: 256, FS: vfs.OS}
	if o != nil {
		if o.PageSize != 0 {
			out.PageSize = o.PageSize
		}
		if o.PoolPages != 0 {
			out.PoolPages = o.PoolPages
		}
		if o.FS != nil {
			out.FS = o.FS
		}
	}
	return out
}

// Create creates a new paged file at path, failing if it already exists.
func Create(path string, opts *Options) (*File, error) {
	o := opts.withDefaults()
	if o.PageSize < MinPageSize {
		return nil, fmt.Errorf("pager: page size %d below minimum %d", o.PageSize, MinPageSize)
	}
	f, err := o.FS.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	pf := &File{
		fsys:     o.FS,
		f:        f,
		path:     path,
		pageSize: o.PageSize,
		physSize: o.PageSize + TrailerLen,
		pool:     make(map[PageID]*Page),
		capacity: o.PoolPages,
	}
	pf.scratch = make([]byte, pf.physSize)
	pf.headerDirty = true
	if err := pf.writeHeader(); err != nil {
		f.Close()
		o.FS.Remove(path)
		return nil, err
	}
	return pf, nil
}

// Open opens an existing paged file. If an undo journal from a crashed
// transaction exists next to the file, Open refuses with ErrJournalPresent:
// the caller must ReplayJournal (roll back) or DiscardJournal (the commit
// completed) first — only the caller knows which, by comparing the
// journal's tag against its own commit record.
func Open(path string, opts *Options) (*File, error) {
	o := opts.withDefaults()
	if _, err := o.FS.Stat(JournalPath(path)); err == nil {
		return nil, fmt.Errorf("%w: %s", ErrJournalPresent, JournalPath(path))
	}
	f, err := o.FS.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	pf := &File{
		fsys: o.FS,
		f:    f,
		path: path,
		pool: make(map[PageID]*Page),
	}
	if err := pf.readHeader(); err != nil {
		f.Close()
		return nil, err
	}
	if opts != nil && opts.PageSize != 0 && opts.PageSize != pf.pageSize {
		f.Close()
		return nil, fmt.Errorf("pager: %s has page size %d, expected %d", path, pf.pageSize, opts.PageSize)
	}
	pf.capacity = o.PoolPages
	return pf, nil
}

// headerPayload renders the header fields into a full page payload.
func (pf *File) headerPayload(buf []byte) {
	clear(buf)
	copy(buf[0:4], headerMagic)
	binary.BigEndian.PutUint16(buf[4:6], headerVersion)
	binary.BigEndian.PutUint32(buf[6:10], uint32(pf.pageSize))
	binary.BigEndian.PutUint32(buf[10:14], pf.numPages)
	binary.BigEndian.PutUint32(buf[14:18], uint32(pf.freeHead))
	binary.BigEndian.PutUint16(buf[18:20], uint16(pf.metaLen))
	copy(buf[headerFixed:], pf.meta[:])
}

func (pf *File) writeHeader() error {
	buf := make([]byte, pf.pageSize)
	pf.headerPayload(buf)
	if err := pf.writePhysical(0, buf); err != nil {
		return fmt.Errorf("pager: writing header: %w", err)
	}
	pf.stats.writes.Add(1)
	mWrites.Inc()
	pf.headerDirty = false
	return nil
}

// readHeader bootstraps the header: a prefix read discovers the page size,
// then the full physical header page is read back and checksum-verified.
func (pf *File) readHeader() error {
	var fixed [headerFixed + MaxMetaLen]byte
	if n, err := pf.f.ReadAt(fixed[:], 0); err != nil && err != io.EOF {
		return fmt.Errorf("pager: reading header: %w", err)
	} else if n < headerFixed {
		return fmt.Errorf("pager: %s: truncated header (%d bytes)", pf.path, n)
	}
	if string(fixed[0:4]) != headerMagic {
		return fmt.Errorf("pager: %s: bad magic %q", pf.path, fixed[0:4])
	}
	if v := binary.BigEndian.Uint16(fixed[4:6]); v != headerVersion {
		return fmt.Errorf("pager: %s: unsupported format version %d (want %d; rebuild the store)", pf.path, v, headerVersion)
	}
	pf.pageSize = int(binary.BigEndian.Uint32(fixed[6:10]))
	if pf.pageSize < MinPageSize {
		return fmt.Errorf("pager: %s: corrupt page size %d", pf.path, pf.pageSize)
	}
	pf.physSize = pf.pageSize + TrailerLen
	pf.scratch = make([]byte, pf.physSize)

	// Re-read the whole header page with checksum verification.
	payload := make([]byte, pf.pageSize)
	if err := pf.readPhysical(0, payload); err != nil {
		return err
	}
	pf.stats.reads.Add(1)
	mReads.Inc()
	pf.numPages = binary.BigEndian.Uint32(payload[10:14])
	pf.freeHead = PageID(binary.BigEndian.Uint32(payload[14:18]))
	pf.metaLen = int(binary.BigEndian.Uint16(payload[18:20]))
	if pf.metaLen > MaxMetaLen {
		return fmt.Errorf("pager: %s: corrupt meta length %d", pf.path, pf.metaLen)
	}
	copy(pf.meta[:], payload[headerFixed:headerFixed+MaxMetaLen])
	return nil
}

// PageSize returns the page size in bytes.
func (pf *File) PageSize() int { return pf.pageSize }

// NumPages returns the number of data pages ever allocated (including pages
// currently on the free list).
func (pf *File) NumPages() int {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	return int(pf.numPages)
}

// Stats returns a snapshot of the I/O counters. It takes no lock: the
// counters are atomics, so it is safe (and cheap) to call concurrently with
// I/O on any goroutine.
func (pf *File) Stats() Stats {
	return pf.stats.snapshot()
}

// ResetStats zeroes the I/O counters (used between benchmark phases).
func (pf *File) ResetStats() {
	pf.stats.reset()
}

// Meta returns a copy of the client meta area. In a versioned file this is
// the writer's view: the open transaction's meta if one is open, the
// current version's otherwise (meta is versioned alongside the page table,
// not stored in the file header).
func (pf *File) Meta() []byte {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if pf.vs != nil {
		if pf.vs.tx != nil {
			return append([]byte(nil), pf.vs.tx.meta...)
		}
		return append([]byte(nil), pf.vs.cur.meta...)
	}
	out := make([]byte, pf.metaLen)
	copy(out, pf.meta[:pf.metaLen])
	return out
}

// SetMeta replaces the client meta area (at most MaxMetaLen bytes) and
// schedules a header write on the next Flush. In a versioned file the meta
// belongs to the open copy-on-write transaction and becomes visible to
// readers only when the transaction is published.
func (pf *File) SetMeta(b []byte) error {
	if len(b) > MaxMetaLen {
		return fmt.Errorf("pager: meta too large: %d > %d", len(b), MaxMetaLen)
	}
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if pf.closed {
		return ErrClosed
	}
	if pf.vs != nil {
		if pf.vs.tx == nil {
			return fmt.Errorf("pager: SetMeta on versioned file outside a transaction")
		}
		pf.vs.tx.meta = append([]byte(nil), b...)
		return nil
	}
	pf.meta = [MaxMetaLen]byte{}
	copy(pf.meta[:], b)
	pf.metaLen = len(b)
	pf.headerDirty = true
	return nil
}

func (pf *File) pageOffset(id PageID) int64 {
	return int64(id) * int64(pf.physSize)
}

// writePhysical stages payload plus its checksum trailer and writes the
// physical page. Caller holds mu.
func (pf *File) writePhysical(id PageID, payload []byte) error {
	copy(pf.scratch, payload)
	binary.BigEndian.PutUint32(pf.scratch[pf.pageSize:], crc32.Checksum(payload, crcTable))
	clear(pf.scratch[pf.pageSize+4 : pf.physSize])
	if _, err := pf.f.WriteAt(pf.scratch, pf.pageOffset(id)); err != nil {
		return fmt.Errorf("pager: writing page %d: %w", id, err)
	}
	return nil
}

// readPhysical reads the physical page id into payload, verifying the
// checksum trailer. A page at or beyond EOF, or one that is entirely zero
// (allocated but never written), reads back as zeroes. Caller holds mu.
func (pf *File) readPhysical(id PageID, payload []byte) error {
	n, err := pf.f.ReadAt(pf.scratch, pf.pageOffset(id))
	if err != nil && err != io.EOF {
		return fmt.Errorf("pager: reading page %d: %w", id, err)
	}
	if n == 0 {
		clear(payload)
		return nil
	}
	if n == pf.physSize {
		stored := binary.BigEndian.Uint32(pf.scratch[pf.pageSize:])
		if crc32.Checksum(pf.scratch[:pf.pageSize], crcTable) == stored {
			copy(payload, pf.scratch[:pf.pageSize])
			return nil
		}
	}
	// Short read at the file tail, or a full page failing its CRC: an
	// all-zero image is a never-written page; anything else is damage.
	if allZero(pf.scratch[:n]) {
		clear(payload)
		return nil
	}
	return fmt.Errorf("%w: page %d of %s", ErrChecksum, id, pf.path)
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// lruRemove unlinks p from the LRU list.
func (pf *File) lruRemove(p *Page) {
	if p.prev != nil {
		p.prev.next = p.next
	} else if pf.lruHead == p {
		pf.lruHead = p.next
	}
	if p.next != nil {
		p.next.prev = p.prev
	} else if pf.lruTail == p {
		pf.lruTail = p.prev
	}
	p.prev, p.next = nil, nil
}

// lruPush appends p as most-recently-used.
func (pf *File) lruPush(p *Page) {
	p.prev = pf.lruTail
	p.next = nil
	if pf.lruTail != nil {
		pf.lruTail.next = p
	}
	pf.lruTail = p
	if pf.lruHead == nil {
		pf.lruHead = p
	}
}

// evictOne writes back and removes the least-recently-used unpinned frame.
func (pf *File) evictOne() error {
	victim := pf.lruHead
	if victim == nil {
		return ErrPoolExhausted
	}
	if victim.dirty {
		if err := pf.writePage(victim); err != nil {
			return err
		}
	}
	pf.lruRemove(victim)
	delete(pf.pool, victim.id)
	return nil
}

func (pf *File) writePage(p *Page) error {
	if pf.tx != nil {
		if err := pf.tx.ensureJournaled(pf, p.id); err != nil {
			return err
		}
		if err := pf.tx.flush(pf); err != nil {
			return err
		}
	}
	if err := pf.writePhysical(p.id, p.data); err != nil {
		return err
	}
	pf.stats.writes.Add(1)
	mWrites.Inc()
	p.dirty = false
	return nil
}

// frame returns a pinned frame for physical page id, loading from disk when
// load is true, zero-filling otherwise. logical is the client-visible id
// recorded on a freshly created frame (equal to id in plain files).
func (pf *File) frame(id, logical PageID, load bool) (*Page, error) {
	if p, ok := pf.pool[id]; ok {
		if p.pins == 0 {
			pf.lruRemove(p)
		}
		p.pins++
		pf.stats.hits.Add(1)
		mHits.Inc()
		return p, nil
	}
	for len(pf.pool) >= pf.capacity {
		if err := pf.evictOne(); err != nil {
			return nil, err
		}
	}
	p := &Page{id: id, logical: logical, data: make([]byte, pf.pageSize), pins: 1}
	if load {
		if err := pf.readPhysical(id, p.data); err != nil {
			return nil, err
		}
		pf.stats.reads.Add(1)
		mReads.Inc()
	}
	pf.pool[id] = p
	return p, nil
}

// Get returns page id pinned. The caller must Unpin it. In a versioned file
// id is a logical id resolved through the writer's view: the open
// copy-on-write transaction if there is one, the current version otherwise.
func (pf *File) Get(id PageID) (*Page, error) {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if pf.closed {
		return nil, ErrClosed
	}
	if pf.vs != nil {
		phys, err := pf.vs.resolveWriter(id)
		if err != nil {
			return nil, fmt.Errorf("%w (%s)", err, pf.path)
		}
		return pf.frame(phys, id, true)
	}
	if id == InvalidPage || uint32(id) > pf.numPages {
		return nil, fmt.Errorf("%w: %d (have %d)", ErrPageOutOfRange, id, pf.numPages)
	}
	return pf.frame(id, id, true)
}

// GetMut returns page id pinned for modification. In a plain file it is
// exactly Get. In a versioned file it requires an open copy-on-write
// transaction: the first GetMut of a committed page within a transaction
// copies it onto a fresh physical page (leaving every older version's image
// untouched), and subsequent GetMuts return the private copy.
func (pf *File) GetMut(id PageID) (*Page, error) {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if pf.closed {
		return nil, ErrClosed
	}
	if pf.vs == nil {
		if id == InvalidPage || uint32(id) > pf.numPages {
			return nil, fmt.Errorf("%w: %d (have %d)", ErrPageOutOfRange, id, pf.numPages)
		}
		return pf.frame(id, id, true)
	}
	return pf.getMutLocked(id)
}

// Allocate returns a new zeroed page, pinned and marked dirty. The caller
// must Unpin it.
func (pf *File) Allocate() (*Page, error) {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if pf.closed {
		return nil, ErrClosed
	}
	if pf.vs != nil {
		return pf.allocateVersionedLocked()
	}
	var id PageID
	if pf.freeHead != InvalidPage {
		// Pop the free list: the first 4 bytes of a free page hold the
		// next free page id.
		id = pf.freeHead
		p, err := pf.frame(id, id, true)
		if err != nil {
			return nil, err
		}
		pf.freeHead = PageID(binary.BigEndian.Uint32(p.data[0:4]))
		pf.headerDirty = true
		clear(p.data)
		p.dirty = true
		pf.stats.allocs.Add(1)
		mAllocs.Inc()
		return p, nil
	}
	pf.numPages++
	pf.headerDirty = true
	id = PageID(pf.numPages)
	p, err := pf.frame(id, id, false)
	if err != nil {
		pf.numPages--
		return nil, err
	}
	p.dirty = true
	pf.stats.allocs.Add(1)
	mAllocs.Inc()
	return p, nil
}

// Free returns page id to the free list. The page must not be pinned by the
// caller (or anyone else). In a versioned file the logical id is released
// from the open transaction's table; the physical page is recycled only
// when no committed version references it anymore.
func (pf *File) Free(id PageID) error {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if pf.closed {
		return ErrClosed
	}
	if pf.vs != nil {
		return pf.freeVersionedLocked(id)
	}
	if id == InvalidPage || uint32(id) > pf.numPages {
		return fmt.Errorf("%w: %d", ErrPageOutOfRange, id)
	}
	if p, ok := pf.pool[id]; ok && p.pins > 0 {
		return fmt.Errorf("pager: freeing pinned page %d", id)
	}
	p, err := pf.frame(id, id, false)
	if err != nil {
		return err
	}
	clear(p.data)
	binary.BigEndian.PutUint32(p.data[0:4], uint32(pf.freeHead))
	p.dirty = true
	pf.freeHead = id
	pf.headerDirty = true
	pf.unpin(p)
	pf.stats.frees.Add(1)
	mFrees.Inc()
	return nil
}

// Unpin releases one pin on p. When the pin count reaches zero the frame
// becomes evictable.
func (pf *File) Unpin(p *Page) {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	pf.unpin(p)
}

func (pf *File) unpin(p *Page) {
	if p.pins <= 0 {
		panic(fmt.Sprintf("pager: unpin of unpinned page %d", p.id))
	}
	p.pins--
	if p.pins == 0 {
		pf.lruPush(p)
	}
}

// Flush writes all dirty frames and the header to the OS and syncs.
func (pf *File) Flush() error {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if pf.closed {
		return ErrClosed
	}
	return pf.flushLocked()
}

func (pf *File) flushLocked() error {
	// Under a transaction, journal every dirty page's pre-image first so
	// the whole batch costs one journal fsync instead of one per page.
	if pf.tx != nil {
		for _, p := range pf.pool {
			if p.dirty {
				if err := pf.tx.ensureJournaled(pf, p.id); err != nil {
					return err
				}
			}
		}
		if err := pf.tx.flush(pf); err != nil {
			return err
		}
	}
	for _, p := range pf.pool {
		if p.dirty {
			if err := pf.writePage(p); err != nil {
				return err
			}
		}
	}
	// A versioned file never rewrites its header page: there is no undo
	// journal to roll back a torn in-place write, and nothing in the header
	// is mutable in versioned mode anyway — meta lives in the version
	// sidecar and the page count is re-derived from the file size at
	// InstallVersion.
	if pf.headerDirty && pf.vs == nil {
		if err := pf.writeHeader(); err != nil {
			return err
		}
	}
	return pf.f.Sync()
}

// Close flushes and closes the file. Pinned pages are a programming error
// and are reported.
func (pf *File) Close() error {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if pf.closed {
		return nil
	}
	var pinned int
	for _, p := range pf.pool {
		if p.pins > 0 {
			pinned++
		}
	}
	if err := pf.flushLocked(); err != nil {
		return err
	}
	pf.closed = true
	err := pf.f.Close()
	if pf.tx != nil {
		// Closing with an open transaction keeps the journal on disk: the
		// next Open sees ErrJournalPresent and the owner rolls back.
		pf.tx.jf.Close()
		pf.tx = nil
	}
	if pinned > 0 && err == nil {
		err = fmt.Errorf("pager: closed with %d pinned page(s)", pinned)
	}
	return err
}

// VerifyPages reads every physical page (header included) directly from
// disk and checks its checksum trailer, bypassing the buffer pool. It
// reports each damaged page through report and returns the number of pages
// it examined. The file must be quiescent (no dirty pool frames); call it
// on a freshly opened or freshly flushed file.
func (pf *File) VerifyPages(report func(id PageID, err error)) (int, error) {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if pf.closed {
		return 0, ErrClosed
	}
	payload := make([]byte, pf.pageSize)
	checked := 0
	for id := PageID(0); uint32(id) <= pf.numPages; id++ {
		if err := pf.readPhysical(id, payload); err != nil {
			report(id, err)
		}
		checked++
	}
	return checked, nil
}

// Source is the read-only page access surface shared by *File (the
// writer's live view) and *Snapshot (a pinned committed version). Tree
// navigation code works against a Source so the same structure can be read
// through either.
type Source interface {
	Get(id PageID) (*Page, error)
	Unpin(p *Page)
	PageSize() int
}

var (
	_ Source = (*File)(nil)
	_ Source = (*Snapshot)(nil)
)

// Path returns the underlying file path.
func (pf *File) Path() string { return pf.path }

// PoolCapacity returns the buffer-pool capacity in frames.
func (pf *File) PoolCapacity() int { return pf.capacity }
