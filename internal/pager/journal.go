// Undo journal: crash safety for in-place page updates.
//
// The pager's clients mostly build files append-only and switch them in
// atomically (see internal/core's manifest), but the structure-string file
// is updated in place by Insert/Delete. To make those updates atomic we use
// a rollback journal, SQLite-style:
//
//  1. BeginUpdate creates <path>.journal, writes a checksummed header
//     capturing the pre-transaction file header (numPages, freeHead, meta)
//     and an owner-supplied tag, fsyncs it, and fsyncs the directory.
//  2. Before a committed page is overwritten for the first time, its
//     on-disk physical image is appended to the journal and the journal is
//     fsynced — only then may the data write proceed. Pages allocated
//     inside the transaction need no pre-image; rollback truncates them
//     away.
//  3. CommitUpdate flushes and fsyncs the data file, then deletes the
//     journal and fsyncs the directory. The unlink is the commit point.
//
// After a crash, a surviving journal means the transaction did not commit…
// usually. The exception: the owner's commit protocol may have completed
// (its manifest renamed into place) with the crash landing between that
// rename and the journal unlink. The journal's tag exists to disambiguate —
// internal/core tags each transaction with the epoch it will commit, and on
// recovery replays the journal only when its tag is newer than the
// manifest's epoch, discarding it otherwise. Hence Open refuses to open a
// file with a journal present (ErrJournalPresent) instead of deciding
// unilaterally; InspectJournal / ReplayJournal / DiscardJournal are the
// caller's tools.
//
// Journal layout (all integers big-endian):
//
//	header: "NKJ1" | tag u64 | pageSize u32 | numPages u32 | freeHead u32 |
//	        metaLen u16 | meta[64] | crc32c u32       (= 90 bytes)
//	entry:  pageID u32 | physical page image | crc32c u32
//
// A torn header means the crash hit BeginUpdate itself — no data write can
// have happened (they are ordered after the header fsync), so the journal
// is discarded. A torn trailing entry is likewise ignored: the data write
// it would have protected cannot have happened before the entry was synced.
package pager

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"nok/internal/vfs"
)

const (
	journalMagic     = "NKJ1"
	journalHeaderLen = 4 + 8 + 4 + 4 + 4 + 2 + MaxMetaLen + 4
)

// JournalPath returns the undo-journal path for a pager file path.
func JournalPath(path string) string { return path + ".journal" }

// journalTx is the in-memory state of an open update transaction.
type journalTx struct {
	jf          vfs.File
	jpath       string
	oldNumPages uint32
	journaled   map[PageID]bool
	pending     []byte // entries buffered but not yet written+synced
	off         int64  // journal file length (written bytes)
}

// BeginUpdate opens an undo-journal transaction tagged with tag (the owner's
// commit epoch). Until CommitUpdate, every overwrite of a pre-existing page
// is preceded by a durable pre-image in the journal, so a crash can be
// rolled back with ReplayJournal. Only one transaction may be open.
func (pf *File) BeginUpdate(tag uint64) error {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if pf.closed {
		return ErrClosed
	}
	if pf.tx != nil {
		return ErrInTx
	}
	if pf.vs != nil {
		return fmt.Errorf("pager: %s is versioned; use BeginCOW instead of the undo journal", pf.path)
	}
	jpath := JournalPath(pf.path)
	jf, err := pf.fsys.OpenFile(jpath, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("pager: creating journal: %w", err)
	}
	hdr := make([]byte, journalHeaderLen)
	copy(hdr[0:4], journalMagic)
	binary.BigEndian.PutUint64(hdr[4:12], tag)
	binary.BigEndian.PutUint32(hdr[12:16], uint32(pf.pageSize))
	binary.BigEndian.PutUint32(hdr[16:20], pf.numPages)
	binary.BigEndian.PutUint32(hdr[20:24], uint32(pf.freeHead))
	binary.BigEndian.PutUint16(hdr[24:26], uint16(pf.metaLen))
	copy(hdr[26:26+MaxMetaLen], pf.meta[:])
	binary.BigEndian.PutUint32(hdr[journalHeaderLen-4:], crc32.Checksum(hdr[:journalHeaderLen-4], crcTable))
	fail := func(err error) error {
		jf.Close()
		pf.fsys.Remove(jpath)
		return err
	}
	if _, err := jf.WriteAt(hdr, 0); err != nil {
		return fail(fmt.Errorf("pager: writing journal header: %w", err))
	}
	if err := jf.Sync(); err != nil {
		return fail(fmt.Errorf("pager: syncing journal: %w", err))
	}
	// Make the journal's directory entry durable before any data write: a
	// synced journal that vanishes in a crash would leave data writes
	// unprotected.
	if err := pf.fsys.SyncDir(filepath.Dir(pf.path)); err != nil {
		return fail(fmt.Errorf("pager: syncing journal directory: %w", err))
	}
	pf.tx = &journalTx{
		jf:          jf,
		jpath:       jpath,
		oldNumPages: pf.numPages,
		journaled:   make(map[PageID]bool),
		off:         journalHeaderLen,
	}
	return nil
}

// ensureJournaled appends page id's on-disk pre-image to the pending buffer
// if it needs one: pages that existed before the transaction and have not
// been journaled yet. Caller holds pf.mu.
func (tx *journalTx) ensureJournaled(pf *File, id PageID) error {
	if uint32(id) > tx.oldNumPages || tx.journaled[id] {
		return nil
	}
	// Raw read, no checksum verification: whatever bytes are on disk are
	// the bytes rollback must restore (an all-zero never-written page
	// round-trips as zeroes).
	img := make([]byte, pf.physSize)
	if n, err := pf.f.ReadAt(img, pf.pageOffset(id)); err != nil && err != io.EOF {
		return fmt.Errorf("pager: journaling page %d: %w", id, err)
	} else if n < pf.physSize {
		clear(img[n:])
	}
	entry := make([]byte, 4+pf.physSize+4)
	binary.BigEndian.PutUint32(entry[0:4], uint32(id))
	copy(entry[4:], img)
	binary.BigEndian.PutUint32(entry[4+pf.physSize:], crc32.Checksum(entry[:4+pf.physSize], crcTable))
	tx.pending = append(tx.pending, entry...)
	tx.journaled[id] = true
	return nil
}

// flush makes all pending pre-images durable. Caller holds pf.mu. Data
// writes may only proceed after flush returns nil.
func (tx *journalTx) flush(pf *File) error {
	if len(tx.pending) == 0 {
		return nil
	}
	if _, err := tx.jf.WriteAt(tx.pending, tx.off); err != nil {
		return fmt.Errorf("pager: writing journal: %w", err)
	}
	tx.off += int64(len(tx.pending))
	tx.pending = tx.pending[:0]
	return tx.jf.Sync()
}

// CommitUpdate flushes all dirty state to the data file, fsyncs it, and
// removes the journal — the commit point. On error the journal is left in
// place so the transaction can be rolled back after restart.
func (pf *File) CommitUpdate() error {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if pf.closed {
		return ErrClosed
	}
	if pf.tx == nil {
		return errors.New("pager: CommitUpdate without BeginUpdate")
	}
	if err := pf.flushLocked(); err != nil {
		return err
	}
	tx := pf.tx
	if err := tx.jf.Close(); err != nil {
		return fmt.Errorf("pager: closing journal: %w", err)
	}
	if err := pf.fsys.Remove(tx.jpath); err != nil {
		return fmt.Errorf("pager: removing journal: %w", err)
	}
	if err := pf.fsys.SyncDir(filepath.Dir(pf.path)); err != nil {
		return fmt.Errorf("pager: syncing directory after commit: %w", err)
	}
	pf.tx = nil
	return nil
}

// InTx reports whether an update transaction is open.
func (pf *File) InTx() bool {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	return pf.tx != nil
}

// InspectJournal reports whether an undo journal exists for the pager file
// at path and, if its header is intact, the tag it was begun with. A
// journal with a torn header is reported with ok=false: it carries no
// replayable state (data writes are ordered after the header fsync) and
// may be discarded.
func InspectJournal(fsys vfs.FS, path string) (tag uint64, exists, ok bool, err error) {
	jpath := JournalPath(path)
	if _, serr := fsys.Stat(jpath); serr != nil {
		if errors.Is(serr, os.ErrNotExist) {
			return 0, false, false, nil
		}
		return 0, false, false, serr
	}
	jf, err := fsys.OpenFile(jpath, os.O_RDONLY, 0)
	if err != nil {
		return 0, true, false, err
	}
	defer jf.Close()
	hdr := make([]byte, journalHeaderLen)
	if _, rerr := jf.ReadAt(hdr, 0); rerr != nil {
		if rerr == io.EOF || errors.Is(rerr, io.ErrUnexpectedEOF) {
			return 0, true, false, nil // torn header
		}
		return 0, true, false, rerr
	}
	if string(hdr[0:4]) != journalMagic ||
		binary.BigEndian.Uint32(hdr[journalHeaderLen-4:]) != crc32.Checksum(hdr[:journalHeaderLen-4], crcTable) {
		return 0, true, false, nil // torn header
	}
	return binary.BigEndian.Uint64(hdr[4:12]), true, true, nil
}

// DiscardJournal removes the journal for path (used when the owner
// determines the transaction actually committed, or the journal header is
// torn). Missing journal is not an error.
func DiscardJournal(fsys vfs.FS, path string) error {
	jpath := JournalPath(path)
	if err := fsys.Remove(jpath); err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	return fsys.SyncDir(filepath.Dir(path))
}

// ReplayJournal rolls the pager file at path back to its pre-transaction
// state: every intact journal entry's pre-image is written back, the old
// header is restored, the file is truncated to its old length, and the
// journal is removed. A torn trailing entry is ignored (its data write
// cannot have happened). Safe to call repeatedly — replay is idempotent
// until the journal is gone.
func ReplayJournal(fsys vfs.FS, path string) error {
	jpath := JournalPath(path)
	jraw, err := vfs.ReadFile(fsys, jpath)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("pager: reading journal: %w", err)
	}
	if len(jraw) < journalHeaderLen ||
		string(jraw[0:4]) != journalMagic ||
		binary.BigEndian.Uint32(jraw[journalHeaderLen-4:journalHeaderLen]) != crc32.Checksum(jraw[:journalHeaderLen-4], crcTable) {
		// Torn header: the crash hit BeginUpdate; no data writes happened.
		return DiscardJournal(fsys, path)
	}
	pageSize := int(binary.BigEndian.Uint32(jraw[12:16]))
	numPages := binary.BigEndian.Uint32(jraw[16:20])
	freeHead := binary.BigEndian.Uint32(jraw[20:24])
	metaLen := int(binary.BigEndian.Uint16(jraw[24:26]))
	if pageSize < MinPageSize || metaLen > MaxMetaLen {
		return fmt.Errorf("pager: journal %s: corrupt header", jpath)
	}
	var meta [MaxMetaLen]byte
	copy(meta[:], jraw[26:26+MaxMetaLen])
	physSize := pageSize + TrailerLen

	df, err := fsys.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("pager: opening %s for replay: %w", path, err)
	}
	defer df.Close()

	// Restore pre-images from intact entries.
	entryLen := 4 + physSize + 4
	for off := journalHeaderLen; off+entryLen <= len(jraw); off += entryLen {
		e := jraw[off : off+entryLen]
		if binary.BigEndian.Uint32(e[4+physSize:]) != crc32.Checksum(e[:4+physSize], crcTable) {
			break // torn tail; nothing beyond it was synced
		}
		id := PageID(binary.BigEndian.Uint32(e[0:4]))
		if _, err := df.WriteAt(e[4:4+physSize], int64(id)*int64(physSize)); err != nil {
			return fmt.Errorf("pager: replaying page %d: %w", id, err)
		}
	}

	// Restore the old header page.
	hdrPayload := make([]byte, pageSize)
	copy(hdrPayload[0:4], headerMagic)
	binary.BigEndian.PutUint16(hdrPayload[4:6], headerVersion)
	binary.BigEndian.PutUint32(hdrPayload[6:10], uint32(pageSize))
	binary.BigEndian.PutUint32(hdrPayload[10:14], numPages)
	binary.BigEndian.PutUint32(hdrPayload[14:18], freeHead)
	binary.BigEndian.PutUint16(hdrPayload[18:20], uint16(metaLen))
	copy(hdrPayload[headerFixed:], meta[:])
	phys := make([]byte, physSize)
	copy(phys, hdrPayload)
	binary.BigEndian.PutUint32(phys[pageSize:], crc32.Checksum(hdrPayload, crcTable))
	if _, err := df.WriteAt(phys, 0); err != nil {
		return fmt.Errorf("pager: restoring header: %w", err)
	}

	// Drop pages allocated by the aborted transaction.
	if err := df.Truncate(int64(numPages+1) * int64(physSize)); err != nil {
		return fmt.Errorf("pager: truncating to pre-transaction length: %w", err)
	}
	if err := df.Sync(); err != nil {
		return fmt.Errorf("pager: syncing after replay: %w", err)
	}
	return DiscardJournal(fsys, path)
}
