package pager

import (
	"encoding/binary"
	"sync"
	"testing"
)

// TestConcurrentReaders hammers Get/Unpin from many goroutines while the
// pool is smaller than the page set, exercising eviction under contention.
// Run with -race.
func TestConcurrentReaders(t *testing.T) {
	pf := newFile(t, &Options{PageSize: 256, PoolPages: 8})
	const pages = 64
	for i := 1; i <= pages; i++ {
		p, err := pf.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		binary.BigEndian.PutUint32(p.Data(), uint32(p.ID()))
		p.MarkDirty()
		pf.Unpin(p)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := PageID(1 + (seed*31+i*17)%pages)
				p, err := pf.Get(id)
				if err != nil {
					t.Error(err)
					return
				}
				if got := binary.BigEndian.Uint32(p.Data()); got != uint32(id) {
					t.Errorf("page %d holds %d", id, got)
					pf.Unpin(p)
					return
				}
				pf.Unpin(p)
			}
		}(w)
	}
	wg.Wait()
}

// TestConcurrentMixedWorkload mixes readers with an allocating writer.
func TestConcurrentMixedWorkload(t *testing.T) {
	pf := newFile(t, &Options{PageSize: 256, PoolPages: 16})
	p, err := pf.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	pf.Unpin(p)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := pf.NumPages()
				id := PageID(1 + i%n)
				i++
				p, err := pf.Get(id)
				if err != nil {
					t.Error(err)
					return
				}
				pf.Unpin(p)
			}
		}()
	}
	for i := 0; i < 200; i++ {
		p, err := pf.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		p.MarkDirty()
		pf.Unpin(p)
	}
	close(stop)
	wg.Wait()
	if pf.NumPages() != 201 {
		t.Errorf("pages = %d", pf.NumPages())
	}
}
