package pager

import (
	"errors"
	"path/filepath"
	"testing"
)

// newVersioned creates a versioned file with an initial committed epoch 1
// containing n pages, each filled with its logical id. Returns the file and
// the epoch-1 sidecar bytes.
func newVersioned(t *testing.T, n int) (*File, []byte) {
	t.Helper()
	pf, err := Create(filepath.Join(t.TempDir(), "v.pg"), &Options{PageSize: MinPageSize, PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pf.Close() })
	if err := pf.InitVersioning(); err != nil {
		t.Fatal(err)
	}
	if err := pf.BeginCOW(1); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		p, err := pf.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		if p.ID() != PageID(i) {
			t.Fatalf("allocated logical %d, want %d", p.ID(), i)
		}
		fill(p.Data(), byte(i))
		p.MarkDirty()
		pf.Unpin(p)
	}
	side, err := pf.SealCOW()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pf.Publish(); err != nil {
		t.Fatal(err)
	}
	return pf, side
}

func fill(b []byte, v byte) {
	for i := range b {
		b[i] = v
	}
}

func checkFilled(t *testing.T, b []byte, v byte, what string) {
	t.Helper()
	for i := range b {
		if b[i] != v {
			t.Fatalf("%s: byte %d is %d, want %d", what, i, b[i], v)
		}
	}
}

func TestCOWSnapshotIsolation(t *testing.T) {
	pf, _ := newVersioned(t, 3)

	snap, err := pf.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Epoch() != 1 {
		t.Fatalf("snapshot epoch %d, want 1", snap.Epoch())
	}

	// Epoch 2 rewrites page 2 and frees page 3.
	if err := pf.BeginCOW(2); err != nil {
		t.Fatal(err)
	}
	p, err := pf.GetMut(2)
	if err != nil {
		t.Fatal(err)
	}
	fill(p.Data(), 0xee)
	p.MarkDirty()
	pf.Unpin(p)
	if err := pf.Free(3); err != nil {
		t.Fatal(err)
	}
	if _, err := pf.SealCOW(); err != nil {
		t.Fatal(err)
	}
	if _, err := pf.Publish(); err != nil {
		t.Fatal(err)
	}

	// The snapshot still sees the epoch-1 images, including the freed page.
	for i := 1; i <= 3; i++ {
		p, err := snap.Get(PageID(i))
		if err != nil {
			t.Fatalf("snapshot get %d: %v", i, err)
		}
		checkFilled(t, p.Data(), byte(i), "snapshot page")
		snap.Unpin(p)
	}
	// The writer's view sees the new epoch.
	p, err = pf.Get(2)
	if err != nil {
		t.Fatal(err)
	}
	checkFilled(t, p.Data(), 0xee, "current page 2")
	pf.Unpin(p)
	if _, err := pf.Get(3); !errors.Is(err, ErrPageOutOfRange) {
		t.Fatalf("current get of freed page: err=%v, want ErrPageOutOfRange", err)
	}

	// Epoch 1 is destroyed when the snapshot releases; its private pages
	// (old physical of logical 2, and logical 3's page) become free.
	if got := pf.VersionInfo().LiveVersions; got != 2 {
		t.Fatalf("live versions %d, want 2", got)
	}
	snap.Release()
	vi := pf.VersionInfo()
	if vi.LiveVersions != 1 {
		t.Fatalf("live versions after release %d, want 1", vi.LiveVersions)
	}
	if vi.FreePhysical != 2 {
		t.Fatalf("free physical %d, want 2", vi.FreePhysical)
	}

	// The next epoch recycles those physicals instead of growing the file.
	before := pf.NumPages()
	if err := pf.BeginCOW(3); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		p, err := pf.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		p.MarkDirty()
		pf.Unpin(p)
	}
	if _, err := pf.SealCOW(); err != nil {
		t.Fatal(err)
	}
	if _, err := pf.Publish(); err != nil {
		t.Fatal(err)
	}
	if pf.NumPages() != before {
		t.Fatalf("file grew to %d pages, want reuse at %d", pf.NumPages(), before)
	}
}

func TestCOWAbortRollsBack(t *testing.T) {
	pf, _ := newVersioned(t, 2)
	if err := pf.BeginCOW(2); err != nil {
		t.Fatal(err)
	}
	p, err := pf.GetMut(1)
	if err != nil {
		t.Fatal(err)
	}
	fill(p.Data(), 0xaa)
	p.MarkDirty()
	pf.Unpin(p)
	fresh, err := pf.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	fresh.MarkDirty()
	pf.Unpin(fresh)
	if err := pf.AbortCOW(); err != nil {
		t.Fatal(err)
	}
	p, err = pf.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	checkFilled(t, p.Data(), 1, "page 1 after abort")
	pf.Unpin(p)
	if pf.VersionInfo().Epoch != 1 {
		t.Fatalf("epoch advanced past abort: %d", pf.VersionInfo().Epoch)
	}
	if pf.InCOW() {
		t.Fatal("transaction still open after abort")
	}
}

func TestInstallVersionDerivesFreeList(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "v.pg")
	pf, err := Create(path, &Options{PageSize: MinPageSize})
	if err != nil {
		t.Fatal(err)
	}
	if err := pf.InitVersioning(); err != nil {
		t.Fatal(err)
	}
	if err := pf.BeginCOW(1); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		p, err := pf.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		fill(p.Data(), byte(i))
		p.MarkDirty()
		pf.Unpin(p)
	}
	side, err := pf.SealCOW()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pf.Publish(); err != nil {
		t.Fatal(err)
	}

	// A second, uncommitted transaction dirties pages and grows the file —
	// then the process "crashes" (close without publish).
	if err := pf.BeginCOW(2); err != nil {
		t.Fatal(err)
	}
	p, err := pf.GetMut(3)
	if err != nil {
		t.Fatal(err)
	}
	fill(p.Data(), 0xbb)
	p.MarkDirty()
	pf.Unpin(p)
	if err := pf.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := pf.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with the committed epoch-1 sidecar: the COW copy is orphaned
	// and swept into the free list; committed pages read back intact.
	pf2, err := Open(path, &Options{PageSize: MinPageSize})
	if err != nil {
		t.Fatal(err)
	}
	defer pf2.Close()
	epoch, err := pf2.InstallVersion(side)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 {
		t.Fatalf("installed epoch %d, want 1", epoch)
	}
	if got := pf2.OrphanPhysicalPages(); got != 1 {
		t.Fatalf("orphan physical pages %d, want 1", got)
	}
	for i := 1; i <= 4; i++ {
		p, err := pf2.Get(PageID(i))
		if err != nil {
			t.Fatal(err)
		}
		checkFilled(t, p.Data(), byte(i), "reopened page")
		pf2.Unpin(p)
	}
	issues := 0
	if _, err := pf2.VerifyVersionPages(func(PageID, error) { issues++ }); err != nil {
		t.Fatal(err)
	}
	if issues != 0 {
		t.Fatalf("verify found %d issues on committed pages", issues)
	}
}

func TestVersionedRefusesJournal(t *testing.T) {
	pf, _ := newVersioned(t, 1)
	if err := pf.BeginUpdate(7); err == nil {
		t.Fatal("BeginUpdate on a versioned file should fail")
	}
}
