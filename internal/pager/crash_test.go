package pager

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nok/internal/vfs"
)

// fillPage writes a recognizable pattern into a fresh page and returns its id.
func fillPage(t *testing.T, pf *File, tag string) PageID {
	t.Helper()
	p, err := pf.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Data() {
		p.Data()[i] = byte(i)
	}
	copy(p.Data(), tag)
	p.MarkDirty()
	id := p.ID()
	pf.Unpin(p)
	return id
}

func pagePrefix(t *testing.T, pf *File, id PageID, n int) string {
	t.Helper()
	p, err := pf.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Unpin(p)
	return string(p.Data()[:n])
}

func TestChecksumDetectsFlippedPayloadByte(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.pg")
	pf, err := Create(path, &Options{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	id := fillPage(t, pf, "payload")
	if err := pf.Close(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	phys := 256 + TrailerLen
	raw[int(id)*phys+10] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	pf, err = Open(path, &Options{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	_, err = pf.Get(id)
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("Get on damaged page: err = %v, want ErrChecksum", err)
	}
	if err != nil && !bytes.Contains([]byte(err.Error()), []byte(fmt.Sprintf("page %d", id))) {
		t.Errorf("error does not name the page: %v", err)
	}
}

func TestChecksumDetectsFlippedTrailerByte(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.pg")
	pf, err := Create(path, &Options{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	id := fillPage(t, pf, "payload")
	if err := pf.Close(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	phys := 256 + TrailerLen
	raw[int(id)*phys+256] ^= 0xFF // first CRC byte
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	pf, err = Open(path, &Options{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	if _, err := pf.Get(id); !errors.Is(err, ErrChecksum) {
		t.Fatalf("Get with damaged trailer: err = %v, want ErrChecksum", err)
	}
}

func TestVerifyPagesReportsDamage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.pg")
	pf, err := Create(path, &Options{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	var ids []PageID
	for i := 0; i < 4; i++ {
		ids = append(ids, fillPage(t, pf, fmt.Sprintf("p%d", i)))
	}
	if err := pf.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	phys := 256 + TrailerLen
	raw[int(ids[2])*phys+99] ^= 0x80
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	pf, err = Open(path, &Options{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	var bad []PageID
	n, err := pf.VerifyPages(func(id PageID, err error) { bad = append(bad, id) })
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 { // header page + 4 data pages
		t.Errorf("checked %d pages, want 5", n)
	}
	if len(bad) != 1 || bad[0] != ids[2] {
		t.Errorf("damaged pages reported: %v, want [%d]", bad, ids[2])
	}
}

// TestJournalRollsBackUncommittedUpdate is the core undo-journal contract:
// crash after data writes but before commit → ReplayJournal restores the
// exact pre-transaction image.
func TestJournalRollsBackUncommittedUpdate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.pg")
	pf, err := Create(path, &Options{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	a := fillPage(t, pf, "before-a")
	b := fillPage(t, pf, "before-b")
	if err := pf.SetMeta([]byte("m1")); err != nil {
		t.Fatal(err)
	}
	if err := pf.Flush(); err != nil {
		t.Fatal(err)
	}
	preImage, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Open a transaction, overwrite both pages and the meta, allocate a
	// third, flush everything... then "crash" (close without commit).
	if err := pf.BeginUpdate(7); err != nil {
		t.Fatal(err)
	}
	for _, id := range []PageID{a, b} {
		p, err := pf.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		copy(p.Data(), "after--x")
		p.MarkDirty()
		pf.Unpin(p)
	}
	fillPage(t, pf, "new-page")
	if err := pf.SetMeta([]byte("m2")); err != nil {
		t.Fatal(err)
	}
	if err := pf.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := pf.Close(); err != nil {
		t.Fatal(err)
	}

	// The journal survives and Open refuses until it is resolved.
	if _, err := Open(path, &Options{PageSize: 256}); !errors.Is(err, ErrJournalPresent) {
		t.Fatalf("Open with live journal: err = %v, want ErrJournalPresent", err)
	}
	tag, exists, ok, err := InspectJournal(vfs.OS, path)
	if err != nil || !exists || !ok || tag != 7 {
		t.Fatalf("InspectJournal = (%d, %v, %v, %v), want (7, true, true, nil)", tag, exists, ok, err)
	}

	if err := ReplayJournal(vfs.OS, path); err != nil {
		t.Fatal(err)
	}
	postImage, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(preImage, postImage) {
		t.Fatalf("rollback did not restore the pre-transaction image (pre %d bytes, post %d bytes)", len(preImage), len(postImage))
	}

	pf, err = Open(path, &Options{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	if got := pagePrefix(t, pf, a, 8); got != "before-a" {
		t.Errorf("page a after rollback: %q", got)
	}
	if got := string(pf.Meta()); got != "m1" {
		t.Errorf("meta after rollback: %q", got)
	}
	if pf.NumPages() != 2 {
		t.Errorf("NumPages after rollback = %d, want 2", pf.NumPages())
	}
}

func TestJournalCommitDiscardsJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jc.pg")
	pf, err := Create(path, &Options{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	a := fillPage(t, pf, "before-a")
	if err := pf.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := pf.BeginUpdate(3); err != nil {
		t.Fatal(err)
	}
	p, err := pf.Get(a)
	if err != nil {
		t.Fatal(err)
	}
	copy(p.Data(), "after--a")
	p.MarkDirty()
	pf.Unpin(p)
	if err := pf.CommitUpdate(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(JournalPath(path)); !os.IsNotExist(err) {
		t.Errorf("journal still present after commit (err=%v)", err)
	}
	if err := pf.Close(); err != nil {
		t.Fatal(err)
	}
	pf, err = Open(path, &Options{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	if got := pagePrefix(t, pf, a, 8); got != "after--a" {
		t.Errorf("page a after commit: %q", got)
	}
}

// TestJournalTornHeaderDiscarded: a crash inside BeginUpdate leaves a
// half-written journal header; since data writes are ordered after the
// header fsync, the file is untouched and the journal must be discarded.
func TestJournalTornHeaderDiscarded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jt.pg")
	pf, err := Create(path, &Options{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	fillPage(t, pf, "stable")
	if err := pf.Close(); err != nil {
		t.Fatal(err)
	}
	// Fabricate a torn header: half the magic, nothing else.
	if err := os.WriteFile(JournalPath(path), []byte("NK"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, exists, ok, err := InspectJournal(vfs.OS, path)
	if err != nil || !exists || ok {
		t.Fatalf("InspectJournal on torn header = (exists=%v, ok=%v, err=%v), want (true, false, nil)", exists, ok, err)
	}
	if err := ReplayJournal(vfs.OS, path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(JournalPath(path)); !os.IsNotExist(err) {
		t.Errorf("torn journal not discarded (err=%v)", err)
	}
	pf, err = Open(path, &Options{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	pf.Close()
}

// TestJournalTornEntryReplaysPrefix: a crash mid-append leaves a torn last
// entry; replay must apply the intact prefix and ignore the tail.
func TestJournalTornEntryReplaysPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jp.pg")
	pf, err := Create(path, &Options{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	a := fillPage(t, pf, "before-a")
	b := fillPage(t, pf, "before-b")
	if err := pf.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := pf.BeginUpdate(9); err != nil {
		t.Fatal(err)
	}
	for _, id := range []PageID{a, b} {
		p, err := pf.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		copy(p.Data(), "after--x")
		p.MarkDirty()
		pf.Unpin(p)
	}
	if err := pf.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := pf.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last journal entry's trailing checksum. Entry order follows
	// flush order, so read the first (intact) entry's page id from the
	// journal itself rather than assuming which of a/b it is.
	jraw, err := os.ReadFile(JournalPath(path))
	if err != nil {
		t.Fatal(err)
	}
	firstID := PageID(binary.BigEndian.Uint32(jraw[journalHeaderLen : journalHeaderLen+4]))
	if firstID != a && firstID != b {
		t.Fatalf("first journal entry is for page %d, not one of the overwritten pages", firstID)
	}
	if err := os.WriteFile(JournalPath(path), jraw[:len(jraw)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ReplayJournal(vfs.OS, path); err != nil {
		t.Fatal(err)
	}
	pf, err = Open(path, &Options{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	// The page behind the intact first entry must be rolled back; the page
	// whose entry was torn keeps whichever image is on disk — its data
	// write cannot have happened before the entry was synced, so at pager
	// level the only guarantee is: intact entries are restored.
	if got := pagePrefix(t, pf, firstID, 8); !strings.HasPrefix(got, "before-") {
		t.Errorf("page %d after prefix replay: %q, want a pre-image", firstID, got)
	}
}

func TestBeginUpdateTwiceRejected(t *testing.T) {
	pf := newFile(t, &Options{PageSize: 256})
	if err := pf.BeginUpdate(1); err != nil {
		t.Fatal(err)
	}
	if err := pf.BeginUpdate(2); !errors.Is(err, ErrInTx) {
		t.Errorf("second BeginUpdate: err = %v, want ErrInTx", err)
	}
	if err := pf.CommitUpdate(); err != nil {
		t.Fatal(err)
	}
}
