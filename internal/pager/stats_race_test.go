package pager

import (
	"path/filepath"
	"sync"
	"testing"
)

// TestStatsConcurrentWithIO runs page reads, Stats snapshots and ResetStats
// concurrently. The counters are atomics, so this must be race-clean (run
// with -race) and every snapshot internally consistent (non-negative, and
// monotonic between resets is not asserted because resets interleave).
func TestStatsConcurrentWithIO(t *testing.T) {
	pf, err := Create(filepath.Join(t.TempDir(), "f.pg"), &Options{PageSize: MinPageSize, PoolPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()

	// A few pages so Gets mix cache hits with evictions and real reads.
	var ids []PageID
	for i := 0; i < 16; i++ {
		p, err := pf.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		p.MarkDirty()
		ids = append(ids, p.ID())
		pf.Unpin(p)
	}
	if err := pf.Flush(); err != nil {
		t.Fatal(err)
	}

	const readers = 4
	const iters = 500
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				p, err := pf.Get(ids[(r+i)%len(ids)])
				if err != nil {
					t.Error(err)
					return
				}
				pf.Unpin(p)
			}
		}(r)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			s := pf.Stats()
			if s.PhysicalReads < 0 || s.CacheHits < 0 {
				t.Errorf("negative counter: %+v", s)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters/10; i++ {
			pf.ResetStats()
		}
	}()
	wg.Wait()
}
