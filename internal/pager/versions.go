package pager

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"nok/internal/obs"
)

// Versioned mode turns a pager file into a multi-version store: clients
// keep addressing pages by stable *logical* ids, but each committed epoch
// owns an immutable logical→physical page table. A mutation opens a
// copy-on-write transaction (BeginCOW), and the first write to any
// committed page relocates it to a fresh physical page — every page the
// transaction does not touch is shared, physically, with the previous
// epoch. Readers pin the version current when they start (Acquire) and
// resolve pages through that version's table for as long as they hold the
// pin, completely unaffected by concurrent transactions or later commits.
//
// Durability composes with the store-level MANIFEST commit: SealCOW
// flushes the transaction's pages and serializes its table into a sidecar
// blob; the caller makes that blob and its manifest record durable, then
// calls Publish to make the new version current in memory. A crash before
// the manifest write leaves the previous epoch fully intact on disk (its
// pages were never overwritten), so no undo journal is needed.
//
// Physical pages are reclaimed by reference counting: each version's
// table holds one reference on every physical page it maps. When the last
// version referencing a page is destroyed (it is no longer current and no
// snapshot pins it), the page joins the in-memory free list and is
// recycled by later transactions. The free list is derived, never
// persisted: InstallVersion computes it as "every physical page the
// committed table does not reference", which is also what sweeps pages
// orphaned by a crashed transaction at open time.

// Version sidecar serialization.
const (
	versionMagic = "NKVT1"
	// sidecar layout: magic[5] epoch[8] pageSize[4] metaLen[2] meta
	// numLogical[4] table[4*numLogical] crc32c[4]
	versionFixed = 5 + 8 + 4 + 2
)

// Process-wide versioning counters.
var (
	mCOWCopies  = obs.Default.Counter("nok_pager_cow_copies_total", "committed pages relocated by copy-on-write")
	mEpochsGCd  = obs.Default.Counter("nok_pager_epochs_gc_total", "page-table versions destroyed and their private pages reclaimed")
	mPhysRecyc  = obs.Default.Counter("nok_pager_pages_recycled_total", "physical pages recycled from destroyed versions")
	mSnapsTaken = obs.Default.Counter("nok_pager_snapshots_total", "version pins taken by readers")
)

// Version is one immutable committed page-table epoch.
type Version struct {
	epoch uint64
	// table maps logical id → physical id; index 0 is unused and holes
	// (freed logical ids) are InvalidPage.
	table []PageID
	meta  []byte
	// pins counts reader snapshots holding this version.
	pins int
	// current marks the version the writer publishes from; exactly one
	// version is current until Close.
	current bool
	dead    bool
}

// Epoch returns the epoch this version was committed at.
func (v *Version) Epoch() uint64 { return v.epoch }

// cowTx is an open copy-on-write transaction: a private, mutable copy of
// the current version's table.
type cowTx struct {
	epoch   uint64
	table   []PageID
	meta    []byte
	freeLog []PageID        // reusable logical ids (holes in table)
	fresh   map[PageID]bool // physical pages allocated by this tx
	sealed  bool
}

// verState is the versioning state hung off a File.
type verState struct {
	cur *Version
	tx  *cowTx
	// refs counts, per physical page, how many live version tables map it.
	refs map[PageID]uint32
	// freePhys are recyclable physical pages (referenced by no live
	// version and not owned by the open transaction).
	freePhys []PageID
	// freeLog are the current version's table holes, carried from commit
	// to commit so logical ids are reused.
	freeLog []PageID
	live    int // live (undestroyed) versions, including current
	// totalPins counts reader pins across all live versions (each
	// version's pins field tracks only its own).
	totalPins int
}

// resolveWriter maps a logical id through the writer's view (open tx, else
// current version). Caller holds mu.
func (vs *verState) resolveWriter(id PageID) (PageID, error) {
	table := vs.cur.table
	if vs.tx != nil {
		table = vs.tx.table
	}
	if id == InvalidPage || int(id) >= len(table) || table[id] == InvalidPage {
		return InvalidPage, fmt.Errorf("%w: logical %d", ErrPageOutOfRange, id)
	}
	return table[id], nil
}

// Versioned reports whether the file runs in versioned mode.
func (pf *File) Versioned() bool {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	return pf.vs != nil
}

// InitVersioning switches a freshly created, empty file into versioned
// mode at epoch 0 with an empty page table. The first BeginCOW/Publish
// cycle commits the initial contents.
func (pf *File) InitVersioning() error {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if pf.closed {
		return ErrClosed
	}
	if pf.vs != nil {
		return fmt.Errorf("pager: %s already versioned", pf.path)
	}
	if pf.numPages != 0 || pf.tx != nil {
		return fmt.Errorf("pager: InitVersioning requires a fresh empty file")
	}
	pf.vs = &verState{
		cur:  &Version{epoch: 0, table: []PageID{InvalidPage}, current: true},
		refs: make(map[PageID]uint32),
		live: 1,
	}
	return nil
}

// InstallVersion switches a freshly opened file into versioned mode from a
// serialized sidecar (produced by SealCOW). It rebuilds the physical
// reference counts and derives the free list as every allocated physical
// page the table does not reference — which sweeps pages orphaned by a
// transaction that crashed before its manifest commit.
func (pf *File) InstallVersion(data []byte) (uint64, error) {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if pf.closed {
		return 0, ErrClosed
	}
	if pf.vs != nil {
		return 0, fmt.Errorf("pager: %s already versioned", pf.path)
	}
	if len(data) < versionFixed+4+4 || string(data[:5]) != versionMagic {
		return 0, fmt.Errorf("pager: %s: bad version table sidecar", pf.path)
	}
	// The header of a versioned file is written once at creation and never
	// rewritten (an in-place rewrite could be torn by a crash), so its
	// recorded page count is stale. Derive the real count from the file
	// size; a torn partial page at the tail rounds away — committed pages
	// are always fully written before their table commits.
	fi, err := pf.f.Stat()
	if err != nil {
		return 0, fmt.Errorf("pager: %s: stat: %w", pf.path, err)
	}
	if n := fi.Size() / int64(pf.physSize); n > 0 {
		pf.numPages = uint32(n - 1)
	} else {
		pf.numPages = 0
	}
	body, crcb := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, crcTable) != binary.BigEndian.Uint32(crcb) {
		return 0, fmt.Errorf("%w: version table sidecar of %s", ErrChecksum, pf.path)
	}
	epoch := binary.BigEndian.Uint64(body[5:13])
	if ps := int(binary.BigEndian.Uint32(body[13:17])); ps != pf.pageSize {
		return 0, fmt.Errorf("pager: %s: sidecar page size %d, file has %d", pf.path, ps, pf.pageSize)
	}
	metaLen := int(binary.BigEndian.Uint16(body[17:19]))
	if metaLen > MaxMetaLen || versionFixed+metaLen+4 > len(body) {
		return 0, fmt.Errorf("pager: %s: corrupt sidecar meta length %d", pf.path, metaLen)
	}
	meta := append([]byte(nil), body[versionFixed:versionFixed+metaLen]...)
	rest := body[versionFixed+metaLen:]
	numLogical := int(binary.BigEndian.Uint32(rest[:4]))
	rest = rest[4:]
	if len(rest) != 4*numLogical {
		return 0, fmt.Errorf("pager: %s: sidecar table truncated (%d entries, %d bytes)", pf.path, numLogical, len(rest))
	}
	table := make([]PageID, numLogical+1)
	vs := &verState{refs: make(map[PageID]uint32), live: 1}
	for i := 1; i <= numLogical; i++ {
		phys := PageID(binary.BigEndian.Uint32(rest[4*(i-1):]))
		if uint32(phys) > pf.numPages {
			return 0, fmt.Errorf("pager: %s: sidecar maps logical %d to physical %d beyond file end %d", pf.path, i, phys, pf.numPages)
		}
		table[i] = phys
		if phys == InvalidPage {
			vs.freeLog = append(vs.freeLog, PageID(i))
			continue
		}
		if vs.refs[phys] != 0 {
			return 0, fmt.Errorf("pager: %s: sidecar maps physical %d twice", pf.path, phys)
		}
		vs.refs[phys] = 1
	}
	for phys := PageID(1); uint32(phys) <= pf.numPages; phys++ {
		if vs.refs[phys] == 0 {
			vs.freePhys = append(vs.freePhys, phys)
		}
	}
	vs.cur = &Version{epoch: epoch, table: table, meta: meta, current: true}
	pf.vs = vs
	return epoch, nil
}

// BeginCOW opens a copy-on-write transaction that will commit as epoch.
// Only one transaction may be open at a time.
func (pf *File) BeginCOW(epoch uint64) error {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if pf.closed {
		return ErrClosed
	}
	if pf.vs == nil {
		return fmt.Errorf("pager: %s is not versioned", pf.path)
	}
	if pf.vs.tx != nil {
		return ErrInTx
	}
	pf.vs.tx = &cowTx{
		epoch:   epoch,
		table:   append([]PageID(nil), pf.vs.cur.table...),
		meta:    append([]byte(nil), pf.vs.cur.meta...),
		freeLog: append([]PageID(nil), pf.vs.freeLog...),
		fresh:   make(map[PageID]bool),
	}
	return nil
}

// InCOW reports whether a copy-on-write transaction is open.
func (pf *File) InCOW() bool {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	return pf.vs != nil && pf.vs.tx != nil
}

// purgeFrame drops the pool frame for physical page id, if any and
// unpinned. Returns false if a pinned frame is in the way. Caller holds mu.
func (pf *File) purgeFrame(id PageID) bool {
	p, ok := pf.pool[id]
	if !ok {
		return true
	}
	if p.pins > 0 {
		return false
	}
	pf.lruRemove(p)
	delete(pf.pool, id)
	return true
}

// allocPhysLocked produces a writable physical page id: a recycled one
// from the free list when possible, a fresh one extending the file
// otherwise. Recycling purges any stale pool frame so the physical page
// can be rebound to a new logical id. Caller holds mu.
func (pf *File) allocPhysLocked() (PageID, error) {
	vs := pf.vs
	for i, phys := range vs.freePhys {
		if !pf.purgeFrame(phys) {
			continue // a reader still holds the stale frame; try another
		}
		vs.freePhys = append(vs.freePhys[:i], vs.freePhys[i+1:]...)
		return phys, nil
	}
	pf.numPages++
	pf.headerDirty = true
	return PageID(pf.numPages), nil
}

// getMutLocked implements GetMut for versioned files. Caller holds mu.
func (pf *File) getMutLocked(id PageID) (*Page, error) {
	tx := pf.vs.tx
	if tx == nil {
		return nil, fmt.Errorf("pager: GetMut on versioned file outside a transaction")
	}
	if id == InvalidPage || int(id) >= len(tx.table) || tx.table[id] == InvalidPage {
		return nil, fmt.Errorf("%w: logical %d", ErrPageOutOfRange, id)
	}
	phys := tx.table[id]
	if tx.fresh[phys] {
		return pf.frame(phys, id, true)
	}
	// First write of a committed page in this tx: relocate it.
	src, err := pf.frame(phys, id, true)
	if err != nil {
		return nil, err
	}
	newPhys, err := pf.allocPhysLocked()
	if err != nil {
		pf.unpin(src)
		return nil, err
	}
	dst, err := pf.frame(newPhys, id, false)
	if err != nil {
		pf.unpin(src)
		return nil, err
	}
	copy(dst.data, src.data)
	pf.unpin(src)
	dst.dirty = true
	tx.table[id] = newPhys
	tx.fresh[newPhys] = true
	mCOWCopies.Inc()
	return dst, nil
}

// allocateVersionedLocked implements Allocate for versioned files: a new
// logical id (reusing holes) bound to a fresh physical page. Caller holds
// mu.
func (pf *File) allocateVersionedLocked() (*Page, error) {
	tx := pf.vs.tx
	if tx == nil {
		return nil, fmt.Errorf("pager: Allocate on versioned file outside a transaction")
	}
	phys, err := pf.allocPhysLocked()
	if err != nil {
		return nil, err
	}
	var logical PageID
	if n := len(tx.freeLog); n > 0 {
		logical = tx.freeLog[n-1]
		tx.freeLog = tx.freeLog[:n-1]
		tx.table[logical] = phys
	} else {
		logical = PageID(len(tx.table))
		tx.table = append(tx.table, phys)
	}
	tx.fresh[phys] = true
	p, err := pf.frame(phys, logical, false)
	if err != nil {
		return nil, err
	}
	p.dirty = true
	pf.stats.allocs.Add(1)
	mAllocs.Inc()
	return p, nil
}

// freeVersionedLocked implements Free for versioned files: the logical id
// leaves the transaction's table. A physical page allocated by this very
// transaction is recycled immediately; a committed page stays, still
// referenced by older versions, until the last version mapping it dies.
// Caller holds mu.
func (pf *File) freeVersionedLocked(id PageID) error {
	tx := pf.vs.tx
	if tx == nil {
		return fmt.Errorf("pager: Free on versioned file outside a transaction")
	}
	if id == InvalidPage || int(id) >= len(tx.table) || tx.table[id] == InvalidPage {
		return fmt.Errorf("%w: logical %d", ErrPageOutOfRange, id)
	}
	phys := tx.table[id]
	if p, ok := pf.pool[phys]; ok && p.pins > 0 && tx.fresh[phys] {
		return fmt.Errorf("pager: freeing pinned page %d", id)
	}
	tx.table[id] = InvalidPage
	tx.freeLog = append(tx.freeLog, id)
	if tx.fresh[phys] {
		delete(tx.fresh, phys)
		if p, ok := pf.pool[phys]; ok {
			p.dirty = false // never written, content is garbage now
		}
		if pf.purgeFrame(phys) {
			pf.vs.freePhys = append(pf.vs.freePhys, phys)
		}
	}
	pf.stats.frees.Add(1)
	mFrees.Inc()
	return nil
}

// SealCOW makes the open transaction's pages durable (flush + sync) and
// returns the serialized version-table sidecar for the caller to commit
// through its manifest. After SealCOW the transaction accepts no more
// writes; the caller finishes with Publish (commit) or AbortCOW (roll
// back, e.g. when the manifest write failed).
func (pf *File) SealCOW() ([]byte, error) {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if pf.closed {
		return nil, ErrClosed
	}
	if pf.vs == nil || pf.vs.tx == nil {
		return nil, fmt.Errorf("pager: SealCOW without an open transaction")
	}
	if err := pf.flushLocked(); err != nil {
		return nil, err
	}
	tx := pf.vs.tx
	tx.sealed = true
	numLogical := len(tx.table) - 1
	out := make([]byte, 0, versionFixed+len(tx.meta)+4+4*numLogical+4)
	out = append(out, versionMagic...)
	out = binary.BigEndian.AppendUint64(out, tx.epoch)
	out = binary.BigEndian.AppendUint32(out, uint32(pf.pageSize))
	out = binary.BigEndian.AppendUint16(out, uint16(len(tx.meta)))
	out = append(out, tx.meta...)
	out = binary.BigEndian.AppendUint32(out, uint32(numLogical))
	for _, phys := range tx.table[1:] {
		out = binary.BigEndian.AppendUint32(out, uint32(phys))
	}
	out = binary.BigEndian.AppendUint32(out, crc32.Checksum(out, crcTable))
	return out, nil
}

// Publish atomically makes the sealed transaction the current version.
// The caller must have durably committed the sidecar returned by SealCOW
// first; from this point new readers resolve through the new table. The
// previous version is destroyed as soon as its last pin is released.
func (pf *File) Publish() (*Version, error) {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if pf.closed {
		return nil, ErrClosed
	}
	vs := pf.vs
	if vs == nil || vs.tx == nil || !vs.tx.sealed {
		return nil, fmt.Errorf("pager: Publish without a sealed transaction")
	}
	tx := vs.tx
	next := &Version{epoch: tx.epoch, table: tx.table, meta: tx.meta, current: true}
	for _, phys := range next.table[1:] {
		if phys != InvalidPage {
			vs.refs[phys]++
		}
	}
	vs.freeLog = tx.freeLog
	vs.live++
	prev := vs.cur
	vs.cur = next
	vs.tx = nil
	prev.current = false
	pf.maybeDestroy(prev)
	return next, nil
}

// AbortCOW rolls the open transaction back: its private physical pages are
// recycled and the current version stays untouched. Safe to call whether
// or not the transaction was sealed.
func (pf *File) AbortCOW() error {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if pf.vs == nil || pf.vs.tx == nil {
		return fmt.Errorf("pager: AbortCOW without an open transaction")
	}
	for phys := range pf.vs.tx.fresh {
		if p, ok := pf.pool[phys]; ok {
			p.dirty = false
		}
		if pf.purgeFrame(phys) {
			pf.vs.freePhys = append(pf.vs.freePhys, phys)
		}
		// A still-pinned frame leaks its physical page until reopen —
		// callers abort only after their own pins are released.
	}
	pf.vs.tx = nil
	return nil
}

// maybeDestroy reclaims a version once it is neither current nor pinned:
// every physical page whose last reference it held joins the free list.
// Caller holds mu.
func (pf *File) maybeDestroy(v *Version) {
	if v.current || v.pins > 0 || v.dead {
		return
	}
	v.dead = true
	pf.vs.live--
	for _, phys := range v.table[1:] {
		if phys == InvalidPage {
			continue
		}
		pf.vs.refs[phys]--
		if pf.vs.refs[phys] == 0 {
			delete(pf.vs.refs, phys)
			pf.purgeFrame(phys)
			pf.vs.freePhys = append(pf.vs.freePhys, phys)
			mPhysRecyc.Inc()
		}
	}
	mEpochsGCd.Inc()
}

// Snapshot is a pinned, immutable view of one committed version. Get
// resolves logical ids through the pinned table, so pages relocated or
// freed by later epochs keep reading back exactly as committed. Release
// the snapshot when done; the version's private pages are reclaimed when
// the last pin drops (if a newer epoch has been published).
type Snapshot struct {
	pf *File
	v  *Version
}

// Acquire pins the current version and returns a snapshot resolving
// through it.
func (pf *File) Acquire() (*Snapshot, error) {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if pf.closed {
		return nil, ErrClosed
	}
	if pf.vs == nil {
		return nil, fmt.Errorf("pager: %s is not versioned", pf.path)
	}
	pf.vs.cur.pins++
	pf.vs.totalPins++
	mSnapsTaken.Inc()
	return &Snapshot{pf: pf, v: pf.vs.cur}, nil
}

// Get returns logical page id pinned, resolved through the snapshot's
// version. The caller must Unpin it.
func (s *Snapshot) Get(id PageID) (*Page, error) {
	pf := s.pf
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if pf.closed {
		return nil, ErrClosed
	}
	if id == InvalidPage || int(id) >= len(s.v.table) || s.v.table[id] == InvalidPage {
		return nil, fmt.Errorf("%w: logical %d at epoch %d", ErrPageOutOfRange, id, s.v.epoch)
	}
	return pf.frame(s.v.table[id], id, true)
}

// Unpin releases one pin on p.
func (s *Snapshot) Unpin(p *Page) { s.pf.Unpin(p) }

// PageSize returns the underlying file's page size.
func (s *Snapshot) PageSize() int { return s.pf.pageSize }

// Meta returns a copy of the snapshot version's client meta area.
func (s *Snapshot) Meta() []byte { return append([]byte(nil), s.v.meta...) }

// Epoch returns the epoch of the pinned version.
func (s *Snapshot) Epoch() uint64 { return s.v.epoch }

// Release drops the snapshot's pin. The version is destroyed (pages
// reclaimed) when it is no longer current and this was the last pin.
// Release is idempotent per snapshot only in the sense that callers must
// not call it twice.
func (s *Snapshot) Release() {
	pf := s.pf
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if s.v.pins <= 0 {
		panic("pager: snapshot released twice")
	}
	s.v.pins--
	pf.vs.totalPins--
	if !pf.closed {
		pf.maybeDestroy(s.v)
	}
}

// VersionStats describes the versioning state for observability.
type VersionStats struct {
	Epoch        uint64 // current committed epoch
	LiveVersions int    // versions not yet destroyed (including current)
	PinnedSnaps  int    // reader pins across all live versions, current included
	NumLogical   int    // logical pages in the current table
	NumPhysical  int    // physical pages ever allocated in the file
	FreePhysical int    // physical pages awaiting recycling
	TxOpen       bool   // a copy-on-write transaction is open
}

// VersionInfo returns a snapshot of the versioning state; zero-valued for
// plain files.
func (pf *File) VersionInfo() VersionStats {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if pf.vs == nil {
		return VersionStats{}
	}
	st := VersionStats{
		Epoch:        pf.vs.cur.epoch,
		LiveVersions: pf.vs.live,
		NumLogical:   len(pf.vs.cur.table) - 1 - len(pf.vs.freeLog),
		NumPhysical:  int(pf.numPages),
		FreePhysical: len(pf.vs.freePhys),
		TxOpen:       pf.vs.tx != nil,
	}
	st.PinnedSnaps = pf.vs.totalPins
	return st
}

// OrphanPhysicalPages returns the physical pages allocated in the file but
// referenced by no live version — debris a crashed transaction left
// behind, awaiting recycling. Meaningful right after open, before any new
// transaction runs.
func (pf *File) OrphanPhysicalPages() int {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if pf.vs == nil {
		return 0
	}
	return len(pf.vs.freePhys)
}

// UnaccountedPhysicalPages returns the physical pages that are neither
// referenced by a live version, nor on the free list, nor owned by the
// open transaction — zero in a healthy file. A page can get stuck this
// way when it is freed while a reader still pins its pool frame; it stays
// lost until the next reopen re-derives the free list from scratch.
func (pf *File) UnaccountedPhysicalPages() int {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if pf.vs == nil {
		return 0
	}
	accounted := len(pf.vs.refs) + len(pf.vs.freePhys)
	if pf.vs.tx != nil {
		accounted += len(pf.vs.tx.fresh)
	}
	if n := int(pf.numPages) - accounted; n > 0 {
		return n
	}
	return 0
}

// VerifyVersionPages reads every physical page referenced by the current
// version's table (plus the file header) directly from disk and checks its
// checksum trailer. Unreferenced physical pages are skipped: garbage from
// in-flight or crashed transactions is expected there and carries no
// committed data. Reports damage through report; returns pages examined.
func (pf *File) VerifyVersionPages(report func(id PageID, err error)) (int, error) {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if pf.closed {
		return 0, ErrClosed
	}
	if pf.vs == nil {
		return 0, fmt.Errorf("pager: %s is not versioned", pf.path)
	}
	payload := make([]byte, pf.pageSize)
	checked := 1
	if err := pf.readPhysical(0, payload); err != nil {
		report(0, err)
	} else if err := pf.verifyTrailerSlack(0); err != nil {
		report(0, err)
	}
	for logical, phys := range pf.vs.cur.table {
		if logical == 0 || phys == InvalidPage {
			continue
		}
		if err := pf.readPhysical(phys, payload); err != nil {
			report(PageID(logical), err)
		} else if err := pf.verifyTrailerSlack(phys); err != nil {
			report(PageID(logical), err)
		}
		checked++
	}
	return checked, nil
}

// verifyTrailerSlack checks that the reserved bytes after a page's 4-byte
// checksum trailer are zero, as writePhysical always leaves them. A
// referenced page never legitimately carries nonzero slack, so anything
// else is bit rot the payload checksum cannot see. Caller holds mu.
func (pf *File) verifyTrailerSlack(phys PageID) error {
	slack := pf.physSize - pf.pageSize - 4
	if slack <= 0 {
		return nil
	}
	buf := make([]byte, slack)
	n, err := pf.f.ReadAt(buf, pf.pageOffset(phys)+int64(pf.pageSize)+4)
	if err != nil && err != io.EOF {
		return fmt.Errorf("pager: reading page %d trailer: %w", phys, err)
	}
	for _, b := range buf[:n] {
		if b != 0 {
			return fmt.Errorf("pager: page %d: reserved trailer bytes are not zero", phys)
		}
	}
	return nil
}
