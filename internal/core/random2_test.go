package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"nok/internal/domnav"
	"nok/internal/pattern"
)

// richRandomQuery generates a wider query space than randomQuery: nested
// predicates, descendant steps inside predicates, attributes, wildcards,
// following-sibling and following steps.
func richRandomQuery(rng *rand.Rand) string {
	tags := []string{"a", "b", "c", "d", "e"}
	vals := []string{"x", "y", "42", "7.5"}
	ops := []string{"=", "!=", "<", ">", "<=", ">="}
	var sb strings.Builder

	var predicate func(depth int)
	predicate = func(depth int) {
		sb.WriteString("[")
		switch rng.Intn(6) {
		case 0:
			sb.WriteString("@id=")
			fmt.Fprintf(&sb, "%q", fmt.Sprint(rng.Intn(3)))
		case 1:
			sb.WriteString(".//")
			sb.WriteString(tags[rng.Intn(len(tags))])
		case 2:
			sb.WriteString(tags[rng.Intn(len(tags))])
			sb.WriteString("/")
			sb.WriteString(tags[rng.Intn(len(tags))])
			if rng.Intn(2) == 0 {
				sb.WriteString(ops[rng.Intn(len(ops))])
				fmt.Fprintf(&sb, "%q", vals[rng.Intn(len(vals))])
			}
		case 3:
			sb.WriteString(".")
			sb.WriteString(ops[rng.Intn(len(ops))])
			fmt.Fprintf(&sb, "%q", vals[rng.Intn(len(vals))])
		default:
			sb.WriteString(tags[rng.Intn(len(tags))])
			if rng.Intn(2) == 0 {
				sb.WriteString(ops[rng.Intn(len(ops))])
				fmt.Fprintf(&sb, "%q", vals[rng.Intn(len(vals))])
			} else if depth < 2 && rng.Intn(3) == 0 {
				predicate(depth + 1)
			}
		}
		sb.WriteString("]")
	}

	sb.WriteString("/root")
	steps := 1 + rng.Intn(4)
	for i := 0; i < steps; i++ {
		switch rng.Intn(8) {
		case 0, 1:
			sb.WriteString("//")
		case 2:
			if i > 0 {
				sb.WriteString("/following-sibling::")
			} else {
				sb.WriteString("/")
			}
		case 3:
			if i > 0 {
				sb.WriteString("/following::")
			} else {
				sb.WriteString("/")
			}
		default:
			sb.WriteString("/")
		}
		if rng.Intn(6) == 0 {
			sb.WriteString("*")
		} else if rng.Intn(8) == 0 {
			sb.WriteString("@id")
			continue // attributes cannot take predicates or children here
		} else {
			sb.WriteString(tags[rng.Intn(len(tags))])
		}
		for p := 0; p < rng.Intn(3); p++ {
			predicate(0)
		}
	}
	return sb.String()
}

// TestRichRandomDifferential runs the widened query generator against the
// oracle on randomized documents with every strategy.
func TestRichRandomDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	strategies := []Strategy{StrategyAuto, StrategyScan, StrategyPathIndex}
	for docTrial := 0; docTrial < 3; docTrial++ {
		xml := randomXML(rng, 200+rng.Intn(300))
		db := loadDB(t, xml, smallPages())
		doc := domnav.MustParse(xml)
		tried := 0
		for tried < 60 {
			expr := richRandomQuery(rng)
			// The generator can produce expressions the parser rejects
			// (e.g. following-sibling on a step whose parent is virtual);
			// skip those — both sides must reject identically.
			want, perr := tryOracle(doc, expr)
			got, _, gerr := db.Query(expr, nil)
			if (perr == nil) != (gerr == nil) {
				t.Fatalf("parse disagreement on %q: oracle err %v, engine err %v", expr, perr, gerr)
			}
			if perr != nil {
				continue
			}
			tried++
			if len(got) != len(want) {
				t.Fatalf("doc %d %q: %d results, oracle %d\nxml: %.300s",
					docTrial, expr, len(got), len(want), xml)
			}
			for i := range got {
				if got[i].ID.String() != want[i] {
					t.Fatalf("doc %d %q result %d: %s vs oracle %s",
						docTrial, expr, i, got[i].ID, want[i])
				}
			}
			for _, s := range strategies[1:] {
				alt, _, err := db.Query(expr, &QueryOptions{Strategy: s})
				if err != nil {
					t.Fatalf("%q [%v]: %v", expr, s, err)
				}
				if len(alt) != len(want) {
					t.Fatalf("%q [%v]: %d results, oracle %d", expr, s, len(alt), len(want))
				}
			}
		}
	}
}

func tryOracle(doc *domnav.Doc, expr string) ([]string, error) {
	tr, err := pattern.Parse(expr)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, n := range domnav.Evaluate(doc, tr) {
		out = append(out, n.ID.String())
	}
	return out, nil
}
