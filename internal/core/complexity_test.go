package core

import (
	"fmt"
	"strings"
	"testing"
)

// TestFrontierRevisitCount pins down the §3 frontier behavior of
// /a[b/c][b/d]: both pattern b's sit in the frontier, every subject b is
// tried against each unsatisfied one, and grandchildren are revisited once
// per branch. With the d-branch satisfiable only at the last b, the
// matcher must scan all n b's (no early exit), visiting O(n) nodes total —
// and still O(n), not O(n²), because satisfied existential branches leave
// the frontier.
func TestFrontierRevisitCount(t *testing.T) {
	const n = 50
	var sb strings.Builder
	sb.WriteString("<a>")
	for i := 0; i < n-1; i++ {
		sb.WriteString("<b><c/></b>")
	}
	sb.WriteString("<b><d/></b></a>")
	db := loadDB(t, sb.String(), smallPages())

	_, stats, err := db.Query(`/a[b/c][b/d]`, &QueryOptions{Strategy: StrategyScan})
	if err != nil {
		t.Fatal(err)
	}
	// All n b's visited (the d-branch stays in the frontier to the end),
	// plus roughly one grandchild visit per unsatisfied branch per b.
	if stats.NodesVisited < n {
		t.Errorf("NodesVisited = %d: the frontier gave up before the last b", stats.NodesVisited)
	}
	if stats.NodesVisited > 4*n {
		t.Errorf("NodesVisited = %d for n=%d — super-linear frontier behavior", stats.NodesVisited, n)
	}
	// Early-exit sanity: when both branches match the first b, visits are
	// constant regardless of n.
	var sb2 strings.Builder
	sb2.WriteString("<a>")
	for i := 0; i < n; i++ {
		sb2.WriteString("<b><c/><d/></b>")
	}
	sb2.WriteString("</a>")
	db2 := loadDB(t, sb2.String(), smallPages())
	_, stats2, err := db2.Query(`/a[b/c][b/d]`, &QueryOptions{Strategy: StrategyScan})
	if err != nil {
		t.Fatal(err)
	}
	if stats2.NodesVisited > 10 {
		t.Errorf("early-exit case visited %d nodes, want O(1)", stats2.NodesVisited)
	}
}

// TestVisitScalingLinear: doubling the document doubles the visit count
// for a fixed pattern (the O(m·n) bound with m fixed).
func TestVisitScalingLinear(t *testing.T) {
	visits := func(n int) int {
		var sb strings.Builder
		sb.WriteString("<a>")
		for i := 0; i < n; i++ {
			sb.WriteString("<b><c/><d/></b>")
		}
		sb.WriteString("</a>")
		db := loadDB(t, sb.String(), smallPages())
		_, stats, err := db.Query(`/a[b/c][b/d]`, &QueryOptions{Strategy: StrategyScan})
		if err != nil {
			t.Fatal(err)
		}
		return stats.NodesVisited
	}
	v1, v2 := visits(100), visits(200)
	if v2 > v1*3 {
		t.Errorf("visits grew superlinearly: %d -> %d", v1, v2)
	}
	_ = fmt.Sprint(v1, v2)
}

// TestStickySpineVisitsAll: when the returning node is deep, the spine is
// sticky and every b (not just the first) is explored.
func TestStickySpineVisitsAll(t *testing.T) {
	xml := `<a><b><c>1</c></b><b><c>2</c></b><b><c>3</c></b></a>`
	db := loadDB(t, xml, smallPages())
	got := queryIDs(t, db, `/a/b/c`, &QueryOptions{Strategy: StrategyScan})
	if len(got) != 3 {
		t.Fatalf("c matches = %v (spine not sticky?)", got)
	}
}
