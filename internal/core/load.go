package core

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"nok/internal/btree"
	"nok/internal/dewey"
	"nok/internal/pager"
	"nok/internal/sax"
	"nok/internal/stats"
	"nok/internal/stree"
	"nok/internal/symtab"
	"nok/internal/vfs"
	"nok/internal/vstore"
)

// LoadXML bulk-loads an XML document into a new database directory. The
// single SAX pass drives everything at once: the string-tree builder, the
// value data file, and the three B+ trees (Figure 3).
//
// Attributes become child nodes whose tag carries the "@" prefix, and an
// element's (concatenated, trimmed) text becomes its value, matching the
// paper's subject-tree model where values are detached from structure.
func LoadXML(dir string, r io.Reader, opts *Options) (*DB, error) {
	o := opts.withDefaults()
	if err := o.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// The first committed epoch is 1; the directory holds no MANIFEST (and
	// therefore no store) until the very last step of the load.
	const epoch = 1
	names := map[string]string{
		roleTree:     fileTree,
		roleValues:   fileValues,
		roleTreeMap:  epochFileName(roleTreeMap, epoch),
		roleTags:     epochFileName(roleTags, epoch),
		roleStats:    epochFileName(roleStats, epoch),
		roleSynopsis: epochFileName(roleSynopsis, epoch),
		roleTagIdx:   epochFileName(roleTagIdx, epoch),
		roleValIdx:   epochFileName(roleValIdx, epoch),
		roleDewIdx:   epochFileName(roleDewIdx, epoch),
		rolePathIdx:  epochFileName(rolePathIdx, epoch),
	}
	v := &Snapshot{epoch: epoch, tagCount: make(map[symtab.Sym]uint64)}
	db := &DB{Snapshot: v, dir: dir, fsys: o.FS}
	v.db = db
	ok := false
	defer func() {
		if !ok {
			db.Close()
		}
	}()

	var err error
	if db.treeFile, err = pager.Create(filepath.Join(dir, names[roleTree]),
		&pager.Options{PageSize: o.PageSize, PoolPages: o.PoolPages, FS: o.FS}); err != nil {
		return nil, err
	}
	// The tree is copy-on-write from birth: the whole bulk load runs as
	// the epoch-1 transaction, committed at the end alongside the first
	// manifest.
	if err := db.treeFile.InitVersioning(); err != nil {
		return nil, err
	}
	if err := db.treeFile.BeginCOW(epoch); err != nil {
		return nil, err
	}
	builder, err := stree.NewBuilder(db.treeFile, &stree.BuilderOptions{ReservePct: o.ReservePct})
	if err != nil {
		return nil, err
	}
	v.Tags = symtab.New()
	if v.Values, err = vstore.CreateFS(o.FS, filepath.Join(dir, names[roleValues])); err != nil {
		return nil, err
	}
	idxOpts := func() *pager.Options {
		return &pager.Options{PageSize: o.IndexPageSize, PoolPages: o.PoolPages, FS: o.FS}
	}
	if v.tagIdxFile, err = pager.Create(filepath.Join(dir, names[roleTagIdx]), idxOpts()); err != nil {
		return nil, err
	}
	if v.TagIdx, err = btree.Create(v.tagIdxFile); err != nil {
		return nil, err
	}
	if v.valIdxFile, err = pager.Create(filepath.Join(dir, names[roleValIdx]), idxOpts()); err != nil {
		return nil, err
	}
	if v.ValIdx, err = btree.Create(v.valIdxFile); err != nil {
		return nil, err
	}
	if v.dewIdxFile, err = pager.Create(filepath.Join(dir, names[roleDewIdx]), idxOpts()); err != nil {
		return nil, err
	}
	if v.DeweyIdx, err = btree.Create(v.dewIdxFile); err != nil {
		return nil, err
	}
	if v.pathIdxFile, err = pager.Create(filepath.Join(dir, names[rolePathIdx]), idxOpts()); err != nil {
		return nil, err
	}
	if v.PathIdx, err = btree.Create(v.pathIdxFile); err != nil {
		return nil, err
	}

	loader := &loader{db: db, builder: builder, sb: stats.NewBuilder()}
	if err := loader.run(sax.NewScanner(r)); err != nil {
		return nil, err
	}
	if err := loader.flushIndexes(); err != nil {
		return nil, err
	}
	wtree, err := builder.Finish()
	if err != nil {
		return nil, err
	}
	v.total = wtree.NodeCount()
	if err := saveStatsFile(o.FS, filepath.Join(dir, names[roleStats]), v.Tags, v.tagCount, v.total); err != nil {
		return nil, err
	}
	if err := v.Tags.SaveFS(o.FS, filepath.Join(dir, names[roleTags])); err != nil {
		return nil, err
	}
	// The statistics synopsis was collected by the same SAX pass; it is
	// committed through the manifest like every other store file.
	syn := loader.sb.Finish(epoch, uint64(wtree.NumPages()))
	if err := vfs.WriteFileAtomic(o.FS, filepath.Join(dir, names[roleSynopsis]), stats.Encode(syn), 0o644); err != nil {
		return nil, err
	}
	v.syn.Store(syn)
	// Make everything durable, then commit the store into existence:
	// seal the epoch-1 copy-on-write transaction, write its page-table
	// sidecar, and write the first manifest.
	for _, t := range []*btree.Tree{v.TagIdx, v.ValIdx, v.DeweyIdx, v.PathIdx} {
		if err := t.Flush(); err != nil {
			return nil, err
		}
	}
	if err := v.Values.Flush(); err != nil {
		return nil, err
	}
	side, err := db.treeFile.SealCOW()
	if err != nil {
		return nil, err
	}
	if err := vfs.WriteFileAtomic(o.FS, filepath.Join(dir, names[roleTreeMap]), side, 0o644); err != nil {
		return nil, err
	}
	m, err := buildManifest(o.FS, dir, epoch, names)
	if err != nil {
		return nil, err
	}
	if err := writeManifest(o.FS, dir, m); err != nil {
		return nil, err
	}
	if _, err := db.treeFile.Publish(); err != nil {
		return nil, err
	}
	psn, err := db.treeFile.Acquire()
	if err != nil {
		return nil, err
	}
	v.psn = psn
	v.Tree = wtree.Snapshot(psn)
	db.manifest = m
	v.publish()
	ok = true
	return db, nil
}

// LoadXMLFile is LoadXML reading from a file path.
func LoadXMLFile(dir, xmlPath string, opts *Options) (*DB, error) {
	f, err := os.Open(xmlPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadXML(dir, f, opts)
}

// openElem tracks one element between its start and end events.
type openElem struct {
	pos      stree.Pos
	sym      symtab.Sym
	id       dewey.ID
	pathHash uint64
	text     strings.Builder
	kids     uint32
}

// indexEntry is one deferred B+ tree insertion. Index entries are buffered
// during the SAX pass and bulk-inserted in ascending key order afterwards:
// sorted insertion hits the tree's rightmost-split heuristic, producing
// near-full pages (about half the size of random-order builds). For
// documents too large to buffer ~100 bytes per node, an external sort
// would take this place.
type indexEntry struct {
	key, val []byte
}

type loader struct {
	db      *DB
	builder *stree.Builder
	sb      *stats.Builder
	stack   []*openElem

	tagEntries   []indexEntry
	valEntries   []indexEntry
	deweyEntries []indexEntry
	pathEntries  []indexEntry
}

func (l *loader) run(sc *sax.Scanner) error {
	rootSeen := false
	for {
		ev, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		switch ev.Kind {
		case sax.StartElement:
			if len(l.stack) == 0 && rootSeen {
				return fmt.Errorf("core: multiple root elements (line %d)", ev.Line)
			}
			rootSeen = true
			if err := l.open(ev.Name); err != nil {
				return err
			}
			for _, a := range ev.Attrs {
				if err := l.open(symtab.AttrPrefix + a.Name); err != nil {
					return err
				}
				l.stack[len(l.stack)-1].text.WriteString(a.Value)
				if err := l.close(false); err != nil {
					return err
				}
			}
		case sax.EndElement:
			if err := l.close(true); err != nil {
				return err
			}
		case sax.Text:
			if len(l.stack) > 0 {
				l.stack[len(l.stack)-1].text.WriteString(ev.Data)
			}
		}
	}
	if len(l.stack) != 0 {
		return fmt.Errorf("core: document ended with %d open element(s)", len(l.stack))
	}
	return nil
}

func (l *loader) open(name string) error {
	sym, err := l.db.Tags.Intern(name)
	if err != nil {
		return err
	}
	pos, err := l.builder.Open(sym)
	if err != nil {
		return err
	}
	e := &openElem{pos: pos, sym: sym}
	if len(l.stack) == 0 {
		e.id = dewey.Root()
		e.pathHash = extendPathHash(pathHashSeed, sym)
	} else {
		parent := l.stack[len(l.stack)-1]
		parent.kids++
		e.id = parent.id.Child(parent.kids)
		e.pathHash = extendPathHash(parent.pathHash, sym)
	}
	l.stack = append(l.stack, e)
	l.sb.Node(sym, len(l.stack))
	l.db.tagCount[sym]++
	l.tagEntries = append(l.tagEntries, indexEntry{tagKey(sym, e.id), encodePos(pos)})
	l.pathEntries = append(l.pathEntries, indexEntry{pathKey(e.pathHash, e.id), encodePos(pos)})
	return nil
}

// close finishes the innermost element: emits the close token, stores its
// value (trimmed; attributes keep their exact value), and writes the value
// and Dewey index entries.
func (l *loader) close(trim bool) error {
	if err := l.builder.Close(); err != nil {
		return err
	}
	e := l.stack[len(l.stack)-1]
	l.stack = l.stack[:len(l.stack)-1]

	text := e.text.String()
	if trim {
		text = strings.TrimSpace(text)
	}
	valOff := NoValue
	if text != "" {
		off, err := l.db.Values.Append([]byte(text))
		if err != nil {
			return err
		}
		valOff = uint64(off)
		l.sb.Value(len(l.stack)+1, vstore.Hash([]byte(text)))
		l.valEntries = append(l.valEntries, indexEntry{valKey(vstore.Hash([]byte(text)), e.id), encodePos(e.pos)})
	}
	l.deweyEntries = append(l.deweyEntries, indexEntry{e.id.Bytes(), deweyVal(e.pos, valOff)})
	return nil
}

// flushIndexes sorts the buffered entries and bulk-inserts them.
func (l *loader) flushIndexes() error {
	for _, batch := range []struct {
		tree    *btree.Tree
		entries []indexEntry
	}{
		{l.db.TagIdx, l.tagEntries},
		{l.db.ValIdx, l.valEntries},
		{l.db.DeweyIdx, l.deweyEntries},
		{l.db.PathIdx, l.pathEntries},
	} {
		sort.Slice(batch.entries, func(i, j int) bool {
			return bytes.Compare(batch.entries[i].key, batch.entries[j].key) < 0
		})
		for _, e := range batch.entries {
			if err := batch.tree.Insert(e.key, e.val); err != nil {
				return err
			}
		}
	}
	l.tagEntries, l.valEntries, l.deweyEntries, l.pathEntries = nil, nil, nil, nil
	return nil
}
