package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"nok/internal/samples"
	"nok/internal/stats"
)

// checkSynopsisAgainstRebuild asserts the committed (incrementally merged)
// synopsis is byte-identical to a full rebuild at the same epoch —
// RefreshSynopsis rescans the whole tree, which is the oracle.
func checkSynopsisAgainstRebuild(t *testing.T, db *DB) {
	t.Helper()
	if !db.SynopsisFresh() {
		t.Fatal("synopsis stale after batch insert")
	}
	merged := stats.Encode(db.Synopsis())
	if err := db.RefreshSynopsis(); err != nil {
		t.Fatalf("RefreshSynopsis: %v", err)
	}
	rebuilt := stats.Encode(db.Synopsis())
	if !bytes.Equal(merged, rebuilt) {
		t.Fatalf("incrementally merged synopsis differs from full rebuild:\nmerged:  %+v\nrebuilt: %+v",
			db.Synopsis(), db.Synopsis())
	}
}

func TestInsertFragmentBatchOneEpoch(t *testing.T) {
	db := loadDB(t, samples.Bibliography, smallPages())
	epoch0 := db.Snapshot.epoch
	frags := []io.Reader{
		strings.NewReader(`<book year="2005"><title>Alpha</title><price>11.00</price></book>`),
		strings.NewReader(`<book year="2006"><title>Beta</title><price>12.00</price></book>`),
		strings.NewReader(`<article><title>Gamma</title></article>`),
	}
	if err := db.InsertFragmentBatch(mustID(t, "0"), frags); err != nil {
		t.Fatal(err)
	}
	if got := db.Snapshot.epoch; got != epoch0+1 {
		t.Fatalf("batch of 3 published %d epochs, want exactly 1", got-epoch0)
	}
	// All three landed as consecutive last children with working indexes.
	got := queryIDs(t, db, `/bib/book`, nil)
	if len(got) != 6 || got[4] != "0.5" || got[5] != "0.6" {
		t.Fatalf("books after batch: %v", got)
	}
	got = queryIDs(t, db, `//book[title="Beta"]`, nil)
	if len(got) != 1 || got[0] != "0.6" {
		t.Fatalf("Beta query: %v", got)
	}
	got = queryIDs(t, db, `/bib/article/title`, nil)
	if len(got) != 1 || got[0] != "0.7.1" {
		t.Fatalf("article title: %v", got)
	}
	v, ok, err := db.NodeValue(mustID(t, "0.6.2"))
	if err != nil || !ok || v != "Beta" {
		t.Fatalf("NodeValue = %q, %v, %v", v, ok, err)
	}
	checkSynopsisAgainstRebuild(t, db)
}

func TestInsertFragmentBatchSequential(t *testing.T) {
	db := loadDB(t, samples.Bibliography, smallPages())
	for round := 0; round < 4; round++ {
		frags := make([]io.Reader, 3)
		for i := range frags {
			frags[i] = strings.NewReader(fmt.Sprintf(
				`<book year="201%d"><title>R%dN%d</title><price>%d.50</price></book>`,
				round, round, i, 10+round))
		}
		if err := db.InsertFragmentBatch(mustID(t, "0"), frags); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		checkSynopsisAgainstRebuild(t, db)
	}
	if got := queryIDs(t, db, `/bib/book`, nil); len(got) != 16 {
		t.Fatalf("books after 4 rounds = %d, want 16", len(got))
	}
}

func TestInsertFragmentBatchDeepParent(t *testing.T) {
	db := loadDB(t, samples.Bibliography, smallPages())
	// Append two extra <last> nodes under the first book's author (0.1.3).
	frags := []io.Reader{
		strings.NewReader(`<last>Extra1</last>`),
		strings.NewReader(`<last>Extra2</last>`),
	}
	if err := db.InsertFragmentBatch(mustID(t, "0.1.3"), frags); err != nil {
		t.Fatal(err)
	}
	got := queryIDs(t, db, `//author[last="Extra2"]`, nil)
	if len(got) != 1 || got[0] != "0.1.3" {
		t.Fatalf("deep batch query: %v", got)
	}
	checkSynopsisAgainstRebuild(t, db)
}

func TestInsertFragmentBatchBadFragmentAborts(t *testing.T) {
	db := loadDB(t, samples.Bibliography, smallPages())
	epoch0 := db.Snapshot.epoch
	before := queryIDs(t, db, `/bib/book`, nil)
	err := db.InsertFragmentBatch(mustID(t, "0"), []io.Reader{
		strings.NewReader(`<book><title>OK</title></book>`),
		strings.NewReader(`<book><title>broken`), // unclosed
		strings.NewReader(`<book><title>Never</title></book>`),
	})
	var fe *FragmentError
	if !errors.As(err, &fe) {
		t.Fatalf("want *FragmentError, got %v", err)
	}
	if fe.Index != 1 {
		t.Fatalf("FragmentError.Index = %d, want 1", fe.Index)
	}
	if db.Snapshot.epoch != epoch0 {
		t.Fatal("failed batch published an epoch")
	}
	if after := queryIDs(t, db, `/bib/book`, nil); len(after) != len(before) {
		t.Fatalf("failed batch mutated the store: %d -> %d books", len(before), len(after))
	}
	// The store stays usable: a clean retry without the offender commits.
	err = db.InsertFragmentBatch(mustID(t, "0"), []io.Reader{
		strings.NewReader(`<book><title>OK</title></book>`),
		strings.NewReader(`<book><title>Never</title></book>`),
	})
	if err != nil {
		t.Fatalf("retry after failed batch: %v", err)
	}
	if after := queryIDs(t, db, `/bib/book`, nil); len(after) != len(before)+2 {
		t.Fatalf("retry landed %d books, want %d", len(after), len(before)+2)
	}
	checkSynopsisAgainstRebuild(t, db)
}

// TestInsertFragmentBatchAbortLeaksNoValues: a *FragmentError abort must
// leave the append-only value store untouched — the ingest pipeline's
// drop-and-retry re-submits every retained fragment, so bytes appended
// during a failed parse would leak as uncompactable orphans on each
// rejection.
func TestInsertFragmentBatchAbortLeaksNoValues(t *testing.T) {
	db := loadDB(t, samples.Bibliography, smallPages())
	size0 := db.Values.Size()
	for i := 0; i < 5; i++ {
		err := db.InsertFragmentBatch(mustID(t, "0"), []io.Reader{
			strings.NewReader(`<book><title>Kept</title><price>9.99</price></book>`),
			strings.NewReader(`<book><title>bad</wrong></book>`), // mismatched close
		})
		var fe *FragmentError
		if !errors.As(err, &fe) || fe.Index != 1 {
			t.Fatalf("round %d: want *FragmentError at 1, got %v", i, err)
		}
	}
	if got := db.Values.Size(); got != size0 {
		t.Fatalf("aborted batches grew the value store by %d orphan bytes", got-size0)
	}
	// The retained fragment then commits, appending its values exactly once.
	if err := db.InsertFragmentBatch(mustID(t, "0"), []io.Reader{
		strings.NewReader(`<book><title>Kept</title><price>9.99</price></book>`),
	}); err != nil {
		t.Fatal(err)
	}
	if db.Values.Size() == size0 {
		t.Fatal("committed batch appended no values")
	}
	checkSynopsisAgainstRebuild(t, db)
}

func TestInsertFragmentBatchRejectsEmptyFragment(t *testing.T) {
	db := loadDB(t, samples.Bibliography, smallPages())
	err := db.InsertFragmentBatch(mustID(t, "0"), []io.Reader{
		strings.NewReader(`<book><title>OK</title></book>`),
		strings.NewReader(`   `), // no root element: would misalign ordinals
	})
	var fe *FragmentError
	if !errors.As(err, &fe) || fe.Index != 1 {
		t.Fatalf("empty fragment: want *FragmentError at 1, got %v", err)
	}
	// Zero fragments is a no-op, not a commit.
	epoch0 := db.Snapshot.epoch
	if err := db.InsertFragmentBatch(mustID(t, "0"), nil); err != nil {
		t.Fatal(err)
	}
	if db.Snapshot.epoch != epoch0 {
		t.Fatal("empty batch published an epoch")
	}
}

// TestInsertFragmentBatchStaleSynopsisFallback forces the no-synopsis path
// and checks the batch still commits with a correct (rebuilt) synopsis.
func TestInsertFragmentBatchStaleSynopsisFallback(t *testing.T) {
	db := loadDB(t, samples.Bibliography, smallPages())
	// Simulate a stale synopsis as an old store (pre-synopsis epoch) would
	// present it: the loaded synopsis carries a past epoch.
	old := db.Synopsis()
	stale := *old
	stale.Epoch = old.Epoch + 1000
	db.Snapshot.syn.Store(&stale)
	if db.SynopsisFresh() {
		t.Fatal("setup: synopsis should be stale")
	}
	if err := db.InsertFragmentBatch(mustID(t, "0"), []io.Reader{
		strings.NewReader(`<book><title>Fallback</title></book>`),
	}); err != nil {
		t.Fatal(err)
	}
	// The rebuild scan recollected the synopsis; it is fresh again.
	checkSynopsisAgainstRebuild(t, db)
}
