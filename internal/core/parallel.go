package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"nok/internal/obs"
	"nok/internal/pattern"
	"nok/internal/planner"
	"nok/internal/stree"
)

// Intra-query parallelism metrics, exposed through the default registry.
var (
	mParallelQueries = obs.Default.Counter("nok_parallel_queries_total", "queries whose bottom-up phase ran partitions on concurrent workers")
)

// parallelExtMatch is the concurrent form of the evaluator's bottom-up
// phase: independent NoK partitions (no link between them) run on worker
// goroutines, each with its own matcher, statistics scratch and navigation
// counters, merged under one mutex as partitions complete. A partition is
// dispatched the moment every child partition it joins against has
// finished, so the dependency tree itself is the schedule — no barrier
// between "levels".
//
// Cancellation: the first partition error cancels a derived context; every
// in-flight matcher notices within a few dozen subject-node visits. The
// function always waits for all workers before returning, so no goroutine
// can touch the pager after the query returns (and, transitively, after
// Store.Close takes the write lock).
func (db *Snapshot) parallelExtMatch(
	parts []*pattern.NoKTree,
	plan *planner.Plan,
	noSkip bool,
	parent *obs.Span,
	ctx context.Context,
	stats *QueryStats,
	nc *stree.NavCounters,
) (map[*pattern.NoKTree][]Match, map[*pattern.NoKTree][]uint64, error) {
	n := len(parts)
	base := ctx
	if base == nil {
		base = context.Background()
	}
	pctx, cancel := context.WithCancel(base)
	defer cancel()

	// index → partitions that join against it (its dependents), and the
	// number of unfinished children gating each partition.
	dependents := make([][]int, n)
	pendingDeps := make([]int, n)
	for i := 1; i < n; i++ {
		for _, l := range parts[i].Links {
			child := l.To.Index()
			dependents[child] = append(dependents[child], i)
			pendingDeps[i]++
		}
	}

	extArr := make([][]Match, n)
	ptsArr := make([][]uint64, n)

	workers := runtime.GOMAXPROCS(0)
	if workers > n-1 {
		workers = n - 1
	}
	sem := make(chan struct{}, workers)

	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		firstErr error
	)

	var dispatch func(i int)
	run := func(i int) {
		defer wg.Done()
		sem <- struct{}{}
		defer func() { <-sem }()
		if pctx.Err() != nil {
			return
		}
		nt := parts[i]
		sp := parent.Start(fmt.Sprintf("ext-match partition=%d", i))
		sp.Set("root", nt.Root.Test)
		begin := time.Now()

		// Short-circuit: an empty child partition makes the link predicate
		// unsatisfiable (children are complete here — they gate dispatch).
		short := false
		for _, l := range nt.Links {
			if len(ptsArr[l.To.Index()]) == 0 {
				short = true
				break
			}
		}
		if short {
			sp.Set("shortcut", "empty child partition")
			sp.Set("matches", 0)
			sp.End()
			mu.Lock()
			stats.StrategyUsed[i] = StrategySkipped
			stats.PartitionTimings = append(stats.PartitionTimings, PartitionTiming{
				Partition: i, Strategy: StrategySkipped, Duration: time.Since(begin),
			})
			for _, p := range dependents[i] {
				pendingDeps[p]--
				if pendingDeps[p] == 0 {
					dispatch(p)
				}
			}
			mu.Unlock()
			return
		}

		scratch := &QueryStats{StrategyUsed: make([]Strategy, n)}
		pnc := &stree.NavCounters{}
		m := newMatcher(db, nt, nil, scratch)
		m.noSkip = noSkip
		m.nc = pnc
		m.ctx = pctx
		childPts := make(map[*pattern.NoKTree][]uint64, len(nt.Links))
		for _, l := range nt.Links {
			childPts[l.To] = ptsArr[l.To.Index()]
		}
		db.installLinkPreds(m, nt, childPts)

		evaluate := func() ([]Match, Strategy, error) {
			startPoints, used, err := db.starts(nt, strategyForAccess(plan.Parts[i].Access), pnc)
			if err != nil {
				return nil, used, err
			}
			scratch.StartingPoints += len(startPoints)
			var matches []Match
			for _, s := range startPoints {
				if err := ctxErr(pctx); err != nil {
					return nil, used, err
				}
				ok, err := m.matchAt(nt.Root, s)
				if err != nil {
					return nil, used, err
				}
				if ok {
					matches = append(matches, s)
				}
			}
			return matches, used, nil
		}
		matches, used, err := evaluate()
		sp.Set("strategy", used.String())
		sp.Set("matches", len(matches))
		sp.Set("pages-scanned", pnc.Examined)
		sp.Set("pages-skipped", pnc.Skipped)
		sp.End()

		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			if firstErr == nil {
				firstErr = err
				cancel()
			}
			return
		}
		extArr[i] = matches
		ptsArr[i] = docPosList(matches)
		stats.StrategyUsed[i] = used
		stats.StartingPoints += scratch.StartingPoints
		stats.NPMCalls += scratch.NPMCalls
		stats.NodesVisited += scratch.NodesVisited
		nc.Examined += pnc.Examined
		nc.Skipped += pnc.Skipped
		stats.PartitionTimings = append(stats.PartitionTimings, PartitionTiming{
			Partition: i, Strategy: used, Duration: time.Since(begin), Matches: len(matches),
		})
		for _, p := range dependents[i] {
			pendingDeps[p]--
			if pendingDeps[p] == 0 {
				dispatch(p)
			}
		}
	}
	dispatch = func(i int) {
		wg.Add(1)
		go run(i)
	}

	// Seed: every non-top partition with no children is ready immediately.
	mu.Lock()
	for i := 1; i < n; i++ {
		if pendingDeps[i] == 0 {
			dispatch(i)
		}
	}
	mu.Unlock()
	wg.Wait()

	if firstErr == nil {
		if err := ctxErr(ctx); err != nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, nil, firstErr
	}

	sort.Slice(stats.PartitionTimings, func(a, b int) bool {
		return stats.PartitionTimings[a].Partition < stats.PartitionTimings[b].Partition
	})
	ext := make(map[*pattern.NoKTree][]Match, n-1)
	extPts := make(map[*pattern.NoKTree][]uint64, n-1)
	for i := 1; i < n; i++ {
		ext[parts[i]] = extArr[i]
		extPts[parts[i]] = ptsArr[i]
	}
	stats.Parallel = true
	mParallelQueries.Inc()
	return ext, extPts, nil
}
