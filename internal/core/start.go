package core

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"nok/internal/dewey"
	"nok/internal/pattern"
	"nok/internal/stree"
	"nok/internal/symtab"
	"nok/internal/vstore"
)

// Strategy selects how starting points for NoK pattern matching are
// located (§3 lists the three options; §6.2 describes the heuristic).
type Strategy uint8

const (
	// StrategyAuto applies the paper's heuristic: use the value index when
	// an (equality) value constraint exists, otherwise the tag-name index
	// when the most selective tag is selective enough, otherwise scan.
	StrategyAuto Strategy = iota
	// StrategyScan traverses the whole subject tree in document order.
	StrategyScan
	// StrategyTagIndex looks starting points up in the tag-name B+ tree.
	StrategyTagIndex
	// StrategyValueIndex locates candidates through the value B+ tree and
	// maps them to NoK-root ancestors via Dewey IDs.
	StrategyValueIndex
	// StrategyPathIndex locates candidates through the path index — the
	// paper's §8 extension. Only applicable to anchored '/'-rooted chains
	// with concrete tags; elsewhere it degrades to StrategyAuto.
	StrategyPathIndex
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyAuto:
		return "auto"
	case StrategyScan:
		return "scan"
	case StrategyTagIndex:
		return "tag-index"
	case StrategyValueIndex:
		return "value-index"
	case StrategyPathIndex:
		return "path-index"
	default:
		return fmt.Sprintf("Strategy(%d)", uint8(s))
	}
}

// scanThresholdDiv controls the §6.2 "high selectivity" cutoff: the tag
// index is used when the best tag's node count is below NodeCount/scanThresholdDiv,
// otherwise a sequential scan wins (index lookups cost random I/O per hit).
const scanThresholdDiv = 8

// selectivityCountCutoff caps the work spent counting value-index entries
// when choosing the most selective value constraint.
const selectivityCountCutoff = 4096

// starts computes the starting points for one NoK tree using the given
// strategy, returning the points in document order along with the strategy
// actually used. The NoK tree's root must not be the virtual root (the
// evaluator handles that partition itself).
func (db *DB) starts(nt *pattern.NoKTree, strat Strategy) ([]Match, Strategy, error) {
	switch strat {
	case StrategyScan:
		ms, err := db.startsByScan(nt)
		return ms, StrategyScan, err
	case StrategyTagIndex:
		ms, err := db.startsByTag(nt)
		return ms, StrategyTagIndex, err
	case StrategyValueIndex:
		ms, err := db.startsByValue(nt)
		return ms, StrategyValueIndex, err
	default:
		// StrategyAuto, and StrategyPathIndex outside an anchored chain
		// (the path of a '//'-rooted partition is not fixed).
		return db.startsAuto(nt)
	}
}

// startsAuto implements the paper's heuristic: "whenever there are value
// constraints, we always use the value index... If there are more than one
// value constraints, the most selective one is used. If there are no value
// constraints, we pick the tag name which has the highest selectivity;
// if the selectivity is high we use the tag-name index, otherwise a
// sequential scan."
func (db *DB) startsAuto(nt *pattern.NoKTree) ([]Match, Strategy, error) {
	if vn, ok := db.bestValueConstraint(nt); ok {
		ms, err := db.startsFromValueNode(nt, vn)
		return ms, StrategyValueIndex, err
	}
	node, count, ok := db.mostSelectiveTag(nt)
	if ok && count <= db.total/scanThresholdDiv {
		ms, err := db.startsFromTagNode(nt, node)
		return ms, StrategyTagIndex, err
	}
	ms, err := db.startsByScan(nt)
	return ms, StrategyScan, err
}

// startsByScan is the naïve strategy: traverse the subject tree and try
// every node whose tag matches the NoK root.
func (db *DB) startsByScan(nt *pattern.NoKTree) ([]Match, error) {
	root := nt.Root
	wild := root.Test == "*"
	var want symtab.Sym
	if !wild {
		sym, ok := db.Tags.Lookup(root.Test)
		if !ok {
			return nil, nil
		}
		want = sym
	}
	var out []Match
	err := db.Tree.Scan(func(pos stree.Pos, sym symtab.Sym, level int, id dewey.ID) bool {
		if wild || sym == want {
			out = append(out, Match{Pos: pos, ID: id.Clone()})
		}
		return true
	})
	return out, err
}

// startsByTag locates starting points through the tag index, preferring
// the most selective concrete tag in the NoK tree and walking up to the
// NoK root via Dewey prefixes. Falls back to a scan when every node is a
// wildcard.
func (db *DB) startsByTag(nt *pattern.NoKTree) ([]Match, error) {
	node, _, ok := db.mostSelectiveTag(nt)
	if !ok {
		return db.startsByScan(nt)
	}
	return db.startsFromTagNode(nt, node)
}

// mostSelectiveTag picks the NoK-tree node with a concrete tag whose
// document-wide node count is smallest (free lookup in the load-time
// statistics).
func (db *DB) mostSelectiveTag(nt *pattern.NoKTree) (depthNode, uint64, bool) {
	best := depthNode{}
	var bestCount uint64
	found := false
	var rec func(n *pattern.Node, d int)
	rec = func(n *pattern.Node, d int) {
		if !n.IsVirtualRoot() && n.Test != "*" {
			if sym, ok := db.Tags.Lookup(n.Test); ok {
				if c := db.tagCount[sym]; !found || c < bestCount {
					best = depthNode{node: n, depth: d, sym: sym}
					bestCount = c
					found = true
				}
			} else {
				// Tag absent from the document: no match is possible at
				// all; report it as an unbeatable zero-count choice.
				best = depthNode{node: n, depth: d, sym: 0, impossible: true}
				bestCount = 0
				found = true
			}
		}
		for _, c := range pattern.LocalChildren(n) {
			rec(c, d+1)
		}
	}
	rec(nt.Root, 0)
	return best, bestCount, found
}

type depthNode struct {
	node       *pattern.Node
	depth      int
	sym        symtab.Sym
	impossible bool
}

// startsFromTagNode scans the tag index for dn's symbol and lifts each hit
// to its depth-dn ancestor — the NoK-root candidate.
func (db *DB) startsFromTagNode(nt *pattern.NoKTree, dn depthNode) ([]Match, error) {
	if dn.impossible {
		return nil, nil
	}
	var prefix [2]byte
	binary.BigEndian.PutUint16(prefix[:], uint16(dn.sym))
	var out []Match
	var lastAncestor []byte
	err := db.TagIdx.ScanPrefix(prefix[:], func(key, value []byte) bool {
		id, err := dewey.FromBytes(key[2:])
		if err != nil || len(id) < dn.depth+1 {
			return true
		}
		anc := id[:len(id)-dn.depth]
		ancBytes := anc.Bytes()
		if bytes.Equal(ancBytes, lastAncestor) {
			return true // duplicate ancestor (two hits in one subtree)
		}
		lastAncestor = append(lastAncestor[:0], ancBytes...)
		m, ok := db.liftToAncestor(nt, anc, dn.depth, value)
		if ok {
			out = append(out, m)
		}
		return true
	})
	return out, err
}

// bestValueConstraint returns the most selective equality-value node of
// the NoK tree. Inequality constraints cannot use the hash index.
func (db *DB) bestValueConstraint(nt *pattern.NoKTree) (pattern.ValueNode, bool) {
	var best pattern.ValueNode
	bestCount := -1
	for _, vn := range nt.ValueConstrained() {
		if vn.Node.Cmp != pattern.CmpEq {
			continue
		}
		c := db.countValueEntries(vn.Node.Literal)
		if bestCount < 0 || c < bestCount {
			best, bestCount = vn, c
		}
	}
	return best, bestCount >= 0
}

// countValueEntries counts value-index entries for a literal, capped at
// selectivityCountCutoff.
func (db *DB) countValueEntries(literal string) int {
	var prefix [8]byte
	binary.BigEndian.PutUint64(prefix[:], vstore.Hash([]byte(literal)))
	n := 0
	_ = db.ValIdx.ScanPrefix(prefix[:], func(_, _ []byte) bool {
		n++
		return n < selectivityCountCutoff
	})
	return n
}

// startsByValue uses the best equality constraint; without one it falls
// back to the tag strategy.
func (db *DB) startsByValue(nt *pattern.NoKTree) ([]Match, error) {
	vn, ok := db.bestValueConstraint(nt)
	if !ok {
		return db.startsByTag(nt)
	}
	return db.startsFromValueNode(nt, vn)
}

// startsFromValueNode scans the value index for hash(literal), verifies
// the literal against the data file (hash collisions), and lifts hits to
// their NoK-root ancestors.
func (db *DB) startsFromValueNode(nt *pattern.NoKTree, vn pattern.ValueNode) ([]Match, error) {
	var prefix [8]byte
	binary.BigEndian.PutUint64(prefix[:], vstore.Hash([]byte(vn.Node.Literal)))
	var out []Match
	var lastAncestor []byte
	var scanErr error
	err := db.ValIdx.ScanPrefix(prefix[:], func(key, value []byte) bool {
		id, err := dewey.FromBytes(key[8:])
		if err != nil || len(id) < vn.Depth+1 {
			return true
		}
		// Verify the actual value: "Different values that are hashed to
		// the same key can be distinguished by looking up the data file."
		val, hasVal, err := db.NodeValue(id)
		if err != nil {
			scanErr = err
			return false
		}
		if !hasVal || val != vn.Node.Literal {
			return true
		}
		anc := id[:len(id)-vn.Depth]
		ancBytes := anc.Bytes()
		if bytes.Equal(ancBytes, lastAncestor) {
			return true
		}
		lastAncestor = append(lastAncestor[:0], ancBytes...)
		m, ok := db.liftToAncestor(nt, anc, vn.Depth, nil)
		if ok {
			out = append(out, m)
		}
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	return out, err
}

// liftToAncestor resolves the ancestor Dewey ID to a physical position and
// pre-filters it against the NoK root's tag test. directPos carries the
// position when depth is 0 and the index entry already holds it.
func (db *DB) liftToAncestor(nt *pattern.NoKTree, anc dewey.ID, depth int, directPos []byte) (Match, bool) {
	var pos stree.Pos
	if depth == 0 && len(directPos) >= 6 {
		p, err := decodePos(directPos)
		if err != nil {
			return Match{}, false
		}
		pos = p
	} else {
		p, _, found, err := db.NodeAt(anc)
		if err != nil || !found {
			return Match{}, false
		}
		pos = p
	}
	root := nt.Root
	if root.Test != "*" {
		sym, err := db.Tree.SymAt(pos)
		if err != nil {
			return Match{}, false
		}
		want, ok := db.Tags.Lookup(root.Test)
		if !ok || sym != want {
			return Match{}, false
		}
	}
	return Match{Pos: pos, ID: anc.Clone()}, true
}
