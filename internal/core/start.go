package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"nok/internal/dewey"
	"nok/internal/pattern"
	"nok/internal/stree"
	"nok/internal/symtab"
	"nok/internal/vstore"
)

// Strategy selects how starting points for NoK pattern matching are
// located (§3 lists the three options; §6.2 describes the heuristic).
type Strategy uint8

const (
	// StrategyAuto asks the cost-based planner when a fresh statistics
	// synopsis exists, otherwise applies the paper's heuristic: use the
	// value index when an (equality) value constraint exists, otherwise the
	// tag-name index when the most selective tag is selective enough,
	// otherwise scan.
	StrategyAuto Strategy = iota
	// StrategyScan traverses the whole subject tree in document order.
	StrategyScan
	// StrategyTagIndex looks starting points up in the tag-name B+ tree.
	StrategyTagIndex
	// StrategyValueIndex locates candidates through the value B+ tree and
	// maps them to NoK-root ancestors via Dewey IDs.
	StrategyValueIndex
	// StrategyPathIndex locates candidates through the path index — the
	// paper's §8 extension. Only applicable to anchored '/'-rooted chains
	// with concrete tags; elsewhere it degrades to StrategyAuto.
	StrategyPathIndex
	// StrategySkipped is never requested: it is recorded in QueryStats for
	// a partition whose matching was short-circuited because a linked child
	// partition had no matches (so this partition cannot match either).
	StrategySkipped
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyAuto:
		return "auto"
	case StrategyScan:
		return "scan"
	case StrategyTagIndex:
		return "tag-index"
	case StrategyValueIndex:
		return "value-index"
	case StrategyPathIndex:
		return "path-index"
	case StrategySkipped:
		return "skipped"
	default:
		return fmt.Sprintf("Strategy(%d)", uint8(s))
	}
}

// scanThresholdDiv controls the §6.2 "high selectivity" cutoff: the tag
// index is used when the best tag's node count is below NodeCount/scanThresholdDiv,
// otherwise a sequential scan wins (index lookups cost random I/O per hit).
const scanThresholdDiv = 8

// selectivityCountCutoff caps the work spent counting value-index entries
// when choosing the most selective value constraint.
const selectivityCountCutoff = 4096

// btPages adapts a NavCounters to the btree counted variants' page
// pointer: B+-tree pages read while locating starting points count as
// examined pages of the owning query.
func btPages(nc *stree.NavCounters) *uint64 {
	if nc == nil {
		return nil
	}
	return &nc.Examined
}

// starts computes the starting points for one NoK tree using the given
// strategy, returning the points in document order along with the strategy
// actually used — when a forced strategy is inapplicable (no concrete tag,
// no equality constraint) the *effective* fallback is reported, not the
// request. The NoK tree's root must not be the virtual root (the evaluator
// handles that partition itself).
func (db *Snapshot) starts(nt *pattern.NoKTree, strat Strategy, nc *stree.NavCounters) ([]Match, Strategy, error) {
	switch strat {
	case StrategyScan:
		ms, err := db.startsByScan(nt, nc)
		return ms, StrategyScan, err
	case StrategyTagIndex:
		node, _, ok := db.mostSelectiveTag(nt)
		if !ok {
			// Every node is a wildcard: nothing to look up, degrade to scan.
			ms, err := db.startsByScan(nt, nc)
			return ms, StrategyScan, err
		}
		ms, err := db.startsFromTagNode(nt, node, nc)
		return ms, StrategyTagIndex, err
	case StrategyValueIndex:
		vn, ok := db.bestValueConstraint(nt)
		if !ok {
			// No equality constraint: the hash index is unusable; degrade to
			// the tag strategy (which may itself degrade to scan).
			return db.starts(nt, StrategyTagIndex, nc)
		}
		ms, err := db.startsFromValueNode(nt, vn, nc)
		return ms, StrategyValueIndex, err
	default:
		// StrategyAuto, and StrategyPathIndex outside an anchored chain
		// (the path of a '//'-rooted partition is not fixed).
		return db.startsAuto(nt, nc)
	}
}

// startsAuto implements the paper's heuristic: "whenever there are value
// constraints, we always use the value index... If there are more than one
// value constraints, the most selective one is used. If there are no value
// constraints, we pick the tag name which has the highest selectivity;
// if the selectivity is high we use the tag-name index, otherwise a
// sequential scan."
func (db *Snapshot) startsAuto(nt *pattern.NoKTree, nc *stree.NavCounters) ([]Match, Strategy, error) {
	if vn, ok := db.bestValueConstraint(nt); ok {
		ms, err := db.startsFromValueNode(nt, vn, nc)
		return ms, StrategyValueIndex, err
	}
	node, count, ok := db.mostSelectiveTag(nt)
	if ok && count <= db.total/scanThresholdDiv {
		ms, err := db.startsFromTagNode(nt, node, nc)
		return ms, StrategyTagIndex, err
	}
	ms, err := db.startsByScan(nt, nc)
	return ms, StrategyScan, err
}

// startsByScan is the naïve strategy: traverse the subject tree and try
// every node whose tag matches the NoK root.
func (db *Snapshot) startsByScan(nt *pattern.NoKTree, nc *stree.NavCounters) ([]Match, error) {
	root := nt.Root
	wild := root.Test == "*"
	var want symtab.Sym
	if !wild {
		sym, ok := db.Tags.Lookup(root.Test)
		if !ok {
			return nil, nil
		}
		want = sym
	}
	var out []Match
	err := db.Tree.ScanCounted(func(pos stree.Pos, sym symtab.Sym, level int, id dewey.ID) bool {
		if wild || sym == want {
			out = append(out, Match{Pos: pos, ID: id.Clone()})
		}
		return true
	}, nc)
	return out, err
}

// mostSelectiveTag picks the NoK-tree node with a concrete tag whose
// document-wide node count is smallest (free lookup in the load-time
// statistics).
func (db *Snapshot) mostSelectiveTag(nt *pattern.NoKTree) (depthNode, uint64, bool) {
	best := depthNode{}
	var bestCount uint64
	found := false
	var rec func(n *pattern.Node, d int)
	rec = func(n *pattern.Node, d int) {
		if !n.IsVirtualRoot() && n.Test != "*" {
			if sym, ok := db.Tags.Lookup(n.Test); ok {
				if c := db.tagCount[sym]; !found || c < bestCount {
					best = depthNode{node: n, depth: d, sym: sym}
					bestCount = c
					found = true
				}
			} else {
				// Tag absent from the document: no match is possible at
				// all; report it as an unbeatable zero-count choice.
				best = depthNode{node: n, depth: d, sym: 0, impossible: true}
				bestCount = 0
				found = true
			}
		}
		for _, c := range pattern.LocalChildren(n) {
			rec(c, d+1)
		}
	}
	rec(nt.Root, 0)
	return best, bestCount, found
}

type depthNode struct {
	node       *pattern.Node
	depth      int
	sym        symtab.Sym
	impossible bool
}

// sortStarts puts lifted starting points in document order and drops
// duplicates. Index entries are scanned in *driving-node* Dewey order,
// which is not document order of their lifted ancestors (child 0.2.5.1
// sorts before 0.2.9, but ancestor 0.2.5 sorts after 0.2), and a
// fixed-depth lift can surface the same ancestor non-adjacently (0.2.1,
// 0.2.1.3, 0.2.2 lift at depth 1 to 0.2, 0.2.1, 0.2). Downstream
// structural joins binary-search these lists, so order and uniqueness are
// correctness requirements, not cosmetics.
func sortStarts(ms []Match) []Match {
	sort.Slice(ms, func(i, j int) bool { return dewey.Compare(ms[i].ID, ms[j].ID) < 0 })
	out := ms[:0]
	for _, m := range ms {
		if len(out) > 0 && dewey.Compare(out[len(out)-1].ID, m.ID) == 0 {
			continue
		}
		out = append(out, m)
	}
	return out
}

// startsFromTagNode scans the tag index for dn's symbol and lifts each hit
// to its depth-dn ancestor — the NoK-root candidate.
func (db *Snapshot) startsFromTagNode(nt *pattern.NoKTree, dn depthNode, nc *stree.NavCounters) ([]Match, error) {
	if dn.impossible {
		return nil, nil
	}
	var prefix [2]byte
	binary.BigEndian.PutUint16(prefix[:], uint16(dn.sym))
	var out []Match
	var lastAncestor []byte
	err := db.TagIdx.ScanPrefixCounted(prefix[:], func(key, value []byte) bool {
		id, err := dewey.FromBytes(key[2:])
		if err != nil || len(id) < dn.depth+1 {
			return true
		}
		anc := id[:len(id)-dn.depth]
		ancBytes := anc.Bytes()
		if bytes.Equal(ancBytes, lastAncestor) {
			return true // duplicate ancestor (two hits in one subtree)
		}
		lastAncestor = append(lastAncestor[:0], ancBytes...)
		m, ok := db.liftToAncestor(nt, anc, dn.depth, value, nc)
		if ok {
			out = append(out, m)
		}
		return true
	}, btPages(nc))
	if err != nil {
		return nil, err
	}
	return sortStarts(out), nil
}

// bestValueConstraint returns the most selective equality-value node of
// the NoK tree. Inequality constraints cannot use the hash index.
func (db *Snapshot) bestValueConstraint(nt *pattern.NoKTree) (pattern.ValueNode, bool) {
	var best pattern.ValueNode
	bestCount := -1
	for _, vn := range nt.ValueConstrained() {
		if vn.Node.Cmp != pattern.CmpEq {
			continue
		}
		c := db.countValueEntries(vn.Node.Literal)
		if bestCount < 0 || c < bestCount {
			best, bestCount = vn, c
		}
	}
	return best, bestCount >= 0
}

// countValueEntries counts value-index entries for a literal, capped at
// selectivityCountCutoff.
func (db *Snapshot) countValueEntries(literal string) int {
	var prefix [8]byte
	binary.BigEndian.PutUint64(prefix[:], vstore.Hash([]byte(literal)))
	n := 0
	_ = db.ValIdx.ScanPrefix(prefix[:], func(_, _ []byte) bool {
		n++
		return n < selectivityCountCutoff
	})
	return n
}

// startsFromValueNode scans the value index for hash(literal), verifies
// the literal against the data file (hash collisions), and lifts hits to
// their NoK-root ancestors.
func (db *Snapshot) startsFromValueNode(nt *pattern.NoKTree, vn pattern.ValueNode, nc *stree.NavCounters) ([]Match, error) {
	var prefix [8]byte
	binary.BigEndian.PutUint64(prefix[:], vstore.Hash([]byte(vn.Node.Literal)))
	var out []Match
	var lastAncestor []byte
	var scanErr error
	err := db.ValIdx.ScanPrefixCounted(prefix[:], func(key, value []byte) bool {
		id, err := dewey.FromBytes(key[8:])
		if err != nil || len(id) < vn.Depth+1 {
			return true
		}
		// Verify the actual value: "Different values that are hashed to
		// the same key can be distinguished by looking up the data file."
		val, hasVal, err := db.nodeValueCounted(id, nc)
		if err != nil {
			scanErr = err
			return false
		}
		if !hasVal || val != vn.Node.Literal {
			return true
		}
		anc := id[:len(id)-vn.Depth]
		ancBytes := anc.Bytes()
		if bytes.Equal(ancBytes, lastAncestor) {
			return true
		}
		lastAncestor = append(lastAncestor[:0], ancBytes...)
		m, ok := db.liftToAncestor(nt, anc, vn.Depth, nil, nc)
		if ok {
			out = append(out, m)
		}
		return true
	}, btPages(nc))
	if scanErr != nil {
		return nil, scanErr
	}
	if err != nil {
		return nil, err
	}
	return sortStarts(out), nil
}

// liftToAncestor resolves the ancestor Dewey ID to a physical position and
// pre-filters it against the NoK root's tag test. directPos carries the
// position when depth is 0 and the index entry already holds it.
func (db *Snapshot) liftToAncestor(nt *pattern.NoKTree, anc dewey.ID, depth int, directPos []byte, nc *stree.NavCounters) (Match, bool) {
	var pos stree.Pos
	if depth == 0 && len(directPos) >= 6 {
		p, err := decodePos(directPos)
		if err != nil {
			return Match{}, false
		}
		pos = p
	} else {
		p, _, found, err := db.nodeAtCounted(anc, nc)
		if err != nil || !found {
			return Match{}, false
		}
		pos = p
	}
	root := nt.Root
	if root.Test != "*" {
		nc.AddExamined(1) // SymAt touches one tree page
		sym, err := db.Tree.SymAt(pos)
		if err != nil {
			return Match{}, false
		}
		want, ok := db.Tags.Lookup(root.Test)
		if !ok || sym != want {
			return Match{}, false
		}
	}
	return Match{Pos: pos, ID: anc.Clone()}, true
}
