package core

import (
	"strings"
	"testing"

	"nok/internal/samples"
	"nok/internal/telemetry"
)

// TestTelemetryCapture checks that evaluating a query deposits a complete
// record in the default pipeline's flight recorder: expression, strategies,
// plan estimates, q-error, and (for planned queries) a renderable plan.
func TestTelemetryCapture(t *testing.T) {
	db := loadDB(t, samples.Bibliography, smallPages())

	ms, stats, err := db.Query(samples.PaperQuery, nil)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if stats.QueryID == 0 {
		t.Fatal("stats.QueryID not assigned")
	}

	var rec *telemetry.Record
	for _, r := range telemetry.Default.Recent(0) {
		if r.ID == stats.QueryID {
			rec = r
			break
		}
	}
	if rec == nil {
		t.Fatalf("query %d not in flight recorder", stats.QueryID)
	}

	// Expr is the canonical (normalized) pattern rendering — the same string
	// the plan cache keys on — so textual variants of one query aggregate.
	if rec.Expr == "" || !strings.Contains(rec.Expr, "book") {
		t.Errorf("Expr = %q, want canonical rendering of %q", rec.Expr, samples.PaperQuery)
	}
	if rec.Results != len(ms) {
		t.Errorf("Results = %d, want %d", rec.Results, len(ms))
	}
	if rec.Partitions != stats.Partitions || len(rec.Strategies) != stats.Partitions {
		t.Errorf("partitions = %d strategies = %v, want %d each", rec.Partitions, rec.Strategies, stats.Partitions)
	}
	if rec.Epoch != db.Epoch() {
		t.Errorf("Epoch = %d, want %d", rec.Epoch, db.Epoch())
	}
	if !rec.Planned {
		t.Fatal("record not marked planned despite a fresh synopsis")
	}
	if rec.QError < 1 {
		t.Errorf("QError = %g, want >= 1", rec.QError)
	}
	if rec.EstRows != stats.EstRows || rec.EstPages != stats.EstPages {
		t.Errorf("estimates (%g, %g) don't match stats (%g, %g)",
			rec.EstRows, rec.EstPages, stats.EstRows, stats.EstPages)
	}
	if plan := rec.PlanText(); !strings.Contains(plan, "plan //book") {
		t.Errorf("PlanText missing plan header:\n%s", plan)
	}
	for _, s := range rec.Strategies {
		if s == "" || s == "auto" {
			t.Errorf("unresolved strategy in record: %v", rec.Strategies)
		}
	}
}

// TestTelemetryCaptureHeuristic checks heuristic (unplanned) evaluations
// record no plan and no q-error.
func TestTelemetryCaptureHeuristic(t *testing.T) {
	db := loadDB(t, samples.Bibliography, smallPages())
	_, stats, err := db.Query("/bib/book", &QueryOptions{DisablePlanner: true})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	rec := findRecord(t, stats.QueryID)
	if rec.Planned || rec.QError != 0 || rec.PlanText() != "" {
		t.Errorf("heuristic record carries plan data: planned=%v qerror=%g plan=%q",
			rec.Planned, rec.QError, rec.PlanText())
	}
}

// TestTelemetryCaptureParseError checks malformed expressions still land in
// the flight recorder, with the error recorded.
func TestTelemetryCaptureParseError(t *testing.T) {
	db := loadDB(t, samples.Bibliography, smallPages())
	before := len(telemetry.Default.Recent(0))
	_, _, err := db.Query("//[", nil)
	if err == nil {
		t.Fatal("malformed query did not error")
	}
	recs := telemetry.Default.Recent(0)
	if len(recs) <= before && before < 256 {
		t.Fatal("parse error not recorded")
	}
	rec := recs[0] // newest first
	if rec.Expr != "//[" || rec.Error == "" {
		t.Errorf("parse-error record = expr %q error %q", rec.Expr, rec.Error)
	}
}

func findRecord(t *testing.T, id uint64) *telemetry.Record {
	t.Helper()
	if id == 0 {
		t.Fatal("query ID not assigned")
	}
	for _, r := range telemetry.Default.Recent(0) {
		if r.ID == id {
			return r
		}
	}
	t.Fatalf("query %d not in flight recorder", id)
	return nil
}
