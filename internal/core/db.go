// Package core implements the paper's primary contribution: NoK pattern
// matching (Algorithm 1) evaluated directly over the succinct physical
// storage scheme (Algorithm 2), with index-assisted starting-point location
// and structural joins between NoK partitions.
//
// A Database is a directory holding the paper's Figure-3 layout:
//
//	tree.pg      the paged string representation (internal/stree)
//	tags.sym     the tag-name alphabet Σ (internal/symtab)
//	values.dat   the value data file (internal/vstore)
//	tagidx.pg    B+ tree: tag symbol ‖ Dewey → node position
//	validx.pg    B+ tree: hash(value) ‖ Dewey → node position
//	deweyidx.pg  B+ tree: Dewey → node position ‖ value offset
//	stats.dat    per-tag node counts for the index-choice heuristic (§6.2)
//
// Both multi-valued indexes put the Dewey ID *in the key*: dewey byte
// encodings compare in document order, so a prefix scan yields entries in
// document order for free, and the Dewey ID is what lets a match on a
// value-constrained descendant be translated to its NoK-root ancestor
// (strip k components, then look the ancestor up in the Dewey index).
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"

	"nok/internal/btree"
	"nok/internal/dewey"
	"nok/internal/pager"
	"nok/internal/stree"
	"nok/internal/symtab"
	"nok/internal/vfs"
	"nok/internal/vstore"
)

// Stable file names inside a database directory. tree.pg and values.dat
// keep fixed names (in-place/append-only, protected by journal and
// manifest-length truncation); the rebuilt-on-update files are epoch-named
// (see manifest.go) and resolved through the MANIFEST.
const (
	fileTree   = "tree.pg"
	fileValues = "values.dat"
)

// NoValue is the sentinel value-offset for nodes without text content.
const NoValue = ^uint64(0)

// Options configure database creation.
type Options struct {
	// PageSize for the string tree. Defaults to pager.DefaultPageSize.
	PageSize int
	// IndexPageSize for the three B+ tree files. Defaults to PageSize when
	// that is at least 1KB (B+ tree cells need room for deep Dewey keys),
	// otherwise to pager.DefaultPageSize.
	IndexPageSize int
	// PoolPages is the buffer-pool size per paged file. Defaults to 256.
	PoolPages int
	// ReservePct is the per-page update slack of the string tree (§4.2).
	// Defaults to 20 as in the paper's example.
	ReservePct int
	// FS is the file system the store operates on. Defaults to vfs.OS;
	// crash tests substitute internal/faultfs.
	FS vfs.FS
}

func (o *Options) withDefaults() Options {
	out := Options{PageSize: pager.DefaultPageSize, PoolPages: 256, ReservePct: 20, FS: vfs.OS}
	if o != nil {
		if o.PageSize != 0 {
			out.PageSize = o.PageSize
		}
		if o.IndexPageSize != 0 {
			out.IndexPageSize = o.IndexPageSize
		}
		if o.PoolPages != 0 {
			out.PoolPages = o.PoolPages
		}
		if o.ReservePct != 0 {
			out.ReservePct = o.ReservePct
		}
		if o.FS != nil {
			out.FS = o.FS
		}
	}
	if out.IndexPageSize == 0 {
		if out.PageSize >= 1024 {
			out.IndexPageSize = out.PageSize
		} else {
			out.IndexPageSize = pager.DefaultPageSize
		}
	}
	return out
}

// DB is an opened NoK database. It embeds the current committed Snapshot:
// read helpers called directly on the DB observe the latest commit, while
// concurrent readers pin their own view with Acquire (Query does this
// automatically). Mutations are serialized by wmu and never block readers.
type DB struct {
	*Snapshot // current committed view; commits swap it under wmu

	dir  string
	fsys vfs.FS

	treeFile *pager.File

	// manifest is the commit record the DB was opened from (or last
	// committed). recovery reports what Open repaired.
	manifest *Manifest
	recovery RecoveryInfo
	// broken is set when an update failed after its commit point: the
	// in-memory state is unreliable and further mutations are refused.
	// (Failures before the commit point abort cleanly and do not set it.)
	broken bool

	// wmu serializes mutations (InsertFragment, DeleteSubtree,
	// RefreshSynopsis) and Close against each other. Readers never take it.
	wmu sync.Mutex

	// curv is the atomically published current snapshot; Acquire loads it
	// without any lock. closed gates new acquisitions during Close, and
	// viewsWG counts live snapshots so Close can wait for readers (and the
	// GC their final Release triggers) to drain.
	curv    atomic.Pointer[Snapshot]
	closed  atomic.Bool
	viewsWG sync.WaitGroup
}

// Open attaches to an existing database directory. If the directory holds
// leftovers of an interrupted transaction (uncommitted file tails, orphan
// epoch files or copy-on-write pages), Open first rolls the store back to
// its last committed state; Recovery reports what was done.
func Open(dir string, opts *Options) (*DB, error) {
	o := opts.withDefaults()
	m, info, err := recoverStore(o.FS, dir)
	if err != nil {
		return nil, err
	}
	v := &Snapshot{epoch: m.Epoch, tagCount: make(map[symtab.Sym]uint64)}
	db := &DB{Snapshot: v, dir: dir, fsys: o.FS, manifest: m, recovery: info}
	v.db = db
	ok := false
	defer func() {
		if !ok {
			db.Close()
		}
	}()

	popts := func() *pager.Options { return &pager.Options{PoolPages: o.PoolPages, FS: o.FS} }
	if db.treeFile, err = pager.Open(db.path(roleTree), popts()); err != nil {
		return nil, fmt.Errorf("core: opening tree: %w", err)
	}
	// Install the committed page-table version from the treemap sidecar,
	// then pin it for the initial snapshot. Physical pages not referenced
	// by the committed table (crashed copy-on-write leftovers) are derived
	// into the free list here, never reused as content.
	side, err := vfs.ReadFile(o.FS, db.path(roleTreeMap))
	if err != nil {
		return nil, fmt.Errorf("core: reading tree page table: %w", err)
	}
	sideEpoch, err := db.treeFile.InstallVersion(side)
	if err != nil {
		return nil, fmt.Errorf("core: installing tree page table: %w", err)
	}
	if sideEpoch != m.Epoch {
		return nil, fmt.Errorf("core: tree page table is for epoch %d, manifest committed %d", sideEpoch, m.Epoch)
	}
	wtree, err := stree.Open(db.treeFile)
	if err != nil {
		return nil, err
	}
	psn, err := db.treeFile.Acquire()
	if err != nil {
		return nil, err
	}
	v.psn = psn
	v.Tree = wtree.Snapshot(psn)
	if v.Tags, err = symtab.LoadFS(o.FS, db.path(roleTags)); err != nil {
		return nil, fmt.Errorf("core: loading symbols: %w", err)
	}
	if v.Values, err = vstore.OpenFS(o.FS, db.path(roleValues)); err != nil {
		return nil, fmt.Errorf("core: opening values: %w", err)
	}
	if v.tagIdxFile, err = pager.Open(db.path(roleTagIdx), popts()); err != nil {
		return nil, fmt.Errorf("core: opening tag index: %w", err)
	}
	if v.TagIdx, err = btree.Open(v.tagIdxFile); err != nil {
		return nil, err
	}
	if v.valIdxFile, err = pager.Open(db.path(roleValIdx), popts()); err != nil {
		return nil, fmt.Errorf("core: opening value index: %w", err)
	}
	if v.ValIdx, err = btree.Open(v.valIdxFile); err != nil {
		return nil, err
	}
	if v.dewIdxFile, err = pager.Open(db.path(roleDewIdx), popts()); err != nil {
		return nil, fmt.Errorf("core: opening dewey index: %w", err)
	}
	if v.DeweyIdx, err = btree.Open(v.dewIdxFile); err != nil {
		return nil, err
	}
	if v.pathIdxFile, err = pager.Open(db.path(rolePathIdx), popts()); err != nil {
		return nil, fmt.Errorf("core: opening path index: %w", err)
	}
	if v.PathIdx, err = btree.Open(v.pathIdxFile); err != nil {
		return nil, err
	}
	if v.tagCount, v.total, err = loadStatsFile(o.FS, db.path(roleStats)); err != nil {
		return nil, err
	}
	// Best-effort: a missing, stale or corrupt synopsis never blocks the
	// open — the planner falls back to the §6.2 heuristic.
	db.loadSynopsis()
	v.publish()
	ok = true
	return db, nil
}

// path returns the physical path of a manifest role.
func (db *DB) path(role string) string {
	return filepath.Join(db.dir, db.manifest.Files[role].Name)
}

// join resolves a physical file name inside the store directory.
func (db *DB) join(name string) string { return filepath.Join(db.dir, name) }

// Recovery reports what Open repaired to reach a committed state.
func (db *DB) Recovery() RecoveryInfo { return db.recovery }

// Manifest returns the commit record the DB is running on.
func (db *DB) Manifest() *Manifest { return db.manifest }

// Close releases the store. It stops new acquisitions, drops the DB's
// reference on the current snapshot, waits for in-flight readers (whose
// final Release garbage-collects their views), then closes the shared
// files. Closing twice is a no-op. Do not call Close from a goroutine
// that still holds an acquired Snapshot — that deadlocks the drain.
func (db *DB) Close() error {
	if db.closed.Swap(true) {
		return nil
	}
	var errs []error
	if cur := db.curv.Swap(nil); cur != nil {
		cur.Release()
		db.viewsWG.Wait()
	} else if db.Snapshot != nil {
		// Partially opened store: refcounting was never wired; close the
		// view's raw files directly.
		errs = append(errs, db.Snapshot.closeFiles()...)
		if db.Snapshot.psn != nil {
			db.Snapshot.psn.Release()
		}
	}
	if db.Values != nil {
		if err := db.Values.Close(); err != nil {
			errs = append(errs, fmt.Errorf("values: %w", err))
		}
	}
	if db.treeFile != nil {
		if err := db.treeFile.Close(); err != nil {
			errs = append(errs, fmt.Errorf("tree: %w", err))
		}
	}
	return errors.Join(errs...)
}

// Dir returns the database directory.
func (db *DB) Dir() string { return db.dir }

// NodeCount returns the number of element nodes (attributes included).
func (db *Snapshot) NodeCount() uint64 { return db.Tree.NodeCount() }

// TagCount returns how many nodes carry the tag name.
func (db *Snapshot) TagCount(name string) uint64 {
	sym, ok := db.Tags.Lookup(name)
	if !ok {
		return 0
	}
	return db.tagCount[sym]
}

// ---- key encodings ----------------------------------------------------------

// encodePos packs a position into 6 bytes.
func encodePos(p stree.Pos) []byte {
	var b [6]byte
	binary.BigEndian.PutUint32(b[0:4], uint32(p.Chain))
	binary.BigEndian.PutUint16(b[4:6], uint16(p.Off))
	return b[:]
}

func decodePos(b []byte) (stree.Pos, error) {
	if len(b) < 6 {
		return stree.Pos{}, errors.New("core: truncated position")
	}
	return stree.Pos{
		Chain: int(binary.BigEndian.Uint32(b[0:4])),
		Off:   int(binary.BigEndian.Uint16(b[4:6])),
	}, nil
}

// tagKey composes the tag-index key sym ‖ dewey.
func tagKey(sym symtab.Sym, id dewey.ID) []byte {
	key := make([]byte, 2, 2+len(id)*2)
	binary.BigEndian.PutUint16(key, uint16(sym))
	return append(key, id.Bytes()...)
}

// valKey composes the value-index key hash ‖ dewey.
func valKey(hash uint64, id dewey.ID) []byte {
	key := make([]byte, 8, 8+len(id)*2)
	binary.BigEndian.PutUint64(key, hash)
	return append(key, id.Bytes()...)
}

// deweyVal composes the Dewey-index value pos ‖ valueOffset.
func deweyVal(pos stree.Pos, valOff uint64) []byte {
	out := make([]byte, 14)
	copy(out, encodePos(pos))
	binary.BigEndian.PutUint64(out[6:], valOff)
	return out
}

// NodeAt returns the position and value offset recorded for a Dewey ID.
func (db *Snapshot) NodeAt(id dewey.ID) (pos stree.Pos, valOff uint64, ok bool, err error) {
	return db.nodeAtCounted(id, nil)
}

// nodeAtCounted is NodeAt attributing the Dewey-index descent to nc.
func (db *Snapshot) nodeAtCounted(id dewey.ID, nc *stree.NavCounters) (pos stree.Pos, valOff uint64, ok bool, err error) {
	v, found, err := db.DeweyIdx.GetCounted(id.Bytes(), btPages(nc))
	if err != nil || !found {
		return stree.Pos{}, 0, false, err
	}
	if len(v) != 14 {
		return stree.Pos{}, 0, false, fmt.Errorf("core: corrupt dewey index entry for %s", id)
	}
	pos, err = decodePos(v)
	if err != nil {
		return stree.Pos{}, 0, false, err
	}
	return pos, binary.BigEndian.Uint64(v[6:]), true, nil
}

// NodeValue returns the text value of the node with the given Dewey ID.
// ok is false when the node has no value (or no such node exists).
func (db *Snapshot) NodeValue(id dewey.ID) (string, bool, error) {
	return db.nodeValueCounted(id, nil)
}

// nodeValueCounted is NodeValue attributing the Dewey-index descent to nc.
func (db *Snapshot) nodeValueCounted(id dewey.ID, nc *stree.NavCounters) (string, bool, error) {
	_, valOff, found, err := db.nodeAtCounted(id, nc)
	if err != nil || !found || valOff == NoValue {
		return "", false, err
	}
	v, err := db.Values.Get(int64(valOff))
	if err != nil {
		return "", false, err
	}
	return string(v), true, nil
}

// ---- statistics -------------------------------------------------------------

// saveStatsFile writes a statistics file atomically (tmp + fsync + rename
// + directory fsync) at the given path.
func saveStatsFile(fsys vfs.FS, path string, tags *symtab.Table, tagCount map[symtab.Sym]uint64, total uint64) error {
	buf := make([]byte, 0, 16+len(tagCount)*10)
	var tmp [10]byte
	binary.BigEndian.PutUint64(tmp[:8], total)
	buf = append(buf, tmp[:8]...)
	binary.BigEndian.PutUint32(tmp[:4], uint32(len(tagCount)))
	buf = append(buf, tmp[:4]...)
	for sym := symtab.Sym(1); int(sym) <= tags.Len(); sym++ {
		binary.BigEndian.PutUint16(tmp[:2], uint16(sym))
		binary.BigEndian.PutUint64(tmp[2:10], tagCount[sym])
		buf = append(buf, tmp[:10]...)
	}
	return vfs.WriteFileAtomic(fsys, path, buf, 0o644)
}

func loadStatsFile(fsys vfs.FS, path string) (map[symtab.Sym]uint64, uint64, error) {
	raw, err := vfs.ReadFile(fsys, path)
	if err != nil {
		return nil, 0, fmt.Errorf("core: loading stats: %w", err)
	}
	if len(raw) < 12 {
		return nil, 0, errors.New("core: truncated stats file")
	}
	total := binary.BigEndian.Uint64(raw[:8])
	n := int(binary.BigEndian.Uint32(raw[8:12]))
	raw = raw[12:]
	if len(raw) < n*10 {
		return nil, 0, errors.New("core: truncated stats entries")
	}
	tagCount := make(map[symtab.Sym]uint64, n)
	for i := 0; i < n; i++ {
		sym := symtab.Sym(binary.BigEndian.Uint16(raw[i*10:]))
		tagCount[sym] = binary.BigEndian.Uint64(raw[i*10+2:])
	}
	return tagCount, total, nil
}

// IndexSizes reports the on-disk size in bytes of the string tree and the
// three B+ trees — the |tree|, |B+t|, |B+v|, |B+i| columns of Table 1.
func (db *DB) IndexSizes() (tree, tagIdx, valIdx, dewIdx int64) {
	sz := func(role string) int64 {
		fi, err := db.fsys.Stat(db.path(role))
		if err != nil {
			return 0
		}
		return fi.Size()
	}
	// The string representation's logical size is TokenBytes; the file
	// size includes page slack, so report the logical size for |tree| and
	// file sizes for the indexes (as the paper does: |tree| is 0.035MB for
	// a 1.2MB document, far below one page-rounded file).
	return int64(db.Tree.TokenBytes()), sz(roleTagIdx), sz(roleValIdx), sz(roleDewIdx)
}
