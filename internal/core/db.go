// Package core implements the paper's primary contribution: NoK pattern
// matching (Algorithm 1) evaluated directly over the succinct physical
// storage scheme (Algorithm 2), with index-assisted starting-point location
// and structural joins between NoK partitions.
//
// A Database is a directory holding the paper's Figure-3 layout:
//
//	tree.pg      the paged string representation (internal/stree)
//	tags.sym     the tag-name alphabet Σ (internal/symtab)
//	values.dat   the value data file (internal/vstore)
//	tagidx.pg    B+ tree: tag symbol ‖ Dewey → node position
//	validx.pg    B+ tree: hash(value) ‖ Dewey → node position
//	deweyidx.pg  B+ tree: Dewey → node position ‖ value offset
//	stats.dat    per-tag node counts for the index-choice heuristic (§6.2)
//
// Both multi-valued indexes put the Dewey ID *in the key*: dewey byte
// encodings compare in document order, so a prefix scan yields entries in
// document order for free, and the Dewey ID is what lets a match on a
// value-constrained descendant be translated to its NoK-root ancestor
// (strip k components, then look the ancestor up in the Dewey index).
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"path/filepath"
	"sync"

	"nok/internal/btree"
	"nok/internal/dewey"
	"nok/internal/pager"
	"nok/internal/planner"
	"nok/internal/stats"
	"nok/internal/stree"
	"nok/internal/symtab"
	"nok/internal/vfs"
	"nok/internal/vstore"
)

// Stable file names inside a database directory. tree.pg and values.dat
// keep fixed names (in-place/append-only, protected by journal and
// manifest-length truncation); the rebuilt-on-update files are epoch-named
// (see manifest.go) and resolved through the MANIFEST.
const (
	fileTree   = "tree.pg"
	fileValues = "values.dat"
)

// NoValue is the sentinel value-offset for nodes without text content.
const NoValue = ^uint64(0)

// Options configure database creation.
type Options struct {
	// PageSize for the string tree. Defaults to pager.DefaultPageSize.
	PageSize int
	// IndexPageSize for the three B+ tree files. Defaults to PageSize when
	// that is at least 1KB (B+ tree cells need room for deep Dewey keys),
	// otherwise to pager.DefaultPageSize.
	IndexPageSize int
	// PoolPages is the buffer-pool size per paged file. Defaults to 256.
	PoolPages int
	// ReservePct is the per-page update slack of the string tree (§4.2).
	// Defaults to 20 as in the paper's example.
	ReservePct int
	// FS is the file system the store operates on. Defaults to vfs.OS;
	// crash tests substitute internal/faultfs.
	FS vfs.FS
}

func (o *Options) withDefaults() Options {
	out := Options{PageSize: pager.DefaultPageSize, PoolPages: 256, ReservePct: 20, FS: vfs.OS}
	if o != nil {
		if o.PageSize != 0 {
			out.PageSize = o.PageSize
		}
		if o.IndexPageSize != 0 {
			out.IndexPageSize = o.IndexPageSize
		}
		if o.PoolPages != 0 {
			out.PoolPages = o.PoolPages
		}
		if o.ReservePct != 0 {
			out.ReservePct = o.ReservePct
		}
		if o.FS != nil {
			out.FS = o.FS
		}
	}
	if out.IndexPageSize == 0 {
		if out.PageSize >= 1024 {
			out.IndexPageSize = out.PageSize
		} else {
			out.IndexPageSize = pager.DefaultPageSize
		}
	}
	return out
}

// DB is an opened NoK database.
type DB struct {
	dir  string
	fsys vfs.FS

	Tree   *stree.Store
	Tags   *symtab.Table
	Values *vstore.Store

	TagIdx   *btree.Tree
	ValIdx   *btree.Tree
	DeweyIdx *btree.Tree
	// PathIdx is the §8 path-index extension: hash(root-to-node tag path)
	// ‖ Dewey → position. See internal/core/pathidx.go.
	PathIdx *btree.Tree

	treeFile, tagIdxFile, valIdxFile, dewIdxFile, pathIdxFile *pager.File

	// manifest is the commit record the DB was opened from (or last
	// committed); epoch is its epoch. recovery reports what Open repaired.
	manifest *Manifest
	epoch    uint64
	recovery RecoveryInfo
	// broken is set when an update transaction failed midway: the
	// in-memory state is unreliable, further mutations are refused, and
	// the on-disk journal will roll the store back at next open.
	broken bool

	// tagCount[sym] is the number of nodes with that tag — the §6.2
	// selectivity statistic.
	tagCount map[symtab.Sym]uint64
	total    uint64

	// synopsis is the statistics synopsis loaded from the manifest's
	// synopsis role (nil when the store has none); the planner only trusts
	// it when its epoch equals the store's. planCache memoizes plans per
	// canonical expression, guarded by planMu and invalidated on commit.
	synopsis  *stats.Synopsis
	planMu    sync.Mutex
	planCache map[string]*planner.Plan
}

// Open attaches to an existing database directory. If the directory holds
// an interrupted transaction (undo journal, uncommitted file tails, orphan
// epoch files), Open first rolls the store back to its last committed
// state; Recovery reports what was done.
func Open(dir string, opts *Options) (*DB, error) {
	o := opts.withDefaults()
	m, info, err := recoverStore(o.FS, dir)
	if err != nil {
		return nil, err
	}
	db := &DB{dir: dir, fsys: o.FS, manifest: m, epoch: m.Epoch, recovery: info, tagCount: make(map[symtab.Sym]uint64)}
	ok := false
	defer func() {
		if !ok {
			db.Close()
		}
	}()

	popts := func() *pager.Options { return &pager.Options{PoolPages: o.PoolPages, FS: o.FS} }
	if db.treeFile, err = pager.Open(db.path(roleTree), popts()); err != nil {
		return nil, fmt.Errorf("core: opening tree: %w", err)
	}
	if db.Tree, err = stree.Open(db.treeFile); err != nil {
		return nil, err
	}
	if db.Tags, err = symtab.LoadFS(o.FS, db.path(roleTags)); err != nil {
		return nil, fmt.Errorf("core: loading symbols: %w", err)
	}
	if db.Values, err = vstore.OpenFS(o.FS, db.path(roleValues)); err != nil {
		return nil, fmt.Errorf("core: opening values: %w", err)
	}
	if db.tagIdxFile, err = pager.Open(db.path(roleTagIdx), popts()); err != nil {
		return nil, fmt.Errorf("core: opening tag index: %w", err)
	}
	if db.TagIdx, err = btree.Open(db.tagIdxFile); err != nil {
		return nil, err
	}
	if db.valIdxFile, err = pager.Open(db.path(roleValIdx), popts()); err != nil {
		return nil, fmt.Errorf("core: opening value index: %w", err)
	}
	if db.ValIdx, err = btree.Open(db.valIdxFile); err != nil {
		return nil, err
	}
	if db.dewIdxFile, err = pager.Open(db.path(roleDewIdx), popts()); err != nil {
		return nil, fmt.Errorf("core: opening dewey index: %w", err)
	}
	if db.DeweyIdx, err = btree.Open(db.dewIdxFile); err != nil {
		return nil, err
	}
	if db.pathIdxFile, err = pager.Open(db.path(rolePathIdx), popts()); err != nil {
		return nil, fmt.Errorf("core: opening path index: %w", err)
	}
	if db.PathIdx, err = btree.Open(db.pathIdxFile); err != nil {
		return nil, err
	}
	if err := db.loadStats(); err != nil {
		return nil, err
	}
	// Best-effort: a missing, stale or corrupt synopsis never blocks the
	// open — the planner falls back to the §6.2 heuristic.
	db.loadSynopsis()
	ok = true
	return db, nil
}

// path returns the physical path of a manifest role.
func (db *DB) path(role string) string {
	return filepath.Join(db.dir, db.manifest.Files[role].Name)
}

// Recovery reports what Open repaired to reach a committed state.
func (db *DB) Recovery() RecoveryInfo { return db.recovery }

// Epoch returns the store's committed epoch.
func (db *DB) Epoch() uint64 { return db.epoch }

// Manifest returns the commit record the DB is running on.
func (db *DB) Manifest() *Manifest { return db.manifest }

// Close releases every file, aggregating all close errors. Safe to call on
// a partially opened DB.
func (db *DB) Close() error {
	var errs []error
	if db.Values != nil {
		if err := db.Values.Close(); err != nil {
			errs = append(errs, fmt.Errorf("values: %w", err))
		}
	}
	for _, pf := range []*pager.File{db.treeFile, db.tagIdxFile, db.valIdxFile, db.dewIdxFile, db.pathIdxFile} {
		if pf != nil {
			if err := pf.Close(); err != nil {
				errs = append(errs, fmt.Errorf("%s: %w", filepath.Base(pf.Path()), err))
			}
		}
	}
	return errors.Join(errs...)
}

// Dir returns the database directory.
func (db *DB) Dir() string { return db.dir }

// NodeCount returns the number of element nodes (attributes included).
func (db *DB) NodeCount() uint64 { return db.Tree.NodeCount() }

// TagCount returns how many nodes carry the tag name.
func (db *DB) TagCount(name string) uint64 {
	sym, ok := db.Tags.Lookup(name)
	if !ok {
		return 0
	}
	return db.tagCount[sym]
}

// ---- key encodings ----------------------------------------------------------

// encodePos packs a position into 6 bytes.
func encodePos(p stree.Pos) []byte {
	var b [6]byte
	binary.BigEndian.PutUint32(b[0:4], uint32(p.Chain))
	binary.BigEndian.PutUint16(b[4:6], uint16(p.Off))
	return b[:]
}

func decodePos(b []byte) (stree.Pos, error) {
	if len(b) < 6 {
		return stree.Pos{}, errors.New("core: truncated position")
	}
	return stree.Pos{
		Chain: int(binary.BigEndian.Uint32(b[0:4])),
		Off:   int(binary.BigEndian.Uint16(b[4:6])),
	}, nil
}

// tagKey composes the tag-index key sym ‖ dewey.
func tagKey(sym symtab.Sym, id dewey.ID) []byte {
	key := make([]byte, 2, 2+len(id)*2)
	binary.BigEndian.PutUint16(key, uint16(sym))
	return append(key, id.Bytes()...)
}

// valKey composes the value-index key hash ‖ dewey.
func valKey(hash uint64, id dewey.ID) []byte {
	key := make([]byte, 8, 8+len(id)*2)
	binary.BigEndian.PutUint64(key, hash)
	return append(key, id.Bytes()...)
}

// deweyVal composes the Dewey-index value pos ‖ valueOffset.
func deweyVal(pos stree.Pos, valOff uint64) []byte {
	out := make([]byte, 14)
	copy(out, encodePos(pos))
	binary.BigEndian.PutUint64(out[6:], valOff)
	return out
}

// NodeAt returns the position and value offset recorded for a Dewey ID.
func (db *DB) NodeAt(id dewey.ID) (pos stree.Pos, valOff uint64, ok bool, err error) {
	return db.nodeAtCounted(id, nil)
}

// nodeAtCounted is NodeAt attributing the Dewey-index descent to nc.
func (db *DB) nodeAtCounted(id dewey.ID, nc *stree.NavCounters) (pos stree.Pos, valOff uint64, ok bool, err error) {
	v, found, err := db.DeweyIdx.GetCounted(id.Bytes(), btPages(nc))
	if err != nil || !found {
		return stree.Pos{}, 0, false, err
	}
	if len(v) != 14 {
		return stree.Pos{}, 0, false, fmt.Errorf("core: corrupt dewey index entry for %s", id)
	}
	pos, err = decodePos(v)
	if err != nil {
		return stree.Pos{}, 0, false, err
	}
	return pos, binary.BigEndian.Uint64(v[6:]), true, nil
}

// NodeValue returns the text value of the node with the given Dewey ID.
// ok is false when the node has no value (or no such node exists).
func (db *DB) NodeValue(id dewey.ID) (string, bool, error) {
	return db.nodeValueCounted(id, nil)
}

// nodeValueCounted is NodeValue attributing the Dewey-index descent to nc.
func (db *DB) nodeValueCounted(id dewey.ID, nc *stree.NavCounters) (string, bool, error) {
	_, valOff, found, err := db.nodeAtCounted(id, nc)
	if err != nil || !found || valOff == NoValue {
		return "", false, err
	}
	v, err := db.Values.Get(int64(valOff))
	if err != nil {
		return "", false, err
	}
	return string(v), true, nil
}

// ---- statistics -------------------------------------------------------------

// saveStats writes the statistics file atomically (tmp + fsync + rename +
// directory fsync) at the given path.
func (db *DB) saveStats(path string) error {
	buf := make([]byte, 0, 16+len(db.tagCount)*10)
	var tmp [10]byte
	binary.BigEndian.PutUint64(tmp[:8], db.total)
	buf = append(buf, tmp[:8]...)
	binary.BigEndian.PutUint32(tmp[:4], uint32(len(db.tagCount)))
	buf = append(buf, tmp[:4]...)
	for sym := symtab.Sym(1); int(sym) <= db.Tags.Len(); sym++ {
		binary.BigEndian.PutUint16(tmp[:2], uint16(sym))
		binary.BigEndian.PutUint64(tmp[2:10], db.tagCount[sym])
		buf = append(buf, tmp[:10]...)
	}
	return vfs.WriteFileAtomic(db.fsys, path, buf, 0o644)
}

func (db *DB) loadStats() error {
	raw, err := vfs.ReadFile(db.fsys, db.path(roleStats))
	if err != nil {
		return fmt.Errorf("core: loading stats: %w", err)
	}
	if len(raw) < 12 {
		return errors.New("core: truncated stats file")
	}
	db.total = binary.BigEndian.Uint64(raw[:8])
	n := int(binary.BigEndian.Uint32(raw[8:12]))
	raw = raw[12:]
	if len(raw) < n*10 {
		return errors.New("core: truncated stats entries")
	}
	for i := 0; i < n; i++ {
		sym := symtab.Sym(binary.BigEndian.Uint16(raw[i*10:]))
		db.tagCount[sym] = binary.BigEndian.Uint64(raw[i*10+2:])
	}
	return nil
}

// IndexSizes reports the on-disk size in bytes of the string tree and the
// three B+ trees — the |tree|, |B+t|, |B+v|, |B+i| columns of Table 1.
func (db *DB) IndexSizes() (tree, tagIdx, valIdx, dewIdx int64) {
	sz := func(role string) int64 {
		fi, err := db.fsys.Stat(db.path(role))
		if err != nil {
			return 0
		}
		return fi.Size()
	}
	// The string representation's logical size is TokenBytes; the file
	// size includes page slack, so report the logical size for |tree| and
	// file sizes for the indexes (as the paper does: |tree| is 0.035MB for
	// a 1.2MB document, far below one page-rounded file).
	return int64(db.Tree.TokenBytes()), sz(roleTagIdx), sz(roleValIdx), sz(roleDewIdx)
}
