package core

import (
	"encoding/binary"
	"fmt"

	"nok/internal/btree"
	"nok/internal/dewey"
	"nok/internal/obs"
	"nok/internal/pager"
	"nok/internal/vstore"
)

// Store-verification counters, exposed through the default obs registry.
var (
	mVerifyRuns     = obs.Default.Counter("nok_store_verify_runs_total", "Verify invocations")
	mVerifyFailures = obs.Default.Counter("nok_store_verify_failures_total", "Verify invocations that found at least one issue")
	mVerifyIssues   = obs.Default.Counter("nok_store_verify_issues_total", "individual issues reported by Verify")
)

// VerifyIssue is one problem Verify found, tagged with the store component
// it belongs to.
type VerifyIssue struct {
	Component string // "manifest", "tree", "tagidx", "validx", "deweyidx", "pathidx", "values", "stats", "cross"
	Err       error
}

func (i VerifyIssue) String() string { return i.Component + ": " + i.Err.Error() }

// VerifyResult summarizes one Verify run.
type VerifyResult struct {
	Deep bool
	// PagesChecked counts physical pages whose checksum trailer was read
	// (deep only).
	PagesChecked int
	// EntriesChecked counts Dewey-index entries cross-referenced against
	// the string tree and value file (deep only).
	EntriesChecked uint64
	// RecordsChecked counts value records scanned (deep only).
	RecordsChecked int
	Issues         []VerifyIssue
}

// OK reports whether the store passed.
func (r *VerifyResult) OK() bool { return len(r.Issues) == 0 }

// Verify checks the store's integrity and returns everything it found
// wrong (never an error: problems it hits while checking are themselves
// findings).
//
// The quick form checks the commit manifest against the files on disk
// (presence and committed sizes) and the cheap cross-component invariants:
// the four index key counts, the statistics totals, and the node count all
// describing the same document.
//
// With deep set it additionally reads every physical page of the five
// paged files and validates its checksum trailer, re-derives the string
// tree's balanced-parenthesis and (st,lo,hi) header invariants, walks all
// four B+ tree leaf chains, scans every value record, recomputes whole-file
// checksums against the manifest, and resolves every Dewey-index entry
// back to a live tree position and value record.
func (db *DB) Verify(deep bool) *VerifyResult {
	mVerifyRuns.Inc()
	r := &VerifyResult{Deep: deep}
	emit := func(component string, err error) {
		r.Issues = append(r.Issues, VerifyIssue{Component: component, Err: err})
	}
	defer func() {
		mVerifyIssues.Add(int64(len(r.Issues)))
		if !r.OK() {
			mVerifyFailures.Inc()
		}
	}()

	if db.broken {
		emit("cross", fmt.Errorf("store is in a failed update transaction; close and reopen to roll back"))
		return r
	}

	db.verifyManifest(deep, emit)
	db.verifyCounts(emit)
	if deep {
		db.verifyPages(r, emit)
		db.verifyTree(emit)
		db.verifyIndexes(emit)
		db.verifyValues(r, emit)
		db.verifyDeweyEntries(r, emit)
	}
	return r
}

// verifyManifest checks each committed file's presence and size, and (deep)
// recomputes its checksum against the manifest record. The store must be
// quiescent — a flush since the last commit would legitimately change
// tree.pg, but Verify runs on opened-and-unmodified or freshly committed
// stores, where disk state is exactly what the manifest recorded.
func (db *DB) verifyManifest(deep bool, emit func(string, error)) {
	if db.manifest == nil {
		emit("manifest", fmt.Errorf("store has no manifest loaded"))
		return
	}
	roles := allRoles
	if _, ok := db.manifest.Files[roleSynopsis]; ok {
		// The synopsis is optional at open time, but once committed it must
		// verify like any other store file.
		roles = append(append([]string(nil), allRoles...), roleSynopsis)
	}
	for _, role := range roles {
		rec, ok := db.manifest.Files[role]
		if !ok {
			emit("manifest", fmt.Errorf("role %s missing from manifest", role))
			continue
		}
		path := db.path(role)
		fi, err := db.fsys.Stat(path)
		if err != nil {
			emit("manifest", fmt.Errorf("role %s: %w", role, err))
			continue
		}
		if fi.Size() != rec.Size {
			emit("manifest", fmt.Errorf("role %s (%s): size %d, manifest committed %d", role, rec.Name, fi.Size(), rec.Size))
			continue
		}
		if deep && role != roleTree {
			// tree.pg carries no whole-file CRC: its free pages hold stale
			// bytes by design (copy-on-write). Deep verification covers it
			// through the per-page checksum trailers of every page the
			// committed page table references (verifyPages).
			_, sum, err := fileChecksum(db.fsys, path)
			if err != nil {
				emit("manifest", fmt.Errorf("role %s: checksumming: %w", role, err))
			} else if sum != rec.CRC32C {
				emit("manifest", fmt.Errorf("role %s (%s): crc32c %08x, manifest committed %08x", role, rec.Name, sum, rec.CRC32C))
			}
		}
	}
}

// verifyCounts checks the cheap cross-component invariants: every index
// and the statistics file describe the same number of nodes.
func (db *DB) verifyCounts(emit func(string, error)) {
	nodes := db.Tree.NodeCount()
	for _, idx := range []struct {
		name string
		t    *btree.Tree
	}{
		{"tagidx", db.TagIdx},
		{"deweyidx", db.DeweyIdx},
		{"pathidx", db.PathIdx},
	} {
		if c := idx.t.Count(); c != nodes {
			emit("cross", fmt.Errorf("%s holds %d keys, tree holds %d nodes", idx.name, c, nodes))
		}
	}
	// The value index has one key per node *with* a value, so it is only
	// bounded by the node count.
	if c := db.ValIdx.Count(); c > nodes {
		emit("cross", fmt.Errorf("validx holds %d keys, more than the %d nodes", c, nodes))
	}
	if db.total != nodes {
		emit("stats", fmt.Errorf("stats total %d, tree holds %d nodes", db.total, nodes))
	}
	var sum uint64
	for _, c := range db.tagCount {
		sum += c
	}
	if sum != nodes {
		emit("stats", fmt.Errorf("per-tag counts sum to %d, tree holds %d nodes", sum, nodes))
	}
}

// verifyPages checks the checksum trailer of every page the committed
// tree page table references, and of every physical page in the four
// index files.
func (db *DB) verifyPages(r *VerifyResult, emit func(string, error)) {
	n, err := db.treeFile.VerifyVersionPages(func(id pager.PageID, perr error) {
		emit("tree", perr)
	})
	if err != nil {
		emit("tree", err)
	}
	r.PagesChecked += n
	for _, f := range []struct {
		name string
		pf   *pager.File
	}{
		{"tagidx", db.tagIdxFile},
		{"validx", db.valIdxFile},
		{"deweyidx", db.dewIdxFile},
		{"pathidx", db.pathIdxFile},
	} {
		name := f.name
		n, err := f.pf.VerifyPages(func(id pager.PageID, perr error) {
			emit(name, perr)
		})
		if err != nil {
			emit(name, err)
		}
		r.PagesChecked += n
	}
}

// verifyTree re-derives the string representation's invariants.
func (db *DB) verifyTree(emit func(string, error)) {
	if _, err := db.Tree.Verify(func(verr error) { emit("tree", verr) }); err != nil {
		emit("tree", fmt.Errorf("verification aborted: %w", err))
	}
}

// verifyIndexes walks all four B+ tree leaf chains.
func (db *DB) verifyIndexes(emit func(string, error)) {
	for _, idx := range []struct {
		name string
		t    *btree.Tree
	}{
		{"tagidx", db.TagIdx},
		{"validx", db.ValIdx},
		{"deweyidx", db.DeweyIdx},
		{"pathidx", db.PathIdx},
	} {
		name := idx.name
		if _, err := idx.t.Verify(func(verr error) { emit(name, verr) }); err != nil {
			emit(name, fmt.Errorf("verification aborted: %w", err))
		}
	}
}

// verifyValues scans every value record (the scan itself validates record
// framing).
func (db *DB) verifyValues(r *VerifyResult, emit func(string, error)) {
	n := 0
	if err := db.Values.Scan(func(off int64, v []byte) bool {
		n++
		return true
	}); err != nil {
		emit("values", err)
	}
	r.RecordsChecked = n
}

// verifyDeweyEntries resolves every Dewey-index entry: the key must parse
// as a Dewey ID, the position must address an open token whose symbol is
// interned, and the value offset must address a readable record whose
// content is indexed under the right hash in the value index.
func (db *DB) verifyDeweyEntries(r *VerifyResult, emit func(string, error)) {
	issues := 0
	const maxReported = 20 // a systemic failure would otherwise flood the report
	report := func(err error) {
		issues++
		if issues <= maxReported {
			emit("deweyidx", err)
		}
	}
	err := db.DeweyIdx.ScanRange(nil, nil, func(key, val []byte) bool {
		r.EntriesChecked++
		id, err := dewey.FromBytes(key)
		if err != nil {
			report(fmt.Errorf("entry %x: bad key: %w", key, err))
			return true
		}
		if len(val) != 14 {
			report(fmt.Errorf("entry %s: value is %d bytes, want 14", id, len(val)))
			return true
		}
		pos, err := decodePos(val)
		if err != nil {
			report(fmt.Errorf("entry %s: %w", id, err))
			return true
		}
		sym, err := db.Tree.SymAt(pos)
		if err != nil {
			report(fmt.Errorf("entry %s: position %v does not address an open token: %w", id, pos, err))
			return true
		}
		if _, ok := db.Tags.Name(sym); !ok {
			report(fmt.Errorf("entry %s: symbol %d at %v is not in the tag table", id, sym, pos))
			return true
		}
		if valOff := binary.BigEndian.Uint64(val[6:]); valOff != NoValue {
			v, err := db.Values.Get(int64(valOff))
			if err != nil {
				report(fmt.Errorf("entry %s: value offset %d: %w", id, valOff, err))
				return true
			}
			ok, err := db.ValIdx.Has(valKey(vstore.Hash(v), id))
			if err != nil {
				report(fmt.Errorf("entry %s: value index lookup: %w", id, err))
			} else if !ok {
				report(fmt.Errorf("entry %s: value %q not indexed under its hash", id, truncVal(v)))
			}
		}
		return true
	})
	if err != nil {
		emit("deweyidx", fmt.Errorf("entry walk aborted: %w", err))
	}
	if issues > maxReported {
		emit("deweyidx", fmt.Errorf("%d further entry issues suppressed", issues-maxReported))
	}
}

func truncVal(v []byte) string {
	const max = 32
	if len(v) > max {
		return string(v[:max]) + "…"
	}
	return string(v)
}
