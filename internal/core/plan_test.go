package core

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nok/internal/domnav"
	"nok/internal/samples"
	"nok/internal/stats"
	"nok/internal/symtab"
	"nok/internal/vfs"
)

// TestPlannerGolden pins the rendered plans for the bundled bibliography:
// the cost model's choices on a known document must not drift silently.
// The document fits one 256-byte tree page, so full scans legitimately win
// most contests here (the planner's index picks are exercised on larger
// documents below and in internal/planner's unit tests).
func TestPlannerGolden(t *testing.T) {
	db := loadDB(t, samples.Bibliography, smallPages())
	goldens := map[string]string{
		`/bib/book`: "plan /bib/book (stats epoch 1, anchored)\n" +
			"  partition 0: scan        tag=book  est starts=4 matches=4 pages=9\n" +
			"  est total: pages=9 rows=4\n",
		samples.PaperQuery: "plan //book[author/last=\"Stevens\"][price<100] (stats epoch 1)\n" +
			"  partition 0: scan        virtual-root navigation  est starts=1 matches=1 pages=0\n" +
			"  partition 1: scan        tag=book  est starts=4 matches=0 pages=5\n" +
			"  bottom-up order: [1]\n" +
			"  est total: pages=5 rows=0\n",
		`//book[author][editor]`: "plan //book[author][editor] (stats epoch 1)\n" +
			"  partition 0: scan        virtual-root navigation  est starts=1 matches=1 pages=0\n" +
			"  partition 1: tag-index   tag=editor depth=1  est starts=1 matches=1 pages=3\n" +
			"  bottom-up order: [1]\n" +
			"  est total: pages=3 rows=1\n",
		`//missing`: "plan //missing (stats epoch 1)\n" +
			"  partition 0: scan        virtual-root navigation  est starts=1 matches=1 pages=0\n" +
			"  partition 1: scan        tag=missing  est starts=0 matches=0 pages=1\n" +
			"  bottom-up order: [1]\n" +
			"  est total: pages=1 rows=0\n",
	}
	for expr, want := range goldens {
		got, err := db.PlanText(expr)
		if err != nil {
			t.Fatalf("PlanText(%q): %v", expr, err)
		}
		if got != want {
			t.Errorf("plan for %s drifted:\n got:\n%s want:\n%s", expr, got, want)
		}
	}
}

// trapValueDoc is a document where the §6.2 heuristic picks badly: the only
// equality literal is very common, but the partition's root tag is rare.
// The heuristic always prefers the value index when an equality constraint
// exists; the planner sees that driving from the rare tag is far cheaper.
func trapValueDoc(items int) string {
	var sb strings.Builder
	sb.WriteString("<root>")
	for i := 0; i < items; i++ {
		sb.WriteString("<item><common>dup</common></item>")
	}
	sb.WriteString("<rare><common>dup</common></rare>")
	sb.WriteString("<rare><common>dup</common></rare>")
	sb.WriteString("</root>")
	return sb.String()
}

// trapPathDoc pairs a common literal with a selective anchored path: books
// titled "T" are everywhere, but /lib/special/book holds only two of them.
func trapPathDoc(books int) string {
	var sb strings.Builder
	sb.WriteString("<lib><shelf>")
	for i := 0; i < books; i++ {
		sb.WriteString("<book><title>T</title></book>")
	}
	sb.WriteString("</shelf><special>")
	sb.WriteString("<book><title>T</title></book>")
	sb.WriteString("<book><title>T</title></book>")
	sb.WriteString("</special></lib>")
	return sb.String()
}

// TestPlannerPagesReduction is the headline acceptance check: on queries
// where the heuristic picks a poor access path, the planner must cut
// PagesScanned at least in half while returning identical results.
func TestPlannerPagesReduction(t *testing.T) {
	cases := []struct {
		name string
		xml  string
		expr string
	}{
		{"common literal, rare tag", trapValueDoc(400), `//rare[common="dup"]`},
		{"common literal, selective path", trapPathDoc(400), `/lib/special/book[title="T"]`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db := loadDB(t, tc.xml, smallPages())

			planned, pStats, err := db.Query(tc.expr, nil)
			if err != nil {
				t.Fatal(err)
			}
			heuristic, hStats, err := db.Query(tc.expr, &QueryOptions{DisablePlanner: true})
			if err != nil {
				t.Fatal(err)
			}

			if !pStats.Planned || hStats.Planned {
				t.Fatalf("planner flags: planned=%v heuristic=%v", pStats.Planned, hStats.Planned)
			}
			if len(planned) != len(heuristic) {
				t.Fatalf("results differ: %d planned vs %d heuristic", len(planned), len(heuristic))
			}
			for i := range planned {
				if planned[i].ID.String() != heuristic[i].ID.String() {
					t.Fatalf("result %d differs: %v vs %v", i, planned[i].ID, heuristic[i].ID)
				}
			}
			if pStats.PagesScanned*2 > hStats.PagesScanned {
				t.Errorf("planner scanned %d pages, heuristic %d: want at least a 2x reduction\nplanner strategies: %v\nheuristic strategies: %v",
					pStats.PagesScanned, hStats.PagesScanned, pStats.StrategyUsed, hStats.StrategyUsed)
			}
		})
	}
}

// TestPlannerOracleRandom is the planner's correctness property: on random
// documents and queries, plans must return byte-identical results to a
// forced full scan (and to the DOM oracle).
func TestPlannerOracleRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(8200405)) // distinct from TestRandomDifferential
	plannedOnce := false
	for docTrial := 0; docTrial < 3; docTrial++ {
		xml := randomXML(rng, 200+rng.Intn(400))
		db := loadDB(t, xml, smallPages())
		doc := domnav.MustParse(xml)
		if !db.SynopsisFresh() {
			t.Fatal("freshly loaded store lacks a fresh synopsis")
		}
		for q := 0; q < 40; q++ {
			expr := randomQuery(rng)
			_, stats, err := db.Query(expr, nil)
			if err != nil {
				t.Fatalf("Query(%q): %v", expr, err)
			}
			plannedOnce = plannedOnce || stats.Planned
			got := queryIDs(t, db, expr, nil)
			scan := queryIDs(t, db, expr, &QueryOptions{Strategy: StrategyScan})
			if !sameIDs(got, scan) {
				t.Fatalf("doc %d query %q: planner %v, scan %v\n(xml: %.400s)", docTrial, expr, got, scan, xml)
			}
			if want := oracleIDs(t, doc, expr); !sameIDs(got, want) {
				t.Fatalf("doc %d query %q: planner %v, oracle %v", docTrial, expr, got, want)
			}
		}
	}
	if !plannedOnce {
		t.Error("no query was cost-planned: the property test never exercised the planner")
	}
}

// TestPlannerFallbackMissingSynopsis simulates a store from before the
// synopsis existed: the file is deleted behind the manifest's back. Open
// must still succeed (recovery drops the auxiliary role), queries must fall
// back to the heuristic, and RefreshSynopsis must restore planning.
func TestPlannerFallbackMissingSynopsis(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := LoadXML(dir, strings.NewReader(samples.Bibliography), smallPages())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "synopsis-*.bin"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("synopsis files on disk: %v (%v)", matches, err)
	}
	if err := os.Remove(matches[0]); err != nil {
		t.Fatal(err)
	}

	db, err = Open(dir, smallPages())
	if err != nil {
		t.Fatalf("Open after losing the synopsis: %v", err)
	}
	defer db.Close()
	if db.Synopsis() != nil {
		t.Error("synopsis resurrected from nowhere")
	}
	p, reason, err := db.Plan(`//book`)
	if err != nil || p != nil || !strings.Contains(reason, "no statistics synopsis") {
		t.Errorf("Plan = %v, %q, %v; want nil plan with a missing-synopsis reason", p, reason, err)
	}
	got := queryIDs(t, db, samples.PaperQuery, nil)
	ms, st, err := db.Query(samples.PaperQuery, nil)
	if err != nil || st.Planned {
		t.Fatalf("heuristic fallback: err=%v planned=%v", err, st.Planned)
	}
	if len(ms) != len(got) || len(got) != 2 {
		t.Fatalf("fallback results: %v, want both Stevens books", got)
	}

	if err := db.RefreshSynopsis(); err != nil {
		t.Fatalf("RefreshSynopsis: %v", err)
	}
	if !db.SynopsisFresh() {
		t.Fatal("refresh did not produce a fresh synopsis")
	}
	if _, st, err = db.Query(samples.PaperQuery, nil); err != nil || !st.Planned {
		t.Fatalf("after refresh: err=%v planned=%v", err, st.Planned)
	}

	// The refreshed synopsis is committed: it survives a close/reopen.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db, err = Open(dir, smallPages())
	if err != nil {
		t.Fatal(err)
	}
	if !db.SynopsisFresh() {
		t.Error("refreshed synopsis lost across reopen")
	}
}

// TestPlannerFallbackStaleSynopsis rewrites the committed synopsis with a
// wrong epoch: the store must open, report staleness, and keep answering
// through the heuristic.
func TestPlannerFallbackStaleSynopsis(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := LoadXML(dir, strings.NewReader(samples.Bibliography), smallPages())
	if err != nil {
		t.Fatal(err)
	}
	syn := db.Synopsis()
	storeEpoch := db.Epoch()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Re-encode the synopsis claiming another epoch and recommit it, the
	// way a partially-failed refresh could leave it.
	syn.Epoch = storeEpoch + 7
	fsys := vfs.OS
	m, err := readManifest(fsys, dir)
	if err != nil {
		t.Fatal(err)
	}
	name := m.Files[roleSynopsis].Name
	if err := vfs.WriteFileAtomic(fsys, filepath.Join(dir, name), stats.Encode(syn), 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err := record(fsys, dir, name)
	if err != nil {
		t.Fatal(err)
	}
	m.Files[roleSynopsis] = rec
	if err := writeManifest(fsys, dir, m); err != nil {
		t.Fatal(err)
	}

	db, err = Open(dir, smallPages())
	if err != nil {
		t.Fatalf("Open with stale synopsis: %v", err)
	}
	defer db.Close()
	if db.Synopsis() == nil || db.SynopsisFresh() {
		t.Fatalf("synopsis = %v, fresh = %v; want loaded but stale", db.Synopsis(), db.SynopsisFresh())
	}
	p, reason, err := db.Plan(`//book`)
	if err != nil || p != nil || !strings.Contains(reason, "stale") {
		t.Errorf("Plan = %v, %q, %v; want nil plan with a staleness reason", p, reason, err)
	}
	ms, st, err := db.Query(samples.PaperQuery, nil)
	if err != nil || st.Planned || len(ms) != 2 {
		t.Fatalf("stale fallback: err=%v planned=%v results=%d", err, st.Planned, len(ms))
	}
}

// TestSynopsisAcrossUpdates: every committed update rebuilds the synopsis at
// the new epoch, so the planner stays available and plans are re-costed.
func TestSynopsisAcrossUpdates(t *testing.T) {
	db := loadDB(t, samples.Bibliography, smallPages())
	_, st, err := db.Query(`//book[author]`, nil)
	if err != nil || !st.Planned || st.PlanEpoch != db.Epoch() {
		t.Fatalf("before update: err=%v planned=%v epoch=%d/%d", err, st.Planned, st.PlanEpoch, db.Epoch())
	}

	if err := db.InsertFragment(mustID(t, "0"), strings.NewReader(
		`<book year="2024"><title>Planner Book</title><author><last>Doe</last><first>J.</first></author><price>10</price></book>`)); err != nil {
		t.Fatalf("InsertFragment: %v", err)
	}
	if !db.SynopsisFresh() {
		t.Fatalf("synopsis stale after insert: synopsis epoch %d, store %d", db.Synopsis().Epoch, db.Epoch())
	}
	ms, st, err := db.Query(`//book[author]`, nil)
	if err != nil || !st.Planned || st.PlanEpoch != db.Epoch() {
		t.Fatalf("after insert: err=%v planned=%v epoch=%d/%d", err, st.Planned, st.PlanEpoch, db.Epoch())
	}
	if len(ms) != 4 {
		t.Fatalf("results after insert: %d, want 4", len(ms))
	}
	if got := db.Synopsis().TagCount(mustSym(t, db, "book")); got != 5 {
		t.Errorf("synopsis book count after insert = %d, want 5", got)
	}

	if err := db.DeleteSubtree(ms[len(ms)-1].ID); err != nil {
		t.Fatalf("DeleteSubtree: %v", err)
	}
	if !db.SynopsisFresh() {
		t.Fatal("synopsis stale after delete")
	}
	if _, st, err = db.Query(`//book[author]`, nil); err != nil || !st.Planned {
		t.Fatalf("after delete: err=%v planned=%v", err, st.Planned)
	}
}

func mustSym(t *testing.T, db *DB, name string) symtab.Sym {
	t.Helper()
	sym, ok := db.Tags.Lookup(name)
	if !ok {
		t.Fatalf("tag %q unknown", name)
	}
	return sym
}

// TestStrategySkippedShortCircuit: a provably empty linked child partition
// short-circuits its parents, which record StrategySkipped.
func TestStrategySkippedShortCircuit(t *testing.T) {
	db := loadDB(t, samples.Bibliography, smallPages())
	ms, st, err := db.Query(`//book[.//missing]`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 0 {
		t.Fatalf("results: %v, want none", ms)
	}
	if !st.Planned {
		t.Fatal("query was not planned")
	}
	found := false
	for _, s := range st.StrategyUsed {
		if s == StrategySkipped {
			found = true
		}
	}
	if !found {
		t.Errorf("no partition recorded StrategySkipped: %v", st.StrategyUsed)
	}
}
