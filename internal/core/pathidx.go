package core

import (
	"encoding/binary"

	"nok/internal/dewey"
	"nok/internal/pattern"
	"nok/internal/stats"
	"nok/internal/stree"
	"nok/internal/symtab"
)

// This file implements the paper's §8 future-work extension: "use path
// index instead of tag-name index. This is particularly efficient when the
// selectivity of individual tag names are low but the selectivity of a
// path is high."
//
// The path index is a fourth B+ tree keyed by hash(root-to-node tag path)
// ‖ Dewey ID, valued with the node position — the same layout as the
// other multi-valued indexes, so a prefix scan yields all nodes reachable
// by one concrete root path, in document order. Hash collisions cannot
// produce wrong answers: candidates are verified against the actual tag
// chain through Dewey-prefix lookups before matching starts.

const filePathIdx = "pathidx.pg"

// The path hash is shared with the statistics synopsis's path summary
// (internal/stats holds the canonical FNV-1a definition): the planner can
// estimate a path's cardinality with the same hash the index probes with.
const pathHashSeed = stats.PathSeed

// extendPathHash folds one more tag symbol into a path hash.
func extendPathHash(h uint64, sym symtab.Sym) uint64 {
	return stats.ExtendPath(h, sym)
}

// pathKey composes the path-index key hash ‖ dewey.
func pathKey(hash uint64, id dewey.ID) []byte {
	key := make([]byte, 8, 8+len(id)*2)
	binary.BigEndian.PutUint64(key, hash)
	return append(key, id.Bytes()...)
}

// chainPathHash hashes a concrete tag chain (depth-1 tag first, anchor
// last). ok is false when any test is a wildcard or an unknown tag (the
// path cannot be in the index).
func (db *Snapshot) chainPathHash(chainTests []string, anchorTest string) (uint64, bool) {
	h := pathHashSeed
	for _, test := range chainTests {
		if test == "*" {
			return 0, false
		}
		sym, found := db.Tags.Lookup(test)
		if !found {
			return 0, false
		}
		h = extendPathHash(h, sym)
	}
	if anchorTest == "*" {
		return 0, false
	}
	sym, found := db.Tags.Lookup(anchorTest)
	if !found {
		return 0, false
	}
	return extendPathHash(h, sym), true
}

// startsByPath locates anchor candidates through the path index: all nodes
// whose root-to-node tag path equals the anchored chain. Ancestors are
// still verified (hash collisions must not surface), but unlike the tag
// strategy no depth filtering or lifted ancestors are needed — the index
// key *is* the whole path.
func (db *Snapshot) startsByPath(anchor *pattern.Node, chainTests []string, nc *stree.NavCounters) ([]Match, bool, error) {
	if db.PathIdx == nil {
		return nil, false, nil
	}
	h, ok := db.chainPathHash(chainTests, anchor.Test)
	if !ok {
		return nil, false, nil
	}
	var prefix [8]byte
	binary.BigEndian.PutUint64(prefix[:], h)
	depth := len(chainTests) + 1
	var out []Match
	var scanErr error
	err := db.PathIdx.ScanPrefixCounted(prefix[:], func(key, value []byte) bool {
		id, err := dewey.FromBytes(key[8:])
		if err != nil || len(id) != depth {
			return true
		}
		pos, err := decodePos(value)
		if err != nil {
			return true
		}
		// Verify against collisions: the anchor tag plus ancestors.
		nc.AddExamined(1) // SymAt touches one tree page
		sym, err := db.Tree.SymAt(pos)
		if err != nil {
			scanErr = err
			return false
		}
		want, found := db.Tags.Lookup(anchor.Test)
		if !found || sym != want {
			return true
		}
		okAnc, err := db.ancestorsMatch(id, chainTests, nc)
		if err != nil {
			scanErr = err
			return false
		}
		if okAnc {
			out = append(out, Match{Pos: pos, ID: id.Clone()})
		}
		return true
	}, btPages(nc))
	if scanErr != nil {
		return nil, false, scanErr
	}
	return out, true, err
}
