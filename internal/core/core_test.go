package core

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nok/internal/domnav"

	"nok/internal/pattern"
	"nok/internal/samples"
)

func loadDB(t *testing.T, xml string, opts *Options) *DB {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "db")
	db, err := LoadXML(dir, strings.NewReader(xml), opts)
	if err != nil {
		t.Fatalf("LoadXML: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func smallPages() *Options { return &Options{PageSize: 256, PoolPages: 64} }

// queryIDs runs a query and returns the Dewey IDs of its results.
func queryIDs(t *testing.T, db *DB, expr string, opts *QueryOptions) []string {
	t.Helper()
	ms, _, err := db.Query(expr, opts)
	if err != nil {
		t.Fatalf("Query(%q): %v", expr, err)
	}
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.ID.String()
	}
	return out
}

// oracleIDs evaluates the same query on the DOM oracle.
func oracleIDs(t *testing.T, doc *domnav.Doc, expr string) []string {
	t.Helper()
	tr, err := pattern.Parse(expr)
	if err != nil {
		t.Fatalf("Parse(%q): %v", expr, err)
	}
	var out []string
	for _, n := range domnav.Evaluate(doc, tr) {
		out = append(out, n.ID.String())
	}
	return out
}

func sameIDs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkAgainstOracle runs expr through the engine (all strategies) and the
// oracle and compares.
func checkAgainstOracle(t *testing.T, db *DB, doc *domnav.Doc, expr string) {
	t.Helper()
	want := oracleIDs(t, doc, expr)
	for _, strat := range []Strategy{StrategyAuto, StrategyScan, StrategyTagIndex, StrategyValueIndex, StrategyPathIndex} {
		got := queryIDs(t, db, expr, &QueryOptions{Strategy: strat})
		if !sameIDs(got, want) {
			t.Errorf("%s [%v]:\n got  %v\n want %v", expr, strat, got, want)
		}
	}
}

var bibliographyQueries = []string{
	samples.PaperQuery,
	`/bib`,
	`/bib/book`,
	`/bib/book/title`,
	`//last`,
	`//book[price>100]`,
	`//book[price<100]`,
	`//book[@year="2000"]/title`,
	`//book[author/last="Stevens"]`,
	`//book[author/last="Stevens"][price<100]`,
	`//book[editor/affiliation="CITI"]`,
	`/bib/book/author[last="Suciu"]/first`,
	`//author[last="Stevens"][first="W."]`,
	`/bib/*/title`,
	`//author//last`,
	`/bib//last`,
	`//book[author]`,
	`//book[editor]`,
	`//book[author][editor]`,
	`//missing`,
	`/wrong/book`,
	`//book[title="Data on the Web"]//last`,
	`//book/author/following-sibling::author`,
	`/bib/book[price>=129.95]/@year`,
	`//first`,
	`//*[last="Gerbarg"]`,
}

func TestBibliographyAgainstOracle(t *testing.T) {
	db := loadDB(t, samples.Bibliography, smallPages())
	doc := domnav.MustParse(samples.Bibliography)
	for _, q := range bibliographyQueries {
		checkAgainstOracle(t, db, doc, q)
	}
}

func TestPaperExample1Exact(t *testing.T) {
	// Example 1: books 1 and 2 qualify (Stevens, < 100).
	db := loadDB(t, samples.Bibliography, nil)
	got := queryIDs(t, db, samples.PaperQuery, nil)
	want := []string{"0.1", "0.2"}
	if !sameIDs(got, want) {
		t.Fatalf("paper query = %v, want %v", got, want)
	}
}

func TestNodeValue(t *testing.T) {
	db := loadDB(t, samples.Bibliography, nil)
	ms, _, err := db.Query(`/bib/book/title`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 4 {
		t.Fatalf("titles = %d", len(ms))
	}
	v, ok, err := db.NodeValue(ms[0].ID)
	if err != nil || !ok || v != "TCP/IP Illustrated" {
		t.Errorf("NodeValue = %q,%v,%v", v, ok, err)
	}
	// Structure-only node has no value.
	ms, _, _ = db.Query(`/bib/book`, nil)
	if _, ok, _ := db.NodeValue(ms[0].ID); ok {
		t.Error("book should have no own value")
	}
}

func TestStatsReporting(t *testing.T) {
	db := loadDB(t, samples.Bibliography, nil)
	// DisablePlanner pins this test to the paper's §6.2 heuristic — on a
	// one-page document the cost-based planner legitimately prefers a scan
	// (plan_test.go covers the planner's own choices).
	_, stats, err := db.Query(samples.PaperQuery, &QueryOptions{DisablePlanner: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Partitions != 2 {
		t.Errorf("Partitions = %d, want 2", stats.Partitions)
	}
	// The heuristic must choose the value index for the Stevens constraint.
	if stats.StrategyUsed[1] != StrategyValueIndex {
		t.Errorf("strategy for book partition = %v, want value-index", stats.StrategyUsed[1])
	}
	if stats.StartingPoints == 0 || stats.NPMCalls == 0 {
		t.Errorf("stats not populated: %+v", stats)
	}
}

func TestTagCountStats(t *testing.T) {
	db := loadDB(t, samples.Bibliography, nil)
	if got := db.TagCount("book"); got != 4 {
		t.Errorf("TagCount(book) = %d, want 4", got)
	}
	if got := db.TagCount("author"); got != 5 {
		t.Errorf("TagCount(author) = %d, want 5", got)
	}
	if got := db.TagCount("absent"); got != 0 {
		t.Errorf("TagCount(absent) = %d", got)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := LoadXML(dir, strings.NewReader(samples.Bibliography), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := queryIDs(t, db, samples.PaperQuery, nil)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	got := queryIDs(t, db2, samples.PaperQuery, nil)
	if !sameIDs(got, want) {
		t.Errorf("after reopen: %v, want %v", got, want)
	}
	if db2.NodeCount() != db2.Tree.NodeCount() || db2.NodeCount() == 0 {
		t.Error("node count lost across reopen")
	}
}

func TestMultipleRootsRejected(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	_, err := LoadXML(dir, strings.NewReader("<a/><b/>"), nil)
	if err == nil {
		t.Error("multiple roots should be rejected")
	}
}

// ---- randomized differential testing ---------------------------------------

// randomXML builds a random document over a small tag alphabet with values
// drawn from a small value pool (so equality predicates actually hit).
func randomXML(rng *rand.Rand, nodes int) string {
	tags := []string{"a", "b", "c", "d", "e"}
	vals := []string{"x", "y", "42", "7.5", ""}
	var sb strings.Builder
	var emit func(budget, depth int) int
	emit = func(budget, depth int) int {
		tag := tags[rng.Intn(len(tags))]
		sb.WriteString("<" + tag)
		if rng.Intn(4) == 0 {
			sb.WriteString(fmt.Sprintf(` id="%d"`, rng.Intn(3)))
		}
		sb.WriteString(">")
		used := 1
		kids := rng.Intn(4)
		if depth > 6 {
			kids = 0
		}
		if kids == 0 {
			sb.WriteString(vals[rng.Intn(len(vals))])
		}
		for i := 0; i < kids && used < budget; i++ {
			used += emit((budget-used+kids-1)/(kids-i), depth+1)
		}
		sb.WriteString("</" + tag + ">")
		return used
	}
	sb.WriteString("<root>")
	total := 1
	for total < nodes {
		total += emit(nodes-total, 1)
	}
	sb.WriteString("</root>")
	return sb.String()
}

// randomQuery builds a random path query over the same alphabet.
func randomQuery(rng *rand.Rand) string {
	tags := []string{"a", "b", "c", "d", "e", "*"}
	vals := []string{"x", "y", "42", "7.5"}
	ops := []string{"=", "!=", "<", ">", "<=", ">="}
	var sb strings.Builder
	steps := 1 + rng.Intn(4)
	sb.WriteString("/root")
	for i := 0; i < steps; i++ {
		if rng.Intn(3) == 0 {
			sb.WriteString("//")
		} else {
			sb.WriteString("/")
		}
		sb.WriteString(tags[rng.Intn(len(tags))])
		for p := 0; p < rng.Intn(3); p++ {
			sb.WriteString("[")
			if rng.Intn(4) == 0 {
				sb.WriteString("@id=")
				sb.WriteString(fmt.Sprintf("%q", fmt.Sprint(rng.Intn(3))))
			} else {
				sb.WriteString(tags[rng.Intn(len(tags)-1)]) // no '*' in predicates here
				if rng.Intn(2) == 0 {
					sb.WriteString(ops[rng.Intn(len(ops))])
					sb.WriteString(fmt.Sprintf("%q", vals[rng.Intn(len(vals))]))
				}
			}
			sb.WriteString("]")
		}
	}
	return sb.String()
}

func TestRandomDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(20040301)) // ICDE 2004
	for docTrial := 0; docTrial < 4; docTrial++ {
		xml := randomXML(rng, 150+rng.Intn(300))
		db := loadDB(t, xml, smallPages())
		doc := domnav.MustParse(xml)
		for q := 0; q < 40; q++ {
			expr := randomQuery(rng)
			want := oracleIDs(t, doc, expr)
			got := queryIDs(t, db, expr, nil)
			if !sameIDs(got, want) {
				t.Fatalf("doc %d query %q:\n got  %v\n want %v\n(xml: %.400s)",
					docTrial, expr, got, want, xml)
			}
			// Scan strategy must agree with auto.
			got2 := queryIDs(t, db, expr, &QueryOptions{Strategy: StrategyScan})
			if !sameIDs(got2, want) {
				t.Fatalf("doc %d query %q (scan): got %v want %v", docTrial, expr, got2, want)
			}
		}
	}
}

func TestDeepChainsAndSiblings(t *testing.T) {
	xml := `<root><s><a/><b/><c/></s><s><b/><a/><c/></s><s><c/><b/><a/></s></root>`
	db := loadDB(t, xml, smallPages())
	doc := domnav.MustParse(xml)
	for _, q := range []string{
		`/root/s/a/following-sibling::b`,
		`/root/s/a/following-sibling::c`,
		`/root/s/b/following-sibling::a`,
		`/root/s/a/following-sibling::b/following-sibling::c`,
		`//s[a/following-sibling::b]`,
		`//s[c/following-sibling::a]`,
	} {
		checkAgainstOracle(t, db, doc, q)
	}
}

func TestSharedChildSemantics(t *testing.T) {
	// The /a[b/c][b/d] case from §3.
	xml := `<root><a><b><c/><d/></b></a><a><b><c/></b><b><d/></b></a><a><b><c/></b></a></root>`
	db := loadDB(t, xml, smallPages())
	doc := domnav.MustParse(xml)
	for _, q := range []string{
		`/root/a[b/c][b/d]`,
		`/root/a/b[c]`,
		`/root/a[b/c]/b[d]`,
	} {
		checkAgainstOracle(t, db, doc, q)
	}
}

func TestLargeDocAcrossPages(t *testing.T) {
	// Enough nodes to span many 256-byte pages; exercises page skipping
	// and the value index at scale.
	var sb strings.Builder
	sb.WriteString("<lib>")
	for i := 0; i < 500; i++ {
		fmt.Fprintf(&sb, `<book year="%d"><title>t%d</title><price>%d</price></book>`,
			1900+i%100, i, i%200)
	}
	sb.WriteString("</lib>")
	xml := sb.String()
	db := loadDB(t, xml, smallPages())
	doc := domnav.MustParse(xml)
	for _, q := range []string{
		`/lib/book/title`,
		`//book[price="150"]`,
		`//book[@year="1950"]/title`,
		`//book[title="t250"]`,
	} {
		checkAgainstOracle(t, db, doc, q)
	}
	if db.Tree.NumPages() < 10 {
		t.Errorf("expected many pages, got %d", db.Tree.NumPages())
	}
}

func TestSinglePassProposition1(t *testing.T) {
	// Proposition 1: during one NoK matching pass the evaluator reads each
	// tree page at most once (buffer hits aside). With a pool larger than
	// the file, physical reads ≤ page count.
	var sb strings.Builder
	sb.WriteString("<lib>")
	for i := 0; i < 800; i++ {
		fmt.Fprintf(&sb, `<book><title>t%d</title><price>%d</price></book>`, i, i%97)
	}
	sb.WriteString("</lib>")
	db := loadDB(t, sb.String(), &Options{PageSize: 256, PoolPages: 4096})
	pf := db.Tree.Pager()
	pf.ResetStats()
	if _, _, err := db.Query(`/lib/book[price="13"]/title`, &QueryOptions{Strategy: StrategyScan}); err != nil {
		t.Fatal(err)
	}
	reads := pf.Stats().PhysicalReads
	pages := int64(db.Tree.NumPages())
	if reads > pages {
		t.Errorf("physical reads %d exceed page count %d — not single-pass", reads, pages)
	}
}

func TestPathIndexStrategy(t *testing.T) {
	db := loadDB(t, samples.Bibliography, smallPages())
	// DisablePlanner pins this test to the paper's heuristics — on a tiny
	// document the cost-based planner may legitimately choose differently
	// (plan_test.go covers the planner's own choices).
	heuristic := &QueryOptions{DisablePlanner: true}
	// A concrete '/' chain without value constraints: the heuristic picks
	// the path index (§8 extension).
	_, stats, err := db.Query(`/bib/book/title`, heuristic)
	if err != nil {
		t.Fatal(err)
	}
	if stats.StrategyUsed[0] != StrategyPathIndex {
		t.Errorf("auto strategy = %v, want path-index", stats.StrategyUsed[0])
	}
	// Forced path strategy returns the same answers.
	got := queryIDs(t, db, `/bib/book/title`, &QueryOptions{Strategy: StrategyPathIndex})
	want := queryIDs(t, db, `/bib/book/title`, &QueryOptions{Strategy: StrategyScan})
	if !sameIDs(got, want) {
		t.Errorf("path-index results %v != scan results %v", got, want)
	}
	// With a value constraint the paper's heuristic still prefers the
	// value index.
	_, stats, err = db.Query(`/bib/book[title="Data on the Web"]`, heuristic)
	if err != nil {
		t.Fatal(err)
	}
	if stats.StrategyUsed[0] != StrategyValueIndex {
		t.Errorf("value query strategy = %v, want value-index", stats.StrategyUsed[0])
	}
	// Wildcards on the chain force a fallback that still answers correctly.
	got = queryIDs(t, db, `/bib/*/title`, &QueryOptions{Strategy: StrategyPathIndex})
	want = queryIDs(t, db, `/bib/*/title`, &QueryOptions{Strategy: StrategyScan})
	if !sameIDs(got, want) {
		t.Errorf("wildcard fallback: %v != %v", got, want)
	}
}

func TestPathIndexSurvivesUpdates(t *testing.T) {
	db := loadDB(t, samples.Bibliography, smallPages())
	if err := db.InsertFragment(mustID(t, "0"), strings.NewReader(`<book><title>T9</title></book>`)); err != nil {
		t.Fatal(err)
	}
	got := queryIDs(t, db, `/bib/book/title`, &QueryOptions{Strategy: StrategyPathIndex})
	if len(got) != 5 {
		t.Fatalf("titles after insert via path index: %v", got)
	}
}

func TestAccessors(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := LoadXML(dir, strings.NewReader(samples.Bibliography), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.Dir() != dir {
		t.Errorf("Dir = %q", db.Dir())
	}
	tree, tag, val, dew := db.IndexSizes()
	if tree == 0 || tag == 0 || val == 0 || dew == 0 {
		t.Errorf("IndexSizes = %d %d %d %d", tree, tag, val, dew)
	}
	if int(tree) != int(db.Tree.TokenBytes()) {
		t.Errorf("|tree| = %d, want TokenBytes %d", tree, db.Tree.TokenBytes())
	}
	for _, s := range []Strategy{StrategyAuto, StrategyScan, StrategyTagIndex, StrategyValueIndex, StrategyPathIndex, Strategy(99)} {
		if s.String() == "" {
			t.Errorf("empty String for %d", uint8(s))
		}
	}
}

func TestLoadXMLFileFromDisk(t *testing.T) {
	dir := t.TempDir()
	xmlPath := filepath.Join(dir, "doc.xml")
	if err := os.WriteFile(xmlPath, []byte(samples.Bibliography), 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := LoadXMLFile(filepath.Join(dir, "db"), xmlPath, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.NodeCount() != 40 {
		t.Errorf("NodeCount = %d", db.NodeCount())
	}
	if _, err := LoadXMLFile(filepath.Join(dir, "db2"), filepath.Join(dir, "missing.xml"), nil); err == nil {
		t.Error("missing XML file should fail")
	}
}

func TestEmptyDocumentRoot(t *testing.T) {
	// A document that is a single empty element still matches itself.
	db := loadDB(t, `<only/>`, nil)
	got := queryIDs(t, db, `/only`, nil)
	if !sameIDs(got, []string{"0"}) {
		t.Fatalf("got %v", got)
	}
	got = queryIDs(t, db, `//only`, nil)
	if !sameIDs(got, []string{"0"}) {
		t.Fatalf("// form: %v", got)
	}
	if got := queryIDs(t, db, `/only/missing`, nil); len(got) != 0 {
		t.Fatalf("child of leaf: %v", got)
	}
}

func TestSiblingArcsWithSpineCollection(t *testing.T) {
	// Sticky spine + ⊲ arcs interact: the returning node has a
	// preceding-sibling constraint, so collected matches must be filtered
	// by pinned feasibility (filterPinned's splice path).
	xml := `<r><s><a/><b>1</b><b>2</b></s><s><b>3</b><a/><b>4</b></s></r>`
	db := loadDB(t, xml, smallPages())
	doc := domnav.MustParse(xml)
	for _, q := range []string{
		`/r/s/a/following-sibling::b`, // b's strictly after an a
		`/r/s/b/preceding-sibling::a`,
		`//s[a]/b`,
	} {
		checkAgainstOracle(t, db, doc, q)
	}
}
